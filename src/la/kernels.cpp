// Implementations of the deterministic blocked/SIMD LA kernels.
//
// THIS FILE IS COMPILED WITH -ffp-contract=off (set per-source by the root
// CMakeLists).  Every lane update of the schedule is an EXPLICIT
// correctly-rounded fused multiply-add (std::fma in scalar code,
// _mm256_fmadd_pd in the AVX2 path — the same IEEE-754 fusedMultiplyAdd
// operation, one rounding); -ffp-contract=off forbids the compiler from
// fusing or splitting anything *else*, so the fixed accumulation schedule
// of la/kernel_config.h produces the same bits at every optimization
// level, with or without COCKTAIL_SIMD, on every conforming compiler.
//
// The vectorized kernels pack four schedule lanes into one 256-bit
// register: every vfmadd/vaddpd is the element-wise image of the scalar
// schedule's per-lane operations, in the same order.  Vectorization
// therefore never reorders an accumulation; it only packs independent
// lanes into one instruction.  Without AVX2+FMA at compile time the
// optimized entry points fall back to the scalar reference — same
// schedule, same bits (std::fma is correctly rounded even via libm's
// software path).
#include "la/kernels.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <vector>

#include "la/kernel_config.h"

#if defined(__AVX2__) && defined(__FMA__)
#define COCKTAIL_LA_VECTOR 1
#include <immintrin.h>
#endif

#if defined(COCKTAIL_HAVE_BLAS)
// Fortran BLAS interface: linked via find_package(BLAS); declared here so
// no cblas header is required.
extern "C" void dgemm_(const char* transa, const char* transb, const int* m,
                       const int* n, const int* k, const double* alpha,
                       const double* a, const int* lda, const double* b,
                       const int* ldb, const double* beta, double* c,
                       const int* ldc);
#endif

namespace cocktail::la::kernels {
namespace {

constexpr std::size_t W = kDotLanes;
constexpr std::size_t KB = kDotBlockK;
constexpr std::size_t WT = kTransposeLanes;
constexpr std::size_t RB = kTransposeBlockR;
constexpr std::size_t NR = kGemmTileCols;

/// The fixed 8-lane pairwise tree of the dot schedule.
inline double reduce8(const double* l) {
  return ((l[0] + l[1]) + (l[2] + l[3])) + ((l[4] + l[5]) + (l[6] + l[7]));
}

/// The fixed 4-lane pairwise tree of the transpose schedule.
inline double reduce4(const double* l) {
  return (l[0] + l[1]) + (l[2] + l[3]);
}

#if defined(COCKTAIL_LA_VECTOR)

/// out[j] = dot(a, b[j]) for TR parallel B-rows under the fixed dot
/// schedule.  TR is the register-tile width: it only reuses the loads of
/// `a` across the TR accumulations, each of which is the schedule verbatim.
/// Schedule lanes 0-3 live in lo[j], lanes 4-7 in hi[j] — 2*TR+2 ymm
/// registers total, so the accumulators stay register-resident for the
/// kGemmTileCols tile.
template <std::size_t TR>
inline void dot_rows(const double* a, const double* const* b, std::size_t k,
                     double* out) {
  double acc[TR];
  for (std::size_t j = 0; j < TR; ++j) acc[j] = 0.0;
  for (std::size_t t0 = 0; t0 < k; t0 += KB) {
    const std::size_t end = std::min(k, t0 + KB);
    __m256d lo[TR], hi[TR];
    for (std::size_t j = 0; j < TR; ++j) {
      lo[j] = _mm256_setzero_pd();
      hi[j] = _mm256_setzero_pd();
    }
    std::size_t t = t0;
    for (; t + W <= end; t += W) {
      const __m256d a_lo = _mm256_loadu_pd(a + t);
      const __m256d a_hi = _mm256_loadu_pd(a + t + WT);
      for (std::size_t j = 0; j < TR; ++j) {
        lo[j] = _mm256_fmadd_pd(a_lo, _mm256_loadu_pd(b[j] + t), lo[j]);
        hi[j] = _mm256_fmadd_pd(a_hi, _mm256_loadu_pd(b[j] + t + WT), hi[j]);
      }
    }
    // Tail of a partial block: keep feeding the SAME lanes, one fma at a
    // time in increasing t — the schedule does not change shape at the
    // edge, the unfilled lanes simply stay +0.0 through the tree.
    double larr[TR][W];
    for (std::size_t j = 0; j < TR; ++j) {
      _mm256_storeu_pd(larr[j], lo[j]);
      _mm256_storeu_pd(larr[j] + WT, hi[j]);
    }
    for (; t < end; ++t) {
      const double at = a[t];
      for (std::size_t j = 0; j < TR; ++j) {
        double& lane = larr[j][(t - t0) % W];
        lane = std::fma(at, b[j][t], lane);
      }
    }
    for (std::size_t j = 0; j < TR; ++j) acc[j] += reduce8(larr[j]);
  }
  for (std::size_t j = 0; j < TR; ++j) out[j] = acc[j];
}

#endif  // COCKTAIL_LA_VECTOR

/// Strided-b dot under the fixed dot schedule (the reference for the NN
/// GEMM, which reads a column of row-major B directly).
double dot_strided_ref(const double* a, const double* b, std::size_t strideb,
                       std::size_t k) {
  double acc = 0.0;
  for (std::size_t t0 = 0; t0 < k; t0 += KB) {
    const std::size_t end = std::min(k, t0 + KB);
    double lanes[W] = {};
    for (std::size_t t = t0; t < end; ++t) {
      double& lane = lanes[(t - t0) % W];
      lane = std::fma(a[t], b[t * strideb], lane);
    }
    acc += reduce8(lanes);
  }
  return acc;
}

/// bt(n x k) = B(k x n)^T — the pack the NN product uses to reuse the NT
/// kernel.  Pure data movement (no arithmetic), so it is bitwise neutral
/// no matter how the copy is tiled or vectorized.
[[maybe_unused]] void pack_bt(std::size_t n, std::size_t k, const double* b,
                              std::size_t ldb, double* bt) {
  std::size_t j0 = 0;
#if defined(COCKTAIL_LA_VECTOR)
  // 4x4 in-register transpose: both the loads and the stores run a full
  // cache line at a time instead of one strided double.
  for (; j0 + 4 <= n; j0 += 4) {
    std::size_t t = 0;
    for (; t + 4 <= k; t += 4) {
      const double* bp = b + t * ldb + j0;
      const __m256d r0 = _mm256_loadu_pd(bp);
      const __m256d r1 = _mm256_loadu_pd(bp + ldb);
      const __m256d r2 = _mm256_loadu_pd(bp + 2 * ldb);
      const __m256d r3 = _mm256_loadu_pd(bp + 3 * ldb);
      const __m256d u0 = _mm256_unpacklo_pd(r0, r1);
      const __m256d u1 = _mm256_unpackhi_pd(r0, r1);
      const __m256d u2 = _mm256_unpacklo_pd(r2, r3);
      const __m256d u3 = _mm256_unpackhi_pd(r2, r3);
      double* btp = bt + j0 * k + t;
      _mm256_storeu_pd(btp, _mm256_permute2f128_pd(u0, u2, 0x20));
      _mm256_storeu_pd(btp + k, _mm256_permute2f128_pd(u1, u3, 0x20));
      _mm256_storeu_pd(btp + 2 * k, _mm256_permute2f128_pd(u0, u2, 0x31));
      _mm256_storeu_pd(btp + 3 * k, _mm256_permute2f128_pd(u1, u3, 0x31));
    }
    for (; t < k; ++t) {
      const double* brow = b + t * ldb + j0;
      for (std::size_t q = 0; q < 4; ++q) bt[(j0 + q) * k + t] = brow[q];
    }
  }
#endif
  for (; j0 < n; ++j0)
    for (std::size_t t = 0; t < k; ++t) bt[j0 * k + t] = b[t * ldb + j0];
}

#if defined(COCKTAIL_HAVE_BLAS)
/// Row-major C(m x n) = A(m x k) * op(B) through column-major dgemm via the
/// transpose trick: compute C^T = op(B)^T * A^T.
void blas_gemm(bool b_is_nt, std::size_t m, std::size_t n, std::size_t k,
               const double* a, std::size_t lda, const double* b,
               std::size_t ldb, double* c, std::size_t ldc) {
  if (m == 0 || n == 0) return;
  const int mi = static_cast<int>(n), ni = static_cast<int>(m),
            ki = static_cast<int>(k);
  const int ldai = static_cast<int>(ldb == 0 ? 1 : ldb),
            ldbi = static_cast<int>(lda == 0 ? 1 : lda),
            ldci = static_cast<int>(ldc == 0 ? 1 : ldc);
  const double one = 1.0, zero = 0.0;
  // Row-major B (n x k, to be used transposed) viewed column-major is
  // k x n, so the NT product needs "T"; row-major B (k x n) viewed
  // column-major is n x k, used as-is with "N".
  const char* transa = b_is_nt ? "T" : "N";
  dgemm_(transa, "N", &mi, &ni, &ki, &one, b, &ldai, a, &ldbi, &zero, c,
         &ldci);
}
#endif

}  // namespace

bool blas_enabled() noexcept {
#if defined(COCKTAIL_HAVE_BLAS)
  return true;
#else
  return false;
#endif
}

double dot_ref(const double* a, const double* b, std::size_t k) {
  return dot_strided_ref(a, b, 1, k);
}

double dot(const double* a, const double* b, std::size_t k) {
#if defined(COCKTAIL_LA_VECTOR)
  double out;
  const double* bp[1] = {b};
  dot_rows<1>(a, bp, k, &out);
  return out;
#else
  return dot_ref(a, b, k);
#endif
}

void gemm_nt_ref(std::size_t m, std::size_t n, std::size_t k, const double* a,
                 std::size_t lda, const double* b, std::size_t ldb, double* c,
                 std::size_t ldc) {
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < n; ++j)
      c[i * ldc + j] = dot_ref(a + i * lda, b + j * ldb, k);
}

void gemm_nt(std::size_t m, std::size_t n, std::size_t k, const double* a,
             std::size_t lda, const double* b, std::size_t ldb, double* c,
             std::size_t ldc) {
#if defined(COCKTAIL_HAVE_BLAS)
  blas_gemm(/*b_is_nt=*/true, m, n, k, a, lda, b, ldb, c, ldc);
#elif defined(COCKTAIL_LA_VECTOR)
  // Visit output columns in kGemmBlockCols-wide panels so the active rows
  // of B stay L2-resident across the whole sweep over A.  Pure iteration
  // order: each c(i,j) is still produced by exactly one dot_rows call.
  for (std::size_t j0 = 0; j0 < n; j0 += kGemmBlockCols) {
    const std::size_t jend = std::min(n, j0 + kGemmBlockCols);
    for (std::size_t i = 0; i < m; ++i) {
      const double* ai = a + i * lda;
      double* ci = c + i * ldc;
      std::size_t j = j0;
      for (; j + NR <= jend; j += NR) {
        const double* bp[NR];
        for (std::size_t q = 0; q < NR; ++q) bp[q] = b + (j + q) * ldb;
        dot_rows<NR>(ai, bp, k, ci + j);
      }
      for (; j < jend; ++j) {
        const double* bp[1] = {b + j * ldb};
        dot_rows<1>(ai, bp, k, ci + j);
      }
    }
  }
#else
  gemm_nt_ref(m, n, k, a, lda, b, ldb, c, ldc);
#endif
}

void gemm_nn_ref(std::size_t m, std::size_t n, std::size_t k, const double* a,
                 std::size_t lda, const double* b, std::size_t ldb, double* c,
                 std::size_t ldc) {
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < n; ++j)
      c[i * ldc + j] = dot_strided_ref(a + i * lda, b + j, ldb, k);
}

void gemm_nn(std::size_t m, std::size_t n, std::size_t k, const double* a,
             std::size_t lda, const double* b, std::size_t ldb, double* c,
             std::size_t ldc) {
#if defined(COCKTAIL_HAVE_BLAS)
  blas_gemm(/*b_is_nt=*/false, m, n, k, a, lda, b, ldb, c, ldc);
#else
  // Pack B^T once (pure data movement — bitwise neutral) and run the NT
  // kernel, so the NN and NT products share one accumulation schedule.
  // The scratch is thread_local so repeated products (training loops,
  // batched serving) never reallocate, and the transpose runs in 32x32
  // tiles so both the strided reads and the strided writes stay within a
  // cache-resident working set.
  thread_local std::vector<double> bt;
  if (bt.size() < n * k) bt.resize(n * k);
  pack_bt(n, k, b, ldb, bt.data());
  gemm_nt(m, n, k, a, lda, bt.data(), k, c, ldc);
#endif
}

void matvec(std::size_t m, std::size_t k, const double* a, std::size_t lda,
            const double* x, double* y) {
  // Always the deterministic schedule, even in BLAS builds: the scalar
  // serving/backprop paths stay the reproducible reference everywhere.
  for (std::size_t i = 0; i < m; ++i) y[i] = dot(a + i * lda, x, k);
}

void matvec_t_ref(std::size_t m, std::size_t k, const double* a,
                  std::size_t lda, const double* x, double* y) {
  std::fill(y, y + k, 0.0);
  for (std::size_t r0 = 0; r0 < m; r0 += RB) {
    const std::size_t rend = std::min(m, r0 + RB);
    for (std::size_t c = 0; c < k; ++c) {
      double lanes[WT] = {};
      for (std::size_t r = r0; r < rend; ++r) {
        double& lane = lanes[(r - r0) % WT];
        lane = std::fma(a[r * lda + c], x[r], lane);
      }
      y[c] += reduce4(lanes);
    }
  }
}

void matvec_t(std::size_t m, std::size_t k, const double* a, std::size_t lda,
              const double* x, double* y) {
#if defined(COCKTAIL_LA_VECTOR)
  std::fill(y, y + k, 0.0);
  for (std::size_t r0 = 0; r0 < m; r0 += RB) {
    const std::size_t rend = std::min(m, r0 + RB);
    std::size_t c = 0;
    for (; c + WT <= k; c += WT) {
      // One vector register per schedule lane, each holding that lane's
      // partial sums for the four output columns c..c+3.  The row loop is
      // unrolled by the lane count so every lane register gets a constant
      // index and stays register-resident.
      __m256d l0 = _mm256_setzero_pd(), l1 = _mm256_setzero_pd();
      __m256d l2 = _mm256_setzero_pd(), l3 = _mm256_setzero_pd();
      std::size_t r = r0;
      for (; r + WT <= rend; r += WT) {
        const double* ar = a + r * lda + c;
        l0 = _mm256_fmadd_pd(_mm256_loadu_pd(ar), _mm256_set1_pd(x[r]), l0);
        l1 = _mm256_fmadd_pd(_mm256_loadu_pd(ar + lda),
                             _mm256_set1_pd(x[r + 1]), l1);
        l2 = _mm256_fmadd_pd(_mm256_loadu_pd(ar + 2 * lda),
                             _mm256_set1_pd(x[r + 2]), l2);
        l3 = _mm256_fmadd_pd(_mm256_loadu_pd(ar + 3 * lda),
                             _mm256_set1_pd(x[r + 3]), l3);
      }
      // <= 3 tail rows; after the unrolled groups they map to lanes 0..2
      // of the schedule in order.
      for (std::size_t idx = 0; r < rend; ++r, ++idx) {
        const __m256d av = _mm256_loadu_pd(a + r * lda + c);
        const __m256d xv = _mm256_set1_pd(x[r]);
        if (idx == 0)
          l0 = _mm256_fmadd_pd(av, xv, l0);
        else if (idx == 1)
          l1 = _mm256_fmadd_pd(av, xv, l1);
        else
          l2 = _mm256_fmadd_pd(av, xv, l2);
      }
      const __m256d sum = _mm256_add_pd(_mm256_add_pd(l0, l1),
                                        _mm256_add_pd(l2, l3));
      _mm256_storeu_pd(y + c, _mm256_add_pd(_mm256_loadu_pd(y + c), sum));
    }
    for (; c < k; ++c) {
      double lanes[WT] = {};
      for (std::size_t r = r0; r < rend; ++r) {
        double& lane = lanes[(r - r0) % WT];
        lane = std::fma(a[r * lda + c], x[r], lane);
      }
      y[c] += reduce4(lanes);
    }
  }
#else
  matvec_t_ref(m, k, a, lda, x, y);
#endif
}

}  // namespace cocktail::la::kernels
