#include "la/matrix.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "la/kernels.h"

namespace cocktail::la {

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix::Matrix(std::size_t rows, std::size_t cols, Vec data)
    : rows_(rows), cols_(cols), data_(std::move(data)) {
  if (data_.size() != rows_ * cols_)
    throw std::invalid_argument("Matrix: data size != rows*cols");
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::from_rows(const std::vector<Vec>& rows) {
  // An empty stack has no first row to take the column count from, so any
  // shape we invented here would silently disagree with what the caller's
  // consumers expect.  Batch assemblers must guard the empty case
  // themselves (NnController::act_batch returns {} before ever calling us).
  if (rows.empty())
    throw std::invalid_argument("Matrix::from_rows: empty row list");
  Matrix m(rows.size(), rows.front().size());
  for (std::size_t r = 0; r < rows.size(); ++r) {
    if (rows[r].size() != m.cols_)
      throw std::invalid_argument("Matrix::from_rows: ragged rows");
    std::copy(rows[r].begin(), rows[r].end(), &m.data_[r * m.cols_]);
  }
  return m;
}

Matrix Matrix::row_vector(const Vec& v) { return Matrix(1, v.size(), v); }

Matrix Matrix::col_vector(const Vec& v) { return Matrix(v.size(), 1, v); }

Matrix Matrix::diagonal(const Vec& diag) {
  Matrix m(diag.size(), diag.size());
  for (std::size_t i = 0; i < diag.size(); ++i) m(i, i) = diag[i];
  return m;
}

double& Matrix::operator()(std::size_t r, std::size_t c) {
  return data_[r * cols_ + c];
}

double Matrix::operator()(std::size_t r, std::size_t c) const {
  return data_[r * cols_ + c];
}

Vec Matrix::matvec(const Vec& x) const {
  if (x.size() != cols_)
    throw std::invalid_argument("Matrix::matvec: dimension mismatch");
  Vec y(rows_, 0.0);
  kernels::matvec(rows_, cols_, data_.data(), cols_, x.data(), y.data());
  return y;
}

Vec Matrix::matvec_transpose(const Vec& x) const {
  if (x.size() != rows_)
    throw std::invalid_argument("Matrix::matvec_transpose: dimension mismatch");
  Vec y(cols_, 0.0);
  kernels::matvec_t(rows_, cols_, data_.data(), cols_, x.data(), y.data());
  return y;
}

Matrix Matrix::matmul(const Matrix& other) const {
  if (cols_ != other.rows_)
    throw std::invalid_argument("Matrix::matmul: dimension mismatch");
  Matrix out(rows_, other.cols_);
  // No sparsity short-cuts here: the old `if (a_ik == 0.0) continue;` skip
  // silently dropped NaN/Inf from the other operand (IEEE: 0 * NaN = NaN),
  // letting non-finite values pass through products undetected.  The
  // blocked kernel touches every product.
  kernels::gemm_nn(rows_, other.cols_, cols_, data_.data(), cols_,
                   other.data_.data(), other.cols_, out.data_.data(),
                   other.cols_);
  return out;
}

Matrix Matrix::matmul_nt(const Matrix& other) const {
  if (cols_ != other.cols_)
    throw std::invalid_argument("Matrix::matmul_nt: dimension mismatch");
  Matrix out(rows_, other.rows_);
  // Row r accumulates under the same fixed schedule as Matrix::matvec — the
  // bitwise-identity contract batched inference relies on (kernels::gemm_nt
  // computes each entry exactly like kernels::matvec does).
  kernels::gemm_nt(rows_, other.rows_, cols_, data_.data(), cols_,
                   other.data_.data(), other.cols_, out.data_.data(),
                   other.rows_);
  return out;
}

Matrix Matrix::transpose() const {
  Matrix out(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) out(c, r) = (*this)(r, c);
  return out;
}

Matrix Matrix::operator+(const Matrix& other) const {
  Matrix out = *this;
  out += other;
  return out;
}

Matrix Matrix::operator-(const Matrix& other) const {
  Matrix out = *this;
  out.axpy(-1.0, other);
  return out;
}

Matrix Matrix::operator*(double k) const {
  Matrix out = *this;
  out.scale_in_place(k);
  return out;
}

Matrix& Matrix::operator+=(const Matrix& other) {
  axpy(1.0, other);
  return *this;
}

void Matrix::axpy(double k, const Matrix& other) {
  if (rows_ != other.rows_ || cols_ != other.cols_)
    throw std::invalid_argument("Matrix::axpy: shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += k * other.data_[i];
}

void Matrix::fill(double value) {
  for (auto& v : data_) v = value;
}

void Matrix::scale_in_place(double k) {
  for (auto& v : data_) v *= k;
}

void Matrix::add_outer(double k, const Vec& col, const Vec& row) {
  if (col.size() != rows_ || row.size() != cols_)
    throw std::invalid_argument("Matrix::add_outer: shape mismatch");
  for (std::size_t r = 0; r < rows_; ++r) {
    // No `kc == 0.0` skip: 0 * NaN = NaN must reach the accumulator, or
    // non-finite gradients/activations pass through rank-1 updates
    // undetected.
    const double kc = k * col[r];
    double* out = &data_[r * cols_];
    for (std::size_t c = 0; c < cols_; ++c) out[c] += kc * row[c];
  }
}

void Matrix::add_row_broadcast(const Vec& v) {
  if (v.size() != cols_)
    throw std::invalid_argument("Matrix::add_row_broadcast: length mismatch");
  for (std::size_t r = 0; r < rows_; ++r) {
    double* row = &data_[r * cols_];
    for (std::size_t c = 0; c < cols_; ++c) row[c] += v[c];
  }
}

void Matrix::scale_columns(const Vec& v) {
  if (v.size() != cols_)
    throw std::invalid_argument("Matrix::scale_columns: length mismatch");
  for (std::size_t r = 0; r < rows_; ++r) {
    double* row = &data_[r * cols_];
    for (std::size_t c = 0; c < cols_; ++c) row[c] *= v[c];
  }
}

Vec Matrix::row(std::size_t r) const {
  if (r >= rows_) throw std::out_of_range("Matrix::row: index out of range");
  return Vec(data_.begin() + static_cast<std::ptrdiff_t>(r * cols_),
             data_.begin() + static_cast<std::ptrdiff_t>((r + 1) * cols_));
}

double Matrix::frobenius_norm() const { return std::sqrt(sum_squares()); }

double Matrix::sum_squares() const {
  double s = 0.0;
  for (double v : data_) s += v * v;
  return s;
}

double Matrix::inf_norm() const {
  double best = 0.0;
  for (std::size_t r = 0; r < rows_; ++r) {
    double row_sum = 0.0;
    for (std::size_t c = 0; c < cols_; ++c) row_sum += std::abs((*this)(r, c));
    best = std::max(best, row_sum);
  }
  return best;
}

double Matrix::spectral_norm(int iters) const {
  // iters <= 0 used to skip the loop and "converge" to sigma = 0.0 — an
  // unsound certified bound once it flowed into lipschitz_upper_bound and
  // SafetyMonitor::action_deviation_bound.  Reject it loudly instead.
  if (iters < 1)
    throw std::invalid_argument("Matrix::spectral_norm: iters must be >= 1");
  if (empty()) return 0.0;
  // Power iteration on M^T M from a deterministic, strictly positive start
  // vector; that start has a nonzero component along the top singular
  // direction for any nonzero matrix in practice.
  Vec v(cols_, 1.0);
  for (std::size_t i = 0; i < v.size(); ++i)
    v[i] = 1.0 + 1e-3 * static_cast<double>(i % 7);
  double sigma = 0.0;
  for (int it = 0; it < iters; ++it) {
    Vec u = matvec(v);
    Vec w = matvec_transpose(u);
    const double norm = norm_l2(w);
    if (norm < 1e-300) return 0.0;
    for (auto& x : w) x /= norm;
    v = std::move(w);
    sigma = norm_l2(matvec(v));
  }
  return sigma;
}

bool Matrix::all_finite() const { return la::all_finite(data_); }

}  // namespace cocktail::la
