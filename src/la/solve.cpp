#include "la/solve.h"

#include <cmath>
#include <stdexcept>

namespace cocktail::la {

Vec solve(const Matrix& a, const Vec& b) {
  const Matrix x = solve(a, Matrix::col_vector(b));
  Vec out(b.size());
  for (std::size_t i = 0; i < b.size(); ++i) out[i] = x(i, 0);
  return out;
}

Matrix solve(const Matrix& a, const Matrix& b) {
  if (a.rows() != a.cols())
    throw std::invalid_argument("la::solve: A must be square");
  if (a.rows() != b.rows())
    throw std::invalid_argument("la::solve: incompatible RHS");
  const std::size_t n = a.rows();
  const std::size_t m = b.cols();
  Matrix lu = a;
  Matrix x = b;
  // Gaussian elimination with partial pivoting, eliminating into x.
  for (std::size_t col = 0; col < n; ++col) {
    std::size_t pivot = col;
    double best = std::abs(lu(col, col));
    for (std::size_t r = col + 1; r < n; ++r) {
      const double cand = std::abs(lu(r, col));
      if (cand > best) {
        best = cand;
        pivot = r;
      }
    }
    if (best < 1e-12)
      throw std::runtime_error("la::solve: matrix is singular to tolerance");
    if (pivot != col) {
      for (std::size_t c = 0; c < n; ++c) std::swap(lu(col, c), lu(pivot, c));
      for (std::size_t c = 0; c < m; ++c) std::swap(x(col, c), x(pivot, c));
    }
    const double diag = lu(col, col);
    for (std::size_t r = col + 1; r < n; ++r) {
      const double factor = lu(r, col) / diag;
      if (factor == 0.0) continue;
      for (std::size_t c = col; c < n; ++c) lu(r, c) -= factor * lu(col, c);
      for (std::size_t c = 0; c < m; ++c) x(r, c) -= factor * x(col, c);
    }
  }
  // Back substitution.
  for (std::size_t col = n; col-- > 0;) {
    const double diag = lu(col, col);
    for (std::size_t c = 0; c < m; ++c) {
      double acc = x(col, c);
      for (std::size_t k = col + 1; k < n; ++k) acc -= lu(col, k) * x(k, c);
      x(col, c) = acc / diag;
    }
  }
  return x;
}

Matrix inverse(const Matrix& a) {
  return solve(a, Matrix::identity(a.rows()));
}

DareResult solve_dare(const Matrix& a, const Matrix& b, const Matrix& q,
                      const Matrix& r, int max_iters, double tol) {
  if (a.rows() != a.cols())
    throw std::invalid_argument("solve_dare: A must be square");
  if (b.rows() != a.rows())
    throw std::invalid_argument("solve_dare: B row mismatch");
  const Matrix at = a.transpose();
  const Matrix bt = b.transpose();
  Matrix p = q;
  for (int it = 0; it < max_iters; ++it) {
    // G = R + B'PB,  K = G^-1 B'PA,  P+ = A'P(A - BK) + Q
    const Matrix pb = p.matmul(b);
    const Matrix g = r + bt.matmul(pb);
    const Matrix k = solve(g, bt.matmul(p.matmul(a)));
    const Matrix a_cl = a - b.matmul(k);
    Matrix p_next = at.matmul(p.matmul(a_cl)) + q;
    // Symmetrize to keep round-off from accumulating.
    for (std::size_t i = 0; i < p_next.rows(); ++i)
      for (std::size_t j = i + 1; j < p_next.cols(); ++j) {
        const double avg = 0.5 * (p_next(i, j) + p_next(j, i));
        p_next(i, j) = avg;
        p_next(j, i) = avg;
      }
    const double delta = (p_next - p).frobenius_norm();
    p = std::move(p_next);
    if (delta < tol) {
      const Matrix pb2 = p.matmul(b);
      const Matrix g2 = r + bt.matmul(pb2);
      DareResult result;
      result.p = p;
      result.k = solve(g2, bt.matmul(p.matmul(a)));
      result.iterations = it + 1;
      return result;
    }
  }
  throw std::runtime_error("solve_dare: Riccati iteration did not converge");
}

}  // namespace cocktail::la
