#include "la/vec.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace cocktail::la {
namespace {

void require_same_size(const Vec& a, const Vec& b, const char* op) {
  if (a.size() != b.size())
    throw std::invalid_argument(std::string("la::") + op +
                                ": dimension mismatch");
}

}  // namespace

Vec add(const Vec& a, const Vec& b) {
  require_same_size(a, b, "add");
  Vec c(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) c[i] = a[i] + b[i];
  return c;
}

Vec sub(const Vec& a, const Vec& b) {
  require_same_size(a, b, "sub");
  Vec c(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) c[i] = a[i] - b[i];
  return c;
}

Vec scale(const Vec& a, double k) {
  Vec c(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) c[i] = k * a[i];
  return c;
}

Vec hadamard(const Vec& a, const Vec& b) {
  require_same_size(a, b, "hadamard");
  Vec c(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) c[i] = a[i] * b[i];
  return c;
}

void axpy(Vec& a, double k, const Vec& b) {
  require_same_size(a, b, "axpy");
  for (std::size_t i = 0; i < a.size(); ++i) a[i] += k * b[i];
}

double dot(const Vec& a, const Vec& b) {
  require_same_size(a, b, "dot");
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

double norm_l1(const Vec& a) {
  double s = 0.0;
  for (double v : a) s += std::abs(v);
  return s;
}

double norm_l2(const Vec& a) { return std::sqrt(dot(a, a)); }

double norm_linf(const Vec& a) {
  double s = 0.0;
  for (double v : a) s = std::max(s, std::abs(v));
  return s;
}

Vec clip(const Vec& a, const Vec& lo, const Vec& hi) {
  require_same_size(a, lo, "clip");
  require_same_size(a, hi, "clip");
  Vec c(a.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    c[i] = std::clamp(a[i], lo[i], hi[i]);
  return c;
}

Vec clip(const Vec& a, double lo, double hi) {
  Vec c(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) c[i] = std::clamp(a[i], lo, hi);
  return c;
}

Vec sign(const Vec& a) {
  Vec c(a.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    c[i] = a[i] > 0.0 ? 1.0 : (a[i] < 0.0 ? -1.0 : 0.0);
  return c;
}

Vec concat(const Vec& a, const Vec& b) {
  Vec c;
  c.reserve(a.size() + b.size());
  c.insert(c.end(), a.begin(), a.end());
  c.insert(c.end(), b.begin(), b.end());
  return c;
}

Vec constant(std::size_t n, double value) { return Vec(n, value); }

Vec zeros(std::size_t n) { return Vec(n, 0.0); }

bool all_finite(const Vec& a) {
  return std::all_of(a.begin(), a.end(),
                     [](double v) { return std::isfinite(v); });
}

}  // namespace cocktail::la
