// Deterministic blocked/SIMD linear-algebra kernels.
//
// Raw-pointer GEMM/matvec kernels implementing the fixed accumulation
// schedule of la/kernel_config.h.  Each optimized kernel has a scalar
// reference twin (`*_ref`) that executes the SAME schedule in plain loops;
// the pair is bitwise identical by construction (pinned by test_la), so the
// reference doubles as both a correctness oracle and the portable fallback.
//
// All implementations live in kernels.cpp, which the build compiles with
// -ffp-contract=off: no compiler may fuse a mul+add into an FMA there, so
// the schedule's operation sequence — and therefore every bit — is
// identical across optimization levels, vector ISAs (the COCKTAIL_SIMD
// toggle), and conforming compilers.
//
// With -DCOCKTAIL_BLAS=ON the two GEMM entry points route to an external
// BLAS dgemm instead (peak FLOPS, vendor-defined accumulation order): the
// bitwise-identity contract between batched and scalar paths is
// deliberately given up.  matvec/matvec_transpose always stay on the
// deterministic schedule.
#pragma once

#include <cstddef>

namespace cocktail::la::kernels {

/// True when this build routes GEMM through an external BLAS
/// (-DCOCKTAIL_BLAS=ON) and the bitwise-identity guarantees are off.
[[nodiscard]] bool blas_enabled() noexcept;

/// One dot product of length `k` under the fixed dot schedule.
[[nodiscard]] double dot(const double* a, const double* b, std::size_t k);
/// Scalar reference of the same schedule (bitwise identical to dot()).
[[nodiscard]] double dot_ref(const double* a, const double* b, std::size_t k);

/// C = A * B^T.  A is m x k (row stride lda), B is n x k (row stride ldb),
/// C is m x n (row stride ldc).  C(i, j) = dot(row i of A, row j of B)
/// under the fixed dot schedule; rows/columns are fully independent, so any
/// row of C is bitwise identical to the corresponding matvec.
void gemm_nt(std::size_t m, std::size_t n, std::size_t k, const double* a,
             std::size_t lda, const double* b, std::size_t ldb, double* c,
             std::size_t ldc);
/// Scalar reference of the same schedule (bitwise identical to gemm_nt()
/// in non-BLAS builds).
void gemm_nt_ref(std::size_t m, std::size_t n, std::size_t k, const double* a,
                 std::size_t lda, const double* b, std::size_t ldb, double* c,
                 std::size_t ldc);

/// C = A * B.  A is m x k (row stride lda), B is k x n (row stride ldb),
/// C is m x n (row stride ldc).  Internally packs B^T once and runs the
/// gemm_nt schedule, so C(i, j) accumulates exactly like
/// dot(row i of A, column j of B).
void gemm_nn(std::size_t m, std::size_t n, std::size_t k, const double* a,
             std::size_t lda, const double* b, std::size_t ldb, double* c,
             std::size_t ldc);
/// Scalar reference of the same schedule, written directly against the
/// strided column (no packing) — an independent implementation that must
/// still match gemm_nn() bitwise in non-BLAS builds.
void gemm_nn_ref(std::size_t m, std::size_t n, std::size_t k, const double* a,
                 std::size_t lda, const double* b, std::size_t ldb, double* c,
                 std::size_t ldc);

/// y = A x.  A is m x k (row stride lda); y[i] = dot(row i of A, x) under
/// the fixed dot schedule — bitwise identical to row i of gemm_nt(A, {x}).
void matvec(std::size_t m, std::size_t k, const double* a, std::size_t lda,
            const double* x, double* y);

/// y = A^T x.  A is m x k (row stride lda), x has m entries, y has k.
/// Follows the transpose schedule of kernel_config.h.
void matvec_t(std::size_t m, std::size_t k, const double* a, std::size_t lda,
              const double* x, double* y);
/// Scalar reference of the transpose schedule (bitwise identical).
void matvec_t_ref(std::size_t m, std::size_t k, const double* a,
                  std::size_t lda, const double* x, double* y);

}  // namespace cocktail::la::kernels
