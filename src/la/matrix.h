// Dense row-major matrix.
//
// Sized for the library's workloads: NN layers up to ~128x128, serving
// GEMM batches, and the tiny Riccati recursions behind the LQR expert.
// matvec/matvec_transpose/matmul/matmul_nt run on the deterministic
// blocked/SIMD kernels of la/kernels.h: every reduction follows the single
// fixed accumulation schedule of la/kernel_config.h, so results are
// bitwise identical across the scalar and batched paths, worker counts,
// vector ISAs, and optimization levels.  No BLAS dependency by default;
// -DCOCKTAIL_BLAS=ON trades the GEMM determinism contract for peak FLOPS.
#pragma once

#include <cstddef>
#include <vector>

#include "la/vec.h"

namespace cocktail::la {

class Matrix {
 public:
  Matrix() = default;
  /// rows x cols, zero-initialized.
  Matrix(std::size_t rows, std::size_t cols);
  /// rows x cols with every entry = fill.
  Matrix(std::size_t rows, std::size_t cols, double fill);
  /// From row-major data; data.size() must equal rows*cols.
  Matrix(std::size_t rows, std::size_t cols, Vec data);

  [[nodiscard]] static Matrix identity(std::size_t n);
  /// Stacks `rows` (all the same length) into a rows.size() x rows[0].size()
  /// matrix — the batch-assembly entry point of the serving runtime.
  /// Throws std::invalid_argument on an empty list (there is no first row
  /// to take the column count from) and on ragged rows; batch assemblers
  /// must handle the empty case explicitly before calling.
  [[nodiscard]] static Matrix from_rows(const std::vector<Vec>& rows);
  /// Matrix whose single row is `v`.
  [[nodiscard]] static Matrix row_vector(const Vec& v);
  /// Matrix whose single column is `v`.
  [[nodiscard]] static Matrix col_vector(const Vec& v);
  /// Diagonal matrix from a vector.
  [[nodiscard]] static Matrix diagonal(const Vec& diag);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] std::size_t size() const noexcept { return data_.size(); }
  [[nodiscard]] bool empty() const noexcept { return data_.empty(); }

  double& operator()(std::size_t r, std::size_t c);
  double operator()(std::size_t r, std::size_t c) const;

  [[nodiscard]] const Vec& data() const noexcept { return data_; }
  [[nodiscard]] Vec& data() noexcept { return data_; }

  /// y = M x, under the fixed dot schedule (la/kernel_config.h).
  [[nodiscard]] Vec matvec(const Vec& x) const;
  /// y = M^T x  (used heavily by backprop), under the fixed transpose
  /// schedule.
  [[nodiscard]] Vec matvec_transpose(const Vec& x) const;
  /// C = this * other, on the blocked GEMM kernel (same dot schedule).
  [[nodiscard]] Matrix matmul(const Matrix& other) const;
  /// C = this * other^T without materializing the transpose.  Row r of the
  /// result accumulates exactly like `other.matvec(row r of this)` — the
  /// same fixed dot schedule — so batched NN layers built on this GEMM are
  /// bitwise identical per row to the per-sample matvec path (not under
  /// -DCOCKTAIL_BLAS=ON, which opts out of the contract).
  [[nodiscard]] Matrix matmul_nt(const Matrix& other) const;
  [[nodiscard]] Matrix transpose() const;
  [[nodiscard]] Matrix operator+(const Matrix& other) const;
  [[nodiscard]] Matrix operator-(const Matrix& other) const;
  [[nodiscard]] Matrix operator*(double k) const;
  Matrix& operator+=(const Matrix& other);
  /// this += k * other.
  void axpy(double k, const Matrix& other);
  void fill(double value);
  void scale_in_place(double k);

  /// Rank-1 update: this += k * col * row^T  (outer product accumulate).
  void add_outer(double k, const Vec& col, const Vec& row);

  /// Adds `v` to every row (bias broadcast): this(r, c) += v[c].
  void add_row_broadcast(const Vec& v);
  /// Scales column c of every row by `v[c]` (per-output scaling broadcast).
  void scale_columns(const Vec& v);
  /// Copy of row r as a vector.
  [[nodiscard]] Vec row(std::size_t r) const;

  [[nodiscard]] double frobenius_norm() const;
  /// Sum of squared entries (the L2 regularizer term ||W||_2^2).
  [[nodiscard]] double sum_squares() const;
  /// max_i sum_j |m_ij| — induced infinity norm.
  [[nodiscard]] double inf_norm() const;
  /// Largest singular value via power iteration on M^T M.  `iters`
  /// iterations from a deterministic start; accurate to ~1e-9 for the
  /// well-separated spectra NN layers have in practice.  Throws
  /// std::invalid_argument when iters < 1: a zero-iteration "estimate"
  /// would return 0.0, which downstream certified Lipschitz bounds
  /// (Mlp::lipschitz_upper_bound -> SafetyMonitor::action_deviation_bound)
  /// would treat as a sound bound of zero.
  [[nodiscard]] double spectral_norm(int iters = 100) const;

  [[nodiscard]] bool all_finite() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  Vec data_;
};

}  // namespace cocktail::la
