// Small dense solvers backing the LQR expert (discrete Riccati recursion)
// and the polynomial-controller synthesis.
#pragma once

#include "la/matrix.h"
#include "la/vec.h"

namespace cocktail::la {

/// Solves A x = b by Gaussian elimination with partial pivoting.
/// Throws std::runtime_error on (numerically) singular A.
[[nodiscard]] Vec solve(const Matrix& a, const Vec& b);

/// Solves A X = B column-by-column.
[[nodiscard]] Matrix solve(const Matrix& a, const Matrix& b);

/// Matrix inverse via solve(A, I).  Throws on singular input.
[[nodiscard]] Matrix inverse(const Matrix& a);

/// Iterates the discrete-time algebraic Riccati equation
///   P <- A'PA - A'PB (R + B'PB)^-1 B'PA + Q
/// to a fixed point and returns the stabilizing gain
///   K = (R + B'PB)^-1 B'PA,
/// so that u = -K s.  Throws if the iteration fails to converge.
struct DareResult {
  Matrix p;  ///< Riccati fixed point.
  Matrix k;  ///< Feedback gain; u = -K s stabilizes (A - B K).
  int iterations = 0;
};
[[nodiscard]] DareResult solve_dare(const Matrix& a, const Matrix& b,
                                    const Matrix& q, const Matrix& r,
                                    int max_iters = 10000, double tol = 1e-12);

}  // namespace cocktail::la
