// The ONE place the linear-algebra accumulation schedule is defined.
//
// Every dot-product-shaped reduction in src/la (matvec, matvec_transpose,
// matmul, matmul_nt — and therefore every NN forward/backward pass, GEMM
// batch, and reach interval propagation built on them) follows a single
// fixed accumulation schedule parameterized by the constants below.  Both
// the vectorized kernels and the scalar reference implementations in
// la/kernels.cpp execute this schedule operation-for-operation, so their
// results are bitwise identical — which is what lets batched serving,
// parallel training, and the plain scalar path all agree row-for-row on
// every platform, for any worker count.
//
// THE DOT SCHEDULE (matvec / matmul / matmul_nt), for a reduction of
// length K over index t:
//   1. K is split into consecutive blocks of kDotBlockK elements (the last
//      block may be partial).
//   2. Inside a block starting at t0, kDotLanes independent lane
//      accumulators are used: lane (t - t0) % kDotLanes accumulates the
//      product at t with ONE correctly-rounded fused multiply-add,
//      lane = fma(a_t, b_t, lane), in increasing t.  Lanes start at +0.0.
//   3. At the end of each block the lanes are combined with a fixed
//      pairwise tree of plain additions:
//      ((l0+l1)+(l2+l3)) + ((l4+l5)+(l6+l7)).
//   4. Block sums are added to the running accumulator in block order,
//      starting from +0.0.
//
// THE TRANSPOSE SCHEDULE (matvec_transpose), for y[c] = sum_r M(r,c)*x[r]:
// identical in shape, but the reduction index is the row r, with
// kTransposeLanes lanes and kTransposeBlockR-row blocks; the lane tree is
// (l0+l1)+(l2+l3).
//
// The fma in step 2 is the IEEE-754 fusedMultiplyAdd — a single rounding.
// It is the same bits whether it executes as a vfmadd instruction, as an
// inlined scalar fma, or through libm's software fallback on hardware
// without FMA, which is why the schedule can demand it everywhere.
//
// Changing ANY constant here changes the bits of every trained network and
// cached artifact: bump util::kModelCacheVersion in the same commit.
#pragma once

#include <cstddef>

namespace cocktail::la::kernels {

/// Lane count of the dot schedule.  8 doubles = two 256-bit AVX2 registers
/// (or one AVX-512 register); also deep enough to hide fma latency.
inline constexpr std::size_t kDotLanes = 8;

/// k-block length of the dot schedule.  Must be a multiple of kDotLanes.
/// 256 doubles = 2 KiB per operand panel — the per-block operand slices of
/// a register tile stay L1-resident.
inline constexpr std::size_t kDotBlockK = 256;

/// Lane count of the transpose schedule.  4 keeps the per-column lane
/// accumulators register-resident in the vectorized kernel.
inline constexpr std::size_t kTransposeLanes = 4;

/// Row-block length of the transpose schedule.
inline constexpr std::size_t kTransposeBlockR = 256;

/// Register-tile width of the blocked GEMM: how many output columns (rows
/// of B in the NT kernel) share one pass over a row of A.  PURE performance
/// knob — it reuses loads, never reorders any accumulation, so it does NOT
/// participate in the schedule and may be retuned freely.
inline constexpr std::size_t kGemmTileCols = 4;

/// Cache-block width of the blocked GEMM: how many output columns (rows of
/// B in the NT kernel) are visited per sweep over the rows of A, keeping
/// the active B panel L2-resident.  PURE performance knob, like
/// kGemmTileCols: it only changes the order output elements are visited,
/// never how any one of them is accumulated.
inline constexpr std::size_t kGemmBlockCols = 64;

static_assert((kDotLanes & (kDotLanes - 1)) == 0, "lane tree needs 2^n");
static_assert(kDotLanes == 8, "the fixed lane tree is written for 8 lanes");
static_assert(kDotBlockK % kDotLanes == 0, "blocks must hold whole lanes");
static_assert((kTransposeLanes & (kTransposeLanes - 1)) == 0,
              "lane tree needs 2^n");
static_assert(kTransposeLanes == 4,
              "the fixed transpose lane tree is written for 4 lanes");
static_assert(kTransposeBlockR % kTransposeLanes == 0,
              "blocks must hold whole lanes");
static_assert(kGemmBlockCols % kGemmTileCols == 0,
              "cache blocks must hold whole register tiles");

}  // namespace cocktail::la::kernels
