// Dense vector helpers.
//
// Vectors are plain std::vector<double> throughout the library (states,
// controls, gradients); the free functions here keep call sites readable
// without introducing an expression-template layer the problem sizes
// (|s| <= 4, |u| <= 1, hidden widths <= 128) do not need.
#pragma once

#include <cstddef>
#include <vector>

namespace cocktail::la {

using Vec = std::vector<double>;

/// c = a + b.  Dimensions must match.
[[nodiscard]] Vec add(const Vec& a, const Vec& b);
/// c = a - b.  Dimensions must match.
[[nodiscard]] Vec sub(const Vec& a, const Vec& b);
/// c = k * a.
[[nodiscard]] Vec scale(const Vec& a, double k);
/// c_i = a_i * b_i.
[[nodiscard]] Vec hadamard(const Vec& a, const Vec& b);
/// a += k * b (in place).
void axpy(Vec& a, double k, const Vec& b);
/// Inner product.
[[nodiscard]] double dot(const Vec& a, const Vec& b);
/// Sum of |a_i| (the paper's control-energy norm).
[[nodiscard]] double norm_l1(const Vec& a);
/// Euclidean norm.
[[nodiscard]] double norm_l2(const Vec& a);
/// max |a_i|.
[[nodiscard]] double norm_linf(const Vec& a);
/// Element-wise clip to [lo_i, hi_i].  `lo`/`hi` must match `a`.
[[nodiscard]] Vec clip(const Vec& a, const Vec& lo, const Vec& hi);
/// Element-wise clip to the scalar interval [lo, hi].
[[nodiscard]] Vec clip(const Vec& a, double lo, double hi);
/// Element-wise sign: -1, 0, or +1.
[[nodiscard]] Vec sign(const Vec& a);
/// Concatenation [a; b] (used for critic inputs Q(s, a)).
[[nodiscard]] Vec concat(const Vec& a, const Vec& b);
/// Constant vector.
[[nodiscard]] Vec constant(std::size_t n, double value);
/// All-zero vector.
[[nodiscard]] Vec zeros(std::size_t n);
/// True if every element is finite.
[[nodiscard]] bool all_finite(const Vec& a);

}  // namespace cocktail::la
