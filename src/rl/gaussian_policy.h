// Diagonal Gaussian policy for continuous actions.
//
// The mean is a tanh-headed MLP (outputs in [-1, 1]; the environment scales
// to its native range, e.g. the mixing weights' ±AB), and the log standard
// deviation is a state-independent learned vector.  Supplies everything PPO
// needs: sampling with log-probabilities, analytic gradients of log π and
// of the diagonal-Gaussian KL divergence used in the paper's penalized
// surrogate objective.
//
// Concurrency contract: PpoGaussian::update fans the per-sample gradient
// work across the pool, so every const method here (mean, log_prob,
// kl_from, the accumulate_* family) runs concurrently from chunk workers.
// They must stay free of hidden mutable state — each call owns its
// Mlp::Workspace and writes only through the caller-provided accumulators.
#pragma once

#include <cstdint>

#include "la/vec.h"
#include "nn/mlp.h"
#include "util/rng.h"

namespace cocktail::rl {

class GaussianPolicy {
 public:
  /// Builds a tanh-headed mean network [state_dim, hidden..., action_dim]
  /// and initializes log_std to log(initial_std).
  GaussianPolicy(std::size_t state_dim,
                 const std::vector<std::size_t>& hidden,
                 std::size_t action_dim, double initial_std,
                 std::uint64_t seed);

  [[nodiscard]] std::size_t state_dim() const { return mean_net_.input_dim(); }
  [[nodiscard]] std::size_t action_dim() const {
    return mean_net_.output_dim();
  }

  /// Deterministic action (the mean) — used at evaluation time and exported
  /// into the MixedController.
  [[nodiscard]] la::Vec mean(const la::Vec& s) const;

  struct Sample {
    la::Vec action;
    double log_prob = 0.0;
  };
  /// Draws a ~ N(mean(s), diag(exp(log_std))²).
  [[nodiscard]] Sample sample(const la::Vec& s, util::Rng& rng) const;

  /// log π(a | s).
  [[nodiscard]] double log_prob(const la::Vec& s, const la::Vec& a) const;

  /// KL( N(mu_old, std_old) || N(mean(s), std) ) for diagonal Gaussians.
  [[nodiscard]] double kl_from(const la::Vec& mu_old, const la::Vec& std_old,
                               const la::Vec& s) const;

  /// Accumulates d(-coef * log π(a|s))/dθ into the network gradient and the
  /// log_std gradient.  Positive `coef` therefore *increases* log-prob when
  /// the optimizer descends — callers pass coef = ratio * advantage.
  void accumulate_log_prob_gradient(const la::Vec& s, const la::Vec& a,
                                    double coef, nn::Gradients& mean_grads,
                                    la::Vec& log_std_grads) const;

  /// Accumulates d(coef * KL(old || new))/dθ for the *new* (current) policy.
  void accumulate_kl_gradient(const la::Vec& mu_old, const la::Vec& std_old,
                              const la::Vec& s, double coef,
                              nn::Gradients& mean_grads,
                              la::Vec& log_std_grads) const;

  /// Policy entropy (state-independent for a diagonal Gaussian).
  [[nodiscard]] double entropy() const;
  /// Accumulates d(-coef * entropy)/d log_std (entropy bonus).
  void accumulate_entropy_gradient(double coef, la::Vec& log_std_grads) const;

  [[nodiscard]] const nn::Mlp& mean_net() const noexcept { return mean_net_; }
  [[nodiscard]] nn::Mlp& mean_net() noexcept { return mean_net_; }
  [[nodiscard]] const la::Vec& log_std() const noexcept { return log_std_; }
  [[nodiscard]] la::Vec& log_std() noexcept { return log_std_; }
  [[nodiscard]] la::Vec stddev() const;

 private:
  nn::Mlp mean_net_;
  la::Vec log_std_;
};

}  // namespace cocktail::rl
