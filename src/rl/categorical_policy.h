// Softmax (categorical) policy over a finite action set.
//
// Drives the switching baseline AS: the action is *which expert* controls
// the plant this sampling period — exactly the discrete adaptation space of
// [4] that the paper's mixing action space strictly contains.
//
// Concurrency contract: PpoCategorical::update fans the per-sample gradient
// work across the pool, so every const method here (probabilities,
// log_prob, kl_from, the accumulate_* family) runs concurrently from chunk
// workers.  They must stay free of hidden mutable state — each call owns
// its Mlp::Workspace and writes only through the caller-provided
// accumulators.
#pragma once

#include <cstdint>

#include "la/vec.h"
#include "nn/mlp.h"
#include "util/rng.h"

namespace cocktail::rl {

class CategoricalPolicy {
 public:
  /// Logit network [state_dim, hidden..., num_actions], identity head.
  CategoricalPolicy(std::size_t state_dim,
                    const std::vector<std::size_t>& hidden,
                    std::size_t num_actions, std::uint64_t seed);

  [[nodiscard]] std::size_t state_dim() const {
    return logits_net_.input_dim();
  }
  [[nodiscard]] std::size_t num_actions() const {
    return logits_net_.output_dim();
  }

  /// Action probabilities p(· | s) (softmax of the logits).
  [[nodiscard]] la::Vec probabilities(const la::Vec& s) const;

  struct Sample {
    std::size_t action = 0;
    double log_prob = 0.0;
  };
  [[nodiscard]] Sample sample(const la::Vec& s, util::Rng& rng) const;

  [[nodiscard]] double log_prob(const la::Vec& s, std::size_t action) const;
  /// Greedy (argmax) action — evaluation-time behaviour of AS.
  [[nodiscard]] std::size_t greedy(const la::Vec& s) const;

  /// KL( p_old || p(·|s) ) given the old distribution.
  [[nodiscard]] double kl_from(const la::Vec& probs_old,
                               const la::Vec& s) const;

  /// Accumulates d(-coef * log π(a|s))/dθ into `grads`.
  void accumulate_log_prob_gradient(const la::Vec& s, std::size_t action,
                                    double coef, nn::Gradients& grads) const;
  /// Accumulates d(coef * KL(p_old || p_new))/dθ for the current network.
  void accumulate_kl_gradient(const la::Vec& probs_old, const la::Vec& s,
                              double coef, nn::Gradients& grads) const;

  [[nodiscard]] const nn::Mlp& logits_net() const noexcept {
    return logits_net_;
  }
  [[nodiscard]] nn::Mlp& logits_net() noexcept { return logits_net_; }

 private:
  nn::Mlp logits_net_;
};

/// Numerically-stable softmax.
[[nodiscard]] la::Vec softmax(const la::Vec& logits);

}  // namespace cocktail::rl
