// Episodic environment interface for the RL algorithms.
//
// The MDP of Section III-A (adaptive mixing), its switching restriction
// (the AS baseline), and the per-expert DDPG training tasks are all
// implemented as Envs in src/core; the algorithms here are generic.
#pragma once

#include <cstddef>

#include "la/vec.h"
#include "util/rng.h"

namespace cocktail::rl {

struct StepResult {
  la::Vec next_state;
  double reward = 0.0;
  /// True when the episode reached a genuine terminal state (e.g. a safety
  /// violation).  Time-limit truncation is handled by the training loop and
  /// must NOT set this flag, so bootstrapping stays correct.
  bool terminal = false;
};

class Env {
 public:
  virtual ~Env() = default;

  [[nodiscard]] virtual std::size_t state_dim() const = 0;
  /// Continuous action dimension (or number of discrete choices for
  /// categorical policies).
  [[nodiscard]] virtual std::size_t action_dim() const = 0;
  /// Episode length T.
  [[nodiscard]] virtual int max_episode_steps() const = 0;

  /// Starts a new episode; returns the initial state.
  virtual la::Vec reset(util::Rng& rng) = 0;
  /// Applies an action.  Continuous actions arrive in [-1, 1]^dim (the env
  /// owns any scaling); discrete actions arrive as a one-element vector
  /// holding the choice index.
  virtual StepResult step(const la::Vec& action, util::Rng& rng) = 0;
};

}  // namespace cocktail::rl
