// Episodic environment interface for the RL algorithms.
//
// The MDP of Section III-A (adaptive mixing), its switching restriction
// (the AS baseline), and the per-expert DDPG training tasks are all
// implemented as Envs in src/core; the algorithms here are generic.
//
// The interface is non-virtual (NVI): `reset`/`step`/`clone` are the public
// entry points and enforce the episode contract below; implementations
// override the protected `do_*` hooks.  The contract — pinned for every
// implementation by the conformance suite in tests/env_conformance.h — is:
//   * `reset`/`step` are deterministic functions of the env state and the
//     caller-supplied RNG stream (all stochasticity flows through `rng`);
//   * `StepResult::terminal` marks genuine terminal states only; hitting
//     `max_episode_steps` is time-limit truncation, which the training loop
//     owns — an env never flags (and never forbids) stepping at the limit;
//   * once a step returned `terminal`, the episode is over: stepping again
//     without an intervening `reset` throws std::logic_error (this used to
//     be silently undefined per-env behavior);
//   * `clone` yields an independent replica (same configuration, own
//     episode state) — stepping a clone never perturbs the original.  The
//     sharded collectors (rl::PpoGaussian/PpoCategorical::collect, DDPG's
//     warmup exploration) replicate one env per shard through this hook.
#pragma once

#include <cstddef>
#include <memory>
#include <stdexcept>

#include "la/vec.h"
#include "util/rng.h"

namespace cocktail::rl {

struct StepResult {
  la::Vec next_state;
  double reward = 0.0;
  /// True when the episode reached a genuine terminal state (e.g. a safety
  /// violation).  Time-limit truncation is handled by the training loop and
  /// must NOT set this flag, so bootstrapping stays correct.
  bool terminal = false;
};

class Env {
 public:
  virtual ~Env() = default;

  [[nodiscard]] virtual std::size_t state_dim() const = 0;
  /// Continuous action dimension (or number of discrete choices for
  /// categorical policies).
  [[nodiscard]] virtual std::size_t action_dim() const = 0;
  /// Episode length T.
  [[nodiscard]] virtual int max_episode_steps() const = 0;

  /// Starts a new episode; returns the initial state.
  la::Vec reset(util::Rng& rng) {
    terminal_pending_ = false;
    return do_reset(rng);
  }

  /// Applies an action.  Continuous actions arrive in [-1, 1]^dim (the env
  /// owns any scaling); discrete actions arrive as a one-element vector
  /// holding the choice index.  Throws std::logic_error when the previous
  /// step already ended the episode (`terminal` was set and no reset
  /// followed) — stepping a finished episode has no defined semantics.
  [[nodiscard]] StepResult step(const la::Vec& action, util::Rng& rng) {
    if (terminal_pending_)
      throw std::logic_error(
          "rl::Env::step: episode already reached a terminal state; "
          "call reset() before stepping again");
    StepResult result = do_step(action, rng);
    terminal_pending_ = result.terminal;
    return result;
  }

  /// Independent replica: same configuration, own copy of the episode state
  /// (including the terminal guard).  Underlying plant models / experts are
  /// shared by reference — they are const-used and safe for concurrent
  /// stepping (the same contract core::batch_rollout relies on).
  [[nodiscard]] std::unique_ptr<Env> clone() const { return do_clone(); }

 protected:
  Env() = default;
  // Copyable so implementations can do_clone via their copy constructor
  // (the guard state travels with the episode state).
  Env(const Env&) = default;
  Env& operator=(const Env&) = default;

  virtual la::Vec do_reset(util::Rng& rng) = 0;
  [[nodiscard]] virtual StepResult do_step(const la::Vec& action,
                                           util::Rng& rng) = 0;
  [[nodiscard]] virtual std::unique_ptr<Env> do_clone() const = 0;

 private:
  bool terminal_pending_ = false;
};

}  // namespace cocktail::rl
