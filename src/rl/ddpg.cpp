#include "rl/ddpg.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "nn/loss.h"
#include "nn/optimizer.h"
#include "rl/episode_shards.h"
#include "rl/noise.h"
#include "util/logging.h"

namespace cocktail::rl {
namespace {

/// Chunk grain of the per-sample gradient reduction inside one minibatch
/// update (critic regression pass, actor dQ/da pass, and the target-value
/// pre-pass).  Part of the fixed reduction tree: changing it changes
/// low-order bits.
constexpr std::size_t kGradGrain = 8;

/// One random-action warmup episode collected on a private env replica and
/// RNG stream (the sharded exploration unit; see DdpgConfig::num_env_shards).
struct WarmupEpisode {
  std::vector<Transition> transitions;
  double episode_return = 0.0;
};

WarmupEpisode run_warmup_episode(Env& env, util::Rng& rng) {
  WarmupEpisode episode;
  la::Vec s = env.reset(rng);
  for (int t = 0; t < env.max_episode_steps(); ++t) {
    la::Vec a = rng.uniform_vec(env.action_dim(), -1.0, 1.0);
    const StepResult result = env.step(a, rng);
    episode.episode_return += result.reward;
    episode.transitions.push_back(
        {std::move(s), std::move(a), result.reward, result.next_state,
         result.terminal});
    if (result.terminal) break;
    s = result.next_state;
  }
  return episode;
}

}  // namespace

double DdpgStats::final_return_mean(std::size_t window) const {
  if (episode_returns.empty()) return 0.0;
  // window == 0 would divide by zero below; the smallest meaningful window
  // is the last episode alone.
  const std::size_t n =
      std::min(std::max<std::size_t>(window, 1), episode_returns.size());
  double sum = 0.0;
  for (std::size_t i = episode_returns.size() - n; i < episode_returns.size();
       ++i)
    sum += episode_returns[i];
  return sum / static_cast<double>(n);
}

Ddpg::Ddpg(DdpgConfig config) : config_(std::move(config)) {}

void Ddpg::build_networks(std::size_t state_dim, std::size_t action_dim) {
  actor_ = nn::Mlp::make(state_dim, config_.actor_hidden, action_dim,
                         nn::Activation::kRelu, nn::Activation::kTanh,
                         util::derive_seed(config_.seed, 101));
  critic_ = nn::Mlp::make(state_dim + action_dim, config_.critic_hidden, 1,
                          nn::Activation::kRelu, nn::Activation::kIdentity,
                          util::derive_seed(config_.seed, 202));
  target_actor_ = actor_;
  target_critic_ = critic_;
}

void Ddpg::polyak_update(nn::Mlp& target, const nn::Mlp& online,
                         double polyak) {
  auto& t_layers = target.layers();
  const auto& o_layers = online.layers();
  for (std::size_t l = 0; l < t_layers.size(); ++l) {
    auto& tw = t_layers[l].w.data();
    const auto& ow = o_layers[l].w.data();
    for (std::size_t i = 0; i < tw.size(); ++i)
      tw[i] = polyak * tw[i] + (1.0 - polyak) * ow[i];
    auto& tb = t_layers[l].b;
    const auto& ob = o_layers[l].b;
    for (std::size_t i = 0; i < tb.size(); ++i)
      tb[i] = polyak * tb[i] + (1.0 - polyak) * ob[i];
  }
}

void Ddpg::initialize(Env& env) {
  rng_ = std::make_unique<util::Rng>(config_.seed);
  build_networks(env.state_dim(), env.action_dim());
  actor_opt_ = std::make_unique<nn::Adam>(config_.actor_lr);
  critic_opt_ = std::make_unique<nn::Adam>(config_.critic_lr);
  workers_ = std::make_unique<util::WorkerScope>(config_.num_workers);
  critic_reducer_ = std::make_unique<nn::ChunkedGradReducer<nn::Gradients>>(
      config_.batch_size, kGradGrain, [&] { return critic_.zero_gradients(); });
  actor_reducer_ = std::make_unique<nn::ChunkedGradReducer<nn::Gradients>>(
      config_.batch_size, kGradGrain, [&] { return actor_.zero_gradients(); });
  targets_.assign(config_.batch_size, 0.0);
  buffer_ = std::make_unique<ReplayBuffer>(config_.replay_capacity);
  noise_ = std::make_unique<OuNoise>(env.action_dim(), config_.ou_theta,
                                     config_.ou_sigma);
  total_steps_ = 0;
  episodes_done_ = 0;
  sigma_ = config_.ou_sigma;
  // One draw seeds every warmup episode slot stream (the split mirrors
  // batch_rollout's per-job seeds), so the trainer stream advances
  // identically no matter how many env clones run the warmup.
  warmup_seed_ = rng_->next();
  warmup_slot_next_ = 0;
  initialized_ = true;
}

int Ddpg::run_warmup_episodes(Env& env, int budget, DdpgStats& stats) {
  // Episode slots run in waves of num_env_shards env clones on the pool
  // (rl::run_slot_wave), then merge in fixed slot order until warmup_steps
  // transitions accumulated or the episode budget runs out.  Inclusion
  // depends only on the slot-order cumulative counts, so the collected
  // replay prefix is bitwise identical for any shard/worker count; surplus
  // wave episodes are discarded (a budget-cut slot replays its identical
  // stream on the next call).
  std::vector<std::unique_ptr<Env>> clones =
      clone_shards(env, config_.num_env_shards);
  util::ThreadPool* pool = workers_->pool();

  int ran = 0;
  std::vector<WarmupEpisode> wave(clones.size());
  while (ran < budget && total_steps_ < config_.warmup_steps) {
    const std::uint64_t base = warmup_slot_next_;
    run_slot_wave(clones, pool, warmup_seed_, base, wave,
                  [](Env& shard, util::Rng& slot_rng) {
                    return run_warmup_episode(shard, slot_rng);
                  });
    for (std::size_t j = 0; j < wave.size(); ++j) {
      if (ran >= budget || total_steps_ >= config_.warmup_steps) {
        warmup_slot_next_ = base + static_cast<std::uint64_t>(j);
        break;
      }
      total_steps_ += wave[j].transitions.size();
      for (auto& transition : wave[j].transitions)
        buffer_->add(std::move(transition));
      sigma_ *= config_.noise_decay;
      stats.episode_returns.push_back(wave[j].episode_return);
      if (progress_) progress_(episodes_done_, wave[j].episode_return);
      ++episodes_done_;
      ++ran;
      warmup_slot_next_ = base + static_cast<std::uint64_t>(j) + 1;
      wave[j] = WarmupEpisode{};
    }
  }
  return ran;
}

DdpgStats Ddpg::run_episodes(Env& env, int episodes) {
  if (!initialized_)
    throw std::logic_error("Ddpg::run_episodes: call initialize() first");
  DdpgStats stats;
  int remaining = episodes;

  // Phase 1 — sharded random-action warmup: whole episodes on env clones
  // with per-slot RNG streams, no updates (the old loop never updated
  // before warmup_steps either).  May span several run_episodes calls.
  if (remaining > 0 && total_steps_ < config_.warmup_steps)
    remaining -= run_warmup_episodes(env, remaining, stats);

  // Phase 2 — serial learned episodes: every step samples from the actor
  // the previous step just updated, so this loop is serial by construction.
  for (; remaining > 0; --remaining) {
    la::Vec s = env.reset(*rng_);
    noise_->reset();
    noise_->set_sigma(sigma_);
    double episode_return = 0.0;
    for (int t = 0; t < env.max_episode_steps(); ++t) {
      la::Vec a = actor_.forward(s);
      la::axpy(a, 1.0, noise_->sample(*rng_));
      a = la::clip(a, -1.0, 1.0);
      const StepResult result = env.step(a, *rng_);
      buffer_->add({s, a, result.reward, result.next_state, result.terminal});
      episode_return += result.reward;
      s = result.next_state;
      ++total_steps_;
      if (buffer_->size() >= config_.batch_size) update(*buffer_, *rng_);
      if (result.terminal) break;
    }
    sigma_ *= config_.noise_decay;
    stats.episode_returns.push_back(episode_return);
    if (progress_) progress_(episodes_done_, episode_return);
    ++episodes_done_;
  }
  return stats;
}

DdpgStats Ddpg::train(Env& env) {
  initialize(env);
  return run_episodes(env, config_.episodes);
}

void Ddpg::update(ReplayBuffer& buffer, util::Rng& rng) {
  const auto batch = buffer.sample(config_.batch_size, rng);
  const double inv_batch = 1.0 / static_cast<double>(batch.size());
  util::ThreadPool* pool = workers_->pool();

  // --- Target pre-pass: y_i = r + gamma * Q'(s', mu'(s')). ---
  // Batched up front so the critic chunk workers below touch only frozen
  // read-only inputs (targets, transitions, network weights) plus their
  // private gradient buffers.  Disjoint per-slot writes: worker-count
  // independent by construction.
  util::chunked_for(pool, batch.size(), kGradGrain, [&](std::size_t i) {
    const Transition* tr = batch[i];
    double target = tr->reward;
    if (!tr->terminal) {
      const la::Vec a_next = target_actor_.forward(tr->next_state);
      const la::Vec q_next =
          target_critic_.forward(la::concat(tr->next_state, a_next));
      target += config_.gamma * q_next[0];
    }
    targets_[i] = target;
  });

  // --- Critic: regress Q(s,a) onto the precomputed targets. ---
  nn::Gradients& critic_grads = critic_reducer_->reduce(
      pool, batch.size(), [&](nn::Gradients& acc, std::size_t i) {
        const Transition* tr = batch[i];
        nn::Mlp::Workspace ws;
        const la::Vec q =
            critic_.forward(la::concat(tr->state, tr->action), ws);
        const la::Vec dl = {inv_batch * 2.0 * (q[0] - targets_[i])};
        (void)critic_.backward(ws, dl, acc);
      });
  critic_grads.clip_norm(config_.grad_clip);
  critic_opt_->step(critic_, critic_grads);

  // --- Actor: ascend Q(s, mu(s)) through the critic's action input. ---
  // Runs after the critic step (sequential dependency preserved); within
  // the pass every sample reads the same frozen critic.
  const std::size_t state_dim = actor_.input_dim();
  nn::Gradients& actor_grads = actor_reducer_->reduce(
      pool, batch.size(), [&](nn::Gradients& acc, std::size_t i) {
        const Transition* tr = batch[i];
        nn::Mlp::Workspace actor_ws;
        const la::Vec a = actor_.forward(tr->state, actor_ws);
        // dQ/d[s;a] via the critic input gradient; keep the action slice.
        const la::Vec dq_dinput =
            critic_.input_gradient(la::concat(tr->state, a), {1.0});
        la::Vec dq_da(
            dq_dinput.begin() + static_cast<std::ptrdiff_t>(state_dim),
            dq_dinput.end());
        // Gradient *descent* on -Q: dl/da = -dQ/da, averaged over the batch.
        for (auto& v : dq_da) v *= -inv_batch;
        (void)actor_.backward(actor_ws, dq_da, acc);
      });
  actor_grads.clip_norm(config_.grad_clip);
  actor_opt_->step(actor_, actor_grads);

  polyak_update(target_actor_, actor_, config_.polyak);
  polyak_update(target_critic_, critic_, config_.polyak);
}

}  // namespace cocktail::rl
