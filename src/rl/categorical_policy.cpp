#include "rl/categorical_policy.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace cocktail::rl {

la::Vec softmax(const la::Vec& logits) {
  const double max_logit = *std::max_element(logits.begin(), logits.end());
  la::Vec p(logits.size());
  double sum = 0.0;
  for (std::size_t i = 0; i < logits.size(); ++i) {
    p[i] = std::exp(logits[i] - max_logit);
    sum += p[i];
  }
  for (auto& v : p) v /= sum;
  return p;
}

CategoricalPolicy::CategoricalPolicy(std::size_t state_dim,
                                     const std::vector<std::size_t>& hidden,
                                     std::size_t num_actions,
                                     std::uint64_t seed)
    : logits_net_(nn::Mlp::make(state_dim, hidden, num_actions,
                                nn::Activation::kTanh,
                                nn::Activation::kIdentity, seed)) {}

la::Vec CategoricalPolicy::probabilities(const la::Vec& s) const {
  return softmax(logits_net_.forward(s));
}

CategoricalPolicy::Sample CategoricalPolicy::sample(const la::Vec& s,
                                                    util::Rng& rng) const {
  const la::Vec p = probabilities(s);
  const double draw = rng.uniform();
  double cum = 0.0;
  Sample out;
  out.action = p.size() - 1;  // guard against rounding: default to last.
  for (std::size_t i = 0; i < p.size(); ++i) {
    cum += p[i];
    if (draw < cum) {
      out.action = i;
      break;
    }
  }
  out.log_prob = std::log(std::max(p[out.action], 1e-300));
  return out;
}

double CategoricalPolicy::log_prob(const la::Vec& s,
                                   std::size_t action) const {
  const la::Vec p = probabilities(s);
  if (action >= p.size())
    throw std::invalid_argument("CategoricalPolicy::log_prob: bad action");
  return std::log(std::max(p[action], 1e-300));
}

std::size_t CategoricalPolicy::greedy(const la::Vec& s) const {
  const la::Vec logits = logits_net_.forward(s);
  return static_cast<std::size_t>(
      std::max_element(logits.begin(), logits.end()) - logits.begin());
}

double CategoricalPolicy::kl_from(const la::Vec& probs_old,
                                  const la::Vec& s) const {
  const la::Vec p = probabilities(s);
  double kl = 0.0;
  for (std::size_t i = 0; i < p.size(); ++i) {
    if (probs_old[i] <= 0.0) continue;
    kl += probs_old[i] *
          (std::log(probs_old[i]) - std::log(std::max(p[i], 1e-300)));
  }
  return std::max(kl, 0.0);
}

void CategoricalPolicy::accumulate_log_prob_gradient(const la::Vec& s,
                                                     std::size_t action,
                                                     double coef,
                                                     nn::Gradients& grads) const {
  nn::Mlp::Workspace ws;
  const la::Vec logits = logits_net_.forward(s, ws);
  const la::Vec p = softmax(logits);
  // d log p(a) / d logit_j = 1[j==a] - p_j; accumulate -coef * that.
  la::Vec dl(p.size());
  for (std::size_t j = 0; j < p.size(); ++j)
    dl[j] = -coef * ((j == action ? 1.0 : 0.0) - p[j]);
  (void)logits_net_.backward(ws, dl, grads);
}

void CategoricalPolicy::accumulate_kl_gradient(const la::Vec& probs_old,
                                               const la::Vec& s, double coef,
                                               nn::Gradients& grads) const {
  nn::Mlp::Workspace ws;
  const la::Vec logits = logits_net_.forward(s, ws);
  const la::Vec p = softmax(logits);
  // d KL(p_old || p_new) / d logit_j = p_new_j - p_old_j.
  la::Vec dl(p.size());
  for (std::size_t j = 0; j < p.size(); ++j)
    dl[j] = coef * (p[j] - probs_old[j]);
  (void)logits_net_.backward(ws, dl, grads);
}

}  // namespace cocktail::rl
