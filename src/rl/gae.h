// Generalized Advantage Estimation (the advantage estimator Â in the
// paper's PPO objective).
#pragma once

#include <vector>

#include "la/vec.h"

namespace cocktail::rl {

/// One on-policy rollout segment (may span several episodes; `terminal[t]`
/// marks real episode ends, `truncated[t]` marks time-limit cuts where the
/// value bootstrap must continue through `next_value[t]`).
struct RolloutBatch {
  std::vector<la::Vec> states;
  std::vector<la::Vec> actions;       ///< continuous actions...
  std::vector<std::size_t> discrete_actions;  ///< ...or discrete indices.
  std::vector<double> rewards;
  std::vector<double> values;       ///< V(s_t) under the value net at collect time.
  std::vector<double> next_values;  ///< V(s_{t+1}).
  std::vector<double> log_probs;    ///< log pi_old(a_t | s_t).
  std::vector<bool> terminal;
  std::vector<bool> truncated;

  [[nodiscard]] std::size_t size() const { return states.size(); }
};

struct AdvantageResult {
  std::vector<double> advantages;  ///< GAE(γ, λ), normalized if requested.
  std::vector<double> returns;     ///< advantage + value — value-net targets.
};

/// Computes GAE over a batch.  δ_t = r_t + γ·V(s_{t+1})·(1-terminal) − V(s_t);
/// the recursion resets across both terminal and truncated boundaries.
[[nodiscard]] AdvantageResult compute_gae(const RolloutBatch& batch,
                                          double gamma, double lambda,
                                          bool normalize = true);

}  // namespace cocktail::rl
