#include "rl/replay_buffer.h"

#include <stdexcept>

namespace cocktail::rl {

ReplayBuffer::ReplayBuffer(std::size_t capacity) : capacity_(capacity) {
  if (capacity_ == 0)
    throw std::invalid_argument("ReplayBuffer: capacity must be positive");
  storage_.reserve(capacity_);
}

void ReplayBuffer::add(Transition transition) {
  if (storage_.size() < capacity_) {
    storage_.push_back(std::move(transition));
  } else {
    storage_[next_] = std::move(transition);
  }
  next_ = (next_ + 1) % capacity_;
}

std::vector<const Transition*> ReplayBuffer::sample(std::size_t batch,
                                                    util::Rng& rng) const {
  if (empty()) throw std::logic_error("ReplayBuffer::sample: buffer empty");
  std::vector<const Transition*> out;
  out.reserve(batch);
  for (std::size_t i = 0; i < batch; ++i)
    out.push_back(&storage_[rng.uniform_index(storage_.size())]);
  return out;
}

void ReplayBuffer::clear() {
  storage_.clear();
  next_ = 0;
}

}  // namespace cocktail::rl
