// Deep Deterministic Policy Gradient (Lillicrap et al. [17]).
//
// Used two ways in the reproduction:
//  * to train the expert controllers κ1/κ2 (the paper obtains its experts
//    "by DDPG with different hyper-parameters"), and
//  * as the alternative mixing learner of Remark 1 (DDPG on the weight MDP).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "nn/grad_reduce.h"
#include "nn/mlp.h"
#include "nn/optimizer.h"
#include "rl/env.h"
#include "rl/noise.h"
#include "rl/replay_buffer.h"
#include "util/thread_pool.h"

namespace cocktail::rl {

struct DdpgConfig {
  std::vector<std::size_t> actor_hidden = {64, 64};
  std::vector<std::size_t> critic_hidden = {64, 64};
  double gamma = 0.99;
  double polyak = 0.995;        ///< target-network averaging factor.
  double actor_lr = 1e-3;
  double critic_lr = 1e-3;
  std::size_t batch_size = 64;
  std::size_t replay_capacity = 100000;
  std::size_t warmup_steps = 500;   ///< uniform-random actions before learning.
  int episodes = 150;
  double ou_theta = 0.15;
  double ou_sigma = 0.2;
  double noise_decay = 0.995;   ///< per-episode exploration decay.
  double grad_clip = 5.0;
  std::uint64_t seed = 1;
  /// Worker count for the per-sample gradient work inside one minibatch
  /// update (util::WorkerScope convention: 0 = shared pool, 1 = serial,
  /// k > 1 = dedicated pool).  Training is bitwise identical for any value:
  /// per-chunk gradient buffers merge on the fixed chunked-reduce tree.
  int num_workers = 0;
  /// Env replicas stepping concurrently during the random-action warmup
  /// phase (values < 1 behave as 1).  Warmup is decomposed into per-episode
  /// RNG slots (streams derived from one seed drawn at initialize()) whose
  /// full episodes merge into the replay buffer in fixed slot order until
  /// `warmup_steps` transitions accumulated; the slot decomposition never
  /// depends on this knob, so training is bitwise identical for ANY shard
  /// count and any worker count.  The learned phase stays serial by
  /// construction: every post-warmup step updates the actor the next action
  /// is sampled from (the same optimizer-state dependency that keeps the
  /// outer minibatch sequence serial).  Shards run on the num_workers pool.
  int num_env_shards = 1;
};

struct DdpgStats {
  std::vector<double> episode_returns;
  /// Mean return over the last `window` episodes (0 if none were run).
  /// `window` is clamped to >= 1 — it can never divide by zero.
  [[nodiscard]] double final_return_mean(std::size_t window = 10) const;
};

class Ddpg {
 public:
  explicit Ddpg(DdpgConfig config);

  /// Trains on `env` and returns stats; the actor/critic are then available
  /// through actor()/critic().  Actions sent to the env live in [-1, 1]^dim.
  [[nodiscard]] DdpgStats train(Env& env);

  /// Incremental interface: initialize once, then run episodes in chunks
  /// (callers interleave evaluation / snapshotting between chunks).
  void initialize(Env& env);
  /// Runs `episodes` further episodes; appends to the returned stats.
  [[nodiscard]] DdpgStats run_episodes(Env& env, int episodes);

  /// Optional per-episode progress callback (episode index, return).
  void set_progress_callback(std::function<void(int, double)> cb) {
    progress_ = std::move(cb);
  }

  [[nodiscard]] const nn::Mlp& actor() const { return actor_; }
  [[nodiscard]] const nn::Mlp& critic() const { return critic_; }
  /// Moves the trained tanh-headed actor out (state -> action in [-1,1]).
  [[nodiscard]] nn::Mlp take_actor() { return std::move(actor_); }

 private:
  void build_networks(std::size_t state_dim, std::size_t action_dim);
  /// Sharded random-action warmup collection (see DdpgConfig::
  /// num_env_shards); consumes up to `budget` episodes, returns how many it
  /// ran and appends their returns to `stats`.
  int run_warmup_episodes(Env& env, int budget, DdpgStats& stats);
  void update(ReplayBuffer& buffer, util::Rng& rng);
  static void polyak_update(nn::Mlp& target, const nn::Mlp& online,
                            double polyak);

  DdpgConfig config_;
  nn::Mlp actor_, critic_;
  nn::Mlp target_actor_, target_critic_;
  std::function<void(int, double)> progress_;
  // Persistent training state for the incremental interface.
  std::unique_ptr<nn::Adam> actor_opt_, critic_opt_;
  std::unique_ptr<ReplayBuffer> buffer_;
  std::unique_ptr<OuNoise> noise_;
  std::unique_ptr<util::Rng> rng_;
  // Parallel minibatch machinery, resolved once at initialize(): update()
  // runs on every env step, so the worker scope and the per-chunk gradient
  // buffers are hoisted out of the hot path.
  std::unique_ptr<util::WorkerScope> workers_;
  std::unique_ptr<nn::ChunkedGradReducer<nn::Gradients>> critic_reducer_;
  std::unique_ptr<nn::ChunkedGradReducer<nn::Gradients>> actor_reducer_;
  std::vector<double> targets_;  ///< per-sample critic regression targets.
  std::size_t total_steps_ = 0;
  int episodes_done_ = 0;
  double sigma_ = 0.0;
  // Warmup slot-stream state: seed drawn once at initialize(); the next
  // episode slot to merge persists across run_episodes calls so a warmup
  // split over several calls replays the identical slot sequence.
  std::uint64_t warmup_seed_ = 0;
  std::uint64_t warmup_slot_next_ = 0;
  bool initialized_ = false;
};

}  // namespace cocktail::rl
