// Ornstein-Uhlenbeck exploration noise, as in the original DDPG paper [17].
#pragma once

#include "la/vec.h"
#include "util/rng.h"

namespace cocktail::rl {

class OuNoise {
 public:
  /// dx = theta * (mu - x) dt + sigma dW, discretized with unit dt.
  explicit OuNoise(std::size_t dim, double theta = 0.15, double sigma = 0.2,
          double mu = 0.0);

  /// Resets the internal state to mu (start of an episode).
  void reset();

  /// Next correlated noise sample.
  la::Vec sample(util::Rng& rng);

  void set_sigma(double sigma) noexcept { sigma_ = sigma; }
  [[nodiscard]] double sigma() const noexcept { return sigma_; }

 private:
  double theta_, sigma_, mu_;
  la::Vec state_;
};

}  // namespace cocktail::rl
