// The shared core of the sharded experience collectors (PPO collect, DDPG
// warmup exploration): replicate an env per shard and run one *wave* of
// episode slots across the pool, each slot on its own derived RNG stream.
//
// This is the determinism-critical fragment of the shard RNG-split recipe
// (README "Parallelism and determinism"), kept in ONE place so the PPO and
// DDPG collectors can never drift apart:
//   * slot k's stream is derive_seed(seed, k) — a pure function of the
//     collection-pass seed and the slot index, never of the shard or worker
//     count;
//   * each slot writes only its own wave entry (disjoint writes — nothing
//     to reduce, scheduling cannot leak into results).
// What REMAINS algorithm-specific is only the per-episode body and the
// fixed slot-order merge policy (step-budget cut for PPO, episode-budget /
// warmup-step cursor for DDPG).
//
// Lock-free by disjointness (why nothing here carries a mutex or
// COCKTAIL_GUARDED_BY): slot j reads only clones[j] and its private
// slot_rng and writes only wave[j]; the chunked_for barrier orders those
// writes before the caller's slot-order merge.  Distinct std::vector
// elements are distinct memory locations, so concurrent slots never touch
// a shared byte — the TSan CI entry runs the `rl` label over exactly these
// waves to keep that claim honest.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "rl/env.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace cocktail::rl {

/// `num_env_shards` independent replicas of `env` (values < 1 behave as 1).
[[nodiscard]] inline std::vector<std::unique_ptr<Env>> clone_shards(
    const Env& env, int num_env_shards) {
  const auto shards = static_cast<std::size_t>(
      num_env_shards > 1 ? num_env_shards : 1);
  std::vector<std::unique_ptr<Env>> clones;
  clones.reserve(shards);
  for (std::size_t j = 0; j < shards; ++j) clones.push_back(env.clone());
  return clones;
}

/// Runs one wave: slot `base_slot + j` executes `run_episode(*clones[j],
/// slot_rng)` into `wave[j]` for every shard, on `pool` (nullptr = serial,
/// identical results).  `wave.size()` must equal `clones.size()`.
template <class Episode, class RunEpisode>
void run_slot_wave(std::vector<std::unique_ptr<Env>>& clones,
                   util::ThreadPool* pool, std::uint64_t seed,
                   std::uint64_t base_slot, std::vector<Episode>& wave,
                   const RunEpisode& run_episode) {
  util::chunked_for(pool, clones.size(), 1, [&](std::size_t j) {
    util::Rng slot_rng(
        util::derive_seed(seed, base_slot + static_cast<std::uint64_t>(j)));
    wave[j] = run_episode(*clones[j], slot_rng);
  });
}

}  // namespace cocktail::rl
