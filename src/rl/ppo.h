// Proximal Policy Optimization (Schulman et al. [16]) with the paper's
// KL-penalized surrogate (Algorithm 1, line 10):
//
//   θ = argmax Ê[ (π_θ(a|s) / π_θold(a|s)) Â − β KL(π_θold(·|s), π_θ(·|s)) ]
//
// β adapts toward a KL target as in the original PPO paper; an optional
// clipped-surrogate term is available too (both variants are exercised by
// tests).  Two drivers share the machinery:
//   * PpoGaussian  — continuous actions (the adaptive mixing weights);
//   * PpoCategorical — discrete actions (the switching baseline AS).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "nn/mlp.h"
#include "nn/optimizer.h"
#include "rl/categorical_policy.h"
#include "rl/env.h"
#include "rl/gae.h"
#include "rl/gaussian_policy.h"
#include "util/thread_pool.h"

namespace cocktail::rl {

struct PpoConfig {
  std::vector<std::size_t> policy_hidden = {64, 64};
  std::vector<std::size_t> value_hidden = {64, 64};
  double gamma = 0.99;
  double gae_lambda = 0.95;
  double policy_lr = 3e-4;
  double value_lr = 1e-3;
  int iterations = 60;          ///< outer loop count (epochs in Alg. 1).
  int steps_per_iteration = 2048;
  int update_epochs = 8;        ///< SGD passes per collected batch.
  std::size_t minibatch = 64;
  double kl_penalty_beta = 1.0;  ///< β, adapted toward kl_target.
  double kl_target = 0.01;
  bool use_clip = false;        ///< add clipped-surrogate term.
  double clip_epsilon = 0.2;
  double entropy_coef = 0.0;
  double initial_std = 0.5;     ///< Gaussian exploration std (continuous).
  double grad_clip = 5.0;
  std::uint64_t seed = 2;
  /// Worker count for the per-sample gradient work inside one minibatch
  /// update (util::WorkerScope convention: 0 = shared pool, 1 = serial,
  /// k > 1 = dedicated pool).  Training is bitwise identical for any value:
  /// per-chunk gradient buffers merge on the fixed chunked-reduce tree.
  int num_workers = 0;
  /// Env replicas stepping concurrently during collect() (values < 1 behave
  /// as 1).  Collection is decomposed into per-episode RNG *slots* — slot k
  /// of an iteration owns the stream derive_seed(s, k) for one seed s drawn
  /// from the trainer RNG — and slot batches concatenate in fixed slot
  /// order, cut at steps_per_iteration.  The slot decomposition never
  /// depends on this knob (it only widens the wave of Env::clone()s running
  /// on the pool), so training is bitwise identical for ANY shard count and
  /// any worker count.  Sharded episodes execute on the num_workers pool.
  int num_env_shards = 1;
};

struct PpoStats {
  std::vector<double> iteration_mean_returns;  ///< mean episode return.
  std::vector<double> iteration_kls;           ///< mean KL after updates.
  /// Mean return over the last `window` iterations (0 if none were run).
  /// `window` is clamped to >= 1 — it can never divide by zero.
  [[nodiscard]] double final_return_mean(std::size_t window = 5) const;
};

class PpoGaussian {
 public:
  explicit PpoGaussian(PpoConfig config);

  /// Trains on `env`; actions are sampled in (roughly) [-1,1]^dim — the
  /// tanh mean plus Gaussian noise, clipped — and the env scales them.
  [[nodiscard]] PpoStats train(Env& env);

  /// Incremental interface: initialize once, then run iteration chunks
  /// (callers snapshot/evaluate the policy between chunks).
  void initialize(Env& env);
  [[nodiscard]] PpoStats run_iterations(Env& env, int iterations);

  void set_progress_callback(std::function<void(int, double)> cb) {
    progress_ = std::move(cb);
  }

  [[nodiscard]] const GaussianPolicy& policy() const { return *policy_; }
  [[nodiscard]] GaussianPolicy& policy() { return *policy_; }
  [[nodiscard]] const nn::Mlp& value_net() const { return value_net_; }
  /// Moves the trained tanh mean network out (the adaptive weight net of
  /// the MixedController).
  [[nodiscard]] nn::Mlp take_mean_net();

 private:
  RolloutBatch collect(Env& env, util::Rng& rng);
  double update(const RolloutBatch& batch, const AdvantageResult& adv,
                util::Rng& rng);

  PpoConfig config_;
  std::unique_ptr<GaussianPolicy> policy_;
  nn::Mlp value_net_;
  std::unique_ptr<nn::Adam> policy_opt_, value_opt_;
  std::unique_ptr<nn::AdamVec> log_std_opt_;
  std::unique_ptr<util::Rng> rng_;
  std::unique_ptr<util::WorkerScope> workers_;  ///< resolved num_workers.
  int iterations_done_ = 0;
  std::function<void(int, double)> progress_;
};

class PpoCategorical {
 public:
  explicit PpoCategorical(PpoConfig config);

  [[nodiscard]] PpoStats train(Env& env);
  void initialize(Env& env);
  [[nodiscard]] PpoStats run_iterations(Env& env, int iterations);

  void set_progress_callback(std::function<void(int, double)> cb) {
    progress_ = std::move(cb);
  }

  [[nodiscard]] const CategoricalPolicy& policy() const { return *policy_; }
  [[nodiscard]] nn::Mlp take_logits_net();

 private:
  RolloutBatch collect(Env& env, util::Rng& rng);
  double update(const RolloutBatch& batch, const AdvantageResult& adv,
                util::Rng& rng);

  PpoConfig config_;
  std::unique_ptr<CategoricalPolicy> policy_;
  nn::Mlp value_net_;
  std::unique_ptr<nn::Adam> policy_opt_, value_opt_;
  std::unique_ptr<util::Rng> rng_;
  std::unique_ptr<util::WorkerScope> workers_;  ///< resolved num_workers.
  int iterations_done_ = 0;
  std::function<void(int, double)> progress_;
};

}  // namespace cocktail::rl
