// Uniform-sampling experience replay (Algorithm 1 line 1: replay memory D).
#pragma once

#include <cstddef>
#include <vector>

#include "la/vec.h"
#include "util/rng.h"

namespace cocktail::rl {

struct Transition {
  la::Vec state;
  la::Vec action;
  double reward = 0.0;
  la::Vec next_state;
  bool terminal = false;
};

class ReplayBuffer {
 public:
  explicit ReplayBuffer(std::size_t capacity);

  /// Appends a transition, evicting the oldest once at capacity.
  void add(Transition transition);

  [[nodiscard]] std::size_t size() const noexcept { return storage_.size(); }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] bool empty() const noexcept { return storage_.empty(); }

  /// Uniform sample with replacement of `batch` transitions.
  [[nodiscard]] std::vector<const Transition*> sample(std::size_t batch,
                                                      util::Rng& rng) const;

  void clear();

 private:
  std::size_t capacity_;
  std::size_t next_ = 0;  ///< ring cursor.
  std::vector<Transition> storage_;
};

}  // namespace cocktail::rl
