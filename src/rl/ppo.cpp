#include "rl/ppo.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <stdexcept>

#include "nn/grad_reduce.h"
#include "nn/loss.h"
#include "nn/optimizer.h"
#include "rl/episode_shards.h"
#include "util/logging.h"

namespace cocktail::rl {
namespace {

constexpr double kLogStdMin = -4.0;
constexpr double kLogStdMax = 1.0;

/// Chunk grain of the per-sample gradient reduction inside one minibatch
/// update, and of the batch-wide KL mean.  Part of the fixed reduction tree
/// (see util::chunked_reduce): changing either changes low-order bits.
constexpr std::size_t kGradGrain = 8;
constexpr std::size_t kKlGrain = 256;

/// Per-chunk accumulator of the Gaussian PPO minibatch: mean-net gradients,
/// log-std gradients, and value-net gradients, merged in fixed chunk order.
struct GaussianMinibatchGrads {
  nn::Gradients policy;
  la::Vec log_std;
  nn::Gradients value;

  void zero() {
    policy.zero();
    std::fill(log_std.begin(), log_std.end(), 0.0);
    value.zero();
  }
  void axpy(double k, const GaussianMinibatchGrads& other) {
    policy.axpy(k, other.policy);
    la::axpy(log_std, k, other.log_std);
    value.axpy(k, other.value);
  }
};

/// Categorical equivalent: logits-net and value-net gradients.
struct CategoricalMinibatchGrads {
  nn::Gradients policy;
  nn::Gradients value;

  void zero() {
    policy.zero();
    value.zero();
  }
  void axpy(double k, const CategoricalMinibatchGrads& other) {
    policy.axpy(k, other.policy);
    value.axpy(k, other.value);
  }
};

void clamp_log_std(la::Vec& log_std) {
  for (auto& v : log_std) v = std::clamp(v, kLogStdMin, kLogStdMax);
}

double mean_episode_return(const std::vector<double>& returns) {
  if (returns.empty()) return 0.0;
  double sum = 0.0;
  for (double r : returns) sum += r;
  return sum / static_cast<double>(returns.size());
}

/// Adapts the KL penalty β as in the adaptive-KL PPO variant.
void adapt_beta(double& beta, double observed_kl, double target) {
  if (observed_kl > 1.5 * target) beta = std::min(beta * 2.0, 64.0);
  else if (observed_kl < target / 1.5) beta = std::max(beta * 0.5, 1e-3);
}

// --- sharded on-policy collection ------------------------------------------
//
// The RNG-split recipe mirrors batch_rollout's per-job seeds: one collect
// seed per iteration (a single draw from the trainer RNG, so the trainer
// stream advances identically no matter how collection executes), one
// derived stream per episode *slot*, and fixed slot-order concatenation cut
// at steps_per_iteration.  Which episodes end up in the batch depends only
// on the slot-order cumulative step counts — never on how many env clones
// (num_env_shards) or pool workers ran them — so collection is bitwise
// identical for any shard/worker count, including the serial path.

/// Runs one full episode (to a terminal state or the env time limit) on a
/// private env replica and RNG stream.  `sample` records the policy action
/// and log-prob into the batch and returns the action to execute.
template <class SampleFn>
RolloutBatch run_episode(Env& env, const nn::Mlp& value_net,
                         const SampleFn& sample, util::Rng& rng) {
  RolloutBatch batch;
  la::Vec s = env.reset(rng);
  // Carry V(s) across steps: while the episode continues, next_values[t]
  // and values[t+1] are the same forward on the same state, so the cached
  // value is bitwise identical and halves the value forwards.
  double value_s = value_net.forward(s)[0];
  const int horizon = env.max_episode_steps();
  for (int t = 1;; ++t) {
    const la::Vec executed = sample(batch, s, rng);
    const StepResult result = env.step(executed, rng);
    const bool time_limit = t >= horizon && !result.terminal;
    const double value_next = value_net.forward(result.next_state)[0];
    batch.states.push_back(s);
    batch.rewards.push_back(result.reward);
    batch.values.push_back(value_s);
    batch.next_values.push_back(value_next);
    batch.terminal.push_back(result.terminal);
    batch.truncated.push_back(time_limit);
    if (result.terminal || time_limit) break;
    s = result.next_state;
    value_s = value_next;
  }
  return batch;
}

/// Appends the first `take` samples of `from` to `into` (the fixed
/// slot-order concatenation; the final included episode may be cut at the
/// step budget, exactly like the serial collector always cut its last
/// episode mid-flight).
void append_prefix(RolloutBatch& into, const RolloutBatch& from,
                   std::size_t take) {
  const auto copy_prefix = [take](auto& dst, const auto& src) {
    dst.insert(dst.end(), src.begin(),
               src.begin() + static_cast<std::ptrdiff_t>(take));
  };
  copy_prefix(into.states, from.states);
  if (!from.actions.empty()) copy_prefix(into.actions, from.actions);
  if (!from.discrete_actions.empty())
    copy_prefix(into.discrete_actions, from.discrete_actions);
  copy_prefix(into.rewards, from.rewards);
  copy_prefix(into.values, from.values);
  copy_prefix(into.next_values, from.next_values);
  copy_prefix(into.log_probs, from.log_probs);
  copy_prefix(into.terminal, from.terminal);
  copy_prefix(into.truncated, from.truncated);
}

/// The sharded collector shared by both PPO drivers: episode slots run in
/// waves of `num_env_shards` env clones on `pool` (rl::run_slot_wave), then
/// merge in slot order until the step budget is met.  Surplus episodes of
/// the final wave are discarded; recomputing or skipping them can never
/// change the included prefix.
template <class SampleFn>
RolloutBatch collect_sharded(Env& env, const nn::Mlp& value_net,
                             const PpoConfig& config, util::ThreadPool* pool,
                             std::uint64_t collect_seed,
                             const SampleFn& sample) {
  const auto target =
      static_cast<std::size_t>(std::max(config.steps_per_iteration, 1));
  std::vector<std::unique_ptr<Env>> clones =
      clone_shards(env, config.num_env_shards);

  RolloutBatch batch;
  std::vector<RolloutBatch> wave(clones.size());
  std::uint64_t next_slot = 0;
  while (batch.size() < target) {
    run_slot_wave(clones, pool, collect_seed, next_slot, wave,
                  [&](Env& shard, util::Rng& slot_rng) {
                    return run_episode(shard, value_net, sample, slot_rng);
                  });
    for (auto& episode : wave) {
      if (batch.size() < target)
        append_prefix(batch, episode,
                      std::min(episode.size(), target - batch.size()));
      episode = RolloutBatch{};
    }
    next_slot += static_cast<std::uint64_t>(clones.size());
  }
  return batch;
}

}  // namespace

double PpoStats::final_return_mean(std::size_t window) const {
  if (iteration_mean_returns.empty()) return 0.0;
  // window == 0 would divide by zero below; the smallest meaningful window
  // is the last iteration alone.
  const std::size_t n =
      std::min(std::max<std::size_t>(window, 1), iteration_mean_returns.size());
  double sum = 0.0;
  for (std::size_t i = iteration_mean_returns.size() - n;
       i < iteration_mean_returns.size(); ++i)
    sum += iteration_mean_returns[i];
  return sum / static_cast<double>(n);
}

// ---------------------------------------------------------------------------
// Continuous (Gaussian) PPO — the adaptive mixing learner.
// ---------------------------------------------------------------------------

PpoGaussian::PpoGaussian(PpoConfig config) : config_(std::move(config)) {}

nn::Mlp PpoGaussian::take_mean_net() {
  return std::move(policy_->mean_net());
}

RolloutBatch PpoGaussian::collect(Env& env, util::Rng& rng) {
  // One trainer-RNG draw per iteration seeds every episode slot stream, so
  // the trainer stream advances identically for any shard count.
  const std::uint64_t collect_seed = rng.next();
  const GaussianPolicy* policy = policy_.get();
  return collect_sharded(
      env, value_net_, config_, workers_->pool(), collect_seed,
      [policy](RolloutBatch& batch, const la::Vec& s, util::Rng& slot_rng) {
        const auto sample = policy->sample(s, slot_rng);
        const la::Vec executed = la::clip(sample.action, -1.0, 1.0);
        batch.actions.push_back(sample.action);
        batch.log_probs.push_back(sample.log_prob);
        return executed;
      });
}

double PpoGaussian::update(const RolloutBatch& batch,
                           const AdvantageResult& adv, util::Rng& rng) {
  // Zero epochs leave the policy untouched: KL(pi_old || pi) is exactly 0
  // and no permutation is drawn, so skipping the passes outright is bitwise
  // identical and keeps collection-only runs (BM_PpoCollect) undiluted.
  if (config_.update_epochs <= 0) return 0.0;
  util::ThreadPool* pool = workers_->pool();
  // Freeze pi_old: means and stds at collection time.  Frozen per-minibatch
  // inputs (mu_old, std_old, adv.advantages, adv.returns) are read-only
  // below, so chunk workers touch only shared immutable state plus their
  // private gradient buffers.
  std::vector<la::Vec> mu_old(batch.size());
  util::chunked_for(pool, batch.size(), kKlGrain, [&](std::size_t i) {
    mu_old[i] = policy_->mean(batch.states[i]);
  });
  const la::Vec std_old = policy_->stddev();

  nn::Adam* policy_opt = policy_opt_.get();
  nn::Adam* value_opt = value_opt_.get();
  nn::AdamVec* log_std_opt = log_std_opt_.get();

  // One reducer per update(), reused by every minibatch of every epoch
  // below (update_epochs * batch/minibatch reduces amortize the buffer
  // allocation); update() itself runs once per training iteration.
  nn::ChunkedGradReducer<GaussianMinibatchGrads> reducer(
      std::min(config_.minibatch, batch.size()), kGradGrain, [&] {
        return GaussianMinibatchGrads{policy_->mean_net().zero_gradients(),
                                      la::zeros(policy_->log_std().size()),
                                      value_net_.zero_gradients()};
      });

  for (int epoch = 0; epoch < config_.update_epochs; ++epoch) {
    const auto perm = rng.permutation(batch.size());
    for (std::size_t start = 0; start < perm.size();
         start += config_.minibatch) {
      const std::size_t end = std::min(start + config_.minibatch, perm.size());
      const double inv = 1.0 / static_cast<double>(end - start);
      // The per-sample surrogate/KL/entropy/value gradients have no
      // sequential dependency within the minibatch, so they fan across the
      // pool on the fixed chunked-reduce tree (bitwise identical for any
      // worker count).
      GaussianMinibatchGrads& grads =
          reducer.reduce(pool, end - start, [&](GaussianMinibatchGrads& acc,
                                                std::size_t k) {
            const std::size_t i = perm[start + k];
            const la::Vec& s = batch.states[i];
            const la::Vec& a = batch.actions[i];
            const double advantage = adv.advantages[i];
            const double ratio =
                std::exp(policy_->log_prob(s, a) - batch.log_probs[i]);
            // Surrogate coefficient: d/dθ of ratio·Â is ratio·Â·dlogπ.  With
            // clipping enabled the gradient vanishes outside the trust region
            // (standard PPO-clip behaviour).
            double coef = ratio * advantage;
            if (config_.use_clip) {
              const bool outside =
                  (advantage > 0.0 && ratio > 1.0 + config_.clip_epsilon) ||
                  (advantage < 0.0 && ratio < 1.0 - config_.clip_epsilon);
              if (outside) coef = 0.0;
            }
            policy_->accumulate_log_prob_gradient(s, a, coef * inv, acc.policy,
                                                  acc.log_std);
            policy_->accumulate_kl_gradient(mu_old[i], std_old, s,
                                            config_.kl_penalty_beta * inv,
                                            acc.policy, acc.log_std);
            if (config_.entropy_coef > 0.0)
              policy_->accumulate_entropy_gradient(config_.entropy_coef * inv,
                                                   acc.log_std);
            // Value regression toward the GAE return.
            nn::Mlp::Workspace ws;
            const la::Vec v = value_net_.forward(s, ws);
            const la::Vec dl = {inv * 2.0 * (v[0] - adv.returns[i])};
            (void)value_net_.backward(ws, dl, acc.value);
          });
      grads.policy.clip_norm(config_.grad_clip);
      grads.value.clip_norm(config_.grad_clip);
      policy_opt->step(policy_->mean_net(), grads.policy);
      log_std_opt->step(policy_->log_std(), grads.log_std);
      clamp_log_std(policy_->log_std());
      value_opt->step(value_net_, grads.value);
    }
  }
  // Mean KL over the batch after the updates (for β adaptation); the same
  // fixed-order reduction keeps the sum identical for any worker count.
  double observed_kl = util::chunked_reduce(
      pool, batch.size(), kKlGrain, [] { return 0.0; },
      [&](double& acc, std::size_t i) {
        acc += policy_->kl_from(mu_old[i], std_old, batch.states[i]);
      },
      [](double& into, const double& from) { into += from; });
  observed_kl /= static_cast<double>(batch.size());
  adapt_beta(config_.kl_penalty_beta, observed_kl, config_.kl_target);
  return observed_kl;
}

void PpoGaussian::initialize(Env& env) {
  rng_ = std::make_unique<util::Rng>(config_.seed);
  policy_ = std::make_unique<GaussianPolicy>(
      env.state_dim(), config_.policy_hidden, env.action_dim(),
      config_.initial_std, util::derive_seed(config_.seed, 301));
  value_net_ = nn::Mlp::make(env.state_dim(), config_.value_hidden, 1,
                             nn::Activation::kTanh, nn::Activation::kIdentity,
                             util::derive_seed(config_.seed, 302));
  policy_opt_ = std::make_unique<nn::Adam>(config_.policy_lr);
  value_opt_ = std::make_unique<nn::Adam>(config_.value_lr);
  log_std_opt_ = std::make_unique<nn::AdamVec>(config_.policy_lr);
  workers_ = std::make_unique<util::WorkerScope>(config_.num_workers);
  iterations_done_ = 0;
}

PpoStats PpoGaussian::run_iterations(Env& env, int iterations) {
  if (!policy_)
    throw std::logic_error("PpoGaussian::run_iterations: not initialized");
  PpoStats stats;
  for (int iter = 0; iter < iterations; ++iter) {
    const RolloutBatch batch = collect(env, *rng_);
    const AdvantageResult adv =
        compute_gae(batch, config_.gamma, config_.gae_lambda);
    const double kl = update(batch, adv, *rng_);
    // Episode returns within the batch (split at boundaries).
    std::vector<double> returns;
    double acc = 0.0;
    for (std::size_t i = 0; i < batch.size(); ++i) {
      acc += batch.rewards[i];
      if (batch.terminal[i] || batch.truncated[i]) {
        returns.push_back(acc);
        acc = 0.0;
      }
    }
    const double mean_ret = mean_episode_return(returns);
    stats.iteration_mean_returns.push_back(mean_ret);
    stats.iteration_kls.push_back(kl);
    if (progress_) progress_(iterations_done_, mean_ret);
    ++iterations_done_;
  }
  return stats;
}

PpoStats PpoGaussian::train(Env& env) {
  initialize(env);
  return run_iterations(env, config_.iterations);
}

// ---------------------------------------------------------------------------
// Categorical PPO — the switching baseline AS.
// ---------------------------------------------------------------------------

PpoCategorical::PpoCategorical(PpoConfig config) : config_(std::move(config)) {}

nn::Mlp PpoCategorical::take_logits_net() {
  return std::move(policy_->logits_net());
}

RolloutBatch PpoCategorical::collect(Env& env, util::Rng& rng) {
  // Same per-iteration seed split as PpoGaussian::collect.
  const std::uint64_t collect_seed = rng.next();
  const CategoricalPolicy* policy = policy_.get();
  return collect_sharded(
      env, value_net_, config_, workers_->pool(), collect_seed,
      [policy](RolloutBatch& batch, const la::Vec& s, util::Rng& slot_rng) {
        const auto sample = policy->sample(s, slot_rng);
        batch.discrete_actions.push_back(sample.action);
        batch.log_probs.push_back(sample.log_prob);
        return la::Vec{static_cast<double>(sample.action)};
      });
}

double PpoCategorical::update(const RolloutBatch& batch,
                              const AdvantageResult& adv, util::Rng& rng) {
  // Same no-op shortcut as PpoGaussian::update (bitwise identical).
  if (config_.update_epochs <= 0) return 0.0;
  util::ThreadPool* pool = workers_->pool();
  // Frozen pi_old probabilities: read-only for the chunk workers below.
  std::vector<la::Vec> probs_old(batch.size());
  util::chunked_for(pool, batch.size(), kKlGrain, [&](std::size_t i) {
    probs_old[i] = policy_->probabilities(batch.states[i]);
  });

  nn::ChunkedGradReducer<CategoricalMinibatchGrads> reducer(
      std::min(config_.minibatch, batch.size()), kGradGrain, [&] {
        return CategoricalMinibatchGrads{policy_->logits_net().zero_gradients(),
                                         value_net_.zero_gradients()};
      });

  for (int epoch = 0; epoch < config_.update_epochs; ++epoch) {
    const auto perm = rng.permutation(batch.size());
    for (std::size_t start = 0; start < perm.size();
         start += config_.minibatch) {
      const std::size_t end = std::min(start + config_.minibatch, perm.size());
      const double inv = 1.0 / static_cast<double>(end - start);
      CategoricalMinibatchGrads& grads = reducer.reduce(
          pool, end - start,
          [&](CategoricalMinibatchGrads& acc, std::size_t k) {
            const std::size_t i = perm[start + k];
            const la::Vec& s = batch.states[i];
            const std::size_t a = batch.discrete_actions[i];
            const double advantage = adv.advantages[i];
            const double ratio =
                std::exp(policy_->log_prob(s, a) - batch.log_probs[i]);
            double coef = ratio * advantage;
            if (config_.use_clip) {
              const bool outside =
                  (advantage > 0.0 && ratio > 1.0 + config_.clip_epsilon) ||
                  (advantage < 0.0 && ratio < 1.0 - config_.clip_epsilon);
              if (outside) coef = 0.0;
            }
            policy_->accumulate_log_prob_gradient(s, a, coef * inv,
                                                  acc.policy);
            policy_->accumulate_kl_gradient(probs_old[i], s,
                                            config_.kl_penalty_beta * inv,
                                            acc.policy);
            nn::Mlp::Workspace ws;
            const la::Vec v = value_net_.forward(s, ws);
            const la::Vec dl = {inv * 2.0 * (v[0] - adv.returns[i])};
            (void)value_net_.backward(ws, dl, acc.value);
          });
      grads.policy.clip_norm(config_.grad_clip);
      grads.value.clip_norm(config_.grad_clip);
      policy_opt_->step(policy_->logits_net(), grads.policy);
      value_opt_->step(value_net_, grads.value);
    }
  }
  double observed_kl = util::chunked_reduce(
      pool, batch.size(), kKlGrain, [] { return 0.0; },
      [&](double& acc, std::size_t i) {
        acc += policy_->kl_from(probs_old[i], batch.states[i]);
      },
      [](double& into, const double& from) { into += from; });
  observed_kl /= static_cast<double>(batch.size());
  adapt_beta(config_.kl_penalty_beta, observed_kl, config_.kl_target);
  return observed_kl;
}

void PpoCategorical::initialize(Env& env) {
  rng_ = std::make_unique<util::Rng>(config_.seed);
  policy_ = std::make_unique<CategoricalPolicy>(
      env.state_dim(), config_.policy_hidden, env.action_dim(),
      util::derive_seed(config_.seed, 401));
  value_net_ = nn::Mlp::make(env.state_dim(), config_.value_hidden, 1,
                             nn::Activation::kTanh, nn::Activation::kIdentity,
                             util::derive_seed(config_.seed, 402));
  policy_opt_ = std::make_unique<nn::Adam>(config_.policy_lr);
  value_opt_ = std::make_unique<nn::Adam>(config_.value_lr);
  workers_ = std::make_unique<util::WorkerScope>(config_.num_workers);
  iterations_done_ = 0;
}

PpoStats PpoCategorical::run_iterations(Env& env, int iterations) {
  if (!policy_)
    throw std::logic_error("PpoCategorical::run_iterations: not initialized");
  PpoStats stats;
  for (int iter = 0; iter < iterations; ++iter) {
    const RolloutBatch batch = collect(env, *rng_);
    const AdvantageResult adv =
        compute_gae(batch, config_.gamma, config_.gae_lambda);
    const double kl = update(batch, adv, *rng_);
    std::vector<double> returns;
    double acc = 0.0;
    for (std::size_t i = 0; i < batch.size(); ++i) {
      acc += batch.rewards[i];
      if (batch.terminal[i] || batch.truncated[i]) {
        returns.push_back(acc);
        acc = 0.0;
      }
    }
    const double mean_ret = mean_episode_return(returns);
    stats.iteration_mean_returns.push_back(mean_ret);
    stats.iteration_kls.push_back(kl);
    if (progress_) progress_(iterations_done_, mean_ret);
    ++iterations_done_;
  }
  return stats;
}

PpoStats PpoCategorical::train(Env& env) {
  initialize(env);
  return run_iterations(env, config_.iterations);
}

}  // namespace cocktail::rl
