#include "rl/ppo.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <stdexcept>

#include "nn/grad_reduce.h"
#include "nn/loss.h"
#include "nn/optimizer.h"
#include "util/logging.h"

namespace cocktail::rl {
namespace {

constexpr double kLogStdMin = -4.0;
constexpr double kLogStdMax = 1.0;

/// Chunk grain of the per-sample gradient reduction inside one minibatch
/// update, and of the batch-wide KL mean.  Part of the fixed reduction tree
/// (see util::chunked_reduce): changing either changes low-order bits.
constexpr std::size_t kGradGrain = 8;
constexpr std::size_t kKlGrain = 256;

/// Per-chunk accumulator of the Gaussian PPO minibatch: mean-net gradients,
/// log-std gradients, and value-net gradients, merged in fixed chunk order.
struct GaussianMinibatchGrads {
  nn::Gradients policy;
  la::Vec log_std;
  nn::Gradients value;

  void zero() {
    policy.zero();
    std::fill(log_std.begin(), log_std.end(), 0.0);
    value.zero();
  }
  void axpy(double k, const GaussianMinibatchGrads& other) {
    policy.axpy(k, other.policy);
    la::axpy(log_std, k, other.log_std);
    value.axpy(k, other.value);
  }
};

/// Categorical equivalent: logits-net and value-net gradients.
struct CategoricalMinibatchGrads {
  nn::Gradients policy;
  nn::Gradients value;

  void zero() {
    policy.zero();
    value.zero();
  }
  void axpy(double k, const CategoricalMinibatchGrads& other) {
    policy.axpy(k, other.policy);
    value.axpy(k, other.value);
  }
};

void clamp_log_std(la::Vec& log_std) {
  for (auto& v : log_std) v = std::clamp(v, kLogStdMin, kLogStdMax);
}

double mean_episode_return(const std::vector<double>& returns) {
  if (returns.empty()) return 0.0;
  double sum = 0.0;
  for (double r : returns) sum += r;
  return sum / static_cast<double>(returns.size());
}

/// Adapts the KL penalty β as in the adaptive-KL PPO variant.
void adapt_beta(double& beta, double observed_kl, double target) {
  if (observed_kl > 1.5 * target) beta = std::min(beta * 2.0, 64.0);
  else if (observed_kl < target / 1.5) beta = std::max(beta * 0.5, 1e-3);
}

}  // namespace

double PpoStats::final_return_mean(std::size_t window) const {
  if (iteration_mean_returns.empty()) return 0.0;
  // window == 0 would divide by zero below; the smallest meaningful window
  // is the last iteration alone.
  const std::size_t n =
      std::min(std::max<std::size_t>(window, 1), iteration_mean_returns.size());
  double sum = 0.0;
  for (std::size_t i = iteration_mean_returns.size() - n;
       i < iteration_mean_returns.size(); ++i)
    sum += iteration_mean_returns[i];
  return sum / static_cast<double>(n);
}

// ---------------------------------------------------------------------------
// Continuous (Gaussian) PPO — the adaptive mixing learner.
// ---------------------------------------------------------------------------

PpoGaussian::PpoGaussian(PpoConfig config) : config_(std::move(config)) {}

nn::Mlp PpoGaussian::take_mean_net() {
  return std::move(policy_->mean_net());
}

RolloutBatch PpoGaussian::collect(Env& env, util::Rng& rng) {
  RolloutBatch batch;
  la::Vec s = env.reset(rng);
  // Carry V(s) across steps: while the episode continues, next_values[t]
  // and values[t+1] are the same forward on the same state, so the cached
  // value is bitwise identical and halves the value forwards.
  double value_s = value_net_.forward(s)[0];
  int episode_step = 0;
  while (static_cast<int>(batch.size()) < config_.steps_per_iteration) {
    const auto sample = policy_->sample(s, rng);
    const la::Vec executed = la::clip(sample.action, -1.0, 1.0);
    const StepResult result = env.step(executed, rng);
    ++episode_step;
    const bool time_limit =
        episode_step >= env.max_episode_steps() && !result.terminal;
    const double value_next = value_net_.forward(result.next_state)[0];
    batch.states.push_back(s);
    batch.actions.push_back(sample.action);
    batch.rewards.push_back(result.reward);
    batch.values.push_back(value_s);
    batch.next_values.push_back(value_next);
    batch.log_probs.push_back(sample.log_prob);
    batch.terminal.push_back(result.terminal);
    batch.truncated.push_back(time_limit);
    if (result.terminal || time_limit) {
      s = env.reset(rng);
      value_s = value_net_.forward(s)[0];
      episode_step = 0;
    } else {
      s = result.next_state;
      value_s = value_next;
    }
  }
  return batch;
}

double PpoGaussian::update(const RolloutBatch& batch,
                           const AdvantageResult& adv, util::Rng& rng) {
  util::ThreadPool* pool = workers_->pool();
  // Freeze pi_old: means and stds at collection time.  Frozen per-minibatch
  // inputs (mu_old, std_old, adv.advantages, adv.returns) are read-only
  // below, so chunk workers touch only shared immutable state plus their
  // private gradient buffers.
  std::vector<la::Vec> mu_old(batch.size());
  util::chunked_for(pool, batch.size(), kKlGrain, [&](std::size_t i) {
    mu_old[i] = policy_->mean(batch.states[i]);
  });
  const la::Vec std_old = policy_->stddev();

  nn::Adam* policy_opt = policy_opt_.get();
  nn::Adam* value_opt = value_opt_.get();
  nn::AdamVec* log_std_opt = log_std_opt_.get();

  // One reducer per update(), reused by every minibatch of every epoch
  // below (update_epochs * batch/minibatch reduces amortize the buffer
  // allocation); update() itself runs once per training iteration.
  nn::ChunkedGradReducer<GaussianMinibatchGrads> reducer(
      std::min(config_.minibatch, batch.size()), kGradGrain, [&] {
        return GaussianMinibatchGrads{policy_->mean_net().zero_gradients(),
                                      la::zeros(policy_->log_std().size()),
                                      value_net_.zero_gradients()};
      });

  for (int epoch = 0; epoch < config_.update_epochs; ++epoch) {
    const auto perm = rng.permutation(batch.size());
    for (std::size_t start = 0; start < perm.size();
         start += config_.minibatch) {
      const std::size_t end = std::min(start + config_.minibatch, perm.size());
      const double inv = 1.0 / static_cast<double>(end - start);
      // The per-sample surrogate/KL/entropy/value gradients have no
      // sequential dependency within the minibatch, so they fan across the
      // pool on the fixed chunked-reduce tree (bitwise identical for any
      // worker count).
      GaussianMinibatchGrads& grads =
          reducer.reduce(pool, end - start, [&](GaussianMinibatchGrads& acc,
                                                std::size_t k) {
            const std::size_t i = perm[start + k];
            const la::Vec& s = batch.states[i];
            const la::Vec& a = batch.actions[i];
            const double advantage = adv.advantages[i];
            const double ratio =
                std::exp(policy_->log_prob(s, a) - batch.log_probs[i]);
            // Surrogate coefficient: d/dθ of ratio·Â is ratio·Â·dlogπ.  With
            // clipping enabled the gradient vanishes outside the trust region
            // (standard PPO-clip behaviour).
            double coef = ratio * advantage;
            if (config_.use_clip) {
              const bool outside =
                  (advantage > 0.0 && ratio > 1.0 + config_.clip_epsilon) ||
                  (advantage < 0.0 && ratio < 1.0 - config_.clip_epsilon);
              if (outside) coef = 0.0;
            }
            policy_->accumulate_log_prob_gradient(s, a, coef * inv, acc.policy,
                                                  acc.log_std);
            policy_->accumulate_kl_gradient(mu_old[i], std_old, s,
                                            config_.kl_penalty_beta * inv,
                                            acc.policy, acc.log_std);
            if (config_.entropy_coef > 0.0)
              policy_->accumulate_entropy_gradient(config_.entropy_coef * inv,
                                                   acc.log_std);
            // Value regression toward the GAE return.
            nn::Mlp::Workspace ws;
            const la::Vec v = value_net_.forward(s, ws);
            const la::Vec dl = {inv * 2.0 * (v[0] - adv.returns[i])};
            (void)value_net_.backward(ws, dl, acc.value);
          });
      grads.policy.clip_norm(config_.grad_clip);
      grads.value.clip_norm(config_.grad_clip);
      policy_opt->step(policy_->mean_net(), grads.policy);
      log_std_opt->step(policy_->log_std(), grads.log_std);
      clamp_log_std(policy_->log_std());
      value_opt->step(value_net_, grads.value);
    }
  }
  // Mean KL over the batch after the updates (for β adaptation); the same
  // fixed-order reduction keeps the sum identical for any worker count.
  double observed_kl = util::chunked_reduce(
      pool, batch.size(), kKlGrain, [] { return 0.0; },
      [&](double& acc, std::size_t i) {
        acc += policy_->kl_from(mu_old[i], std_old, batch.states[i]);
      },
      [](double& into, const double& from) { into += from; });
  observed_kl /= static_cast<double>(batch.size());
  adapt_beta(config_.kl_penalty_beta, observed_kl, config_.kl_target);
  return observed_kl;
}

void PpoGaussian::initialize(Env& env) {
  rng_ = std::make_unique<util::Rng>(config_.seed);
  policy_ = std::make_unique<GaussianPolicy>(
      env.state_dim(), config_.policy_hidden, env.action_dim(),
      config_.initial_std, util::derive_seed(config_.seed, 301));
  value_net_ = nn::Mlp::make(env.state_dim(), config_.value_hidden, 1,
                             nn::Activation::kTanh, nn::Activation::kIdentity,
                             util::derive_seed(config_.seed, 302));
  policy_opt_ = std::make_unique<nn::Adam>(config_.policy_lr);
  value_opt_ = std::make_unique<nn::Adam>(config_.value_lr);
  log_std_opt_ = std::make_unique<nn::AdamVec>(config_.policy_lr);
  workers_ = std::make_unique<util::WorkerScope>(config_.num_workers);
  iterations_done_ = 0;
}

PpoStats PpoGaussian::run_iterations(Env& env, int iterations) {
  if (!policy_)
    throw std::logic_error("PpoGaussian::run_iterations: not initialized");
  PpoStats stats;
  for (int iter = 0; iter < iterations; ++iter) {
    const RolloutBatch batch = collect(env, *rng_);
    const AdvantageResult adv =
        compute_gae(batch, config_.gamma, config_.gae_lambda);
    const double kl = update(batch, adv, *rng_);
    // Episode returns within the batch (split at boundaries).
    std::vector<double> returns;
    double acc = 0.0;
    for (std::size_t i = 0; i < batch.size(); ++i) {
      acc += batch.rewards[i];
      if (batch.terminal[i] || batch.truncated[i]) {
        returns.push_back(acc);
        acc = 0.0;
      }
    }
    const double mean_ret = mean_episode_return(returns);
    stats.iteration_mean_returns.push_back(mean_ret);
    stats.iteration_kls.push_back(kl);
    if (progress_) progress_(iterations_done_, mean_ret);
    ++iterations_done_;
  }
  return stats;
}

PpoStats PpoGaussian::train(Env& env) {
  initialize(env);
  return run_iterations(env, config_.iterations);
}

// ---------------------------------------------------------------------------
// Categorical PPO — the switching baseline AS.
// ---------------------------------------------------------------------------

PpoCategorical::PpoCategorical(PpoConfig config) : config_(std::move(config)) {}

nn::Mlp PpoCategorical::take_logits_net() {
  return std::move(policy_->logits_net());
}

RolloutBatch PpoCategorical::collect(Env& env, util::Rng& rng) {
  RolloutBatch batch;
  la::Vec s = env.reset(rng);
  // Same cached-value carry as PpoGaussian::collect (bitwise identical,
  // half the value forwards).
  double value_s = value_net_.forward(s)[0];
  int episode_step = 0;
  while (static_cast<int>(batch.size()) < config_.steps_per_iteration) {
    const auto sample = policy_->sample(s, rng);
    const StepResult result =
        env.step({static_cast<double>(sample.action)}, rng);
    ++episode_step;
    const bool time_limit =
        episode_step >= env.max_episode_steps() && !result.terminal;
    const double value_next = value_net_.forward(result.next_state)[0];
    batch.states.push_back(s);
    batch.discrete_actions.push_back(sample.action);
    batch.rewards.push_back(result.reward);
    batch.values.push_back(value_s);
    batch.next_values.push_back(value_next);
    batch.log_probs.push_back(sample.log_prob);
    batch.terminal.push_back(result.terminal);
    batch.truncated.push_back(time_limit);
    if (result.terminal || time_limit) {
      s = env.reset(rng);
      value_s = value_net_.forward(s)[0];
      episode_step = 0;
    } else {
      s = result.next_state;
      value_s = value_next;
    }
  }
  return batch;
}

double PpoCategorical::update(const RolloutBatch& batch,
                              const AdvantageResult& adv, util::Rng& rng) {
  util::ThreadPool* pool = workers_->pool();
  // Frozen pi_old probabilities: read-only for the chunk workers below.
  std::vector<la::Vec> probs_old(batch.size());
  util::chunked_for(pool, batch.size(), kKlGrain, [&](std::size_t i) {
    probs_old[i] = policy_->probabilities(batch.states[i]);
  });

  nn::ChunkedGradReducer<CategoricalMinibatchGrads> reducer(
      std::min(config_.minibatch, batch.size()), kGradGrain, [&] {
        return CategoricalMinibatchGrads{policy_->logits_net().zero_gradients(),
                                         value_net_.zero_gradients()};
      });

  for (int epoch = 0; epoch < config_.update_epochs; ++epoch) {
    const auto perm = rng.permutation(batch.size());
    for (std::size_t start = 0; start < perm.size();
         start += config_.minibatch) {
      const std::size_t end = std::min(start + config_.minibatch, perm.size());
      const double inv = 1.0 / static_cast<double>(end - start);
      CategoricalMinibatchGrads& grads = reducer.reduce(
          pool, end - start,
          [&](CategoricalMinibatchGrads& acc, std::size_t k) {
            const std::size_t i = perm[start + k];
            const la::Vec& s = batch.states[i];
            const std::size_t a = batch.discrete_actions[i];
            const double advantage = adv.advantages[i];
            const double ratio =
                std::exp(policy_->log_prob(s, a) - batch.log_probs[i]);
            double coef = ratio * advantage;
            if (config_.use_clip) {
              const bool outside =
                  (advantage > 0.0 && ratio > 1.0 + config_.clip_epsilon) ||
                  (advantage < 0.0 && ratio < 1.0 - config_.clip_epsilon);
              if (outside) coef = 0.0;
            }
            policy_->accumulate_log_prob_gradient(s, a, coef * inv,
                                                  acc.policy);
            policy_->accumulate_kl_gradient(probs_old[i], s,
                                            config_.kl_penalty_beta * inv,
                                            acc.policy);
            nn::Mlp::Workspace ws;
            const la::Vec v = value_net_.forward(s, ws);
            const la::Vec dl = {inv * 2.0 * (v[0] - adv.returns[i])};
            (void)value_net_.backward(ws, dl, acc.value);
          });
      grads.policy.clip_norm(config_.grad_clip);
      grads.value.clip_norm(config_.grad_clip);
      policy_opt_->step(policy_->logits_net(), grads.policy);
      value_opt_->step(value_net_, grads.value);
    }
  }
  double observed_kl = util::chunked_reduce(
      pool, batch.size(), kKlGrain, [] { return 0.0; },
      [&](double& acc, std::size_t i) {
        acc += policy_->kl_from(probs_old[i], batch.states[i]);
      },
      [](double& into, const double& from) { into += from; });
  observed_kl /= static_cast<double>(batch.size());
  adapt_beta(config_.kl_penalty_beta, observed_kl, config_.kl_target);
  return observed_kl;
}

void PpoCategorical::initialize(Env& env) {
  rng_ = std::make_unique<util::Rng>(config_.seed);
  policy_ = std::make_unique<CategoricalPolicy>(
      env.state_dim(), config_.policy_hidden, env.action_dim(),
      util::derive_seed(config_.seed, 401));
  value_net_ = nn::Mlp::make(env.state_dim(), config_.value_hidden, 1,
                             nn::Activation::kTanh, nn::Activation::kIdentity,
                             util::derive_seed(config_.seed, 402));
  policy_opt_ = std::make_unique<nn::Adam>(config_.policy_lr);
  value_opt_ = std::make_unique<nn::Adam>(config_.value_lr);
  workers_ = std::make_unique<util::WorkerScope>(config_.num_workers);
  iterations_done_ = 0;
}

PpoStats PpoCategorical::run_iterations(Env& env, int iterations) {
  if (!policy_)
    throw std::logic_error("PpoCategorical::run_iterations: not initialized");
  PpoStats stats;
  for (int iter = 0; iter < iterations; ++iter) {
    const RolloutBatch batch = collect(env, *rng_);
    const AdvantageResult adv =
        compute_gae(batch, config_.gamma, config_.gae_lambda);
    const double kl = update(batch, adv, *rng_);
    std::vector<double> returns;
    double acc = 0.0;
    for (std::size_t i = 0; i < batch.size(); ++i) {
      acc += batch.rewards[i];
      if (batch.terminal[i] || batch.truncated[i]) {
        returns.push_back(acc);
        acc = 0.0;
      }
    }
    const double mean_ret = mean_episode_return(returns);
    stats.iteration_mean_returns.push_back(mean_ret);
    stats.iteration_kls.push_back(kl);
    if (progress_) progress_(iterations_done_, mean_ret);
    ++iterations_done_;
  }
  return stats;
}

PpoStats PpoCategorical::train(Env& env) {
  initialize(env);
  return run_iterations(env, config_.iterations);
}

}  // namespace cocktail::rl
