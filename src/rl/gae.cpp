#include "rl/gae.h"

#include <cmath>
#include <stdexcept>

namespace cocktail::rl {

AdvantageResult compute_gae(const RolloutBatch& batch, double gamma,
                            double lambda, bool normalize) {
  const std::size_t n = batch.size();
  if (batch.rewards.size() != n || batch.values.size() != n ||
      batch.next_values.size() != n || batch.terminal.size() != n ||
      batch.truncated.size() != n)
    throw std::invalid_argument("compute_gae: inconsistent batch");
  AdvantageResult out;
  out.advantages.assign(n, 0.0);
  out.returns.assign(n, 0.0);
  double gae = 0.0;
  for (std::size_t t = n; t-- > 0;) {
    const double not_terminal = batch.terminal[t] ? 0.0 : 1.0;
    const double delta =
        batch.rewards[t] + gamma * batch.next_values[t] * not_terminal -
        batch.values[t];
    // The λ-recursion stops at both genuine terminals and truncation points
    // (the next sample belongs to a different episode).
    const bool boundary = batch.terminal[t] || batch.truncated[t];
    gae = delta + (boundary ? 0.0 : gamma * lambda * gae);
    out.advantages[t] = gae;
    out.returns[t] = gae + batch.values[t];
  }
  if (normalize && n > 1) {
    double mean = 0.0;
    for (double a : out.advantages) mean += a;
    mean /= static_cast<double>(n);
    double var = 0.0;
    for (double a : out.advantages) var += (a - mean) * (a - mean);
    var /= static_cast<double>(n);
    const double std = std::sqrt(var) + 1e-8;
    for (auto& a : out.advantages) a = (a - mean) / std;
  }
  return out;
}

}  // namespace cocktail::rl
