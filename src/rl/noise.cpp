#include "rl/noise.h"

namespace cocktail::rl {

OuNoise::OuNoise(std::size_t dim, double theta, double sigma, double mu)
    : theta_(theta), sigma_(sigma), mu_(mu), state_(dim, mu) {}

void OuNoise::reset() { state_.assign(state_.size(), mu_); }

la::Vec OuNoise::sample(util::Rng& rng) {
  for (auto& x : state_)
    x += theta_ * (mu_ - x) + sigma_ * rng.normal();
  return state_;
}

}  // namespace cocktail::rl
