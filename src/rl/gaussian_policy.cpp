#include "rl/gaussian_policy.h"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace cocktail::rl {

GaussianPolicy::GaussianPolicy(std::size_t state_dim,
                               const std::vector<std::size_t>& hidden,
                               std::size_t action_dim, double initial_std,
                               std::uint64_t seed)
    : mean_net_(nn::Mlp::make(state_dim, hidden, action_dim,
                              nn::Activation::kTanh, nn::Activation::kTanh,
                              seed)),
      log_std_(action_dim, std::log(initial_std)) {
  if (initial_std <= 0.0)
    throw std::invalid_argument("GaussianPolicy: initial_std must be > 0");
}

la::Vec GaussianPolicy::mean(const la::Vec& s) const {
  return mean_net_.forward(s);
}

la::Vec GaussianPolicy::stddev() const {
  la::Vec std(log_std_.size());
  for (std::size_t i = 0; i < std.size(); ++i) std[i] = std::exp(log_std_[i]);
  return std;
}

GaussianPolicy::Sample GaussianPolicy::sample(const la::Vec& s,
                                              util::Rng& rng) const {
  const la::Vec mu = mean(s);
  const la::Vec std = stddev();
  Sample out;
  out.action.resize(mu.size());
  for (std::size_t i = 0; i < mu.size(); ++i)
    out.action[i] = mu[i] + std[i] * rng.normal();
  out.log_prob = log_prob(s, out.action);
  return out;
}

double GaussianPolicy::log_prob(const la::Vec& s, const la::Vec& a) const {
  const la::Vec mu = mean(s);
  if (a.size() != mu.size())
    throw std::invalid_argument("GaussianPolicy::log_prob: bad action dim");
  double lp = 0.0;
  for (std::size_t i = 0; i < mu.size(); ++i) {
    const double std = std::exp(log_std_[i]);
    const double z = (a[i] - mu[i]) / std;
    lp += -0.5 * z * z - log_std_[i] -
          0.5 * std::log(2.0 * std::numbers::pi);
  }
  return lp;
}

double GaussianPolicy::kl_from(const la::Vec& mu_old, const la::Vec& std_old,
                               const la::Vec& s) const {
  const la::Vec mu = mean(s);
  double kl = 0.0;
  for (std::size_t i = 0; i < mu.size(); ++i) {
    const double std_new = std::exp(log_std_[i]);
    const double var_new = std_new * std_new;
    const double diff = mu_old[i] - mu[i];
    kl += std::log(std_new / std_old[i]) +
          (std_old[i] * std_old[i] + diff * diff) / (2.0 * var_new) - 0.5;
  }
  return kl;
}

void GaussianPolicy::accumulate_log_prob_gradient(
    const la::Vec& s, const la::Vec& a, double coef, nn::Gradients& mean_grads,
    la::Vec& log_std_grads) const {
  nn::Mlp::Workspace ws;
  const la::Vec mu = mean_net_.forward(s, ws);
  la::Vec dl_dmu(mu.size());
  for (std::size_t i = 0; i < mu.size(); ++i) {
    const double var = std::exp(2.0 * log_std_[i]);
    // d logpi / d mu = (a - mu)/var; we accumulate -coef * dlogpi.
    dl_dmu[i] = -coef * (a[i] - mu[i]) / var;
    // d logpi / d log_std = z^2 - 1.
    const double z2 =
        (a[i] - mu[i]) * (a[i] - mu[i]) / var;
    log_std_grads[i] += -coef * (z2 - 1.0);
  }
  (void)mean_net_.backward(ws, dl_dmu, mean_grads);
}

void GaussianPolicy::accumulate_kl_gradient(const la::Vec& mu_old,
                                            const la::Vec& std_old,
                                            const la::Vec& s, double coef,
                                            nn::Gradients& mean_grads,
                                            la::Vec& log_std_grads) const {
  nn::Mlp::Workspace ws;
  const la::Vec mu = mean_net_.forward(s, ws);
  la::Vec dl_dmu(mu.size());
  for (std::size_t i = 0; i < mu.size(); ++i) {
    const double var_new = std::exp(2.0 * log_std_[i]);
    const double diff = mu[i] - mu_old[i];
    // dKL/dmu_new = (mu_new - mu_old)/var_new.
    dl_dmu[i] = coef * diff / var_new;
    // dKL/dlog_std_new = 1 - (var_old + diff^2)/var_new.
    const double var_old = std_old[i] * std_old[i];
    log_std_grads[i] += coef * (1.0 - (var_old + diff * diff) / var_new);
  }
  (void)mean_net_.backward(ws, dl_dmu, mean_grads);
}

double GaussianPolicy::entropy() const {
  double h = 0.0;
  for (double ls : log_std_)
    h += ls + 0.5 * std::log(2.0 * std::numbers::pi * std::numbers::e);
  return h;
}

void GaussianPolicy::accumulate_entropy_gradient(double coef,
                                                 la::Vec& log_std_grads) const {
  // dH/dlog_std_i = 1; accumulate -coef so descending increases entropy.
  for (std::size_t i = 0; i < log_std_grads.size(); ++i)
    log_std_grads[i] += -coef;
}

}  // namespace cocktail::rl
