#include "core/pipeline.h"

#include <stdexcept>

#include "attack/perturbation.h"
#include "core/expert_trainer.h"
#include "util/logging.h"
#include "util/paths.h"

namespace cocktail::core {
namespace {

std::string cache_path(const std::string& system_name, const std::string& kind,
                       std::uint64_t seed, const std::string& ext) {
  // Versioned by util::kModelCacheVersion: RNG-stream or format changes bump
  // the version and stale artifacts stop matching instead of poisoning runs.
  return util::model_cache_path(system_name, kind, seed, ext);
}

std::shared_ptr<const ctrl::NnController> load_or_distill(
    const sys::System& system, const ctrl::Controller& teacher,
    const DistillConfig& config, const std::string& label,
    const std::string& path, bool use_cache) {
  if (use_cache && util::file_exists(path)) {
    COCKTAIL_INFO << "loading cached student " << path;
    return std::make_shared<ctrl::NnController>(
        ctrl::NnController::load_file(path, label));
  }
  const DistillResult result = distill(system, teacher, config, label);
  if (use_cache) result.student->save_file(path);
  return result.student;
}

}  // namespace

std::vector<std::pair<std::string, ctrl::ControllerPtr>>
PipelineArtifacts::table_row_controllers() const {
  std::vector<std::pair<std::string, ctrl::ControllerPtr>> rows;
  for (std::size_t i = 0; i < experts.size(); ++i)
    rows.emplace_back("k" + std::to_string(i + 1), experts[i]);
  rows.emplace_back("AS", switching);
  rows.emplace_back("AW", mixed);
  rows.emplace_back("kD", direct_student);
  rows.emplace_back("k*", robust_student);
  return rows;
}

PipelineConfig default_pipeline_config(const std::string& system_name) {
  PipelineConfig config;
  config.seed = 2024;

  // --- adaptive mixing (PPO) ---
  config.mixing.weight_bound = 1.5;
  config.mixing.ppo.policy_hidden = {64, 64};
  config.mixing.ppo.value_hidden = {64, 64};
  config.mixing.ppo.iterations = 70;
  config.mixing.ppo.steps_per_iteration = 2000;
  config.mixing.ppo.update_epochs = 6;
  config.mixing.ppo.initial_std = 0.35;
  config.mixing.ppo.seed = util::derive_seed(config.seed, 61);

  // --- switching baseline (categorical PPO) ---
  config.switching.ppo = config.mixing.ppo;
  config.switching.ppo.seed = util::derive_seed(config.seed, 62);

  // --- robust distillation ---
  // A single hidden layer keeps the certified Lipschitz product tight (the
  // layer-norm product accumulates slack per layer), which is what makes
  // the student verifiable within reasonable Bernstein degrees.
  config.distill.student_hidden = {24};
  config.distill.epochs = 220;
  config.distill.adversarial_prob = 0.5;
  config.distill.lambda_l2 = 1.5e-3;
  config.distill.delta_fraction = 0.10;
  config.distill.seed = util::derive_seed(config.seed, 63);

  if (system_name == "cartpole") {
    config.mixing.ppo.iterations = 90;
    config.mixing.ppo.steps_per_iteration = 3000;
    config.switching.ppo.iterations = 90;
    config.switching.ppo.steps_per_iteration = 3000;
    // Margin shaping exists to make the Fig 3 invariant-set computation
    // feasible on the oscillator; cartpole is not formally verified in the
    // paper, and its knife-edge angle band makes the ramp counterproductive.
    config.mixing.reward.boundary_margin = 0.0;
    config.switching.reward.boundary_margin = 0.0;
    // The unstable plant needs a sharper student than the oscillator; the
    // paper's cartpole students also carry larger Lipschitz constants
    // (L = 72.5 for κ* vs 7.6 on the oscillator), and cartpole is not one
    // of the formally-verified figures.  The dataset leans on teacher
    // rollouts: uniform states far from any stabilizable trajectory would
    // waste student capacity on unreachable regions.
    config.distill.teacher_rollouts = 100;
    config.distill.uniform_samples = 1500;
    config.distill.student_hidden = {48, 48};
    // Very light robustness pressure: the paper observes κ* ≈ κD on
    // cartpole ("less significant because cartpole is an unstable
    // system"), and empirically every extra unit of FGSM/L2 pressure on
    // this knife-edge plant costs clean safe rate long before it buys
    // attack robustness — the stabilizing policy's sharp angle-velocity
    // gains are exactly what smoothing removes.  The knobs below keep
    // L(κ*) several-fold under L(κD) while matching its competence.
    config.distill.lambda_l2 = 5e-5;
    config.distill.adversarial_prob = 0.1;
    config.distill.delta_fraction = 0.025;
    config.distill.epochs = 400;
  } else if (system_name == "threed") {
    // Fig 4 needs a tight flowpipe, not an invariant set — margin shaping
    // is unnecessary here and measurably hurts the continuous-weight
    // learner on this plant (parts of X0 unavoidably transit the margin
    // band, flooding the reward with penalties).
    config.mixing.reward.boundary_margin = 0.0;
    config.switching.reward.boundary_margin = 0.0;
    // The continuous-weight policy needs noticeably more on-policy data
    // than the categorical switcher to match it on this plant; the clipped
    // surrogate stabilizes the longer run.
    config.mixing.ppo.iterations = 120;
    config.mixing.ppo.steps_per_iteration = 3000;
    config.mixing.ppo.update_epochs = 8;
    config.mixing.ppo.use_clip = true;
    config.mixing.ppo.kl_penalty_beta = 0.3;
    config.mixing.ppo.initial_std = 0.3;
    config.switching.ppo.iterations = 90;
    // A wider (still single-hidden-layer) student narrows the distillation
    // gap to the mixed teacher without giving up the tight certified L.
    config.distill.student_hidden = {40};
    config.distill.lambda_l2 = 1e-3;
    config.distill.epochs = 300;
    config.distill.uniform_samples = 6000;
  } else if (system_name != "vanderpol") {
    throw std::invalid_argument("default_pipeline_config: unknown system " +
                                system_name);
  }
  return config;
}

PipelineArtifacts run_pipeline(sys::SystemPtr system,
                               const PipelineConfig& config) {
  PipelineArtifacts artifacts;
  artifacts.system = system;

  // Pipeline-wide worker knob: nonzero overrides every stage; 0 keeps the
  // per-stage fields (which default to the shared pool) as the caller set
  // them.
  MixingConfig mixing = config.mixing;
  SwitchingConfig switching = config.switching;
  DistillConfig distill = config.distill;
  int expert_workers = 0;
  if (config.num_workers != 0) {
    mixing.ppo.num_workers = config.num_workers;
    switching.ppo.num_workers = config.num_workers;
    distill.num_workers = config.num_workers;
    expert_workers = config.num_workers;
  }
  // Env-shard knob: applies to every experience-collecting stage (PPO
  // collection, expert DDPG warmup); results are bitwise identical for any
  // value, so this is purely a throughput lever.
  if (config.num_env_shards > 0) {
    mixing.ppo.num_env_shards = config.num_env_shards;
    switching.ppo.num_env_shards = config.num_env_shards;
  }
  artifacts.experts =
      load_or_train_experts(system, config.seed, config.use_cache,
                            expert_workers, config.num_env_shards);

  // Training-time observation noise: the MDP's state perturbation δ
  // (Section III-A "may be maliciously attacked or affected by noises").
  // Kept mild — robustness is primarily the distillation step's job, and
  // heavy observation noise destabilizes the on-policy value estimates.
  if (mixing.reward.observation_noise.empty())
    mixing.reward.observation_noise =
        attack::perturbation_bound(*system, 0.03);
  if (switching.reward.observation_noise.empty())
    switching.reward.observation_noise = mixing.reward.observation_noise;

  // --- AW: adaptive mixing ---
  const std::string weight_path =
      cache_path(system->name(), "weightnet", config.seed, "mlp");
  if (config.use_cache && util::file_exists(weight_path)) {
    COCKTAIL_INFO << "loading cached weight net " << weight_path;
    artifacts.mixed = std::make_shared<ctrl::MixedController>(
        artifacts.experts, nn::Mlp::load_file(weight_path),
        mixing.weight_bound, system->control_bounds(), "AW");
  } else {
    MixingResult result =
        train_adaptive_mixing(system, artifacts.experts, mixing);
    artifacts.mixed = result.controller;
    if (config.use_cache)
      artifacts.mixed->weight_net().save_file(weight_path);
  }

  // --- AS: switching baseline ---
  const std::string selector_path =
      cache_path(system->name(), "selector", config.seed, "mlp");
  if (config.use_cache && util::file_exists(selector_path)) {
    COCKTAIL_INFO << "loading cached selector net " << selector_path;
    artifacts.switching = std::make_shared<ctrl::SwitchedController>(
        artifacts.experts, nn::Mlp::load_file(selector_path), "AS");
  } else {
    SwitchingResult result =
        train_switching(system, artifacts.experts, switching);
    artifacts.switching = result.controller;
    if (config.use_cache) {
      const auto* as_switched = dynamic_cast<const ctrl::SwitchedController*>(
          artifacts.switching.get());
      as_switched->selector_net().save_file(selector_path);
    }
  }

  // --- students: κD (direct) and κ* (robust) ---
  artifacts.direct_student = load_or_distill(
      *system, *artifacts.mixed, distill.direct(), "kD",
      cache_path(system->name(), "studentD", config.seed, "nnctl"),
      config.use_cache);
  artifacts.robust_student = load_or_distill(
      *system, *artifacts.mixed, distill, "k*",
      cache_path(system->name(), "studentR", config.seed, "nnctl"),
      config.use_cache);
  return artifacts;
}

}  // namespace cocktail::core
