// Step 1 of Cocktail: RL-based adaptive mixing (paper Section III-A), plus
// the switching baseline AS and the DDPG mixing variant of Remark 1.
//
// All four trainers collect experience through the sharded collectors: the
// embedded rl::PpoConfig / rl::DdpgConfig `num_env_shards` field replicates
// the adaptation env (MixingEnv / SwitchingEnv / FiniteWeightedEnv) per
// shard via Env::clone(), and `num_workers` parallelizes the minibatch
// gradient work.  Trained controllers are bitwise identical for any shard
// or worker count.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "control/finite_weighted_controller.h"
#include "control/mixed_controller.h"
#include "control/switched_controller.h"
#include "core/envs.h"
#include "rl/ddpg.h"
#include "rl/ppo.h"

namespace cocktail::core {

/// Checkpoint selection shared by all adaptation trainers: training runs in
/// chunks and the deterministic policy is evaluated between chunks on a
/// fixed set of clean rollouts; the best snapshot (safe rate first, energy
/// as tie-break) becomes the returned controller.  This de-noises the
/// run-to-run variance of on-policy RL without changing what is learned.
struct SnapshotConfig {
  int checkpoints = 6;      ///< evaluation points across training (>= 1).
  int eval_states = 240;    ///< rollouts per evaluation.
  std::uint64_t eval_seed = 99991;
  /// Safe-rate tolerance treated as a tie (then lower energy wins).
  double sr_tie_tolerance = 0.005;
};

struct MixingConfig {
  double weight_bound = 1.5;  ///< AB (the paper requires AB >= 1).
  SafetyRewardConfig reward;
  rl::PpoConfig ppo;
  SnapshotConfig snapshot;
};

struct MixingResult {
  std::shared_ptr<const ctrl::MixedController> controller;  ///< AW.
  rl::PpoStats stats;
};

/// Learns the adaptive mixing strategy with PPO; the returned
/// MixedController uses the deterministic policy mean as its weight net.
[[nodiscard]] MixingResult train_adaptive_mixing(
    sys::SystemPtr system, std::vector<ctrl::ControllerPtr> experts,
    const MixingConfig& config);

struct SwitchingConfig {
  SafetyRewardConfig reward;
  rl::PpoConfig ppo;
  SnapshotConfig snapshot;
};

struct SwitchingResult {
  std::shared_ptr<const ctrl::SwitchedController> controller;  ///< AS.
  rl::PpoStats stats;
};

/// Learns the switching adaptation baseline (categorical PPO over experts).
[[nodiscard]] SwitchingResult train_switching(
    sys::SystemPtr system, std::vector<ctrl::ControllerPtr> experts,
    const SwitchingConfig& config);

struct FiniteWeightedConfig {
  /// Simplex grid resolution k: weights from {0, 1/k, ..., 1}, Σ = 1.
  int resolution = 4;
  SafetyRewardConfig reward;
  rl::PpoConfig ppo;
  SnapshotConfig snapshot;
};

struct FiniteWeightedResult {
  std::shared_ptr<const ctrl::FiniteWeightedController> controller;
  rl::PpoStats stats;
};

/// Learns the finite-size weighted adaptation baseline of [11]: categorical
/// PPO over a fixed simplex grid of convex expert combinations.
[[nodiscard]] FiniteWeightedResult train_finite_weighted(
    sys::SystemPtr system, std::vector<ctrl::ControllerPtr> experts,
    const FiniteWeightedConfig& config);

struct DdpgMixingConfig {
  double weight_bound = 1.5;
  SafetyRewardConfig reward;
  rl::DdpgConfig ddpg;
  SnapshotConfig snapshot;
};

struct DdpgMixingResult {
  std::shared_ptr<const ctrl::MixedController> controller;
  rl::DdpgStats stats;
};

/// Remark 1: the mixing strategy can also be learned with DDPG — the tanh
/// actor plays the role of the weight network directly.
[[nodiscard]] DdpgMixingResult train_adaptive_mixing_ddpg(
    sys::SystemPtr system, std::vector<ctrl::ControllerPtr> experts,
    const DdpgMixingConfig& config);

}  // namespace cocktail::core
