#include "core/metrics.h"

#include <cmath>
#include <cstdio>
#include <limits>
#include <stdexcept>
#include <string>

#include "core/rollout.h"

namespace cocktail::core {

EvalResult evaluate(const sys::System& system,
                    const ctrl::Controller& controller,
                    const EvalConfig& config) {
  BatchRolloutConfig batch;
  batch.num_workers = config.num_workers;
  const std::vector<RolloutResult> rollouts = batch_rollout(
      system, controller,
      make_eval_jobs(system, config.num_initial_states, config.seed,
                     config.perturbation.get()),
      batch);
  return summarize_rollouts(rollouts, 0, rollouts.size());
}

EvalResult summarize_rollouts(const std::vector<RolloutResult>& results,
                              std::size_t begin, std::size_t count) {
  if (begin > results.size() || count > results.size() - begin)
    throw std::out_of_range("summarize_rollouts: slice [" +
                            std::to_string(begin) + ", " +
                            std::to_string(begin + count) +
                            ") exceeds batch of " +
                            std::to_string(results.size()));
  EvalResult out;
  out.num_total = static_cast<int>(count);
  // Serial and in job order, so the floating-point sum is identical for
  // every worker count.
  double energy_sum = 0.0;
  for (std::size_t i = begin; i < begin + count; ++i) {
    if (results[i].safe) {
      ++out.num_safe;
      energy_sum += results[i].energy;
    }
  }
  out.safe_rate = count == 0 ? 0.0
                             : static_cast<double>(out.num_safe) /
                                   static_cast<double>(count);
  // Mean energy over *safe* trajectories is undefined when none is safe.
  // NaN (not 0.0) keeps an all-unsafe candidate from masquerading as a
  // zero-energy one — the same convention PairedOutcome::energy_a/b uses.
  out.mean_energy = out.num_safe == 0
                        ? std::numeric_limits<double>::quiet_NaN()
                        : energy_sum / out.num_safe;
  return out;
}

std::string format_energy(double mean_energy) {
  if (std::isnan(mean_energy)) return "-";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f", mean_energy);
  return buf;
}

double lipschitz_metric(const ctrl::Controller& controller) {
  return controller.lipschitz_bound();
}

}  // namespace cocktail::core
