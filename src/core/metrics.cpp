#include "core/metrics.h"

#include "core/rollout.h"

namespace cocktail::core {

EvalResult evaluate(const sys::System& system,
                    const ctrl::Controller& controller,
                    const EvalConfig& config) {
  EvalResult result;
  result.num_total = config.num_initial_states;
  util::Rng init_rng(util::derive_seed(config.seed, 1));
  double energy_sum = 0.0;
  for (int k = 0; k < config.num_initial_states; ++k) {
    const la::Vec s0 = system.sample_initial_state(init_rng);
    // Fresh, per-trajectory stream for disturbances/noise so adding
    // trajectories never shifts earlier ones.
    util::Rng traj_rng(util::derive_seed(config.seed, 1000 + k));
    const RolloutResult r = rollout(system, controller, s0,
                                    config.perturbation.get(), traj_rng);
    if (r.safe) {
      ++result.num_safe;
      energy_sum += r.energy;
    }
  }
  result.safe_rate = result.num_total == 0
                         ? 0.0
                         : static_cast<double>(result.num_safe) /
                               static_cast<double>(result.num_total);
  result.mean_energy =
      result.num_safe == 0 ? 0.0 : energy_sum / result.num_safe;
  return result;
}

double lipschitz_metric(const ctrl::Controller& controller) {
  return controller.lipschitz_bound();
}

}  // namespace cocktail::core
