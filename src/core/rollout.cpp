#include "core/rollout.h"

namespace cocktail::core {

RolloutResult rollout(const sys::System& system,
                      const ctrl::Controller& controller,
                      const la::Vec& initial_state,
                      const attack::PerturbationModel* perturbation,
                      util::Rng& rng, const RolloutConfig& config) {
  const int horizon = config.horizon > 0 ? config.horizon : system.horizon();
  RolloutResult result;
  la::Vec s = initial_state;
  if (config.record_trajectory) result.states.push_back(s);
  if (!system.is_safe(s)) {
    result.safe = false;
    result.final_state = s;
    return result;
  }
  for (int t = 0; t < horizon; ++t) {
    la::Vec observed = s;
    if (perturbation != nullptr)
      la::axpy(observed, 1.0, perturbation->perturb(s, controller, rng));
    const la::Vec u = system.clip_control(controller.act(observed));
    result.energy += la::norm_l1(u);
    const la::Vec omega = system.sample_disturbance(rng);
    s = system.step(s, u, omega);
    ++result.steps_taken;
    if (config.record_trajectory) {
      result.states.push_back(s);
      result.controls.push_back(u);
    }
    if (!system.is_safe(s)) {
      result.safe = false;
      break;
    }
  }
  result.final_state = s;
  return result;
}

}  // namespace cocktail::core
