#include "core/rollout.h"

#include <algorithm>

#include "util/thread_pool.h"

namespace cocktail::core {

RolloutResult rollout(const sys::System& system,
                      const ctrl::Controller& controller,
                      const la::Vec& initial_state,
                      const attack::PerturbationModel* perturbation,
                      util::Rng& rng, const RolloutConfig& config) {
  const int horizon = config.horizon > 0 ? config.horizon : system.horizon();
  RolloutResult result;
  la::Vec s = initial_state;
  if (config.record_trajectory) result.states.push_back(s);
  if (!system.is_safe(s)) {
    result.safe = false;
    result.final_state = s;
    return result;
  }
  for (int t = 0; t < horizon; ++t) {
    la::Vec observed = s;
    if (perturbation != nullptr)
      la::axpy(observed, 1.0, perturbation->perturb(s, controller, rng));
    const la::Vec u = system.clip_control(controller.act(observed));
    result.energy += la::norm_l1(u);
    const la::Vec omega = system.sample_disturbance(rng);
    s = system.step(s, u, omega);
    ++result.steps_taken;
    if (config.record_trajectory) {
      result.states.push_back(s);
      result.controls.push_back(u);
    }
    if (!system.is_safe(s)) {
      result.safe = false;
      break;
    }
  }
  result.final_state = s;
  return result;
}

std::vector<RolloutResult> batch_rollout(const sys::System& system,
                                         const ctrl::Controller& controller,
                                         const std::vector<RolloutJob>& jobs,
                                         const BatchRolloutConfig& config) {
  std::vector<RolloutResult> results(jobs.size());
  const auto run_one = [&](std::size_t i) {
    util::Rng rng(jobs[i].seed);
    results[i] = rollout(system, controller, jobs[i].initial_state,
                         jobs[i].perturbation, rng, config.rollout);
  };
  if (config.pool != nullptr) {
    config.pool->parallel_for(jobs.size(), run_one);
  } else if (config.num_workers == 1 || jobs.size() <= 1) {
    for (std::size_t i = 0; i < jobs.size(); ++i) run_one(i);
  } else if (config.num_workers <= 0) {
    util::ThreadPool::shared().parallel_for(jobs.size(), run_one);
  } else {
    util::ThreadPool pool(config.num_workers);
    pool.parallel_for(jobs.size(), run_one);
  }
  return results;
}

std::vector<RolloutJob> make_eval_jobs(
    const sys::System& system, int num_initial_states, std::uint64_t seed,
    const attack::PerturbationModel* perturbation) {
  std::vector<RolloutJob> jobs;
  jobs.reserve(static_cast<std::size_t>(std::max(num_initial_states, 0)));
  util::Rng init_rng(util::derive_seed(seed, 1));
  for (int k = 0; k < num_initial_states; ++k) {
    RolloutJob job;
    job.initial_state = system.sample_initial_state(init_rng);
    // Fresh, per-trajectory stream for disturbances/noise so adding
    // trajectories never shifts earlier ones.
    job.seed = util::derive_seed(seed, 1000 + static_cast<std::uint64_t>(k));
    job.perturbation = perturbation;
    jobs.push_back(std::move(job));
  }
  return jobs;
}

}  // namespace cocktail::core
