#include "core/rollout.h"

#include <algorithm>

#include "util/thread_pool.h"

namespace cocktail::core {

RolloutResult rollout(const sys::System& system,
                      const ctrl::Controller& controller,
                      const la::Vec& initial_state,
                      const attack::PerturbationModel* perturbation,
                      util::Rng& rng, const RolloutConfig& config) {
  const int horizon = config.horizon > 0 ? config.horizon : system.horizon();
  RolloutResult result;
  la::Vec s = initial_state;
  if (config.record_trajectory) result.states.push_back(s);
  if (!system.is_safe(s)) {
    result.safe = false;
    result.final_state = s;
    return result;
  }
  for (int t = 0; t < horizon; ++t) {
    la::Vec observed = s;
    if (perturbation != nullptr)
      la::axpy(observed, 1.0, perturbation->perturb(s, controller, rng));
    const la::Vec u = system.clip_control(controller.act(observed));
    result.energy += la::norm_l1(u);
    const la::Vec omega = system.sample_disturbance(rng);
    s = system.step(s, u, omega);
    ++result.steps_taken;
    if (config.record_trajectory) {
      result.states.push_back(s);
      result.controls.push_back(u);
    }
    if (!system.is_safe(s)) {
      result.safe = false;
      break;
    }
  }
  result.final_state = s;
  return result;
}

namespace {

/// Dispatches f(0), ..., f(n-1) per the BatchRolloutConfig pool convention
/// (explicit pool > num_workers; 1 or a trivial batch = serial inline).
void run_batch(std::size_t n, const BatchRolloutConfig& config,
               const std::function<void(std::size_t)>& f) {
  if (config.pool != nullptr) {
    // Each rollout i derives its own RNG stream (derive_seed) and writes
    // only results[i]; no cross-index state, so scheduling order cannot
    // reach the outputs.
    // DETLINT-ALLOW(raw-parallel-dispatch): per-index RNG, disjoint writes
    config.pool->parallel_for(n, f);
  } else if (config.num_workers == 1 || n <= 1) {
    for (std::size_t i = 0; i < n; ++i) f(i);
  } else {
    util::WorkerScope scope(config.num_workers);
    // DETLINT-ALLOW(raw-parallel-dispatch): same contract as above
    scope.pool()->parallel_for(n, f);
  }
}

}  // namespace

std::vector<RolloutResult> batch_rollout(const sys::System& system,
                                         const ctrl::Controller& controller,
                                         const std::vector<RolloutJob>& jobs,
                                         const BatchRolloutConfig& config) {
  std::vector<RolloutResult> results(jobs.size());
  run_batch(jobs.size(), config, [&](std::size_t i) {
    util::Rng rng(jobs[i].seed);
    results[i] = rollout(system, controller, jobs[i].initial_state,
                         jobs[i].perturbation, rng, config.rollout);
  });
  return results;
}

PairedRolloutResults batch_rollout_paired(const sys::System& system,
                                          const ctrl::Controller& a,
                                          const ctrl::Controller& b,
                                          const std::vector<RolloutJob>& jobs,
                                          const BatchRolloutConfig& config) {
  const std::size_t n = jobs.size();
  PairedRolloutResults results;
  results.a.resize(n);
  results.b.resize(n);
  // One fused 2N stream: index i < n is job i under `a`, index n + k is job
  // k under `b`.  Each unit re-seeds from its job, so the fusion cannot
  // change any trajectory.
  run_batch(2 * n, config, [&](std::size_t i) {
    const bool first = i < n;
    const RolloutJob& job = jobs[first ? i : i - n];
    util::Rng rng(job.seed);
    RolloutResult& out = first ? results.a[i] : results.b[i - n];
    out = rollout(system, first ? a : b, job.initial_state, job.perturbation,
                  rng, config.rollout);
  });
  return results;
}

std::vector<RolloutJob> make_eval_jobs(
    const sys::System& system, int num_initial_states, std::uint64_t seed,
    const attack::PerturbationModel* perturbation) {
  std::vector<RolloutJob> jobs;
  jobs.reserve(static_cast<std::size_t>(std::max(num_initial_states, 0)));
  util::Rng init_rng(util::derive_seed(seed, 1));
  for (int k = 0; k < num_initial_states; ++k) {
    RolloutJob job;
    job.initial_state = system.sample_initial_state(init_rng);
    // Fresh, per-trajectory stream for disturbances/noise so adding
    // trajectories never shifts earlier ones.
    job.seed = util::derive_seed(seed, 1000 + static_cast<std::uint64_t>(k));
    job.perturbation = perturbation;
    jobs.push_back(std::move(job));
  }
  return jobs;
}

}  // namespace cocktail::core
