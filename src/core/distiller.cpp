#include "core/distiller.h"

#include <algorithm>
#include <cmath>

#include "attack/fgsm.h"
#include "core/rollout.h"
#include "nn/grad_reduce.h"
#include "nn/loss.h"
#include "nn/mlp.h"
#include "nn/optimizer.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace cocktail::core {

namespace {

/// build_distill_dataset against an already-resolved pool (nullptr =
/// serial), so distill() resolves its WorkerScope once for both the
/// dataset build and the SGD loop.  Results are pool-independent.
DistillDataset build_dataset_on_pool(const sys::System& system,
                                     const ctrl::Controller& teacher,
                                     const DistillConfig& config,
                                     util::ThreadPool* pool) {
  DistillDataset data;
  util::Rng rng(util::derive_seed(config.seed, 501));
  // On-policy teacher trajectories: the states the mixed design actually
  // steers through.  Initial states come from the caller's stream; each
  // rollout owns a derived per-rollout disturbance stream, so the batch is
  // bitwise identical for any worker count.
  std::vector<RolloutJob> jobs;
  jobs.reserve(static_cast<std::size_t>(std::max(config.teacher_rollouts, 0)));
  for (int k = 0; k < config.teacher_rollouts; ++k) {
    RolloutJob job;
    job.initial_state = system.sample_initial_state(rng);
    job.seed =
        util::derive_seed(config.seed, 1500 + static_cast<std::uint64_t>(k));
    jobs.push_back(std::move(job));
  }
  BatchRolloutConfig batch;
  batch.rollout.record_trajectory = true;
  if (pool != nullptr)
    batch.pool = pool;
  else
    batch.num_workers = 1;
  for (const RolloutResult& r : batch_rollout(system, teacher, jobs, batch)) {
    for (std::size_t t = 0; t + 1 < r.states.size(); ++t) {
      data.states.push_back(r.states[t]);
      data.controls.push_back(r.controls[t]);
    }
  }
  // Uniform coverage of the (bounded) sampling region so the student also
  // matches the teacher away from nominal trajectories.
  const sys::Box region = system.sampling_region();
  for (int k = 0; k < config.uniform_samples; ++k) {
    la::Vec s = region.sample(rng);
    la::Vec u = system.clip_control(teacher.act(s));
    data.states.push_back(std::move(s));
    data.controls.push_back(std::move(u));
  }
  return data;
}

}  // namespace

DistillDataset build_distill_dataset(const sys::System& system,
                                     const ctrl::Controller& teacher,
                                     const DistillConfig& config) {
  util::WorkerScope workers(config.num_workers);
  return build_dataset_on_pool(system, teacher, config, workers.pool());
}

DistillResult distill(const sys::System& system,
                      const ctrl::Controller& teacher,
                      const DistillConfig& config, const std::string& label) {
  // One pool for the whole call: dataset rollouts, SGD, and the final loss.
  util::WorkerScope workers(config.num_workers);
  const DistillDataset data =
      build_dataset_on_pool(system, teacher, config, workers.pool());
  util::Rng rng(util::derive_seed(config.seed, 502));

  // The student mirrors the actor architecture the paper trains with DDPG:
  // a tanh output head expressing u / u_scale, with the physical range in
  // the (fixed) output scaling.  Expressing normalized controls keeps the
  // weight norms — and therefore the certified Lipschitz product the whole
  // verifiability story depends on — small; a raw-u head would need
  // |U|-sized weights just to span the output range.
  const sys::Box u_bounds = system.control_bounds();
  la::Vec out_scale(system.control_dim());
  for (std::size_t i = 0; i < out_scale.size(); ++i)
    out_scale[i] = std::max(0.5 * (u_bounds.hi[i] - u_bounds.lo[i]), 1e-9);

  // Targets in normalized units (|û| <= 1 after the rollout clip).
  std::vector<la::Vec> targets(data.size());
  for (std::size_t i = 0; i < data.size(); ++i) {
    targets[i] = data.controls[i];
    for (std::size_t d = 0; d < targets[i].size(); ++d)
      targets[i][d] /= out_scale[d];
  }

  nn::Mlp student = nn::Mlp::make(
      system.state_dim(), config.student_hidden, system.control_dim(),
      config.hidden_activation, nn::Activation::kTanh,
      util::derive_seed(config.seed, 503));
  nn::Adam opt(config.learning_rate);

  const la::Vec delta_bound =
      attack::perturbation_bound(system, config.delta_fraction);

  // Per-sample forward/FGSM/backward is RNG-free and independent, so each
  // minibatch fans across the pool with per-chunk gradient buffers and a
  // fixed-order merge (the util::chunked_reduce tree): gradients are
  // bitwise identical for any worker count.  The grain is part of the
  // reduction tree and must stay fixed.
  constexpr std::size_t kSgdGrain = 8;
  constexpr std::size_t kLossGrain = 256;

  nn::ChunkedGradReducer<nn::Gradients> reducer(
      std::min(config.minibatch, data.size()), kSgdGrain,
      [&] { return student.zero_gradients(); });

  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    const auto perm = rng.permutation(data.size());
    for (std::size_t start = 0; start < perm.size();
         start += config.minibatch) {
      const std::size_t end = std::min(start + config.minibatch, perm.size());
      const double inv = 1.0 / static_cast<double>(end - start);
      // Algorithm 1 line 12: one Bernoulli draw per update step decides
      // between direct distillation and adversarial training.
      const bool adversarial = rng.bernoulli(config.adversarial_prob);
      nn::Gradients& grads = reducer.reduce(
          workers.pool(), end - start, [&](nn::Gradients& acc, std::size_t k) {
            const std::size_t i = perm[start + k];
            la::Vec input = data.states[i];
            const la::Vec& target = targets[i];
            if (adversarial) {
              // Inner max (line 13): δ = Δ·sign(∇_s ℓ(κ*(s;q), u)).
              const la::Vec pred = student.forward(input);
              const la::Vec dl_dy = nn::mse_gradient(pred, target);
              const la::Vec grad_s = student.input_gradient(input, dl_dy);
              la::axpy(input, 1.0, attack::fgsm_delta(grad_s, delta_bound));
            }
            // Outer min (line 14): MSE on the (possibly perturbed) input.
            nn::Mlp::Workspace ws;
            const la::Vec pred = student.forward(input, ws);
            la::Vec dl_dy = nn::mse_gradient(pred, target);
            for (auto& g : dl_dy) g *= inv;
            (void)student.backward(ws, dl_dy, acc);
          });
      if (config.lambda_l2 > 0.0)
        student.accumulate_l2_gradient(config.lambda_l2, grads);
      opt.step(student, grads);
      if (config.spectral_norm_cap > 0.0) {
        // Pauli-style projection: rescale any layer above the cap so the
        // certified Lipschitz product stays <= cap^depth (extension knob;
        // see bench_ablation_projection).
        for (auto& layer : student.layers()) {
          const double sigma = layer.w.spectral_norm(30);
          if (sigma > config.spectral_norm_cap)
            layer.w.scale_in_place(config.spectral_norm_cap / sigma);
        }
      }
    }
  }

  DistillResult result;
  // Clean-data regression loss in normalized control units (comparable
  // between κD and κ* and across systems); same fixed-order reduction.
  const double loss = util::chunked_reduce(
      workers.pool(), data.size(), kLossGrain, [] { return 0.0; },
      [&](double& acc, std::size_t i) {
        acc += nn::mse(student.forward(data.states[i]), targets[i]);
      },
      [](double& into, const double& from) { into += from; });
  result.final_loss = loss / static_cast<double>(data.size());
  result.dataset_size = data.size();
  result.student = std::make_shared<ctrl::NnController>(
      std::move(student), out_scale, label);
  result.lipschitz = result.student->lipschitz_bound();
  COCKTAIL_INFO << "distilled " << label << " on " << system.name()
                << ": normalized loss " << result.final_loss << ", L "
                << result.lipschitz << ", dataset " << result.dataset_size;
  return result;
}

}  // namespace cocktail::core
