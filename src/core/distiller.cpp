#include "core/distiller.h"

#include <algorithm>
#include <cmath>

#include "attack/fgsm.h"
#include "core/rollout.h"
#include "nn/loss.h"
#include "nn/mlp.h"
#include "nn/optimizer.h"
#include "util/logging.h"

namespace cocktail::core {

DistillDataset build_distill_dataset(const sys::System& system,
                                     const ctrl::Controller& teacher,
                                     const DistillConfig& config) {
  DistillDataset data;
  util::Rng rng(util::derive_seed(config.seed, 501));
  // On-policy teacher trajectories: the states the mixed design actually
  // steers through.
  RolloutConfig rollout_config;
  rollout_config.record_trajectory = true;
  for (int k = 0; k < config.teacher_rollouts; ++k) {
    const la::Vec s0 = system.sample_initial_state(rng);
    const RolloutResult r =
        rollout(system, teacher, s0, nullptr, rng, rollout_config);
    for (std::size_t t = 0; t + 1 < r.states.size(); ++t) {
      data.states.push_back(r.states[t]);
      data.controls.push_back(r.controls[t]);
    }
  }
  // Uniform coverage of the (bounded) sampling region so the student also
  // matches the teacher away from nominal trajectories.
  const sys::Box region = system.sampling_region();
  for (int k = 0; k < config.uniform_samples; ++k) {
    la::Vec s = region.sample(rng);
    la::Vec u = system.clip_control(teacher.act(s));
    data.states.push_back(std::move(s));
    data.controls.push_back(std::move(u));
  }
  return data;
}

DistillResult distill(const sys::System& system,
                      const ctrl::Controller& teacher,
                      const DistillConfig& config, const std::string& label) {
  const DistillDataset data = build_distill_dataset(system, teacher, config);
  util::Rng rng(util::derive_seed(config.seed, 502));

  // The student mirrors the actor architecture the paper trains with DDPG:
  // a tanh output head expressing u / u_scale, with the physical range in
  // the (fixed) output scaling.  Expressing normalized controls keeps the
  // weight norms — and therefore the certified Lipschitz product the whole
  // verifiability story depends on — small; a raw-u head would need
  // |U|-sized weights just to span the output range.
  const sys::Box u_bounds = system.control_bounds();
  la::Vec out_scale(system.control_dim());
  for (std::size_t i = 0; i < out_scale.size(); ++i)
    out_scale[i] = std::max(0.5 * (u_bounds.hi[i] - u_bounds.lo[i]), 1e-9);

  // Targets in normalized units (|û| <= 1 after the rollout clip).
  std::vector<la::Vec> targets(data.size());
  for (std::size_t i = 0; i < data.size(); ++i) {
    targets[i] = data.controls[i];
    for (std::size_t d = 0; d < targets[i].size(); ++d)
      targets[i][d] /= out_scale[d];
  }

  nn::Mlp student = nn::Mlp::make(
      system.state_dim(), config.student_hidden, system.control_dim(),
      config.hidden_activation, nn::Activation::kTanh,
      util::derive_seed(config.seed, 503));
  nn::Adam opt(config.learning_rate);
  nn::Gradients grads = student.zero_gradients();

  const la::Vec delta_bound =
      attack::perturbation_bound(system, config.delta_fraction);

  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    const auto perm = rng.permutation(data.size());
    for (std::size_t start = 0; start < perm.size();
         start += config.minibatch) {
      const std::size_t end = std::min(start + config.minibatch, perm.size());
      const double inv = 1.0 / static_cast<double>(end - start);
      // Algorithm 1 line 12: one Bernoulli draw per update step decides
      // between direct distillation and adversarial training.
      const bool adversarial = rng.bernoulli(config.adversarial_prob);
      grads.zero();
      for (std::size_t k = start; k < end; ++k) {
        const std::size_t i = perm[k];
        la::Vec input = data.states[i];
        const la::Vec& target = targets[i];
        if (adversarial) {
          // Inner max (line 13): δ = Δ·sign(∇_s ℓ(κ*(s;q), u)).
          const la::Vec pred = student.forward(input);
          const la::Vec dl_dy = nn::mse_gradient(pred, target);
          const la::Vec grad_s = student.input_gradient(input, dl_dy);
          la::axpy(input, 1.0, attack::fgsm_delta(grad_s, delta_bound));
        }
        // Outer min (line 14): MSE on the (possibly perturbed) input.
        nn::Mlp::Workspace ws;
        const la::Vec pred = student.forward(input, ws);
        la::Vec dl_dy = nn::mse_gradient(pred, target);
        for (auto& g : dl_dy) g *= inv;
        (void)student.backward(ws, dl_dy, grads);
      }
      if (config.lambda_l2 > 0.0)
        student.accumulate_l2_gradient(config.lambda_l2, grads);
      opt.step(student, grads);
      if (config.spectral_norm_cap > 0.0) {
        // Pauli-style projection: rescale any layer above the cap so the
        // certified Lipschitz product stays <= cap^depth (extension knob;
        // see bench_ablation_projection).
        for (auto& layer : student.layers()) {
          const double sigma = layer.w.spectral_norm(30);
          if (sigma > config.spectral_norm_cap)
            layer.w.scale_in_place(config.spectral_norm_cap / sigma);
        }
      }
    }
  }

  DistillResult result;
  // Clean-data regression loss in normalized control units (comparable
  // between κD and κ* and across systems).
  double loss = 0.0;
  for (std::size_t i = 0; i < data.size(); ++i)
    loss += nn::mse(student.forward(data.states[i]), targets[i]);
  result.final_loss = loss / static_cast<double>(data.size());
  result.dataset_size = data.size();
  result.student = std::make_shared<ctrl::NnController>(
      std::move(student), out_scale, label);
  result.lipschitz = result.student->lipschitz_bound();
  COCKTAIL_INFO << "distilled " << label << " on " << system.name()
                << ": normalized loss " << result.final_loss << ", L "
                << result.lipschitz << ", dataset " << result.dataset_size;
  return result;
}

}  // namespace cocktail::core
