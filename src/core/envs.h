// MDP environments (paper Section III-A) built on the plant models.
//
//   * ExpertTrainingEnv — the per-expert DDPG task: the action is the raw
//     control input (scaled), the reward a normalized quadratic
//     stabilization cost.  Different cost weights / action scales produce
//     the paper's "experts with different hyper-parameters".
//   * MixingEnv — the adaptive-mixing MDP: the action is the weight vector
//     a ∈ [-AB, AB]^n over the experts, u = clip(Σ aᵢκᵢ(s)); the reward is
//     R_pun on safety violation and the monotonically decreasing energy
//     function h(||u||₁) otherwise.
//   * SwitchingEnv — the restriction of MixingEnv to one-hot weights
//     (the ICCAD'20 [4] baseline AS's action space).
//
// All three optionally corrupt the *observed* state with bounded uniform
// noise so the learned strategies optimize the paper's robustness notion
// (perturbed observations at every sampling period).
#pragma once

#include <memory>
#include <vector>

#include "control/controller.h"
#include "rl/env.h"
#include "sys/system.h"

namespace cocktail::core {

/// Reward parameters shared by MixingEnv / SwitchingEnv / FiniteWeightedEnv.
struct SafetyRewardConfig {
  double unsafe_punishment = -50.0;  ///< R_pun (large negative).
  /// h(||u||₁) = 1 − energy_coef · ||u||₁  (monotonically decreasing).
  /// When <= 0, a sensible default of 1/(2·max||u||₁) is derived so the
  /// reward stays within [~0.5, 1] on feasible controls.
  double energy_coef = 0.0;
  /// Boundary-margin shaping: the paper's reward "steers the system away
  /// from the unsafe region"; a pure in/out punishment only reacts *after*
  /// a violation, so we additionally ramp a penalty over the outer
  /// `boundary_margin` fraction of each (finite) safe-region dimension.
  /// Without it the learned mixing hugs the boundary ("lazy barrier"),
  /// which simulation tolerates but invariant-set certification cannot.
  double boundary_margin = 0.15;   ///< fraction of X near the edge (0 = off).
  double margin_penalty = 3.0;     ///< penalty at the boundary itself.
  /// Half-widths of the observation noise during training (empty = clean
  /// observations).
  la::Vec observation_noise;
};

/// The shaped per-step reward shared by the adaptation envs:
/// R_pun on violation, else h(||u||₁) minus the boundary-margin ramp.
[[nodiscard]] double safety_shaped_reward(const sys::System& system,
                                          const la::Vec& next_state,
                                          const la::Vec& control,
                                          const SafetyRewardConfig& config,
                                          double energy_coef,
                                          bool& violated);

class ExpertTrainingEnv final : public rl::Env {
 public:
  struct Config {
    /// Fraction of the control bound the expert may use (action scaling);
    /// one lever for making experts deliberately different.
    double action_scale = 1.0;
    /// Reward: -Σ_i state_weight_i (s_i/norm_i)² - control_weight·|u/U|².
    la::Vec state_weights;  ///< empty = all ones.
    double control_weight = 0.01;
    double unsafe_punishment = -50.0;
    la::Vec observation_noise;  ///< empty = clean.
  };

  ExpertTrainingEnv(sys::SystemPtr system, Config config);

  [[nodiscard]] std::size_t state_dim() const override;
  [[nodiscard]] std::size_t action_dim() const override;
  [[nodiscard]] int max_episode_steps() const override;

  [[nodiscard]] double action_scale() const { return config_.action_scale; }

 protected:
  la::Vec do_reset(util::Rng& rng) override;
  [[nodiscard]] rl::StepResult do_step(const la::Vec& action,
                                       util::Rng& rng) override;
  [[nodiscard]] std::unique_ptr<rl::Env> do_clone() const override;

 private:
  sys::SystemPtr system_;
  Config config_;
  la::Vec state_norm_;  ///< per-dimension normalizers from sampling_region.
  la::Vec true_state_;
};

class MixingEnv final : public rl::Env {
 public:
  MixingEnv(sys::SystemPtr system, std::vector<ctrl::ControllerPtr> experts,
            double weight_bound, SafetyRewardConfig reward);

  [[nodiscard]] std::size_t state_dim() const override;
  /// One weight per expert.
  [[nodiscard]] std::size_t action_dim() const override;
  [[nodiscard]] int max_episode_steps() const override;

  [[nodiscard]] double weight_bound() const { return weight_bound_; }
  [[nodiscard]] double energy_coef() const { return energy_coef_; }

 protected:
  la::Vec do_reset(util::Rng& rng) override;
  /// `action` in [-1,1]^n; the env scales by the weight bound AB.
  [[nodiscard]] rl::StepResult do_step(const la::Vec& action,
                                       util::Rng& rng) override;
  [[nodiscard]] std::unique_ptr<rl::Env> do_clone() const override;

 private:
  sys::SystemPtr system_;
  std::vector<ctrl::ControllerPtr> experts_;
  double weight_bound_;
  SafetyRewardConfig reward_;
  double energy_coef_;
  la::Vec true_state_;
};

/// Finite-size weighted adaptation (Ramakrishna et al. [11]): the action
/// picks one entry of a fixed weight table (convex combinations of the
/// experts).  Strictly between SwitchingEnv and MixingEnv in action-space
/// inclusion — the middle rung of Proposition 1's chain.
class FiniteWeightedEnv final : public rl::Env {
 public:
  FiniteWeightedEnv(sys::SystemPtr system,
                    std::vector<ctrl::ControllerPtr> experts,
                    std::vector<la::Vec> weight_table,
                    SafetyRewardConfig reward);

  [[nodiscard]] std::size_t state_dim() const override;
  /// Number of weight-table entries (discrete choices).
  [[nodiscard]] std::size_t action_dim() const override;
  [[nodiscard]] int max_episode_steps() const override;

 protected:
  la::Vec do_reset(util::Rng& rng) override;
  /// `action` holds the table index in action[0].
  [[nodiscard]] rl::StepResult do_step(const la::Vec& action,
                                       util::Rng& rng) override;
  [[nodiscard]] std::unique_ptr<rl::Env> do_clone() const override;

 private:
  sys::SystemPtr system_;
  std::vector<ctrl::ControllerPtr> experts_;
  std::vector<la::Vec> weight_table_;
  SafetyRewardConfig reward_;
  double energy_coef_;
  la::Vec true_state_;
};

class SwitchingEnv final : public rl::Env {
 public:
  SwitchingEnv(sys::SystemPtr system, std::vector<ctrl::ControllerPtr> experts,
               SafetyRewardConfig reward);

  [[nodiscard]] std::size_t state_dim() const override;
  /// Number of experts (discrete choices).
  [[nodiscard]] std::size_t action_dim() const override;
  [[nodiscard]] int max_episode_steps() const override;

 protected:
  la::Vec do_reset(util::Rng& rng) override;
  /// `action` holds the selected expert index in action[0].
  [[nodiscard]] rl::StepResult do_step(const la::Vec& action,
                                       util::Rng& rng) override;
  [[nodiscard]] std::unique_ptr<rl::Env> do_clone() const override;

 private:
  sys::SystemPtr system_;
  std::vector<ctrl::ControllerPtr> experts_;
  SafetyRewardConfig reward_;
  double energy_coef_;
  la::Vec true_state_;
};

/// Default h-coefficient: 1 / (2 · max attainable ||u||₁).
[[nodiscard]] double default_energy_coef(const sys::System& system);

/// Observed state = true state + uniform noise within `bound` (no-op for an
/// empty bound).
[[nodiscard]] la::Vec observe(const la::Vec& true_state, const la::Vec& bound,
                              util::Rng& rng);

}  // namespace cocktail::core
