// End-to-end Cocktail pipeline (paper Fig. 1 / Algorithm 1):
//
//   experts κ1, κ2  →  adaptive mixing AW  →  robust distillation κ*
//                   →  switching baseline AS   (for comparison)
//                   →  direct distillation κD  (for comparison)
//
// Every trained artifact is cached under COCKTAIL_MODEL_DIR keyed by system
// and seed, so the bench suite trains each network exactly once.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/distiller.h"
#include "core/mixing.h"

namespace cocktail::core {

struct PipelineConfig {
  std::uint64_t seed = 2024;
  MixingConfig mixing;
  SwitchingConfig switching;
  DistillConfig distill;
  bool use_cache = true;
  /// Pipeline-wide worker knob (util::WorkerScope convention: 1 = serial,
  /// k > 1 = dedicated pool).  When nonzero, run_pipeline applies it to
  /// every training stage — expert DDPG, PPO mixing/switching updates,
  /// distillation, and checkpoint evaluations — overriding the per-stage
  /// num_workers fields.  0 (the default, also the per-stage default =
  /// shared pool) leaves the per-stage fields untouched.  Artifacts are
  /// bitwise identical for any value.
  int num_workers = 0;
  /// Pipeline-wide env-shard knob: when > 0, run_pipeline applies it to
  /// every stage that collects experience — PPO mixing/switching collection
  /// and the experts' DDPG warmup exploration — overriding the per-stage
  /// num_env_shards fields (0, the default, leaves them untouched).  Like
  /// num_workers, artifacts are bitwise identical for any value: collection
  /// decomposes into per-episode RNG slots independent of the shard count.
  int num_env_shards = 0;
};

/// Baseline set of Table I for one system.
struct PipelineArtifacts {
  sys::SystemPtr system;
  std::vector<ctrl::ControllerPtr> experts;                 ///< κ1, κ2.
  ctrl::ControllerPtr switching;                            ///< AS.
  std::shared_ptr<const ctrl::MixedController> mixed;       ///< AW.
  ctrl::ControllerPtr direct_student;                       ///< κD.
  ctrl::ControllerPtr robust_student;                       ///< κ*.

  /// (label, controller) pairs in the paper's column order.
  [[nodiscard]] std::vector<std::pair<std::string, ctrl::ControllerPtr>>
  table_row_controllers() const;
};

/// Tuned defaults per system (training lengths sized so a cold-cache bench
/// run stays within minutes on a laptop CPU).
[[nodiscard]] PipelineConfig default_pipeline_config(
    const std::string& system_name);

/// Runs (or loads from cache) the full pipeline for `system`.
[[nodiscard]] PipelineArtifacts run_pipeline(sys::SystemPtr system,
                                             const PipelineConfig& config);

}  // namespace cocktail::core
