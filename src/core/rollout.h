// Closed-loop simulation of plant + controller + perturbation (paper
// Eq. (2)): the trajectory generator behind every experimental metric.
//
// At each step the controller observes s + δ (δ from the perturbation
// model), its output is clipped to U (Eq. (4)'s feasibility projection,
// applied uniformly to every baseline), the plant receives the clipped u
// and an external disturbance ω sampled from Ω.
#pragma once

#include <cstdint>
#include <vector>

#include "attack/perturbation.h"
#include "control/controller.h"
#include "sys/system.h"
#include "util/rng.h"

namespace cocktail::util {
class ThreadPool;  // util/thread_pool.h; only held by pointer here.
}

namespace cocktail::core {

struct RolloutConfig {
  /// Steps to simulate; <= 0 means the system's horizon T.
  int horizon = 0;
  /// Record full state/control traces (Fig 2 needs them; metrics do not).
  bool record_trajectory = false;
};

struct RolloutResult {
  bool safe = true;          ///< every visited state stayed in X.
  int steps_taken = 0;
  double energy = 0.0;       ///< Σ_t ||u(t)||₁ (paper Eq. (3) summand).
  la::Vec final_state;
  std::vector<la::Vec> states;    ///< filled when record_trajectory.
  std::vector<la::Vec> controls;  ///< filled when record_trajectory.
};

/// Simulates from `initial_state`.  The perturbation model may be null
/// (treated as no perturbation).
[[nodiscard]] RolloutResult rollout(const sys::System& system,
                                    const ctrl::Controller& controller,
                                    const la::Vec& initial_state,
                                    const attack::PerturbationModel* perturbation,
                                    util::Rng& rng,
                                    const RolloutConfig& config = {});

// --- batched rollout engine -------------------------------------------------
//
// Every experimental metric reduces to "simulate N independent closed loops"
// over some (initial-state × RNG-seed × attack-config) grid; the batch API
// fans those across a worker pool.  Determinism is scheduling-independent by
// construction: each job owns a private RNG stream seeded from its `seed`
// field, so results are bitwise identical for any worker count, including
// the serial path.

/// One independent closed-loop simulation.
struct RolloutJob {
  la::Vec initial_state;
  /// Seed of the job's private disturbance/perturbation stream (pass it
  /// through util::derive_seed to decorrelate consecutive job indices).
  std::uint64_t seed = 0;
  /// Observation perturbation for this job; null = clean rollout.  The
  /// pointee must outlive the batch call and be safe for concurrent
  /// const use (all library models are stateless).
  const attack::PerturbationModel* perturbation = nullptr;
};

struct BatchRolloutConfig {
  /// Per-rollout simulation settings, shared by every job.
  RolloutConfig rollout;
  /// 0 = the shared process-wide pool; 1 = serial in the calling thread;
  /// k > 1 = a dedicated pool of k workers for this call.
  int num_workers = 0;
  /// Externally-owned pool; when set it overrides num_workers.  Lets
  /// callers with many small batches avoid per-call pool construction.
  util::ThreadPool* pool = nullptr;
};

/// Evaluates all jobs and returns results in job order.
[[nodiscard]] std::vector<RolloutResult> batch_rollout(
    const sys::System& system, const ctrl::Controller& controller,
    const std::vector<RolloutJob>& jobs, const BatchRolloutConfig& config = {});

/// Results of a fused paired batch: `a[k]` and `b[k]` are the rollouts of
/// job k under the respective controller.
struct PairedRolloutResults {
  std::vector<RolloutResult> a;
  std::vector<RolloutResult> b;
};

/// Runs the 2N rollouts of a paired comparison as ONE job stream instead of
/// two N-batches, so a small grid still saturates the pool.  Job k is
/// simulated once under `a` and once under `b`, each from a fresh
/// Rng(jobs[k].seed), so every result is bitwise identical to two separate
/// batch_rollout calls with the same jobs.
[[nodiscard]] PairedRolloutResults batch_rollout_paired(
    const sys::System& system, const ctrl::Controller& a,
    const ctrl::Controller& b, const std::vector<RolloutJob>& jobs,
    const BatchRolloutConfig& config = {});

/// The Monte-Carlo evaluation grid (core/metrics.h): `num_initial_states`
/// initial states sampled from stream derive_seed(seed, 1), trajectory k
/// simulated under stream derive_seed(seed, 1000 + k).  This is the exact
/// seeding scheme the serial evaluator has always used, so controllers keep
/// being compared on the identical state/disturbance sample.
[[nodiscard]] std::vector<RolloutJob> make_eval_jobs(
    const sys::System& system, int num_initial_states, std::uint64_t seed,
    const attack::PerturbationModel* perturbation = nullptr);

}  // namespace cocktail::core
