// Closed-loop simulation of plant + controller + perturbation (paper
// Eq. (2)): the trajectory generator behind every experimental metric.
//
// At each step the controller observes s + δ (δ from the perturbation
// model), its output is clipped to U (Eq. (4)'s feasibility projection,
// applied uniformly to every baseline), the plant receives the clipped u
// and an external disturbance ω sampled from Ω.
#pragma once

#include "attack/perturbation.h"
#include "control/controller.h"
#include "sys/system.h"
#include "util/rng.h"

namespace cocktail::core {

struct RolloutConfig {
  /// Steps to simulate; <= 0 means the system's horizon T.
  int horizon = 0;
  /// Record full state/control traces (Fig 2 needs them; metrics do not).
  bool record_trajectory = false;
};

struct RolloutResult {
  bool safe = true;          ///< every visited state stayed in X.
  int steps_taken = 0;
  double energy = 0.0;       ///< Σ_t ||u(t)||₁ (paper Eq. (3) summand).
  la::Vec final_state;
  std::vector<la::Vec> states;    ///< filled when record_trajectory.
  std::vector<la::Vec> controls;  ///< filled when record_trajectory.
};

/// Simulates from `initial_state`.  The perturbation model may be null
/// (treated as no perturbation).
[[nodiscard]] RolloutResult rollout(const sys::System& system,
                                    const ctrl::Controller& controller,
                                    const la::Vec& initial_state,
                                    const attack::PerturbationModel* perturbation,
                                    util::Rng& rng,
                                    const RolloutConfig& config = {});

}  // namespace cocktail::core
