#include "core/mixing.h"

#include <cmath>
#include <limits>

#include "core/metrics.h"
#include "util/logging.h"

namespace cocktail::core {
namespace {

/// Clean-rollout score of a candidate controller (Table-I metrics).
struct Score {
  double safe_rate = -1.0;
  double energy = std::numeric_limits<double>::infinity();

  [[nodiscard]] bool better_than(const Score& other, double tie) const {
    if (safe_rate > other.safe_rate + tie) return true;
    if (safe_rate < other.safe_rate - tie) return false;
    // energy is NaN when the candidate had no safe rollout (EvalResult
    // contract).  A NaN candidate can never win the tie-break — otherwise
    // an all-unsafe checkpoint would beat another zero-safe-rate candidate
    // that at least kept some trajectories safe at finite energy — and any
    // real energy beats NaN.
    if (std::isnan(energy)) return false;
    if (std::isnan(other.energy)) return true;
    return energy < other.energy;
  }
};

Score score_controller(const sys::System& system,
                       const ctrl::Controller& controller,
                       const SnapshotConfig& snapshot, int num_workers) {
  EvalConfig config;
  config.num_initial_states = snapshot.eval_states;
  config.seed = snapshot.eval_seed;
  config.num_workers = num_workers;
  const EvalResult result = evaluate(system, controller, config);
  return {result.safe_rate, result.mean_energy};
}

/// Splits `total` into `parts` chunk sizes (last chunk takes the
/// remainder).  `total <= 0` yields no chunks — a zero-length training run
/// must not produce a single empty chunk that scores an untrained net.
std::vector<int> chunk_sizes(int total, int parts) {
  if (total <= 0) return {};
  parts = std::max(1, std::min(parts, total));
  std::vector<int> sizes(parts, total / parts);
  sizes.back() += total % parts;
  return sizes;
}

/// The checkpoint-selection loop shared by every adaptation trainer:
/// trains in `chunk_sizes(total_units, ...)` chunks via `run_chunk`, wraps
/// the trainer's current policy net (`current_net`) in a candidate
/// controller (`make_candidate`), scores it on the snapshot grid, and
/// returns the best net (safe rate first, energy tie-break).  With zero
/// training units no chunk runs and the untrained current net is returned
/// unscored.
template <class RunChunk, class CurrentNet, class MakeCandidate>
nn::Mlp best_checkpoint_net(const sys::System& system, const char* label,
                            int total_units, const SnapshotConfig& snapshot,
                            int num_workers, RunChunk&& run_chunk,
                            CurrentNet&& current_net,
                            MakeCandidate&& make_candidate) {
  nn::Mlp best_net = current_net();
  Score best;
  for (const int chunk : chunk_sizes(total_units, snapshot.checkpoints)) {
    run_chunk(chunk);
    const auto candidate = make_candidate(current_net());
    const Score score =
        score_controller(system, candidate, snapshot, num_workers);
    COCKTAIL_DEBUG << label << " checkpoint: Sr " << score.safe_rate << " e "
                   << score.energy;
    if (score.better_than(best, snapshot.sr_tie_tolerance)) {
      best = score;
      best_net = current_net();
    }
  }
  if (total_units <= 0) {
    COCKTAIL_INFO << label << " (" << system.name()
                  << "): no training units, keeping the initial policy";
  } else {
    COCKTAIL_INFO << label << " (" << system.name() << "): best Sr "
                  << best.safe_rate << ", e " << best.energy;
  }
  return best_net;
}

/// Appends one training chunk's PPO statistics to the accumulated result
/// stats (shared by all three PPO-based trainers).
void append_ppo_stats(rl::PpoStats& into, const rl::PpoStats& chunk) {
  into.iteration_mean_returns.insert(into.iteration_mean_returns.end(),
                                     chunk.iteration_mean_returns.begin(),
                                     chunk.iteration_mean_returns.end());
  into.iteration_kls.insert(into.iteration_kls.end(),
                            chunk.iteration_kls.begin(),
                            chunk.iteration_kls.end());
}

}  // namespace

MixingResult train_adaptive_mixing(sys::SystemPtr system,
                                   std::vector<ctrl::ControllerPtr> experts,
                                   const MixingConfig& config) {
  MixingEnv env(system, experts, config.weight_bound, config.reward);
  rl::PpoGaussian ppo(config.ppo);
  ppo.initialize(env);

  MixingResult result;
  nn::Mlp best_net = best_checkpoint_net(
      *system, "adaptive mixing", config.ppo.iterations, config.snapshot,
      config.ppo.num_workers,
      [&](int chunk) {
        append_ppo_stats(result.stats, ppo.run_iterations(env, chunk));
      },
      [&]() -> const nn::Mlp& { return ppo.policy().mean_net(); },
      [&](const nn::Mlp& net) {
        return ctrl::MixedController(experts, net, config.weight_bound,
                                     system->control_bounds(), "AW");
      });
  result.controller = std::make_shared<ctrl::MixedController>(
      std::move(experts), std::move(best_net), config.weight_bound,
      system->control_bounds(), "AW");
  return result;
}

SwitchingResult train_switching(sys::SystemPtr system,
                                std::vector<ctrl::ControllerPtr> experts,
                                const SwitchingConfig& config) {
  SwitchingEnv env(system, experts, config.reward);
  rl::PpoCategorical ppo(config.ppo);
  ppo.initialize(env);

  SwitchingResult result;
  nn::Mlp best_net = best_checkpoint_net(
      *system, "switching baseline", config.ppo.iterations, config.snapshot,
      config.ppo.num_workers,
      [&](int chunk) {
        append_ppo_stats(result.stats, ppo.run_iterations(env, chunk));
      },
      [&]() -> const nn::Mlp& { return ppo.policy().logits_net(); },
      [&](const nn::Mlp& net) {
        return ctrl::SwitchedController(experts, net, "AS");
      });
  result.controller = std::make_shared<ctrl::SwitchedController>(
      std::move(experts), std::move(best_net), "AS");
  return result;
}

FiniteWeightedResult train_finite_weighted(
    sys::SystemPtr system, std::vector<ctrl::ControllerPtr> experts,
    const FiniteWeightedConfig& config) {
  std::vector<la::Vec> table =
      ctrl::simplex_weight_table(experts.size(), config.resolution);
  FiniteWeightedEnv env(system, experts, table, config.reward);
  rl::PpoCategorical ppo(config.ppo);
  ppo.initialize(env);

  FiniteWeightedResult result;
  nn::Mlp best_net = best_checkpoint_net(
      *system, "finite-weighted baseline", config.ppo.iterations,
      config.snapshot, config.ppo.num_workers,
      [&](int chunk) {
        append_ppo_stats(result.stats, ppo.run_iterations(env, chunk));
      },
      [&]() -> const nn::Mlp& { return ppo.policy().logits_net(); },
      [&](const nn::Mlp& net) {
        return ctrl::FiniteWeightedController(
            experts, table, net, system->control_bounds(), "FW");
      });
  result.controller = std::make_shared<ctrl::FiniteWeightedController>(
      std::move(experts), std::move(table), std::move(best_net),
      system->control_bounds(), "FW");
  return result;
}

DdpgMixingResult train_adaptive_mixing_ddpg(
    sys::SystemPtr system, std::vector<ctrl::ControllerPtr> experts,
    const DdpgMixingConfig& config) {
  MixingEnv env(system, experts, config.weight_bound, config.reward);
  rl::Ddpg ddpg(config.ddpg);
  ddpg.initialize(env);

  DdpgMixingResult result;
  // The tanh DDPG actor is a drop-in weight net for the MixedController.
  nn::Mlp best_net = best_checkpoint_net(
      *system, "ddpg mixing", config.ddpg.episodes, config.snapshot,
      config.ddpg.num_workers,
      [&](int chunk) {
        const rl::DdpgStats stats = ddpg.run_episodes(env, chunk);
        result.stats.episode_returns.insert(result.stats.episode_returns.end(),
                                            stats.episode_returns.begin(),
                                            stats.episode_returns.end());
      },
      [&]() -> const nn::Mlp& { return ddpg.actor(); },
      [&](const nn::Mlp& net) {
        return ctrl::MixedController(experts, net, config.weight_bound,
                                     system->control_bounds(), "AW-ddpg");
      });
  result.controller = std::make_shared<ctrl::MixedController>(
      std::move(experts), std::move(best_net), config.weight_bound,
      system->control_bounds(), "AW-ddpg");
  return result;
}

}  // namespace cocktail::core
