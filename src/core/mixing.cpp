#include "core/mixing.h"

#include <cmath>
#include <limits>

#include "core/metrics.h"
#include "util/logging.h"

namespace cocktail::core {
namespace {

/// Clean-rollout score of a candidate controller (Table-I metrics).
struct Score {
  double safe_rate = -1.0;
  double energy = std::numeric_limits<double>::infinity();

  [[nodiscard]] bool better_than(const Score& other, double tie) const {
    if (safe_rate > other.safe_rate + tie) return true;
    if (safe_rate < other.safe_rate - tie) return false;
    return energy < other.energy;
  }
};

Score score_controller(const sys::System& system,
                       const ctrl::Controller& controller,
                       const SnapshotConfig& snapshot) {
  EvalConfig config;
  config.num_initial_states = snapshot.eval_states;
  config.seed = snapshot.eval_seed;
  const EvalResult result = evaluate(system, controller, config);
  return {result.safe_rate, result.mean_energy};
}

/// Splits `total` into `parts` chunk sizes (last chunk takes the remainder).
std::vector<int> chunk_sizes(int total, int parts) {
  parts = std::max(1, std::min(parts, total));
  std::vector<int> sizes(parts, total / parts);
  sizes.back() += total % parts;
  return sizes;
}

}  // namespace

MixingResult train_adaptive_mixing(sys::SystemPtr system,
                                   std::vector<ctrl::ControllerPtr> experts,
                                   const MixingConfig& config) {
  MixingEnv env(system, experts, config.weight_bound, config.reward);
  rl::PpoGaussian ppo(config.ppo);
  ppo.initialize(env);

  MixingResult result;
  nn::Mlp best_net;
  Score best;
  for (const int chunk : chunk_sizes(config.ppo.iterations,
                                     config.snapshot.checkpoints)) {
    const rl::PpoStats stats = ppo.run_iterations(env, chunk);
    result.stats.iteration_mean_returns.insert(
        result.stats.iteration_mean_returns.end(),
        stats.iteration_mean_returns.begin(),
        stats.iteration_mean_returns.end());
    result.stats.iteration_kls.insert(result.stats.iteration_kls.end(),
                                      stats.iteration_kls.begin(),
                                      stats.iteration_kls.end());
    const ctrl::MixedController candidate(
        experts, ppo.policy().mean_net(), config.weight_bound,
        system->control_bounds(), "AW");
    const Score score = score_controller(*system, candidate, config.snapshot);
    COCKTAIL_DEBUG << "mixing checkpoint: Sr " << score.safe_rate << " e "
                   << score.energy;
    if (score.better_than(best, config.snapshot.sr_tie_tolerance)) {
      best = score;
      best_net = ppo.policy().mean_net();
    }
  }
  COCKTAIL_INFO << "adaptive mixing (" << system->name() << "): best Sr "
                << best.safe_rate << ", e " << best.energy;
  result.controller = std::make_shared<ctrl::MixedController>(
      std::move(experts), std::move(best_net), config.weight_bound,
      system->control_bounds(), "AW");
  return result;
}

SwitchingResult train_switching(sys::SystemPtr system,
                                std::vector<ctrl::ControllerPtr> experts,
                                const SwitchingConfig& config) {
  SwitchingEnv env(system, experts, config.reward);
  rl::PpoCategorical ppo(config.ppo);
  ppo.initialize(env);

  SwitchingResult result;
  nn::Mlp best_net;
  Score best;
  for (const int chunk : chunk_sizes(config.ppo.iterations,
                                     config.snapshot.checkpoints)) {
    const rl::PpoStats stats = ppo.run_iterations(env, chunk);
    result.stats.iteration_mean_returns.insert(
        result.stats.iteration_mean_returns.end(),
        stats.iteration_mean_returns.begin(),
        stats.iteration_mean_returns.end());
    result.stats.iteration_kls.insert(result.stats.iteration_kls.end(),
                                      stats.iteration_kls.begin(),
                                      stats.iteration_kls.end());
    const ctrl::SwitchedController candidate(experts,
                                             ppo.policy().logits_net(), "AS");
    const Score score = score_controller(*system, candidate, config.snapshot);
    if (score.better_than(best, config.snapshot.sr_tie_tolerance)) {
      best = score;
      best_net = ppo.policy().logits_net();
    }
  }
  COCKTAIL_INFO << "switching baseline (" << system->name() << "): best Sr "
                << best.safe_rate << ", e " << best.energy;
  result.controller = std::make_shared<ctrl::SwitchedController>(
      std::move(experts), std::move(best_net), "AS");
  return result;
}

FiniteWeightedResult train_finite_weighted(
    sys::SystemPtr system, std::vector<ctrl::ControllerPtr> experts,
    const FiniteWeightedConfig& config) {
  std::vector<la::Vec> table =
      ctrl::simplex_weight_table(experts.size(), config.resolution);
  FiniteWeightedEnv env(system, experts, table, config.reward);
  rl::PpoCategorical ppo(config.ppo);
  ppo.initialize(env);

  FiniteWeightedResult result;
  nn::Mlp best_net;
  Score best;
  for (const int chunk : chunk_sizes(config.ppo.iterations,
                                     config.snapshot.checkpoints)) {
    const rl::PpoStats stats = ppo.run_iterations(env, chunk);
    result.stats.iteration_mean_returns.insert(
        result.stats.iteration_mean_returns.end(),
        stats.iteration_mean_returns.begin(),
        stats.iteration_mean_returns.end());
    result.stats.iteration_kls.insert(result.stats.iteration_kls.end(),
                                      stats.iteration_kls.begin(),
                                      stats.iteration_kls.end());
    const ctrl::FiniteWeightedController candidate(
        experts, table, ppo.policy().logits_net(), system->control_bounds(),
        "FW");
    const Score score = score_controller(*system, candidate, config.snapshot);
    if (score.better_than(best, config.snapshot.sr_tie_tolerance)) {
      best = score;
      best_net = ppo.policy().logits_net();
    }
  }
  COCKTAIL_INFO << "finite-weighted baseline (" << system->name()
                << "): best Sr " << best.safe_rate << ", e " << best.energy;
  result.controller = std::make_shared<ctrl::FiniteWeightedController>(
      std::move(experts), std::move(table), std::move(best_net),
      system->control_bounds(), "FW");
  return result;
}

DdpgMixingResult train_adaptive_mixing_ddpg(
    sys::SystemPtr system, std::vector<ctrl::ControllerPtr> experts,
    const DdpgMixingConfig& config) {
  MixingEnv env(system, experts, config.weight_bound, config.reward);
  rl::Ddpg ddpg(config.ddpg);
  ddpg.initialize(env);

  DdpgMixingResult result;
  nn::Mlp best_net;
  Score best;
  for (const int chunk : chunk_sizes(config.ddpg.episodes,
                                     config.snapshot.checkpoints)) {
    const rl::DdpgStats stats = ddpg.run_episodes(env, chunk);
    result.stats.episode_returns.insert(result.stats.episode_returns.end(),
                                        stats.episode_returns.begin(),
                                        stats.episode_returns.end());
    // The tanh DDPG actor is a drop-in weight net for the MixedController.
    const ctrl::MixedController candidate(experts, ddpg.actor(),
                                          config.weight_bound,
                                          system->control_bounds(), "AW-ddpg");
    const Score score = score_controller(*system, candidate, config.snapshot);
    if (score.better_than(best, config.snapshot.sr_tie_tolerance)) {
      best = score;
      best_net = ddpg.actor();
    }
  }
  COCKTAIL_INFO << "ddpg mixing (" << system->name() << "): best Sr "
                << best.safe_rate << ", e " << best.energy;
  result.controller = std::make_shared<ctrl::MixedController>(
      std::move(experts), std::move(best_net), config.weight_bound,
      system->control_bounds(), "AW-ddpg");
  return result;
}

}  // namespace cocktail::core
