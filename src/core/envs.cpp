#include "core/envs.h"

#include <cmath>
#include <memory>
#include <stdexcept>

namespace cocktail::core {

double default_energy_coef(const sys::System& system) {
  const sys::Box u = system.control_bounds();
  double max_l1 = 0.0;
  for (std::size_t i = 0; i < u.dim(); ++i)
    max_l1 += std::max(std::abs(u.lo[i]), std::abs(u.hi[i]));
  return max_l1 > 0.0 ? 1.0 / (2.0 * max_l1) : 0.0;
}

double safety_shaped_reward(const sys::System& system,
                            const la::Vec& next_state, const la::Vec& control,
                            const SafetyRewardConfig& config,
                            double energy_coef, bool& violated) {
  violated = !system.is_safe(next_state);
  if (violated) return config.unsafe_punishment;
  double reward = 1.0 - energy_coef * la::norm_l1(control);
  if (config.boundary_margin > 0.0 && config.margin_penalty > 0.0) {
    // Relative distance to the closest finite boundary of X, in [0, 1].
    const sys::Box x = system.safe_region();
    double rel = 0.0;
    for (std::size_t i = 0; i < next_state.size(); ++i) {
      if (!std::isfinite(x.lo[i]) || !std::isfinite(x.hi[i])) continue;
      const double half = 0.5 * (x.hi[i] - x.lo[i]);
      const double mid = 0.5 * (x.hi[i] + x.lo[i]);
      if (half > 0.0)
        rel = std::max(rel, std::abs(next_state[i] - mid) / half);
    }
    const double onset = 1.0 - config.boundary_margin;
    if (rel > onset)
      reward -= config.margin_penalty * (rel - onset) / config.boundary_margin;
  }
  return reward;
}

la::Vec observe(const la::Vec& true_state, const la::Vec& bound,
                util::Rng& rng) {
  if (bound.empty()) return true_state;
  if (bound.size() != true_state.size())
    throw std::invalid_argument("observe: noise bound dimension mismatch");
  la::Vec obs = true_state;
  for (std::size_t i = 0; i < obs.size(); ++i)
    obs[i] += rng.uniform(-bound[i], bound[i]);
  return obs;
}

// ---------------------------------------------------------------------------
// ExpertTrainingEnv
// ---------------------------------------------------------------------------

ExpertTrainingEnv::ExpertTrainingEnv(sys::SystemPtr system, Config config)
    : system_(std::move(system)), config_(std::move(config)) {
  if (!system_) throw std::invalid_argument("ExpertTrainingEnv: null system");
  state_norm_ = system_->sampling_region().half_widths();
  for (auto& v : state_norm_)
    if (v <= 0.0) v = 1.0;
  if (config_.state_weights.empty())
    config_.state_weights = la::constant(system_->state_dim(), 1.0);
  if (config_.state_weights.size() != system_->state_dim())
    throw std::invalid_argument("ExpertTrainingEnv: state_weights dim");
}

std::size_t ExpertTrainingEnv::state_dim() const {
  return system_->state_dim();
}

std::size_t ExpertTrainingEnv::action_dim() const {
  return system_->control_dim();
}

int ExpertTrainingEnv::max_episode_steps() const { return system_->horizon(); }

std::unique_ptr<rl::Env> ExpertTrainingEnv::do_clone() const {
  // Copy construction: private episode state, shared (const-used) system.
  return std::make_unique<ExpertTrainingEnv>(*this);
}

la::Vec ExpertTrainingEnv::do_reset(util::Rng& rng) {
  true_state_ = system_->sample_initial_state(rng);
  return observe(true_state_, config_.observation_noise, rng);
}

rl::StepResult ExpertTrainingEnv::do_step(const la::Vec& action, util::Rng& rng) {
  // Action in [-1,1]^m -> control input in action_scale * U.
  const sys::Box bounds = system_->control_bounds();
  la::Vec u(action.size());
  for (std::size_t i = 0; i < u.size(); ++i) {
    const double half = 0.5 * (bounds.hi[i] - bounds.lo[i]);
    const double mid = 0.5 * (bounds.hi[i] + bounds.lo[i]);
    u[i] = mid + config_.action_scale * half * action[i];
  }
  u = system_->clip_control(u);
  const la::Vec omega = system_->sample_disturbance(rng);
  true_state_ = system_->step(true_state_, u, omega);

  rl::StepResult result;
  result.next_state = observe(true_state_, config_.observation_noise, rng);
  if (!system_->is_safe(true_state_)) {
    result.reward = config_.unsafe_punishment;
    result.terminal = true;
    return result;
  }
  double cost = 0.0;
  for (std::size_t i = 0; i < true_state_.size(); ++i) {
    const double z = true_state_[i] / state_norm_[i];
    cost += config_.state_weights[i] * z * z;
  }
  double u_cost = 0.0;
  for (std::size_t i = 0; i < u.size(); ++i) {
    const double half = 0.5 * (bounds.hi[i] - bounds.lo[i]);
    const double zu = half > 0.0 ? u[i] / half : u[i];
    u_cost += zu * zu;
  }
  result.reward = 1.0 - cost - config_.control_weight * u_cost;
  return result;
}

// ---------------------------------------------------------------------------
// MixingEnv
// ---------------------------------------------------------------------------

MixingEnv::MixingEnv(sys::SystemPtr system,
                     std::vector<ctrl::ControllerPtr> experts,
                     double weight_bound, SafetyRewardConfig reward)
    : system_(std::move(system)), experts_(std::move(experts)),
      weight_bound_(weight_bound), reward_(std::move(reward)) {
  if (!system_) throw std::invalid_argument("MixingEnv: null system");
  if (experts_.empty()) throw std::invalid_argument("MixingEnv: no experts");
  if (weight_bound_ < 1.0)
    throw std::invalid_argument("MixingEnv: the paper requires AB >= 1");
  energy_coef_ = reward_.energy_coef > 0.0 ? reward_.energy_coef
                                           : default_energy_coef(*system_);
}

std::size_t MixingEnv::state_dim() const { return system_->state_dim(); }

std::size_t MixingEnv::action_dim() const { return experts_.size(); }

int MixingEnv::max_episode_steps() const { return system_->horizon(); }

std::unique_ptr<rl::Env> MixingEnv::do_clone() const {
  // Copy construction: private episode state; system and experts are shared
  // by reference (const-used, concurrent-step safe per batch_rollout).
  return std::make_unique<MixingEnv>(*this);
}

la::Vec MixingEnv::do_reset(util::Rng& rng) {
  true_state_ = system_->sample_initial_state(rng);
  return observe(true_state_, reward_.observation_noise, rng);
}

rl::StepResult MixingEnv::do_step(const la::Vec& action, util::Rng& rng) {
  if (action.size() != experts_.size())
    throw std::invalid_argument("MixingEnv::step: bad action dimension");
  // The controllers read the same (possibly noisy) observation the policy
  // saw; the plant evolves from the true state.
  const la::Vec obs = observe(true_state_, reward_.observation_noise, rng);
  la::Vec u = la::zeros(system_->control_dim());
  for (std::size_t i = 0; i < experts_.size(); ++i)
    la::axpy(u, weight_bound_ * action[i], experts_[i]->act(obs));
  u = system_->clip_control(u);  // Eq. (4) feasibility clip.
  const la::Vec omega = system_->sample_disturbance(rng);
  true_state_ = system_->step(true_state_, u, omega);

  rl::StepResult result;
  result.next_state = observe(true_state_, reward_.observation_noise, rng);
  bool violated = false;
  result.reward = safety_shaped_reward(*system_, true_state_, u, reward_,
                                       energy_coef_, violated);
  result.terminal = violated;
  return result;
}

// ---------------------------------------------------------------------------
// FiniteWeightedEnv
// ---------------------------------------------------------------------------

FiniteWeightedEnv::FiniteWeightedEnv(sys::SystemPtr system,
                                     std::vector<ctrl::ControllerPtr> experts,
                                     std::vector<la::Vec> weight_table,
                                     SafetyRewardConfig reward)
    : system_(std::move(system)), experts_(std::move(experts)),
      weight_table_(std::move(weight_table)), reward_(std::move(reward)) {
  if (!system_) throw std::invalid_argument("FiniteWeightedEnv: null system");
  if (experts_.empty())
    throw std::invalid_argument("FiniteWeightedEnv: no experts");
  if (weight_table_.empty())
    throw std::invalid_argument("FiniteWeightedEnv: empty weight table");
  for (const auto& w : weight_table_)
    if (w.size() != experts_.size())
      throw std::invalid_argument("FiniteWeightedEnv: table arity mismatch");
  energy_coef_ = reward_.energy_coef > 0.0 ? reward_.energy_coef
                                           : default_energy_coef(*system_);
}

std::size_t FiniteWeightedEnv::state_dim() const {
  return system_->state_dim();
}

std::size_t FiniteWeightedEnv::action_dim() const {
  return weight_table_.size();
}

int FiniteWeightedEnv::max_episode_steps() const { return system_->horizon(); }

std::unique_ptr<rl::Env> FiniteWeightedEnv::do_clone() const {
  return std::make_unique<FiniteWeightedEnv>(*this);
}

la::Vec FiniteWeightedEnv::do_reset(util::Rng& rng) {
  true_state_ = system_->sample_initial_state(rng);
  return observe(true_state_, reward_.observation_noise, rng);
}

rl::StepResult FiniteWeightedEnv::do_step(const la::Vec& action, util::Rng& rng) {
  if (action.empty())
    throw std::invalid_argument("FiniteWeightedEnv::step: empty action");
  const auto index = static_cast<std::size_t>(action[0]);
  if (index >= weight_table_.size())
    throw std::invalid_argument("FiniteWeightedEnv::step: index out of range");
  const la::Vec obs = observe(true_state_, reward_.observation_noise, rng);
  la::Vec u = la::zeros(system_->control_dim());
  for (std::size_t i = 0; i < experts_.size(); ++i)
    la::axpy(u, weight_table_[index][i], experts_[i]->act(obs));
  u = system_->clip_control(u);
  const la::Vec omega = system_->sample_disturbance(rng);
  true_state_ = system_->step(true_state_, u, omega);

  rl::StepResult result;
  result.next_state = observe(true_state_, reward_.observation_noise, rng);
  bool violated = false;
  result.reward = safety_shaped_reward(*system_, true_state_, u, reward_,
                                       energy_coef_, violated);
  result.terminal = violated;
  return result;
}

// ---------------------------------------------------------------------------
// SwitchingEnv
// ---------------------------------------------------------------------------

SwitchingEnv::SwitchingEnv(sys::SystemPtr system,
                           std::vector<ctrl::ControllerPtr> experts,
                           SafetyRewardConfig reward)
    : system_(std::move(system)), experts_(std::move(experts)),
      reward_(std::move(reward)) {
  if (!system_) throw std::invalid_argument("SwitchingEnv: null system");
  if (experts_.empty()) throw std::invalid_argument("SwitchingEnv: no experts");
  energy_coef_ = reward_.energy_coef > 0.0 ? reward_.energy_coef
                                           : default_energy_coef(*system_);
}

std::size_t SwitchingEnv::state_dim() const { return system_->state_dim(); }

std::size_t SwitchingEnv::action_dim() const { return experts_.size(); }

int SwitchingEnv::max_episode_steps() const { return system_->horizon(); }

std::unique_ptr<rl::Env> SwitchingEnv::do_clone() const {
  return std::make_unique<SwitchingEnv>(*this);
}

la::Vec SwitchingEnv::do_reset(util::Rng& rng) {
  true_state_ = system_->sample_initial_state(rng);
  return observe(true_state_, reward_.observation_noise, rng);
}

rl::StepResult SwitchingEnv::do_step(const la::Vec& action, util::Rng& rng) {
  if (action.empty())
    throw std::invalid_argument("SwitchingEnv::step: empty action");
  const auto index = static_cast<std::size_t>(action[0]);
  if (index >= experts_.size())
    throw std::invalid_argument("SwitchingEnv::step: expert index out of range");
  const la::Vec obs = observe(true_state_, reward_.observation_noise, rng);
  const la::Vec u = system_->clip_control(experts_[index]->act(obs));
  const la::Vec omega = system_->sample_disturbance(rng);
  true_state_ = system_->step(true_state_, u, omega);

  rl::StepResult result;
  result.next_state = observe(true_state_, reward_.observation_noise, rng);
  bool violated = false;
  result.reward = safety_shaped_reward(*system_, true_state_, u, reward_,
                                       energy_coef_, violated);
  result.terminal = violated;
  return result;
}

}  // namespace cocktail::core
