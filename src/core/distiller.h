// Step 2 of Cocktail: teacher-student robust distillation (paper
// Section III-B, Algorithm 1 lines 11-15).
//
// A student MLP κ*(·; q) is regressed onto the mixed teacher with the
// hybrid probabilistic scheme: per minibatch, draw z ~ U[0,1]; with
// probability p replace the inputs by FGSM adversarial examples
//     δ = Δ · sign(∇_s ℓ(κ*(s; q), u))
// (the inner max of the min-max problem), and always add the L2
// regularizer λ‖q‖², which shrinks the student's Lipschitz constant:
//     min_q  ℓ(κ*(s+δ; q), u) + λ‖q‖².
// Direct distillation (the κD baseline) is the p = 0, λ = 0 special case.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "control/controller.h"
#include "control/nn_controller.h"
#include "nn/activation.h"
#include "sys/system.h"

namespace cocktail::core {

struct DistillConfig {
  // --- dataset ---
  int teacher_rollouts = 50;       ///< on-policy teacher trajectories from X0.
  int uniform_samples = 4000;      ///< uniform draws over the sampling region.
  // --- student architecture ---
  std::vector<std::size_t> student_hidden = {32, 32};
  nn::Activation hidden_activation = nn::Activation::kTanh;
  // --- optimization ---
  int epochs = 150;                ///< N - NE in Algorithm 1.
  std::size_t minibatch = 64;
  double learning_rate = 1e-3;
  // --- robustness (Algorithm 1 lines 12-14) ---
  double adversarial_prob = 0.5;   ///< p.
  double lambda_l2 = 3e-4;         ///< λ.
  double delta_fraction = 0.10;    ///< Δ as a fraction of the state bound.
  /// Optional hard Lipschitz control in the style of Pauli et al. [19]
  /// (cited by the paper): after each optimizer step, every layer whose
  /// spectral norm exceeds this cap is rescaled onto it, so the certified
  /// product bound is at most cap^depth.  <= 0 disables the projection
  /// (the paper's Algorithm 1 uses only λ‖q‖²; this is an extension knob
  /// studied by bench_ablation_projection).
  double spectral_norm_cap = 0.0;
  std::uint64_t seed = 3;
  /// Worker count for the parallel dataset build and minibatch SGD
  /// (the BatchRolloutConfig convention: 0 = shared pool, 1 = serial).
  /// Results are bitwise identical for any value — teacher rollouts own
  /// per-rollout derived RNG streams and gradient/loss accumulation uses
  /// the fixed-order chunked reduction (util::chunked_reduce).
  int num_workers = 0;

  /// The κD baseline: same dataset/architecture, no adversarial training,
  /// no regularization.
  [[nodiscard]] DistillConfig direct() const {
    DistillConfig out = *this;
    out.adversarial_prob = 0.0;
    out.lambda_l2 = 0.0;
    return out;
  }
};

struct DistillResult {
  std::shared_ptr<const ctrl::NnController> student;
  double final_loss = 0.0;      ///< mean MSE on the clean dataset.
  std::size_t dataset_size = 0;
  double lipschitz = 0.0;       ///< certified bound of the student.
};

/// Distillation dataset: pairs (s, u = teacher(s)).
struct DistillDataset {
  std::vector<la::Vec> states;
  std::vector<la::Vec> controls;
  [[nodiscard]] std::size_t size() const { return states.size(); }
};

/// Builds the dataset from teacher rollouts (the states the closed loop
/// actually visits) plus uniform samples of the sampling region (coverage
/// of off-trajectory states, needed for verification over all of X).
[[nodiscard]] DistillDataset build_distill_dataset(
    const sys::System& system, const ctrl::Controller& teacher,
    const DistillConfig& config);

/// Runs the distillation of Algorithm 1 and returns the student κ* (or κD
/// when config has p = 0, λ = 0).
[[nodiscard]] DistillResult distill(const sys::System& system,
                                    const ctrl::Controller& teacher,
                                    const DistillConfig& config,
                                    const std::string& label = "kstar");

}  // namespace cocktail::core
