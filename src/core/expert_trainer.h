// Expert construction (paper Section IV, "Test Systems"):
//
//   "Each system has two available control experts κ1 and κ2, obtained by
//    DDPG with different hyper-parameters, or in the case of the 3D system,
//    DDPG and a model-based controller from [25]."
//
// κ1/κ2 are DDPG actors trained with deliberately different network sizes,
// exploration schedules, cost weights, and action scales; the 3D system's
// κ2 is a degree-1 polynomial controller synthesized by LQR (the published
// coefficients are unavailable — DESIGN.md §2).  Experts are cached on disk
// so benches sharing a system never retrain them.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "control/controller.h"
#include "core/envs.h"
#include "rl/ddpg.h"
#include "sys/system.h"

namespace cocktail::core {

struct ExpertSpec {
  std::string label = "k1";
  rl::DdpgConfig ddpg;
  ExpertTrainingEnv::Config env;
  /// Training stops once the evaluated safe control rate reaches this
  /// target (the paper's experts are *imperfect*: 79%-91% depending on the
  /// system — an expert trained to saturation would leave the adaptive
  /// mixing nothing to improve).  The best snapshot seen is returned even
  /// if the target is never reached within ddpg.episodes.
  double target_safe_rate = 0.85;
  /// Snapshot/evaluation cadence.  Kept short: DDPG can jump from poor to
  /// near-perfect within a few tens of episodes, and a coarse cadence
  /// overshoots the band.
  int eval_every_episodes = 10;
  int eval_states = 200;  ///< rollouts per evaluation.
  std::uint64_t eval_seed = 77177;
};

/// Trains one DDPG expert from scratch (no cache).
[[nodiscard]] ctrl::ControllerPtr train_ddpg_expert(sys::SystemPtr system,
                                                    const ExpertSpec& spec);

/// The paper's model-based expert for the 3D system: linear (degree-1
/// polynomial) state feedback from LQR on the triple-integrator
/// linearization, mildly weighted so its Lipschitz constant stays small.
[[nodiscard]] ctrl::ControllerPtr make_threed_polynomial_expert(
    const sys::System& system);

/// Per-system default specs for κ1 and κ2 (κ2 of the 3D system is the
/// polynomial controller and carries no DDPG spec).
[[nodiscard]] std::vector<ExpertSpec> default_expert_specs(
    const std::string& system_name, std::uint64_t seed);

/// Returns the system's two experts, loading from the model cache when
/// possible and training + saving otherwise.  `cache_tag` keys the files.
/// `num_workers` is the DdpgConfig worker knob applied to every spec;
/// `num_env_shards` > 0 overrides every spec's warmup env-shard count
/// (0 keeps the spec default).  Experts are bitwise identical for any
/// worker or shard count.
[[nodiscard]] std::vector<ctrl::ControllerPtr> load_or_train_experts(
    sys::SystemPtr system, std::uint64_t seed, bool use_cache = true,
    int num_workers = 0, int num_env_shards = 0);

}  // namespace cocktail::core
