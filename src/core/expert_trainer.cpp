#include "core/expert_trainer.h"

#include <cmath>
#include <stdexcept>

#include "control/lqr_controller.h"
#include "control/nn_controller.h"
#include "control/polynomial_controller.h"
#include "core/metrics.h"
#include "util/logging.h"
#include "util/paths.h"
#include "util/string_util.h"

namespace cocktail::core {
namespace {

/// Cache file for a trained expert (versioned via util::model_cache_path so
/// RNG-stream changes invalidate stale experts automatically).
std::string expert_cache_path(const std::string& system_name,
                              const std::string& label, std::uint64_t seed) {
  return util::model_cache_path(system_name, label, seed, "nnctl");
}

}  // namespace

ctrl::ControllerPtr train_ddpg_expert(sys::SystemPtr system,
                                      const ExpertSpec& spec) {
  ExpertTrainingEnv env(system, spec.env);
  rl::Ddpg ddpg(spec.ddpg);
  ddpg.initialize(env);

  // The tanh actor emits [-1,1]^m; scale to the expert's control authority.
  const sys::Box bounds = system->control_bounds();
  la::Vec out_scale(system->control_dim());
  for (std::size_t i = 0; i < out_scale.size(); ++i)
    out_scale[i] = spec.env.action_scale * 0.5 * (bounds.hi[i] - bounds.lo[i]);

  EvalConfig eval;
  eval.num_initial_states = spec.eval_states;
  eval.seed = spec.eval_seed;
  eval.num_workers = spec.ddpg.num_workers;

  // Train in chunks and keep the snapshot whose safe rate is *closest to
  // the target* — DDPG learning curves jump discontinuously (an expert can
  // leap from 70% to 97% within a few episodes), so "first above target"
  // systematically overshoots the imperfect-expert band the paper's
  // experiments rely on.  Stop once a snapshot lands within 2% of target.
  nn::Mlp best_actor;
  double best_distance = 1e9;
  double best_sr = -1.0;
  double best_energy = 0.0;
  int episodes_done = 0;
  while (episodes_done < spec.ddpg.episodes) {
    const int chunk = std::min(spec.eval_every_episodes,
                               spec.ddpg.episodes - episodes_done);
    (void)ddpg.run_episodes(env, chunk);
    episodes_done += chunk;
    const ctrl::NnController candidate(ddpg.actor(), out_scale, spec.label);
    const EvalResult result = core::evaluate(*system, candidate, eval);
    const double distance =
        std::abs(result.safe_rate - spec.target_safe_rate);
    // mean_energy is NaN when the snapshot kept nothing safe (EvalResult
    // contract): such a snapshot never wins the energy tie-break, and any
    // real energy displaces a NaN incumbent.
    const bool energy_better =
        !std::isnan(result.mean_energy) &&
        (std::isnan(best_energy) || result.mean_energy < best_energy);
    const bool better =
        distance < best_distance - 1e-9 ||
        (distance < best_distance + 1e-9 && energy_better);
    if (better) {
      best_distance = distance;
      best_sr = result.safe_rate;
      best_energy = result.mean_energy;
      best_actor = ddpg.actor();
    }
    COCKTAIL_DEBUG << "expert " << spec.label << " @" << episodes_done
                   << " episodes: Sr " << result.safe_rate;
    if (best_distance <= 0.02) break;
  }
  COCKTAIL_INFO << "expert " << spec.label << " on " << system->name()
                << ": Sr " << best_sr << " after " << episodes_done
                << " episodes (target " << spec.target_safe_rate << ")";
  return std::make_shared<ctrl::NnController>(std::move(best_actor),
                                              out_scale, spec.label);
}

ctrl::ControllerPtr make_threed_polynomial_expert(const sys::System& system) {
  // Moderate control weight keeps the gain (and thus the expert's Lipschitz
  // constant) small, matching the very small L the paper reports for the
  // model-based expert of the 3D system.
  const ctrl::LqrController lqr =
      ctrl::LqrController::synthesize(system, /*state_weight=*/1.0,
                                      /*control_weight=*/8.0, "k2");
  return std::make_shared<ctrl::PolynomialController>(
      ctrl::PolynomialController::linear_feedback(lqr.gain(), "k2"));
}

std::vector<ExpertSpec> default_expert_specs(const std::string& system_name,
                                             std::uint64_t seed) {
  std::vector<ExpertSpec> specs;
  // Target safe rates follow the paper's Table I expert quality (κ1/κ2:
  // 85/79.4 oscillator, 91/88.6 3D, 81.6/84 cartpole), adjusted where our
  // stricter Monte-Carlo setup caps the attainable rate (3D corners are
  // uncontrollable from parts of X0 under Euler discretization).
  if (system_name == "vanderpol") {
    ExpertSpec k1;
    k1.label = "k1";
    // Heavy exploration noise and a conservative learning rate flatten the
    // DDPG learning curve so snapshots actually pass through the paper's
    // imperfect-expert band (Sr ≈ 85%) instead of leaping over it.
    k1.ddpg.actor_hidden = {32, 32};
    k1.ddpg.critic_hidden = {64, 64};
    k1.ddpg.episodes = 150;
    k1.ddpg.ou_sigma = 0.45;
    k1.ddpg.actor_lr = 5e-4;
    k1.ddpg.seed = util::derive_seed(seed, 11);
    k1.env.action_scale = 1.0;
    k1.env.control_weight = 0.002;  // aggressive: cheap control.
    k1.target_safe_rate = 0.85;
    k1.eval_every_episodes = 5;
    specs.push_back(k1);

    ExpertSpec k2;
    k2.label = "k2";
    k2.ddpg.actor_hidden = {24, 24};
    k2.ddpg.critic_hidden = {48, 48};
    k2.ddpg.episodes = 150;
    k2.ddpg.ou_sigma = 0.15;
    k2.ddpg.seed = util::derive_seed(seed, 12);
    k2.env.action_scale = 0.5;      // limited authority...
    k2.env.control_weight = 0.05;   // ...and energy-averse.
    k2.target_safe_rate = 0.79;
    specs.push_back(k2);
  } else if (system_name == "threed") {
    ExpertSpec k1;
    k1.label = "k1";
    k1.ddpg.actor_hidden = {48, 48};
    k1.ddpg.critic_hidden = {64, 64};
    // The tight X = [-0.5, 0.5]^3 terminates most early episodes within a
    // few steps, so useful experience accumulates slowly — the budget must
    // be measured in episodes *survived*, hence the larger count.
    k1.ddpg.episodes = 500;
    k1.ddpg.warmup_steps = 1000;
    k1.ddpg.ou_sigma = 0.25;
    k1.ddpg.noise_decay = 0.995;
    k1.ddpg.seed = util::derive_seed(seed, 21);
    k1.env.action_scale = 1.0;
    k1.env.control_weight = 0.005;
    k1.target_safe_rate = 0.62;  // just below the model-based κ2's rate.
    specs.push_back(k1);
    // κ2 is the model-based polynomial controller (no DDPG spec).
  } else if (system_name == "cartpole") {
    ExpertSpec k1;
    k1.label = "k1";
    k1.ddpg.actor_hidden = {64, 64};
    k1.ddpg.critic_hidden = {64, 64};
    // Early cartpole episodes die in tens of steps (X0 reaches 96% of the
    // angle bound); several hundred episodes are needed before the replay
    // buffer sees full-length trajectories.
    k1.ddpg.episodes = 600;
    k1.ddpg.warmup_steps = 1500;
    k1.ddpg.ou_sigma = 0.25;
    k1.ddpg.noise_decay = 0.995;
    k1.ddpg.seed = util::derive_seed(seed, 31);
    k1.env.action_scale = 1.0;
    k1.env.state_weights = {0.3, 0.02, 1.0, 0.05};  // angle-focused.
    k1.env.control_weight = 0.002;
    k1.target_safe_rate = 0.80;
    specs.push_back(k1);

    ExpertSpec k2;
    k2.label = "k2";
    // Structurally capped: half the control authority and a small network
    // give this expert a natural ceiling near the paper's Sr = 84% rather
    // than relying on early stopping alone.
    k2.ddpg.actor_hidden = {24};
    k2.ddpg.critic_hidden = {64, 64};
    k2.ddpg.episodes = 350;
    k2.ddpg.warmup_steps = 1500;
    k2.ddpg.ou_sigma = 0.18;
    k2.ddpg.noise_decay = 0.995;
    k2.ddpg.seed = util::derive_seed(seed, 32);
    k2.env.action_scale = 0.5;
    k2.env.state_weights = {1.0, 0.05, 0.5, 0.02};  // position-focused.
    k2.env.control_weight = 0.05;
    k2.target_safe_rate = 0.84;
    specs.push_back(k2);
  } else {
    throw std::invalid_argument("default_expert_specs: unknown system " +
                                system_name);
  }
  return specs;
}

std::vector<ctrl::ControllerPtr> load_or_train_experts(sys::SystemPtr system,
                                                       std::uint64_t seed,
                                                       bool use_cache,
                                                       int num_workers,
                                                       int num_env_shards) {
  std::vector<ctrl::ControllerPtr> experts;
  for (ExpertSpec spec : default_expert_specs(system->name(), seed)) {
    spec.ddpg.num_workers = num_workers;
    if (num_env_shards > 0) spec.ddpg.num_env_shards = num_env_shards;
    const std::string path =
        expert_cache_path(system->name(), spec.label, seed);
    if (use_cache && util::file_exists(path)) {
      COCKTAIL_INFO << "loading cached expert " << path;
      experts.push_back(std::make_shared<ctrl::NnController>(
          ctrl::NnController::load_file(path, spec.label)));
      continue;
    }
    auto expert = train_ddpg_expert(system, spec);
    if (use_cache) {
      const auto* as_nn =
          dynamic_cast<const ctrl::NnController*>(expert.get());
      if (as_nn != nullptr) as_nn->save_file(path);
    }
    experts.push_back(std::move(expert));
  }
  // The 3D system's second expert is model-based (deterministic synthesis —
  // no caching required).
  if (system->name() == "threed")
    experts.push_back(make_threed_polynomial_expert(*system));
  return experts;
}

}  // namespace cocktail::core
