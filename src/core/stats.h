// Statistical reporting for the Monte-Carlo metrics.
//
// The paper reports point estimates of the safe control rate over 500
// sampled initial states; a faithful reproduction should quantify the
// sampling error of such estimates, so the benches report Wilson score
// intervals alongside Sr, and controller comparisons can be run *paired*
// (same initial states, same disturbance streams) to remove the shared
// sampling noise from the contrast.
#pragma once

#include <limits>

#include "attack/perturbation.h"
#include "control/controller.h"
#include "core/metrics.h"
#include "sys/system.h"

namespace cocktail::core {

/// Wilson score interval for a binomial rate (default z = 1.96 ~ 95%).
struct RateInterval {
  double lo = 0.0;
  double hi = 0.0;
};
[[nodiscard]] RateInterval wilson_interval(int successes, int total,
                                           double z = 1.96);

/// Outcome counts of a paired controller comparison on identical initial
/// states and disturbance/perturbation streams.
struct PairedOutcome {
  int both_safe = 0;
  int only_a_safe = 0;
  int only_b_safe = 0;
  int neither_safe = 0;
  /// Mean energies over the both-safe subset.  NaN when both_safe == 0:
  /// with no trajectory safe under both controllers there is no paired
  /// energy comparison, and 0.0 would silently read as "zero energy".
  /// Printers must guard with std::isnan (or check both_safe).
  double energy_a = std::numeric_limits<double>::quiet_NaN();
  double energy_b = std::numeric_limits<double>::quiet_NaN();

  [[nodiscard]] int total() const {
    return both_safe + only_a_safe + only_b_safe + neither_safe;
  }
  /// Sr(A) - Sr(B); positive means A is safer on this paired sample.
  [[nodiscard]] double safe_rate_difference() const;
};

/// Evaluates two controllers on the same sampled initial states with the
/// same per-trajectory random streams (the perturbation model still sees
/// different controller outputs, but all environment randomness matches).
[[nodiscard]] PairedOutcome evaluate_paired(const sys::System& system,
                                            const ctrl::Controller& a,
                                            const ctrl::Controller& b,
                                            const EvalConfig& config);

}  // namespace cocktail::core
