// The paper's three evaluation metrics:
//   Property 1 — control robustness: safe control rate Sr over sampled
//                initial states, under a given perturbation model;
//   Property 2 — control energy efficiency: mean Σ_t ||u||₁ over the safe
//                trajectories (Eq. (3), evaluated by sampling X0);
//   Property 3 — verifiability: measured by src/verify (wall-clock time).
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "attack/perturbation.h"
#include "control/controller.h"
#include "core/rollout.h"
#include "sys/system.h"

namespace cocktail::core {

struct EvalConfig {
  int num_initial_states = 500;  ///< the paper samples 500 per system.
  std::uint64_t seed = 12345;
  /// Null = evaluate without attacks or noises (Table I).
  attack::PerturbationPtr perturbation;
  /// Worker count for the batched rollout engine (see BatchRolloutConfig):
  /// 0 = shared pool, 1 = serial.  Results are identical either way.
  int num_workers = 0;
};

struct EvalResult {
  double safe_rate = 0.0;     ///< Sr ∈ [0, 1].
  /// e over safe trajectories; NaN when num_safe == 0 (the mean is
  /// undefined, and 0.0 would let an all-unsafe candidate pose as a
  /// zero-energy one).  Same convention — and same NaN default for the
  /// num_safe == 0 state a fresh struct starts in — as
  /// PairedOutcome::energy_a/b.
  double mean_energy = std::numeric_limits<double>::quiet_NaN();
  int num_safe = 0;
  int num_total = 0;
};

/// Monte-Carlo evaluation: same seeds sample the same initial states, so
/// controllers are compared on a common set (paired comparison).
[[nodiscard]] EvalResult evaluate(const sys::System& system,
                                  const ctrl::Controller& controller,
                                  const EvalConfig& config);

/// Sr and mean safe-trajectory energy over results[begin, begin + count).
/// The single aggregation shared by evaluate() and the benches, so sliced
/// multi-attack batches can never drift from Table I semantics.
[[nodiscard]] EvalResult summarize_rollouts(
    const std::vector<RolloutResult>& results, std::size_t begin,
    std::size_t count);

/// Reports the controller's certified Lipschitz bound, or a negative value
/// when unavailable (Table I prints "-").
[[nodiscard]] double lipschitz_metric(const ctrl::Controller& controller);

/// Table display of EvalResult::mean_energy (and PairedOutcome::energy_a/b):
/// "-" when NaN (no safe trajectory to average over), 1-decimal fixed
/// otherwise.  CSVs keep util::format_number, which spells NaN out as "nan".
[[nodiscard]] std::string format_energy(double mean_energy);

}  // namespace cocktail::core
