#include "core/stats.h"

#include <cmath>

#include "core/rollout.h"

namespace cocktail::core {

RateInterval wilson_interval(int successes, int total, double z) {
  if (total <= 0) return {0.0, 1.0};
  const double n = total;
  const double p = static_cast<double>(successes) / n;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double center = (p + z2 / (2.0 * n)) / denom;
  const double half =
      z * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n)) / denom;
  return {std::max(0.0, center - half), std::min(1.0, center + half)};
}

double PairedOutcome::safe_rate_difference() const {
  const int n = total();
  if (n == 0) return 0.0;
  return static_cast<double>(only_a_safe - only_b_safe) / n;
}

PairedOutcome evaluate_paired(const sys::System& system,
                              const ctrl::Controller& a,
                              const ctrl::Controller& b,
                              const EvalConfig& config) {
  PairedOutcome outcome;
  // One shared job grid: identical initial states and identical disturbance
  // streams for both controllers (the paired design).
  const std::vector<RolloutJob> jobs = make_eval_jobs(
      system, config.num_initial_states, config.seed,
      config.perturbation.get());
  BatchRolloutConfig batch;
  batch.num_workers = config.num_workers;
  // Fused 2N-job stream: both controllers' rollouts interleave on the pool
  // instead of running as two half-width batches.
  const PairedRolloutResults results =
      batch_rollout_paired(system, a, b, jobs, batch);
  double energy_a_sum = 0.0, energy_b_sum = 0.0;
  for (std::size_t k = 0; k < jobs.size(); ++k) {
    const RolloutResult& ra = results.a[k];
    const RolloutResult& rb = results.b[k];
    if (ra.safe && rb.safe) {
      ++outcome.both_safe;
      energy_a_sum += ra.energy;
      energy_b_sum += rb.energy;
    } else if (ra.safe) {
      ++outcome.only_a_safe;
    } else if (rb.safe) {
      ++outcome.only_b_safe;
    } else {
      ++outcome.neither_safe;
    }
  }
  if (outcome.both_safe > 0) {
    outcome.energy_a = energy_a_sum / outcome.both_safe;
    outcome.energy_b = energy_b_sum / outcome.both_safe;
  }
  return outcome;
}

}  // namespace cocktail::core
