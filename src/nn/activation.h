// Activation functions for the dense layers.
//
// The set matches the paper's Lipschitz-constant table (footnote 1): a layer
// with weights W contributes ||W|| for ReLU/Tanh/Identity and ||W||/4 for
// Sigmoid, because those activations are 1- (resp. 1/4-) Lipschitz.
#pragma once

#include <string>

#include "la/vec.h"

namespace cocktail::nn {

enum class Activation { kIdentity, kRelu, kTanh, kSigmoid };

/// Scalar activation value.
[[nodiscard]] double activate(Activation act, double z) noexcept;

/// Derivative dσ/dz expressed through the pre-activation `z` and the
/// already-computed output `a = σ(z)` (cheaper for tanh/sigmoid).
[[nodiscard]] double activate_grad(Activation act, double z,
                                   double a) noexcept;

/// Element-wise activation of a vector.
[[nodiscard]] la::Vec activate(Activation act, const la::Vec& z);

/// Lipschitz constant of the activation itself (1 or 1/4).
[[nodiscard]] double activation_lipschitz(Activation act) noexcept;

[[nodiscard]] std::string to_string(Activation act);
[[nodiscard]] Activation activation_from_string(const std::string& name);

}  // namespace cocktail::nn
