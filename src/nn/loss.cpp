#include "nn/loss.h"

#include <cmath>
#include <stdexcept>

namespace cocktail::nn {
namespace {

void require_same(const la::Vec& a, const la::Vec& b, const char* op) {
  if (a.size() != b.size())
    throw std::invalid_argument(std::string("nn::") + op +
                                ": dimension mismatch");
}

}  // namespace

double mse(const la::Vec& prediction, const la::Vec& target) {
  require_same(prediction, target, "mse");
  double s = 0.0;
  for (std::size_t i = 0; i < prediction.size(); ++i) {
    const double d = prediction[i] - target[i];
    s += d * d;
  }
  return s / static_cast<double>(prediction.size());
}

la::Vec mse_gradient(const la::Vec& prediction, const la::Vec& target) {
  require_same(prediction, target, "mse_gradient");
  la::Vec g(prediction.size());
  const double scale = 2.0 / static_cast<double>(prediction.size());
  for (std::size_t i = 0; i < prediction.size(); ++i)
    g[i] = scale * (prediction[i] - target[i]);
  return g;
}

double huber(const la::Vec& prediction, const la::Vec& target, double delta) {
  require_same(prediction, target, "huber");
  double s = 0.0;
  for (std::size_t i = 0; i < prediction.size(); ++i) {
    const double d = std::abs(prediction[i] - target[i]);
    s += d <= delta ? 0.5 * d * d : delta * (d - 0.5 * delta);
  }
  return s / static_cast<double>(prediction.size());
}

la::Vec huber_gradient(const la::Vec& prediction, const la::Vec& target,
                       double delta) {
  require_same(prediction, target, "huber_gradient");
  la::Vec g(prediction.size());
  const double scale = 1.0 / static_cast<double>(prediction.size());
  for (std::size_t i = 0; i < prediction.size(); ++i) {
    const double d = prediction[i] - target[i];
    if (std::abs(d) <= delta) g[i] = scale * d;
    else g[i] = scale * delta * (d > 0 ? 1.0 : -1.0);
  }
  return g;
}

}  // namespace cocktail::nn
