// Deterministic parallel accumulation of per-sample gradient work.
//
// Every SGD-style loop in the library (robust distillation, the PPO
// surrogate/value passes, the DDPG critic/actor passes) has the same shape:
// a minibatch of independent per-sample forward/backward contributions summed
// into one parameter-shaped accumulator.  This helper runs that sum on the
// util::chunked_reduce tree — fixed contiguous chunks, each folded in index
// order into its own buffer, buffers merged in increasing chunk order — so
// the bits are identical for any worker count, including the serial path.
//
// The per-chunk buffers are allocated once (sized for the largest minibatch)
// and reused across reduce() calls: the hot loop does no per-minibatch
// allocation, and reusing buffers cannot change results because every chunk
// is zeroed before it accumulates.
//
// Thread-safety by disjointness (why this type carries no mutex and no
// COCKTAIL_GUARDED_BY): during reduce(), worker w touches exactly the
// chunks_[c] entries that chunked_for hands it, and no chunk is handed to
// two workers; the merge into total_ runs after the pool barrier, on the
// calling thread only.  The reducer itself must not be shared across
// concurrent reduce() calls — each trainer owns one.  This header is part
// of the sanctioned reduction substrate, so tools/lint_determinism.py
// exempts it from the raw-dispatch/FP-accumulation rules it enforces on
// the rest of src/.
#pragma once

#include <algorithm>
#include <cstddef>
#include <stdexcept>
#include <vector>

#include "util/thread_pool.h"

namespace cocktail::nn {

/// Reusable fixed-tree reduction over per-sample accumulators.  `Acc` must
/// provide `zero()` and `axpy(double, const Acc&)` (nn::Gradients does;
/// trainers compose structs of Gradients/la::Vec with the same interface).
/// The grain is part of the reduction tree: changing it legitimately changes
/// low-order bits, so it must stay fixed for reproducibility.
template <class Acc>
class ChunkedGradReducer {
 public:
  /// `max_count` is the largest sample count any reduce() call will see
  /// (the minibatch size); `make` builds one zero-shaped accumulator.
  template <class Make>
  ChunkedGradReducer(std::size_t max_count, std::size_t grain, Make&& make)
      : grain_(std::max<std::size_t>(grain, 1)), total_(make()) {
    const std::size_t capacity = (max_count + grain_ - 1) / grain_;
    chunks_.reserve(capacity);
    for (std::size_t c = 0; c < capacity; ++c) chunks_.push_back(make());
  }

  /// Folds body(acc, k) for k in [0, count) on `pool` (nullptr = serial,
  /// identical tree) and returns the merged total, valid until the next
  /// reduce() call.  `body` must only read shared state and write `acc`.
  template <class Body>
  Acc& reduce(util::ThreadPool* pool, std::size_t count, const Body& body) {
    const std::size_t chunks = (count + grain_ - 1) / grain_;
    if (chunks > chunks_.size())
      throw std::invalid_argument(
          "ChunkedGradReducer::reduce: count exceeds max_count");
    util::run_chunks(pool, chunks, [&](std::size_t c) {
      Acc& acc = chunks_[c];
      acc.zero();
      const std::size_t hi = std::min(count, (c + 1) * grain_);
      for (std::size_t k = c * grain_; k < hi; ++k) body(acc, k);
    });
    total_.zero();
    for (std::size_t c = 0; c < chunks; ++c) total_.axpy(1.0, chunks_[c]);
    return total_;
  }

  [[nodiscard]] std::size_t grain() const noexcept { return grain_; }

 private:
  std::size_t grain_;
  std::vector<Acc> chunks_;
  Acc total_;
};

}  // namespace cocktail::nn
