#include "nn/activation.h"

#include <cmath>
#include <stdexcept>

namespace cocktail::nn {

double activate(Activation act, double z) noexcept {
  switch (act) {
    case Activation::kIdentity:
      return z;
    case Activation::kRelu:
      return z > 0.0 ? z : 0.0;
    case Activation::kTanh:
      return std::tanh(z);
    case Activation::kSigmoid:
      return 1.0 / (1.0 + std::exp(-z));
  }
  return z;
}

double activate_grad(Activation act, double z, double a) noexcept {
  switch (act) {
    case Activation::kIdentity:
      return 1.0;
    case Activation::kRelu:
      return z > 0.0 ? 1.0 : 0.0;
    case Activation::kTanh:
      return 1.0 - a * a;
    case Activation::kSigmoid:
      return a * (1.0 - a);
  }
  return 1.0;
}

la::Vec activate(Activation act, const la::Vec& z) {
  la::Vec a(z.size());
  for (std::size_t i = 0; i < z.size(); ++i) a[i] = activate(act, z[i]);
  return a;
}

double activation_lipschitz(Activation act) noexcept {
  return act == Activation::kSigmoid ? 0.25 : 1.0;
}

std::string to_string(Activation act) {
  switch (act) {
    case Activation::kIdentity:
      return "identity";
    case Activation::kRelu:
      return "relu";
    case Activation::kTanh:
      return "tanh";
    case Activation::kSigmoid:
      return "sigmoid";
  }
  return "identity";
}

Activation activation_from_string(const std::string& name) {
  if (name == "identity") return Activation::kIdentity;
  if (name == "relu") return Activation::kRelu;
  if (name == "tanh") return Activation::kTanh;
  if (name == "sigmoid") return Activation::kSigmoid;
  throw std::invalid_argument("unknown activation: " + name);
}

}  // namespace cocktail::nn
