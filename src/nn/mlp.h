// Fully-connected feed-forward network with manual backpropagation.
//
// This is the only network architecture the paper uses (controllers, DDPG
// actor/critics, the PPO mixing policy, and the distilled student are all
// small MLPs).  Beyond standard parameter gradients, the implementation
// exposes:
//   * gradients with respect to the *input* — required by FGSM adversarial
//     example generation (Algorithm 1, line 13) and by closed-loop attacks;
//   * a certified Lipschitz upper bound (product of layer spectral norms,
//     scaled by 1/4 per sigmoid layer) — the quantity the paper's
//     verifiability argument rests on (footnote 1);
//   * text serialization so benches can cache trained controllers.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "la/matrix.h"
#include "la/vec.h"
#include "nn/activation.h"
#include "util/rng.h"

namespace cocktail::nn {

/// One dense layer: y = act(W x + b).
struct DenseLayer {
  la::Matrix w;    ///< out x in.
  la::Vec b;       ///< out.
  Activation act = Activation::kIdentity;
};

/// Parameter-shaped gradient accumulator (mirrors Mlp layer shapes).
struct Gradients {
  std::vector<la::Matrix> w;
  std::vector<la::Vec> b;

  void zero();
  /// this += k * other.
  void axpy(double k, const Gradients& other);
  void scale(double k);
  [[nodiscard]] double sum_squares() const;
  [[nodiscard]] double l2_norm() const;
  /// Scales so the global L2 norm is at most `max_norm` (gradient clipping).
  void clip_norm(double max_norm);
};

class Mlp {
 public:
  Mlp() = default;

  /// Builds from explicit layer widths and activations.
  /// `widths` = [in, h1, ..., out]; `acts.size()` must be widths.size()-1.
  /// ReLU layers use He initialization, others Xavier.
  Mlp(const std::vector<std::size_t>& widths,
      const std::vector<Activation>& acts, util::Rng& rng);

  /// Convenience factory: hidden layers share `hidden_act`; the output
  /// layer uses `output_act`.
  static Mlp make(std::size_t in_dim, const std::vector<std::size_t>& hidden,
                  std::size_t out_dim, Activation hidden_act,
                  Activation output_act, std::uint64_t seed);

  [[nodiscard]] bool empty() const noexcept { return layers_.empty(); }
  [[nodiscard]] std::size_t num_layers() const noexcept {
    return layers_.size();
  }
  [[nodiscard]] std::size_t input_dim() const;
  [[nodiscard]] std::size_t output_dim() const;
  [[nodiscard]] std::size_t num_parameters() const;
  [[nodiscard]] const std::vector<DenseLayer>& layers() const noexcept {
    return layers_;
  }
  [[nodiscard]] std::vector<DenseLayer>& layers() noexcept { return layers_; }

  /// Plain inference.
  [[nodiscard]] la::Vec forward(const la::Vec& x) const;

  /// Batched inference: `x` is N x input_dim (one sample per row); returns
  /// N x output_dim.  Each layer is one blocked GEMM (la::Matrix::matmul_nt)
  /// plus a bias broadcast; the GEMM and the scalar path's matvec follow
  /// the same fixed accumulation schedule (la/kernel_config.h), so row r is
  /// **bitwise identical** to forward(x.row(r)) — the contract the serving
  /// runtime's micro-batching rests on (pinned by test_nn's ForwardBatch
  /// suites; waived only by the -DCOCKTAIL_BLAS=ON opt-in).
  [[nodiscard]] la::Matrix forward_batch(const la::Matrix& x) const;

  /// Per-sample forward pass cache for backpropagation.
  struct Workspace {
    std::vector<la::Vec> pre;  ///< pre-activations z_l = W_l a_{l-1} + b_l.
    std::vector<la::Vec> act;  ///< act[0] = input; act[l+1] = σ(pre[l]).
  };

  /// Forward pass that fills `ws`; returns the output (== ws.act.back()).
  la::Vec forward(const la::Vec& x, Workspace& ws) const;

  /// Backpropagates `dl_dy` (dLoss/dOutput for the sample cached in `ws`),
  /// accumulating parameter gradients into `grads` (must be zero_gradients()
  /// -shaped).  Returns dLoss/dInput.
  la::Vec backward(const Workspace& ws, const la::Vec& dl_dy,
                   Gradients& grads) const;

  /// dLoss/dInput only — the FGSM path; skips parameter-gradient work.
  [[nodiscard]] la::Vec input_gradient(const la::Vec& x,
                                       const la::Vec& dl_dy) const;

  /// Jacobian dy/dx (output_dim x input_dim) by row-wise backprop.
  [[nodiscard]] la::Matrix input_jacobian(const la::Vec& x) const;

  /// Zero gradient accumulator matching this network's shapes.
  [[nodiscard]] Gradients zero_gradients() const;

  /// Adds the gradient of lambda*||q||_2^2 (all weights and biases) into
  /// `grads` — the L2 term of the robust-distillation loss.
  void accumulate_l2_gradient(double lambda, Gradients& grads) const;

  /// Sum of squared parameters ||q||_2^2.
  [[nodiscard]] double sum_squares() const;

  /// Certified global Lipschitz upper bound: prod_l lip(act_l)*||W_l||_2.
  [[nodiscard]] double lipschitz_upper_bound() const;

  /// Empirical (lower-bound) Lipschitz estimate: max over sampled pairs of
  /// ||f(x)-f(y)|| / ||x-y|| inside the given box.  Useful for testing that
  /// the certified bound is sound.
  [[nodiscard]] double lipschitz_sampled(const la::Vec& lo, const la::Vec& hi,
                                         int samples, util::Rng& rng) const;

  /// In-place SGD-style parameter update p += k * g.
  void apply_update(double k, const Gradients& grads);

  [[nodiscard]] bool all_finite() const;

  void save(std::ostream& out) const;
  void save_file(const std::string& path) const;
  /// Throws std::runtime_error on a bad header, a truncated stream,
  /// inter-layer dimension mismatches, or non-finite parameters — a cached
  /// artifact that fails any of these must never reach inference.
  static Mlp load(std::istream& in);
  static Mlp load_file(const std::string& path);

 private:
  std::vector<DenseLayer> layers_;
};

}  // namespace cocktail::nn
