// Regression losses used by distillation and the RL critics.
#pragma once

#include "la/vec.h"

namespace cocktail::nn {

/// Mean squared error over vector outputs: (1/n) * sum_i (y_i - t_i)^2.
[[nodiscard]] double mse(const la::Vec& prediction, const la::Vec& target);

/// Gradient of mse() with respect to the prediction: (2/n) * (y - t).
[[nodiscard]] la::Vec mse_gradient(const la::Vec& prediction,
                                   const la::Vec& target);

/// Huber (smooth-L1) loss with threshold `delta`; more robust critic
/// regression under outlier TD targets.
[[nodiscard]] double huber(const la::Vec& prediction, const la::Vec& target,
                           double delta);

/// Gradient of huber() with respect to the prediction.
[[nodiscard]] la::Vec huber_gradient(const la::Vec& prediction,
                                     const la::Vec& target, double delta);

}  // namespace cocktail::nn
