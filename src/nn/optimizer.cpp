#include "nn/optimizer.h"

#include <cmath>
#include <stdexcept>

namespace cocktail::nn {

Sgd::Sgd(double learning_rate, double momentum)
    : lr_(learning_rate), momentum_(momentum) {}

void Sgd::step(Mlp& net, const Gradients& grads) {
  if (momentum_ == 0.0) {
    net.apply_update(-lr_, grads);
    return;
  }
  if (!initialized_) {
    velocity_ = net.zero_gradients();
    initialized_ = true;
  }
  velocity_.scale(momentum_);
  velocity_.axpy(1.0, grads);
  net.apply_update(-lr_, velocity_);
}

Adam::Adam(double learning_rate, double beta1, double beta2, double epsilon)
    : lr_(learning_rate), beta1_(beta1), beta2_(beta2), eps_(epsilon) {}

void Adam::reset() {
  initialized_ = false;
  t_ = 0;
}

void Adam::step(Mlp& net, const Gradients& grads) {
  if (!initialized_) {
    m_ = net.zero_gradients();
    v_ = net.zero_gradients();
    initialized_ = true;
  }
  if (m_.w.size() != grads.w.size())
    throw std::invalid_argument("Adam::step: shape mismatch");
  ++t_;
  const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  auto& layers = net.layers();
  for (std::size_t l = 0; l < layers.size(); ++l) {
    auto update = [&](double& p, double& m, double& v, double g) {
      m = beta1_ * m + (1.0 - beta1_) * g;
      v = beta2_ * v + (1.0 - beta2_) * g * g;
      const double m_hat = m / bc1;
      const double v_hat = v / bc2;
      p -= lr_ * m_hat / (std::sqrt(v_hat) + eps_);
    };
    auto& w = layers[l].w.data();
    auto& mw = m_.w[l].data();
    auto& vw = v_.w[l].data();
    const auto& gw = grads.w[l].data();
    for (std::size_t i = 0; i < w.size(); ++i) update(w[i], mw[i], vw[i], gw[i]);
    auto& b = layers[l].b;
    auto& mb = m_.b[l];
    auto& vb = v_.b[l];
    const auto& gb = grads.b[l];
    for (std::size_t i = 0; i < b.size(); ++i) update(b[i], mb[i], vb[i], gb[i]);
  }
}

AdamVec::AdamVec(double learning_rate, double beta1, double beta2,
                 double epsilon)
    : lr_(learning_rate), beta1_(beta1), beta2_(beta2), eps_(epsilon) {}

void AdamVec::reset() {
  t_ = 0;
  m_.clear();
  v_.clear();
}

void AdamVec::step(la::Vec& params, const la::Vec& grads) {
  if (params.size() != grads.size())
    throw std::invalid_argument("AdamVec::step: size mismatch");
  if (m_.size() != params.size()) {
    m_.assign(params.size(), 0.0);
    v_.assign(params.size(), 0.0);
  }
  ++t_;
  const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  for (std::size_t i = 0; i < params.size(); ++i) {
    m_[i] = beta1_ * m_[i] + (1.0 - beta1_) * grads[i];
    v_[i] = beta2_ * v_[i] + (1.0 - beta2_) * grads[i] * grads[i];
    params[i] -= lr_ * (m_[i] / bc1) / (std::sqrt(v_[i] / bc2) + eps_);
  }
}

}  // namespace cocktail::nn
