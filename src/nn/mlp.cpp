#include "nn/mlp.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "la/vec.h"
#include "util/csv.h"

namespace cocktail::nn {

void Gradients::zero() {
  for (auto& m : w) m.fill(0.0);
  for (auto& v : b)
    for (auto& x : v) x = 0.0;
}

void Gradients::axpy(double k, const Gradients& other) {
  if (w.size() != other.w.size())
    throw std::invalid_argument("Gradients::axpy: layer count mismatch");
  for (std::size_t l = 0; l < w.size(); ++l) {
    w[l].axpy(k, other.w[l]);
    la::axpy(b[l], k, other.b[l]);
  }
}

void Gradients::scale(double k) {
  for (auto& m : w) m.scale_in_place(k);
  for (auto& v : b)
    for (auto& x : v) x *= k;
}

double Gradients::sum_squares() const {
  double s = 0.0;
  for (const auto& m : w) s += m.sum_squares();
  for (const auto& v : b) s += la::dot(v, v);
  return s;
}

double Gradients::l2_norm() const { return std::sqrt(sum_squares()); }

void Gradients::clip_norm(double max_norm) {
  const double norm = l2_norm();
  if (norm > max_norm && norm > 0.0) scale(max_norm / norm);
}

Mlp::Mlp(const std::vector<std::size_t>& widths,
         const std::vector<Activation>& acts, util::Rng& rng) {
  if (widths.size() < 2)
    throw std::invalid_argument("Mlp: need at least input and output widths");
  if (acts.size() != widths.size() - 1)
    throw std::invalid_argument("Mlp: acts must have widths.size()-1 entries");
  layers_.reserve(acts.size());
  for (std::size_t l = 0; l + 1 < widths.size(); ++l) {
    DenseLayer layer;
    const std::size_t fan_in = widths[l];
    const std::size_t fan_out = widths[l + 1];
    layer.w = la::Matrix(fan_out, fan_in);
    layer.b = la::zeros(fan_out);
    layer.act = acts[l];
    // He initialization for ReLU, Xavier/Glorot otherwise.
    const double stddev =
        acts[l] == Activation::kRelu
            ? std::sqrt(2.0 / static_cast<double>(fan_in))
            : std::sqrt(2.0 / static_cast<double>(fan_in + fan_out));
    for (auto& v : layer.w.data()) v = rng.normal(0.0, stddev);
    layers_.push_back(std::move(layer));
  }
}

Mlp Mlp::make(std::size_t in_dim, const std::vector<std::size_t>& hidden,
              std::size_t out_dim, Activation hidden_act,
              Activation output_act, std::uint64_t seed) {
  std::vector<std::size_t> widths;
  widths.push_back(in_dim);
  widths.insert(widths.end(), hidden.begin(), hidden.end());
  widths.push_back(out_dim);
  std::vector<Activation> acts(hidden.size(), hidden_act);
  acts.push_back(output_act);
  util::Rng rng(seed);
  return Mlp(widths, acts, rng);
}

std::size_t Mlp::input_dim() const {
  if (layers_.empty()) throw std::logic_error("Mlp::input_dim: empty network");
  return layers_.front().w.cols();
}

std::size_t Mlp::output_dim() const {
  if (layers_.empty())
    throw std::logic_error("Mlp::output_dim: empty network");
  return layers_.back().w.rows();
}

std::size_t Mlp::num_parameters() const {
  std::size_t n = 0;
  for (const auto& layer : layers_) n += layer.w.size() + layer.b.size();
  return n;
}

la::Vec Mlp::forward(const la::Vec& x) const {
  la::Vec a = x;
  for (const auto& layer : layers_) {
    la::Vec z = layer.w.matvec(a);
    la::axpy(z, 1.0, layer.b);
    a = activate(layer.act, z);
  }
  return a;
}

la::Matrix Mlp::forward_batch(const la::Matrix& x) const {
  if (x.cols() != input_dim())
    throw std::invalid_argument("Mlp::forward_batch: input dimension mismatch");
  la::Matrix a = x;
  for (const auto& layer : layers_) {
    // z(r, i) = sum_c a(r, c) * w(i, c) + b[i]: the GEMM runs the same
    // fixed accumulation schedule as the scalar path's matvec (IEEE
    // multiplication commutes bitwise, so the operand order per product is
    // immaterial), then the same bias add and element-wise activation.
    la::Matrix z = a.matmul_nt(layer.w);
    z.add_row_broadcast(layer.b);
    for (auto& v : z.data()) v = activate(layer.act, v);
    a = std::move(z);
  }
  return a;
}

la::Vec Mlp::forward(const la::Vec& x, Workspace& ws) const {
  ws.pre.resize(layers_.size());
  ws.act.resize(layers_.size() + 1);
  ws.act[0] = x;
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    const auto& layer = layers_[l];
    ws.pre[l] = layer.w.matvec(ws.act[l]);
    la::axpy(ws.pre[l], 1.0, layer.b);
    ws.act[l + 1] = activate(layer.act, ws.pre[l]);
  }
  return ws.act.back();
}

la::Vec Mlp::backward(const Workspace& ws, const la::Vec& dl_dy,
                      Gradients& grads) const {
  if (grads.w.size() != layers_.size())
    throw std::invalid_argument("Mlp::backward: gradient shape mismatch");
  la::Vec delta = dl_dy;  // dL/da for the current layer output.
  for (std::size_t l = layers_.size(); l-- > 0;) {
    const auto& layer = layers_[l];
    // dL/dz = dL/da ∘ σ'(z).
    la::Vec dz(delta.size());
    for (std::size_t i = 0; i < delta.size(); ++i)
      dz[i] = delta[i] *
              activate_grad(layer.act, ws.pre[l][i], ws.act[l + 1][i]);
    // dL/dW += dz ⊗ a_{l-1};  dL/db += dz.
    grads.w[l].add_outer(1.0, dz, ws.act[l]);
    la::axpy(grads.b[l], 1.0, dz);
    // dL/da_{l-1} = W^T dz.
    delta = layer.w.matvec_transpose(dz);
  }
  return delta;
}

la::Vec Mlp::input_gradient(const la::Vec& x, const la::Vec& dl_dy) const {
  Workspace ws;
  forward(x, ws);
  la::Vec delta = dl_dy;
  for (std::size_t l = layers_.size(); l-- > 0;) {
    const auto& layer = layers_[l];
    la::Vec dz(delta.size());
    for (std::size_t i = 0; i < delta.size(); ++i)
      dz[i] = delta[i] *
              activate_grad(layer.act, ws.pre[l][i], ws.act[l + 1][i]);
    delta = layer.w.matvec_transpose(dz);
  }
  return delta;
}

la::Matrix Mlp::input_jacobian(const la::Vec& x) const {
  Workspace ws;
  forward(x, ws);
  const std::size_t out = output_dim();
  la::Matrix jac(out, input_dim());
  for (std::size_t r = 0; r < out; ++r) {
    la::Vec delta = la::zeros(out);
    delta[r] = 1.0;
    for (std::size_t l = layers_.size(); l-- > 0;) {
      const auto& layer = layers_[l];
      la::Vec dz(delta.size());
      for (std::size_t i = 0; i < delta.size(); ++i)
        dz[i] = delta[i] *
                activate_grad(layer.act, ws.pre[l][i], ws.act[l + 1][i]);
      delta = layer.w.matvec_transpose(dz);
    }
    for (std::size_t c = 0; c < delta.size(); ++c) jac(r, c) = delta[c];
  }
  return jac;
}

Gradients Mlp::zero_gradients() const {
  Gradients g;
  g.w.reserve(layers_.size());
  g.b.reserve(layers_.size());
  for (const auto& layer : layers_) {
    g.w.emplace_back(layer.w.rows(), layer.w.cols());
    g.b.push_back(la::zeros(layer.b.size()));
  }
  return g;
}

void Mlp::accumulate_l2_gradient(double lambda, Gradients& grads) const {
  // d/dq of lambda * ||q||^2 is 2*lambda*q.
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    grads.w[l].axpy(2.0 * lambda, layers_[l].w);
    la::axpy(grads.b[l], 2.0 * lambda, layers_[l].b);
  }
}

double Mlp::sum_squares() const {
  double s = 0.0;
  for (const auto& layer : layers_)
    s += layer.w.sum_squares() + la::dot(layer.b, layer.b);
  return s;
}

double Mlp::lipschitz_upper_bound() const {
  double lip = 1.0;
  for (const auto& layer : layers_)
    lip *= activation_lipschitz(layer.act) * layer.w.spectral_norm();
  return lip;
}

double Mlp::lipschitz_sampled(const la::Vec& lo, const la::Vec& hi,
                              int samples, util::Rng& rng) const {
  const std::size_t dim = input_dim();
  if (lo.size() != dim || hi.size() != dim)
    throw std::invalid_argument("lipschitz_sampled: box dimension mismatch");
  double best = 0.0;
  for (int k = 0; k < samples; ++k) {
    la::Vec x(dim), y(dim);
    for (std::size_t i = 0; i < dim; ++i) {
      x[i] = rng.uniform(lo[i], hi[i]);
      // y is a nearby point: local slopes dominate the Lipschitz constant.
      const double radius = 1e-3 * (hi[i] - lo[i]);
      y[i] = std::clamp(x[i] + rng.uniform(-radius, radius), lo[i], hi[i]);
    }
    const double dx = la::norm_l2(la::sub(x, y));
    if (dx < 1e-12) continue;
    const double df = la::norm_l2(la::sub(forward(x), forward(y)));
    best = std::max(best, df / dx);
  }
  return best;
}

void Mlp::apply_update(double k, const Gradients& grads) {
  if (grads.w.size() != layers_.size())
    throw std::invalid_argument("Mlp::apply_update: shape mismatch");
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    layers_[l].w.axpy(k, grads.w[l]);
    la::axpy(layers_[l].b, k, grads.b[l]);
  }
}

bool Mlp::all_finite() const {
  for (const auto& layer : layers_)
    if (!layer.w.all_finite() || !la::all_finite(layer.b)) return false;
  return true;
}

void Mlp::save(std::ostream& out) const {
  out << "cocktail-mlp v1\n";
  out << layers_.size() << '\n';
  out.precision(17);
  for (const auto& layer : layers_) {
    out << layer.w.rows() << ' ' << layer.w.cols() << ' '
        << to_string(layer.act) << '\n';
    for (std::size_t r = 0; r < layer.w.rows(); ++r) {
      for (std::size_t c = 0; c < layer.w.cols(); ++c) {
        if (c) out << ' ';
        out << layer.w(r, c);
      }
      out << '\n';
    }
    for (std::size_t i = 0; i < layer.b.size(); ++i) {
      if (i) out << ' ';
      out << layer.b[i];
    }
    out << '\n';
  }
}

void Mlp::save_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("Mlp::save_file: cannot open " + path);
  save(out);
}

Mlp Mlp::load(std::istream& in) {
  std::string header, version;
  in >> header >> version;
  if (header != "cocktail-mlp" || version != "v1")
    throw std::runtime_error("Mlp::load: bad header");
  std::size_t num_layers = 0;
  in >> num_layers;
  if (!in || num_layers == 0)
    throw std::runtime_error("Mlp::load: truncated stream");
  Mlp net;
  net.layers_.reserve(num_layers);
  for (std::size_t l = 0; l < num_layers; ++l) {
    std::size_t rows = 0, cols = 0;
    std::string act_name;
    in >> rows >> cols >> act_name;
    if (!in || rows == 0 || cols == 0)
      throw std::runtime_error("Mlp::load: truncated stream");
    DenseLayer layer;
    try {
      layer.act = activation_from_string(act_name);
    } catch (const std::invalid_argument&) {
      // Normalize to the load-failure type: a half-read token from a
      // truncated stream lands here too.
      throw std::runtime_error("Mlp::load: unknown activation '" + act_name +
                               "'");
    }
    layer.w = la::Matrix(rows, cols);
    for (auto& v : layer.w.data()) in >> v;
    layer.b = la::zeros(rows);
    for (auto& v : layer.b) in >> v;
    if (!in) throw std::runtime_error("Mlp::load: truncated stream");
    // A layer must consume exactly what the previous one produced; a file
    // whose shapes do not chain would crash (or worse, silently mis-index)
    // at inference time.
    if (l > 0 && cols != net.layers_.back().w.rows())
      throw std::runtime_error("Mlp::load: layer dimension mismatch");
    if (!layer.w.all_finite() || !la::all_finite(layer.b))
      throw std::runtime_error("Mlp::load: non-finite parameter");
    net.layers_.push_back(std::move(layer));
  }
  return net;
}

Mlp Mlp::load_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("Mlp::load_file: cannot open " + path);
  return load(in);
}

}  // namespace cocktail::nn
