// First-order optimizers over Mlp parameters (and raw parameter vectors,
// e.g. the PPO policy's state-independent log-std).
#pragma once

#include "la/vec.h"
#include "nn/mlp.h"

namespace cocktail::nn {

/// Plain SGD with optional momentum.
class Sgd {
 public:
  explicit Sgd(double learning_rate, double momentum = 0.0);

  /// Applies one descent step `p -= lr * g` (with momentum buffer if set).
  void step(Mlp& net, const Gradients& grads);

  [[nodiscard]] double learning_rate() const noexcept { return lr_; }
  void set_learning_rate(double lr) noexcept { lr_ = lr; }

 private:
  double lr_;
  double momentum_;
  Gradients velocity_;
  bool initialized_ = false;
};

/// Adam (Kingma & Ba) with bias correction.
class Adam {
 public:
  explicit Adam(double learning_rate, double beta1 = 0.9, double beta2 = 0.999,
                double epsilon = 1e-8);

  /// One descent step on the network using accumulated `grads`.
  void step(Mlp& net, const Gradients& grads);

  /// Resets moment estimates (e.g. when reusing the optimizer on a new net).
  void reset();

  [[nodiscard]] double learning_rate() const noexcept { return lr_; }
  void set_learning_rate(double lr) noexcept { lr_ = lr; }
  [[nodiscard]] long step_count() const noexcept { return t_; }

 private:
  double lr_, beta1_, beta2_, eps_;
  long t_ = 0;
  Gradients m_, v_;
  bool initialized_ = false;
};

/// Adam over a flat parameter vector (for non-network parameters).
class AdamVec {
 public:
  explicit AdamVec(double learning_rate, double beta1 = 0.9,
                   double beta2 = 0.999, double epsilon = 1e-8);

  void step(la::Vec& params, const la::Vec& grads);
  void reset();

 private:
  double lr_, beta1_, beta2_, eps_;
  long t_ = 0;
  la::Vec m_, v_;
};

}  // namespace cocktail::nn
