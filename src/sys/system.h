// Discrete-time feedback system interface (paper Eq. (1)):
//
//   s(t+1) = f(s(t), u(t), ω(t), δ(t))
//
// with safe region X, initial set X0, control bound U, and bounded external
// disturbance ω.  The state perturbation δ (adversarial attack or
// measurement noise) is *not* part of the plant: per the paper it perturbs
// the controller's observation of s, so it lives in src/attack and is
// applied by the rollout loop.
#pragma once

#include <limits>
#include <memory>
#include <string>

#include "la/matrix.h"
#include "la/vec.h"
#include "util/rng.h"

namespace cocktail::sys {

/// Axis-aligned box (X, X0, U, Ω are all boxes in the paper).
struct Box {
  la::Vec lo;
  la::Vec hi;

  Box() = default;
  Box(la::Vec lower, la::Vec upper);
  /// Symmetric box [-half_width, half_width]^dim.
  static Box symmetric(std::size_t dim, double half_width);
  /// Unbounded interval marker for dimensions without a safety constraint.
  static constexpr double kUnbounded = std::numeric_limits<double>::infinity();

  [[nodiscard]] std::size_t dim() const noexcept { return lo.size(); }
  [[nodiscard]] bool contains(const la::Vec& point) const;
  /// Uniform sample; every dimension must be bounded.
  [[nodiscard]] la::Vec sample(util::Rng& rng) const;
  [[nodiscard]] la::Vec center() const;
  [[nodiscard]] la::Vec half_widths() const;
  /// True if every dimension is finite.
  [[nodiscard]] bool bounded() const;
};

class System {
 public:
  virtual ~System() = default;

  [[nodiscard]] virtual std::string name() const = 0;
  [[nodiscard]] virtual std::size_t state_dim() const = 0;
  [[nodiscard]] virtual std::size_t control_dim() const = 0;
  /// Dimension of the external disturbance ω (0 if the plant has none).
  [[nodiscard]] virtual std::size_t disturbance_dim() const { return 0; }

  /// One dynamics step.  `omega` must have disturbance_dim() entries
  /// (empty when the plant is undisturbed).  `u` is used as passed — the
  /// caller is responsible for clipping to the control bounds.
  [[nodiscard]] virtual la::Vec step(const la::Vec& s, const la::Vec& u,
                                     const la::Vec& omega) const = 0;

  /// Safe region X.  Unconstrained dimensions use ±Box::kUnbounded.
  [[nodiscard]] virtual Box safe_region() const = 0;
  /// Initial state set X0 ⊆ X.
  [[nodiscard]] virtual Box initial_set() const = 0;
  /// Control bound U = [U_inf, U_sup].
  [[nodiscard]] virtual Box control_bounds() const = 0;
  /// Disturbance bound Ω (empty box when disturbance_dim() == 0).
  [[nodiscard]] virtual Box disturbance_bounds() const { return Box{}; }
  /// Bounded region used for uniform state sampling (distillation dataset,
  /// Lipschitz estimation).  Defaults to X; systems whose X has unbounded
  /// dimensions override this with a physically reasonable box.
  [[nodiscard]] virtual Box sampling_region() const { return safe_region(); }

  /// Episodic control length T from the paper's experimental setup.
  [[nodiscard]] virtual int horizon() const = 0;
  /// Sampling period τ.
  [[nodiscard]] virtual double dt() const = 0;

  /// True if the state is inside the safe region X.
  [[nodiscard]] bool is_safe(const la::Vec& s) const;

  [[nodiscard]] la::Vec sample_initial_state(util::Rng& rng) const;
  /// Uniform draw from Ω, or an empty vector if there is no disturbance.
  [[nodiscard]] la::Vec sample_disturbance(util::Rng& rng) const;
  /// clip(u, U_inf, U_sup) — the feasibility projection of paper Eq. (4).
  [[nodiscard]] la::Vec clip_control(const la::Vec& u) const;

  /// Linearization s(t+1) ≈ A s + B u around the origin, when available
  /// (used by the LQR / model-based experts).
  [[nodiscard]] virtual bool has_linearization() const { return false; }
  /// Fills A (n x n) and B (n x m); throws std::logic_error if
  /// has_linearization() is false.
  virtual void linearize(la::Matrix& a, la::Matrix& b) const;
};

using SystemPtr = std::shared_ptr<const System>;

}  // namespace cocktail::sys
