#include "sys/system.h"

#include <cmath>
#include <stdexcept>

namespace cocktail::sys {

Box::Box(la::Vec lower, la::Vec upper) : lo(std::move(lower)), hi(std::move(upper)) {
  if (lo.size() != hi.size())
    throw std::invalid_argument("Box: lo/hi dimension mismatch");
  for (std::size_t i = 0; i < lo.size(); ++i)
    if (lo[i] > hi[i]) throw std::invalid_argument("Box: lo > hi");
}

Box Box::symmetric(std::size_t dim, double half_width) {
  return Box(la::constant(dim, -half_width), la::constant(dim, half_width));
}

bool Box::contains(const la::Vec& point) const {
  if (point.size() != dim())
    throw std::invalid_argument("Box::contains: dimension mismatch");
  for (std::size_t i = 0; i < point.size(); ++i) {
    // The exclusion-direction comparison below is NaN-blind (both clauses
    // are false for NaN), so reject non-finite components first: a
    // non-finite coordinate is never contained, even in an unbounded
    // (±kUnbounded) dimension.
    if (!std::isfinite(point[i])) return false;
    if (point[i] < lo[i] || point[i] > hi[i]) return false;
  }
  return true;
}

la::Vec Box::sample(util::Rng& rng) const {
  if (!bounded())
    throw std::logic_error("Box::sample: box has unbounded dimensions");
  la::Vec point(dim());
  for (std::size_t i = 0; i < dim(); ++i) point[i] = rng.uniform(lo[i], hi[i]);
  return point;
}

la::Vec Box::center() const {
  la::Vec c(dim());
  for (std::size_t i = 0; i < dim(); ++i) c[i] = 0.5 * (lo[i] + hi[i]);
  return c;
}

la::Vec Box::half_widths() const {
  la::Vec w(dim());
  for (std::size_t i = 0; i < dim(); ++i) w[i] = 0.5 * (hi[i] - lo[i]);
  return w;
}

bool Box::bounded() const {
  for (std::size_t i = 0; i < dim(); ++i)
    if (!std::isfinite(lo[i]) || !std::isfinite(hi[i])) return false;
  return true;
}

bool System::is_safe(const la::Vec& s) const {
  return safe_region().contains(s);
}

la::Vec System::sample_initial_state(util::Rng& rng) const {
  return initial_set().sample(rng);
}

la::Vec System::sample_disturbance(util::Rng& rng) const {
  if (disturbance_dim() == 0) return {};
  return disturbance_bounds().sample(rng);
}

la::Vec System::clip_control(const la::Vec& u) const {
  const Box bounds = control_bounds();
  return la::clip(u, bounds.lo, bounds.hi);
}

void System::linearize(la::Matrix&, la::Matrix&) const {
  throw std::logic_error("System::linearize: not available for " + name());
}

}  // namespace cocktail::sys
