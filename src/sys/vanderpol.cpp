#include "sys/vanderpol.h"

#include <stdexcept>

namespace cocktail::sys {

VanDerPol::VanDerPol(VanDerPolParams params) : params_(params) {}

la::Vec VanDerPol::step(const la::Vec& s, const la::Vec& u,
                        const la::Vec& omega) const {
  if (s.size() != 2 || u.size() != 1)
    throw std::invalid_argument("VanDerPol::step: bad dimensions");
  const double w = omega.empty() ? 0.0 : omega[0];
  const auto next = vanderpol_step<double>({s[0], s[1]}, u[0], w, params_.tau);
  return {next[0], next[1]};
}

Box VanDerPol::safe_region() const {
  return Box::symmetric(2, params_.state_bound);
}

Box VanDerPol::initial_set() const { return safe_region(); }

Box VanDerPol::control_bounds() const {
  return Box::symmetric(1, params_.control_bound);
}

Box VanDerPol::disturbance_bounds() const {
  return Box::symmetric(1, params_.disturbance_bound);
}

void VanDerPol::linearize(la::Matrix& a, la::Matrix& b) const {
  // Around the origin: d(s1)/dt = s2, d(s2)/dt = s2 - s1 + u.
  const double tau = params_.tau;
  a = la::Matrix(2, 2);
  a(0, 0) = 1.0;
  a(0, 1) = tau;
  a(1, 0) = -tau;
  a(1, 1) = 1.0 + tau;
  b = la::Matrix(2, 1);
  b(1, 0) = tau;
}

}  // namespace cocktail::sys
