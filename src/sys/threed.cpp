#include "sys/threed.h"

#include <stdexcept>

namespace cocktail::sys {

ThreeD::ThreeD(ThreeDParams params) : params_(params) {}

la::Vec ThreeD::step(const la::Vec& s, const la::Vec& u,
                     const la::Vec& omega) const {
  if (s.size() != 3 || u.size() != 1)
    throw std::invalid_argument("ThreeD::step: bad dimensions");
  (void)omega;  // The paper states no external disturbance for this plant.
  const auto next = threed_step<double>({s[0], s[1], s[2]}, u[0], params_.tau);
  return {next[0], next[1], next[2]};
}

Box ThreeD::safe_region() const { return Box::symmetric(3, params_.state_bound); }

Box ThreeD::initial_set() const { return safe_region(); }

Box ThreeD::control_bounds() const {
  return Box::symmetric(1, params_.control_bound);
}

void ThreeD::linearize(la::Matrix& a, la::Matrix& b) const {
  // Triple integrator: the z² term vanishes at the origin.
  const double tau = params_.tau;
  a = la::Matrix::identity(3);
  a(0, 1) = tau;
  a(1, 2) = tau;
  b = la::Matrix(3, 1);
  b(2, 0) = tau;
}

}  // namespace cocktail::sys
