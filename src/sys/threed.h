// 3D polynomial system (example 15 of Sassi et al. [25]):
//
//   ẋ = y + 0.5 z²,  ẏ = z,  ż = u
//
// discretized by forward Euler with τ = 0.05.  X = X0 = [-0.5, 0.5]³,
// u ∈ [-10, 10], T = 100, no external disturbance is stated in the paper.
#pragma once

#include <array>

#include "sys/system.h"

namespace cocktail::sys {

struct ThreeDParams {
  double tau = 0.05;
  double control_bound = 10.0;
  double state_bound = 0.5;
  int horizon = 100;
};

/// One Euler step over any scalar ring (double or verify::Interval).
template <typename S>
[[nodiscard]] std::array<S, 3> threed_step(const std::array<S, 3>& s,
                                           const S& u, double tau) {
  std::array<S, 3> next;
  next[0] = s[0] + (s[1] + s[2] * s[2] * 0.5) * tau;
  next[1] = s[1] + s[2] * tau;
  next[2] = s[2] + u * tau;
  return next;
}

class ThreeD final : public System {
 public:
  explicit ThreeD(ThreeDParams params = {});

  [[nodiscard]] std::string name() const override { return "threed"; }
  [[nodiscard]] std::size_t state_dim() const override { return 3; }
  [[nodiscard]] std::size_t control_dim() const override { return 1; }

  [[nodiscard]] la::Vec step(const la::Vec& s, const la::Vec& u,
                             const la::Vec& omega) const override;

  [[nodiscard]] Box safe_region() const override;
  [[nodiscard]] Box initial_set() const override;
  [[nodiscard]] Box control_bounds() const override;
  [[nodiscard]] int horizon() const override { return params_.horizon; }
  [[nodiscard]] double dt() const override { return params_.tau; }

  [[nodiscard]] bool has_linearization() const override { return true; }
  void linearize(la::Matrix& a, la::Matrix& b) const override;

  [[nodiscard]] const ThreeDParams& params() const noexcept { return params_; }

 private:
  ThreeDParams params_;
};

}  // namespace cocktail::sys
