// Factory for the paper's three test systems by name.
#pragma once

#include <string>
#include <vector>

#include "sys/system.h"

namespace cocktail::sys {

/// Builds "vanderpol", "threed", or "cartpole" with the paper's parameters.
/// Throws std::invalid_argument for unknown names.
[[nodiscard]] SystemPtr make_system(const std::string& name);

/// Names accepted by make_system, in the paper's presentation order.
[[nodiscard]] const std::vector<std::string>& system_names();

}  // namespace cocktail::sys
