#include "sys/cartpole.h"

#include <stdexcept>

namespace cocktail::sys {

CartPole::CartPole(CartPoleParams params) : params_(params) {}

la::Vec CartPole::step(const la::Vec& s, const la::Vec& u,
                       const la::Vec& omega) const {
  if (s.size() != 4 || u.size() != 1)
    throw std::invalid_argument("CartPole::step: bad dimensions");
  (void)omega;  // No external disturbance stated in the paper.
  const auto next =
      cartpole_step<double>({s[0], s[1], s[2], s[3]}, u[0], params_);
  return {next[0], next[1], next[2], next[3]};
}

Box CartPole::safe_region() const {
  la::Vec lo = {-params_.position_bound, -Box::kUnbounded,
                -params_.angle_bound, -Box::kUnbounded};
  la::Vec hi = {params_.position_bound, Box::kUnbounded, params_.angle_bound,
                Box::kUnbounded};
  return Box(std::move(lo), std::move(hi));
}

Box CartPole::initial_set() const {
  return Box::symmetric(4, params_.initial_bound);
}

Box CartPole::control_bounds() const {
  return Box::symmetric(1, params_.control_bound);
}

Box CartPole::sampling_region() const {
  const double v = params_.sampling_velocity_bound;
  la::Vec lo = {-params_.position_bound, -v, -params_.angle_bound, -v};
  la::Vec hi = {params_.position_bound, v, params_.angle_bound, v};
  return Box(std::move(lo), std::move(hi));
}

void CartPole::linearize(la::Matrix& a, la::Matrix& b) const {
  // Small-angle linearization around the upright equilibrium.
  const double tau = params_.tau;
  const double mt = params_.mass_total();
  const double mp = params_.mass_pole;
  const double l = params_.pole_length;
  const double g = params_.gravity;
  const double denom = l * (4.0 / 3.0 - mp / mt);
  // theta_acc ≈ (g θ − u/mt) / denom;  s_acc ≈ u/mt − (mp l / mt) theta_acc.
  const double dtheta_dth = g / denom;
  const double dtheta_du = -1.0 / (mt * denom);
  const double dsacc_dth = -(mp * l / mt) * dtheta_dth;
  const double dsacc_du = 1.0 / mt - (mp * l / mt) * dtheta_du;
  a = la::Matrix::identity(4);
  a(0, 1) = tau;
  a(1, 2) = tau * dsacc_dth;
  a(2, 3) = tau;
  a(3, 2) = tau * dtheta_dth;
  b = la::Matrix(4, 1);
  b(1, 0) = tau * dsacc_du;
  b(3, 0) = tau * dtheta_du;
}

}  // namespace cocktail::sys
