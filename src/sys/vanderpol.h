// Van der Pol oscillator (paper Eq. (5)):
//
//   s1(t+1) = s1 + τ s2
//   s2(t+1) = s2 + τ [(1 - s1²) s2 - s1 + u] + ω
//
// X = X0 = [-2, 2]², u ∈ [-20, 20], ω ~ U[-0.05, 0.05], τ = 0.05, T = 100.
//
// The dynamics step is a template over the scalar type so the verification
// substrate can evaluate it with interval arithmetic (natural inclusion)
// using exactly the same expression the simulator runs with doubles.
#pragma once

#include <array>

#include "sys/system.h"

namespace cocktail::sys {

struct VanDerPolParams {
  double tau = 0.05;
  double control_bound = 20.0;
  double disturbance_bound = 0.05;
  double state_bound = 2.0;
  int horizon = 100;
};

/// One Euler step of the Van der Pol dynamics over any ring-like scalar
/// (double or verify::Interval).  `w` enters only the s2 update, as in the
/// paper.
template <typename S>
[[nodiscard]] std::array<S, 2> vanderpol_step(const std::array<S, 2>& s,
                                              const S& u, const S& w,
                                              double tau) {
  const S one(1.0);
  std::array<S, 2> next;
  next[0] = s[0] + s[1] * tau;
  next[1] = s[1] + ((one - s[0] * s[0]) * s[1] - s[0] + u) * tau + w;
  return next;
}

class VanDerPol final : public System {
 public:
  explicit VanDerPol(VanDerPolParams params = {});

  [[nodiscard]] std::string name() const override { return "vanderpol"; }
  [[nodiscard]] std::size_t state_dim() const override { return 2; }
  [[nodiscard]] std::size_t control_dim() const override { return 1; }
  [[nodiscard]] std::size_t disturbance_dim() const override { return 1; }

  [[nodiscard]] la::Vec step(const la::Vec& s, const la::Vec& u,
                             const la::Vec& omega) const override;

  [[nodiscard]] Box safe_region() const override;
  [[nodiscard]] Box initial_set() const override;
  [[nodiscard]] Box control_bounds() const override;
  [[nodiscard]] Box disturbance_bounds() const override;
  [[nodiscard]] int horizon() const override { return params_.horizon; }
  [[nodiscard]] double dt() const override { return params_.tau; }

  [[nodiscard]] bool has_linearization() const override { return true; }
  void linearize(la::Matrix& a, la::Matrix& b) const override;

  [[nodiscard]] const VanDerPolParams& params() const noexcept {
    return params_;
  }

 private:
  VanDerPolParams params_;
};

}  // namespace cocktail::sys
