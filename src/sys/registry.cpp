#include "sys/registry.h"

#include <stdexcept>

#include "sys/cartpole.h"
#include "sys/threed.h"
#include "sys/vanderpol.h"

namespace cocktail::sys {

SystemPtr make_system(const std::string& name) {
  if (name == "vanderpol") return std::make_shared<VanDerPol>();
  if (name == "threed") return std::make_shared<ThreeD>();
  if (name == "cartpole") return std::make_shared<CartPole>();
  throw std::invalid_argument("make_system: unknown system '" + name + "'");
}

const std::vector<std::string>& system_names() {
  // Immutable after its (language-serialized) magic-static initialization,
  // so the returned reference is safe to read from any thread.
  static const std::vector<std::string> names = {"vanderpol", "threed",
                                                 "cartpole"};
  return names;
}

}  // namespace cocktail::sys
