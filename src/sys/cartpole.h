// Cartpole (the paper's third test system).
//
// The paper's typeset equations are the standard Barto/Sutton cartpole in
// semi-implicit-free Euler form with the paper's constants
// m_c = 1, m_p = 0.1, m_t = 1.1, g = 9.8, l = 1, τ = 0.02, T = 200:
//
//   ψ    = (u + m_p l s4² sin s3) / m_t
//   θacc = (g sin s3 − cos s3 · ψ) / (l (4/3 − m_p cos² s3 / m_t))
//   sacc = ψ − m_p l θacc cos s3 / m_t
//
//   s1 += τ s2;  s2 += τ sacc;  s3 += τ s4;  s4 += τ θacc
//
// X = { s : s1 ∈ [-2.4, 2.4], s3 ∈ [-0.209, 0.209] } (s2, s4 unbounded),
// X0 = [-0.2, 0.2]⁴.  The paper does not state a control bound; we use the
// conventional continuous-cartpole bound u ∈ [-10, 10] (see DESIGN.md §7).
#pragma once

#include <array>
#include <cmath>

#include "sys/system.h"

namespace cocktail::sys {

struct CartPoleParams {
  double tau = 0.02;
  double mass_cart = 1.0;
  double mass_pole = 0.1;
  double gravity = 9.8;
  double pole_length = 1.0;
  double control_bound = 10.0;
  double position_bound = 2.4;
  double angle_bound = 0.209;
  double initial_bound = 0.2;
  /// Velocity bound used only for the (bounded) sampling region.
  double sampling_velocity_bound = 2.5;
  int horizon = 200;

  [[nodiscard]] double mass_total() const { return mass_cart + mass_pole; }
};

/// One Euler step over any scalar supporting +,-,*,/ and sin/cos (found by
/// ADL, so verify::Interval works).  State: (x, ẋ, θ, θ̇).
template <typename S>
[[nodiscard]] std::array<S, 4> cartpole_step(const std::array<S, 4>& s,
                                             const S& u,
                                             const CartPoleParams& p) {
  using std::cos;
  using std::sin;
  const double mt = p.mass_total();
  const double ml = p.mass_pole * p.pole_length;
  const S sin3 = sin(s[2]);
  const S cos3 = cos(s[2]);
  const S psi = (u + sin3 * (s[3] * s[3]) * ml) * (1.0 / mt);
  const S denom =
      (cos3 * cos3) * (-p.mass_pole / mt) + (4.0 / 3.0);
  const S theta_acc = (sin3 * p.gravity - cos3 * psi) * (1.0 / p.pole_length) / denom;
  const S s_acc = psi - cos3 * theta_acc * (ml / mt);
  std::array<S, 4> next;
  next[0] = s[0] + s[1] * p.tau;
  next[1] = s[1] + s_acc * p.tau;
  next[2] = s[2] + s[3] * p.tau;
  next[3] = s[3] + theta_acc * p.tau;
  return next;
}

class CartPole final : public System {
 public:
  explicit CartPole(CartPoleParams params = {});

  [[nodiscard]] std::string name() const override { return "cartpole"; }
  [[nodiscard]] std::size_t state_dim() const override { return 4; }
  [[nodiscard]] std::size_t control_dim() const override { return 1; }

  [[nodiscard]] la::Vec step(const la::Vec& s, const la::Vec& u,
                             const la::Vec& omega) const override;

  [[nodiscard]] Box safe_region() const override;
  [[nodiscard]] Box initial_set() const override;
  [[nodiscard]] Box control_bounds() const override;
  [[nodiscard]] Box sampling_region() const override;
  [[nodiscard]] int horizon() const override { return params_.horizon; }
  [[nodiscard]] double dt() const override { return params_.tau; }

  [[nodiscard]] bool has_linearization() const override { return true; }
  void linearize(la::Matrix& a, la::Matrix& b) const override;

  [[nodiscard]] const CartPoleParams& params() const noexcept {
    return params_;
  }

 private:
  CartPoleParams params_;
};

}  // namespace cocktail::sys
