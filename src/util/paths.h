// Locations for cached trained models and bench output artifacts.
//
// Benches share trained experts/policies through the model cache so the
// whole `for b in build/bench/*` loop does not retrain the same networks.
// Override with the COCKTAIL_MODEL_DIR / COCKTAIL_OUT_DIR environment
// variables.
#pragma once

#include <string>

namespace cocktail::util {

/// Directory for serialized networks (created on demand).
[[nodiscard]] std::string model_dir();

/// Directory for bench CSV/figure output (created on demand).
[[nodiscard]] std::string output_dir();

/// Ensures a directory exists; returns the path.  Throws on failure.
const std::string& ensure_dir(const std::string& path);

/// True if a regular file exists at `path`.
[[nodiscard]] bool file_exists(const std::string& path);

}  // namespace cocktail::util
