// Locations for cached trained models and bench output artifacts.
//
// Benches share trained experts/policies through the model cache so the
// whole `for b in build/bench/*` loop does not retrain the same networks.
// Override with the COCKTAIL_MODEL_DIR / COCKTAIL_OUT_DIR environment
// variables.
#pragma once

#include <cstdint>
#include <string>

namespace cocktail::util {

/// Directory for serialized networks (created on demand).
[[nodiscard]] std::string model_dir();

/// Format/RNG-stream generation of the model cache.  Bump it whenever a
/// change makes previously cached artifacts non-reproducible or unreadable —
/// a serialization format change, or a change to any RNG stream that feeds
/// training (the stale-cache breaks PRs 2-4 disclosed) — so old files are
/// simply never matched again instead of requiring a manual `rm`.  The
/// current value corresponds to the PR 6 fixed accumulation schedule of
/// the blocked LA backend (la/kernel_config.h): every matvec/GEMM
/// reduction reorders its FP sums vs the v4 flat loops, so all trained
/// nets shift in the low-order bits.  Changing any schedule constant
/// requires another bump.
inline constexpr int kModelCacheVersion = 5;

/// Canonical cache filename for a trained artifact:
///   <model_dir()>/<system>_<kind>_v<kModelCacheVersion>_seed<seed>.<ext>
/// Every producer and consumer of the `cocktail_models` cache (pipeline
/// stages, expert training, the serving runtime) must build paths through
/// this helper so a version bump invalidates all of them at once.
[[nodiscard]] std::string model_cache_path(const std::string& system_name,
                                           const std::string& kind,
                                           std::uint64_t seed,
                                           const std::string& ext);

/// Directory for bench CSV/figure output (created on demand).
[[nodiscard]] std::string output_dir();

/// Ensures a directory exists; returns the path.  Throws on failure.
const std::string& ensure_dir(const std::string& path);

/// True if a regular file exists at `path`.
[[nodiscard]] bool file_exists(const std::string& path);

}  // namespace cocktail::util
