// Minimal leveled logger.
//
// The library is quiet by default (kWarn); benches and examples raise the
// level to kInfo for progress reporting.  Output goes to stderr so CSV/table
// rows on stdout stay machine-readable.
//
// Thread-safety contract: every entry point is callable from any thread.
// The level threshold is an atomic (callers that race a set_log_level only
// risk dropping/keeping a borderline message, never corruption), and
// log_line serializes whole lines through
// one internal util::Mutex so concurrent workers never interleave
// characters (see logging.cpp).  LogStream instances are stack-local and
// unshared, so they need no locks of their own.
#pragma once

#include <sstream>
#include <string>

namespace cocktail::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global log threshold; messages below it are dropped.
void set_log_level(LogLevel level) noexcept;
[[nodiscard]] LogLevel log_level() noexcept;

/// Emits one line (with level tag and elapsed wall time) to stderr.
void log_line(LogLevel level, const std::string& message);

namespace detail {

class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;
  ~LogStream() { log_line(level_, stream_.str()); }

  template <typename T>
  LogStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace detail

}  // namespace cocktail::util

#define COCKTAIL_LOG(level) ::cocktail::util::detail::LogStream(level)
#define COCKTAIL_DEBUG COCKTAIL_LOG(::cocktail::util::LogLevel::kDebug)
#define COCKTAIL_INFO COCKTAIL_LOG(::cocktail::util::LogLevel::kInfo)
#define COCKTAIL_WARN COCKTAIL_LOG(::cocktail::util::LogLevel::kWarn)
#define COCKTAIL_ERROR COCKTAIL_LOG(::cocktail::util::LogLevel::kError)
