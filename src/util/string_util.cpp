#include "util/string_util.h"

#include <cstdarg>
#include <cstdio>

namespace cocktail::util {

std::vector<std::string> split(const std::string& text, char delimiter) {
  std::vector<std::string> parts;
  std::string current;
  for (char c : text) {
    if (c == delimiter) {
      parts.push_back(current);
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  parts.push_back(current);
  return parts;
}

std::string trim(const std::string& text) {
  const auto first = text.find_first_not_of(" \t\r\n");
  if (first == std::string::npos) return "";
  const auto last = text.find_last_not_of(" \t\r\n");
  return text.substr(first, last - first + 1);
}

bool starts_with(const std::string& text, const std::string& prefix) {
  return text.size() >= prefix.size() &&
         text.compare(0, prefix.size(), prefix) == 0;
}

std::string format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  if (needed < 0) {
    va_end(args_copy);
    return "";
  }
  std::string out(static_cast<std::size_t>(needed), '\0');
  std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  va_end(args_copy);
  return out;
}

std::string pad(const std::string& text, std::size_t width) {
  if (text.size() >= width) return text.substr(0, width);
  return text + std::string(width - text.size(), ' ');
}

}  // namespace cocktail::util
