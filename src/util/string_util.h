// String helpers shared by serialization and bench table printers.
#pragma once

#include <string>
#include <vector>

namespace cocktail::util {

/// Splits on a delimiter; empty fields are preserved.
[[nodiscard]] std::vector<std::string> split(const std::string& text,
                                             char delimiter);

/// Strips ASCII whitespace from both ends.
[[nodiscard]] std::string trim(const std::string& text);

/// True if `text` begins with `prefix`.
[[nodiscard]] bool starts_with(const std::string& text,
                               const std::string& prefix);

/// printf-style formatting into std::string.
[[nodiscard]] std::string format(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Pads/truncates to a fixed width (left-aligned) for table printing.
[[nodiscard]] std::string pad(const std::string& text, std::size_t width);

}  // namespace cocktail::util
