#include "util/csv.h"

#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace cocktail::util {

std::string format_number(double value) {
  if (std::isnan(value)) return "nan";
  if (std::isinf(value)) return value > 0 ? "inf" : "-inf";
  char buf[64];
  // %.12g round-trips everything we log while trimming trailing zeros.
  std::snprintf(buf, sizeof(buf), "%.12g", value);
  return buf;
}

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& header)
    : path_(path), out_(path), arity_(header.size()) {
  if (!out_) throw std::runtime_error("CsvWriter: cannot open " + path);
  for (std::size_t i = 0; i < header.size(); ++i) {
    if (i) out_ << ',';
    out_ << header[i];
  }
  out_ << '\n';
}

void CsvWriter::row(const std::vector<double>& values) {
  if (values.size() != arity_)
    throw std::invalid_argument("CsvWriter: row arity mismatch");
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i) out_ << ',';
    out_ << format_number(values[i]);
  }
  out_ << '\n';
  ++rows_;
}

void CsvWriter::row_text(const std::vector<std::string>& values) {
  if (values.size() != arity_)
    throw std::invalid_argument("CsvWriter: row arity mismatch");
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i) out_ << ',';
    const bool needs_quote = values[i].find(',') != std::string::npos;
    if (needs_quote) out_ << '"' << values[i] << '"';
    else out_ << values[i];
  }
  out_ << '\n';
  ++rows_;
}

}  // namespace cocktail::util
