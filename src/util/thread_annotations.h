// Portable Clang thread-safety-analysis annotations.
//
// The serving and training layers hand out certificates whose soundness
// depends on locking discipline (ROADMAP: "verify the artifact, not the
// intent").  These macros let the compiler machine-check that discipline:
// under clang, `-Wthread-safety` (promoted to an error by the CI entry)
// rejects any access to a COCKTAIL_GUARDED_BY member without the named
// capability held and any lock/unlock sequence that disagrees with the
// ACQUIRE/RELEASE contracts.  Under every other compiler the macros expand
// to nothing, so the annotations are free documentation.
//
// Use util::Mutex / util::MutexLock / util::CondVar (util/mutex.h) instead
// of the std primitives for any new lock: the std types carry no
// annotations, so locking through them is invisible to the analysis.
//
// Reference: https://clang.llvm.org/docs/ThreadSafetyAnalysis.html
#pragma once

#if defined(__clang__)
#define COCKTAIL_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define COCKTAIL_THREAD_ANNOTATION(x)  // no-op off clang
#endif

/// Marks a class as a lockable capability (e.g. a mutex type).
#define COCKTAIL_CAPABILITY(x) COCKTAIL_THREAD_ANNOTATION(capability(x))

/// Marks an RAII class whose lifetime acquires/releases a capability.
#define COCKTAIL_SCOPED_CAPABILITY COCKTAIL_THREAD_ANNOTATION(scoped_lockable)

/// Data member readable/writable only with the capability held.
#define COCKTAIL_GUARDED_BY(x) COCKTAIL_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member whose *pointee* is guarded by the capability.
#define COCKTAIL_PT_GUARDED_BY(x) COCKTAIL_THREAD_ANNOTATION(pt_guarded_by(x))

/// Declares the required lock-acquisition order between capabilities.
#define COCKTAIL_ACQUIRED_BEFORE(...) \
  COCKTAIL_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define COCKTAIL_ACQUIRED_AFTER(...) \
  COCKTAIL_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

/// The caller must hold the capability when calling (and still on return).
#define COCKTAIL_REQUIRES(...) \
  COCKTAIL_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// The function acquires the capability and does not release it.
#define COCKTAIL_ACQUIRE(...) \
  COCKTAIL_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// The function releases a capability the caller held.
#define COCKTAIL_RELEASE(...) \
  COCKTAIL_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// The function acquires the capability iff it returns `success`.
#define COCKTAIL_TRY_ACQUIRE(...) \
  COCKTAIL_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// The caller must NOT hold the capability (the function takes it itself;
/// calling with it held would self-deadlock a non-recursive mutex).
#define COCKTAIL_EXCLUDES(...) \
  COCKTAIL_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Runtime assertion that the capability is held (trusted by the analysis).
#define COCKTAIL_ASSERT_CAPABILITY(x) \
  COCKTAIL_THREAD_ANNOTATION(assert_capability(x))

/// The function returns a reference to the named capability.
#define COCKTAIL_RETURN_CAPABILITY(x) \
  COCKTAIL_THREAD_ANNOTATION(lock_returned(x))

/// Opts a function out of the analysis.  Reserve for code that is correct
/// for reasons the analysis cannot express (e.g. a condition-variable wait
/// that releases and reacquires the lock internally); say why at the site.
#define COCKTAIL_NO_THREAD_SAFETY_ANALYSIS \
  COCKTAIL_THREAD_ANNOTATION(no_thread_safety_analysis)
