#include "util/paths.h"

#include <cstdlib>
#include <filesystem>
#include <stdexcept>

namespace cocktail::util {
namespace {

std::string env_or(const char* name, const std::string& fallback) {
  // Called only from the magic-static initializers below (each runs once,
  // synchronized by the C++ guarantee); the library never calls setenv, so
  // the getenv data race clang-tidy worries about cannot occur.
  // NOLINTNEXTLINE(concurrency-mt-unsafe)
  const char* value = std::getenv(name);
  return (value != nullptr && *value != '\0') ? value : fallback;
}

}  // namespace

const std::string& ensure_dir(const std::string& path) {
  std::error_code ec;
  std::filesystem::create_directories(path, ec);
  if (ec && !std::filesystem::is_directory(path))
    throw std::runtime_error("ensure_dir: cannot create " + path + ": " +
                             ec.message());
  return path;
}

std::string model_dir() {
  // Thread-safety: the one mutable step (create_directories + env lookup)
  // runs inside a magic-static initializer, which the language serializes;
  // afterwards every caller copies an immutable string.  Concurrent
  // serve/train paths can therefore resolve cache paths lock-free.
  static const std::string dir =
      ensure_dir(env_or("COCKTAIL_MODEL_DIR", "cocktail_models"));
  return dir;
}

std::string model_cache_path(const std::string& system_name,
                             const std::string& kind, std::uint64_t seed,
                             const std::string& ext) {
  return model_dir() + "/" + system_name + "_" + kind + "_v" +
         std::to_string(kModelCacheVersion) + "_seed" + std::to_string(seed) +
         "." + ext;
}

std::string output_dir() {
  static const std::string dir =
      ensure_dir(env_or("COCKTAIL_OUT_DIR", "cocktail_out"));
  return dir;
}

bool file_exists(const std::string& path) {
  std::error_code ec;
  return std::filesystem::is_regular_file(path, ec);
}

}  // namespace cocktail::util
