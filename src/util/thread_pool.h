// Fixed-size worker pool for embarrassingly-parallel batches.
//
// The batched rollout engine (core/rollout.h) fans N independent closed-loop
// simulations across these workers; determinism is preserved because every
// parallel unit of work carries its own RNG stream, so scheduling order can
// never leak into results.  The pool is deliberately minimal: a mutex-guarded
// job queue, `submit` for one-off futures, and `parallel_for` for index
// batches in which the calling thread participates (so a pool is useful even
// on a single-core machine and `parallel_for` can never deadlock waiting on
// a saturated queue).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <type_traits>
#include <vector>

namespace cocktail::util {

class ThreadPool {
 public:
  /// `num_threads` <= 0 picks the hardware concurrency (at least 1).
  explicit ThreadPool(int num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads (excludes callers inside parallel_for).
  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueues a nullary callable; the future carries its result or
  /// exception.  Throws std::runtime_error after shutdown began.
  template <class F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> future = task->get_future();
    enqueue([task] { (*task)(); });
    return future;
  }

  /// Runs f(0), ..., f(n-1) across the workers plus the calling thread and
  /// blocks until every index completed.  Indices are claimed dynamically
  /// (atomic counter), so uneven per-index cost balances automatically.
  /// The first exception thrown by any f(i) is rethrown in the caller after
  /// in-flight indices drain; remaining unclaimed indices are skipped.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& f);

  /// Process-wide pool, lazily constructed.  Sized from the
  /// COCKTAIL_THREADS environment variable when set to a positive integer,
  /// otherwise from the hardware concurrency.
  static ThreadPool& shared();

 private:
  void enqueue(std::function<void()> job);
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> jobs_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

}  // namespace cocktail::util
