// Fixed-size worker pool for embarrassingly-parallel batches.
//
// The batched rollout engine (core/rollout.h) fans N independent closed-loop
// simulations across these workers; determinism is preserved because every
// parallel unit of work carries its own RNG stream, so scheduling order can
// never leak into results.  The pool is deliberately minimal: a mutex-guarded
// job queue, `submit` for one-off futures, and `parallel_for` for index
// batches in which the calling thread participates (so a pool is useful even
// on a single-core machine and `parallel_for` can never deadlock waiting on
// a saturated queue).
#pragma once

#include <algorithm>
#include <cstddef>
#include <functional>
#include <future>
#include <memory>
#include <queue>
#include <thread>
#include <type_traits>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace cocktail::util {

class ThreadPool {
 public:
  /// `num_threads` <= 0 picks the hardware concurrency (at least 1).
  explicit ThreadPool(int num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads (excludes callers inside parallel_for).
  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueues a nullary callable; the future carries its result or
  /// exception.  Throws std::runtime_error after shutdown began and
  /// std::logic_error when called from one of this pool's own workers:
  /// a worker that submits and then waits on the future can deadlock the
  /// pool (every worker blocked on work only a worker could run), so
  /// nested submission is rejected at the source.  Submitting to a
  /// *different* pool remains allowed.
  template <class F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> future = task->get_future();
    enqueue([task] { (*task)(); });
    return future;
  }

  /// Runs f(0), ..., f(n-1) across the workers plus the calling thread and
  /// blocks until every index completed.  Indices are claimed dynamically
  /// (atomic counter), so uneven per-index cost balances automatically.
  /// The first exception thrown by any f(i) is rethrown in the caller after
  /// in-flight indices drain; remaining unclaimed indices are skipped.
  /// Called from one of this pool's own workers (a nested batch), it
  /// degrades to running every index inline on that worker instead of
  /// enqueueing — same results, no queue interaction, no deadlock risk.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& f);

  /// True when the calling thread is one of this pool's workers.  The
  /// nested-submission guard: submit() throws and parallel_for() runs
  /// inline when this holds.
  [[nodiscard]] bool inside_worker() const noexcept;

  /// Deterministic parallel reduction over [0, n); see util::chunked_reduce
  /// (this is the pool-backed entry point).  Bitwise identical results for
  /// any worker count, even for non-associative (floating-point)
  /// accumulation, as long as `grain` is held fixed.
  template <class Make, class Body, class Merge>
  auto parallel_reduce(std::size_t n, std::size_t grain, Make&& make,
                       Body&& body, Merge&& merge)
      -> std::invoke_result_t<Make&>;

  /// Process-wide pool, lazily constructed.  Sized from the
  /// COCKTAIL_THREADS environment variable when set to a positive integer,
  /// otherwise from the hardware concurrency.
  static ThreadPool& shared();

 private:
  /// Takes mutex_ itself, so the caller must not hold it.
  void enqueue(std::function<void()> job) COCKTAIL_EXCLUDES(mutex_);
  void worker_loop();

  /// Immutable after the constructor returns (joined, never reassigned), so
  /// unguarded size() reads are safe.
  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> jobs_ COCKTAIL_GUARDED_BY(mutex_);
  Mutex mutex_;
  CondVar cv_;
  bool stopping_ COCKTAIL_GUARDED_BY(mutex_) = false;
};

// --- deterministic chunked reduction ---------------------------------------
//
// Floating-point addition is not associative, so a reduction whose shape
// depends on the worker count (or on dynamic scheduling) cannot be bitwise
// reproducible.  The recipe used by every parallel reduction in the library:
//   1. split [0, n) into fixed contiguous chunks of `grain` indices — the
//      chunking depends only on (n, grain), never on the worker count;
//   2. give each chunk its own accumulator from `make()` and fold the
//      chunk's indices into it in increasing order with `body(acc, i)`;
//   3. fold the chunk accumulators in increasing chunk order with
//      `merge(into, from)` on the calling thread.
// Only *which thread* runs a chunk varies with scheduling; the reduction
// tree is fixed, so the result is bitwise identical for any worker count,
// including the serial path (`pool == nullptr`), which runs the very same
// chunked tree inline.  Changing `grain` changes the tree and is the one
// knob that legitimately changes low-order bits.

/// The one dispatch rule shared by every chunked runner (chunked_reduce,
/// chunked_for, nn::ChunkedGradReducer): run chunk indices [0, chunks)
/// serially when there is no pool or only one chunk, on the pool otherwise.
/// Centralized so a future change (serial-fallback threshold, nested-pool
/// guard) cannot diverge between reducers.
template <class RunChunk>
void run_chunks(ThreadPool* pool, std::size_t chunks,
                const RunChunk& run_chunk) {
  if (pool == nullptr || chunks <= 1) {
    for (std::size_t c = 0; c < chunks; ++c) run_chunk(c);
  } else {
    pool->parallel_for(chunks, run_chunk);
  }
}

/// Runs the recipe above on `pool` (nullptr = serial, same tree).  `body`
/// must not touch shared mutable state; exceptions propagate per
/// ThreadPool::parallel_for semantics.
template <class Make, class Body, class Merge>
auto chunked_reduce(ThreadPool* pool, std::size_t n, std::size_t grain,
                    Make&& make, Body&& body, Merge&& merge)
    -> std::invoke_result_t<Make&> {
  using Acc = std::invoke_result_t<Make&>;
  if (grain == 0) grain = 1;
  if (n == 0) return make();
  const std::size_t chunks = (n + grain - 1) / grain;
  std::vector<Acc> partial;
  partial.reserve(chunks);
  for (std::size_t c = 0; c < chunks; ++c) partial.push_back(make());
  run_chunks(pool, chunks, [&](std::size_t c) {
    Acc& acc = partial[c];
    const std::size_t hi = std::min(n, (c + 1) * grain);
    for (std::size_t i = c * grain; i < hi; ++i) body(acc, i);
  });
  Acc result = std::move(partial.front());
  for (std::size_t c = 1; c < chunks; ++c) merge(result, partial[c]);
  return result;
}

template <class Make, class Body, class Merge>
auto ThreadPool::parallel_reduce(std::size_t n, std::size_t grain, Make&& make,
                                 Body&& body, Merge&& merge)
    -> std::invoke_result_t<Make&> {
  return chunked_reduce(this, n, grain, std::forward<Make>(make),
                        std::forward<Body>(body), std::forward<Merge>(merge));
}

/// Runs body(i) for i in [0, n) in fixed contiguous chunks of `grain`
/// indices on `pool` (nullptr = serial, same loop).  For pre-passes whose
/// per-index work writes only its own output slot: with disjoint writes
/// there is nothing to reduce, so scheduling cannot affect results no
/// matter the worker count.
template <class Body>
void chunked_for(ThreadPool* pool, std::size_t n, std::size_t grain,
                 const Body& body) {
  if (n == 0) return;
  if (grain == 0) grain = 1;
  run_chunks(pool, (n + grain - 1) / grain, [&](std::size_t c) {
    const std::size_t hi = std::min(n, (c + 1) * grain);
    for (std::size_t i = c * grain; i < hi; ++i) body(i);
  });
}

/// Resolves the `num_workers` convention shared by the batch APIs:
/// 0 (or negative) = the shared process-wide pool, 1 = serial
/// (`pool()` returns nullptr), k > 1 = a dedicated pool of k workers owned
/// by this scope.  Lets multi-batch callers (distillation, reachability)
/// resolve the pool once instead of per batch.
class WorkerScope {
 public:
  explicit WorkerScope(int num_workers) {
    if (num_workers == 1) return;
    if (num_workers <= 0) {
      pool_ = &ThreadPool::shared();
    } else {
      owned_ = std::make_unique<ThreadPool>(num_workers);
      pool_ = owned_.get();
    }
  }

  /// The resolved pool; nullptr means "run serially".
  [[nodiscard]] ThreadPool* pool() const noexcept { return pool_; }

 private:
  std::unique_ptr<ThreadPool> owned_;
  ThreadPool* pool_ = nullptr;
};

}  // namespace cocktail::util
