// Small CSV writer used by benches to dump figure data (control traces,
// invariant-set cells, reachable boxes) for plotting.
#pragma once

#include <fstream>
#include <initializer_list>
#include <string>
#include <vector>

namespace cocktail::util {

class CsvWriter {
 public:
  /// Opens `path` for writing and emits the header row.  Throws
  /// std::runtime_error if the file cannot be opened.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);

  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

  /// Appends one data row; must match the header arity.
  void row(const std::vector<double>& values);
  /// Mixed string/number row (strings are quoted if they contain commas).
  void row_text(const std::vector<std::string>& values);

  [[nodiscard]] const std::string& path() const { return path_; }
  [[nodiscard]] std::size_t rows_written() const { return rows_; }

 private:
  std::string path_;
  std::ofstream out_;
  std::size_t arity_;
  std::size_t rows_ = 0;
};

/// Formats a double with enough digits to round-trip but without noise
/// ("0.25" not "0.250000000000000").
[[nodiscard]] std::string format_number(double value);

}  // namespace cocktail::util
