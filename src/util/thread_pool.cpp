#include "util/thread_pool.h"

#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace cocktail::util {
namespace {

int env_thread_count() {
  // Read once at shared-pool construction; the library never calls setenv,
  // so the getenv data race clang-tidy worries about cannot occur.
  // NOLINTNEXTLINE(concurrency-mt-unsafe)
  const char* value = std::getenv("COCKTAIL_THREADS");
  if (value == nullptr || *value == '\0') return 0;
  const int parsed = std::atoi(value);
  return parsed > 0 ? parsed : 0;
}

std::size_t resolve_thread_count(int requested) {
  if (requested > 0) return static_cast<std::size_t>(requested);
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

/// Pool whose worker_loop is running on this thread (nullptr on non-worker
/// threads) — the nested-submission detector.  One level is enough: a
/// worker thread belongs to exactly one pool.
thread_local const ThreadPool* tl_worker_pool = nullptr;

}  // namespace

ThreadPool::ThreadPool(int num_threads) {
  const std::size_t count = resolve_thread_count(num_threads);
  workers_.reserve(count);
  for (std::size_t i = 0; i < count; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

bool ThreadPool::inside_worker() const noexcept {
  return tl_worker_pool == this;
}

void ThreadPool::enqueue(std::function<void()> job) {
  // A worker enqueueing into its own pool and waiting on the result is the
  // classic self-deadlock (ROADMAP's "nested-batch" hazard): with every
  // worker blocked the queue never drains.  Reject it at the source; the
  // nested-aware paths (parallel_for, run_chunks) never reach here.
  if (inside_worker())
    throw std::logic_error(
        "ThreadPool: nested submission from a pool worker (use parallel_for, "
        "which runs nested batches inline, or submit to a different pool)");
  {
    MutexLock lock(mutex_);
    if (stopping_)
      throw std::runtime_error("ThreadPool: submit after shutdown");
    jobs_.push(std::move(job));
  }
  cv_.notify_one();
}

void ThreadPool::worker_loop() {
  tl_worker_pool = this;
  for (;;) {
    std::function<void()> job;
    {
      MutexLock lock(mutex_);
      cv_.wait(lock, [this]() COCKTAIL_REQUIRES(mutex_) {
        return stopping_ || !jobs_.empty();
      });
      if (jobs_.empty()) return;  // stopping_ and drained.
      job = std::move(jobs_.front());
      jobs_.pop();
    }
    job();
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& f) {
  if (n == 0) return;

  // Nested batch from one of our own workers: run it inline.  The worker
  // would have driven part of the batch anyway and cannot safely enqueue
  // into its own queue (see enqueue); results are identical because index
  // order never affects them (parallel_for bodies are independent by
  // contract).
  if (inside_worker()) {
    for (std::size_t i = 0; i < n; ++i) f(i);
    return;
  }

  // Shared by the caller and every enqueued driver; shared_ptr keeps it
  // alive for drivers that wake up after the caller already returned.
  struct State {
    explicit State(std::size_t n) : total(n) {}
    const std::size_t total;
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    Mutex m;
    CondVar cv;
    std::exception_ptr error COCKTAIL_GUARDED_BY(m);  // first failure.
  };
  auto state = std::make_shared<State>(n);

  // Marks k indices finished (run or abandoned); wakes the caller on the
  // last one.  `done` is a seq_cst atomic: taking m here only pairs the
  // notify with the caller's predicate re-check, closing the classic
  // lost-wakeup window (pred false -> increment -> notify -> caller
  // sleeps).  With the lock held, the notify cannot land between the
  // caller's pred check and its sleep.
  auto complete = [state](std::size_t k) {
    if (state->done.fetch_add(k) + k == state->total) {
      MutexLock lock(state->m);
      state->cv.notify_all();
    }
  };

  // Each driver claims indices until the batch is exhausted.  `f` stays
  // valid for the drivers' whole lifetime: the caller blocks below until
  // done == total, and after the final done increment no driver touches f.
  auto drive = [state, complete, &f] {
    for (;;) {
      const std::size_t i = state->next.fetch_add(1);
      if (i >= state->total) return;
      try {
        f(i);
      } catch (...) {
        {
          MutexLock lock(state->m);
          if (!state->error) state->error = std::current_exception();
        }
        // Stop handing out further indices.  Whatever was never claimed
        // must still be accounted as finished or the caller waits forever;
        // indices already claimed by other drivers are completed by them.
        const std::size_t old = state->next.exchange(state->total);
        if (old < state->total) complete(state->total - old);
      }
      complete(1);
    }
  };

  // One driver per worker (capped at the batch size); the caller drives too.
  const std::size_t drivers = std::min(workers_.size(), n);
  for (std::size_t i = 0; i < drivers; ++i) enqueue(drive);
  drive();

  MutexLock lock(state->m);
  // The predicate reads only the seq_cst `done` atomic, so it needs no
  // REQUIRES annotation; `error` below is guarded and the lock is held.
  state->cv.wait(lock, [&] { return state->done.load() == state->total; });
  if (state->error) std::rethrow_exception(state->error);
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool(env_thread_count());
  return pool;
}

}  // namespace cocktail::util
