// Annotated synchronization primitives.
//
// Thin wrappers over std::mutex / std::condition_variable_any that carry the
// clang thread-safety capability annotations (util/thread_annotations.h).
// The std primitives themselves are unannotated, so locking through them is
// invisible to `-Wthread-safety`; every lock in the library goes through
// these types instead, which is what lets the clang CI entry machine-check
// the locking discipline protecting the certificate-serving and
// parallel-training state.
//
// The wrappers add no semantics: Mutex is exactly a std::mutex, MutexLock is
// a scoped lock with explicit Unlock/Lock for the dispatcher's
// unlock-run-relock pattern, and CondVar is a condition variable that waits
// on a Mutex directly (std::condition_variable_any accepts any
// BasicLockable, so no unannotated std::unique_lock has to appear at the
// wait sites).  Doorbell composes Mutex + CondVar with an atomic sleeper
// count into the wakeup primitive the sharded serving dispatchers sleep on.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>

#include "util/thread_annotations.h"

namespace cocktail::util {

/// std::mutex with the `capability` annotation.  Satisfies Lockable, so it
/// still composes with std generic code where needed.
class COCKTAIL_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() COCKTAIL_ACQUIRE() { m_.lock(); }
  void unlock() COCKTAIL_RELEASE() { m_.unlock(); }
  [[nodiscard]] bool try_lock() COCKTAIL_TRY_ACQUIRE(true) {
    return m_.try_lock();
  }

 private:
  std::mutex m_;
};

/// Scoped lock over Mutex.  Beyond plain RAII it supports the
/// unlock-work-relock shape ControllerServer's dispatcher uses (run the
/// drained slice without the queue lock): `Unlock()` / `Lock()` are
/// annotated so the analysis tracks the lock state across the gap, and the
/// destructor releases only when currently held.
class COCKTAIL_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) COCKTAIL_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.lock();
  }
  ~MutexLock() COCKTAIL_RELEASE() {
    if (held_) mutex_.unlock();
  }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// Releases the mutex before the scope ends (dispatcher "run the batch
  /// unlocked" gap).  Must currently be held.
  void Unlock() COCKTAIL_RELEASE() {
    held_ = false;
    mutex_.unlock();
  }

  /// Reacquires after Unlock().
  void Lock() COCKTAIL_ACQUIRE() {
    mutex_.lock();
    held_ = true;
  }

 private:
  friend class CondVar;
  Mutex& mutex_;
  bool held_ = true;
};

/// Condition variable waiting on an annotated Mutex (through MutexLock).
///
/// The predicate overloads take the predicate as a callable evaluated with
/// the lock held.  A predicate reading COCKTAIL_GUARDED_BY state must carry
/// its own annotation, because the analysis treats a lambda body as a
/// separate function:
///
///   cv.wait(lock, [this]() COCKTAIL_REQUIRES(mutex_) { return ready_; });
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

  /// One bare wait; handle spurious wakes at the call site.
  // wait() releases the mutex while blocked and reacquires before
  // returning — a net no-op on the lock state that the analysis cannot see
  // inside std::condition_variable_any, hence the opt-out.
  void wait(MutexLock& lock) COCKTAIL_NO_THREAD_SAFETY_ANALYSIS {
    cv_.wait(lock.mutex_);
  }

  /// Blocks until `pred()` holds.
  template <class Predicate>
  void wait(MutexLock& lock,
            Predicate pred) COCKTAIL_NO_THREAD_SAFETY_ANALYSIS {
    while (!pred()) cv_.wait(lock.mutex_);
  }

  /// Blocks until `pred()` holds or `timeout` elapsed; returns pred().
  template <class Rep, class Period, class Predicate>
  [[nodiscard]] bool wait_for(MutexLock& lock,
                const std::chrono::duration<Rep, Period>& timeout,
                Predicate pred) COCKTAIL_NO_THREAD_SAFETY_ANALYSIS {
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    while (!pred()) {
      if (cv_.wait_until(lock.mutex_, deadline) == std::cv_status::timeout)
        return pred();
    }
    return true;
  }

 private:
  std::condition_variable_any cv_;
};

/// Wakeup doorbell for threads that poll lock-free state.
///
/// The sharded serving dispatchers pop from lock-free MPMC shards, so there
/// is no queue mutex whose condition variable producers could signal.
/// Doorbell fills that gap: a consumer that finds its shards empty sleeps in
/// `wait_for`, and a producer `ring()`s after publishing work.
///
/// Memory-order contract (documented here per the PR 7 policy):
///
///   sleepers_ is seq_cst on both sides.  The producer publishes its work
///   (itself a release/acquire edge in the MPMC queue), then reads
///   sleepers_; the consumer increments sleepers_ *before* re-checking the
///   predicate and sleeping.  With both accesses seq_cst, at least one of
///   the two races resolves safely: either the producer sees sleepers_ > 0
///   and notifies under the mutex, or the consumer's predicate re-check
///   sees the new work.  The mutex around notify/wait closes the classic
///   lost-wakeup window between the predicate check and the sleep.
///
/// Even so, all waits are *timed*: a wakeup missed through any path not
/// covered above costs one `timeout` period, never a hang.  ring() is
/// wait-free for the producer when nobody sleeps (one atomic load).
class Doorbell {
 public:
  Doorbell() = default;
  Doorbell(const Doorbell&) = delete;
  Doorbell& operator=(const Doorbell&) = delete;

  /// Producer side: call after the new work is visible.  Cheap when no
  /// consumer is sleeping.
  void ring() {
    if (sleepers_.load() == 0) return;
    // Taking the mutex orders this notify after a racing consumer's
    // predicate-check-then-wait, so the notify cannot fall in the gap.
    MutexLock lock(mutex_);
    cv_.notify_all();
  }

  /// Consumer side: blocks until `pred()` holds, a ring arrives and
  /// `pred()` holds, or `timeout` elapses.  Returns the final `pred()`.
  /// `pred` must read only state safe to read under this doorbell's mutex
  /// (atomics / lock-free structures).
  template <class Rep, class Period, class Predicate>
  [[nodiscard]] bool wait_for(const std::chrono::duration<Rep, Period>& timeout,
                              Predicate pred) {
    sleepers_.fetch_add(1);
    MutexLock lock(mutex_);
    const bool satisfied = cv_.wait_for(lock, timeout, pred);
    lock.Unlock();
    sleepers_.fetch_sub(1);
    return satisfied;
  }

 private:
  // Count of consumers inside wait_for; seq_cst (see the contract above).
  std::atomic<std::uint32_t> sleepers_{0};
  Mutex mutex_;
  CondVar cv_;
};

}  // namespace cocktail::util
