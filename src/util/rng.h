// Deterministic pseudo-random number generation for every stochastic
// component in the library.
//
// All training, simulation, attack, and sampling code takes an explicit
// 64-bit seed so experiments are reproducible run-to-run.  The generator is
// xoshiro256** (public domain, Blackman & Vigna) seeded through splitmix64,
// which gives high-quality streams even from small consecutive seeds.
//
// This header is the ONE sanctioned randomness source: the determinism lint
// (tools/lint_determinism.py, rule rng-source) rejects std::random_device,
// rand(), <random> engines, and time-derived seeds anywhere else in src/.
// Parallel code never shares an Rng — each unit of work derives a private
// stream with derive_seed(seed, k) (Rng itself is not thread-safe and
// carries no locks; a shared generator would make the draw order, and thus
// the results, depend on scheduling even if it were synchronized).
#pragma once

#include <cstdint>
#include <vector>

namespace cocktail::util {

/// Counter-based stateless mixing step; used to derive independent child
/// seeds from a parent seed (`derive_seed(seed, k)` for component k).
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// Derives a decorrelated child seed from `seed` and a stream index.
[[nodiscard]] std::uint64_t derive_seed(std::uint64_t seed,
                                        std::uint64_t stream) noexcept;

/// xoshiro256** generator with convenience distributions.
///
/// Satisfies UniformRandomBitGenerator so it can also be plugged into
/// <random> distributions, although the built-in helpers below are used
/// throughout the library for exact cross-platform reproducibility.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }

  /// Raw 64 random bits.
  result_type operator()() noexcept { return next(); }
  result_type next() noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;
  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;
  /// Standard normal via Box-Muller (cached second draw).
  double normal() noexcept;
  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev) noexcept;
  /// Uniform integer in [0, n).  Requires n > 0.
  std::uint64_t uniform_index(std::uint64_t n) noexcept;
  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;
  /// Bernoulli draw with success probability p.
  [[nodiscard]] bool bernoulli(double p) noexcept;

  /// Vector of n uniform draws in [lo, hi).
  std::vector<double> uniform_vec(std::size_t n, double lo, double hi);
  /// Vector of n standard normal draws.
  std::vector<double> normal_vec(std::size_t n);

  /// Fisher-Yates shuffle of an index permutation [0, n).
  std::vector<std::size_t> permutation(std::size_t n);

  /// Spawns an independent generator for a sub-component.
  [[nodiscard]] Rng spawn(std::uint64_t stream) const noexcept;

  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }

 private:
  std::uint64_t seed_;
  std::uint64_t s_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace cocktail::util
