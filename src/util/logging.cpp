#include "util/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>

#include "util/mutex.h"

namespace cocktail::util {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarn};
// Serializes whole lines to stderr so concurrent workers (pool jobs, the
// serve dispatcher) never interleave mid-line.  The stream itself is the
// guarded resource; there is no guarded data member to annotate.
Mutex g_mutex;

const char* tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarn:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF  ";
  }
  return "?";
}

double elapsed_seconds() {
  using clock = std::chrono::steady_clock;
  static const clock::time_point start = clock::now();
  return std::chrono::duration<double>(clock::now() - start).count();
}

}  // namespace

void set_log_level(LogLevel level) noexcept { g_level.store(level); }

LogLevel log_level() noexcept { return g_level.load(); }

void log_line(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(g_level.load())) return;
  const MutexLock lock(g_mutex);
  std::fprintf(stderr, "[%8.2fs %s] %s\n", elapsed_seconds(), tag(level),
               message.c_str());
}

}  // namespace cocktail::util
