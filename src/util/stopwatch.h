// Wall-clock stopwatch used for verification-time measurements (the paper's
// verifiability metric) and bench reporting.
#pragma once

#include <chrono>

namespace cocktail::util {

class Stopwatch {
 public:
  Stopwatch() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  /// Elapsed seconds since construction or the last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  [[nodiscard]] double milliseconds() const { return seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace cocktail::util
