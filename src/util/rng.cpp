#include "util/rng.h"

#include <cmath>
#include <numbers>

namespace cocktail::util {
namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t derive_seed(std::uint64_t seed, std::uint64_t stream) noexcept {
  // Two rounds of splitmix over (seed, stream) decorrelates nearby seeds.
  std::uint64_t state = seed ^ (0xA0761D6478BD642FULL * (stream + 1));
  (void)splitmix64(state);
  return splitmix64(state);
}

Rng::Rng(std::uint64_t seed) noexcept : seed_(seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
}

Rng::result_type Rng::next() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() noexcept {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

double Rng::normal() noexcept {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box-Muller; u1 is kept away from 0 so the log is finite.
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 1e-300);
  const double u2 = uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * std::numbers::pi * u2;
  cached_normal_ = radius * std::sin(angle);
  has_cached_normal_ = true;
  return radius * std::cos(angle);
}

double Rng::normal(double mean, double stddev) noexcept {
  return mean + stddev * normal();
}

std::uint64_t Rng::uniform_index(std::uint64_t n) noexcept {
  // Lemire's nearly-divisionless bounded draw; bias is negligible for the
  // ranges used here but we reject to keep it exact.
  if (n == 0) return 0;
  const std::uint64_t threshold = (~n + 1) % n;  // 2^64 mod n
  for (;;) {
    const std::uint64_t r = next();
    if (r >= threshold) return r % n;
  }
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  if (hi <= lo) return lo;
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(uniform_index(span));
}

bool Rng::bernoulli(double p) noexcept { return uniform() < p; }

std::vector<double> Rng::uniform_vec(std::size_t n, double lo, double hi) {
  std::vector<double> out(n);
  for (auto& v : out) v = uniform(lo, hi);
  return out;
}

std::vector<double> Rng::normal_vec(std::size_t n) {
  std::vector<double> out(n);
  for (auto& v : out) v = normal();
  return out;
}

std::vector<std::size_t> Rng::permutation(std::size_t n) {
  std::vector<std::size_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = i;
  for (std::size_t i = n; i > 1; --i) {
    const std::size_t j = uniform_index(i);
    std::swap(idx[i - 1], idx[j]);
  }
  return idx;
}

Rng Rng::spawn(std::uint64_t stream) const noexcept {
  return Rng(derive_seed(seed_, stream));
}

}  // namespace cocktail::util
