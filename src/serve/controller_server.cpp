#include "serve/controller_server.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace cocktail::serve {
namespace {

// Monotonic running max, relaxed per the Entry memory-order audit: the slot
// is a standalone metric, so atomicity (no lost update between the load and
// the CAS — compare_exchange_weak reloads `seen` on failure and the loop
// re-checks `seen < value`) is all that is required; no ordering with other
// memory is implied or needed.
void bump_max(std::atomic<std::uint64_t>& slot, std::uint64_t value) {
  std::uint64_t seen = slot.load(std::memory_order_relaxed);
  while (seen < value &&
         !slot.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
}

}  // namespace

ControllerServer::ControllerServer(ServeConfig config)
    : config_(config),
      workers_(config.synchronous ? 1 : config.num_workers) {
  if (config_.max_batch == 0) config_.max_batch = 1;
  if (config_.rows_per_chunk == 0) config_.rows_per_chunk = 1;
  if (!config_.synchronous)
    dispatcher_ = std::thread([this] { dispatch_loop(); });
}

ControllerServer::~ControllerServer() { stop(); }

void ControllerServer::register_controller(
    const std::string& name, std::shared_ptr<const ctrl::NnController> primary,
    ctrl::ControllerPtr fallback, SafetyMonitor monitor) {
  if (primary == nullptr || fallback == nullptr)
    throw std::invalid_argument(
        "ControllerServer: a served controller needs both a primary network "
        "and a fallback expert");
  if (fallback->state_dim() != primary->state_dim() ||
      fallback->control_dim() != primary->control_dim())
    throw std::invalid_argument(
        "ControllerServer: fallback dimensions do not match the primary "
        "network for '" + name + "'");
  auto entry = std::make_unique<Entry>();
  entry->primary = std::move(primary);
  entry->fallback = std::move(fallback);
  entry->monitor = std::move(monitor);
  util::MutexLock lock(registry_mutex_);
  if (!entries_.emplace(name, std::move(entry)).second)
    throw std::invalid_argument("ControllerServer: '" + name +
                                "' is already registered");
}

ControllerServer::Entry& ControllerServer::find_entry(
    const std::string& name) const {
  util::MutexLock lock(registry_mutex_);
  const auto it = entries_.find(name);
  if (it == entries_.end())
    throw std::invalid_argument("ControllerServer: unknown controller '" +
                                name + "'");
  return *it->second;
}

std::future<la::Vec> ControllerServer::submit(const std::string& name,
                                              la::Vec state) {
  Entry& entry = find_entry(name);
  if (state.size() != entry.primary->state_dim())
    throw std::invalid_argument(
        "ControllerServer::submit: state dimension mismatch for '" + name +
        "'");
  Request request;
  request.entry = &entry;
  // Routing is decided per request at submission: the certificate either
  // covers this exact state or the fallback answers.  Batch composition can
  // never influence it.
  request.to_fallback = !entry.monitor.certified(state);
  request.state = std::move(state);
  std::future<la::Vec> future = request.result.get_future();
  if (config_.synchronous) {
    {
      util::MutexLock lock(queue_mutex_);
      if (stopping_)
        throw std::runtime_error("ControllerServer::submit after stop");
    }
    execute_inline(request);
    return future;
  }
  {
    util::MutexLock lock(queue_mutex_);
    if (stopping_)
      throw std::runtime_error("ControllerServer::submit after stop");
    queue_.push_back(std::move(request));
  }
  queue_cv_.notify_all();
  return future;
}

la::Vec ControllerServer::act_reference(const std::string& name,
                                        const la::Vec& state) const {
  const Entry& entry = find_entry(name);
  if (state.size() != entry.primary->state_dim())
    throw std::invalid_argument(
        "ControllerServer::act_reference: state dimension mismatch for '" +
        name + "'");
  if (!entry.monitor.certified(state)) return entry.fallback->act(state);
  return entry.primary->act(state);
}

ServeCounters ControllerServer::counters(const std::string& name) const {
  const Entry& entry = find_entry(name);
  ServeCounters out;
  out.primary = entry.primary_count.load(std::memory_order_relaxed);
  out.fallback = entry.fallback_count.load(std::memory_order_relaxed);
  out.batches = entry.batch_count.load(std::memory_order_relaxed);
  out.max_batch_rows = entry.max_batch_rows.load(std::memory_order_relaxed);
  return out;
}

void ControllerServer::execute_inline(Request& request) {
  try {
    if (request.to_fallback) {
      request.entry->fallback_count.fetch_add(1, std::memory_order_relaxed);
      request.result.set_value(request.entry->fallback->act(request.state));
    } else {
      request.entry->primary_count.fetch_add(1, std::memory_order_relaxed);
      request.entry->batch_count.fetch_add(1, std::memory_order_relaxed);
      bump_max(request.entry->max_batch_rows, 1);
      request.result.set_value(request.entry->primary->act(request.state));
    }
  } catch (...) {
    request.result.set_exception(std::current_exception());
  }
}

void ControllerServer::execute_slice(std::vector<Request>& slice) {
  // Partition the drained slice: fallback requests run per sample (a
  // fallback is an arbitrary Controller with no batch path); certified
  // requests group per served controller into one GEMM batch each,
  // preserving arrival order within the group.
  std::vector<Request*> fallbacks;
  std::vector<std::pair<Entry*, std::vector<Request*>>> groups;
  for (Request& request : slice) {
    if (request.to_fallback) {
      fallbacks.push_back(&request);
      continue;
    }
    auto it = std::find_if(groups.begin(), groups.end(), [&](const auto& g) {
      return g.first == request.entry;
    });
    if (it == groups.end()) {
      groups.emplace_back(request.entry, std::vector<Request*>());
      it = std::prev(groups.end());
    }
    it->second.push_back(&request);
  }

  util::ThreadPool* pool = workers_.pool();

  util::run_chunks(pool, fallbacks.size(), [&](std::size_t i) {
    Request& request = *fallbacks[i];
    request.entry->fallback_count.fetch_add(1, std::memory_order_relaxed);
    try {
      request.result.set_value(request.entry->fallback->act(request.state));
    } catch (...) {
      request.result.set_exception(std::current_exception());
    }
  });

  for (auto& [entry, requests] : groups) {
    // A group exists only because at least one request was appended to it,
    // and every chunk below covers a non-empty [lo, hi) — act_batch (and
    // through it Matrix::from_rows, which rejects empty input) is never
    // handed an empty slice.
    entry->primary_count.fetch_add(requests.size(),
                                   std::memory_order_relaxed);
    entry->batch_count.fetch_add(1, std::memory_order_relaxed);
    bump_max(entry->max_batch_rows, requests.size());
    // Rows are independent and each row is bitwise identical to the scalar
    // path, so slicing the batch across workers cannot change any answer.
    const std::size_t grain = config_.rows_per_chunk;
    const std::size_t chunks = (requests.size() + grain - 1) / grain;
    util::run_chunks(pool, chunks, [&, entry = entry,
                                    reqs = &requests](std::size_t c) {
      const std::size_t lo = c * grain;
      const std::size_t hi = std::min(reqs->size(), lo + grain);
      std::vector<la::Vec> states;
      states.reserve(hi - lo);
      // The state is dead once the batch is assembled: move, don't copy.
      for (std::size_t i = lo; i < hi; ++i)
        states.push_back(std::move((*reqs)[i]->state));
      try {
        std::vector<la::Vec> actions = entry->primary->act_batch(states);
        for (std::size_t i = lo; i < hi; ++i)
          (*reqs)[i]->result.set_value(std::move(actions[i - lo]));
      } catch (...) {
        for (std::size_t i = lo; i < hi; ++i)
          (*reqs)[i]->result.set_exception(std::current_exception());
      }
    });
  }
}

void ControllerServer::dispatch_loop() {
  util::MutexLock lock(queue_mutex_);
  for (;;) {
    queue_cv_.wait(lock, [this]() COCKTAIL_REQUIRES(queue_mutex_) {
      return stopping_ || !queue_.empty();
    });
    if (queue_.empty()) {
      if (stopping_) return;  // stop() raced a spurious wake; queue drained.
      continue;
    }
    if (!stopping_ && config_.max_wait.count() > 0 &&
        queue_.size() < config_.max_batch) {
      // Linger briefly: one bounded wait buys a fuller GEMM.  A full batch
      // or shutdown cuts the wait short.  The predicate result is
      // deliberately unused: timeout and full batch proceed identically —
      // drain whatever the queue now holds.
      static_cast<void>(
          queue_cv_.wait_for(lock, config_.max_wait,
                             [this]() COCKTAIL_REQUIRES(queue_mutex_) {
                               return stopping_ ||
                                      queue_.size() >= config_.max_batch;
                             }));
    }
    std::vector<Request> slice;
    const std::size_t take = std::min(queue_.size(), config_.max_batch);
    slice.reserve(take);
    for (std::size_t i = 0; i < take; ++i) {
      slice.push_back(std::move(queue_.front()));
      queue_.pop_front();
    }
    ++inflight_;
    lock.Unlock();  // run the slice without blocking submitters.
    execute_slice(slice);
    lock.Lock();
    --inflight_;
    if (queue_.empty() && inflight_ == 0) drain_cv_.notify_all();
  }
}

void ControllerServer::drain() {
  if (config_.synchronous) return;
  util::MutexLock lock(queue_mutex_);
  drain_cv_.wait(lock, [this]() COCKTAIL_REQUIRES(queue_mutex_) {
    return queue_.empty() && inflight_ == 0;
  });
}

void ControllerServer::stop() {
  {
    util::MutexLock lock(queue_mutex_);
    stopping_ = true;
  }
  queue_cv_.notify_all();
  if (dispatcher_.joinable()) dispatcher_.join();
}

}  // namespace cocktail::serve
