#include "serve/controller_server.h"

#include <algorithm>
#include <exception>
#include <utility>

namespace cocktail::serve {
namespace {

// Monotonic running max, relaxed per the Entry memory-order audit: the slot
// is a standalone metric, so atomicity (no lost update between the load and
// the CAS — compare_exchange_weak reloads `seen` on failure and the loop
// re-checks `seen < value`) is all that is required; no ordering with other
// memory is implied or needed.
void bump_max(std::atomic<std::uint64_t>& slot, std::uint64_t value) {
  std::uint64_t seen = slot.load(std::memory_order_relaxed);
  while (seen < value &&
         !slot.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
}

double elapsed_us(std::chrono::steady_clock::time_point from,
                  std::chrono::steady_clock::time_point to) {
  return std::chrono::duration<double, std::micro>(to - from).count();
}

}  // namespace

ControllerServer::ControllerServer(ServeConfig config,
                                   std::shared_ptr<MetricsRegistry> metrics)
    : config_(config),
      workers_(config.synchronous ? 1 : config.num_workers),
      metrics_(metrics != nullptr ? std::move(metrics)
                                  : std::make_shared<MetricsRegistry>()) {
  if (config_.max_batch == 0) config_.max_batch = 1;
  if (config_.rows_per_chunk == 0) config_.rows_per_chunk = 1;
  if (config_.num_shards == 0) config_.num_shards = 1;
  if (config_.shard_capacity == 0) config_.shard_capacity = 1;
  config_.num_dispatchers =
      std::clamp<std::size_t>(config_.num_dispatchers, 1, config_.num_shards);
  if (config_.idle_wait.count() <= 0)
    config_.idle_wait = std::chrono::microseconds(100);
}

ControllerServer::~ControllerServer() { stop(); }

void ControllerServer::register_controller(
    const std::string& name, std::shared_ptr<const ctrl::NnController> primary,
    ctrl::ControllerPtr fallback, SafetyMonitor monitor) {
  if (primary == nullptr || fallback == nullptr)
    throw std::invalid_argument(
        "ControllerServer: a served controller needs both a primary network "
        "and a fallback expert");
  if (fallback->state_dim() != primary->state_dim() ||
      fallback->control_dim() != primary->control_dim())
    throw std::invalid_argument(
        "ControllerServer: fallback dimensions do not match the primary "
        "network for '" + name + "'");
  auto entry = std::make_unique<Entry>();
  entry->primary = std::move(primary);
  entry->fallback = std::move(fallback);
  entry->monitor = std::move(monitor);
  const std::string prefix = "serve." + name;
  entry->primary_count = metrics_->counter(prefix + ".primary");
  entry->fallback_count = metrics_->counter(prefix + ".fallback");
  entry->batch_count = metrics_->counter(prefix + ".batches");
  entry->latency = metrics_->histogram(prefix + ".latency_us");
  entry->shards.reserve(config_.num_shards);
  for (std::size_t s = 0; s < config_.num_shards; ++s) {
    auto shard = std::make_unique<ShardState>(config_.shard_capacity);
    const std::string shard_prefix = prefix + ".shard" + std::to_string(s);
    shard->accepted = metrics_->counter(shard_prefix + ".accepted");
    shard->shed = metrics_->counter(shard_prefix + ".shed");
    shard->rejected = metrics_->counter(shard_prefix + ".rejected");
    entry->shards.push_back(std::move(shard));
  }

  util::MutexLock lock(registry_mutex_);
  if (stopping_.load())
    throw std::runtime_error(
        "ControllerServer::register_controller after stop()");
  const auto [it, inserted] = entries_.emplace(name, std::move(entry));
  if (!inserted)
    throw std::invalid_argument("ControllerServer: '" + name +
                                "' is already registered");
  // Spawn the dispatchers under registry_mutex_ so stop() — which flips
  // stopping_ and joins under the same lock — either runs before this
  // registration (we threw above) or after the threads exist and will be
  // joined.  Dispatchers never take registry_mutex_, so holding it here
  // cannot deadlock with them.
  if (!config_.synchronous) {
    Entry* raw = it->second.get();
    raw->dispatchers.reserve(config_.num_dispatchers);
    for (std::size_t d = 0; d < config_.num_dispatchers; ++d)
      raw->dispatchers.push_back(std::make_unique<DispatcherState>());
    for (std::size_t d = 0; d < config_.num_dispatchers; ++d)
      raw->dispatchers[d]->thread =
          std::thread([this, raw, d] { dispatch_loop(*raw, d); });
  }
}

ControllerServer::Entry& ControllerServer::find_entry(
    const std::string& name) const {
  util::MutexLock lock(registry_mutex_);
  const auto it = entries_.find(name);
  if (it == entries_.end())
    throw std::invalid_argument("ControllerServer: unknown controller '" +
                                name + "'");
  return *it->second;
}

std::future<la::Vec> ControllerServer::reject(Entry& entry, Request&& request,
                                              RejectReason reason) {
  const std::size_t home = static_cast<std::size_t>(entry.next_shard.fetch_add(
                               1, std::memory_order_relaxed)) %
                           entry.shards.size();
  Counter* tally = reason == RejectReason::kQueueFull
                       ? entry.shards[home]->shed
                       : entry.shards[home]->rejected;
  tally->increment();
  std::future<la::Vec> future = request.result.get_future();
  request.result.set_exception(std::make_exception_ptr(RejectedError(reason)));
  return future;
}

std::future<la::Vec> ControllerServer::submit(const std::string& name,
                                              la::Vec state) {
  Entry& entry = find_entry(name);
  if (state.size() != entry.primary->state_dim())
    throw std::invalid_argument(
        "ControllerServer::submit: state dimension mismatch for '" + name +
        "'");
  Request request;
  request.entry = &entry;
  // Routing is decided per request at submission: the certificate either
  // covers this exact state or the fallback answers.  Batch composition can
  // never influence it.
  request.to_fallback = !entry.monitor.certified(state);
  request.state = std::move(state);

  if (config_.synchronous) {
    if (stopping_.load())
      return reject(entry, std::move(request), RejectReason::kShutdown);
    request.accepted_at = std::chrono::steady_clock::now();
    const std::size_t home =
        static_cast<std::size_t>(entry.next_shard.fetch_add(
            1, std::memory_order_relaxed)) %
        entry.shards.size();
    entry.shards[home]->accepted->increment();
    std::future<la::Vec> future = request.result.get_future();
    execute_inline(request);
    entry.latency->record_us(
        elapsed_us(request.accepted_at, std::chrono::steady_clock::now()));
    return future;
  }

  // Admission gate — see the shutdown-handshake audit in the header.  No
  // lock is held anywhere in this section.
  active_submitters_.fetch_add(1);
  if (stopping_.load()) {
    active_submitters_.fetch_sub(1);
    return reject(entry, std::move(request), RejectReason::kShutdown);
  }
  std::future<la::Vec> future = request.result.get_future();
  request.accepted_at = std::chrono::steady_clock::now();
  const std::size_t num_shards = entry.shards.size();
  const std::size_t home = static_cast<std::size_t>(entry.next_shard.fetch_add(
                               1, std::memory_order_relaxed)) %
                           num_shards;
  // pending_ rises BEFORE the push so the dispatcher's decrement can never
  // run first and underflow it; backed out below on a shed.
  pending_.fetch_add(1);
  std::size_t landed = num_shards;
  for (std::size_t k = 0; k < num_shards; ++k) {
    const std::size_t s = (home + k) % num_shards;
    if (entry.shards[s]->queue.try_push(std::move(request))) {
      landed = s;
      break;
    }
  }
  if (landed == num_shards) {
    // Every ring is full: shed.  The request was never published, so back
    // out the pending count, leave the gate, and resolve the future here.
    pending_.fetch_sub(1);
    active_submitters_.fetch_sub(1);
    entry.shards[home]->shed->increment();
    request.result.set_exception(
        std::make_exception_ptr(RejectedError(RejectReason::kQueueFull)));
    return future;
  }
  entry.shards[landed]->accepted->increment();
  active_submitters_.fetch_sub(1);
  entry.dispatchers[landed % entry.dispatchers.size()]->bell.ring();
  return future;
}

la::Vec ControllerServer::act_reference(const std::string& name,
                                        const la::Vec& state) const {
  const Entry& entry = find_entry(name);
  if (state.size() != entry.primary->state_dim())
    throw std::invalid_argument(
        "ControllerServer::act_reference: state dimension mismatch for '" +
        name + "'");
  if (!entry.monitor.certified(state)) return entry.fallback->act(state);
  return entry.primary->act(state);
}

ServeCounters ControllerServer::counters(const std::string& name) const {
  const Entry& entry = find_entry(name);
  ServeCounters out;
  out.primary = entry.primary_count->value();
  out.fallback = entry.fallback_count->value();
  out.batches = entry.batch_count->value();
  out.max_batch_rows = entry.max_batch_rows.load(std::memory_order_relaxed);
  out.shards.reserve(entry.shards.size());
  for (const auto& shard : entry.shards) {
    AdmissionCounters a;
    a.accepted = shard->accepted->value();
    a.shed = shard->shed->value();
    a.rejected = shard->rejected->value();
    out.accepted += a.accepted;
    out.shed += a.shed;
    out.rejected += a.rejected;
    out.shards.push_back(a);
  }
  return out;
}

void ControllerServer::execute_inline(Request& request) {
  try {
    if (request.to_fallback) {
      request.entry->fallback_count->increment();
      request.result.set_value(request.entry->fallback->act(request.state));
    } else {
      request.entry->primary_count->increment();
      request.entry->batch_count->increment();
      bump_max(request.entry->max_batch_rows, 1);
      request.result.set_value(request.entry->primary->act(request.state));
    }
  } catch (...) {
    request.result.set_exception(std::current_exception());
  }
}

void ControllerServer::execute_slice(Entry& entry,
                                     std::vector<Request>& slice) {
  // Partition the slice: fallback requests run per sample (a fallback is an
  // arbitrary Controller with no batch path); certified requests form one
  // GEMM batch, preserving arrival order.  All requests in a slice belong
  // to `entry` — each dispatcher serves exactly one controller.
  std::vector<Request*> fallbacks;
  std::vector<Request*> rows;
  fallbacks.reserve(slice.size());
  rows.reserve(slice.size());
  for (Request& request : slice)
    (request.to_fallback ? fallbacks : rows).push_back(&request);

  util::ThreadPool* pool = workers_.pool();

  if (!fallbacks.empty()) {
    entry.fallback_count->add(fallbacks.size());
    util::run_chunks(pool, fallbacks.size(), [&](std::size_t i) {
      Request& request = *fallbacks[i];
      try {
        request.result.set_value(entry.fallback->act(request.state));
      } catch (...) {
        request.result.set_exception(std::current_exception());
      }
    });
  }

  if (!rows.empty()) {
    entry.primary_count->add(rows.size());
    entry.batch_count->increment();
    bump_max(entry.max_batch_rows, rows.size());
    // Rows are independent and each row is bitwise identical to the scalar
    // path, so slicing the batch across workers cannot change any answer.
    // Every chunk covers a non-empty [lo, hi) — act_batch (and through it
    // Matrix::from_rows, which rejects empty input) never sees an empty
    // slice.
    const std::size_t grain = config_.rows_per_chunk;
    const std::size_t chunks = (rows.size() + grain - 1) / grain;
    util::run_chunks(pool, chunks, [&](std::size_t c) {
      const std::size_t lo = c * grain;
      const std::size_t hi = std::min(rows.size(), lo + grain);
      std::vector<la::Vec> states;
      states.reserve(hi - lo);
      // The state is dead once the batch is assembled: move, don't copy.
      for (std::size_t i = lo; i < hi; ++i)
        states.push_back(std::move(rows[i]->state));
      try {
        std::vector<la::Vec> actions = entry.primary->act_batch(states);
        for (std::size_t i = lo; i < hi; ++i)
          rows[i]->result.set_value(std::move(actions[i - lo]));
      } catch (...) {
        for (std::size_t i = lo; i < hi; ++i)
          rows[i]->result.set_exception(std::current_exception());
      }
    });
  }
}

void ControllerServer::dispatch_loop(Entry& entry,
                                     std::size_t dispatcher_index) {
  const std::size_t num_shards = entry.shards.size();
  const std::size_t num_dispatchers = entry.dispatchers.size();
  util::Doorbell& bell = entry.dispatchers[dispatcher_index]->bell;

  // Dispatcher d owns shards {s : s mod D == d}: no two dispatchers ever
  // pop the same ring, and no lock is shared across dispatchers.
  const auto owned_nonempty = [&] {
    for (std::size_t s = dispatcher_index; s < num_shards;
         s += num_dispatchers)
      if (!entry.shards[s]->queue.empty()) return true;
    return false;
  };
  // Round-robin one pop per owned shard per lap, until the slice is full or
  // every owned shard reads empty.
  const auto drain_owned = [&](std::vector<Request>& slice) {
    bool popped_any = true;
    while (slice.size() < config_.max_batch && popped_any) {
      popped_any = false;
      for (std::size_t s = dispatcher_index; s < num_shards;
           s += num_dispatchers) {
        if (slice.size() >= config_.max_batch) break;
        Request request;
        if (entry.shards[s]->queue.try_pop(request)) {
          slice.push_back(std::move(request));
          popped_any = true;
        }
      }
    }
  };

  std::vector<Request> slice;
  slice.reserve(config_.max_batch);
  for (;;) {
    slice.clear();
    drain_owned(slice);
    if (slice.empty()) {
      // Exit-check read order matters (shutdown-handshake audit in the
      // header): stopping_ first, then active_submitters_ == 0, then a
      // final emptiness sweep that is now exact because all producers are
      // quiesced and this thread is the sole consumer of its shards.
      if (stopping_.load() && active_submitters_.load() == 0 &&
          !owned_nonempty())
        return;
      static_cast<void>(bell.wait_for(config_.idle_wait, [&] {
        return stopping_.load() || owned_nonempty();
      }));
      continue;
    }
    if (!stopping_.load() && config_.max_wait.count() > 0 &&
        slice.size() < config_.max_batch) {
      // Linger briefly: bounded waits buy a fuller GEMM.  A full batch or
      // shutdown cuts the linger short; the deadline bounds it.
      const auto deadline = std::chrono::steady_clock::now() + config_.max_wait;
      while (slice.size() < config_.max_batch && !stopping_.load()) {
        const auto now = std::chrono::steady_clock::now();
        if (now >= deadline) break;
        const auto nap = std::min<std::chrono::steady_clock::duration>(
            deadline - now, config_.idle_wait);
        static_cast<void>(bell.wait_for(nap, [&] {
          return stopping_.load() || owned_nonempty();
        }));
        drain_owned(slice);
      }
    }
    execute_slice(entry, slice);
    const auto done = std::chrono::steady_clock::now();
    for (const Request& request : slice)
      entry.latency->record_us(elapsed_us(request.accepted_at, done));
    // The futures above are all satisfied; release the pending count and
    // wake drain() if this was the last outstanding work anywhere.
    if (pending_.fetch_sub(slice.size()) == slice.size()) drain_bell_.ring();
  }
}

void ControllerServer::drain() {
  if (config_.synchronous) return;
  // Timed waits only (Doorbell contract): a wakeup racing the last
  // decrement costs at most one poll period, never a hang.
  while (!drain_bell_.wait_for(std::chrono::milliseconds(1),
                               [&] { return pending_.load() == 0; })) {
  }
}

void ControllerServer::stop() {
  util::MutexLock lock(registry_mutex_);
  stopping_.store(true);
  for (auto& [name, entry] : entries_) {
    for (auto& dispatcher : entry->dispatchers) dispatcher->bell.ring();
  }
  for (auto& [name, entry] : entries_) {
    for (auto& dispatcher : entry->dispatchers) {
      if (dispatcher->thread.joinable()) dispatcher->thread.join();
    }
  }
}

}  // namespace cocktail::serve
