// Online safety monitor for served controllers.
//
// The paper's verifiability argument (footnote 1) certifies the distilled
// student κ* only inside a verified region — the control-invariant set XI of
// Definition 1 (verify::invariant) or, more coarsely, a box validated by
// reachability.  A request whose state lies outside that region voids the
// certificate, so the serving runtime routes it to a trusted fallback expert
// instead: the improper-RL safety pattern (Zaki et al., "Actor-Critic based
// Improper Reinforcement Learning") of falling back on a validated base
// controller whenever the learned policy leaves its certified regime.
//
// Observation uncertainty composes soundly: if the observed state may be off
// by up to `margin` in the inf-norm, certify only states whose whole
// ±margin box lies in the certified region, and bound the action drift via
// the controller's certified Lipschitz constant (action_deviation_bound).
//
// Thread-safety: a SafetyMonitor is immutable after construction (the
// factories return it by value; certified() is const over const state), so
// ControllerServer batch workers call certified() concurrently with no lock
// — which is why registration hands the monitor to the registry by value
// rather than sharing a mutable reference with the caller.
#pragma once

#include <memory>
#include <vector>

#include "control/controller.h"
#include "la/vec.h"
#include "sys/system.h"
#include "verify/box_tree.h"
#include "verify/invariant.h"

namespace cocktail::serve {

class SafetyMonitor {
 public:
  /// Default-constructed monitor certifies nothing: every request falls
  /// back.  The safe default for a controller without a certificate.
  SafetyMonitor() = default;

  /// Certifies every state (pure-throughput serving and benches).
  [[nodiscard]] static SafetyMonitor trust_all();

  /// Certifies states at least `margin` inside `box` on every dimension
  /// (unbounded dimensions always pass).  `margin` is the inf-norm bound on
  /// observation error the deployment assumes.
  [[nodiscard]] static SafetyMonitor inside_box(sys::Box box,
                                                double margin = 0.0);

  /// Certifies states whose surrounding ±margin box lies entirely in the
  /// computed invariant set: every grid cell the box overlaps must be a
  /// member (not just the corners — a wide margin can straddle interior
  /// cells).  Requires a completed result; throws std::invalid_argument
  /// otherwise.
  [[nodiscard]] static SafetyMonitor inside_invariant(
      verify::InvariantResult result, sys::Box domain, double margin = 0.0);

  /// True when serving `state` is covered by the certificate.  A state of
  /// the wrong dimension is never certified, and neither is a state with
  /// any non-finite (NaN/Inf) component — in every mode, including
  /// trust_all: a corrupted observation always routes to the fallback.
  [[nodiscard]] bool certified(const la::Vec& state) const;

  /// Sound bound on the served action's drift under observation uncertainty
  /// ||δ||_inf <= epsilon_inf, from the controller's certified Lipschitz
  /// bound L:  ||κ(s+δ) − κ(s)||_2  <=  L · sqrt(d) · epsilon_inf.
  /// Negative when the controller carries no certificate (Table I's "-").
  [[nodiscard]] static double action_deviation_bound(
      const ctrl::Controller& controller, double epsilon_inf);

 private:
  /// Reference window walk over the flattened member array: the odometer
  /// the SFC tree replaced, kept as the fallback for grids the Morton key
  /// cannot pack (dim > kMaxSfcDim, or > 63 key bits).
  [[nodiscard]] bool window_all_members_flat(const std::vector<int>& lo_k,
                                             const std::vector<int>& hi_k) const;

  enum class Mode { kNone, kAll, kBox, kInvariant };

  Mode mode_ = Mode::kNone;
  sys::Box box_;  ///< kBox: the certified box; kInvariant: the grid domain.
  double margin_ = 0.0;
  std::shared_ptr<const verify::InvariantResult> invariant_;
  /// SFC-keyed index over the invariant member set (kInvariant only; null
  /// when the grid is unsupported).  Margin window checks descend the tree
  /// — O(window boundary) — instead of the odometer's O(window volume),
  /// with bitwise-identical verdicts.
  std::shared_ptr<const verify::CellSetTree> member_tree_;
};

}  // namespace cocktail::serve
