// SLO metrics for the serving tier: counters, fixed-bucket latency
// histograms (p50/p99/p999), and a named registry with QPS snapshots.
//
// Producers on the hot path (submitters, dispatchers, SafetyMonitor routing)
// touch exactly one relaxed atomic per event; all aggregation happens at
// snapshot time on the reader.  Memory-order contract (PR 7 policy —
// documented at the declaration because these are not lockable):
//
//   Counter::count_ and LatencyHistogram::buckets_[i] are monotonic event
//   tallies incremented with std::memory_order_relaxed.  No reader makes a
//   control decision that requires ordering against other memory: snapshots
//   are statistical, and the exact-counter guarantees in ControllerServer
//   (accept + shed + reject == submitted) are established by its own
//   shutdown handshake quiescing all writers before the final read, at
//   which point relaxed reads are exact.  Relaxed RMW never loses
//   increments — it only leaves cross-counter skew in mid-flight snapshots.
//
// Registry names are stable for the life of the registry (entries are never
// erased), so the Counter* / LatencyHistogram* returned by the lookup
// methods stay valid and lock-free to use after the one-time registration.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace cocktail::serve {

/// Monotonic event counter.  add()/increment() are wait-free; value() is a
/// relaxed read (exact once writers are quiesced — see the file header).
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void increment() noexcept { count_.fetch_add(1, std::memory_order_relaxed); }
  void add(std::uint64_t n) noexcept {
    count_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> count_{0};
};

/// Fixed-bucket latency histogram over microseconds.
///
/// Bucket upper bounds follow the 1-2-5 decade series from 1 µs to 1e7 µs
/// (10 s), plus an overflow bucket — fixed at compile time so recording is
/// one binary search over 22 doubles plus one relaxed increment, with no
/// allocation and no lock.  Quantiles are estimated by linear interpolation
/// inside the winning bucket, which bounds the relative error by the 1-2-5
/// spacing (worst case ~2.5x within a bucket, far tighter than the
/// cross-decade spread SLO monitoring cares about).
class LatencyHistogram {
 public:
  LatencyHistogram() = default;
  LatencyHistogram(const LatencyHistogram&) = delete;
  LatencyHistogram& operator=(const LatencyHistogram&) = delete;

  /// Records one sample.  Negative / NaN inputs clamp into the first
  /// bucket: a corrupt timestamp must never vanish from the count, or the
  /// exact-counter invariants downstream would see fewer samples than
  /// requests.
  void record_us(double us) noexcept;

  struct Quantiles {
    std::uint64_t count = 0;
    double p50_us = 0.0;
    double p99_us = 0.0;
    double p999_us = 0.0;
    double max_bound_us = 0.0;  // upper bound of the highest non-empty bucket
  };

  /// Aggregates the current tallies.  Statistical under concurrent
  /// recording; exact once recorders are quiesced.
  [[nodiscard]] Quantiles quantiles() const noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept;

  static constexpr std::size_t kNumBounds = 22;
  /// Bucket upper bounds in µs (1-2-5 series); bucket kNumBounds is
  /// overflow.
  [[nodiscard]] static const double* bounds() noexcept;

 private:
  // One tally per bound plus the overflow bucket; relaxed monotonic (see
  // the file-header memory-order contract).
  std::atomic<std::uint64_t> buckets_[kNumBounds + 1] = {};
};

/// One registry entry rendered by MetricsRegistry::snapshot().
struct MetricsSnapshot {
  struct CounterSample {
    std::string name;
    std::uint64_t value = 0;     // cumulative
    double rate_per_s = 0.0;     // delta since the previous snapshot / window
  };
  struct HistogramSample {
    std::string name;
    LatencyHistogram::Quantiles q;
    double rate_per_s = 0.0;     // sample (request) rate over the window
  };
  double window_s = 0.0;  // wall-clock span since the previous snapshot
  std::vector<CounterSample> counters;
  std::vector<HistogramSample> histograms;

  /// Human-readable multi-line rendering (examples/serve_controller).
  [[nodiscard]] std::string format() const;
};

/// Named registry of counters and latency histograms.
///
/// Registration (the by-name lookups) takes a mutex; the returned pointers
/// are stable for the registry's lifetime and lock-free to record through.
/// snapshot() iterates a std::map, so rendering order is the name order —
/// deterministic output for logs and tests.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Finds or creates the named counter.  The pointer never dangles.
  [[nodiscard]] Counter* counter(const std::string& name);

  /// Finds or creates the named histogram.  The pointer never dangles.
  [[nodiscard]] LatencyHistogram* histogram(const std::string& name);

  /// Renders every metric with rates over the window since the previous
  /// snapshot() call (the first call reports rates over the registry's
  /// lifetime).  Mutating: advances the rate window.
  [[nodiscard]] MetricsSnapshot snapshot();

 private:
  util::Mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_
      COCKTAIL_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<LatencyHistogram>> histograms_
      COCKTAIL_GUARDED_BY(mutex_);
  // Previous-snapshot baselines for rate computation, keyed like the maps.
  std::map<std::string, std::uint64_t> last_counts_
      COCKTAIL_GUARDED_BY(mutex_);
  std::map<std::string, std::uint64_t> last_histogram_counts_
      COCKTAIL_GUARDED_BY(mutex_);
  std::chrono::steady_clock::time_point last_snapshot_
      COCKTAIL_GUARDED_BY(mutex_) = std::chrono::steady_clock::now();
};

}  // namespace cocktail::serve
