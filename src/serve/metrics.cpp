#include "serve/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <utility>

namespace cocktail::serve {
namespace {

// 1-2-5 decade series, 1 µs .. 1e7 µs (10 s).  kNumBounds entries.
constexpr double kBounds[LatencyHistogram::kNumBounds] = {
    1.0,    2.0,    5.0,    10.0,    20.0,    50.0,    100.0,   200.0,
    500.0,  1.0e3,  2.0e3,  5.0e3,   1.0e4,   2.0e4,   5.0e4,   1.0e5,
    2.0e5,  5.0e5,  1.0e6,  2.0e6,   5.0e6,   1.0e7};

// Quantile estimate at cumulative rank `rank` (1-based) given per-bucket
// tallies: locate the bucket holding that rank and interpolate linearly
// between its bounds.  The overflow bucket reports its lower bound (there
// is no upper bound to interpolate toward).
double quantile_at(const std::uint64_t* tallies, std::uint64_t rank) {
  std::uint64_t cumulative = 0;
  for (std::size_t b = 0; b <= LatencyHistogram::kNumBounds; ++b) {
    const std::uint64_t in_bucket = tallies[b];
    if (rank <= cumulative + in_bucket && in_bucket > 0) {
      if (b == LatencyHistogram::kNumBounds) return kBounds[b - 1];
      const double lo = b == 0 ? 0.0 : kBounds[b - 1];
      const double hi = kBounds[b];
      const double frac =
          static_cast<double>(rank - cumulative) / static_cast<double>(in_bucket);
      return lo + frac * (hi - lo);
    }
    cumulative += in_bucket;
  }
  return cumulative == 0 ? 0.0 : kBounds[LatencyHistogram::kNumBounds - 1];
}

}  // namespace

const double* LatencyHistogram::bounds() noexcept { return kBounds; }

void LatencyHistogram::record_us(double us) noexcept {
  std::size_t bucket = 0;
  if (std::isfinite(us) && us > 0.0) {
    const double* end = kBounds + kNumBounds;
    bucket = static_cast<std::size_t>(std::upper_bound(kBounds, end, us) -
                                      kBounds);
  }
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t LatencyHistogram::count() const noexcept {
  std::uint64_t total = 0;
  for (const auto& b : buckets_) total += b.load(std::memory_order_relaxed);
  return total;
}

LatencyHistogram::Quantiles LatencyHistogram::quantiles() const noexcept {
  std::uint64_t tallies[kNumBounds + 1];
  std::uint64_t total = 0;
  for (std::size_t b = 0; b <= kNumBounds; ++b) {
    tallies[b] = buckets_[b].load(std::memory_order_relaxed);
    total += tallies[b];
  }
  Quantiles q;
  q.count = total;
  if (total == 0) return q;
  // rank(p) = ceil(p * total), clamped to [1, total].
  const auto rank = [total](double p) {
    const auto r = static_cast<std::uint64_t>(
        std::ceil(p * static_cast<double>(total)));
    return std::max<std::uint64_t>(1, std::min(r, total));
  };
  q.p50_us = quantile_at(tallies, rank(0.50));
  q.p99_us = quantile_at(tallies, rank(0.99));
  q.p999_us = quantile_at(tallies, rank(0.999));
  for (std::size_t b = kNumBounds + 1; b-- > 0;) {
    if (tallies[b] > 0) {
      q.max_bound_us = b == kNumBounds ? kBounds[kNumBounds - 1] : kBounds[b];
      break;
    }
  }
  return q;
}

Counter* MetricsRegistry::counter(const std::string& name) {
  util::MutexLock lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return slot.get();
}

LatencyHistogram* MetricsRegistry::histogram(const std::string& name) {
  util::MutexLock lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<LatencyHistogram>();
  return slot.get();
}

MetricsSnapshot MetricsRegistry::snapshot() {
  util::MutexLock lock(mutex_);
  const auto now = std::chrono::steady_clock::now();
  const double window_s =
      std::chrono::duration<double>(now - last_snapshot_).count();
  last_snapshot_ = now;
  const double safe_window = window_s > 0.0 ? window_s : 1.0;

  MetricsSnapshot snap;
  snap.window_s = window_s;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    const std::uint64_t value = counter->value();
    const std::uint64_t prev = last_counts_[name];
    last_counts_[name] = value;
    snap.counters.push_back(
        {name, value, static_cast<double>(value - prev) / safe_window});
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, hist] : histograms_) {
    MetricsSnapshot::HistogramSample sample;
    sample.name = name;
    sample.q = hist->quantiles();
    const std::uint64_t prev = last_histogram_counts_[name];
    last_histogram_counts_[name] = sample.q.count;
    sample.rate_per_s =
        static_cast<double>(sample.q.count - prev) / safe_window;
    snap.histograms.push_back(std::move(sample));
  }
  return snap;
}

std::string MetricsSnapshot::format() const {
  std::string out;
  char line[256];
  std::snprintf(line, sizeof(line), "metrics snapshot (window %.3fs)\n",
                window_s);
  out += line;
  for (const auto& h : histograms) {
    std::snprintf(line, sizeof(line),
                  "  %-40s count=%llu rate=%.1f/s p50=%.1fus p99=%.1fus "
                  "p999=%.1fus\n",
                  h.name.c_str(), static_cast<unsigned long long>(h.q.count),
                  h.rate_per_s, h.q.p50_us, h.q.p99_us, h.q.p999_us);
    out += line;
  }
  for (const auto& c : counters) {
    std::snprintf(line, sizeof(line), "  %-40s value=%llu rate=%.1f/s\n",
                  c.name.c_str(), static_cast<unsigned long long>(c.value),
                  c.rate_per_s);
    out += line;
  }
  return out;
}

}  // namespace cocktail::serve
