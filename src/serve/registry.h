// Artifact loading for the serving runtime.
//
// The pipeline caches every trained network under COCKTAIL_MODEL_DIR with
// util::model_cache_path naming (`<system>_<kind>_v<version>_seed<seed>`).
// A serving process must never train: it loads the distilled student κ*
// (kind "studentR", or "studentD" for the direct baseline) plus a fallback
// expert straight from that cache and refuses to start when they are
// missing.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "control/nn_controller.h"
#include "core/pipeline.h"
#include "serve/controller_server.h"

namespace cocktail::serve {

/// True when the cached artifact `<system>_<kind>_v<ver>_seed<seed>.nnctl`
/// exists.
[[nodiscard]] bool cached_controller_exists(const std::string& system_name,
                                            const std::string& kind,
                                            std::uint64_t seed);

/// Loads a cached NnController artifact by (system, kind, seed) from the
/// model cache; `label` becomes the controller's describe() string.  Throws
/// std::runtime_error when the artifact is missing or fails validation
/// (truncated, mis-shaped, or non-finite files never reach serving).
[[nodiscard]] std::shared_ptr<const ctrl::NnController> load_cached_controller(
    const std::string& system_name, const std::string& kind,
    std::uint64_t seed, std::string label);

/// Registers `artifacts.robust_student` (κ*) under `name` with the
/// pipeline's first expert as the certified-safety fallback — the serving
/// shape the paper's verifiability argument suggests: one verified network
/// in-regime, one trusted expert out-of-regime.
void register_pipeline_student(ControllerServer& server,
                               const std::string& name,
                               const core::PipelineArtifacts& artifacts,
                               SafetyMonitor monitor);

}  // namespace cocktail::serve
