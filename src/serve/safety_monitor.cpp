#include "serve/safety_monitor.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>
#include <vector>

namespace cocktail::serve {

SafetyMonitor SafetyMonitor::trust_all() {
  SafetyMonitor monitor;
  monitor.mode_ = Mode::kAll;
  return monitor;
}

SafetyMonitor SafetyMonitor::inside_box(sys::Box box, double margin) {
  if (margin < 0.0)
    throw std::invalid_argument("SafetyMonitor: negative margin");
  SafetyMonitor monitor;
  monitor.mode_ = Mode::kBox;
  monitor.box_ = std::move(box);
  monitor.margin_ = margin;
  return monitor;
}

SafetyMonitor SafetyMonitor::inside_invariant(verify::InvariantResult result,
                                              sys::Box domain, double margin) {
  if (margin < 0.0)
    throw std::invalid_argument("SafetyMonitor: negative margin");
  if (!result.completed)
    throw std::invalid_argument(
        "SafetyMonitor: invariant computation did not complete — its member "
        "set certifies nothing");
  if (result.grid.size() != domain.dim())
    throw std::invalid_argument(
        "SafetyMonitor: invariant grid / domain dimension mismatch");
  SafetyMonitor monitor;
  monitor.mode_ = Mode::kInvariant;
  monitor.box_ = std::move(domain);
  monitor.margin_ = margin;
  monitor.invariant_ =
      std::make_shared<const verify::InvariantResult>(std::move(result));
  // Key the member set on the space-filling curve when the grid packs into
  // a 64-bit Morton key; outsized grids keep the flat odometer fallback.
  // Built once here — the monitor stays immutable after construction, so
  // concurrent certified() calls share the tree without a lock.
  if (verify::CellSetTree::supports(monitor.invariant_->grid))
    monitor.member_tree_ = std::make_shared<const verify::CellSetTree>(
        verify::CellSetTree::build(monitor.invariant_->grid,
                                   monitor.invariant_->member));
  return monitor;
}

bool SafetyMonitor::certified(const la::Vec& state) const {
  // A corrupted observation certifies nothing, in *every* mode: the
  // exclusion-direction comparisons below are NaN-blind (each comparison is
  // false for NaN, so a garbage state would fall through as certified), and
  // even trust_all promises only that finite states are served by the
  // primary — a non-finite state always routes to the fallback.
  for (std::size_t d = 0; d < state.size(); ++d)
    if (!std::isfinite(state[d])) return false;
  switch (mode_) {
    case Mode::kNone:
      return false;
    case Mode::kAll:
      return true;
    case Mode::kBox: {
      if (state.size() != box_.dim()) return false;
      for (std::size_t d = 0; d < state.size(); ++d)
        if (state[d] < box_.lo[d] + margin_ ||
            state[d] > box_.hi[d] - margin_)
          return false;
      return true;
    }
    case Mode::kInvariant: {
      if (state.size() != box_.dim()) return false;
      if (margin_ == 0.0) return invariant_->contains(box_, state);
      // Every grid cell overlapped by [state - margin, state + margin] must
      // be a member.  Corner sampling alone would be unsound: a margin wider
      // than half a cell can straddle interior cells no corner lands in.
      std::vector<int> lo_k(state.size()), hi_k(state.size());
      for (std::size_t d = 0; d < state.size(); ++d) {
        const double lo = state[d] - margin_;
        const double hi = state[d] + margin_;
        if (lo < box_.lo[d] || hi > box_.hi[d]) return false;  // leaves X.
        const double w = (box_.hi[d] - box_.lo[d]) /
                         static_cast<double>(invariant_->grid[d]);
        lo_k[d] = std::clamp(
            static_cast<int>(std::floor((lo - box_.lo[d]) / w)), 0,
            invariant_->grid[d] - 1);
        hi_k[d] = std::clamp(
            static_cast<int>(std::floor((hi - box_.lo[d]) / w)), 0,
            invariant_->grid[d] - 1);
      }
      // Every overlapped cell must be a member: a pruned descent of the
      // SFC-keyed tree when one was built, the flat odometer otherwise.
      // The two walks return bitwise-identical verdicts (tested).
      if (member_tree_) return member_tree_->all_members(lo_k, hi_k);
      return window_all_members_flat(lo_k, hi_k);
    }
  }
  return false;
}

// SNDLINT-ALLOW(nan-blind-compare): pure integer cell-coordinate walk — no floating-point inputs reach the flat member odometer.
bool SafetyMonitor::window_all_members_flat(
    const std::vector<int>& lo_k, const std::vector<int>& hi_k) const {
  // Odometer over the overlapped cell range (dim 0 fastest, matching
  // InvariantResult's flattened indexing).
  std::vector<int> k = lo_k;
  for (;;) {
    std::size_t index = 0;
    std::size_t stride = 1;
    for (std::size_t d = 0; d < k.size(); ++d) {
      index += static_cast<std::size_t>(k[d]) * stride;
      stride *= static_cast<std::size_t>(invariant_->grid[d]);
    }
    if (invariant_->member[index] == 0) return false;
    std::size_t d = 0;
    while (d < k.size() && ++k[d] > hi_k[d]) {
      k[d] = lo_k[d];
      ++d;
    }
    if (d == k.size()) break;
  }
  return true;
}

double SafetyMonitor::action_deviation_bound(const ctrl::Controller& controller,
                                             double epsilon_inf) {
  const double lip = controller.lipschitz_bound();
  if (lip < 0.0) return -1.0;
  return lip * std::sqrt(static_cast<double>(controller.state_dim())) *
         epsilon_inf;
}

}  // namespace cocktail::serve
