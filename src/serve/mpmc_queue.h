// Bounded lock-free MPMC submission queue (Vyukov ring).
//
// The sharded serving tier gives every controller `num_shards` of these
// queues: any number of submitter threads push requests, the shard's owning
// dispatcher pops them into micro-batches, and a full ring is the admission
// controller's load-shedding signal (try_push returns false; the caller
// rejects the request with a reason instead of queueing unboundedly).
//
// This is the standard Dmitry Vyukov bounded MPMC algorithm: a power-of-two
// ring of cells, each carrying a sequence number, plus one push ticket and
// one pop ticket.  A producer claims a slot by CAS-incrementing the push
// ticket once the slot's sequence says it is free; a consumer symmetrically
// claims via the pop ticket once the sequence says the slot is full.  The
// queue is linearizable per operation and FIFO per producer (each producer's
// tickets are claimed in its program order).
//
// Memory-order contract (PR 7 policy: no locks, so the justification lives
// here at the declaration and the TSan CI entry checks it empirically):
//
//   cell.sequence   The ONLY publication edge.  A producer stores the
//                   payload into the cell and then store-releases
//                   sequence = ticket + 1; the consumer load-acquires the
//                   sequence before touching the payload, so the payload
//                   write happens-before the payload read.  The consumer's
//                   release store of sequence = ticket + capacity hands the
//                   empty slot back to the next-lap producer the same way.
//   push_/pop_ticket  fetch_add/CAS with relaxed ordering: tickets only
//                   allocate slot indices; they publish nothing.  All
//                   payload ordering rides on cell.sequence (above).
//   empty()/approx_size  Relaxed ticket reads: a monitoring snapshot that
//                   may be stale under concurrency.  It is exact only when
//                   the caller has externally quiesced one side — the
//                   dispatcher shutdown path reads it after the submitter
//                   gate in ControllerServer proves no producer is active,
//                   and it is the shard's sole consumer (see the
//                   shutdown-handshake audit in controller_server.h).
//
// No determinism burden: which requests share a queue (and hence a GEMM
// micro-batch) is scheduling-dependent by design, and the serving contract
// makes every answer bitwise independent of batch composition.  Nothing
// this queue reorders can reach a result.
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <stdexcept>
#include <utility>

namespace cocktail::serve {

template <typename T>
class MpmcQueue {
 public:
  /// `capacity` is rounded up to the next power of two (minimum 2): the
  /// ring mask requires it, and an admission bound is a soft knob — the
  /// exact rounded value is reported by capacity().  Throws
  /// std::invalid_argument when zero or when rounding would overflow.
  explicit MpmcQueue(std::size_t capacity) {
    if (capacity == 0)
      throw std::invalid_argument("MpmcQueue: capacity must be positive");
    std::size_t rounded = 2;
    while (rounded < capacity) {
      if (rounded > (static_cast<std::size_t>(1) << 62))
        throw std::invalid_argument("MpmcQueue: capacity overflows the ring");
      rounded <<= 1;
    }
    mask_ = rounded - 1;
    cells_ = std::make_unique<Cell[]>(rounded);
    for (std::size_t i = 0; i < rounded; ++i)
      cells_[i].sequence.store(i, std::memory_order_relaxed);
  }

  MpmcQueue(const MpmcQueue&) = delete;
  MpmcQueue& operator=(const MpmcQueue&) = delete;

  [[nodiscard]] std::size_t capacity() const noexcept { return mask_ + 1; }

  /// Enqueues by move.  Returns false — with `value` untouched — when the
  /// ring is full: the load-shedding signal.  Safe from any number of
  /// threads.
  [[nodiscard]] bool try_push(T&& value) {
    std::size_t ticket = push_ticket_.load(std::memory_order_relaxed);
    for (;;) {
      Cell& cell = cells_[ticket & mask_];
      const std::size_t seq = cell.sequence.load(std::memory_order_acquire);
      if (seq == ticket) {
        if (push_ticket_.compare_exchange_weak(ticket, ticket + 1,
                                               std::memory_order_relaxed))
          break;
        // CAS failure reloaded `ticket`; retry with the newer claim.
      } else if (seq < ticket) {
        // The slot one lap behind is still occupied: the ring is full.
        return false;
      } else {
        ticket = push_ticket_.load(std::memory_order_relaxed);
      }
    }
    Cell& cell = cells_[ticket & mask_];
    cell.value = std::move(value);
    cell.sequence.store(ticket + 1, std::memory_order_release);
    return true;
  }

  /// Dequeues into `out`.  Returns false when the ring is empty.  Safe from
  /// any number of threads (the serving tier uses one consumer per shard,
  /// but the algorithm does not require it).
  [[nodiscard]] bool try_pop(T& out) {
    std::size_t ticket = pop_ticket_.load(std::memory_order_relaxed);
    for (;;) {
      Cell& cell = cells_[ticket & mask_];
      const std::size_t seq = cell.sequence.load(std::memory_order_acquire);
      if (seq == ticket + 1) {
        if (pop_ticket_.compare_exchange_weak(ticket, ticket + 1,
                                              std::memory_order_relaxed))
          break;
      } else if (seq < ticket + 1) {
        // The slot has not been published for this lap: the ring is empty.
        return false;
      } else {
        ticket = pop_ticket_.load(std::memory_order_relaxed);
      }
    }
    Cell& cell = cells_[ticket & mask_];
    out = std::move(cell.value);
    cell.sequence.store(ticket + mask_ + 1, std::memory_order_release);
    return true;
  }

  /// Monitoring snapshot of the queue depth; stale under concurrency (see
  /// the memory-order contract above).  Exact when one side is quiesced.
  [[nodiscard]] std::size_t approx_size() const noexcept {
    const std::size_t push = push_ticket_.load(std::memory_order_relaxed);
    const std::size_t pop = pop_ticket_.load(std::memory_order_relaxed);
    return push >= pop ? push - pop : 0;
  }

  [[nodiscard]] bool empty() const noexcept { return approx_size() == 0; }

 private:
  struct Cell {
    std::atomic<std::size_t> sequence{0};
    T value{};
  };

  // The tickets live on their own cache lines so producer traffic
  // (push_ticket_) never false-shares with consumer traffic (pop_ticket_).
  std::unique_ptr<Cell[]> cells_;
  std::size_t mask_ = 0;
  alignas(64) std::atomic<std::size_t> push_ticket_{0};
  alignas(64) std::atomic<std::size_t> pop_ticket_{0};
};

}  // namespace cocktail::serve
