#include "serve/registry.h"

#include <stdexcept>
#include <utility>

#include "util/paths.h"

namespace cocktail::serve {

bool cached_controller_exists(const std::string& system_name,
                              const std::string& kind, std::uint64_t seed) {
  return util::file_exists(
      util::model_cache_path(system_name, kind, seed, "nnctl"));
}

std::shared_ptr<const ctrl::NnController> load_cached_controller(
    const std::string& system_name, const std::string& kind,
    std::uint64_t seed, std::string label) {
  const std::string path =
      util::model_cache_path(system_name, kind, seed, "nnctl");
  if (!util::file_exists(path))
    throw std::runtime_error(
        "serve::load_cached_controller: no cached artifact at " + path +
        " (run the pipeline for this system/seed first; note the cache is "
        "versioned — a version bump invalidates older artifacts)");
  return std::make_shared<const ctrl::NnController>(
      ctrl::NnController::load_file(path, std::move(label)));
}

void register_pipeline_student(ControllerServer& server,
                               const std::string& name,
                               const core::PipelineArtifacts& artifacts,
                               SafetyMonitor monitor) {
  if (artifacts.robust_student == nullptr || artifacts.experts.empty())
    throw std::invalid_argument(
        "serve::register_pipeline_student: artifacts are missing the robust "
        "student or the experts");
  auto student = std::dynamic_pointer_cast<const ctrl::NnController>(
      artifacts.robust_student);
  if (student == nullptr)
    throw std::invalid_argument(
        "serve::register_pipeline_student: robust student is not an "
        "NnController");
  server.register_controller(name, std::move(student),
                             artifacts.experts.front(), std::move(monitor));
}

}  // namespace cocktail::serve
