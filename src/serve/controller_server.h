// Controller-serving runtime: sharded micro-batched inference with a
// certified-safety fallback, admission control, and SLO metrics.
//
// The pipeline's end product κ* is a single small network with a certified
// Lipschitz bound — ideal for high-throughput serving, since N concurrent
// requests collapse into one layer-wise GEMM (nn::Mlp::forward_batch).
// Every registered controller gets its own serving tier:
//
//   submit() ── admission gate ──► MPMC shard queues ──► dispatcher threads
//               (bounded depth,     (serve/mpmc_queue.h,  (one per shard
//                shed-with-reason)   num_shards rings)     group; micro-batch
//                                                          + linger, no
//                                                          global lock)
//
// Each controller runs `num_dispatchers` dispatcher threads; dispatcher d
// owns shards {s : s mod D == d} and forms micro-batches (bounded by
// `max_batch`, lingering up to `max_wait`) exclusively from its own shards,
// so batch formation never takes a lock shared with other dispatchers or
// with submitters.  A request whose home shard ring is full tries the
// remaining shards once; if every ring is full it is *shed*: the future
// resolves to a RejectedError(kQueueFull) and the shard's shed counter
// bumps.  Requests whose state leaves the certified region are answered by
// the trusted fallback expert (SafetyMonitor routing), and per-controller
// routing/batch/admission counters plus a fixed-bucket latency histogram
// are published through a serve::MetricsRegistry.
//
// Determinism: batching never changes an answer.  forward_batch rows are
// bitwise identical to the scalar forward path, so every request receives
// exactly the action the synchronous path (`synchronous = true`, or
// act_reference) produces, for ANY dispatcher / shard / batch-size / worker
// / arrival-order configuration — pinned by test_serve across the
// {1,2,4} dispatchers × {1,2,8} shards sweep.  Only *which requests share a
// GEMM* is scheduling-dependent, and that is observable solely through the
// batch counters.  Certificate lookups route through SafetyMonitor's
// verify::outward()-backed, NaN-closed predicates in every mode.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "control/controller.h"
#include "control/nn_controller.h"
#include "la/vec.h"
#include "serve/metrics.h"
#include "serve/mpmc_queue.h"
#include "serve/safety_monitor.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"
#include "util/thread_pool.h"

namespace cocktail::serve {

struct ServeConfig {
  /// Upper bound on requests drained into one dispatch cycle.
  std::size_t max_batch = 32;
  /// How long a dispatcher lingers for a partial batch to fill before
  /// executing what it has (0 = dispatch whatever is queued immediately).
  std::chrono::microseconds max_wait{200};
  /// util::WorkerScope convention for batch execution: 0 = shared pool,
  /// 1 = serial on the dispatcher thread, k > 1 = dedicated pool of k.
  int num_workers = 1;
  /// Rows per GEMM sub-batch when a primary batch fans across workers.
  std::size_t rows_per_chunk = 16;
  /// Dispatcher threads per registered controller.  Clamped to
  /// [1, num_shards]: a dispatcher with no shards would have nothing to do.
  std::size_t num_dispatchers = 1;
  /// MPMC submission-queue shards per registered controller.
  std::size_t num_shards = 1;
  /// Bounded depth of each shard ring (rounded up to a power of two).
  /// num_shards * shard_capacity is the admission bound: beyond it,
  /// submissions are shed with RejectedError(kQueueFull).
  std::size_t shard_capacity = 1024;
  /// Idle-dispatcher doorbell timeout: the backstop poll period bounding
  /// the cost of any theoretically missed wakeup (util::Doorbell).
  std::chrono::microseconds idle_wait{100};
  /// Synchronous mode: submit() executes inline on the calling thread
  /// (batch of one, no dispatcher threads, no queues) — the deterministic
  /// reference configuration for tests.
  bool synchronous = false;
};

/// Why an admitted-or-not request's future carries an exception instead of
/// an action.
enum class RejectReason {
  kQueueFull,  ///< load shed: every shard ring was at capacity.
  kShutdown,   ///< submitted after stop().
};

/// The exception a rejected request's future throws from get().  The
/// submit-after-shutdown contract (pinned by test_serve): submit() on a
/// stopped server returns a future that throws RejectedError(kShutdown) —
/// it does NOT throw synchronously, so flooding clients need only one error
/// path.  Programmer errors (unknown controller name, wrong state
/// dimension) still throw std::invalid_argument synchronously.
class RejectedError : public std::runtime_error {
 public:
  explicit RejectedError(RejectReason reason)
      : std::runtime_error(reason == RejectReason::kQueueFull
                               ? "ControllerServer: request shed (all shard "
                                 "queues full)"
                               : "ControllerServer: submit after stop()"),
        reason_(reason) {}
  [[nodiscard]] RejectReason reason() const noexcept { return reason_; }

 private:
  RejectReason reason_;
};

/// Per-shard admission tallies.
struct AdmissionCounters {
  std::uint64_t accepted = 0;  ///< enqueued (or executed inline) via this shard.
  std::uint64_t shed = 0;      ///< load-shed with this shard as home.
  std::uint64_t rejected = 0;  ///< refused after stop() with this shard as home.
};

/// Monotonic per-controller serving counters (the metrics surface).
/// Exactness: accepted + shed + rejected == submit() calls that passed
/// argument validation, and primary + fallback == accepted — guaranteed
/// once all submitters returned and their futures resolved (drain()/stop());
/// mid-flight reads may see per-counter skew.
struct ServeCounters {
  std::uint64_t primary = 0;   ///< requests answered by the served network.
  std::uint64_t fallback = 0;  ///< requests routed to the fallback expert.
  std::uint64_t batches = 0;   ///< primary micro-batches executed.
  std::uint64_t max_batch_rows = 0;  ///< largest primary batch observed.
  std::uint64_t accepted = 0;  ///< admitted requests (sum over shards).
  std::uint64_t shed = 0;      ///< load-shed requests (sum over shards).
  std::uint64_t rejected = 0;  ///< post-stop() rejections (sum over shards).
  std::vector<AdmissionCounters> shards;  ///< per-shard breakdown.
};

class ControllerServer {
 public:
  /// `metrics` is shared so several servers (or the caller's own
  /// instruments) can publish into one registry; pass nullptr to let the
  /// server create a private one (reachable via metrics()).
  explicit ControllerServer(ServeConfig config = {},
                            std::shared_ptr<MetricsRegistry> metrics = nullptr);
  ~ControllerServer();

  ControllerServer(const ControllerServer&) = delete;
  ControllerServer& operator=(const ControllerServer&) = delete;

  /// Registers a served controller under `name` and starts its dispatcher
  /// threads.  `primary` is the batched network (κ*), `fallback` the
  /// trusted expert answering uncertified requests; both are required,
  /// their dimensions must agree, and `name` must be new.  Registration is
  /// allowed while serving; throws std::runtime_error after stop().
  void register_controller(const std::string& name,
                           std::shared_ptr<const ctrl::NnController> primary,
                           ctrl::ControllerPtr fallback, SafetyMonitor monitor);

  /// Enqueues one inference request; the future carries the action, the
  /// exception the controller threw, or a RejectedError (load shed /
  /// post-stop — see RejectedError for the pinned contract).  Safe to call
  /// from any number of threads.  Throws std::invalid_argument for an
  /// unknown name or a state of the wrong dimension.
  [[nodiscard]] std::future<la::Vec> submit(const std::string& name,
                                            la::Vec state);

  /// The pure per-request reference path: same routing, same answer, no
  /// queue, no counters.  What submit() must bitwise-reproduce.
  [[nodiscard]] la::Vec act_reference(const std::string& name,
                                      const la::Vec& state) const;

  [[nodiscard]] ServeCounters counters(const std::string& name) const;

  /// The registry this server publishes serve.<name>.* metrics into.
  [[nodiscard]] MetricsRegistry& metrics() noexcept { return *metrics_; }
  [[nodiscard]] std::shared_ptr<MetricsRegistry> metrics_ptr() const noexcept {
    return metrics_;
  }

  /// Blocks until every admitted request has been answered.
  void drain();

  /// Drains outstanding requests, joins every dispatcher, and rejects
  /// subsequent submissions (RejectedError(kShutdown) futures).  Idempotent;
  /// invoked by the destructor.
  void stop();

 private:
  // ---- Memory-order audit (for the TSan CI entry) -------------------------
  //
  // Counters/histograms: relaxed monotonic metrics — see serve/metrics.h.
  // max_batch_rows is the same class of standalone metric (relaxed CAS max).
  //
  // Shard rings: serve/mpmc_queue.h documents the acquire/release payload
  // hand-off at its declaration.
  //
  // Shutdown handshake (the "shutdown-handshake audit" mpmc_queue.h points
  // at) — three seq_cst atomics form a Dekker-style gate with NO lock held
  // on the submit fast path:
  //
  //   stopping_            stop() store-true (seq_cst) before ringing and
  //                        joining dispatchers.
  //   active_submitters_   submit() increments (seq_cst RMW), THEN checks
  //                        stopping_: if set it backs out and rejects; if
  //                        clear it pushes and decrements (seq_cst RMW).
  //   A dispatcher exits only when stopping_ && active_submitters_ == 0 &&
  //   its shards are empty, in that read order.  Reading 0 from the seq_cst
  //   decrement synchronizes-with it, so every counted submitter's push
  //   happens-before the final emptiness check — a request is either
  //   observed by the exit check or its submitter saw stopping_ and
  //   rejected.  No admitted request is ever stranded.  (Seq_cst on both
  //   sides is what closes the store/load race the classic Dekker pattern
  //   needs; acquire/release alone would not.)
  //
  //   pending_             admitted-but-unanswered request count, seq_cst.
  //                        Incremented by the submitter BEFORE try_push (so
  //                        a dispatcher finishing the request first can
  //                        never underflow it), decremented by the
  //                        dispatcher after the futures are satisfied, and
  //                        backed out by the submitter on a shed.  drain()
  //                        waits on pending_ == 0 via drain_bell_.
  //
  // Doorbells: util::Doorbell documents its own contract; all dispatcher
  // waits are timed by config_.idle_wait, so no lost wakeup can hang.
  // -------------------------------------------------------------------------

  struct Entry;

  struct Request {
    Entry* entry = nullptr;
    la::Vec state;
    bool to_fallback = false;
    std::promise<la::Vec> result;
    std::chrono::steady_clock::time_point accepted_at{};
  };

  /// One MPMC ring plus its admission tallies.  The Counter pointers alias
  /// MetricsRegistry entries (stable for the registry's lifetime) so the
  /// per-shard counters ARE the published metrics — one increment, no
  /// double bookkeeping.
  struct ShardState {
    explicit ShardState(std::size_t capacity) : queue(capacity) {}
    MpmcQueue<Request> queue;
    Counter* accepted = nullptr;
    Counter* shed = nullptr;
    Counter* rejected = nullptr;
  };

  struct DispatcherState {
    util::Doorbell bell;
    std::thread thread;
  };

  // The controller fields (primary/fallback/monitor) are immutable after
  // register_controller publishes the Entry under registry_mutex_; entries
  // are never erased and unique_ptr gives them a stable address, so
  // references handed out by find_entry stay valid without the lock.
  struct Entry {
    std::shared_ptr<const ctrl::NnController> primary;
    ctrl::ControllerPtr fallback;
    SafetyMonitor monitor;
    std::vector<std::unique_ptr<ShardState>> shards;
    std::vector<std::unique_ptr<DispatcherState>> dispatchers;
    // Round-robin home-shard cursor; relaxed — it only spreads load, and no
    // correctness property depends on its ordering.
    std::atomic<std::uint64_t> next_shard{0};
    Counter* primary_count = nullptr;   // registry-backed (relaxed monotonic)
    Counter* fallback_count = nullptr;
    Counter* batch_count = nullptr;
    std::atomic<std::uint64_t> max_batch_rows{0};
    LatencyHistogram* latency = nullptr;
  };

  [[nodiscard]] Entry& find_entry(const std::string& name) const
      COCKTAIL_EXCLUDES(registry_mutex_);
  [[nodiscard]] std::future<la::Vec> reject(Entry& entry, Request&& request,
                                            RejectReason reason);
  void execute_inline(Request& request);
  void execute_slice(Entry& entry, std::vector<Request>& slice);
  void dispatch_loop(Entry& entry, std::size_t dispatcher_index);

  ServeConfig config_;
  util::WorkerScope workers_;
  std::shared_ptr<MetricsRegistry> metrics_;

  // registry_mutex_ covers the name -> Entry map and the dispatcher
  // lifecycle (register spawns and stop() joins under it).  The submit fast
  // path holds NO lock between the active_submitters_ increment and
  // decrement, so stop() joining under the lock cannot deadlock with
  // submitters.
  mutable util::Mutex registry_mutex_;
  std::map<std::string, std::unique_ptr<Entry>> entries_
      COCKTAIL_GUARDED_BY(registry_mutex_);

  // Shutdown/drain gate — see the memory-order audit above.
  std::atomic<bool> stopping_{false};
  std::atomic<std::uint64_t> active_submitters_{0};
  std::atomic<std::uint64_t> pending_{0};
  util::Doorbell drain_bell_;
};

}  // namespace cocktail::serve
