// Controller-serving runtime: micro-batched inference with a
// certified-safety fallback.
//
// The pipeline's end product κ* is a single small network with a certified
// Lipschitz bound — ideal for high-throughput serving, since N concurrent
// requests collapse into one layer-wise GEMM (nn::Mlp::forward_batch).
// This server accepts concurrent submit() calls, and a dispatcher thread
// drains the request queue into micro-batches (bounded by `max_batch`,
// lingering up to `max_wait` for a partial batch to fill) executed on a
// util::ThreadPool.  Each served controller pairs the network with a
// SafetyMonitor and a trusted fallback expert: requests whose state leaves
// the certified region are answered by the fallback instead, and
// per-controller primary/fallback counters are exposed for metrics.
//
// Determinism: batching never changes an answer.  forward_batch rows are
// bitwise identical to the scalar forward path, so every request receives
// exactly the action the synchronous path (`synchronous = true`, or
// act_reference) produces, for ANY batch-size / worker / arrival-order
// configuration — pinned by test_serve.  Only *which requests share a GEMM*
// is scheduling-dependent, and that is observable solely through the batch
// counters.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "control/controller.h"
#include "control/nn_controller.h"
#include "la/vec.h"
#include "serve/safety_monitor.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"
#include "util/thread_pool.h"

namespace cocktail::serve {

struct ServeConfig {
  /// Upper bound on requests drained into one dispatch cycle.
  std::size_t max_batch = 32;
  /// How long the dispatcher lingers for a partial batch to fill before
  /// executing what it has (0 = dispatch whatever is queued immediately).
  std::chrono::microseconds max_wait{200};
  /// util::WorkerScope convention for batch execution: 0 = shared pool,
  /// 1 = serial on the dispatcher thread, k > 1 = dedicated pool of k.
  int num_workers = 1;
  /// Rows per GEMM sub-batch when a primary batch fans across workers.
  std::size_t rows_per_chunk = 16;
  /// Synchronous mode: submit() executes inline on the calling thread
  /// (batch of one, no dispatcher thread) — the deterministic reference
  /// configuration for tests.
  bool synchronous = false;
};

/// Monotonic per-controller serving counters (the metrics surface).
struct ServeCounters {
  std::uint64_t primary = 0;   ///< requests answered by the served network.
  std::uint64_t fallback = 0;  ///< requests routed to the fallback expert.
  std::uint64_t batches = 0;   ///< primary micro-batches executed.
  std::uint64_t max_batch_rows = 0;  ///< largest primary batch observed.
};

class ControllerServer {
 public:
  explicit ControllerServer(ServeConfig config = {});
  ~ControllerServer();

  ControllerServer(const ControllerServer&) = delete;
  ControllerServer& operator=(const ControllerServer&) = delete;

  /// Registers a served controller under `name`.  `primary` is the batched
  /// network (κ*), `fallback` the trusted expert answering uncertified
  /// requests; both are required, their dimensions must agree, and `name`
  /// must be new.  Registration is allowed while serving.
  void register_controller(const std::string& name,
                           std::shared_ptr<const ctrl::NnController> primary,
                           ctrl::ControllerPtr fallback, SafetyMonitor monitor);

  /// Enqueues one inference request; the future carries the action (or the
  /// exception the controller threw).  Safe to call from any number of
  /// threads.  Throws std::invalid_argument for an unknown name or a state
  /// of the wrong dimension, std::runtime_error after stop().
  [[nodiscard]] std::future<la::Vec> submit(const std::string& name,
                                            la::Vec state);

  /// The pure per-request reference path: same routing, same answer, no
  /// queue, no counters.  What submit() must bitwise-reproduce.
  [[nodiscard]] la::Vec act_reference(const std::string& name,
                                      const la::Vec& state) const;

  [[nodiscard]] ServeCounters counters(const std::string& name) const;

  /// Blocks until every submitted request has been answered.
  void drain();

  /// Drains outstanding requests and joins the dispatcher; subsequent
  /// submit() calls throw.  Idempotent; invoked by the destructor.
  void stop();

 private:
  // Memory orders (audited for the TSan CI entry): the four counters are
  // monotonic metrics — each is internally consistent on its own, nothing
  // is ever published *through* them, and no control flow reads one and
  // then touches other shared state on the strength of that read.  Every
  // access therefore uses std::memory_order_relaxed: the atomicity is what
  // prevents lost increments and torn reads; ordering against the request
  // payloads is provided by the queue_mutex_ hand-off (submit -> dispatcher)
  // and by the promise/future hand-off (dispatcher -> waiter), both of
  // which are full synchronization points.  counters() may observe a
  // mid-batch snapshot (e.g. primary already bumped, batches not yet) —
  // exact totals are only guaranteed once the requests' futures resolved
  // (drain()/stop()), which test_serve and the stress suite pin.
  //
  // The controller fields (primary/fallback/monitor) are immutable after
  // register_controller publishes the Entry under registry_mutex_; entries
  // are never erased and unique_ptr gives them a stable address, so
  // references handed out by find_entry stay valid without the lock.
  struct Entry {
    std::shared_ptr<const ctrl::NnController> primary;
    ctrl::ControllerPtr fallback;
    SafetyMonitor monitor;
    std::atomic<std::uint64_t> primary_count{0};
    std::atomic<std::uint64_t> fallback_count{0};
    std::atomic<std::uint64_t> batch_count{0};
    std::atomic<std::uint64_t> max_batch_rows{0};
  };

  struct Request {
    Entry* entry = nullptr;
    la::Vec state;
    bool to_fallback = false;
    std::promise<la::Vec> result;
  };

  [[nodiscard]] Entry& find_entry(const std::string& name) const
      COCKTAIL_EXCLUDES(registry_mutex_);
  void execute_inline(Request& request);
  void execute_slice(std::vector<Request>& slice);
  void dispatch_loop() COCKTAIL_EXCLUDES(queue_mutex_);

  ServeConfig config_;
  util::WorkerScope workers_;

  // Two independent locks, never held together: registry_mutex_ covers the
  // name -> Entry map (lookups release it before any inference runs),
  // queue_mutex_ covers the request queue and the dispatcher lifecycle.
  // ACQUIRED_BEFORE pins that independence: were a future change to nest
  // them the other way, the analysis reports the inversion.
  mutable util::Mutex registry_mutex_
      COCKTAIL_ACQUIRED_BEFORE(queue_mutex_);
  std::unordered_map<std::string, std::unique_ptr<Entry>> entries_
      COCKTAIL_GUARDED_BY(registry_mutex_);

  // Shutdown/drain handshake (audited for the TSan CI entry): submit()
  // enqueues under queue_mutex_ only while !stopping_; stop() flips
  // stopping_ under the lock, wakes the dispatcher, and joins it.  The
  // dispatcher keeps executing drained slices until the queue is empty AND
  // stopping_ holds, so every accepted request is answered before the join
  // returns — there is no window in which a request is accepted but never
  // executed.  inflight_ counts slices released from the queue but still
  // executing; drain() waits on (queue empty && inflight_ == 0) via
  // drain_cv_, which the dispatcher signals while holding queue_mutex_.
  util::Mutex queue_mutex_;
  util::CondVar queue_cv_;
  util::CondVar drain_cv_;
  std::deque<Request> queue_ COCKTAIL_GUARDED_BY(queue_mutex_);
  std::size_t inflight_ COCKTAIL_GUARDED_BY(queue_mutex_) = 0;
  bool stopping_ COCKTAIL_GUARDED_BY(queue_mutex_) = false;
  std::thread dispatcher_;
};

}  // namespace cocktail::serve
