// Linearized spatial trees over SFC keys (ROADMAP: "Spatial indexing for
// certificates and reachability"; keys in verify/sfc.h).
//
// Two structures share the cstone-style recipe — sort by Morton key, build
// bottom-up in fixed key order, answer queries by pruned descent:
//
//  * CellSetTree: a sparse 2^d-tree over a *set of grid cells* (the member
//    set of a verify::InvariantResult).  Leaves are the sorted Morton keys
//    of the member cells; each level merges 2^d siblings, collapsing
//    all-full groups into a single kFull mark.  The window query
//    all_members() — "is every cell of [lo_k, hi_k] a member?" — descends
//    only nodes intersecting the window, so the serve-path margin check is
//    O(window boundary) instead of the odometer's O(window volume).
//
//  * BoxTree: a Morton-sorted bounding-volume hierarchy over interval
//    boxes (the reach frontier).  Leaves hold runs of boxes sorted by the
//    SFC key of their midpoint (ties broken by input index — the build is
//    a pure function of the input sequence); internal nodes carry exact
//    min/max hulls.  Hulls prune, but every accepting answer re-checks the
//    exact stored endpoints, so quantization never decides membership.
//
// Soundness: non-finite/invalid box components *taint* their BoxTree
// subtree — tainted hulls never short-circuit an accepting answer, and the
// per-box predicates fail closed on NaN (box_inside_region mirrors the
// PR 8 SafetyMonitor::certified fix).  NaN-safe hull folding skips invalid
// components so one corrupted box cannot poison pruning for valid
// siblings.
//
// Determinism: both builds are serial, bottom-up, in sorted key order —
// bitwise-identical structures for any worker count, so tree-backed
// verdicts inherit the repo's worker-invariance contract.  Both trees are
// immutable after build(); concurrent const queries need no lock.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "la/vec.h"
#include "sys/system.h"
#include "verify/interval.h"
#include "verify/sfc.h"

namespace cocktail::verify {

/// Fail-closed box-in-region test: every component must be finite and
/// valid (NaN/Inf certify nothing), and inside the region on every bounded
/// dimension (unbounded region dimensions always pass).  The one predicate
/// behind ReachabilityAnalyzer's safe-region sweep, per-box and tree-wide.
[[nodiscard]] bool box_inside_region(const IBox& box, const sys::Box& region);

/// Sparse linearized 2^d-tree over a member-cell set (grid dims need not
/// be powers of two; the tree covers the enclosing 2^levels super-grid and
/// absent cells are non-members).
class CellSetTree {
 public:
  /// Empty tree: no cell is a member (all_members fails closed).
  CellSetTree() = default;

  /// True when `grid` packs into a 64-bit Morton key (dim in
  /// [1, kMaxSfcDim], positive cell counts, dim * levels <= 63 bits).
  [[nodiscard]] static bool supports(const std::vector<int>& grid);

  /// Builds the tree from a flattened member array (dim 0 fastest, the
  /// InvariantResult layout).  Throws std::invalid_argument when
  /// !supports(grid) or member.size() != prod(grid).
  [[nodiscard]] static CellSetTree build(const std::vector<int>& grid,
                                         const std::vector<char>& member);

  /// True iff *every* cell of the window [lo_k, hi_k] (inclusive, per
  /// dimension) is a member.  An empty window (lo > hi anywhere) holds no
  /// cells and is vacuously covered — that takes precedence; otherwise a
  /// dimension mismatch or a window escaping the grid fails closed.
  /// Bitwise-identical verdicts to the flat odometer walk over the same
  /// member array.
  [[nodiscard]] bool all_members(const std::vector<int>& lo_k,
                                 const std::vector<int>& hi_k) const;

  [[nodiscard]] std::size_t dim() const noexcept { return dim_; }
  [[nodiscard]] int levels() const noexcept { return levels_; }
  [[nodiscard]] std::size_t member_count() const noexcept { return members_; }
  /// Mixed (explicitly stored) nodes — the tree's memory footprint.
  [[nodiscard]] std::size_t node_count() const noexcept {
    return dim_ == 0 ? 0 : children_.size() >> dim_;
  }

 private:
  static constexpr std::int32_t kEmptyChild = -1;  ///< no member below.
  static constexpr std::int32_t kFullChild = -2;   ///< all members below.

  std::size_t dim_ = 0;
  int levels_ = 0;
  std::vector<int> grid_;
  std::size_t members_ = 0;
  std::int32_t root_ = kEmptyChild;
  /// Node i's children occupy children_[i << dim_ .. (i+1) << dim_): a
  /// node index, kEmptyChild, or kFullChild.
  std::vector<std::int32_t> children_;
};

/// Morton-sorted bounding-volume hierarchy over interval boxes.
class BoxTree {
 public:
  /// Empty tree: contains no point, intersects nothing, and all_inside()
  /// is vacuously true.
  BoxTree() = default;

  /// Builds the hierarchy; a pure function of the box sequence (keys sort
  /// with input-index tie-breaks).  Throws std::invalid_argument on mixed
  /// box dimensions.  Non-finite/invalid boxes are admitted but tainted:
  /// they satisfy no query and disable hull short-circuits above them.
  [[nodiscard]] static BoxTree build(std::vector<IBox> boxes);

  [[nodiscard]] std::size_t size() const noexcept { return boxes_.size(); }
  [[nodiscard]] bool empty() const noexcept { return boxes_.empty(); }
  [[nodiscard]] const std::vector<IBox>& boxes() const noexcept {
    return boxes_;
  }

  /// True iff some box contains `point` (exact endpoint comparisons;
  /// non-finite points and dimension mismatches fail closed).
  [[nodiscard]] bool contains_point(const la::Vec& point) const;

  /// Ascending input indices of every box intersecting `query` (exact
  /// Interval::intersects per dimension; NaN components intersect
  /// nothing).  Empty on a dimension mismatch.
  [[nodiscard]] std::vector<std::size_t> intersecting(const IBox& query) const;

  /// True iff every box passes box_inside_region(box, region).  Untainted
  /// subtrees whose hull lies inside `region` accept without descending;
  /// everything else is decided at the leaves by the exact predicate.
  [[nodiscard]] bool all_inside(const sys::Box& region) const;

 private:
  struct Node {
    IBox hull;                ///< NaN-safe min/max fold of the subtree.
    std::int32_t left = -1;   ///< internal: children; leaf: -1.
    std::int32_t right = -1;
    std::size_t begin = 0;    ///< leaf: range into order_.
    std::size_t end = 0;
    bool tainted = false;     ///< subtree holds a non-finite/invalid box.
  };

  std::size_t dim_ = 0;
  std::vector<IBox> boxes_;
  std::vector<std::size_t> order_;  ///< leaf order: Morton-sorted indices.
  std::vector<Node> nodes_;
  std::int32_t root_ = -1;
};

}  // namespace cocktail::verify
