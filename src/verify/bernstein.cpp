#include "verify/bernstein.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace cocktail::verify {

double binomial(int n, int k) {
  if (k < 0 || k > n) return 0.0;
  k = std::min(k, n - k);
  double out = 1.0;
  for (int i = 1; i <= k; ++i)
    out = out * static_cast<double>(n - k + i) / static_cast<double>(i);
  return out;
}

BernsteinPoly BernsteinPoly::fit(
    const std::function<double(const la::Vec&)>& f, const IBox& box,
    const std::vector<int>& degrees) {
  if (degrees.size() != box.size())
    throw std::invalid_argument("BernsteinPoly::fit: degree arity mismatch");
  BernsteinPoly poly;
  poly.box_ = box;
  poly.degrees_ = degrees;
  std::size_t total = 1;
  for (int d : degrees) {
    if (d < 1) throw std::invalid_argument("BernsteinPoly::fit: degree < 1");
    total *= static_cast<std::size_t>(d + 1);
  }
  poly.coeffs_.resize(total);
  la::Vec x(box.size());
  for (std::size_t index = 0; index < total; ++index) {
    std::size_t rem = index;
    for (std::size_t dim = 0; dim < box.size(); ++dim) {
      const auto d = static_cast<std::size_t>(degrees[dim]);
      const std::size_t k = rem % (d + 1);
      rem /= (d + 1);
      x[dim] = box[dim].lo() + box[dim].width() * static_cast<double>(k) /
                                   static_cast<double>(d);
    }
    poly.coeffs_[index] = f(x);
  }
  return poly;
}

double BernsteinPoly::eval(const la::Vec& x) const {
  if (x.size() != box_.size())
    throw std::invalid_argument("BernsteinPoly::eval: dimension mismatch");
  // Per-dimension Bernstein basis values at the normalized coordinate.
  std::vector<std::vector<double>> basis(box_.size());
  for (std::size_t dim = 0; dim < box_.size(); ++dim) {
    const int d = degrees_[dim];
    const double w = box_[dim].width();
    const double t =
        w > 0.0 ? std::clamp((x[dim] - box_[dim].lo()) / w, 0.0, 1.0) : 0.0;
    basis[dim].resize(static_cast<std::size_t>(d) + 1);
    for (int k = 0; k <= d; ++k)
      basis[dim][k] = binomial(d, k) * std::pow(t, k) *
                      std::pow(1.0 - t, d - k);
  }
  double acc = 0.0;
  for (std::size_t index = 0; index < coeffs_.size(); ++index) {
    std::size_t rem = index;
    double b = 1.0;
    for (std::size_t dim = 0; dim < box_.size(); ++dim) {
      const auto d = static_cast<std::size_t>(degrees_[dim]);
      b *= basis[dim][rem % (d + 1)];
      rem /= (d + 1);
    }
    acc += coeffs_[index] * b;
  }
  return acc;
}

Interval BernsteinPoly::range() const {
  const auto [lo_it, hi_it] =
      std::minmax_element(coeffs_.begin(), coeffs_.end());
  return {*lo_it, *hi_it};
}

double BernsteinPoly::error_bound(double lipschitz, const IBox& box,
                                  const std::vector<int>& degrees) {
  double bound = 0.0;
  for (std::size_t i = 0; i < box.size(); ++i)
    bound += box[i].width() / std::sqrt(static_cast<double>(degrees[i]));
  return 0.5 * lipschitz * bound;
}

std::vector<int> BernsteinPoly::degrees_for(double lipschitz, const IBox& box,
                                            double epsilon, int max_degree,
                                            double& achieved) {
  const auto n = static_cast<double>(box.size());
  std::vector<int> degrees(box.size(), 1);
  for (std::size_t i = 0; i < box.size(); ++i) {
    // Equal error split: (L/2)·w_i/√d_i = ε/n  =>  d_i = (n·L·w_i/(2ε))².
    const double needed =
        n * lipschitz * box[i].width() / (2.0 * epsilon);
    const double d = std::ceil(needed * needed);
    degrees[i] = std::clamp(static_cast<int>(d), 1, max_degree);
  }
  achieved = error_bound(lipschitz, box, degrees);
  return degrees;
}

}  // namespace cocktail::verify
