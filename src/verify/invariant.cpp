#include "verify/invariant.h"

#include <cmath>
#include <stdexcept>

#include "util/logging.h"
#include "util/stopwatch.h"

namespace cocktail::verify {
namespace {

/// Flattened cell indexing over the grid (dimension 0 fastest).
struct GridIndexer {
  std::vector<int> grid;
  sys::Box domain;

  [[nodiscard]] std::size_t cell_count() const {
    std::size_t n = 1;
    for (int g : grid) n *= static_cast<std::size_t>(g);
    return n;
  }

  [[nodiscard]] IBox cell_box(std::size_t index) const {
    IBox box(grid.size());
    std::size_t rem = index;
    for (std::size_t d = 0; d < grid.size(); ++d) {
      const auto g = static_cast<std::size_t>(grid[d]);
      const std::size_t k = rem % g;
      rem /= g;
      box[d] = {slice_face(domain.lo[d], domain.hi[d], k, g),
                slice_face(domain.lo[d], domain.hi[d], k + 1, g)};
    }
    return box;
  }

  /// Index range [lo_k, hi_k] of cells overlapping `box` along each dim, or
  /// false if the box leaves the domain.
  [[nodiscard]] bool overlap_range(const IBox& box, std::vector<int>& lo_k,
                                   std::vector<int>& hi_k) const {
    lo_k.resize(grid.size());
    hi_k.resize(grid.size());
    for (std::size_t d = 0; d < grid.size(); ++d) {
      if (box[d].lo() < domain.lo[d] || box[d].hi() > domain.hi[d])
        return false;
      const double w =
          (domain.hi[d] - domain.lo[d]) / static_cast<double>(grid[d]);
      lo_k[d] = std::clamp(
          static_cast<int>(std::floor((box[d].lo() - domain.lo[d]) / w)), 0,
          grid[d] - 1);
      hi_k[d] = std::clamp(
          static_cast<int>(std::floor((box[d].hi() - domain.lo[d]) / w)), 0,
          grid[d] - 1);
    }
    return true;
  }
};

}  // namespace

IBox InvariantResult::cell_box(const sys::Box& domain,
                               std::size_t index) const {
  const GridIndexer indexer{grid, domain};
  return indexer.cell_box(index);
}

bool InvariantResult::contains(const sys::Box& domain,
                               const la::Vec& point) const {
  if (!domain.contains(point)) return false;
  std::size_t index = 0;
  std::size_t stride = 1;
  for (std::size_t d = 0; d < grid.size(); ++d) {
    const double w =
        (domain.hi[d] - domain.lo[d]) / static_cast<double>(grid[d]);
    const int k = std::clamp(
        static_cast<int>(std::floor((point[d] - domain.lo[d]) / w)), 0,
        grid[d] - 1);
    index += static_cast<std::size_t>(k) * stride;
    stride *= static_cast<std::size_t>(grid[d]);
  }
  return member[index] != 0;
}

InvariantSetComputer::InvariantSetComputer(sys::SystemPtr system,
                                           const ctrl::Controller& controller,
                                           InvariantConfig config)
    : system_(std::move(system)), controller_(controller),
      config_(std::move(config)) {
  if (!system_->safe_region().bounded())
    throw std::invalid_argument(
        "InvariantSetComputer: safe region must be bounded (use a bounded "
        "sub-domain for systems with unconstrained dimensions)");
}

InvariantResult InvariantSetComputer::compute() const {
  util::Stopwatch timer;
  InvariantResult result;
  const sys::Box domain = system_->safe_region();
  result.grid = config_.grid;
  if (result.grid.empty()) result.grid.assign(system_->state_dim(), 40);
  const GridIndexer indexer{result.grid, domain};
  const std::size_t cells = indexer.cell_count();
  result.member.assign(cells, 1);

  NnAbstraction abstraction(controller_, config_.abstraction);
  VerificationBudget budget = config_.budget;
  const auto dynamics = make_interval_dynamics(*system_);
  const IBox u_bounds =
      make_box(system_->control_bounds().lo, system_->control_bounds().hi);

  // Phase 1 (expensive, Lipschitz-dependent): one-step image of every cell.
  std::vector<IBox> images(cells);
  try {
    for (std::size_t i = 0; i < cells; ++i) {
      const IBox cell = indexer.cell_box(i);
      const ControlEnclosure u = abstraction.enclose(cell, u_bounds, budget);
      images[i] = dynamics->step(cell, u.u_range);
    }
  } catch (const BudgetExhausted& e) {
    result.completed = false;
    result.failure = e.what();
    result.seconds = timer.seconds();
    result.nn_evaluations = budget.nn_evaluations;
    result.partitions = budget.partitions;
    COCKTAIL_WARN << "invariant-set computation failed for "
                  << controller_.describe() << ": " << e.what();
    return result;
  }

  // Phase 2 (cheap): fixed-point removal of cells whose image escapes the
  // candidate union.
  std::vector<int> lo_k, hi_k;
  bool changed = true;
  while (changed && result.iterations < config_.max_iterations) {
    changed = false;
    ++result.iterations;
    for (std::size_t i = 0; i < cells; ++i) {
      if (!result.member[i]) continue;
      bool stays = indexer.overlap_range(images[i], lo_k, hi_k);
      if (stays) {
        // Every overlapped cell must still be a member.
        std::vector<int> k = lo_k;
        for (;;) {
          std::size_t index = 0;
          std::size_t stride = 1;
          for (std::size_t d = 0; d < k.size(); ++d) {
            index += static_cast<std::size_t>(k[d]) * stride;
            stride *= static_cast<std::size_t>(result.grid[d]);
          }
          if (!result.member[index]) {
            stays = false;
            break;
          }
          // Advance the odometer over [lo_k, hi_k].
          std::size_t d = 0;
          while (d < k.size() && ++k[d] > hi_k[d]) {
            k[d] = lo_k[d];
            ++d;
          }
          if (d == k.size()) break;
        }
      }
      if (!stays) {
        result.member[i] = 0;
        changed = true;
      }
    }
  }

  std::size_t surviving = 0;
  for (char m : result.member) surviving += (m != 0);
  result.volume_fraction =
      static_cast<double>(surviving) / static_cast<double>(cells);
  result.completed = true;
  result.seconds = timer.seconds();
  result.nn_evaluations = budget.nn_evaluations;
  result.partitions = budget.partitions;
  COCKTAIL_INFO << "invariant set for " << controller_.describe() << ": "
                << surviving << "/" << cells << " cells in "
                << result.iterations << " iterations, "
                << result.seconds << " s";
  return result;
}

}  // namespace cocktail::verify
