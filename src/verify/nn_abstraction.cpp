#include "verify/nn_abstraction.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace cocktail::verify {

NnAbstraction::NnAbstraction(const ctrl::Controller& controller,
                             AbstractionConfig config)
    : controller_(controller), config_(config),
      lipschitz_(controller.lipschitz_bound()) {
  if (lipschitz_ < 0.0)
    throw std::invalid_argument(
        "NnAbstraction: controller '" + controller.describe() +
        "' has no certified Lipschitz bound and cannot be abstracted");
  if (const auto* as_nn =
          dynamic_cast<const ctrl::NnController*>(&controller)) {
    net_ = &as_nn->net();
    out_scale_ = as_nn->out_scale();
  } else if (config_.method != AbstractionMethod::kBernstein) {
    // IBP needs the network weights; non-NN subjects (e.g. polynomial
    // controllers) fall back to the sampling-based Bernstein engine.
    config_.method = AbstractionMethod::kBernstein;
  }
}

IBox NnAbstraction::ibp_output(const IBox& box) const {
  IBox out = ibp_enclose(*net_, box);
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = out[i] * out_scale_[i];
  return out;
}

ControlEnclosure NnAbstraction::enclose(const IBox& box,
                                        const IBox& control_bounds,
                                        VerificationBudget& budget) const {
  ControlEnclosure out;
  out.u_range.assign(controller_.control_dim(),
                     Interval(std::numeric_limits<double>::infinity(),
                              -std::numeric_limits<double>::infinity()));
  enclose_recursive(box, 0, out, budget);
  if (control_bounds.size() == out.u_range.size())
    for (std::size_t i = 0; i < out.u_range.size(); ++i)
      out.u_range[i] = out.u_range[i].clamp_to(control_bounds[i]);
  return out;
}

void NnAbstraction::enclose_recursive(const IBox& box, int depth,
                                      ControlEnclosure& out,
                                      VerificationBudget& budget) const {
  // Partition-refinement criterion.  Bernstein/hybrid split while the
  // capped degree cannot reach the target ε; pure IBP has no degrees, so
  // the Lipschitz width proxy (L/2)·Σ wᵢ plays the same role.
  double achieved = 0.0;
  std::vector<int> degrees;
  if (config_.method == AbstractionMethod::kIntervalPropagation) {
    achieved = BernsteinPoly::error_bound(lipschitz_, box,
                                          std::vector<int>(box.size(), 1));
  } else {
    degrees = BernsteinPoly::degrees_for(
        lipschitz_, box, config_.epsilon_target, config_.max_degree, achieved);
  }
  if (achieved > config_.epsilon_target &&
      depth < config_.max_partition_depth) {
    // Halve the widest dimension and recurse — widths shrink, so the bound
    // eventually fits (or depth caps out).
    auto [left, right] = box_bisect(box);
    enclose_recursive(left, depth + 1, out, budget);
    enclose_recursive(right, depth + 1, out, budget);
    return;
  }

  const bool use_bernstein =
      config_.method != AbstractionMethod::kIntervalPropagation;
  const bool use_ibp =
      config_.method != AbstractionMethod::kBernstein && net_ != nullptr;

  std::size_t samples = 0;
  if (use_bernstein) {
    samples = 1;
    for (int d : degrees) samples *= static_cast<std::size_t>(d + 1);
    samples *= controller_.control_dim();
  }
  // One IBP pass costs about two forward passes of interval arithmetic.
  if (use_ibp) samples += 2;
  budget.partitions += 1;
  budget.nn_evaluations += static_cast<long>(samples);
  if (budget.exhausted())
    throw BudgetExhausted(
        "verification budget exhausted while abstracting '" +
        controller_.describe() + "' (partitions=" +
        std::to_string(budget.partitions) + ", nn_evals=" +
        std::to_string(budget.nn_evaluations) + ")");

  out.partitions += 1;
  out.nn_evaluations += static_cast<long>(samples);
  out.epsilon = std::max(out.epsilon, use_bernstein ? achieved : 0.0);

  IBox ibp_box;
  if (use_ibp) ibp_box = ibp_output(box);

  // One Bernstein fit per control output; grids coincide so a shared
  // evaluation cache would be possible, but control_dim is 1 in all the
  // paper's systems and the clarity is worth more than the reuse.
  for (std::size_t dim = 0; dim < controller_.control_dim(); ++dim) {
    Interval enclosure;
    if (use_bernstein) {
      const BernsteinPoly poly = BernsteinPoly::fit(
          [&](const la::Vec& x) { return controller_.act(x)[dim]; }, box,
          degrees);
      enclosure = poly.range().inflate(achieved);
      // Hybrid: the true range lies in both enclosures, so the
      // intersection is sound and at least as tight as either.
      if (use_ibp) enclosure = enclosure.intersect(ibp_box[dim]);
    } else {
      enclosure = ibp_box[dim];
    }
    out.u_range[dim] = out.u_range[dim].valid()
                           ? out.u_range[dim].hull(enclosure)
                           : enclosure;
  }
}

}  // namespace cocktail::verify
