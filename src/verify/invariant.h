// Control-invariant-set computation (Definition 1 / Fig 3).
//
// Grid fixed-point algorithm in the style of Xue & Zhan [22]: X is tiled
// into cells; a cell's one-step image (interval dynamics with the
// Bernstein-abstracted controller and worst-case Ω) is computed once, and
// cells whose image is not covered by the remaining candidate set are
// removed until a fixed point.  Any state in a surviving cell stays in the
// surviving union forever — an infinite-horizon safety certificate.
//
// The expensive phase is the per-cell controller abstraction, whose cost
// scales with the controller's Lipschitz constant (degree and partition
// growth); the wall-clock `seconds` of the result is the paper's
// verifiability metric, and budget exhaustion reproduces the κD blow-up.
#pragma once

#include <string>
#include <vector>

#include "control/controller.h"
#include "sys/system.h"
#include "verify/interval_dynamics.h"
#include "verify/nn_abstraction.h"

namespace cocktail::verify {

struct InvariantConfig {
  std::vector<int> grid;  ///< cells per dimension (empty = 40 per dim).
  AbstractionConfig abstraction;
  VerificationBudget budget;
  int max_iterations = 200;  ///< fixed-point sweep cap.
};

struct InvariantResult {
  std::vector<int> grid;
  std::vector<char> member;  ///< flattened (dim 0 fastest); 1 = in XI.
  int iterations = 0;
  double volume_fraction = 0.0;  ///< |XI| / |X|.
  bool completed = false;
  std::string failure;
  double seconds = 0.0;   ///< verification time (Property 3).
  long nn_evaluations = 0;
  long partitions = 0;

  [[nodiscard]] std::size_t cell_count() const { return member.size(); }
  /// Geometric box of the flattened cell index.
  [[nodiscard]] IBox cell_box(const sys::Box& domain, std::size_t index) const;
  [[nodiscard]] bool contains(const sys::Box& domain,
                              const la::Vec& point) const;
};

class InvariantSetComputer {
 public:
  InvariantSetComputer(sys::SystemPtr system,
                       const ctrl::Controller& controller,
                       InvariantConfig config);

  /// Runs the fixed point over the system's safe region.  Budget exhaustion
  /// is reported via result.completed = false, never thrown.
  [[nodiscard]] InvariantResult compute() const;

 private:
  sys::SystemPtr system_;
  const ctrl::Controller& controller_;
  InvariantConfig config_;
};

}  // namespace cocktail::verify
