// Space-filling-curve (Morton / Z-order) keys for the spatial index
// (ROADMAP: "Spatial indexing for certificates and reachability", after the
// cstone idea of SFC keys + a linearized octree over state space).
//
// A d-dimensional cell coordinate is packed into one 64-bit key by bit
// interleaving: key bit (b*d + i) is bit b of coordinate i.  Sorting keys
// therefore sorts cells in Z-order, adjacent keys are spatially close, and
// `key >> d` is the key of the parent cell one octree level up — the
// property the bottom-up tree builds in verify/box_tree.h rely on.
//
// Keys are an *ordering/packing* device only: every accepting decision made
// over a keyed structure re-checks exact stored endpoints (box_tree.h), so
// quantization here never needs outward rounding.  All functions are pure
// and deterministic; encode/decode round-trip bitwise.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace cocktail::verify {

/// Dimension cap for the cell-set octree (fanout = 2^dim children per
/// node).  Morton packing itself only needs dim * bits <= 63.
inline constexpr std::size_t kMaxSfcDim = 8;

/// Most per-dimension bits a `dim`-dimensional Morton key can carry in the
/// 63 usable bits of a uint64 (0 for dim == 0).
[[nodiscard]] int sfc_max_bits(std::size_t dim);

/// True when a `dim`-dimensional grid with `bits` bits per dimension packs
/// into one 64-bit Morton key.
[[nodiscard]] bool sfc_fits(std::size_t dim, int bits);

/// Smallest level count L with 2^L >= grid[d] for every dimension (the
/// octree leaf depth covering the grid).  Throws std::invalid_argument on
/// an empty grid or a non-positive cell count.
[[nodiscard]] int sfc_grid_levels(const std::vector<int>& grid);

/// Interleaves `coords` (each < 2^bits) into a Morton key.  Requires
/// sfc_fits(coords.size(), bits); coordinate bits above `bits` are ignored.
[[nodiscard]] std::uint64_t sfc_encode(const std::vector<std::uint32_t>& coords,
                                       int bits);

/// Inverse of sfc_encode into a caller-provided buffer of size `dim`.
void sfc_decode(std::uint64_t key, std::size_t dim, int bits,
                std::vector<std::uint32_t>& coords);

/// Allocating convenience overload of sfc_decode.
[[nodiscard]] std::vector<std::uint32_t> sfc_decode(std::uint64_t key,
                                                    std::size_t dim, int bits);

/// Cell coordinate of `x` in [lo, hi) split into `cells` uniform slices,
/// clamped to [0, cells-1].  NaN-closed: a non-finite or degenerate input
/// maps to cell 0 — safe because keys only order candidates; membership is
/// always re-decided against exact endpoints.
[[nodiscard]] std::uint32_t sfc_cell_coord(double x, double lo, double hi,
                                           std::uint32_t cells);

}  // namespace cocktail::verify
