#include "verify/reach.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace cocktail::verify {

std::vector<IBox> pave_boxes(const std::vector<IBox>& boxes,
                             double resolution, std::size_t max_cells) {
  if (boxes.empty()) return {};
  const std::size_t dim = boxes.front().size();
  IBox hull = boxes.front();
  for (const IBox& box : boxes) hull = box_hull(hull, box);

  // Grid shape: ~resolution-sized cells, coarsened uniformly if the total
  // would exceed max_cells.
  std::vector<std::size_t> cells(dim);
  for (;;) {
    std::size_t total = 1;
    for (std::size_t d = 0; d < dim; ++d) {
      cells[d] = std::max<std::size_t>(
          1, static_cast<std::size_t>(std::ceil(hull[d].width() / resolution)));
      total *= cells[d];
    }
    if (total <= max_cells) break;
    resolution *= 1.5;
  }

  std::size_t total = 1;
  for (std::size_t c : cells) total *= c;
  std::vector<char> covered(total, 0);
  std::vector<std::size_t> lo_idx(dim), hi_idx(dim), idx(dim);
  for (const IBox& box : boxes) {
    for (std::size_t d = 0; d < dim; ++d) {
      const double w = hull[d].width() / static_cast<double>(cells[d]);
      const double offset_lo = w > 0.0 ? (box[d].lo() - hull[d].lo()) / w : 0.0;
      const double offset_hi = w > 0.0 ? (box[d].hi() - hull[d].lo()) / w : 0.0;
      lo_idx[d] = static_cast<std::size_t>(std::clamp(
          std::floor(offset_lo), 0.0, static_cast<double>(cells[d] - 1)));
      hi_idx[d] = static_cast<std::size_t>(std::clamp(
          std::floor(offset_hi), 0.0, static_cast<double>(cells[d] - 1)));
    }
    idx = lo_idx;
    for (;;) {
      std::size_t flat = 0, stride = 1;
      for (std::size_t d = 0; d < dim; ++d) {
        flat += idx[d] * stride;
        stride *= cells[d];
      }
      covered[flat] = 1;
      std::size_t d = 0;
      while (d < dim && ++idx[d] > hi_idx[d]) {
        idx[d] = lo_idx[d];
        ++d;
      }
      if (d == dim) break;
    }
  }

  std::vector<IBox> out;
  for (std::size_t flat = 0; flat < total; ++flat) {
    if (!covered[flat]) continue;
    IBox cell(dim);
    std::size_t rem = flat;
    for (std::size_t d = 0; d < dim; ++d) {
      const std::size_t k = rem % cells[d];
      rem /= cells[d];
      cell[d] = {slice_face(hull[d].lo(), hull[d].hi(), k, cells[d]),
                 slice_face(hull[d].lo(), hull[d].hi(), k + 1, cells[d])};
    }
    out.push_back(std::move(cell));
  }
  return out;
}

ReachabilityAnalyzer::ReachabilityAnalyzer(sys::SystemPtr system,
                                           const ctrl::Controller& controller,
                                           ReachConfig config)
    : system_(std::move(system)), controller_(controller),
      config_(std::move(config)),
      dynamics_(make_interval_dynamics(*system_)) {}

bool ReachabilityAnalyzer::inside_safe_region(const IBox& box) const {
  const sys::Box x = system_->safe_region();
  for (std::size_t i = 0; i < box.size(); ++i) {
    if (std::isfinite(x.lo[i]) && box[i].lo() < x.lo[i]) return false;
    if (std::isfinite(x.hi[i]) && box[i].hi() > x.hi[i]) return false;
  }
  return true;
}

ReachResult ReachabilityAnalyzer::analyze(const IBox& initial) const {
  util::Stopwatch timer;
  ReachResult result;
  result.layers.push_back({initial});
  NnAbstraction abstraction(controller_, config_.abstraction);
  VerificationBudget budget = config_.budget;
  const IBox u_bounds =
      make_box(system_->control_bounds().lo, system_->control_bounds().hi);
  util::WorkerScope workers(config_.num_workers);

  // The image of one frontier box: its successor boxes plus the work it
  // consumed.  Boxes are processed in parallel, each against a private
  // budget capped at the whole budget remaining when its *wave* started
  // (the same cap for every box of the wave), and the per-box results are
  // merged in frontier order below — so counters, frontier ordering, and
  // failures are bitwise identical for any worker count.
  struct BoxImage {
    std::vector<IBox> next;
    long nn_evaluations = 0;
    long partitions = 0;
    std::string failure;  ///< non-empty when this box exhausted the cap.
  };

  // Frontier boxes are processed in fixed-size waves with the cumulative
  // budget re-checked between waves, so a run overshoots an exhausted
  // budget by at most one wave's concurrent work instead of a whole
  // frontier's (the pre-wave serial loop overshot by a single box; exact
  // serial stop points cannot survive parallel merge determinism).  The
  // wave size bounds that overshoot AND caps the sweep's concurrency, and
  // is part of the deterministic schedule: it must not depend on the
  // worker count.
  constexpr std::size_t kFrontierWave = 16;

  bool all_safe = inside_safe_region(initial);
  std::string failure;
  for (int t = 0; t < config_.steps && failure.empty(); ++t) {
    const auto& frontier = result.layers.back();
    std::vector<IBox> next;
    for (std::size_t wave = 0; wave < frontier.size() && failure.empty();
         wave += kFrontierWave) {
      const std::size_t wave_end =
          std::min(frontier.size(), wave + kFrontierWave);
      std::vector<BoxImage> images(wave_end - wave);
      const long nn_remaining =
          budget.max_nn_evaluations - budget.nn_evaluations;
      const long partitions_remaining =
          budget.max_partitions - budget.partitions;
      const auto process_box = [&](std::size_t w) {
        BoxImage& image = images[w];
        VerificationBudget local;
        local.max_nn_evaluations = nn_remaining;
        local.max_partitions = partitions_remaining;
        try {
          const IBox& box = frontier[wave + w];
          // Subdivide against wrapping before abstracting the controller.
          std::vector<int> parts(box.size(), 1);
          for (std::size_t d = 0; d < box.size(); ++d)
            parts[d] = std::max(
                1, static_cast<int>(
                       std::ceil(box[d].width() / config_.max_box_width)));
          for (const IBox& sub : box_subdivide(box, parts)) {
            const ControlEnclosure u =
                abstraction.enclose(sub, u_bounds, local);
            image.next.push_back(dynamics_->step(sub, u.u_range));
            if (image.next.size() > config_.max_boxes)
              throw BudgetExhausted(
                  "reachable-set frontier exceeded max_boxes=" +
                  std::to_string(config_.max_boxes));
          }
        } catch (const BudgetExhausted& e) {
          image.failure = e.what();
        }
        image.nn_evaluations = local.nn_evaluations;
        image.partitions = local.partitions;
      };
      util::run_chunks(workers.pool(), images.size(), process_box);

      // Fixed-order merge: charge every box's work to the shared budget,
      // keep the first failure in frontier order, and concatenate the
      // successor boxes exactly as the serial loop would have.
      for (BoxImage& image : images) {
        budget.nn_evaluations += image.nn_evaluations;
        budget.partitions += image.partitions;
        if (!failure.empty()) continue;
        if (!image.failure.empty()) {
          failure = image.failure;
          continue;
        }
        for (IBox& box : image.next) next.push_back(std::move(box));
        if (next.size() > config_.max_boxes)
          failure = "reachable-set frontier exceeded max_boxes=" +
                    std::to_string(config_.max_boxes);
      }
      if (failure.empty() && budget.exhausted())
        failure = "verification budget exhausted while abstracting '" +
                  controller_.describe() +
                  "' (partitions=" + std::to_string(budget.partitions) +
                  ", nn_evals=" + std::to_string(budget.nn_evaluations) + ")";
    }
    if (!failure.empty()) break;

    // Bound the frontier: re-pave onto a regular grid once it grows past
    // the merge threshold (sound union cover).
    if (config_.merge_threshold > 0 && next.size() > config_.merge_threshold)
      next = pave_boxes(next, config_.max_box_width,
                        config_.merge_threshold * 4);
    for (const IBox& box : next)
      if (!inside_safe_region(box)) all_safe = false;
    result.layers.push_back(std::move(next));
  }
  if (failure.empty()) {
    result.completed = true;
    result.safe = all_safe;
  } else {
    result.completed = false;
    result.safe = false;
    result.failure = failure;
    COCKTAIL_WARN << "reachability failed for " << controller_.describe()
                  << ": " << failure;
  }
  result.seconds = timer.seconds();
  result.nn_evaluations = budget.nn_evaluations;
  result.partitions = budget.partitions;
  return result;
}

}  // namespace cocktail::verify
