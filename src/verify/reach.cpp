#include "verify/reach.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <stdexcept>

#include "util/logging.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"
#include "verify/box_tree.h"
#include "verify/sfc.h"

namespace cocktail::verify {

std::vector<IBox> pave_boxes(const std::vector<IBox>& boxes,
                             double resolution, std::size_t max_cells) {
  if (!std::isfinite(resolution) || resolution <= 0.0)
    throw std::invalid_argument(
        "pave_boxes: resolution must be finite and > 0");
  if (boxes.empty()) return {};
  const std::size_t dim = boxes.front().size();
  if (dim == 0) return {};
  for (const IBox& box : boxes) {
    if (box.size() != dim)
      throw std::invalid_argument("pave_boxes: mixed box dimensions");
    for (const Interval& iv : box)
      if (!std::isfinite(iv.lo()) || !std::isfinite(iv.hi()) || !iv.valid())
        throw std::invalid_argument(
            "pave_boxes: non-finite or invalid box endpoint — a corrupted "
            "enclosure cannot be soundly paved");
  }
  IBox hull = boxes.front();
  for (const IBox& box : boxes) hull = box_hull(hull, box);
  for (std::size_t d = 0; d < dim; ++d)
    if (!std::isfinite(hull[d].width()))
      throw std::invalid_argument("pave_boxes: hull width overflows double");
  if (max_cells == 0) max_cells = 1;

  // Grid shape: ~resolution-sized cells, coarsened uniformly if the total
  // would exceed max_cells.  Sizing is overflow-checked in double and with
  // a guarded multiply: a wide hull over a tiny resolution must *coarsen*,
  // never wrap size_t and falsely pass the cap (the pre-fix bug: e.g.
  // 2^32 cells per dimension in 2-D wrapped the product to zero).
  constexpr auto kMaxCellsPerDim = std::size_t{1} << 31;
  std::vector<std::size_t> cells(dim);
  for (;;) {
    bool over = false;
    std::size_t total = 1;
    for (std::size_t d = 0; d < dim && !over; ++d) {
      const double want = std::ceil(hull[d].width() / resolution);
      if (!(want >= 1.0)) {  // degenerate widths pave as a single cell.
        cells[d] = 1;
      } else if (want > static_cast<double>(kMaxCellsPerDim)) {
        over = true;
        break;
      } else {
        cells[d] = static_cast<std::size_t>(want);
      }
      if (total > max_cells / cells[d])
        over = true;  // total * cells[d] would exceed max_cells (or wrap).
      else
        total *= cells[d];
    }
    if (!over && total <= max_cells) break;
    resolution *= 1.5;
  }

  // Mark covered cells as SFC keys — Morton-interleaved when the grid
  // packs into 63 bits, flat row-major otherwise (the flat key fits by
  // construction: total <= max_cells).  The sorted-unique key set is the
  // linearized leaf level of the paving tree: dedup is a sort, and the
  // emission order is the key order — deterministic and invariant under
  // permutations of the input boxes.
  int levels = 0;
  const std::size_t widest = *std::max_element(cells.begin(), cells.end());
  while ((std::size_t{1} << levels) < widest) ++levels;
  const bool morton = sfc_fits(dim, levels);

  std::vector<std::size_t> lo_idx(dim), hi_idx(dim), idx(dim);
  std::vector<std::uint32_t> coords(dim);
  std::vector<std::uint64_t> keys;
  const auto cell_key = [&]() {
    if (morton) {
      for (std::size_t d = 0; d < dim; ++d)
        coords[d] = static_cast<std::uint32_t>(idx[d]);
      return sfc_encode(coords, levels);
    }
    std::uint64_t flat = 0, stride = 1;
    for (std::size_t d = 0; d < dim; ++d) {
      flat += idx[d] * stride;
      stride *= cells[d];
    }
    return flat;
  };
  for (const IBox& box : boxes) {
    for (std::size_t d = 0; d < dim; ++d) {
      const double w = hull[d].width() / static_cast<double>(cells[d]);
      const double offset_lo = w > 0.0 ? (box[d].lo() - hull[d].lo()) / w : 0.0;
      const double offset_hi = w > 0.0 ? (box[d].hi() - hull[d].lo()) / w : 0.0;
      lo_idx[d] = static_cast<std::size_t>(std::clamp(
          std::floor(offset_lo), 0.0, static_cast<double>(cells[d] - 1)));
      hi_idx[d] = static_cast<std::size_t>(std::clamp(
          std::floor(offset_hi), 0.0, static_cast<double>(cells[d] - 1)));
    }
    idx = lo_idx;
    for (;;) {
      keys.push_back(cell_key());
      std::size_t d = 0;
      while (d < dim && ++idx[d] > hi_idx[d]) {
        idx[d] = lo_idx[d];
        ++d;
      }
      if (d == dim) break;
    }
  }
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());

  std::vector<IBox> out;
  out.reserve(keys.size());
  for (const std::uint64_t key : keys) {
    if (morton) {
      sfc_decode(key, dim, levels, coords);
      for (std::size_t d = 0; d < dim; ++d) idx[d] = coords[d];
    } else {
      std::uint64_t rem = key;
      for (std::size_t d = 0; d < dim; ++d) {
        idx[d] = static_cast<std::size_t>(rem % cells[d]);
        rem /= cells[d];
      }
    }
    IBox cell(dim);
    for (std::size_t d = 0; d < dim; ++d)
      cell[d] = {slice_face(hull[d].lo(), hull[d].hi(), idx[d], cells[d]),
                 slice_face(hull[d].lo(), hull[d].hi(), idx[d] + 1, cells[d])};
    out.push_back(std::move(cell));
  }
  return out;
}

ReachabilityAnalyzer::ReachabilityAnalyzer(sys::SystemPtr system,
                                           const ctrl::Controller& controller,
                                           ReachConfig config)
    : system_(std::move(system)), controller_(controller),
      config_(std::move(config)),
      dynamics_(make_interval_dynamics(*system_)) {}

bool ReachabilityAnalyzer::inside_safe_region(const IBox& box) const {
  // Fail-closed shared predicate (box_tree.cpp): non-finite/invalid
  // components never count as safe — the pre-fix exclusion chain here was
  // NaN-blind and certified corrupted enclosures.
  return box_inside_region(box, system_->safe_region());
}

ReachResult ReachabilityAnalyzer::analyze(const IBox& initial) const {
  util::Stopwatch timer;
  ReachResult result;
  result.layers.push_back({initial});
  NnAbstraction abstraction(controller_, config_.abstraction);
  VerificationBudget budget = config_.budget;
  const IBox u_bounds =
      make_box(system_->control_bounds().lo, system_->control_bounds().hi);
  util::WorkerScope workers(config_.num_workers);

  // The image of one work item (a frontier box, or a chunk of one box's
  // sub-boxes under fan-out): its successor boxes plus the work it
  // consumed.  Items are processed in parallel, each against a private
  // budget capped at the whole budget remaining when its *wave* started
  // (the same cap for every item of the wave), and the per-item results
  // are merged in fixed schedule order below — so counters, frontier
  // ordering, and failures are bitwise identical for any worker count.
  struct BoxImage {
    std::vector<IBox> next;
    long nn_evaluations = 0;
    long partitions = 0;
    std::string failure;  ///< non-empty when this item exhausted the cap.
  };

  // Frontier boxes are processed in fixed-size waves with the cumulative
  // budget re-checked between waves, so a run overshoots an exhausted
  // budget by at most one wave's concurrent work instead of a whole
  // frontier's (the pre-wave serial loop overshot by a single box; exact
  // serial stop points cannot survive parallel merge determinism).  The
  // wave size bounds that overshoot AND caps the sweep's concurrency, and
  // is part of the deterministic schedule: it must not depend on the
  // worker count.
  constexpr std::size_t kFrontierWave = 16;

  // Per-dimension subdivision counts against wrapping.  NaN-closed: a
  // corrupted (non-finite) width must not reach the int cast (UB) — such
  // boxes pass through unsubdivided and fail the safe-region sweep closed.
  // The per-dim cap keeps the cast in range; the frontier cap below
  // bounds the materialized sub-boxes either way.
  const auto subdivision_parts = [&](const IBox& box) {
    std::vector<int> parts(box.size(), 1);
    for (std::size_t d = 0; d < box.size(); ++d) {
      const double w = box[d].width();
      if (std::isfinite(w) && w > config_.max_box_width)
        parts[d] = static_cast<int>(
            std::min(std::ceil(w / config_.max_box_width), 1.0e9));
    }
    return parts;
  };
  const std::string max_boxes_failure =
      "reachable-set frontier exceeded max_boxes=" +
      std::to_string(config_.max_boxes);

  bool all_safe = inside_safe_region(initial);
  std::string failure;
  for (int t = 0; t < config_.steps && failure.empty(); ++t) {
    const auto& frontier = result.layers.back();
    std::vector<IBox> next;
    for (std::size_t wave = 0; wave < frontier.size() && failure.empty();
         wave += kFrontierWave) {
      const std::size_t wave_end =
          std::min(frontier.size(), wave + kFrontierWave);
      const std::size_t wave_count = wave_end - wave;
      const long nn_remaining =
          budget.max_nn_evaluations - budget.nn_evaluations;
      const long partitions_remaining =
          budget.max_partitions - budget.partitions;

      if (config_.subbox_fanout && wave_count < kFrontierWave) {
        // --- sub-box fan-out -----------------------------------------
        // A wave with fewer boxes than kFrontierWave cannot occupy the
        // pool by itself; the degenerate case is a single giant box whose
        // hundreds of sub-box enclosures previously ran serially inside
        // one work item.  Subdivide on the scheduling thread (fixed
        // order), split each box's sub-box list into at most
        // kFrontierWave contiguous chunks — a function of the counts
        // only, never of the worker count — and run the chunks as
        // independent items against wave-start budget caps.  The merge
        // concatenates images in (box, chunk) order: exactly the serial
        // enumeration, so layers/counters/failures are bitwise identical
        // across worker counts and, on completing runs, to the
        // non-fanned schedule.
        std::vector<std::vector<IBox>> subs(wave_count);
        try {
          for (std::size_t w = 0; w < wave_count; ++w)
            subs[w] = box_subdivide(frontier[wave + w],
                                    subdivision_parts(frontier[wave + w]));
        } catch (const std::invalid_argument& e) {
          failure = e.what();  // corrupted box: fail closed, never crash.
          break;
        }
        struct SubChunk {
          std::size_t slot = 0;   ///< index of the box within the wave.
          std::size_t first = 0;  ///< sub-box range [first, last).
          std::size_t last = 0;
        };
        std::vector<SubChunk> chunks;
        for (std::size_t w = 0; w < wave_count; ++w) {
          const std::size_t n = subs[w].size();
          const std::size_t grain = (n + kFrontierWave - 1) / kFrontierWave;
          for (std::size_t first = 0; first < n; first += grain)
            chunks.push_back({w, first, std::min(n, first + grain)});
        }
        std::vector<BoxImage> images(chunks.size());
        const auto process_chunk = [&](std::size_t c) {
          BoxImage& image = images[c];
          VerificationBudget local;
          local.max_nn_evaluations = nn_remaining;
          local.max_partitions = partitions_remaining;
          try {
            const SubChunk& chunk = chunks[c];
            for (std::size_t s = chunk.first; s < chunk.last; ++s) {
              const IBox& sub = subs[chunk.slot][s];
              const ControlEnclosure u =
                  abstraction.enclose(sub, u_bounds, local);
              image.next.push_back(dynamics_->step(sub, u.u_range));
              if (image.next.size() > config_.max_boxes)
                throw BudgetExhausted(max_boxes_failure);
            }
          } catch (const BudgetExhausted& e) {
            image.failure = e.what();
          }
          image.nn_evaluations = local.nn_evaluations;
          image.partitions = local.partitions;
        };
        util::run_chunks(workers.pool(), images.size(), process_chunk);

        // Fixed-order merge in (box, chunk) order, reconstructing each
        // frontier box's cumulative image size so the max_boxes failure
        // fires at the same box the per-box schedule reports.
        std::size_t current_slot = 0;
        std::size_t slot_boxes = 0;
        for (std::size_t c = 0; c < images.size(); ++c) {
          BoxImage& image = images[c];
          budget.nn_evaluations += image.nn_evaluations;
          budget.partitions += image.partitions;
          if (!failure.empty()) continue;
          if (chunks[c].slot != current_slot) {
            current_slot = chunks[c].slot;
            slot_boxes = 0;
          }
          if (!image.failure.empty()) {
            failure = image.failure;
            continue;
          }
          slot_boxes += image.next.size();
          if (slot_boxes > config_.max_boxes) {
            failure = max_boxes_failure;
            continue;
          }
          for (IBox& box : image.next) next.push_back(std::move(box));
          if (next.size() > config_.max_boxes) failure = max_boxes_failure;
        }
      } else {
        // --- per-box schedule (full waves) ---------------------------
        std::vector<BoxImage> images(wave_count);
        const auto process_box = [&](std::size_t w) {
          BoxImage& image = images[w];
          VerificationBudget local;
          local.max_nn_evaluations = nn_remaining;
          local.max_partitions = partitions_remaining;
          try {
            const IBox& box = frontier[wave + w];
            // Subdivide against wrapping before abstracting the controller.
            for (const IBox& sub :
                 box_subdivide(box, subdivision_parts(box))) {
              const ControlEnclosure u =
                  abstraction.enclose(sub, u_bounds, local);
              image.next.push_back(dynamics_->step(sub, u.u_range));
              if (image.next.size() > config_.max_boxes)
                throw BudgetExhausted(max_boxes_failure);
            }
          } catch (const BudgetExhausted& e) {
            image.failure = e.what();
          } catch (const std::invalid_argument& e) {
            image.failure = e.what();  // corrupted box: fail closed.
          }
          image.nn_evaluations = local.nn_evaluations;
          image.partitions = local.partitions;
        };
        util::run_chunks(workers.pool(), images.size(), process_box);

        // Fixed-order merge: charge every box's work to the shared budget,
        // keep the first failure in frontier order, and concatenate the
        // successor boxes exactly as the serial loop would have.
        for (BoxImage& image : images) {
          budget.nn_evaluations += image.nn_evaluations;
          budget.partitions += image.partitions;
          if (!failure.empty()) continue;
          if (!image.failure.empty()) {
            failure = image.failure;
            continue;
          }
          for (IBox& box : image.next) next.push_back(std::move(box));
          if (next.size() > config_.max_boxes) failure = max_boxes_failure;
        }
      }
      if (failure.empty() && budget.exhausted())
        failure = "verification budget exhausted while abstracting '" +
                  controller_.describe() +
                  "' (partitions=" + std::to_string(budget.partitions) +
                  ", nn_evals=" + std::to_string(budget.nn_evaluations) + ")";
    }
    if (!failure.empty()) break;

    // Bound the frontier: re-pave onto a regular grid once it grows past
    // the merge threshold (sound union cover, emitted in SFC key order).
    if (config_.merge_threshold > 0 &&
        next.size() > config_.merge_threshold) {
      try {
        next = pave_boxes(next, config_.max_box_width,
                          config_.merge_threshold * 4);
      } catch (const std::invalid_argument& e) {
        failure = e.what();  // non-finite frontier box: fail closed.
        break;
      }
    }
    // Key the next layer: the layer-wide safe sweep is a pruned BoxTree
    // descent (hull short-circuits accept whole subtrees) instead of a
    // flat scan, deciding with the same fail-closed box_inside_region
    // predicate as the per-box path.
    const BoxTree layer_tree = BoxTree::build(next);
    if (!layer_tree.all_inside(system_->safe_region())) all_safe = false;
    result.layers.push_back(std::move(next));
  }
  if (failure.empty()) {
    result.completed = true;
    result.safe = all_safe;
  } else {
    result.completed = false;
    result.safe = false;
    result.failure = failure;
    COCKTAIL_WARN << "reachability failed for " << controller_.describe()
                  << ": " << failure;
  }
  result.seconds = timer.seconds();
  result.nn_evaluations = budget.nn_evaluations;
  result.partitions = budget.partitions;
  return result;
}

}  // namespace cocktail::verify
