#include "verify/sfc.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace cocktail::verify {

int sfc_max_bits(std::size_t dim) {
  if (dim == 0) return 0;
  // Coordinates are uint32, so 32 bits per dimension is the ceiling even
  // in one dimension.
  return static_cast<int>(std::min<std::size_t>(32, 63 / dim));
}

bool sfc_fits(std::size_t dim, int bits) {
  if (dim == 0 || bits < 0) return false;
  return static_cast<std::size_t>(bits) * dim <= 63 && bits <= 32;
}

int sfc_grid_levels(const std::vector<int>& grid) {
  if (grid.empty())
    throw std::invalid_argument("sfc_grid_levels: empty grid");
  int side = 1;
  for (const int cells : grid) {
    if (cells <= 0)
      throw std::invalid_argument("sfc_grid_levels: non-positive cell count");
    side = std::max(side, cells);
  }
  int levels = 0;
  while ((std::int64_t{1} << levels) < side) ++levels;
  return levels;
}

std::uint64_t sfc_encode(const std::vector<std::uint32_t>& coords, int bits) {
  const std::size_t dim = coords.size();
  std::uint64_t key = 0;
  for (int b = 0; b < bits; ++b)
    for (std::size_t d = 0; d < dim; ++d)
      key |= static_cast<std::uint64_t>((coords[d] >> b) & 1u)
             << (static_cast<std::size_t>(b) * dim + d);
  return key;
}

void sfc_decode(std::uint64_t key, std::size_t dim, int bits,
                std::vector<std::uint32_t>& coords) {
  coords.assign(dim, 0);
  for (int b = 0; b < bits; ++b)
    for (std::size_t d = 0; d < dim; ++d)
      coords[d] |= static_cast<std::uint32_t>(
          (key >> (static_cast<std::size_t>(b) * dim + d)) & 1u)
          << b;
}

std::vector<std::uint32_t> sfc_decode(std::uint64_t key, std::size_t dim,
                                      int bits) {
  std::vector<std::uint32_t> coords;
  sfc_decode(key, dim, bits, coords);
  return coords;
}

std::uint32_t sfc_cell_coord(double x, double lo, double hi,
                             std::uint32_t cells) {
  if (cells == 0) return 0;
  if (!std::isfinite(x) || !std::isfinite(lo) || !std::isfinite(hi) ||
      hi <= lo)
    return 0;
  const double scaled = (x - lo) / (hi - lo) * static_cast<double>(cells);
  if (!(scaled > 0.0)) return 0;  // NaN-closed: non-positive and NaN -> 0.
  if (scaled >= static_cast<double>(cells)) return cells - 1;
  return static_cast<std::uint32_t>(scaled);
}

}  // namespace cocktail::verify
