#include "verify/interval.h"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

#include "util/csv.h"
#include "verify/tolerances.h"

namespace cocktail::verify {

Interval outward(double lo, double hi) {
  const double scale = std::max({std::abs(lo), std::abs(hi), 1.0});
  return {lo - kOutwardEps * scale, hi + kOutwardEps * scale};
}

Interval Interval::operator+(const Interval& o) const {
  return outward(lo_ + o.lo_, hi_ + o.hi_);
}

Interval Interval::operator-(const Interval& o) const {
  return outward(lo_ - o.hi_, hi_ - o.lo_);
}

Interval Interval::operator*(const Interval& o) const {
  const double a = lo_ * o.lo_;
  const double b = lo_ * o.hi_;
  const double c = hi_ * o.lo_;
  const double d = hi_ * o.hi_;
  return outward(std::min({a, b, c, d}), std::max({a, b, c, d}));
}

Interval Interval::operator*(double k) const {
  return k >= 0.0 ? outward(lo_ * k, hi_ * k) : outward(hi_ * k, lo_ * k);
}

Interval Interval::operator/(double k) const {
  if (k == 0.0) throw std::domain_error("Interval: division by zero");
  return *this * (1.0 / k);
}

Interval Interval::operator/(const Interval& o) const {
  if (o.contains(0.0))
    throw std::domain_error("Interval: divisor contains zero");
  return *this * Interval(1.0 / o.hi_, 1.0 / o.lo_);
}

Interval Interval::square() const {
  if (lo_ >= 0.0) return outward(lo_ * lo_, hi_ * hi_);
  if (hi_ <= 0.0) return outward(hi_ * hi_, lo_ * lo_);
  return outward(0.0, std::max(lo_ * lo_, hi_ * hi_));
}

Interval Interval::inflate(double r) const {
  return outward(lo_ - r, hi_ + r);
}

Interval Interval::hull(const Interval& o) const {
  return {std::min(lo_, o.lo_), std::max(hi_, o.hi_)};
}

Interval Interval::intersect(const Interval& o) const {
  return {std::max(lo_, o.lo_), std::min(hi_, o.hi_)};
}

Interval Interval::clamp_to(const Interval& bounds) const {
  return {std::clamp(lo_, bounds.lo(), bounds.hi()),
          std::clamp(hi_, bounds.lo(), bounds.hi())};
}

std::string Interval::to_string() const {
  return "[" + util::format_number(lo_) + ", " + util::format_number(hi_) +
         "]";
}

Interval sin(const Interval& x) {
  constexpr double kTwoPi = 2.0 * std::numbers::pi;
  if (x.width() >= kTwoPi) return {-1.0, 1.0};
  // Enclose by endpoint values plus any interior extremum of sin.
  double lo = std::min(std::sin(x.lo()), std::sin(x.hi()));
  double hi = std::max(std::sin(x.lo()), std::sin(x.hi()));
  // Maxima at pi/2 + 2k*pi, minima at -pi/2 + 2k*pi.
  const double first_max =
      std::ceil((x.lo() - std::numbers::pi / 2.0) / kTwoPi) * kTwoPi +
      std::numbers::pi / 2.0;
  if (first_max <= x.hi()) hi = 1.0;
  const double first_min =
      std::ceil((x.lo() + std::numbers::pi / 2.0) / kTwoPi) * kTwoPi -
      std::numbers::pi / 2.0;
  if (first_min <= x.hi()) lo = -1.0;
  return outward(lo, hi);
}

Interval cos(const Interval& x) {
  return sin(x + Interval(std::numbers::pi / 2.0));
}

IBox make_box(const la::Vec& lo, const la::Vec& hi) {
  if (lo.size() != hi.size())
    throw std::invalid_argument("make_box: dimension mismatch");
  IBox box(lo.size());
  for (std::size_t i = 0; i < lo.size(); ++i) box[i] = {lo[i], hi[i]};
  return box;
}

IBox point_box(const la::Vec& point) {
  IBox box(point.size());
  for (std::size_t i = 0; i < point.size(); ++i) box[i] = point[i];
  return box;
}

la::Vec box_lo(const IBox& box) {
  la::Vec v(box.size());
  for (std::size_t i = 0; i < box.size(); ++i) v[i] = box[i].lo();
  return v;
}

la::Vec box_hi(const IBox& box) {
  la::Vec v(box.size());
  for (std::size_t i = 0; i < box.size(); ++i) v[i] = box[i].hi();
  return v;
}

la::Vec box_mid(const IBox& box) {
  la::Vec v(box.size());
  for (std::size_t i = 0; i < box.size(); ++i) v[i] = box[i].mid();
  return v;
}

double box_max_width(const IBox& box) {
  double w = 0.0;
  for (const auto& iv : box) w = std::max(w, iv.width());
  return w;
}

bool box_contains(const IBox& box, const la::Vec& point) {
  if (box.size() != point.size())
    throw std::invalid_argument("box_contains: dimension mismatch");
  for (std::size_t i = 0; i < box.size(); ++i)
    if (!box[i].contains(point[i])) return false;
  return true;
}

bool box_contains_box(const IBox& outer, const IBox& inner) {
  if (outer.size() != inner.size())
    throw std::invalid_argument("box_contains_box: dimension mismatch");
  for (std::size_t i = 0; i < outer.size(); ++i)
    if (!outer[i].contains(inner[i])) return false;
  return true;
}

IBox box_hull(const IBox& a, const IBox& b) {
  if (a.size() != b.size())
    throw std::invalid_argument("box_hull: dimension mismatch");
  IBox out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i].hull(b[i]);
  return out;
}

std::pair<IBox, IBox> box_bisect(const IBox& box) {
  std::size_t widest = 0;
  for (std::size_t i = 1; i < box.size(); ++i)
    if (box[i].width() > box[widest].width()) widest = i;
  IBox left = box, right = box;
  const double mid = box[widest].mid();
  left[widest] = {box[widest].lo(), mid};
  right[widest] = {mid, box[widest].hi()};
  return {std::move(left), std::move(right)};
}

double slice_face(double lo, double hi, std::size_t k, std::size_t parts) {
  if (k == 0) return lo;
  if (k >= parts) return hi;
  const double w = (hi - lo) / static_cast<double>(parts);
  return lo + static_cast<double>(k) * w;
}

std::vector<IBox> box_subdivide(const IBox& box,
                                const std::vector<int>& parts_per_dim) {
  if (parts_per_dim.size() != box.size())
    throw std::invalid_argument("box_subdivide: dimension mismatch");
  std::size_t total = 1;
  for (int parts : parts_per_dim) {
    if (parts < 1) throw std::invalid_argument("box_subdivide: parts < 1");
    total *= static_cast<std::size_t>(parts);
  }
  std::vector<IBox> out;
  out.reserve(total);
  for (std::size_t index = 0; index < total; ++index) {
    IBox sub(box.size());
    std::size_t rem = index;
    for (std::size_t d = 0; d < box.size(); ++d) {
      const auto parts = static_cast<std::size_t>(parts_per_dim[d]);
      const std::size_t k = rem % parts;
      rem /= parts;
      sub[d] = {slice_face(box[d].lo(), box[d].hi(), k, parts),
                slice_face(box[d].lo(), box[d].hi(), k + 1, parts)};
    }
    out.push_back(std::move(sub));
  }
  return out;
}

}  // namespace cocktail::verify
