// Interval arithmetic for the verification substrate (Section III-C).
//
// Natural inclusion functions over closed intervals [lo, hi].  The plant
// dynamics are evaluated on intervals through the same scalar-templated
// step functions the simulator uses with doubles (src/sys/*.h), so the
// verified model is the simulated model by construction.
//
// Rounding: operations use round-to-nearest double arithmetic and then
// inflate outward by one ulp-scale epsilon (`kOutward`), which dominates
// rounding error at the magnitudes these systems produce.  This is the
// pragmatic scheme used by several reachability tools; a fully
// directed-rounding backend could be swapped in behind the same interface.
#pragma once

#include <string>
#include <vector>

#include "la/vec.h"

namespace cocktail::verify {

class Interval {
 public:
  constexpr Interval() = default;
  /// Degenerate (point) interval.
  constexpr Interval(double point) : lo_(point), hi_(point) {}  // NOLINT(google-explicit-constructor): scalar lifting is the intended ergonomics for templated dynamics.
  constexpr Interval(double lo, double hi) : lo_(lo), hi_(hi) {}

  [[nodiscard]] double lo() const noexcept { return lo_; }
  [[nodiscard]] double hi() const noexcept { return hi_; }
  [[nodiscard]] double width() const noexcept { return hi_ - lo_; }
  [[nodiscard]] double mid() const noexcept { return 0.5 * (lo_ + hi_); }
  [[nodiscard]] double radius() const noexcept { return 0.5 * (hi_ - lo_); }
  [[nodiscard]] bool valid() const noexcept { return lo_ <= hi_; }

  [[nodiscard]] bool contains(double x) const noexcept {
    return lo_ <= x && x <= hi_;
  }
  [[nodiscard]] bool contains(const Interval& other) const noexcept {
    return lo_ <= other.lo_ && other.hi_ <= hi_;
  }
  [[nodiscard]] bool intersects(const Interval& other) const noexcept {
    return lo_ <= other.hi_ && other.lo_ <= hi_;
  }

  [[nodiscard]] Interval operator+(const Interval& o) const;
  [[nodiscard]] Interval operator-(const Interval& o) const;
  [[nodiscard]] Interval operator*(const Interval& o) const;
  [[nodiscard]] Interval operator*(double k) const;
  [[nodiscard]] Interval operator/(double k) const;
  /// Interval division; throws std::domain_error if `o` contains zero.
  [[nodiscard]] Interval operator/(const Interval& o) const;
  [[nodiscard]] Interval operator-() const { return {-hi_, -lo_}; }

  /// Tight enclosure of x² (non-negative).
  [[nodiscard]] Interval square() const;
  /// Minkowski sum with [-r, r].
  [[nodiscard]] Interval inflate(double r) const { return {lo_ - r, hi_ + r}; }
  /// Smallest interval containing both.
  [[nodiscard]] Interval hull(const Interval& o) const;
  /// Intersection clamped to validity; callers should check valid().
  [[nodiscard]] Interval intersect(const Interval& o) const;
  /// clip(·, b.lo, b.hi) image — exact for the monotone clamp.
  [[nodiscard]] Interval clamp_to(const Interval& bounds) const;

  [[nodiscard]] std::string to_string() const;

 private:
  double lo_ = 0.0;
  double hi_ = 0.0;
};

/// Enclosures of sin/cos found by ADL from the templated dynamics.
[[nodiscard]] Interval sin(const Interval& x);
[[nodiscard]] Interval cos(const Interval& x);

/// Axis-aligned interval box.
using IBox = std::vector<Interval>;

[[nodiscard]] IBox make_box(const la::Vec& lo, const la::Vec& hi);
/// Point box from a vector.
[[nodiscard]] IBox point_box(const la::Vec& point);
[[nodiscard]] la::Vec box_lo(const IBox& box);
[[nodiscard]] la::Vec box_hi(const IBox& box);
[[nodiscard]] la::Vec box_mid(const IBox& box);
[[nodiscard]] double box_max_width(const IBox& box);
[[nodiscard]] bool box_contains(const IBox& box, const la::Vec& point);
[[nodiscard]] bool box_contains_box(const IBox& outer, const IBox& inner);
[[nodiscard]] IBox box_hull(const IBox& a, const IBox& b);
/// Splits the widest dimension in half.
[[nodiscard]] std::pair<IBox, IBox> box_bisect(const IBox& box);
/// Uniform subdivision into `parts_per_dim[i]` slices per dimension.
[[nodiscard]] std::vector<IBox> box_subdivide(
    const IBox& box, const std::vector<int>& parts_per_dim);

}  // namespace cocktail::verify
