// Interval arithmetic for the verification substrate (Section III-C).
//
// Natural inclusion functions over closed intervals [lo, hi].  The plant
// dynamics are evaluated on intervals through the same scalar-templated
// step functions the simulator uses with doubles (src/sys/*.h), so the
// verified model is the simulated model by construction.
//
// Rounding: operations use round-to-nearest double arithmetic and then
// inflate outward by one ulp-scale epsilon (verify::outward, scaled by
// kOutwardEps from verify/tolerances.h), which dominates rounding error at
// the magnitudes these systems produce.  This is the pragmatic scheme used
// by several reachability tools; a fully directed-rounding backend could be
// swapped in behind the same interface.  Endpoint arithmetic anywhere in
// src/verify must flow through outward() — enforced by
// tools/lint_soundness.py (rule `raw-endpoint-arith`).
//
// Non-finite contract: an interval with a NaN endpoint is !valid(),
// contains() nothing, and intersects() nothing — every membership predicate
// is written in the accepting direction (`lo <= x && x <= hi`), so a NaN
// operand fails every clause and the query fails *closed*.  Operations on
// non-finite inputs may produce !valid() results (e.g. 0 * inf); callers on
// the certificate path must check valid() before trusting a derived bound.
// Infinite endpoints themselves are meaningful (unbounded safe-region
// dimensions use ±inf) and behave per IEEE-754.  Pinned by
// tests/test_verify_interval.cpp's non-finite suite.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "la/vec.h"

namespace cocktail::verify {

class Interval {
 public:
  constexpr Interval() = default;
  /// Degenerate (point) interval.
  constexpr Interval(double point) : lo_(point), hi_(point) {}  // NOLINT(google-explicit-constructor): scalar lifting is the intended ergonomics for templated dynamics.
  constexpr Interval(double lo, double hi) : lo_(lo), hi_(hi) {}

  [[nodiscard]] double lo() const noexcept { return lo_; }
  [[nodiscard]] double hi() const noexcept { return hi_; }
  [[nodiscard]] double width() const noexcept { return hi_ - lo_; }
  [[nodiscard]] double mid() const noexcept { return 0.5 * (lo_ + hi_); }
  [[nodiscard]] double radius() const noexcept { return 0.5 * (hi_ - lo_); }
  // SNDLINT-ALLOW(nan-blind-compare): accepting direction — a NaN endpoint fails `lo <= hi`, so the interval reports invalid (fails closed)
  [[nodiscard]] bool valid() const noexcept { return lo_ <= hi_; }

  // The containment predicates below deliberately avoid isfinite guards:
  // infinite *endpoints* are meaningful (unbounded safe-region dimensions),
  // and the accepting-direction comparisons already fail closed on NaN.
  // SNDLINT-ALLOW(nan-blind-compare): accepting direction — NaN x fails both clauses, so a NaN query point is never contained
  [[nodiscard]] bool contains(double x) const noexcept {
    return lo_ <= x && x <= hi_;
  }
  // SNDLINT-ALLOW(nan-blind-compare): accepting direction — a NaN endpoint on either side fails a clause, so NaN never certifies an enclosure
  [[nodiscard]] bool contains(const Interval& other) const noexcept {
    return lo_ <= other.lo_ && other.hi_ <= hi_;
  }
  // SNDLINT-ALLOW(nan-blind-compare): accepting direction — NaN operands report no intersection rather than a phantom one
  [[nodiscard]] bool intersects(const Interval& other) const noexcept {
    return lo_ <= other.hi_ && other.lo_ <= hi_;
  }

  [[nodiscard]] Interval operator+(const Interval& o) const;
  [[nodiscard]] Interval operator-(const Interval& o) const;
  [[nodiscard]] Interval operator*(const Interval& o) const;
  [[nodiscard]] Interval operator*(double k) const;
  [[nodiscard]] Interval operator/(double k) const;
  /// Interval division; throws std::domain_error if `o` contains zero.
  [[nodiscard]] Interval operator/(const Interval& o) const;
  [[nodiscard]] Interval operator-() const { return {-hi_, -lo_}; }

  /// Tight enclosure of x² (non-negative).
  [[nodiscard]] Interval square() const;
  /// Minkowski sum with [-r, r], outward-rounded.
  [[nodiscard]] Interval inflate(double r) const;
  /// Smallest interval containing both.
  [[nodiscard]] Interval hull(const Interval& o) const;
  /// Intersection clamped to validity; callers should check valid().
  [[nodiscard]] Interval intersect(const Interval& o) const;
  /// clip(·, b.lo, b.hi) image — exact for the monotone clamp.
  [[nodiscard]] Interval clamp_to(const Interval& bounds) const;

  [[nodiscard]] std::string to_string() const;

 private:
  double lo_ = 0.0;
  double hi_ = 0.0;
};

/// The one sanctioned way to turn computed endpoints into an interval:
/// inflates [lo, hi] outward by kOutwardEps * max(|lo|, |hi|, 1) so
/// round-to-nearest error in the endpoint computation can never shrink the
/// enclosure.  Exact operations (negation, min/max, clamp, copies) may
/// construct intervals directly; everything else routes through here
/// (enforced by tools/lint_soundness.py, rule `raw-endpoint-arith`).
[[nodiscard]] Interval outward(double lo, double hi);

/// Face k of `parts` uniform slices of [lo, hi].  The extreme faces are
/// pinned to the exact parent endpoints and interior faces are shared
/// bitwise between adjacent slices, so the union of the slices covers the
/// parent box exactly — `lo + parts * w` can round strictly below `hi`,
/// which would leave an uncovered sliver at the top face.
[[nodiscard]] double slice_face(double lo, double hi, std::size_t k,
                                std::size_t parts);

/// Enclosures of sin/cos found by ADL from the templated dynamics.
[[nodiscard]] Interval sin(const Interval& x);
[[nodiscard]] Interval cos(const Interval& x);

/// Axis-aligned interval box.
using IBox = std::vector<Interval>;

[[nodiscard]] IBox make_box(const la::Vec& lo, const la::Vec& hi);
/// Point box from a vector.
[[nodiscard]] IBox point_box(const la::Vec& point);
[[nodiscard]] la::Vec box_lo(const IBox& box);
[[nodiscard]] la::Vec box_hi(const IBox& box);
[[nodiscard]] la::Vec box_mid(const IBox& box);
[[nodiscard]] double box_max_width(const IBox& box);
[[nodiscard]] bool box_contains(const IBox& box, const la::Vec& point);
[[nodiscard]] bool box_contains_box(const IBox& outer, const IBox& inner);
[[nodiscard]] IBox box_hull(const IBox& a, const IBox& b);
/// Splits the widest dimension in half.
[[nodiscard]] std::pair<IBox, IBox> box_bisect(const IBox& box);
/// Uniform subdivision into `parts_per_dim[i]` slices per dimension.
[[nodiscard]] std::vector<IBox> box_subdivide(
    const IBox& box, const std::vector<int>& parts_per_dim);

}  // namespace cocktail::verify
