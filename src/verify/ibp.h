// Interval bound propagation (IBP) through an MLP.
//
// A second, Bernstein-free enclosure of the network output over a box:
// each dense layer maps an interval vector through W·x + b using interval
// arithmetic, and monotone activations map endpoint-wise.  IBP is much
// cheaper than a Bernstein fit (one pass instead of Π(dᵢ+1) samples) but
// looser on wide boxes — the wrapping effect compounds per layer.  The
// NnAbstraction can intersect both enclosures (`AbstractionMethod::kHybrid`)
// for the best of each; the comparison is itself an ablation
// (Remark 2 discusses Verisig-style propagation as the alternative family).
#pragma once

#include "nn/mlp.h"
#include "verify/interval.h"

namespace cocktail::verify {

/// Interval image of one activation (all supported activations are
/// monotone, so endpoint evaluation is exact).
[[nodiscard]] Interval activate_interval(nn::Activation act,
                                         const Interval& z);

/// Propagates the input box through the network; returns an enclosure of
/// { net(x) : x ∈ box }.  Sound for any input box; tightness degrades with
/// box width and depth.
[[nodiscard]] IBox ibp_enclose(const nn::Mlp& net, const IBox& box);

}  // namespace cocktail::verify
