// Interval-valued one-step dynamics (the hybrid-system transformation of
// Section III-C).
//
// Each adapter instantiates the system's scalar-templated step function
// with verify::Interval, so the verified transition relation is the
// simulated one by construction.  The external disturbance Ω enters as its
// full interval every step (worst case), and the controller's Bernstein
// approximation error has already been folded into the control interval by
// NnAbstraction — together this realizes the paper's Ω̂ = Ω ⊕ ε.
#pragma once

#include <memory>

#include "sys/system.h"
#include "verify/interval.h"

namespace cocktail::verify {

class IntervalDynamics {
 public:
  virtual ~IntervalDynamics() = default;

  [[nodiscard]] virtual std::size_t state_dim() const = 0;
  /// Over-approximate image of `state` under any control in `control` and
  /// any disturbance in Ω.
  [[nodiscard]] virtual IBox step(const IBox& state,
                                  const IBox& control) const = 0;
};

/// Builds the adapter for one of the paper's systems ("vanderpol",
/// "threed", "cartpole"); throws std::invalid_argument otherwise.
[[nodiscard]] std::unique_ptr<IntervalDynamics> make_interval_dynamics(
    const sys::System& system);

}  // namespace cocktail::verify
