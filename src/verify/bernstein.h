// Multivariate Bernstein polynomial approximation (Section III-C):
//
//   κ*(x) ∈ B_d(x) + [-ε, ε]  for all x in a box.
//
// The tensor-product Bernstein operator samples the function on the
// (d_1+1)x...x(d_n+1) grid  x_k = lo + (k/d)·(hi-lo); its coefficients are
// exactly those samples, which yields two classic properties we exploit:
//   * range enclosure: min_k c_k ≤ B_d(x) ≤ max_k c_k on the box;
//   * Lipschitz error bound: |f - B_d(f)| ≤ (L/2)·Σ_i w_i/√d_i,
//     so the degree needed for a target ε grows *quadratically* with the
//     function's Lipschitz constant — the mechanism behind the paper's
//     verifiability metric (Remark 2).
#pragma once

#include <functional>
#include <vector>

#include "la/vec.h"
#include "verify/interval.h"

namespace cocktail::verify {

class BernsteinPoly {
 public:
  /// Fits B_d(f) on `box` by sampling `f` on the Bernstein grid.
  /// `degrees[i] >= 1` is the polynomial degree along dimension i.
  static BernsteinPoly fit(const std::function<double(const la::Vec&)>& f,
                           const IBox& box, const std::vector<int>& degrees);

  /// Evaluates the polynomial at `x` (inside the box; de-normalization is
  /// handled internally).
  [[nodiscard]] double eval(const la::Vec& x) const;

  /// Coefficient-hull range enclosure over the fit box.
  [[nodiscard]] Interval range() const;

  /// Classic Lipschitz error bound ε = (L/2)·Σ_i width_i/√degree_i for any
  /// L-Lipschitz (in l2) function on the fit box.
  [[nodiscard]] static double error_bound(double lipschitz, const IBox& box,
                                          const std::vector<int>& degrees);

  /// Degrees needed so error_bound(...) <= epsilon with equal per-dimension
  /// contributions, each capped at `max_degree`.  Returns the achieved
  /// bound through `achieved` (> epsilon when the cap binds — the caller
  /// should then partition the box).
  [[nodiscard]] static std::vector<int> degrees_for(double lipschitz,
                                                    const IBox& box,
                                                    double epsilon,
                                                    int max_degree,
                                                    double& achieved);

  [[nodiscard]] const std::vector<int>& degrees() const { return degrees_; }
  [[nodiscard]] const std::vector<double>& coefficients() const {
    return coeffs_;
  }
  [[nodiscard]] std::size_t sample_count() const { return coeffs_.size(); }

 private:
  IBox box_;
  std::vector<int> degrees_;
  std::vector<double> coeffs_;  ///< flattened tensor grid, dim 0 fastest.
};

/// Binomial coefficient C(n, k) as double (n small here).
[[nodiscard]] double binomial(int n, int k);

}  // namespace cocktail::verify
