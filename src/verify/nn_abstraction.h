// Bernstein abstraction of a neural-network controller over a state box
// (Section III-C with the ReachNN-style partitioning of [21]):
//
//   κ*(x) ∈ B^p_d(x) + [-ε̂_p, ε̂_p]   for x ∈ X_p,  p = 1..P,
//
// where the partition P and degrees d are chosen from the controller's
// certified Lipschitz constant so that ε̂_p ≤ ε_target.  The per-box work
// (NN samples = Π(d_i+1), partitions) grows quickly with the Lipschitz
// constant, reproducing the paper's verifiability ordering; the
// `VerificationBudget` models the resource exhaustion that crashed the
// paper's κD run (Fig 4) as a clean, reportable failure.
#pragma once

#include <optional>
#include <stdexcept>

#include "control/nn_controller.h"
#include "verify/bernstein.h"
#include "verify/ibp.h"
#include "verify/interval.h"

namespace cocktail::verify {

/// Work accounting shared by a whole verification run.
struct VerificationBudget {
  long max_nn_evaluations = 50'000'000;  ///< total NN forward passes.
  long max_partitions = 2'000'000;       ///< total boxes abstracted.
  long nn_evaluations = 0;
  long partitions = 0;

  [[nodiscard]] bool exhausted() const {
    return nn_evaluations > max_nn_evaluations ||
           partitions > max_partitions;
  }
};

/// Thrown when the budget runs out (the analogue of the paper's
/// memory-exhaustion failure for the high-Lipschitz student).
class BudgetExhausted : public std::runtime_error {
 public:
  explicit BudgetExhausted(const std::string& what)
      : std::runtime_error(what) {}
};

/// Which enclosure engine abstracts the controller over a box.
enum class AbstractionMethod {
  kBernstein,            ///< Bernstein fit + Lipschitz error bound (ReachNN).
  kIntervalPropagation,  ///< IBP through the network layers (Verisig-style).
  kHybrid,               ///< both, intersected (tightest, costs the sum).
};

struct AbstractionConfig {
  AbstractionMethod method = AbstractionMethod::kBernstein;
  double epsilon_target = 0.5;  ///< ε on each control output.
  int max_degree = 6;           ///< per-dimension Bernstein degree cap.
  int max_partition_depth = 8;  ///< bisection depth cap per query box.
};

struct ControlEnclosure {
  IBox u_range;          ///< per-output interval (already includes ±ε).
  double epsilon = 0.0;  ///< achieved max approximation error bound.
  int partitions = 0;    ///< boxes used for this query.
  long nn_evaluations = 0;
};

/// Abstracts one controller over query boxes.  The controller must provide
/// a non-negative certified Lipschitz bound (NN and polynomial controllers
/// do; the mixed design does not — matching the paper's statement that AW
/// "cannot be verified with current tools").
class NnAbstraction {
 public:
  NnAbstraction(const ctrl::Controller& controller, AbstractionConfig config);

  /// Interval enclosure of clip(κ(x), U) for x ∈ box.  `control_bounds`
  /// applies the feasibility clip (pass an unbounded box to skip).
  /// Accounts all work against `budget`; throws BudgetExhausted.
  [[nodiscard]] ControlEnclosure enclose(const IBox& box,
                                         const IBox& control_bounds,
                                         VerificationBudget& budget) const;

  [[nodiscard]] double lipschitz() const noexcept { return lipschitz_; }
  [[nodiscard]] const AbstractionConfig& config() const noexcept {
    return config_;
  }

 private:
  void enclose_recursive(const IBox& box, int depth, ControlEnclosure& out,
                         VerificationBudget& budget) const;
  /// IBP enclosure of the controller output over the box (only available
  /// for NnController subjects; the constructor falls back to Bernstein
  /// otherwise).
  [[nodiscard]] IBox ibp_output(const IBox& box) const;

  const ctrl::Controller& controller_;
  AbstractionConfig config_;
  double lipschitz_;
  /// Set when the controller is an NnController (enables IBP / hybrid).
  const nn::Mlp* net_ = nullptr;
  la::Vec out_scale_;
};

}  // namespace cocktail::verify
