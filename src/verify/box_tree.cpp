#include "verify/box_tree.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <utility>

namespace cocktail::verify {

bool box_inside_region(const IBox& box, const sys::Box& region) {
  if (box.size() != region.dim()) return false;
  for (std::size_t i = 0; i < box.size(); ++i) {
    // Fail closed on corrupted enclosures: a NaN/Inf endpoint (an invalid
    // Interval escaping interval arithmetic) certifies nothing — without
    // this guard the bounded-dimension comparisons below are NaN-blind
    // (both compare false) and a garbage box would count as safe.
    if (!std::isfinite(box[i].lo()) || !std::isfinite(box[i].hi()) ||
        !box[i].valid())
      return false;
    if (std::isfinite(region.lo[i]) && box[i].lo() < region.lo[i])
      return false;
    if (std::isfinite(region.hi[i]) && box[i].hi() > region.hi[i])
      return false;
  }
  return true;
}

// --- CellSetTree ------------------------------------------------------------

bool CellSetTree::supports(const std::vector<int>& grid) {
  if (grid.empty() || grid.size() > kMaxSfcDim) return false;
  for (const int cells : grid)
    if (cells <= 0) return false;
  return sfc_fits(grid.size(), sfc_grid_levels(grid));
}

CellSetTree CellSetTree::build(const std::vector<int>& grid,
                               const std::vector<char>& member) {
  if (!supports(grid))
    throw std::invalid_argument(
        "CellSetTree: grid does not pack into a 64-bit Morton key");
  std::size_t total = 1;
  for (const int cells : grid) total *= static_cast<std::size_t>(cells);
  if (member.size() != total)
    throw std::invalid_argument(
        "CellSetTree: member array does not match the grid");

  CellSetTree tree;
  tree.dim_ = grid.size();
  tree.levels_ = sfc_grid_levels(grid);
  tree.grid_ = grid;

  // Leaf level: Morton keys of the member cells, sorted.  The flat member
  // array is dim-0-fastest, so cell coordinates come from div/mod chains.
  std::vector<std::uint64_t> keys;
  std::vector<std::uint32_t> coords(tree.dim_);
  for (std::size_t flat = 0; flat < member.size(); ++flat) {
    if (member[flat] == 0) continue;
    std::size_t rem = flat;
    for (std::size_t d = 0; d < tree.dim_; ++d) {
      coords[d] = static_cast<std::uint32_t>(
          rem % static_cast<std::size_t>(grid[d]));
      rem /= static_cast<std::size_t>(grid[d]);
    }
    keys.push_back(sfc_encode(coords, tree.levels_));
  }
  std::sort(keys.begin(), keys.end());
  tree.members_ = keys.size();

  // Bottom-up merge, one level at a time in ascending key order: 2^dim
  // siblings group under `key >> dim`; an all-full group collapses to a
  // kFull mark, anything else becomes an explicit node.  The node pool is
  // appended in this fixed order, so identical inputs build identical
  // trees regardless of any surrounding parallelism.
  const std::size_t fanout = std::size_t{1} << tree.dim_;
  std::vector<std::pair<std::uint64_t, std::int32_t>> level;
  level.reserve(keys.size());
  for (const std::uint64_t key : keys) level.emplace_back(key, kFullChild);
  for (int depth = tree.levels_; depth > 0; --depth) {
    std::vector<std::pair<std::uint64_t, std::int32_t>> parents;
    std::size_t i = 0;
    while (i < level.size()) {
      const std::uint64_t parent_key = level[i].first >> tree.dim_;
      std::size_t j = i;
      while (j < level.size() && (level[j].first >> tree.dim_) == parent_key)
        ++j;
      bool all_full = (j - i) == fanout;
      for (std::size_t t = i; all_full && t < j; ++t)
        all_full = level[t].second == kFullChild;
      if (all_full) {
        parents.emplace_back(parent_key, kFullChild);
      } else {
        const auto node = static_cast<std::int32_t>(tree.node_count());
        tree.children_.resize(tree.children_.size() + fanout, kEmptyChild);
        for (std::size_t t = i; t < j; ++t)
          tree.children_[static_cast<std::size_t>(node) * fanout +
                         (level[t].first & (fanout - 1))] = level[t].second;
        parents.emplace_back(parent_key, node);
      }
      i = j;
    }
    level = std::move(parents);
  }
  tree.root_ = level.empty() ? kEmptyChild : level.front().second;
  return tree;
}

// SNDLINT-ALLOW(nan-blind-compare): pure integer cell-coordinate walk — callers quantize finite states before building the window (SafetyMonitor isfinite-guards first), and out-of-range windows fail closed below
bool CellSetTree::all_members(const std::vector<int>& lo_k,
                              const std::vector<int>& hi_k) const {
  if (dim_ == 0 || lo_k.size() != dim_ || hi_k.size() != dim_) return false;
  // An empty window holds no cells, so it is vacuously covered — even if
  // another dimension escapes the grid (there is nothing to certify).
  for (std::size_t d = 0; d < dim_; ++d)
    if (lo_k[d] > hi_k[d]) return true;
  for (std::size_t d = 0; d < dim_; ++d)
    if (lo_k[d] < 0 || hi_k[d] >= grid_[d]) return false;

  // Descend only nodes whose 2^depth-sided cell range intersects the
  // window; kFull accepts a whole subtree, kEmpty rejects any overlap.
  const std::size_t fanout = std::size_t{1} << dim_;
  const auto covered = [&](auto&& self, std::int32_t ref, int depth,
                           const std::array<std::int64_t, kMaxSfcDim>& origin)
      -> bool {
    for (std::size_t d = 0; d < dim_; ++d) {
      const std::int64_t node_lo = origin[d] << depth;
      const std::int64_t node_hi = node_lo + (std::int64_t{1} << depth) - 1;
      if (node_hi < lo_k[d] || node_lo > hi_k[d]) return true;  // disjoint.
    }
    if (ref == kFullChild) return true;
    if (ref == kEmptyChild) return false;  // overlapped cells: non-members.
    for (std::size_t c = 0; c < fanout; ++c) {
      std::array<std::int64_t, kMaxSfcDim> child = origin;
      for (std::size_t d = 0; d < dim_; ++d)
        child[d] = (origin[d] << 1) |
                   static_cast<std::int64_t>((c >> d) & 1u);
      if (!self(self, children_[static_cast<std::size_t>(ref) * fanout + c],
                depth - 1, child))
        return false;
    }
    return true;
  };
  return covered(covered, root_, levels_,
                 std::array<std::int64_t, kMaxSfcDim>{});
}

// --- BoxTree ----------------------------------------------------------------

namespace {

constexpr std::size_t kBoxTreeLeafSize = 8;

/// One box component participates in hull folding only when valid (a NaN
/// endpoint fails lo <= hi); an interval that contains/intersects nothing
/// cannot widen a prune decision, so skipping it is conservative.
bool hull_foldable(const Interval& iv) { return iv.valid(); }

bool component_tainted(const Interval& iv) {
  return !std::isfinite(iv.lo()) || !std::isfinite(iv.hi()) || !iv.valid();
}

}  // namespace

BoxTree BoxTree::build(std::vector<IBox> boxes) {
  BoxTree tree;
  tree.boxes_ = std::move(boxes);
  if (tree.boxes_.empty()) return tree;
  tree.dim_ = tree.boxes_.front().size();
  for (const IBox& box : tree.boxes_)
    if (box.size() != tree.dim_)
      throw std::invalid_argument("BoxTree: mixed box dimensions");

  // Key domain: NaN-safe hull of the midpoints' enclosing boxes.  The
  // accepting-direction fold ignores NaN endpoints, so corrupted boxes
  // land on key 0 without distorting the ordering of valid ones.
  const double inf = std::numeric_limits<double>::infinity();
  std::vector<double> domain_lo(tree.dim_, inf), domain_hi(tree.dim_, -inf);
  for (const IBox& box : tree.boxes_)
    for (std::size_t d = 0; d < tree.dim_; ++d) {
      if (!hull_foldable(box[d])) continue;
      domain_lo[d] = std::min(domain_lo[d], box[d].lo());
      domain_hi[d] = std::max(domain_hi[d], box[d].hi());
    }

  const int bits = std::min(16, sfc_max_bits(tree.dim_));
  const auto cells = static_cast<std::uint32_t>(std::uint64_t{1} << bits);
  std::vector<std::pair<std::uint64_t, std::size_t>> keyed(tree.boxes_.size());
  std::vector<std::uint32_t> coords(tree.dim_);
  for (std::size_t i = 0; i < tree.boxes_.size(); ++i) {
    for (std::size_t d = 0; d < tree.dim_; ++d)
      coords[d] = sfc_cell_coord(tree.boxes_[i][d].mid(), domain_lo[d],
                                 domain_hi[d], cells);
    keyed[i] = {sfc_encode(coords, bits), i};
  }
  // Input-index tie-break: the build is a pure function of the sequence.
  std::sort(keyed.begin(), keyed.end());
  tree.order_.resize(keyed.size());
  for (std::size_t i = 0; i < keyed.size(); ++i)
    tree.order_[i] = keyed[i].second;

  // Leaves over fixed-size runs of the sorted order, then bottom-up
  // pairing — every node's hull is an exact min/max fold (no arithmetic,
  // nothing for rounding to shrink) and taint propagates by OR.
  std::vector<std::int32_t> level;
  for (std::size_t begin = 0; begin < tree.order_.size();
       begin += kBoxTreeLeafSize) {
    Node leaf;
    leaf.begin = begin;
    leaf.end = std::min(tree.order_.size(), begin + kBoxTreeLeafSize);
    leaf.hull.assign(tree.dim_, Interval{inf, -inf});
    for (std::size_t i = leaf.begin; i < leaf.end; ++i) {
      const IBox& box = tree.boxes_[tree.order_[i]];
      for (std::size_t d = 0; d < tree.dim_; ++d) {
        if (component_tainted(box[d])) leaf.tainted = true;
        if (!hull_foldable(box[d])) continue;
        leaf.hull[d] = {std::min(leaf.hull[d].lo(), box[d].lo()),
                        std::max(leaf.hull[d].hi(), box[d].hi())};
      }
    }
    level.push_back(static_cast<std::int32_t>(tree.nodes_.size()));
    tree.nodes_.push_back(std::move(leaf));
  }
  while (level.size() > 1) {
    std::vector<std::int32_t> parents;
    for (std::size_t i = 0; i < level.size(); i += 2) {
      if (i + 1 == level.size()) {  // odd node passes up unchanged.
        parents.push_back(level[i]);
        continue;
      }
      Node parent;
      parent.left = level[i];
      parent.right = level[i + 1];
      const Node& left = tree.nodes_[static_cast<std::size_t>(parent.left)];
      const Node& right = tree.nodes_[static_cast<std::size_t>(parent.right)];
      parent.tainted = left.tainted || right.tainted;
      parent.hull.resize(tree.dim_);
      for (std::size_t d = 0; d < tree.dim_; ++d)
        parent.hull[d] = {std::min(left.hull[d].lo(), right.hull[d].lo()),
                          std::max(left.hull[d].hi(), right.hull[d].hi())};
      parents.push_back(static_cast<std::int32_t>(tree.nodes_.size()));
      tree.nodes_.push_back(std::move(parent));
    }
    level = std::move(parents);
  }
  tree.root_ = level.front();
  return tree;
}

bool BoxTree::contains_point(const la::Vec& point) const {
  if (root_ < 0 || point.size() != dim_) return false;
  for (std::size_t d = 0; d < dim_; ++d)
    if (!std::isfinite(point[d])) return false;  // NaN certifies nothing.
  std::vector<std::int32_t> stack = {root_};
  while (!stack.empty()) {
    const Node& node = nodes_[static_cast<std::size_t>(stack.back())];
    stack.pop_back();
    bool in_hull = true;
    for (std::size_t d = 0; in_hull && d < dim_; ++d)
      in_hull = node.hull[d].contains(point[d]);
    if (!in_hull) continue;  // empty hulls ([+inf,-inf]) prune here too.
    if (node.left < 0) {
      for (std::size_t i = node.begin; i < node.end; ++i) {
        const IBox& box = boxes_[order_[i]];
        bool inside = true;
        for (std::size_t d = 0; inside && d < dim_; ++d)
          inside = box[d].contains(point[d]);
        if (inside) return true;
      }
    } else {
      stack.push_back(node.left);
      stack.push_back(node.right);
    }
  }
  return false;
}

std::vector<std::size_t> BoxTree::intersecting(const IBox& query) const {
  std::vector<std::size_t> hits;
  if (root_ < 0 || query.size() != dim_) return hits;
  std::vector<std::int32_t> stack = {root_};
  while (!stack.empty()) {
    const Node& node = nodes_[static_cast<std::size_t>(stack.back())];
    stack.pop_back();
    bool overlaps = true;
    for (std::size_t d = 0; overlaps && d < dim_; ++d)
      overlaps = node.hull[d].intersects(query[d]);
    if (!overlaps) continue;
    if (node.left < 0) {
      for (std::size_t i = node.begin; i < node.end; ++i) {
        const IBox& box = boxes_[order_[i]];
        bool hit = true;
        for (std::size_t d = 0; hit && d < dim_; ++d)
          hit = box[d].intersects(query[d]);
        if (hit) hits.push_back(order_[i]);
      }
    } else {
      stack.push_back(node.left);
      stack.push_back(node.right);
    }
  }
  std::sort(hits.begin(), hits.end());
  return hits;
}

// SNDLINT-ALLOW(nan-blind-compare): traversal bookkeeping only — every accepting decision routes through box_inside_region's isfinite-guarded fail-closed predicate, and tainted subtrees never short-circuit
bool BoxTree::all_inside(const sys::Box& region) const {
  if (boxes_.empty()) return true;
  if (root_ < 0 || region.dim() != dim_) return false;
  const auto descend = [&](auto&& self, std::int32_t index) -> bool {
    const Node& node = nodes_[static_cast<std::size_t>(index)];
    // An untainted hull inside the region covers its whole subtree: every
    // member endpoint is finite (taint would have been set) and bracketed
    // by the hull's fold.
    if (!node.tainted && box_inside_region(node.hull, region)) return true;
    if (node.left < 0) {
      for (std::size_t i = node.begin; i < node.end; ++i)
        if (!box_inside_region(boxes_[order_[i]], region)) return false;
      return true;
    }
    return self(self, node.left) && self(self, node.right);
  };
  return descend(descend, root_);
}

}  // namespace cocktail::verify
