// Finite-horizon reachable-set computation (Definition 2 / Fig 4).
//
// The reachable set is propagated as a union of interval boxes: each box is
// subdivided below a width threshold (fighting the wrapping effect), the
// controller is abstracted per sub-box by NnAbstraction, and the image is
// the interval-dynamics step.  All work is charged to a VerificationBudget;
// exhaustion is reported as a failed (not crashed) verification — the
// reproduction of the paper's κD memory fault in Fig 4.
#pragma once

#include <string>
#include <vector>

#include "control/controller.h"
#include "sys/system.h"
#include "verify/interval_dynamics.h"
#include "verify/nn_abstraction.h"

namespace cocktail::verify {

struct ReachConfig {
  int steps = 15;                    ///< Fig 4 uses the first 15 steps.
  AbstractionConfig abstraction;
  double max_box_width = 0.05;       ///< subdivision threshold per dim.
  std::size_t max_boxes = 20000;     ///< frontier cap per step.
  /// When the frontier exceeds this count, it is re-paved onto a regular
  /// grid (cells of ~max_box_width), which soundly merges overlapping
  /// boxes and bounds the frontier size.  0 disables merging.
  std::size_t merge_threshold = 1024;
  VerificationBudget budget;
  /// Worker count for the per-box frontier sweep (the BatchRolloutConfig
  /// convention: 0 = shared pool, 1 = serial).  Frontier ordering, budget
  /// counters, and failures are identical for any value: boxes run in
  /// fixed-size waves, each box against a private budget capped at the
  /// wave's remaining budget, and per-box results merge in frontier
  /// order (so a run overshoots an exhausted budget by at most one
  /// wave's concurrent work — including fanned-out sub-boxes, see
  /// `subbox_fanout` — the wave schedule is identical for every worker
  /// count, serial included).
  int num_workers = 0;
  /// When a wave holds fewer boxes than the wave size, fan each box's
  /// *sub-box* enclosures out as independent work items (closing the
  /// single-box serialization hole: one giant frontier box used to run
  /// hundreds of enclosures inside a single work item with zero
  /// parallelism).  The fan-out schedule is a function of box/sub-box
  /// counts only — never of the worker count — so layers, counters, and
  /// failures stay bitwise identical across workers; on completing runs
  /// they also equal the non-fanned schedule's.  An exhausted budget may
  /// overshoot by the wave's concurrent chunks (the documented wave
  /// caveat, now including fanned-out sub-boxes).  Disable to reproduce
  /// the strictly per-box schedule.
  bool subbox_fanout = true;
};

struct ReachResult {
  /// layers[t] = boxes covering the states reachable in exactly t steps
  /// (layers[0] is the initial box).
  std::vector<std::vector<IBox>> layers;
  bool completed = false;   ///< false when the budget was exhausted.
  bool safe = false;        ///< all layers inside the safe region X.
  std::string failure;      ///< reason when !completed.
  double seconds = 0.0;     ///< wall-clock verification time (Property 3).
  long nn_evaluations = 0;
  long partitions = 0;
};

class ReachabilityAnalyzer {
 public:
  /// `controller` must outlive the analyzer.
  ReachabilityAnalyzer(sys::SystemPtr system,
                       const ctrl::Controller& controller, ReachConfig config);

  /// Runs the analysis from `initial`.  Never throws on budget exhaustion —
  /// the failure is recorded in the result (completed = false).
  [[nodiscard]] ReachResult analyze(const IBox& initial) const;

 private:
  [[nodiscard]] bool inside_safe_region(const IBox& box) const;

  sys::SystemPtr system_;
  const ctrl::Controller& controller_;
  ReachConfig config_;
  std::unique_ptr<IntervalDynamics> dynamics_;
};

/// Sound frontier merge: covers `boxes` with the cells of a regular grid
/// (cell edge ~`resolution`, grid capped at `max_cells` by coarsening) over
/// their hull and returns the covering cells.  Every input box is contained
/// in the union of the output cells.
///
/// Contract: `resolution` must be finite and > 0, and every box endpoint
/// finite and valid — otherwise the call throws std::invalid_argument (a
/// non-finite resolution would divide by zero or spin the coarsening loop;
/// a corrupted box cannot be soundly paved).  `analyze` converts such
/// throws into a failed — never crashed — verification.  Cell-count
/// sizing is overflow-checked: a wide hull over a tiny resolution coarsens
/// instead of wrapping size_t.  Cells are keyed on the space-filling curve
/// (verify/sfc.h) and emitted in ascending key order — deterministic, and
/// invariant under permutations of the input boxes.
[[nodiscard]] std::vector<IBox> pave_boxes(const std::vector<IBox>& boxes,
                                           double resolution,
                                           std::size_t max_cells = 200000);

}  // namespace cocktail::verify
