#include "verify/interval_dynamics.h"

#include <stdexcept>

#include "sys/cartpole.h"
#include "sys/threed.h"
#include "sys/vanderpol.h"

namespace cocktail::verify {
namespace {

class VanDerPolIntervalDynamics final : public IntervalDynamics {
 public:
  explicit VanDerPolIntervalDynamics(const sys::VanDerPol& system)
      : params_(system.params()) {}

  [[nodiscard]] std::size_t state_dim() const override { return 2; }

  [[nodiscard]] IBox step(const IBox& state,
                          const IBox& control) const override {
    const Interval w(-params_.disturbance_bound, params_.disturbance_bound);
    const auto next = sys::vanderpol_step<Interval>(
        {state[0], state[1]}, control[0], w, params_.tau);
    return {next[0], next[1]};
  }

 private:
  sys::VanDerPolParams params_;
};

class ThreeDIntervalDynamics final : public IntervalDynamics {
 public:
  explicit ThreeDIntervalDynamics(const sys::ThreeD& system)
      : params_(system.params()) {}

  [[nodiscard]] std::size_t state_dim() const override { return 3; }

  [[nodiscard]] IBox step(const IBox& state,
                          const IBox& control) const override {
    const auto next = sys::threed_step<Interval>(
        {state[0], state[1], state[2]}, control[0], params_.tau);
    return {next[0], next[1], next[2]};
  }

 private:
  sys::ThreeDParams params_;
};

class CartPoleIntervalDynamics final : public IntervalDynamics {
 public:
  explicit CartPoleIntervalDynamics(const sys::CartPole& system)
      : params_(system.params()) {}

  [[nodiscard]] std::size_t state_dim() const override { return 4; }

  [[nodiscard]] IBox step(const IBox& state,
                          const IBox& control) const override {
    const auto next = sys::cartpole_step<Interval>(
        {state[0], state[1], state[2], state[3]}, control[0], params_);
    return {next[0], next[1], next[2], next[3]};
  }

 private:
  sys::CartPoleParams params_;
};

}  // namespace

std::unique_ptr<IntervalDynamics> make_interval_dynamics(
    const sys::System& system) {
  if (const auto* vdp = dynamic_cast<const sys::VanDerPol*>(&system))
    return std::make_unique<VanDerPolIntervalDynamics>(*vdp);
  if (const auto* threed = dynamic_cast<const sys::ThreeD*>(&system))
    return std::make_unique<ThreeDIntervalDynamics>(*threed);
  if (const auto* cartpole = dynamic_cast<const sys::CartPole*>(&system))
    return std::make_unique<CartPoleIntervalDynamics>(*cartpole);
  throw std::invalid_argument("make_interval_dynamics: unsupported system " +
                              system.name());
}

}  // namespace cocktail::verify
