#include "verify/ibp.h"

#include <stdexcept>

namespace cocktail::verify {

Interval activate_interval(nn::Activation act, const Interval& z) {
  // All four activations are monotone non-decreasing: the image is the
  // interval between the endpoint images, outward-rounded because the
  // libm-backed activations (tanh, sigmoid) are only correct to ~1 ulp.
  return outward(nn::activate(act, z.lo()), nn::activate(act, z.hi()));
}

IBox ibp_enclose(const nn::Mlp& net, const IBox& box) {
  if (net.empty()) throw std::invalid_argument("ibp_enclose: empty network");
  if (box.size() != net.input_dim())
    throw std::invalid_argument("ibp_enclose: input dimension mismatch");
  IBox activation = box;
  for (const auto& layer : net.layers()) {
    IBox pre(layer.w.rows());
    for (std::size_t r = 0; r < layer.w.rows(); ++r) {
      Interval acc(layer.b[r]);
      for (std::size_t c = 0; c < layer.w.cols(); ++c)
        acc = acc + activation[c] * layer.w(r, c);
      pre[r] = acc;
    }
    activation.resize(pre.size());
    for (std::size_t r = 0; r < pre.size(); ++r)
      activation[r] = activate_interval(layer.act, pre[r]);
  }
  return activation;
}

}  // namespace cocktail::verify
