// Named numeric tolerances for the verification substrate.
//
// Every tolerance the certificate path consults lives in this header, with
// its magnitude justified once at the definition — never as a bare literal
// at a use site, where the next reader cannot tell a considered bound from
// a guess.  tools/lint_soundness.py (rule `magic-tolerance`) enforces the
// policy over src/verify and src/serve.
#pragma once

namespace cocktail::verify {

/// Relative outward inflation applied by verify::outward() to every
/// computed interval endpoint.  Round-to-nearest double arithmetic is
/// correct to 0.5 ulp per operation (~1.1e-16 relative); the handful of
/// operations behind any single endpoint keep the accumulated error orders
/// of magnitude below 1e-12 at the magnitudes these systems produce
/// (|x| < 1e6), so inflating by kOutwardEps * max(|lo|, |hi|, 1) strictly
/// dominates the rounding error while costing ~1e-12 of enclosure width —
/// invisible next to the interval widths (>= 1e-3) the reach/invariant
/// grids operate on.  A fully directed-rounding backend could replace this
/// scheme behind the same outward() interface.
inline constexpr double kOutwardEps = 1e-12;

}  // namespace cocktail::verify
