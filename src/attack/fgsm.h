// Fast Gradient Sign Method attacks (Goodfellow et al. [20]).
//
// Two uses in the paper:
//  * training-time: Algorithm 1 line 13 generates adversarial inputs for
//    robust distillation — that path lives in core/distiller and calls the
//    raw `fgsm_delta` helper below with the distillation loss gradient;
//  * evaluation-time: the closed-loop attack of Table II / Fig 2, modeled
//    here as FgsmAttack.  At each step the attacker picks
//        δ = Δ ∘ sign(∇_δ ‖κ(s+δ) − κ(s)‖²)|_{δ=δ0}
//    from a small random start δ0 (the gradient at δ=0 is exactly zero, so
//    R-FGSM-style random initialization is required), maximizing the
//    first-order deviation of the control signal.  For non-differentiable
//    controllers the gradient sign is estimated by central finite
//    differences, so the same attack applies to every baseline.
#pragma once

#include "attack/perturbation.h"

namespace cocktail::attack {

/// Raw FGSM step: Δ ∘ sign(g) where g is a loss gradient w.r.t. the input.
[[nodiscard]] la::Vec fgsm_delta(const la::Vec& gradient,
                                 const la::Vec& bound);

struct FgsmConfig {
  /// Relative magnitude of the random linearization point δ0 (fraction of
  /// the attack bound).
  double random_start_fraction = 0.1;
  /// Finite-difference step (fraction of the bound) for controllers with
  /// no Jacobian.
  double fd_step_fraction = 0.05;
};

class FgsmAttack final : public PerturbationModel {
 public:
  explicit FgsmAttack(la::Vec bound, FgsmConfig config = {});

  [[nodiscard]] la::Vec perturb(const la::Vec& state,
                                const ctrl::Controller& controller,
                                util::Rng& rng) const override;
  [[nodiscard]] std::string describe() const override { return "fgsm"; }

  [[nodiscard]] const la::Vec& bound() const noexcept { return bound_; }

 private:
  [[nodiscard]] la::Vec gradient_sign(const la::Vec& state,
                                      const la::Vec& reference_u,
                                      const la::Vec& start,
                                      const ctrl::Controller& controller,
                                      util::Rng& rng) const;

  la::Vec bound_;
  FgsmConfig config_;
};

}  // namespace cocktail::attack
