// State-perturbation models δ(t) (paper Section II).
//
// The perturbation corrupts the controller's *observation* of the state at
// every sampling period: the controller computes u = κ(s + δ) while the
// plant continues from the true s.  Three models cover the paper's
// experiments:
//   * NoPerturbation       — Table I ("without attacks or noises yet");
//   * UniformNoise         — measurement noise, δ ~ U[-Δ, Δ] per step;
//   * FgsmAttack (fgsm.h)  — optimized adversarial attack.
#pragma once

#include <memory>
#include <string>

#include "control/controller.h"
#include "la/vec.h"
#include "sys/system.h"
#include "util/rng.h"

namespace cocktail::attack {

class PerturbationModel {
 public:
  virtual ~PerturbationModel() = default;

  /// Perturbation δ for the current true state under the given controller.
  [[nodiscard]] virtual la::Vec perturb(const la::Vec& state,
                                        const ctrl::Controller& controller,
                                        util::Rng& rng) const = 0;

  [[nodiscard]] virtual std::string describe() const = 0;
};

using PerturbationPtr = std::shared_ptr<const PerturbationModel>;

class NoPerturbation final : public PerturbationModel {
 public:
  explicit NoPerturbation(std::size_t state_dim) : state_dim_(state_dim) {}

  [[nodiscard]] la::Vec perturb(const la::Vec&, const ctrl::Controller&,
                                util::Rng&) const override {
    return la::zeros(state_dim_);
  }
  [[nodiscard]] std::string describe() const override { return "none"; }

 private:
  std::size_t state_dim_;
};

class UniformNoise final : public PerturbationModel {
 public:
  /// δ_i ~ U[-bound_i, bound_i], independently at every step.
  explicit UniformNoise(la::Vec bound);

  [[nodiscard]] la::Vec perturb(const la::Vec& state,
                                const ctrl::Controller& controller,
                                util::Rng& rng) const override;
  [[nodiscard]] std::string describe() const override { return "noise"; }

  [[nodiscard]] const la::Vec& bound() const noexcept { return bound_; }

 private:
  la::Vec bound_;
};

/// Per-dimension perturbation bound Δ as a fraction of the system's state
/// value bound (the paper uses 10%-15%).  The bound is taken from the safe
/// region X; dimensions X leaves unbounded (cartpole's velocities) have no
/// "state value bound" in the paper's sense and receive Δ = 0 — attacking
/// an unbounded coordinate at a fraction of an arbitrary range would make
/// the attack magnitude a free parameter of the reproduction.
[[nodiscard]] la::Vec perturbation_bound(const sys::System& system,
                                         double fraction);

}  // namespace cocktail::attack
