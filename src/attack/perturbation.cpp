#include "attack/perturbation.h"

#include <cmath>
#include <stdexcept>

namespace cocktail::attack {

UniformNoise::UniformNoise(la::Vec bound) : bound_(std::move(bound)) {
  for (double b : bound_)
    if (b < 0.0) throw std::invalid_argument("UniformNoise: negative bound");
}

la::Vec UniformNoise::perturb(const la::Vec& state,
                              const ctrl::Controller& controller,
                              util::Rng& rng) const {
  (void)controller;
  if (state.size() != bound_.size())
    throw std::invalid_argument("UniformNoise: state dimension mismatch");
  la::Vec delta(state.size());
  for (std::size_t i = 0; i < delta.size(); ++i)
    delta[i] = rng.uniform(-bound_[i], bound_[i]);
  return delta;
}

la::Vec perturbation_bound(const sys::System& system, double fraction) {
  const sys::Box x = system.safe_region();
  la::Vec bound(x.dim(), 0.0);
  for (std::size_t i = 0; i < x.dim(); ++i) {
    if (!std::isfinite(x.lo[i]) || !std::isfinite(x.hi[i])) continue;
    bound[i] = fraction * 0.5 * (x.hi[i] - x.lo[i]);
  }
  return bound;
}

}  // namespace cocktail::attack
