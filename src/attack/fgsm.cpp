#include "attack/fgsm.h"

#include <cmath>
#include <stdexcept>

namespace cocktail::attack {

la::Vec fgsm_delta(const la::Vec& gradient, const la::Vec& bound) {
  if (gradient.size() != bound.size())
    throw std::invalid_argument("fgsm_delta: dimension mismatch");
  la::Vec delta(gradient.size());
  for (std::size_t i = 0; i < delta.size(); ++i) {
    const double s = gradient[i] > 0.0 ? 1.0 : (gradient[i] < 0.0 ? -1.0 : 0.0);
    delta[i] = bound[i] * s;
  }
  return delta;
}

FgsmAttack::FgsmAttack(la::Vec bound, FgsmConfig config)
    : bound_(std::move(bound)), config_(config) {
  for (double b : bound_)
    if (b < 0.0) throw std::invalid_argument("FgsmAttack: negative bound");
}

la::Vec FgsmAttack::gradient_sign(const la::Vec& state,
                                  const la::Vec& reference_u,
                                  const la::Vec& start,
                                  const ctrl::Controller& controller,
                                  util::Rng& rng) const {
  const la::Vec probe = la::add(state, start);
  if (controller.differentiable()) {
    // ∇_δ ||κ(s+δ) − u_ref||² = 2 J(s+δ)^T (κ(s+δ) − u_ref).
    const la::Vec diff = la::sub(controller.act(probe), reference_u);
    const la::Matrix jac = controller.input_jacobian(probe);
    la::Vec grad = jac.matvec_transpose(la::scale(diff, 2.0));
    if (la::norm_linf(grad) > 1e-12) return la::sign(grad);
    // Degenerate gradient (e.g. dead ReLU region): fall back to random.
    la::Vec random(grad.size());
    for (auto& v : random) v = rng.bernoulli(0.5) ? 1.0 : -1.0;
    return random;
  }
  // Finite-difference sign per dimension for black-box controllers.
  la::Vec sign(state.size(), 0.0);
  for (std::size_t i = 0; i < state.size(); ++i) {
    const double h = std::max(config_.fd_step_fraction * bound_[i], 1e-8);
    la::Vec plus = probe, minus = probe;
    plus[i] += h;
    minus[i] -= h;
    const la::Vec du_plus = la::sub(controller.act(plus), reference_u);
    const la::Vec du_minus = la::sub(controller.act(minus), reference_u);
    const double g = la::dot(du_plus, du_plus) - la::dot(du_minus, du_minus);
    sign[i] = g > 0.0 ? 1.0 : (g < 0.0 ? -1.0 : (rng.bernoulli(0.5) ? 1. : -1.));
  }
  return sign;
}

la::Vec FgsmAttack::perturb(const la::Vec& state,
                            const ctrl::Controller& controller,
                            util::Rng& rng) const {
  if (state.size() != bound_.size())
    throw std::invalid_argument("FgsmAttack: state dimension mismatch");
  const la::Vec u_ref = controller.act(state);
  // Random linearization point δ0 (the gradient vanishes exactly at δ=0).
  la::Vec start(state.size());
  for (std::size_t i = 0; i < start.size(); ++i)
    start[i] = rng.uniform(-1.0, 1.0) * config_.random_start_fraction *
               bound_[i];
  const la::Vec sign = gradient_sign(state, u_ref, start, controller, rng);
  la::Vec delta(state.size());
  for (std::size_t i = 0; i < delta.size(); ++i)
    delta[i] = bound_[i] * sign[i];
  return delta;
}

}  // namespace cocktail::attack
