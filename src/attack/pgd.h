// Projected Gradient Descent attack — the multi-step refinement of FGSM
// (Madry et al.), provided as a stronger "optimized adversarial attack"
// than the single-step FGSM the paper evaluates with.  Each step ascends
// the control-deviation objective ‖κ(s+δ) − κ(s)‖² and projects δ back
// into the box [-Δ, Δ]; the attack-strength ablation compares it against
// single-step FGSM and random noise.
#pragma once

#include "attack/perturbation.h"

namespace cocktail::attack {

struct PgdConfig {
  int steps = 5;              ///< gradient ascent iterations.
  double step_fraction = 0.4;  ///< per-step size as a fraction of Δ.
  double random_start_fraction = 0.5;  ///< |δ0| as a fraction of Δ.
  /// Finite-difference step (fraction of Δ) for black-box controllers.
  double fd_step_fraction = 0.05;
};

class PgdAttack final : public PerturbationModel {
 public:
  explicit PgdAttack(la::Vec bound, PgdConfig config = {});

  [[nodiscard]] la::Vec perturb(const la::Vec& state,
                                const ctrl::Controller& controller,
                                util::Rng& rng) const override;
  [[nodiscard]] std::string describe() const override { return "pgd"; }

  [[nodiscard]] const la::Vec& bound() const noexcept { return bound_; }

 private:
  /// ∇_δ ‖κ(s+δ) − u_ref‖² (white-box via Jacobian, black-box via central
  /// differences).
  [[nodiscard]] la::Vec objective_gradient(const la::Vec& perturbed,
                                           const la::Vec& reference_u,
                                           const ctrl::Controller& controller)
      const;

  la::Vec bound_;
  PgdConfig config_;
};

}  // namespace cocktail::attack
