#include "attack/pgd.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace cocktail::attack {

PgdAttack::PgdAttack(la::Vec bound, PgdConfig config)
    : bound_(std::move(bound)), config_(config) {
  for (double b : bound_)
    if (b < 0.0) throw std::invalid_argument("PgdAttack: negative bound");
  if (config_.steps < 1)
    throw std::invalid_argument("PgdAttack: steps must be >= 1");
}

la::Vec PgdAttack::objective_gradient(const la::Vec& perturbed,
                                      const la::Vec& reference_u,
                                      const ctrl::Controller& controller) const {
  if (controller.differentiable()) {
    const la::Vec diff = la::sub(controller.act(perturbed), reference_u);
    const la::Matrix jac = controller.input_jacobian(perturbed);
    return jac.matvec_transpose(la::scale(diff, 2.0));
  }
  la::Vec grad(perturbed.size(), 0.0);
  for (std::size_t i = 0; i < perturbed.size(); ++i) {
    const double h = std::max(config_.fd_step_fraction * bound_[i], 1e-8);
    la::Vec plus = perturbed, minus = perturbed;
    plus[i] += h;
    minus[i] -= h;
    const la::Vec dp = la::sub(controller.act(plus), reference_u);
    const la::Vec dm = la::sub(controller.act(minus), reference_u);
    grad[i] = (la::dot(dp, dp) - la::dot(dm, dm)) / (2.0 * h);
  }
  return grad;
}

la::Vec PgdAttack::perturb(const la::Vec& state,
                           const ctrl::Controller& controller,
                           util::Rng& rng) const {
  if (state.size() != bound_.size())
    throw std::invalid_argument("PgdAttack: state dimension mismatch");
  const la::Vec u_ref = controller.act(state);
  la::Vec delta(state.size());
  for (std::size_t i = 0; i < delta.size(); ++i)
    delta[i] =
        rng.uniform(-1.0, 1.0) * config_.random_start_fraction * bound_[i];
  for (int step = 0; step < config_.steps; ++step) {
    const la::Vec grad =
        objective_gradient(la::add(state, delta), u_ref, controller);
    for (std::size_t i = 0; i < delta.size(); ++i) {
      const double sign = grad[i] > 0.0 ? 1.0 : (grad[i] < 0.0 ? -1.0 : 0.0);
      delta[i] = std::clamp(
          delta[i] + config_.step_fraction * bound_[i] * sign, -bound_[i],
          bound_[i]);
    }
  }
  return delta;
}

}  // namespace cocktail::attack
