#include "control/mixed_controller.h"

#include <stdexcept>

namespace cocktail::ctrl {

MixedController::MixedController(std::vector<ControllerPtr> experts,
                                 nn::Mlp weight_net, double weight_bound,
                                 sys::Box control_bounds, std::string label)
    : experts_(std::move(experts)), weight_net_(std::move(weight_net)),
      weight_bound_(weight_bound), control_bounds_(std::move(control_bounds)),
      label_(std::move(label)) {
  if (experts_.empty())
    throw std::invalid_argument("MixedController: no experts");
  for (const auto& expert : experts_)
    if (!expert) throw std::invalid_argument("MixedController: null expert");
  if (weight_net_.output_dim() != experts_.size())
    throw std::invalid_argument(
        "MixedController: weight net output dim != expert count");
  if (weight_bound_ < 1.0)
    throw std::invalid_argument(
        "MixedController: the paper requires AB >= 1");
}

la::Vec MixedController::weights(const la::Vec& s) const {
  return la::scale(weight_net_.forward(s), weight_bound_);
}

la::Vec MixedController::act(const la::Vec& s) const {
  const la::Vec a = weights(s);
  la::Vec u = la::zeros(control_dim());
  for (std::size_t i = 0; i < experts_.size(); ++i)
    la::axpy(u, a[i], experts_[i]->act(s));
  return la::clip(u, control_bounds_.lo, control_bounds_.hi);
}

std::size_t MixedController::state_dim() const {
  return experts_.front()->state_dim();
}

std::size_t MixedController::control_dim() const {
  return experts_.front()->control_dim();
}

}  // namespace cocktail::ctrl
