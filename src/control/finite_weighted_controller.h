// Finite-size weighted adaptation baseline (Ramakrishna et al. [11],
// "dynamic-weighted simplex strategy"): the controller picks, per state,
// one weight vector from a *finite* set of convex combinations
// (w ≥ 0, Σw = 1) and plays u = clip(Σ wᵢ κᵢ(s)).
//
// Its action space is a strict super-space of switching (the vertices) and
// a strict sub-space of Cocktail's continuous box [-AB, AB]^n — the middle
// link of the Proposition 1 inclusion chain exercised by
// bench_ablation_actionspace.
#pragma once

#include <string>
#include <vector>

#include "control/controller.h"
#include "nn/mlp.h"
#include "sys/system.h"

namespace cocktail::ctrl {

class FiniteWeightedController final : public Controller {
 public:
  /// `selector_net` maps state -> |weight_table| logits; act() applies the
  /// argmax entry's weights.  Every table entry must have one weight per
  /// expert.
  FiniteWeightedController(std::vector<ControllerPtr> experts,
                           std::vector<la::Vec> weight_table,
                           nn::Mlp selector_net, sys::Box control_bounds,
                           std::string label = "FW");

  [[nodiscard]] la::Vec act(const la::Vec& s) const override;
  [[nodiscard]] std::size_t state_dim() const override;
  [[nodiscard]] std::size_t control_dim() const override;
  [[nodiscard]] std::string describe() const override { return label_; }

  [[nodiscard]] std::size_t selected_entry(const la::Vec& s) const;
  [[nodiscard]] const std::vector<la::Vec>& weight_table() const noexcept {
    return weight_table_;
  }

 private:
  std::vector<ControllerPtr> experts_;
  std::vector<la::Vec> weight_table_;
  nn::Mlp selector_net_;
  sys::Box control_bounds_;
  std::string label_;
};

/// Uniform simplex grid: all weight vectors with entries from
/// {0, 1/k, ..., 1} summing to 1 (the convex-combination table of [11]).
/// For n experts and resolution k this is C(n+k-1, k) entries.
[[nodiscard]] std::vector<la::Vec> simplex_weight_table(std::size_t num_experts,
                                                        int resolution);

}  // namespace cocktail::ctrl
