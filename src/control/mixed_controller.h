// The paper's mixed controller design AW (Eq. (4)):
//
//   u(t) = clip( Σ_i a_i(s) · κ_i(s),  U_inf, U_sup )
//
// where the weight vector a(s) ∈ [-AB, AB]^n comes from the adaptive-mixing
// policy network (the deterministic mean of the PPO policy: tanh output
// scaled by AB).  This is the teacher the student networks are distilled
// from, and itself a baseline in Table I.
#pragma once

#include <string>
#include <vector>

#include "control/controller.h"
#include "nn/mlp.h"
#include "sys/system.h"

namespace cocktail::ctrl {

class MixedController final : public Controller {
 public:
  /// `weight_net` maps state -> n raw outputs in [-1, 1] (tanh head); the
  /// effective weight is `weight_bound * weight_net(s)`.
  MixedController(std::vector<ControllerPtr> experts, nn::Mlp weight_net,
                  double weight_bound, sys::Box control_bounds,
                  std::string label = "AW");

  [[nodiscard]] la::Vec act(const la::Vec& s) const override;
  [[nodiscard]] std::size_t state_dim() const override;
  [[nodiscard]] std::size_t control_dim() const override;
  [[nodiscard]] std::string describe() const override { return label_; }
  // The mixed design is a composite of several networks and possibly
  // non-smooth clipping; like the paper (Table I marks AW's L as "-") we
  // report no Lipschitz bound and no Jacobian for it.

  /// The dynamically-assigned expert weights a(s).
  [[nodiscard]] la::Vec weights(const la::Vec& s) const;
  [[nodiscard]] const std::vector<ControllerPtr>& experts() const noexcept {
    return experts_;
  }
  [[nodiscard]] const nn::Mlp& weight_net() const noexcept {
    return weight_net_;
  }
  [[nodiscard]] double weight_bound() const noexcept { return weight_bound_; }

 private:
  std::vector<ControllerPtr> experts_;
  nn::Mlp weight_net_;
  double weight_bound_;
  sys::Box control_bounds_;
  std::string label_;
};

}  // namespace cocktail::ctrl
