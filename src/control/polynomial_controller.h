// Sparse multivariate polynomial controller.
//
// Models the paper's model-based experts: κ2 of the 3D system is a
// polynomial controller from Sassi et al. [25] (its coefficients are
// unpublished; we synthesize a degree-1 instance via LQR — see DESIGN.md §2,
// consistent with the very small Lipschitz constant the paper reports).
// The class supports arbitrary degree so higher-order certificates can be
// plugged in as experts too.
#pragma once

#include <string>
#include <vector>

#include "control/controller.h"

namespace cocktail::ctrl {

/// One monomial: coefficient * prod_i s_i^powers[i].
struct Monomial {
  double coefficient = 0.0;
  std::vector<unsigned> powers;  ///< one entry per state dimension.
};

class PolynomialController final : public Controller {
 public:
  /// `terms[k]` is the monomial list of output dimension k.  Every monomial
  /// must carry `state_dim` powers.
  PolynomialController(std::size_t state_dim,
                       std::vector<std::vector<Monomial>> terms,
                       std::string label = "poly");

  /// Linear state feedback u = -K s as a degree-1 polynomial controller.
  static PolynomialController linear_feedback(const la::Matrix& k,
                                              std::string label = "poly-lin");

  [[nodiscard]] la::Vec act(const la::Vec& s) const override;
  [[nodiscard]] std::size_t state_dim() const override { return state_dim_; }
  [[nodiscard]] std::size_t control_dim() const override {
    return terms_.size();
  }
  [[nodiscard]] std::string describe() const override { return label_; }
  [[nodiscard]] bool differentiable() const override { return true; }
  [[nodiscard]] la::Matrix input_jacobian(const la::Vec& s) const override;

  /// For degree ≤ 1 this is exact (spectral norm of the linear part);
  /// higher degrees return a negative value — use lipschitz_over_box().
  [[nodiscard]] double lipschitz_bound() const override;

  /// Max Jacobian spectral norm over a sampled grid of the box — a sound
  /// empirical bound for smooth polynomials on compact sets.
  [[nodiscard]] double lipschitz_over_box(const la::Vec& lo, const la::Vec& hi,
                                          int samples_per_dim) const;

  [[nodiscard]] unsigned degree() const;
  [[nodiscard]] const std::vector<std::vector<Monomial>>& terms() const {
    return terms_;
  }

 private:
  std::size_t state_dim_;
  std::vector<std::vector<Monomial>> terms_;
  std::string label_;
};

}  // namespace cocktail::ctrl
