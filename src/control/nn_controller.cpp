#include "control/nn_controller.h"

#include <cmath>
#include <fstream>
#include <stdexcept>

namespace cocktail::ctrl {

NnController::NnController(nn::Mlp net, la::Vec out_scale, std::string label)
    : net_(std::move(net)), scale_(std::move(out_scale)),
      label_(std::move(label)) {
  if (net_.empty()) throw std::invalid_argument("NnController: empty network");
  if (scale_.size() == 1 && net_.output_dim() > 1)
    scale_ = la::constant(net_.output_dim(), scale_[0]);
  if (scale_.size() != net_.output_dim())
    throw std::invalid_argument("NnController: out_scale dimension mismatch");
}

la::Vec NnController::act(const la::Vec& s) const {
  return la::hadamard(scale_, net_.forward(s));
}

std::vector<la::Vec> NnController::act_batch(
    const std::vector<la::Vec>& states) const {
  // The explicit empty-batch answer: no states, no actions.  This guard is
  // load-bearing — la::Matrix::from_rows({}) throws rather than inventing
  // a 0 x 0 shape.
  if (states.empty()) return {};
  la::Matrix y = net_.forward_batch(la::Matrix::from_rows(states));
  // scale_[c] * y(r, c): the same multiplication la::hadamard performs in
  // the per-sample path (IEEE multiplication commutes bitwise).
  y.scale_columns(scale_);
  std::vector<la::Vec> actions;
  actions.reserve(states.size());
  for (std::size_t r = 0; r < y.rows(); ++r) actions.push_back(y.row(r));
  return actions;
}

std::size_t NnController::state_dim() const { return net_.input_dim(); }

std::size_t NnController::control_dim() const { return net_.output_dim(); }

la::Matrix NnController::input_jacobian(const la::Vec& s) const {
  la::Matrix jac = net_.input_jacobian(s);
  for (std::size_t r = 0; r < jac.rows(); ++r)
    for (std::size_t c = 0; c < jac.cols(); ++c) jac(r, c) *= scale_[r];
  return jac;
}

double NnController::lipschitz_bound() const {
  double max_scale = 0.0;
  for (double v : scale_) max_scale = std::max(max_scale, std::abs(v));
  return max_scale * net_.lipschitz_upper_bound();
}

void NnController::save_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out)
    throw std::runtime_error("NnController::save_file: cannot open " + path);
  out << "cocktail-nn-controller v1\n";
  out.precision(17);
  out << scale_.size();
  for (double v : scale_) out << ' ' << v;
  out << '\n';
  net_.save(out);
}

NnController NnController::load_file(const std::string& path,
                                     std::string label) {
  std::ifstream in(path);
  if (!in)
    throw std::runtime_error("NnController::load_file: cannot open " + path);
  std::string word1, word2;
  in >> word1 >> word2;
  if (word1 != "cocktail-nn-controller" || word2 != "v1")
    throw std::runtime_error("NnController::load_file: bad header in " + path);
  std::size_t n = 0;
  in >> n;
  la::Vec scale(n);
  for (auto& v : scale) in >> v;
  nn::Mlp net = nn::Mlp::load(in);
  return NnController(std::move(net), std::move(scale), std::move(label));
}

}  // namespace cocktail::ctrl
