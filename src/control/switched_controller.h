// Switching adaptation baseline AS (Wang et al., ICCAD 2020 [4]):
// an RL-learned logic that picks exactly one expert per sampling period.
// Its action space {e_1, ..., e_n} is a strict subset of the mixing action
// space, which is the formal basis of the paper's Proposition 1.
#pragma once

#include <string>
#include <vector>

#include "control/controller.h"
#include "nn/mlp.h"

namespace cocktail::ctrl {

class SwitchedController final : public Controller {
 public:
  /// `selector_net` maps state -> n logits; act() runs the argmax expert.
  SwitchedController(std::vector<ControllerPtr> experts, nn::Mlp selector_net,
                     std::string label = "AS");

  [[nodiscard]] la::Vec act(const la::Vec& s) const override;
  [[nodiscard]] std::size_t state_dim() const override;
  [[nodiscard]] std::size_t control_dim() const override;
  [[nodiscard]] std::string describe() const override { return label_; }

  /// Index of the expert the selector picks at `s`.
  [[nodiscard]] std::size_t selected_expert(const la::Vec& s) const;
  [[nodiscard]] const std::vector<ControllerPtr>& experts() const noexcept {
    return experts_;
  }
  [[nodiscard]] const nn::Mlp& selector_net() const noexcept {
    return selector_net_;
  }

 private:
  std::vector<ControllerPtr> experts_;
  nn::Mlp selector_net_;
  std::string label_;
};

}  // namespace cocktail::ctrl
