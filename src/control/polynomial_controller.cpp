#include "control/polynomial_controller.h"

#include <cmath>
#include <stdexcept>

namespace cocktail::ctrl {
namespace {

double pow_unsigned(double base, unsigned exp) {
  double out = 1.0;
  while (exp-- > 0) out *= base;
  return out;
}

}  // namespace

PolynomialController::PolynomialController(
    std::size_t state_dim, std::vector<std::vector<Monomial>> terms,
    std::string label)
    : state_dim_(state_dim), terms_(std::move(terms)),
      label_(std::move(label)) {
  if (terms_.empty())
    throw std::invalid_argument("PolynomialController: no output dimensions");
  for (const auto& output : terms_)
    for (const auto& mono : output)
      if (mono.powers.size() != state_dim_)
        throw std::invalid_argument(
            "PolynomialController: monomial arity != state_dim");
}

PolynomialController PolynomialController::linear_feedback(const la::Matrix& k,
                                                           std::string label) {
  std::vector<std::vector<Monomial>> terms(k.rows());
  for (std::size_t r = 0; r < k.rows(); ++r) {
    for (std::size_t c = 0; c < k.cols(); ++c) {
      if (k(r, c) == 0.0) continue;
      Monomial mono;
      mono.coefficient = -k(r, c);  // u = -K s.
      mono.powers.assign(k.cols(), 0);
      mono.powers[c] = 1;
      terms[r].push_back(std::move(mono));
    }
  }
  return PolynomialController(k.cols(), std::move(terms), std::move(label));
}

la::Vec PolynomialController::act(const la::Vec& s) const {
  if (s.size() != state_dim_)
    throw std::invalid_argument("PolynomialController::act: bad state dim");
  la::Vec u(terms_.size(), 0.0);
  for (std::size_t k = 0; k < terms_.size(); ++k) {
    double acc = 0.0;
    for (const auto& mono : terms_[k]) {
      double value = mono.coefficient;
      for (std::size_t i = 0; i < state_dim_; ++i)
        if (mono.powers[i] > 0) value *= pow_unsigned(s[i], mono.powers[i]);
      acc += value;
    }
    u[k] = acc;
  }
  return u;
}

la::Matrix PolynomialController::input_jacobian(const la::Vec& s) const {
  la::Matrix jac(terms_.size(), state_dim_);
  for (std::size_t k = 0; k < terms_.size(); ++k) {
    for (const auto& mono : terms_[k]) {
      for (std::size_t d = 0; d < state_dim_; ++d) {
        if (mono.powers[d] == 0) continue;
        double value = mono.coefficient * mono.powers[d];
        for (std::size_t i = 0; i < state_dim_; ++i) {
          const unsigned p = i == d ? mono.powers[i] - 1 : mono.powers[i];
          if (p > 0) value *= pow_unsigned(s[i], p);
        }
        jac(k, d) += value;
      }
    }
  }
  return jac;
}

double PolynomialController::lipschitz_bound() const {
  if (degree() > 1) return -1.0;
  // Degree <= 1: the Jacobian is constant; evaluate it anywhere.
  return input_jacobian(la::zeros(state_dim_)).spectral_norm();
}

double PolynomialController::lipschitz_over_box(const la::Vec& lo,
                                                const la::Vec& hi,
                                                int samples_per_dim) const {
  if (lo.size() != state_dim_ || hi.size() != state_dim_)
    throw std::invalid_argument(
        "PolynomialController::lipschitz_over_box: bad box");
  if (samples_per_dim < 2) samples_per_dim = 2;
  // Dense grid walk; polynomial Jacobians attain their max on the boundary
  // of a box, which grid corners cover as the grid refines.
  const std::size_t total = static_cast<std::size_t>(
      std::pow(static_cast<double>(samples_per_dim),
               static_cast<double>(state_dim_)));
  double best = 0.0;
  la::Vec s(state_dim_);
  for (std::size_t index = 0; index < total; ++index) {
    std::size_t rem = index;
    for (std::size_t d = 0; d < state_dim_; ++d) {
      const std::size_t k = rem % samples_per_dim;
      rem /= samples_per_dim;
      s[d] = lo[d] + (hi[d] - lo[d]) * static_cast<double>(k) /
                         static_cast<double>(samples_per_dim - 1);
    }
    best = std::max(best, input_jacobian(s).spectral_norm());
  }
  return best;
}

unsigned PolynomialController::degree() const {
  unsigned best = 0;
  for (const auto& output : terms_)
    for (const auto& mono : output) {
      unsigned total = 0;
      for (unsigned p : mono.powers) total += p;
      best = std::max(best, total);
    }
  return best;
}

}  // namespace cocktail::ctrl
