#include "control/controller.h"

#include <stdexcept>

namespace cocktail::ctrl {

la::Matrix Controller::input_jacobian(const la::Vec&) const {
  throw std::logic_error("Controller::input_jacobian: " + describe() +
                         " is not differentiable");
}

}  // namespace cocktail::ctrl
