// Feedback controller interface κ: s ↦ u.
//
// Everything the paper calls an "expert" — DDPG-trained networks,
// model-based polynomial/LQR controllers — and everything Cocktail
// produces — the mixed teacher AW, the switched baseline AS, the students
// κD/κ* — implements this interface, so metrics, attacks, and verification
// treat them uniformly.
#pragma once

#include <memory>
#include <string>

#include "la/matrix.h"
#include "la/vec.h"

namespace cocktail::ctrl {

class Controller {
 public:
  virtual ~Controller() = default;

  /// Control input for (possibly perturbed) observed state `s`.
  [[nodiscard]] virtual la::Vec act(const la::Vec& s) const = 0;

  [[nodiscard]] virtual std::size_t state_dim() const = 0;
  [[nodiscard]] virtual std::size_t control_dim() const = 0;

  /// Human-readable description for bench tables.
  [[nodiscard]] virtual std::string describe() const = 0;

  /// True if input_jacobian() is available (gradient-based attacks use it;
  /// non-differentiable controllers fall back to finite differences).
  [[nodiscard]] virtual bool differentiable() const { return false; }

  /// dκ/ds at `s`; throws std::logic_error when !differentiable().
  [[nodiscard]] virtual la::Matrix input_jacobian(const la::Vec& s) const;

  /// Certified global Lipschitz upper bound, or a negative value when no
  /// bound is available (the paper marks such controllers "-" in Table I).
  [[nodiscard]] virtual double lipschitz_bound() const { return -1.0; }
};

using ControllerPtr = std::shared_ptr<const Controller>;

/// κ(s) = 0 — used as a trivial expert in tests and ablations.
class ZeroController final : public Controller {
 public:
  ZeroController(std::size_t state_dim, std::size_t control_dim)
      : state_dim_(state_dim), control_dim_(control_dim) {}

  [[nodiscard]] la::Vec act(const la::Vec&) const override {
    return la::zeros(control_dim_);
  }
  [[nodiscard]] std::size_t state_dim() const override { return state_dim_; }
  [[nodiscard]] std::size_t control_dim() const override {
    return control_dim_;
  }
  [[nodiscard]] std::string describe() const override { return "zero"; }
  [[nodiscard]] bool differentiable() const override { return true; }
  [[nodiscard]] la::Matrix input_jacobian(const la::Vec&) const override {
    return la::Matrix(control_dim_, state_dim_);
  }
  [[nodiscard]] double lipschitz_bound() const override { return 0.0; }

 private:
  std::size_t state_dim_;
  std::size_t control_dim_;
};

}  // namespace cocktail::ctrl
