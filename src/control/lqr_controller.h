// Discrete-time LQR expert: u = -K s with K from the Riccati recursion on
// the plant's linearization.  One of the "well-established model-based
// approaches" (LQR [6]) the paper cites as a possible expert; also the
// synthesis route for the 3D system's polynomial expert (DESIGN.md §2).
#pragma once

#include <string>

#include "control/controller.h"
#include "la/solve.h"
#include "sys/system.h"

namespace cocktail::ctrl {

class LqrController final : public Controller {
 public:
  explicit LqrController(la::Matrix gain, std::string label = "lqr");

  /// Synthesizes the gain from `system.linearize()` with diagonal
  /// Q = state_weight*I and R = control_weight*I.
  static LqrController synthesize(const sys::System& system,
                                  double state_weight = 1.0,
                                  double control_weight = 1.0,
                                  std::string label = "lqr");

  [[nodiscard]] la::Vec act(const la::Vec& s) const override;
  [[nodiscard]] std::size_t state_dim() const override { return k_.cols(); }
  [[nodiscard]] std::size_t control_dim() const override { return k_.rows(); }
  [[nodiscard]] std::string describe() const override { return label_; }
  [[nodiscard]] bool differentiable() const override { return true; }
  [[nodiscard]] la::Matrix input_jacobian(const la::Vec& s) const override;
  [[nodiscard]] double lipschitz_bound() const override;

  [[nodiscard]] const la::Matrix& gain() const noexcept { return k_; }

 private:
  la::Matrix k_;
  std::string label_;
};

}  // namespace cocktail::ctrl
