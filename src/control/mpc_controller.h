// Sampling-based model-predictive controller (cross-entropy method).
//
// The paper lists MPC [5] among the candidate expert types; this CEM
// planner provides one without requiring gradients of the plant.  It is an
// *extension* expert (not used by the headline tables) exercised by the
// examples and the action-space ablation.
#pragma once

#include <string>

#include "control/controller.h"
#include "sys/system.h"
#include "util/rng.h"

namespace cocktail::ctrl {

struct MpcConfig {
  int planning_horizon = 12;   ///< lookahead steps.
  int samples = 128;           ///< rollouts per CEM iteration.
  int elites = 16;             ///< top samples refit per iteration.
  int iterations = 4;          ///< CEM refinement rounds.
  double init_stddev_frac = 0.5;  ///< initial σ as a fraction of |U|.
  double state_weight = 1.0;   ///< stage cost: state_weight*||s||² ...
  double control_weight = 0.01;  ///< ... + control_weight*||u||².
  double unsafe_penalty = 1e4;  ///< added per step outside X.
  std::uint64_t seed = 7;
};

class MpcController final : public Controller {
 public:
  explicit MpcController(sys::SystemPtr system, MpcConfig config = {},
                std::string label = "mpc");

  /// Plans from scratch at every call (stateless receding horizon).  The
  /// internal CEM randomness is re-seeded from the state so the controller
  /// stays a deterministic function of s, as the Controller contract and
  /// the safe-control-rate metric require.
  [[nodiscard]] la::Vec act(const la::Vec& s) const override;

  [[nodiscard]] std::size_t state_dim() const override;
  [[nodiscard]] std::size_t control_dim() const override;
  [[nodiscard]] std::string describe() const override { return label_; }

 private:
  [[nodiscard]] double rollout_cost(const la::Vec& s0,
                                    const std::vector<la::Vec>& plan) const;

  sys::SystemPtr system_;
  MpcConfig config_;
  std::string label_;
};

}  // namespace cocktail::ctrl
