#include "control/mpc_controller.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace cocktail::ctrl {

MpcController::MpcController(sys::SystemPtr system, MpcConfig config,
                             std::string label)
    : system_(std::move(system)), config_(config), label_(std::move(label)) {
  if (!system_) throw std::invalid_argument("MpcController: null system");
}

std::size_t MpcController::state_dim() const { return system_->state_dim(); }

std::size_t MpcController::control_dim() const {
  return system_->control_dim();
}

double MpcController::rollout_cost(const la::Vec& s0,
                                   const std::vector<la::Vec>& plan) const {
  la::Vec s = s0;
  double cost = 0.0;
  const la::Vec no_disturbance =
      la::zeros(system_->disturbance_dim());  // plan on the nominal model
  for (const auto& u_raw : plan) {
    const la::Vec u = system_->clip_control(u_raw);
    s = system_->step(s, u, no_disturbance);
    cost += config_.state_weight * la::dot(s, s) +
            config_.control_weight * la::dot(u, u);
    if (!system_->is_safe(s)) cost += config_.unsafe_penalty;
  }
  return cost;
}

la::Vec MpcController::act(const la::Vec& s) const {
  const std::size_t m = control_dim();
  const int horizon = config_.planning_horizon;
  // Deterministic per-state seed: hash the state bits into the RNG stream.
  std::uint64_t state_hash = config_.seed;
  for (double v : s) {
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    state_hash = util::derive_seed(state_hash, bits);
  }
  util::Rng rng(state_hash);

  const sys::Box bounds = system_->control_bounds();
  std::vector<double> mean(static_cast<std::size_t>(horizon) * m, 0.0);
  std::vector<double> stddev(mean.size());
  for (std::size_t i = 0; i < stddev.size(); ++i) {
    const std::size_t dim = i % m;
    stddev[i] = config_.init_stddev_frac * (bounds.hi[dim] - bounds.lo[dim]) / 2.0;
  }

  std::vector<std::vector<la::Vec>> plans(config_.samples);
  std::vector<double> costs(config_.samples);
  for (int iter = 0; iter < config_.iterations; ++iter) {
    for (int k = 0; k < config_.samples; ++k) {
      auto& plan = plans[k];
      plan.assign(horizon, la::zeros(m));
      for (int t = 0; t < horizon; ++t)
        for (std::size_t d = 0; d < m; ++d) {
          const std::size_t idx = static_cast<std::size_t>(t) * m + d;
          plan[t][d] = std::clamp(rng.normal(mean[idx], stddev[idx]),
                                  bounds.lo[d], bounds.hi[d]);
        }
      costs[k] = rollout_cost(s, plan);
    }
    std::vector<int> order(plans.size());
    std::iota(order.begin(), order.end(), 0);
    std::partial_sort(order.begin(), order.begin() + config_.elites,
                      order.end(),
                      [&](int a, int b) { return costs[a] < costs[b]; });
    // Refit mean/stddev on the elite set.
    for (std::size_t idx = 0; idx < mean.size(); ++idx) {
      const int t = static_cast<int>(idx / m);
      const std::size_t d = idx % m;
      double mu = 0.0;
      for (int e = 0; e < config_.elites; ++e)
        mu += plans[order[e]][t][d];
      mu /= config_.elites;
      double var = 0.0;
      for (int e = 0; e < config_.elites; ++e) {
        const double diff = plans[order[e]][t][d] - mu;
        var += diff * diff;
      }
      var /= config_.elites;
      mean[idx] = mu;
      stddev[idx] = std::sqrt(var) + 1e-3;  // keep a little exploration
    }
  }
  la::Vec u(m);
  for (std::size_t d = 0; d < m; ++d) u[d] = mean[d];
  return system_->clip_control(u);
}

}  // namespace cocktail::ctrl
