// Neural-network controller: u = out_scale ∘ net(s).
//
// DDPG actors use a tanh output layer with out_scale = control bound, so the
// raw network output already respects U.  Distilled students regress the
// teacher's (already clipped) control directly with identity output and
// out_scale = 1.
#pragma once

#include <string>
#include <vector>

#include "control/controller.h"
#include "nn/mlp.h"

namespace cocktail::ctrl {

class NnController final : public Controller {
 public:
  /// `out_scale` is broadcast if it has one entry; otherwise it must match
  /// the network's output dimension.
  NnController(nn::Mlp net, la::Vec out_scale, std::string label = "nn");

  [[nodiscard]] la::Vec act(const la::Vec& s) const override;
  /// Batched inference over N states via nn::Mlp::forward_batch; entry k is
  /// bitwise identical to act(states[k]) for any batch composition — the
  /// serving runtime's micro-batcher relies on this to keep batched answers
  /// equal to the synchronous per-request path.
  [[nodiscard]] std::vector<la::Vec> act_batch(
      const std::vector<la::Vec>& states) const;
  [[nodiscard]] std::size_t state_dim() const override;
  [[nodiscard]] std::size_t control_dim() const override;
  [[nodiscard]] std::string describe() const override { return label_; }
  [[nodiscard]] bool differentiable() const override { return true; }
  [[nodiscard]] la::Matrix input_jacobian(const la::Vec& s) const override;
  /// max_i |out_scale_i| × certified network bound.
  [[nodiscard]] double lipschitz_bound() const override;

  [[nodiscard]] const nn::Mlp& net() const noexcept { return net_; }
  [[nodiscard]] nn::Mlp& net() noexcept { return net_; }
  [[nodiscard]] const la::Vec& out_scale() const noexcept { return scale_; }

  void save_file(const std::string& path) const;
  /// Loads a controller saved by save_file().
  static NnController load_file(const std::string& path, std::string label);

 private:
  nn::Mlp net_;
  la::Vec scale_;
  std::string label_;
};

}  // namespace cocktail::ctrl
