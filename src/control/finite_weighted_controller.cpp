#include "control/finite_weighted_controller.h"

#include <algorithm>
#include <functional>
#include <stdexcept>

namespace cocktail::ctrl {

FiniteWeightedController::FiniteWeightedController(
    std::vector<ControllerPtr> experts, std::vector<la::Vec> weight_table,
    nn::Mlp selector_net, sys::Box control_bounds, std::string label)
    : experts_(std::move(experts)), weight_table_(std::move(weight_table)),
      selector_net_(std::move(selector_net)),
      control_bounds_(std::move(control_bounds)), label_(std::move(label)) {
  if (experts_.empty())
    throw std::invalid_argument("FiniteWeightedController: no experts");
  if (weight_table_.empty())
    throw std::invalid_argument("FiniteWeightedController: empty table");
  for (const auto& weights : weight_table_)
    if (weights.size() != experts_.size())
      throw std::invalid_argument(
          "FiniteWeightedController: table arity mismatch");
  if (selector_net_.output_dim() != weight_table_.size())
    throw std::invalid_argument(
        "FiniteWeightedController: selector output dim != table size");
}

std::size_t FiniteWeightedController::selected_entry(const la::Vec& s) const {
  const la::Vec logits = selector_net_.forward(s);
  return static_cast<std::size_t>(
      std::max_element(logits.begin(), logits.end()) - logits.begin());
}

la::Vec FiniteWeightedController::act(const la::Vec& s) const {
  const la::Vec& weights = weight_table_[selected_entry(s)];
  la::Vec u = la::zeros(control_dim());
  for (std::size_t i = 0; i < experts_.size(); ++i)
    la::axpy(u, weights[i], experts_[i]->act(s));
  return la::clip(u, control_bounds_.lo, control_bounds_.hi);
}

std::size_t FiniteWeightedController::state_dim() const {
  return experts_.front()->state_dim();
}

std::size_t FiniteWeightedController::control_dim() const {
  return experts_.front()->control_dim();
}

std::vector<la::Vec> simplex_weight_table(std::size_t num_experts,
                                          int resolution) {
  if (num_experts == 0 || resolution < 1)
    throw std::invalid_argument("simplex_weight_table: bad arguments");
  std::vector<la::Vec> table;
  la::Vec current(num_experts, 0.0);
  // Recursive composition of `resolution` units over num_experts bins.
  const std::function<void(std::size_t, int)> fill = [&](std::size_t dim,
                                                         int remaining) {
    if (dim + 1 == num_experts) {
      current[dim] = static_cast<double>(remaining) / resolution;
      table.push_back(current);
      return;
    }
    for (int take = 0; take <= remaining; ++take) {
      current[dim] = static_cast<double>(take) / resolution;
      fill(dim + 1, remaining - take);
    }
  };
  fill(0, resolution);
  return table;
}

}  // namespace cocktail::ctrl
