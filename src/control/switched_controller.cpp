#include "control/switched_controller.h"

#include <algorithm>
#include <stdexcept>

namespace cocktail::ctrl {

SwitchedController::SwitchedController(std::vector<ControllerPtr> experts,
                                       nn::Mlp selector_net, std::string label)
    : experts_(std::move(experts)), selector_net_(std::move(selector_net)),
      label_(std::move(label)) {
  if (experts_.empty())
    throw std::invalid_argument("SwitchedController: no experts");
  for (const auto& expert : experts_)
    if (!expert) throw std::invalid_argument("SwitchedController: null expert");
  if (selector_net_.output_dim() != experts_.size())
    throw std::invalid_argument(
        "SwitchedController: selector output dim != expert count");
}

std::size_t SwitchedController::selected_expert(const la::Vec& s) const {
  const la::Vec logits = selector_net_.forward(s);
  return static_cast<std::size_t>(
      std::max_element(logits.begin(), logits.end()) - logits.begin());
}

la::Vec SwitchedController::act(const la::Vec& s) const {
  return experts_[selected_expert(s)]->act(s);
}

std::size_t SwitchedController::state_dim() const {
  return experts_.front()->state_dim();
}

std::size_t SwitchedController::control_dim() const {
  return experts_.front()->control_dim();
}

}  // namespace cocktail::ctrl
