#include "control/lqr_controller.h"

namespace cocktail::ctrl {

LqrController::LqrController(la::Matrix gain, std::string label)
    : k_(std::move(gain)), label_(std::move(label)) {}

LqrController LqrController::synthesize(const sys::System& system,
                                        double state_weight,
                                        double control_weight,
                                        std::string label) {
  la::Matrix a, b;
  system.linearize(a, b);
  const la::Matrix q = la::Matrix::identity(a.rows()) * state_weight;
  const la::Matrix r = la::Matrix::identity(b.cols()) * control_weight;
  const la::DareResult dare = la::solve_dare(a, b, q, r);
  return LqrController(dare.k, std::move(label));
}

la::Vec LqrController::act(const la::Vec& s) const {
  return la::scale(k_.matvec(s), -1.0);
}

la::Matrix LqrController::input_jacobian(const la::Vec&) const {
  return k_ * -1.0;
}

double LqrController::lipschitz_bound() const { return k_.spectral_norm(); }

}  // namespace cocktail::ctrl
