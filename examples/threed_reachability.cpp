// 3D-system reachability (the paper's Fig 4 scenario): propagate the
// verified flowpipe of the robust student κ* for 15 steps from the corner
// initial box  s ∈ [-0.11, -0.105] × [0.205, 0.21] × [0.1, 0.11]  and
// check it never leaves X.  Writes the (x, y) projections to CSV for
// plotting.
#include <cstdio>

#include "core/pipeline.h"
#include "sys/registry.h"
#include "util/csv.h"
#include "util/logging.h"
#include "util/paths.h"
#include "verify/reach.h"

int main() {
  using namespace cocktail;
  util::set_log_level(util::LogLevel::kInfo);

  sys::SystemPtr system = sys::make_system("threed");
  const auto config = core::default_pipeline_config("threed");
  const auto artifacts = core::run_pipeline(system, config);

  verify::ReachConfig reach;
  reach.steps = 15;
  reach.abstraction.epsilon_target = 0.3;
  const verify::ReachabilityAnalyzer analyzer(
      system, *artifacts.robust_student, reach);
  const verify::IBox initial =
      verify::make_box({-0.11, 0.205, 0.1}, {-0.105, 0.21, 0.11});
  const auto result = analyzer.analyze(initial);

  if (!result.completed) {
    std::printf("verification FAILED: %s\n", result.failure.c_str());
    return 1;
  }
  std::printf("\n=== Reachable set of k* over 15 steps ===\n");
  std::printf("%4s %8s  %-24s %-24s\n", "step", "boxes", "x-range", "y-range");
  const std::string csv_path = util::output_dir() + "/threed_reach.csv";
  util::CsvWriter csv(csv_path,
                      {"step", "x_lo", "x_hi", "y_lo", "y_hi", "z_lo", "z_hi"});
  for (std::size_t t = 0; t < result.layers.size(); ++t) {
    verify::IBox hull = result.layers[t].front();
    for (const auto& box : result.layers[t]) hull = verify::box_hull(hull, box);
    std::printf("%4zu %8zu  [%+.4f, %+.4f]      [%+.4f, %+.4f]\n", t,
                result.layers[t].size(), hull[0].lo(), hull[0].hi(),
                hull[1].lo(), hull[1].hi());
    for (const auto& box : result.layers[t])
      csv.row({static_cast<double>(t), box[0].lo(), box[0].hi(), box[1].lo(),
               box[1].hi(), box[2].lo(), box[2].hi()});
  }
  std::printf("\nsystem verified %s in %.2f s (%ld NN evaluations, %ld "
              "partitions)\n",
              result.safe ? "SAFE" : "UNSAFE", result.seconds,
              result.nn_evaluations, result.partitions);
  std::printf("flowpipe boxes written to %s\n", csv_path.c_str());
  return result.safe ? 0 : 1;
}
