// Cartpole robustness study: how the direct (κD) and robust (κ*) students
// degrade as the measurement-noise / attack magnitude grows from 0 to 15%
// of the state bound — the regime the paper evaluates in Table II.
#include <cstdio>

#include "attack/fgsm.h"
#include "attack/perturbation.h"
#include "core/metrics.h"
#include "core/pipeline.h"
#include "sys/registry.h"
#include "util/logging.h"

int main() {
  using namespace cocktail;
  util::set_log_level(util::LogLevel::kInfo);

  sys::SystemPtr system = sys::make_system("cartpole");
  const auto config = core::default_pipeline_config("cartpole");
  const auto artifacts = core::run_pipeline(system, config);

  core::EvalConfig eval;
  eval.num_initial_states = 300;

  std::printf("\n=== Cartpole: students under increasing perturbation ===\n");
  std::printf("%-10s | %-21s | %-21s\n", "", "uniform noise", "FGSM attack");
  std::printf("%-10s | %9s %11s | %9s %11s\n", "magnitude", "Sr(kD)%",
              "Sr(k*)%", "Sr(kD)%", "Sr(k*)%");
  for (const double fraction : {0.0, 0.05, 0.10, 0.15}) {
    double sr[2][2] = {{0, 0}, {0, 0}};  // [noise|attack][kD|k*].
    const ctrl::ControllerPtr students[2] = {artifacts.direct_student,
                                             artifacts.robust_student};
    for (int which = 0; which < 2; ++which) {
      core::EvalConfig noisy = eval;
      core::EvalConfig attacked = eval;
      if (fraction > 0.0) {
        const la::Vec bound = attack::perturbation_bound(*system, fraction);
        noisy.perturbation = std::make_shared<attack::UniformNoise>(bound);
        attacked.perturbation = std::make_shared<attack::FgsmAttack>(bound);
      }
      sr[0][which] =
          100.0 * core::evaluate(*system, *students[which], noisy).safe_rate;
      sr[1][which] =
          100.0 *
          core::evaluate(*system, *students[which], attacked).safe_rate;
    }
    std::printf("%9.0f%% | %9.1f %11.1f | %9.1f %11.1f\n", 100.0 * fraction,
                sr[0][0], sr[0][1], sr[1][0], sr[1][1]);
  }

  std::printf(
      "\nLipschitz bounds: L(kD) = %.1f, L(k*) = %.1f — the robust student's "
      "smaller constant is what damps the perturbation response.\n",
      artifacts.direct_student->lipschitz_bound(),
      artifacts.robust_student->lipschitz_bound());
  return 0;
}
