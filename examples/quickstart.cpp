// Quickstart: the whole Cocktail workflow in ~60 lines of API calls.
//
//   1. pick a plant (Van der Pol oscillator),
//   2. train two imperfect DDPG experts,
//   3. learn the adaptive mixing strategy (PPO over expert weights),
//   4. robustly distill the mixed teacher into a single student network,
//   5. evaluate safe control rate / energy and inspect Lipschitz bounds.
//
// Training budgets here are deliberately small so the example runs in
// about a minute; the benches use the full budgets.
#include <cstdio>

#include "core/expert_trainer.h"
#include "core/metrics.h"
#include "core/mixing.h"
#include "core/distiller.h"
#include "sys/registry.h"
#include "util/logging.h"

int main() {
  using namespace cocktail;
  util::set_log_level(util::LogLevel::kInfo);

  // 1. The plant: Van der Pol oscillator with the paper's X, U, Ω, τ, T.
  sys::SystemPtr system = sys::make_system("vanderpol");

  // 2. Two experts with different hyper-parameters (small budgets).
  std::vector<ctrl::ControllerPtr> experts;
  for (auto spec : core::default_expert_specs(system->name(), /*seed=*/7)) {
    spec.ddpg.episodes = std::min(spec.ddpg.episodes, 80);  // quickstart size.
    experts.push_back(core::train_ddpg_expert(system, spec));
  }

  // 3. Adaptive mixing: PPO learns state-dependent weights a(s) in
  //    [-AB, AB]^2; the plant input is clip(sum_i a_i * expert_i(s)).
  core::MixingConfig mixing;
  mixing.ppo.iterations = 24;
  mixing.ppo.steps_per_iteration = 1500;
  const auto mixed = core::train_adaptive_mixing(system, experts, mixing);

  // 4. Robust distillation: probabilistic FGSM + L2 shrink the student's
  //    Lipschitz constant while it regresses the teacher.
  core::DistillConfig distill;
  distill.epochs = 60;
  distill.uniform_samples = 2000;
  const auto student =
      core::distill(*system, *mixed.controller, distill, "k*");

  // 5. Evaluate: 200 random initial states, no perturbation.
  core::EvalConfig eval;
  eval.num_initial_states = 200;
  std::printf("\n%-22s %10s %12s %12s\n", "controller", "Sr (%)", "energy",
              "Lipschitz");
  auto report = [&](const std::string& label, const ctrl::Controller& c) {
    const auto r = core::evaluate(*system, c, eval);
    const double lip = c.lipschitz_bound();
    if (lip >= 0.0)
      std::printf("%-22s %10.1f %12s %12.2f\n", label.c_str(),
                  100.0 * r.safe_rate,
                  core::format_energy(r.mean_energy).c_str(), lip);
    else
      std::printf("%-22s %10.1f %12s %12s\n", label.c_str(),
                  100.0 * r.safe_rate,
                  core::format_energy(r.mean_energy).c_str(), "-");
  };
  report("expert k1", *experts[0]);
  report("expert k2", *experts[1]);
  report("mixed teacher AW", *mixed.controller);
  report("student k* (Cocktail)", *student.student);
  std::printf(
      "\nThe student is a single %zu-parameter network distilled from the "
      "mixed design.\n",
      student.student->net().num_parameters());
  return 0;
}
