// Serving quickstart: stand up the controller-serving runtime in ~50 lines.
//
//   1. synthesize a trusted LQR expert on the Van der Pol oscillator,
//   2. distill it into a small verifiable student network (tiny budget so
//      the example runs in seconds; the real pipeline distills the mixed
//      teacher AW instead),
//   3. register the student with a certified-safety monitor and the LQR as
//      the fallback expert,
//   4. serve a mix of in-regime and out-of-regime requests concurrently,
//   5. read the primary/fallback counters and the action-deviation bound.
//
// The serving guarantee: every answer is bitwise identical to calling the
// routed controller directly — micro-batching is invisible except in
// throughput.
#include <cstdio>
#include <future>
#include <vector>

#include "control/lqr_controller.h"
#include "core/distiller.h"
#include "serve/controller_server.h"
#include "serve/safety_monitor.h"
#include "sys/registry.h"
#include "util/logging.h"

int main() {
  using namespace cocktail;
  util::set_log_level(util::LogLevel::kWarn);

  // 1. Plant + trusted fallback expert.
  sys::SystemPtr system = sys::make_system("vanderpol");
  const auto lqr = std::make_shared<ctrl::LqrController>(
      ctrl::LqrController::synthesize(*system, 1.0, 0.5));

  // 2. A small student distilled from the expert (quickstart budget).
  core::DistillConfig distill;
  distill.student_hidden = {16};
  distill.epochs = 25;
  distill.teacher_rollouts = 10;
  distill.uniform_samples = 800;
  const auto student = core::distill(*system, *lqr, distill, "k*").student;
  std::printf("student: %zu parameters, certified Lipschitz %.2f\n",
              student->net().num_parameters(), student->lipschitz_bound());

  // 3. The serving runtime: two dispatcher threads over two MPMC queue
  //    shards, micro-batches of up to 16 requests, and a safety monitor
  //    that only certifies states 0.2 inside the safe region X —
  //    everything else is answered by the LQR fallback.  shard_capacity
  //    bounds the queue depth: beyond it, submissions are load-shed with
  //    RejectedError(kQueueFull) instead of queueing unboundedly.
  serve::ServeConfig config;
  config.max_batch = 16;
  config.max_wait = std::chrono::microseconds(200);
  config.num_dispatchers = 2;
  config.num_shards = 2;
  config.shard_capacity = 1024;
  serve::ControllerServer server(config);
  server.register_controller(
      "vdp", student, lqr,
      serve::SafetyMonitor::inside_box(system->safe_region(), 0.2));

  // 4. Concurrent requests: in-regime states plus two clearly outside the
  //    certified region.
  std::vector<la::Vec> states = {{0.3, -0.4}, {-0.8, 0.5},  {0.0, 0.0},
                                 {1.1, -1.2}, {2.9, 2.9},   {-2.9, -2.9}};
  std::vector<std::future<la::Vec>> futures;
  futures.reserve(states.size());
  for (const la::Vec& s : states) futures.push_back(server.submit("vdp", s));
  std::printf("\n%-18s %12s %10s\n", "state", "action", "path");
  for (std::size_t i = 0; i < states.size(); ++i) {
    const la::Vec u = futures[i].get();
    const bool fallback = u == lqr->act(states[i]) && u != student->act(states[i]);
    std::printf("(%5.2f, %5.2f)     %12.4f %10s\n", states[i][0],
                states[i][1], u[0], fallback ? "fallback" : "k*");
  }

  // 5. Metrics: exact per-path counters, and the certified bound on how far
  //    an answer can drift under 0.05 observation noise.
  const serve::ServeCounters counters = server.counters("vdp");
  std::printf(
      "\nserved %llu by k*, %llu by the LQR fallback, %llu micro-batches "
      "(largest %llu rows)\n",
      static_cast<unsigned long long>(counters.primary),
      static_cast<unsigned long long>(counters.fallback),
      static_cast<unsigned long long>(counters.batches),
      static_cast<unsigned long long>(counters.max_batch_rows));
  std::printf("action deviation under ||delta||_inf <= 0.05: at most %.4f\n",
              serve::SafetyMonitor::action_deviation_bound(*student, 0.05));

  // 6. The SLO metrics registry: every server publishes per-controller
  //    latency histograms (p50/p99/p999) and routing/admission counters
  //    under serve.<name>.*; snapshot() renders them in name order with
  //    rates over the window since the previous snapshot.
  std::printf("\n%s", server.metrics().snapshot().format().c_str());
  return 0;
}
