// Custom experts: Cocktail does not require DDPG-trained experts — the
// paper stresses that experts "could be based on well-established
// model-based approaches, such as MPC or LQR".  This example mixes an LQR
// expert with a CEM-based MPC expert on the 3D system, then distills the
// result, exercising the public Controller interface end to end.
#include <cstdio>

#include "control/lqr_controller.h"
#include "control/mpc_controller.h"
#include "core/distiller.h"
#include "core/metrics.h"
#include "core/mixing.h"
#include "sys/registry.h"
#include "util/logging.h"

int main() {
  using namespace cocktail;
  util::set_log_level(util::LogLevel::kInfo);

  sys::SystemPtr system = sys::make_system("threed");

  // Expert 1: discrete LQR on the plant linearization (model-based).
  auto lqr = std::make_shared<ctrl::LqrController>(
      ctrl::LqrController::synthesize(*system, 1.0, 2.0, "lqr"));

  // Expert 2: sampling-based MPC (model-based, non-differentiable).
  ctrl::MpcConfig mpc_config;
  mpc_config.planning_horizon = 8;
  mpc_config.samples = 48;
  mpc_config.elites = 6;
  mpc_config.iterations = 2;
  auto mpc = std::make_shared<ctrl::MpcController>(system, mpc_config, "mpc");

  std::vector<ctrl::ControllerPtr> experts = {lqr, mpc};

  // Adaptive mixing over the model-based experts (moderate budget: the MPC
  // expert replans at every queried state, so env steps cost more here
  // than with network experts).
  core::MixingConfig mixing;
  mixing.ppo.iterations = 32;
  mixing.ppo.steps_per_iteration = 1500;
  mixing.snapshot.checkpoints = 4;
  mixing.snapshot.eval_states = 120;
  const auto mixed = core::train_adaptive_mixing(system, experts, mixing);

  // Distill to one small network: now the (slow, unverifiable) MPC expert
  // disappears from the deployed controller entirely.
  core::DistillConfig distill;
  distill.epochs = 60;
  distill.teacher_rollouts = 10;
  distill.uniform_samples = 1500;
  const auto student = core::distill(*system, *mixed.controller, distill, "k*");

  core::EvalConfig eval;
  eval.num_initial_states = 150;
  std::printf("\n%-16s %10s %12s\n", "controller", "Sr (%)", "energy");
  auto report = [&](const std::string& label, const ctrl::Controller& c) {
    const auto r = core::evaluate(*system, c, eval);
    std::printf("%-16s %10.1f %12s\n", label.c_str(), 100.0 * r.safe_rate,
                core::format_energy(r.mean_energy).c_str());
  };
  report("lqr", *lqr);
  report("mpc", *mpc);
  report("mixed AW", *mixed.controller);
  report("student k*", *student.student);
  std::printf("\nThe point of this example is the API, not the scores: two "
              "model-based\ncontrollers plugged into the same Controller "
              "interface, and the deployed\nresult is a single tiny network "
              "(L = %.2f, verifiable) — the slow,\nunverifiable MPC planner "
              "is gone from the loop.  Larger mixing budgets\n(cf. "
              "default_pipeline_config) are what close the gap to the best "
              "expert.\n",
              student.student->lipschitz_bound());
  return 0;
}
