// Visualizing the adaptive mixing strategy (the heart of Section III-A):
// sweeps the oscillator's state space on a grid and records, per state,
//   * the weight vector a(s) the mixing policy assigns to each expert, and
//   * which expert the switching baseline AS would pick,
// so the two adaptation strategies can be compared side by side.  The
// weights vary continuously with the state — exactly the capability the
// switching baseline lacks.
#include <cstdio>

#include "core/pipeline.h"
#include "sys/registry.h"
#include "util/csv.h"
#include "util/logging.h"
#include "util/paths.h"

int main() {
  using namespace cocktail;
  util::set_log_level(util::LogLevel::kInfo);

  sys::SystemPtr system = sys::make_system("vanderpol");
  const auto artifacts =
      core::run_pipeline(system, core::default_pipeline_config("vanderpol"));
  const auto* switched = dynamic_cast<const ctrl::SwitchedController*>(
      artifacts.switching.get());

  const std::string path = util::output_dir() + "/mixing_weights_map.csv";
  util::CsvWriter csv(path, {"s1", "s2", "a1", "a2", "u_mixed",
                             "as_expert", "u_switched"});
  const sys::Box x = system->safe_region();
  const int grid = 41;
  double a1_min = 1e9, a1_max = -1e9;
  for (int i = 0; i < grid; ++i) {
    for (int j = 0; j < grid; ++j) {
      const la::Vec s = {
          x.lo[0] + (x.hi[0] - x.lo[0]) * i / (grid - 1),
          x.lo[1] + (x.hi[1] - x.lo[1]) * j / (grid - 1)};
      const la::Vec weights = artifacts.mixed->weights(s);
      const la::Vec u_mixed = artifacts.mixed->act(s);
      const std::size_t choice = switched->selected_expert(s);
      const la::Vec u_switched = artifacts.switching->act(s);
      csv.row({s[0], s[1], weights[0], weights[1], u_mixed[0],
               static_cast<double>(choice), u_switched[0]});
      a1_min = std::min(a1_min, weights[0]);
      a1_max = std::max(a1_max, weights[0]);
    }
  }
  std::printf("wrote %zu grid rows to %s\n",
              static_cast<std::size_t>(grid) * grid, path.c_str());
  std::printf("expert-1 weight a1(s) spans [%.2f, %.2f] across the state "
              "space — the continuous adaptation the switching baseline's "
              "binary choice cannot express.\n",
              a1_min, a1_max);
  return 0;
}
