// Flagship scenario: the full Cocktail pipeline on the Van der Pol
// oscillator, mirroring the paper's presentation for one system —
//
//   * Table-I-style comparison (κ1, κ2, AS, AW, κD, κ*),
//   * robustness under an optimized FGSM attack (Table II),
//   * formal verification: control-invariant set of the student (Fig 3),
//     including the paper's "simulate 1500 initial states inside XI and
//     confirm all stay safe" sanity check.
//
// Trained artifacts are cached in COCKTAIL_MODEL_DIR (default
// ./cocktail_models), so the first run trains (~ a few minutes) and
// subsequent runs are instant.
#include <cstdio>

#include "attack/fgsm.h"
#include "core/metrics.h"
#include "core/pipeline.h"
#include "core/rollout.h"
#include "sys/registry.h"
#include "util/logging.h"
#include "verify/invariant.h"

int main() {
  using namespace cocktail;
  util::set_log_level(util::LogLevel::kInfo);

  sys::SystemPtr system = sys::make_system("vanderpol");
  const auto config = core::default_pipeline_config("vanderpol");
  const auto artifacts = core::run_pipeline(system, config);

  // --- Table-I-style comparison ---
  core::EvalConfig eval;
  eval.num_initial_states = 500;
  std::printf("\n=== Van der Pol oscillator: baseline comparison ===\n");
  std::printf("%-6s %10s %12s %12s\n", "ctrl", "Sr (%)", "energy", "L");
  for (const auto& [label, controller] : artifacts.table_row_controllers()) {
    const auto r = core::evaluate(*system, *controller, eval);
    const double lip = controller->lipschitz_bound();
    if (lip >= 0.0)
      std::printf("%-6s %10.1f %12s %12.2f\n", label.c_str(),
                  100.0 * r.safe_rate,
                  core::format_energy(r.mean_energy).c_str(), lip);
    else
      std::printf("%-6s %10.1f %12s %12s\n", label.c_str(),
                  100.0 * r.safe_rate,
                  core::format_energy(r.mean_energy).c_str(), "-");
  }

  // --- Robustness under optimized attack (Table II flavour) ---
  std::printf("\n=== Under FGSM attack (12%% of state bound) ===\n");
  core::EvalConfig attacked = eval;
  attacked.perturbation = std::make_shared<attack::FgsmAttack>(
      attack::perturbation_bound(*system, 0.12));
  for (const auto& label : {std::string("kD"), std::string("k*")}) {
    const auto& controller = label == "kD" ? artifacts.direct_student
                                           : artifacts.robust_student;
    const auto r = core::evaluate(*system, *controller, attacked);
    std::printf("%-6s Sr = %5.1f%%   energy = %8s\n", label.c_str(),
                100.0 * r.safe_rate,
                core::format_energy(r.mean_energy).c_str());
  }

  // --- Formal verification: invariant set of the robust student ---
  std::printf("\n=== Invariant set of k* (grid fixed point) ===\n");
  verify::InvariantConfig inv;
  inv.grid = {80, 80};
  inv.abstraction.epsilon_target = 0.4;
  const verify::InvariantSetComputer computer(
      system, *artifacts.robust_student, inv);
  const auto result = computer.compute();
  if (!result.completed) {
    std::printf("verification failed: %s\n", result.failure.c_str());
    return 1;
  }
  std::printf("certified %.1f%% of X in %.2f s (%ld NN evaluations)\n",
              100.0 * result.volume_fraction, result.seconds,
              result.nn_evaluations);

  // The paper's closing check: simulate many initial states inside XI and
  // confirm every trajectory stays safe.
  const sys::Box domain = system->safe_region();
  util::Rng rng(99);
  int simulated = 0, safe = 0;
  while (simulated < 1500) {
    const la::Vec s0 = domain.sample(rng);
    if (!result.contains(domain, s0)) continue;
    ++simulated;
    core::RolloutConfig rollout_config;
    rollout_config.horizon = 300;
    const auto r = core::rollout(*system, *artifacts.robust_student, s0,
                                 nullptr, rng, rollout_config);
    safe += r.safe;
  }
  std::printf("simulated %d initial states inside XI: %d safe\n", simulated,
              safe);
  return safe == simulated ? 0 : 1;
}
