# Empty dependencies file for test_finite_weighted.
# This may be replaced when dependencies are built.
