file(REMOVE_RECURSE
  "CMakeFiles/test_finite_weighted.dir/tests/test_finite_weighted.cpp.o"
  "CMakeFiles/test_finite_weighted.dir/tests/test_finite_weighted.cpp.o.d"
  "test_finite_weighted"
  "test_finite_weighted.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_finite_weighted.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
