file(REMOVE_RECURSE
  "CMakeFiles/example_custom_experts.dir/examples/custom_experts.cpp.o"
  "CMakeFiles/example_custom_experts.dir/examples/custom_experts.cpp.o.d"
  "example_custom_experts"
  "example_custom_experts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_custom_experts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
