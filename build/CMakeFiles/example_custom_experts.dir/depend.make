# Empty dependencies file for example_custom_experts.
# This may be replaced when dependencies are built.
