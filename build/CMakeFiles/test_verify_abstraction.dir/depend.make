# Empty dependencies file for test_verify_abstraction.
# This may be replaced when dependencies are built.
