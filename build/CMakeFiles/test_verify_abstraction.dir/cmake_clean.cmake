file(REMOVE_RECURSE
  "CMakeFiles/test_verify_abstraction.dir/tests/test_verify_abstraction.cpp.o"
  "CMakeFiles/test_verify_abstraction.dir/tests/test_verify_abstraction.cpp.o.d"
  "test_verify_abstraction"
  "test_verify_abstraction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_verify_abstraction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
