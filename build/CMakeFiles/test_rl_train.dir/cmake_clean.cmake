file(REMOVE_RECURSE
  "CMakeFiles/test_rl_train.dir/tests/test_rl_train.cpp.o"
  "CMakeFiles/test_rl_train.dir/tests/test_rl_train.cpp.o.d"
  "test_rl_train"
  "test_rl_train.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rl_train.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
