# Empty dependencies file for test_rl_train.
# This may be replaced when dependencies are built.
