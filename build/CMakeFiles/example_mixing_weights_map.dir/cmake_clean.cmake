file(REMOVE_RECURSE
  "CMakeFiles/example_mixing_weights_map.dir/examples/mixing_weights_map.cpp.o"
  "CMakeFiles/example_mixing_weights_map.dir/examples/mixing_weights_map.cpp.o.d"
  "example_mixing_weights_map"
  "example_mixing_weights_map.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_mixing_weights_map.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
