# Empty dependencies file for example_mixing_weights_map.
# This may be replaced when dependencies are built.
