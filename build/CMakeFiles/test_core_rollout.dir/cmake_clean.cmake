file(REMOVE_RECURSE
  "CMakeFiles/test_core_rollout.dir/tests/test_core_rollout.cpp.o"
  "CMakeFiles/test_core_rollout.dir/tests/test_core_rollout.cpp.o.d"
  "test_core_rollout"
  "test_core_rollout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_rollout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
