# Empty dependencies file for test_core_rollout.
# This may be replaced when dependencies are built.
