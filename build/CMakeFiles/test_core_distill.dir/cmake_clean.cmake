file(REMOVE_RECURSE
  "CMakeFiles/test_core_distill.dir/tests/test_core_distill.cpp.o"
  "CMakeFiles/test_core_distill.dir/tests/test_core_distill.cpp.o.d"
  "test_core_distill"
  "test_core_distill.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_distill.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
