# Empty dependencies file for test_core_distill.
# This may be replaced when dependencies are built.
