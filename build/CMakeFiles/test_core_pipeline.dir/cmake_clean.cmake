file(REMOVE_RECURSE
  "CMakeFiles/test_core_pipeline.dir/tests/test_core_pipeline.cpp.o"
  "CMakeFiles/test_core_pipeline.dir/tests/test_core_pipeline.cpp.o.d"
  "test_core_pipeline"
  "test_core_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
