file(REMOVE_RECURSE
  "CMakeFiles/test_verify_invariant.dir/tests/test_verify_invariant.cpp.o"
  "CMakeFiles/test_verify_invariant.dir/tests/test_verify_invariant.cpp.o.d"
  "test_verify_invariant"
  "test_verify_invariant.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_verify_invariant.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
