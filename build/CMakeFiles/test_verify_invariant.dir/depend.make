# Empty dependencies file for test_verify_invariant.
# This may be replaced when dependencies are built.
