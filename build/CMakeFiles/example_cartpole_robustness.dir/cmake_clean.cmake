file(REMOVE_RECURSE
  "CMakeFiles/example_cartpole_robustness.dir/examples/cartpole_robustness.cpp.o"
  "CMakeFiles/example_cartpole_robustness.dir/examples/cartpole_robustness.cpp.o.d"
  "example_cartpole_robustness"
  "example_cartpole_robustness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_cartpole_robustness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
