# Empty dependencies file for example_cartpole_robustness.
# This may be replaced when dependencies are built.
