# Empty dependencies file for bench_ablation_projection.
# This may be replaced when dependencies are built.
