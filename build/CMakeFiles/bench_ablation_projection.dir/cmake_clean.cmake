file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_projection.dir/bench/bench_ablation_projection.cpp.o"
  "CMakeFiles/bench_ablation_projection.dir/bench/bench_ablation_projection.cpp.o.d"
  "bench_ablation_projection"
  "bench_ablation_projection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_projection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
