file(REMOVE_RECURSE
  "CMakeFiles/example_threed_reachability.dir/examples/threed_reachability.cpp.o"
  "CMakeFiles/example_threed_reachability.dir/examples/threed_reachability.cpp.o.d"
  "example_threed_reachability"
  "example_threed_reachability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_threed_reachability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
