# Empty dependencies file for example_threed_reachability.
# This may be replaced when dependencies are built.
