file(REMOVE_RECURSE
  "libcocktail_bench_common.a"
)
