file(REMOVE_RECURSE
  "CMakeFiles/cocktail_bench_common.dir/bench/bench_common.cpp.o"
  "CMakeFiles/cocktail_bench_common.dir/bench/bench_common.cpp.o.d"
  "libcocktail_bench_common.a"
  "libcocktail_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cocktail_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
