# Empty dependencies file for cocktail_bench_common.
# This may be replaced when dependencies are built.
