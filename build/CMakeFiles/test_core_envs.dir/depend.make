# Empty dependencies file for test_core_envs.
# This may be replaced when dependencies are built.
