file(REMOVE_RECURSE
  "CMakeFiles/test_core_envs.dir/tests/test_core_envs.cpp.o"
  "CMakeFiles/test_core_envs.dir/tests/test_core_envs.cpp.o.d"
  "test_core_envs"
  "test_core_envs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_envs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
