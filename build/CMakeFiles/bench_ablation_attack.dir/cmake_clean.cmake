file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_attack.dir/bench/bench_ablation_attack.cpp.o"
  "CMakeFiles/bench_ablation_attack.dir/bench/bench_ablation_attack.cpp.o.d"
  "bench_ablation_attack"
  "bench_ablation_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
