file(REMOVE_RECURSE
  "CMakeFiles/example_oscillator_cocktail.dir/examples/oscillator_cocktail.cpp.o"
  "CMakeFiles/example_oscillator_cocktail.dir/examples/oscillator_cocktail.cpp.o.d"
  "example_oscillator_cocktail"
  "example_oscillator_cocktail.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_oscillator_cocktail.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
