# Empty dependencies file for example_oscillator_cocktail.
# This may be replaced when dependencies are built.
