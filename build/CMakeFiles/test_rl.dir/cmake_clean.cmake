file(REMOVE_RECURSE
  "CMakeFiles/test_rl.dir/tests/test_rl.cpp.o"
  "CMakeFiles/test_rl.dir/tests/test_rl.cpp.o.d"
  "test_rl"
  "test_rl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
