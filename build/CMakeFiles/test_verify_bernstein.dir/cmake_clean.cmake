file(REMOVE_RECURSE
  "CMakeFiles/test_verify_bernstein.dir/tests/test_verify_bernstein.cpp.o"
  "CMakeFiles/test_verify_bernstein.dir/tests/test_verify_bernstein.cpp.o.d"
  "test_verify_bernstein"
  "test_verify_bernstein.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_verify_bernstein.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
