# Empty dependencies file for test_verify_bernstein.
# This may be replaced when dependencies are built.
