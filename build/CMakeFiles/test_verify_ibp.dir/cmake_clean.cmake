file(REMOVE_RECURSE
  "CMakeFiles/test_verify_ibp.dir/tests/test_verify_ibp.cpp.o"
  "CMakeFiles/test_verify_ibp.dir/tests/test_verify_ibp.cpp.o.d"
  "test_verify_ibp"
  "test_verify_ibp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_verify_ibp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
