# Empty dependencies file for test_verify_ibp.
# This may be replaced when dependencies are built.
