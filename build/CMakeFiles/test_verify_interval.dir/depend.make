# Empty dependencies file for test_verify_interval.
# This may be replaced when dependencies are built.
