file(REMOVE_RECURSE
  "CMakeFiles/test_verify_interval.dir/tests/test_verify_interval.cpp.o"
  "CMakeFiles/test_verify_interval.dir/tests/test_verify_interval.cpp.o.d"
  "test_verify_interval"
  "test_verify_interval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_verify_interval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
