file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_p.dir/bench/bench_ablation_p.cpp.o"
  "CMakeFiles/bench_ablation_p.dir/bench/bench_ablation_p.cpp.o.d"
  "bench_ablation_p"
  "bench_ablation_p.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_p.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
