# Empty dependencies file for bench_ablation_p.
# This may be replaced when dependencies are built.
