file(REMOVE_RECURSE
  "CMakeFiles/test_verify_reach.dir/tests/test_verify_reach.cpp.o"
  "CMakeFiles/test_verify_reach.dir/tests/test_verify_reach.cpp.o.d"
  "test_verify_reach"
  "test_verify_reach.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_verify_reach.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
