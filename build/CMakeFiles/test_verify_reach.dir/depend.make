# Empty dependencies file for test_verify_reach.
# This may be replaced when dependencies are built.
