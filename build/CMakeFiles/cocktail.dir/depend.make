# Empty dependencies file for cocktail.
# This may be replaced when dependencies are built.
