file(REMOVE_RECURSE
  "libcocktail.a"
)
