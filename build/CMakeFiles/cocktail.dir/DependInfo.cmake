
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/attack/fgsm.cpp" "CMakeFiles/cocktail.dir/src/attack/fgsm.cpp.o" "gcc" "CMakeFiles/cocktail.dir/src/attack/fgsm.cpp.o.d"
  "/root/repo/src/attack/perturbation.cpp" "CMakeFiles/cocktail.dir/src/attack/perturbation.cpp.o" "gcc" "CMakeFiles/cocktail.dir/src/attack/perturbation.cpp.o.d"
  "/root/repo/src/attack/pgd.cpp" "CMakeFiles/cocktail.dir/src/attack/pgd.cpp.o" "gcc" "CMakeFiles/cocktail.dir/src/attack/pgd.cpp.o.d"
  "/root/repo/src/control/controller.cpp" "CMakeFiles/cocktail.dir/src/control/controller.cpp.o" "gcc" "CMakeFiles/cocktail.dir/src/control/controller.cpp.o.d"
  "/root/repo/src/control/finite_weighted_controller.cpp" "CMakeFiles/cocktail.dir/src/control/finite_weighted_controller.cpp.o" "gcc" "CMakeFiles/cocktail.dir/src/control/finite_weighted_controller.cpp.o.d"
  "/root/repo/src/control/lqr_controller.cpp" "CMakeFiles/cocktail.dir/src/control/lqr_controller.cpp.o" "gcc" "CMakeFiles/cocktail.dir/src/control/lqr_controller.cpp.o.d"
  "/root/repo/src/control/mixed_controller.cpp" "CMakeFiles/cocktail.dir/src/control/mixed_controller.cpp.o" "gcc" "CMakeFiles/cocktail.dir/src/control/mixed_controller.cpp.o.d"
  "/root/repo/src/control/mpc_controller.cpp" "CMakeFiles/cocktail.dir/src/control/mpc_controller.cpp.o" "gcc" "CMakeFiles/cocktail.dir/src/control/mpc_controller.cpp.o.d"
  "/root/repo/src/control/nn_controller.cpp" "CMakeFiles/cocktail.dir/src/control/nn_controller.cpp.o" "gcc" "CMakeFiles/cocktail.dir/src/control/nn_controller.cpp.o.d"
  "/root/repo/src/control/polynomial_controller.cpp" "CMakeFiles/cocktail.dir/src/control/polynomial_controller.cpp.o" "gcc" "CMakeFiles/cocktail.dir/src/control/polynomial_controller.cpp.o.d"
  "/root/repo/src/control/switched_controller.cpp" "CMakeFiles/cocktail.dir/src/control/switched_controller.cpp.o" "gcc" "CMakeFiles/cocktail.dir/src/control/switched_controller.cpp.o.d"
  "/root/repo/src/core/distiller.cpp" "CMakeFiles/cocktail.dir/src/core/distiller.cpp.o" "gcc" "CMakeFiles/cocktail.dir/src/core/distiller.cpp.o.d"
  "/root/repo/src/core/envs.cpp" "CMakeFiles/cocktail.dir/src/core/envs.cpp.o" "gcc" "CMakeFiles/cocktail.dir/src/core/envs.cpp.o.d"
  "/root/repo/src/core/expert_trainer.cpp" "CMakeFiles/cocktail.dir/src/core/expert_trainer.cpp.o" "gcc" "CMakeFiles/cocktail.dir/src/core/expert_trainer.cpp.o.d"
  "/root/repo/src/core/metrics.cpp" "CMakeFiles/cocktail.dir/src/core/metrics.cpp.o" "gcc" "CMakeFiles/cocktail.dir/src/core/metrics.cpp.o.d"
  "/root/repo/src/core/mixing.cpp" "CMakeFiles/cocktail.dir/src/core/mixing.cpp.o" "gcc" "CMakeFiles/cocktail.dir/src/core/mixing.cpp.o.d"
  "/root/repo/src/core/pipeline.cpp" "CMakeFiles/cocktail.dir/src/core/pipeline.cpp.o" "gcc" "CMakeFiles/cocktail.dir/src/core/pipeline.cpp.o.d"
  "/root/repo/src/core/rollout.cpp" "CMakeFiles/cocktail.dir/src/core/rollout.cpp.o" "gcc" "CMakeFiles/cocktail.dir/src/core/rollout.cpp.o.d"
  "/root/repo/src/core/stats.cpp" "CMakeFiles/cocktail.dir/src/core/stats.cpp.o" "gcc" "CMakeFiles/cocktail.dir/src/core/stats.cpp.o.d"
  "/root/repo/src/la/matrix.cpp" "CMakeFiles/cocktail.dir/src/la/matrix.cpp.o" "gcc" "CMakeFiles/cocktail.dir/src/la/matrix.cpp.o.d"
  "/root/repo/src/la/solve.cpp" "CMakeFiles/cocktail.dir/src/la/solve.cpp.o" "gcc" "CMakeFiles/cocktail.dir/src/la/solve.cpp.o.d"
  "/root/repo/src/la/vec.cpp" "CMakeFiles/cocktail.dir/src/la/vec.cpp.o" "gcc" "CMakeFiles/cocktail.dir/src/la/vec.cpp.o.d"
  "/root/repo/src/nn/activation.cpp" "CMakeFiles/cocktail.dir/src/nn/activation.cpp.o" "gcc" "CMakeFiles/cocktail.dir/src/nn/activation.cpp.o.d"
  "/root/repo/src/nn/loss.cpp" "CMakeFiles/cocktail.dir/src/nn/loss.cpp.o" "gcc" "CMakeFiles/cocktail.dir/src/nn/loss.cpp.o.d"
  "/root/repo/src/nn/mlp.cpp" "CMakeFiles/cocktail.dir/src/nn/mlp.cpp.o" "gcc" "CMakeFiles/cocktail.dir/src/nn/mlp.cpp.o.d"
  "/root/repo/src/nn/optimizer.cpp" "CMakeFiles/cocktail.dir/src/nn/optimizer.cpp.o" "gcc" "CMakeFiles/cocktail.dir/src/nn/optimizer.cpp.o.d"
  "/root/repo/src/rl/categorical_policy.cpp" "CMakeFiles/cocktail.dir/src/rl/categorical_policy.cpp.o" "gcc" "CMakeFiles/cocktail.dir/src/rl/categorical_policy.cpp.o.d"
  "/root/repo/src/rl/ddpg.cpp" "CMakeFiles/cocktail.dir/src/rl/ddpg.cpp.o" "gcc" "CMakeFiles/cocktail.dir/src/rl/ddpg.cpp.o.d"
  "/root/repo/src/rl/gae.cpp" "CMakeFiles/cocktail.dir/src/rl/gae.cpp.o" "gcc" "CMakeFiles/cocktail.dir/src/rl/gae.cpp.o.d"
  "/root/repo/src/rl/gaussian_policy.cpp" "CMakeFiles/cocktail.dir/src/rl/gaussian_policy.cpp.o" "gcc" "CMakeFiles/cocktail.dir/src/rl/gaussian_policy.cpp.o.d"
  "/root/repo/src/rl/noise.cpp" "CMakeFiles/cocktail.dir/src/rl/noise.cpp.o" "gcc" "CMakeFiles/cocktail.dir/src/rl/noise.cpp.o.d"
  "/root/repo/src/rl/ppo.cpp" "CMakeFiles/cocktail.dir/src/rl/ppo.cpp.o" "gcc" "CMakeFiles/cocktail.dir/src/rl/ppo.cpp.o.d"
  "/root/repo/src/rl/replay_buffer.cpp" "CMakeFiles/cocktail.dir/src/rl/replay_buffer.cpp.o" "gcc" "CMakeFiles/cocktail.dir/src/rl/replay_buffer.cpp.o.d"
  "/root/repo/src/sys/cartpole.cpp" "CMakeFiles/cocktail.dir/src/sys/cartpole.cpp.o" "gcc" "CMakeFiles/cocktail.dir/src/sys/cartpole.cpp.o.d"
  "/root/repo/src/sys/registry.cpp" "CMakeFiles/cocktail.dir/src/sys/registry.cpp.o" "gcc" "CMakeFiles/cocktail.dir/src/sys/registry.cpp.o.d"
  "/root/repo/src/sys/system.cpp" "CMakeFiles/cocktail.dir/src/sys/system.cpp.o" "gcc" "CMakeFiles/cocktail.dir/src/sys/system.cpp.o.d"
  "/root/repo/src/sys/threed.cpp" "CMakeFiles/cocktail.dir/src/sys/threed.cpp.o" "gcc" "CMakeFiles/cocktail.dir/src/sys/threed.cpp.o.d"
  "/root/repo/src/sys/vanderpol.cpp" "CMakeFiles/cocktail.dir/src/sys/vanderpol.cpp.o" "gcc" "CMakeFiles/cocktail.dir/src/sys/vanderpol.cpp.o.d"
  "/root/repo/src/util/csv.cpp" "CMakeFiles/cocktail.dir/src/util/csv.cpp.o" "gcc" "CMakeFiles/cocktail.dir/src/util/csv.cpp.o.d"
  "/root/repo/src/util/logging.cpp" "CMakeFiles/cocktail.dir/src/util/logging.cpp.o" "gcc" "CMakeFiles/cocktail.dir/src/util/logging.cpp.o.d"
  "/root/repo/src/util/paths.cpp" "CMakeFiles/cocktail.dir/src/util/paths.cpp.o" "gcc" "CMakeFiles/cocktail.dir/src/util/paths.cpp.o.d"
  "/root/repo/src/util/rng.cpp" "CMakeFiles/cocktail.dir/src/util/rng.cpp.o" "gcc" "CMakeFiles/cocktail.dir/src/util/rng.cpp.o.d"
  "/root/repo/src/util/string_util.cpp" "CMakeFiles/cocktail.dir/src/util/string_util.cpp.o" "gcc" "CMakeFiles/cocktail.dir/src/util/string_util.cpp.o.d"
  "/root/repo/src/util/thread_pool.cpp" "CMakeFiles/cocktail.dir/src/util/thread_pool.cpp.o" "gcc" "CMakeFiles/cocktail.dir/src/util/thread_pool.cpp.o.d"
  "/root/repo/src/verify/bernstein.cpp" "CMakeFiles/cocktail.dir/src/verify/bernstein.cpp.o" "gcc" "CMakeFiles/cocktail.dir/src/verify/bernstein.cpp.o.d"
  "/root/repo/src/verify/ibp.cpp" "CMakeFiles/cocktail.dir/src/verify/ibp.cpp.o" "gcc" "CMakeFiles/cocktail.dir/src/verify/ibp.cpp.o.d"
  "/root/repo/src/verify/interval.cpp" "CMakeFiles/cocktail.dir/src/verify/interval.cpp.o" "gcc" "CMakeFiles/cocktail.dir/src/verify/interval.cpp.o.d"
  "/root/repo/src/verify/interval_dynamics.cpp" "CMakeFiles/cocktail.dir/src/verify/interval_dynamics.cpp.o" "gcc" "CMakeFiles/cocktail.dir/src/verify/interval_dynamics.cpp.o.d"
  "/root/repo/src/verify/invariant.cpp" "CMakeFiles/cocktail.dir/src/verify/invariant.cpp.o" "gcc" "CMakeFiles/cocktail.dir/src/verify/invariant.cpp.o.d"
  "/root/repo/src/verify/nn_abstraction.cpp" "CMakeFiles/cocktail.dir/src/verify/nn_abstraction.cpp.o" "gcc" "CMakeFiles/cocktail.dir/src/verify/nn_abstraction.cpp.o.d"
  "/root/repo/src/verify/reach.cpp" "CMakeFiles/cocktail.dir/src/verify/reach.cpp.o" "gcc" "CMakeFiles/cocktail.dir/src/verify/reach.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
