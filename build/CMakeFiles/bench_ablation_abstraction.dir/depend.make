# Empty dependencies file for bench_ablation_abstraction.
# This may be replaced when dependencies are built.
