file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_abstraction.dir/bench/bench_ablation_abstraction.cpp.o"
  "CMakeFiles/bench_ablation_abstraction.dir/bench/bench_ablation_abstraction.cpp.o.d"
  "bench_ablation_abstraction"
  "bench_ablation_abstraction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_abstraction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
