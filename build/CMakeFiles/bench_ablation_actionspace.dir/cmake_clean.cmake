file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_actionspace.dir/bench/bench_ablation_actionspace.cpp.o"
  "CMakeFiles/bench_ablation_actionspace.dir/bench/bench_ablation_actionspace.cpp.o.d"
  "bench_ablation_actionspace"
  "bench_ablation_actionspace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_actionspace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
