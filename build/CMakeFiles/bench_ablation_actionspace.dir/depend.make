# Empty dependencies file for bench_ablation_actionspace.
# This may be replaced when dependencies are built.
