# Empty dependencies file for test_rollout_batch.
# This may be replaced when dependencies are built.
