file(REMOVE_RECURSE
  "CMakeFiles/test_rollout_batch.dir/tests/test_rollout_batch.cpp.o"
  "CMakeFiles/test_rollout_batch.dir/tests/test_rollout_batch.cpp.o.d"
  "test_rollout_batch"
  "test_rollout_batch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rollout_batch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
