#!/usr/bin/env python3
"""Numerical-soundness lint: static guard for the certificate contract.

The serving runtime's value proposition is that every answer is either
produced inside a *certified* region or routed to a trusted fallback — and a
certificate is only as trustworthy as the float comparisons that consult it.
A NaN-blind `<` chain silently certifies a corrupted observation; an interval
endpoint computed with round-to-nearest arithmetic can shrink an enclosure by
one ulp and void the containment proof.  This tool is the sibling of
tools/lint_determinism.py for the numerical/API contracts: it scans C++
sources for the patterns that historically break certificate soundness.
Like its sibling it is a heuristic reviewer, not a compiler: findings point
at code that needs either a rewrite onto the sanctioned helpers or an
explicit, justified waiver.

Rules
-----
raw-endpoint-arith      (src/verify only)  Interval/box constructions
                        (`return {...}` / `return Interval(...)` / brace
                        initialisations) whose endpoints are computed with
                        raw `+ - * /` arithmetic on `lo_`/`hi_`/`.lo()`/
                        `.hi()` values.  Endpoint arithmetic must flow
                        through verify::outward() so round-to-nearest error
                        can never shrink an enclosure.  Exact operations
                        (negation, min/max, clamp, copies) are not flagged.
nan-blind-compare       (verify/serve/sys)  A certificate-decision predicate
                        (function named *certified*/*contains*/*inside*/
                        *intersects*/*valid*/*member*/*is_safe* returning
                        bool) that compares doubles without any
                        std::isfinite/std::isnan guard.  `a < lo || a > hi`
                        style exclusion chains are NaN-blind: every
                        comparison is false for NaN, so the garbage state
                        falls through to "certified".  Either guard with
                        std::isfinite or write the comparison in the
                        accepting direction (`a >= lo && a <= hi`, where NaN
                        fails closed) and waive with the justification.
narrowing-bound         `float` anywhere in the library: bound-carrying
                        values are double end to end; a narrowing
                        conversion quietly discards the outward rounding
                        that makes enclosures sound.
magic-tolerance         (verify/serve)  A bare scientific-notation literal
                        with a negative exponent (1e-12, 2.5e-9, ...)
                        outside verify/tolerances.h.  Tolerances are policy:
                        they live in the named-constant header where their
                        magnitude is justified once, not sprinkled inline.
missing-nodiscard       (headers)  A function declaration returning `bool`,
                        `std::future<...>`, or a result struct (type named
                        *Result/*Counters/*Outcome/*Report/*Stats) without
                        [[nodiscard]].  A dropped status bool or future is
                        a swallowed failure on the serving path.
implicit-single-arg-ctor (headers)  A constructor callable with a single
                        argument that is not marked `explicit` (copy/move
                        constructors and allowlisted intentional implicit
                        lifts exempt — currently verify::Interval's scalar
                        lift, which templated dynamics rely on).

Waivers
-------
A finding is suppressed by a justified waiver on the same line or the line
directly above:

    // SNDLINT-ALLOW(<rule>): <reason>

The reason is mandatory; an empty reason or an unknown rule name is itself
an error.  Waivers that no longer suppress anything are reported as stale
(warning only, so heuristic tweaks do not break the build).

Usage
-----
    lint_soundness.py [--self-test] [--list-rules] [paths...]  (default: src)

Exit status 0 = clean, 1 = unsuppressed findings or malformed waivers,
2 = usage/self-test failure.
"""

from __future__ import annotations

import os
import re
import sys
from dataclasses import dataclass

RULES = {
    "raw-endpoint-arith": "interval endpoint computed with raw arithmetic; "
    "route the bounds through verify::outward() so rounding cannot shrink "
    "the enclosure",
    "nan-blind-compare": "certificate predicate compares doubles with no "
    "isfinite guard; NaN falls through exclusion-style chains as "
    "'certified' — guard or compare in the accepting direction",
    "narrowing-bound": "float narrows a bound-carrying double and discards "
    "the outward rounding; bounds are double end to end",
    "magic-tolerance": "bare numeric tolerance; name it in "
    "src/verify/tolerances.h where its magnitude is justified",
    "missing-nodiscard": "status/future/result return can be silently "
    "dropped; declare the function [[nodiscard]]",
    "implicit-single-arg-ctor": "single-argument constructor invites silent "
    "conversions; mark it explicit (or allowlist an intentional lift)",
}

# The one sanctioned home for numeric tolerance constants.
TOLERANCE_HEADER = "verify/tolerances.h"

# Intentional implicit single-argument constructors: class -> why.
IMPLICIT_CTOR_ALLOWLIST = {
    # Scalar lifting double -> Interval is the ergonomic contract the
    # scalar-templated dynamics (src/sys/*.h instantiated on Interval)
    # depend on; making it explicit would break `x * 2.0 + offset` flows.
    "Interval",
}

CPP_SUFFIXES = (".cpp", ".h", ".hpp", ".cc", ".cxx")
HEADER_SUFFIXES = (".h", ".hpp")

ALLOW_RE = re.compile(r"SNDLINT-ALLOW\(([^)]*)\)\s*(?::\s*(.*?))?\s*(?:\*/.*)?$")

# Accessors/members that carry interval bounds.
ENDPOINT = (r"(?:lo_(?!\w)|hi_(?!\w)|\.lo\(\)|\.hi\(\)|\.lo\[[^\]]*\]|"
            r"\.hi\[[^\]]*\])")
# Endpoint token immediately combined with a binary arithmetic operator.
ENDPOINT_OP_RE = re.compile(ENDPOINT + r"\s*[-+*/]" + r"(?![-+*/=>])")
OP_ENDPOINT_RE = re.compile(r"([-+*/])\s*" + ENDPOINT)

PREDICATE_NAME_RE = re.compile(
    r"certified|contains|intersects|inside|valid|member|is_safe")
# Relational comparison, excluding <<, >>, ->, <=> and template-ish `<>`.
COMPARISON_RE = re.compile(r"(?<![<>\-=&|])[<>]=?(?![<>=])")

RESULT_STRUCT = (r"(?:[A-Za-z_]\w*::)*"
                 r"[A-Za-z_]\w*(?:Result|Counters|Outcome|Report|Stats)")
NODISCARD_DECL_RE = re.compile(
    r"^(?P<lead>\s*)(?P<quals>(?:friend\s+|virtual\s+|static\s+|constexpr\s+|"
    r"inline\s+)*)"
    r"(?P<ret>bool|std::future\s*<[^;{}]*>|" + RESULT_STRUCT + r")"
    r"\s+(?P<name>[A-Za-z_]\w*)\s*\(",
    re.MULTILINE)

CLASS_RE = re.compile(r"\b(?:class|struct)\s+([A-Za-z_]\w*)\s*(?:final\s*)?"
                      r"(?::[^{;]*)?\{")


@dataclass
class Finding:
    path: str
    line: int  # 1-based
    rule: str
    detail: str


@dataclass
class Allow:
    line: int
    rule: str
    reason: str
    used: bool = False


def strip_comments_and_strings(text: str) -> str:
    """Blanks comments and string/char literals, preserving line structure."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            while i < n and text[i] != "\n":
                i += 1
        elif c == "/" and nxt == "*":
            i += 2
            while i + 1 < n and not (text[i] == "*" and text[i + 1] == "/"):
                if text[i] == "\n":
                    out.append("\n")
                i += 1
            i += 2
        elif c in "\"'":
            quote = c
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\":
                    i += 1
                i += 1
            i += 1
            out.append("%s%s" % (quote, quote))
        else:
            out.append(c)
            i += 1
    return "".join(out)


def collect_allows(lines: list[str]) -> tuple[dict[int, Allow], list[Finding]]:
    """Parses SNDLINT-ALLOW waivers (before comment stripping)."""
    allows: dict[int, Allow] = {}
    errors: list[Finding] = []
    for lineno, line in enumerate(lines, start=1):
        if "SNDLINT-ALLOW" not in line:
            continue
        match = ALLOW_RE.search(line)
        if not match:
            errors.append(Finding("", lineno, "malformed-allow",
                                  "SNDLINT-ALLOW must look like "
                                  "// SNDLINT-ALLOW(<rule>): <reason>"))
            continue
        rule, reason = match.group(1).strip(), (match.group(2) or "").strip()
        if rule not in RULES:
            errors.append(Finding("", lineno, "malformed-allow",
                                  f"unknown rule '{rule}' in SNDLINT-ALLOW "
                                  f"(known: {', '.join(sorted(RULES))})"))
            continue
        if not reason:
            errors.append(Finding("", lineno, "malformed-allow",
                                  f"SNDLINT-ALLOW({rule}) carries no reason; "
                                  "a justification is mandatory"))
            continue
        allows[lineno] = Allow(lineno, rule, reason)
    return allows, errors


def line_of(offsets: list[int], pos: int) -> int:
    """1-based line number of character offset `pos` (offsets sorted)."""
    lo, hi = 0, len(offsets) - 1
    while lo < hi:
        mid = (lo + hi + 1) // 2
        if offsets[mid] <= pos:
            lo = mid
        else:
            hi = mid - 1
    return lo + 1


def match_forward(text: str, start: int, open_ch: str, close_ch: str) -> int:
    """Index just past the matching close for the opener at text[start]."""
    depth = 0
    for i in range(start, len(text)):
        if text[i] == open_ch:
            depth += 1
        elif text[i] == close_ch:
            depth -= 1
            if depth == 0:
                return i + 1
    return len(text)


# --- raw-endpoint-arith -----------------------------------------------------

# Interval/box construction sites whose contents carry bounds: returned
# brace/ctor expressions and brace initialisations of elements.
CONSTRUCTION_RE = re.compile(
    r"return\s*(?:Interval\s*)?[({]|=\s*(?:Interval\s*)?\{")


def endpoint_arith_positions(extent: str) -> list[int]:
    """Offsets of raw endpoint arithmetic inside a construction extent."""
    hits = []
    for m in ENDPOINT_OP_RE.finditer(extent):
        hits.append(m.start())
    for m in OP_ENDPOINT_RE.finditer(extent):
        # Skip unary operators (negation, dereference, address-of):
        # operator preceded (ignoring spaces) by an opener, comma, another
        # operator, or nothing.
        j = m.start(1) - 1
        while j >= 0 and extent[j] in " \t\n":
            j -= 1
        if m.group(1) in "-*+" and (j < 0 or extent[j] in "{(,=<>+-*/&|"):
            continue
        hits.append(m.start())
    return sorted(set(hits))


def scan_endpoint_arith(path: str, text: str, offsets: list[int],
                        findings: list[Finding]) -> None:
    for m in CONSTRUCTION_RE.finditer(text):
        open_pos = m.end() - 1
        open_ch = text[open_pos]
        close_ch = "}" if open_ch == "{" else ")"
        end = match_forward(text, open_pos, open_ch, close_ch)
        extent = text[open_pos:end]
        for rel in endpoint_arith_positions(extent):
            findings.append(Finding(
                path, line_of(offsets, open_pos + rel), "raw-endpoint-arith",
                "raw lo/hi arithmetic escapes into a constructed bound; "
                "wrap the endpoints in verify::outward()"))


# --- nan-blind-compare ------------------------------------------------------

PREDICATE_DEF_RE = re.compile(
    r"\bbool\s+(?:[A-Za-z_]\w*::)*(?P<name>[A-Za-z_]\w*)\s*"
    r"\((?P<params>[^;{}]*)\)\s*(?:const\s*)?(?:noexcept\s*)?(?:override\s*)?"
    r"\{")


def scan_nan_blind(path: str, text: str, offsets: list[int],
                   findings: list[Finding]) -> None:
    for m in PREDICATE_DEF_RE.finditer(text):
        if not PREDICATE_NAME_RE.search(m.group("name")):
            continue
        body_start = m.end() - 1
        body_end = match_forward(text, body_start, "{", "}")
        body = text[body_start:body_end]
        # Loop-counter comparisons in for-headers are not bound decisions;
        # blank them so `for (i = 0; i < n; ++i)` alone never flags.
        chars = list(body)
        for fm in re.finditer(r"\bfor\s*\(", body):
            header_end = match_forward(body, fm.end() - 1, "(", ")")
            for k in range(fm.start(), header_end):
                if chars[k] != "\n":
                    chars[k] = " "
        body = "".join(chars)
        # Blank template-ids (`static_cast<int>`, `std::vector<...>`): their
        # angle brackets are not comparisons.  Two passes for one nesting
        # level.
        for _ in range(2):
            body = re.sub(r"(?<=\w)<[^<>=;()&|]*>", lambda mm: " " * len(mm.group(0)), body)
        if not COMPARISON_RE.search(body):
            continue
        if re.search(r"\bisfinite\b|\bisnan\b", body):
            continue
        findings.append(Finding(
            path, line_of(offsets, m.start()), "nan-blind-compare",
            f"certificate predicate '{m.group('name')}' compares with no "
            "isfinite/isnan guard; NaN input may fall through as certified"))


# --- implicit-single-arg-ctor -----------------------------------------------

def split_top_level(params: str) -> list[str]:
    parts, depth, current = [], 0, []
    for ch in params:
        if ch in "<({[":
            depth += 1
        elif ch in ">)}]":
            depth -= 1
        if ch == "," and depth == 0:
            parts.append("".join(current).strip())
            current = []
        else:
            current.append(ch)
    tail = "".join(current).strip()
    if tail:
        parts.append(tail)
    return parts


def scan_implicit_ctors(path: str, text: str, offsets: list[int],
                        findings: list[Finding]) -> None:
    for cm in CLASS_RE.finditer(text):
        name = cm.group(1)
        body_start = cm.end() - 1
        body_end = match_forward(text, body_start, "{", "}")
        body = text[body_start:body_end]
        ctor_re = re.compile(r"^(?P<lead>[ \t]*)(?:constexpr[ \t]+)?" +
                             re.escape(name) + r"\s*\(", re.MULTILINE)
        for m in ctor_re.finditer(body):
            open_pos = body_start + m.end() - 1
            close = match_forward(text, open_pos, "(", ")")
            params = split_top_level(text[open_pos + 1:close - 1])
            if not params or params == ["void"]:
                continue
            first = re.sub(r"\s+", " ", params[0])
            if re.fullmatch(r"(?:const )?" + re.escape(name) + r"\s*&&?(?:\s*\w+)?",
                            first):
                continue  # copy/move constructor
            if len(params) > 1 and not all("=" in p for p in params[1:]):
                continue  # needs two or more arguments
            if name in IMPLICIT_CTOR_ALLOWLIST:
                continue
            findings.append(Finding(
                path, line_of(offsets, body_start + m.start("lead")),
                "implicit-single-arg-ctor",
                f"constructor '{name}({first}{', ...' if len(params) > 1 else ''})' "
                "is callable with one argument but not explicit"))


# --- missing-nodiscard ------------------------------------------------------

def scan_missing_nodiscard(path: str, text: str, lines: list[str],
                           offsets: list[int],
                           findings: list[Finding]) -> None:
    for m in NODISCARD_DECL_RE.finditer(text):
        lineno = line_of(offsets, m.start("ret"))
        before = text[offsets[lineno - 1]:m.start("ret")]
        prev = lines[lineno - 2] if lineno >= 2 else ""
        if "[[nodiscard]]" in before or "[[nodiscard]]" in prev:
            continue
        # `= delete` / `= default` declarations carry no discardable value.
        stmt_end = text.find(";", m.end())
        stmt = text[m.end():stmt_end if stmt_end >= 0 else m.end() + 200]
        if "= delete" in stmt or "= default" in stmt:
            continue
        findings.append(Finding(
            path, lineno, "missing-nodiscard",
            f"'{m.group('name')}' returns {m.group('ret').split('<')[0].strip()} "
            "but is not [[nodiscard]]"))


# --- file scan --------------------------------------------------------------

def scan_file(path: str, rel: str, raw: str) -> tuple[list[Finding], int]:
    lines = raw.splitlines()
    allows, allow_errors = collect_allows(lines)
    for err in allow_errors:
        err.path = path

    text = strip_comments_and_strings(raw)
    offsets = [0]
    for i, ch in enumerate(text):
        if ch == "\n":
            offsets.append(i + 1)

    findings: list[Finding] = []
    rel_posix = rel.replace(os.sep, "/")
    in_verify = "verify/" in rel_posix or rel_posix.startswith("verify")
    in_cert_surface = in_verify or any(
        seg in rel_posix for seg in ("serve/", "sys/"))
    is_header = rel_posix.endswith(HEADER_SUFFIXES)

    if in_verify and not rel_posix.endswith(TOLERANCE_HEADER.split("/")[-1]):
        scan_endpoint_arith(path, text, offsets, findings)

    if in_cert_surface:
        scan_nan_blind(path, text, offsets, findings)
        if not rel_posix.endswith(TOLERANCE_HEADER.split("/")[-1]):
            for m in re.finditer(r"\b\d+(?:\.\d*)?[eE]-\d+\b", text):
                findings.append(Finding(
                    path, line_of(offsets, m.start()), "magic-tolerance",
                    f"bare tolerance literal '{m.group(0)}'"))

    for m in re.finditer(r"\bfloat\b", text):
        findings.append(Finding(
            path, line_of(offsets, m.start()), "narrowing-bound",
            "'float' narrows bound-carrying doubles"))

    if is_header:
        scan_missing_nodiscard(path, text, lines, offsets, findings)
        scan_implicit_ctors(path, text, offsets, findings)

    # Apply waivers: same line or the line directly above the finding.
    unsuppressed: list[Finding] = []
    for finding in findings:
        allow = allows.get(finding.line) or allows.get(finding.line - 1)
        if allow is not None and allow.rule == finding.rule:
            allow.used = True
            continue
        unsuppressed.append(finding)

    stale = 0
    for allow in allows.values():
        if not allow.used:
            print(f"{path}:{allow.line}: warning: stale "
                  f"SNDLINT-ALLOW({allow.rule}) suppresses nothing",
                  file=sys.stderr)
            stale += 1

    return unsuppressed + allow_errors, stale


def lint_paths(paths: list[str]) -> int:
    findings: list[Finding] = []
    files = []
    for root_path in paths:
        if os.path.isfile(root_path):
            files.append((root_path, os.path.basename(root_path)))
            continue
        for dirpath, _, filenames in os.walk(root_path):
            for filename in sorted(filenames):
                if filename.endswith(CPP_SUFFIXES):
                    full = os.path.join(dirpath, filename)
                    files.append((full, os.path.relpath(full, root_path)))
    for full, rel in sorted(files):
        with open(full, encoding="utf-8", errors="replace") as handle:
            raw = handle.read()
        file_findings, _ = scan_file(full, rel, raw)
        findings.extend(file_findings)

    for finding in sorted(findings, key=lambda f: (f.path, f.line)):
        rule_help = RULES.get(finding.rule, "")
        print(f"{finding.path}:{finding.line}: [{finding.rule}] "
              f"{finding.detail}" + (f" — {rule_help}" if rule_help else ""))
    if findings:
        print(f"\nlint_soundness: {len(findings)} finding(s). Fix onto the "
              "sound helpers or add `// SNDLINT-ALLOW(<rule>): <reason>`.")
        return 1
    print(f"lint_soundness: clean ({len(files)} files).")
    return 0


# --- self-test --------------------------------------------------------------

SELF_TEST_CASES = [
    # (name, rel-path, source, expected rule names after waivers)
    ("raw endpoint arithmetic in returned bounds flagged",
     "verify/interval.cpp",
     "Interval Interval::inflate(double r) const {\n"
     "  return {lo_ - r, hi_ + r};\n}\n",
     ["raw-endpoint-arith", "raw-endpoint-arith"]),
    ("outward-routed endpoints are fine",
     "verify/interval.cpp",
     "Interval Interval::inflate(double r) const {\n"
     "  return outward(lo_ - r, hi_ + r);\n}\n",
     []),
    ("exact min/max endpoints are fine",
     "verify/interval.cpp",
     "Interval Interval::hull(const Interval& o) const {\n"
     "  return {std::min(lo_, o.lo_), std::max(hi_, o.hi_)};\n}\n",
     []),
    ("unary negation of endpoints is fine",
     "verify/interval.cpp",
     "Interval Interval::operator-() const { return {-hi_, -lo_}; }\n",
     []),
    ("brace-initialised box slice with endpoint arithmetic flagged",
     "verify/interval.cpp",
     "void f(IBox& sub, const IBox& box, double w, std::size_t k) {\n"
     "  sub[0] = {box[0].lo() + k * w, box[0].lo() + (k + 1) * w};\n}\n",
     ["raw-endpoint-arith", "raw-endpoint-arith"]),
    ("waived box slice is fine",
     "verify/interval.cpp",
     "void f(IBox& sub, const IBox& box, double w, std::size_t k) {\n"
     "  // SNDLINT-ALLOW(raw-endpoint-arith): shared faces; last slice pinned\n"
     "  sub[0] = {box[0].lo() + k * w, box[0].hi()};\n}\n",
     []),
    ("endpoint arithmetic outside verify/ is not in scope",
     "core/metrics.cpp",
     "double f(const Interval& x) { return x.lo() + 1.0; }\n",
     []),
    ("NaN-blind exclusion chain in predicate flagged",
     "serve/safety_monitor.cpp",
     "bool SafetyMonitor::certified(const la::Vec& s) const {\n"
     "  for (std::size_t d = 0; d < s.size(); ++d)\n"
     "    if (s[d] < lo[d] || s[d] > hi[d]) return false;\n"
     "  return true;\n}\n",
     ["nan-blind-compare"]),
    ("isfinite-guarded predicate is fine",
     "serve/safety_monitor.cpp",
     "bool SafetyMonitor::certified(const la::Vec& s) const {\n"
     "  for (std::size_t d = 0; d < s.size(); ++d)\n"
     "    if (!std::isfinite(s[d])) return false;\n"
     "  for (std::size_t d = 0; d < s.size(); ++d)\n"
     "    if (s[d] < lo[d] || s[d] > hi[d]) return false;\n"
     "  return true;\n}\n",
     []),
    ("accepting-direction predicate still needs a waiver",
     "verify/interval.h",
     "class Interval {\n public:\n"
     "  // SNDLINT-ALLOW(nan-blind-compare): accepting direction, NaN fails\n"
     "  [[nodiscard]] bool contains(double x) const noexcept {\n"
     "    return lo_ <= x && x <= hi_;\n  }\n"
     " private:\n  double lo_ = 0.0;\n  double hi_ = 0.0;\n};\n",
     []),
    ("loop-counter comparisons alone do not flag a predicate",
     "verify/interval.cpp",
     "bool box_contains(const IBox& box, const la::Vec& p) {\n"
     "  for (std::size_t i = 0; i < box.size(); ++i)\n"
     "    if (!box[i].contains(p[i])) return false;\n"
     "  return true;\n}\n",
     []),
    ("template angle brackets are not comparisons",
     "verify/invariant.cpp",
     "bool InvariantResult::contains(const la::Vec& p) const {\n"
     "  const int k = static_cast<int>(std::floor(p[0]));\n"
     "  return member[static_cast<std::size_t>(k)] != 0;\n}\n",
     []),
    ("non-predicate comparisons are not in scope",
     "verify/reach.cpp",
     "bool widest(const IBox& b) { return b[0].width() > b[1].width(); }\n",
     []),
    ("float narrows bounds",
     "la/matrix.h",
     "struct M { std::vector<double> d; };\n"
     "static float shrink(double x) { return static_cast<float>(x); }\n",
     ["narrowing-bound", "narrowing-bound"]),
    ("bare tolerance literal flagged in verify",
     "verify/interval.cpp",
     "bool close(double a, double b) { return std::abs(a - b) < 1e-9; }\n",
     ["magic-tolerance"]),
    ("named tolerance from the header is fine",
     "verify/interval.cpp",
     "bool close(double a, double b) {\n"
     "  return std::abs(a - b) < kOutwardEps;\n}\n",
     []),
    ("tolerance literals outside verify/serve are not in scope",
     "nn/optimizer.cpp",
     "constexpr double kAdamEps = 1e-8;\n",
     []),
    ("bool return without nodiscard flagged in header",
     "util/mutex.h",
     "class Mutex {\n public:\n  bool try_lock() { return true; }\n};\n",
     ["missing-nodiscard"]),
    ("nodiscard bool return is fine",
     "util/mutex.h",
     "class Mutex {\n public:\n"
     "  [[nodiscard]] bool try_lock() { return true; }\n};\n",
     []),
    ("future return without nodiscard flagged",
     "serve/controller_server.h",
     "class S {\n public:\n"
     "  std::future<la::Vec> submit(const std::string& n, la::Vec s);\n};\n",
     ["missing-nodiscard"]),
    ("result-struct return without nodiscard flagged",
     "rl/ppo.h",
     "class Trainer {\n public:\n  PpoStats train(Env& env);\n};\n",
     ["missing-nodiscard"]),
    ("bool data member is not a declaration of interest",
     "serve/controller_server.h",
     "struct S {\n  bool stopping_ GUARDED_BY(mutex_) = false;\n"
     "  bool synchronous = false;\n};\n",
     []),
    ("deleted operator returning bool is fine",
     "util/mutex.h",
     "struct S {\n  bool operator()(const S&) const = delete;\n};\n",
     []),
    ("implicit single-arg constructor flagged",
     "control/lqr_controller.h",
     "class LqrController {\n public:\n"
     "  LqrController(la::Matrix gain, std::string label = \"lqr\");\n};\n",
     ["implicit-single-arg-ctor"]),
    ("explicit single-arg constructor is fine",
     "control/lqr_controller.h",
     "class LqrController {\n public:\n"
     "  explicit LqrController(la::Matrix gain, std::string l = \"lqr\");\n};\n",
     []),
    ("copy and move constructors are fine",
     "util/thread_pool.h",
     "class ThreadPool {\n public:\n"
     "  ThreadPool(const ThreadPool&) = delete;\n"
     "  ThreadPool(ThreadPool&&) = delete;\n};\n",
     []),
    ("two-argument constructor is fine",
     "sys/system.h",
     "struct Box {\n  Box(la::Vec lower, la::Vec upper);\n};\n",
     []),
    ("allowlisted scalar lift is fine",
     "verify/interval.h",
     "class Interval {\n public:\n  constexpr Interval(double point);\n};\n",
     []),
    ("waiver with unknown rule is an error",
     "verify/interval.cpp",
     "// SNDLINT-ALLOW(no-such-rule): because\nint x;\n",
     ["malformed-allow"]),
    ("waiver without reason is an error",
     "util/mutex.h",
     "class M {\n public:\n"
     "  // SNDLINT-ALLOW(missing-nodiscard)\n"
     "  bool try_lock() { return true; }\n};\n",
     ["malformed-allow", "missing-nodiscard"]),
    ("patterns inside comments and strings are ignored",
     "verify/interval.cpp",
     "// return {lo_ - r, hi_ + r}; and 1e-12 and float\n"
     "const char* s = \"float 1e-12\";\n",
     []),
]


def self_test() -> int:
    failures = 0
    for name, rel, source, expected in SELF_TEST_CASES:
        found, _ = scan_file("<self-test>", rel, source)
        got = sorted(f.rule for f in found)
        if got != sorted(expected):
            print(f"self-test FAILED: {name}\n  expected {sorted(expected)}"
                  f"\n  got      {got}", file=sys.stderr)
            failures += 1
    if failures:
        return 2
    print(f"lint_soundness: self-test passed "
          f"({len(SELF_TEST_CASES)} cases).")
    return 0


def main(argv: list[str]) -> int:
    args = argv[1:]
    if "--list-rules" in args:
        for rule, help_text in sorted(RULES.items()):
            print(f"{rule}: {help_text}")
        return 0
    if "--self-test" in args:
        return self_test()
    paths = [a for a in args if not a.startswith("-")] or ["src"]
    return lint_paths(paths)


if __name__ == "__main__":
    sys.exit(main(sys.argv))
