#!/usr/bin/env python3
"""Determinism lint: static guard for the bitwise-determinism contract.

The library promises bitwise-identical results for ANY worker/shard/batch
configuration (README "Determinism"); that contract survives only while every
parallel floating-point reduction goes through the fixed-tree helpers
(util::chunked_reduce / util::chunked_for / nn::ChunkedGradReducer), every
random draw comes from an explicitly seeded util::Rng stream, and no result
depends on unordered-container iteration order or racy atomic FP updates.
This tool scans C++ sources for the patterns that historically break those
guarantees.  It is a heuristic reviewer, not a compiler: findings point at
code that needs either a rewrite onto the sanctioned helpers or an explicit,
justified waiver.

Rules
-----
raw-parallel-dispatch   Direct ThreadPool::parallel_for call outside the
                        substrate (util/thread_pool.*) and the sanctioned
                        reducers.  Such call sites carry the full
                        determinism burden themselves (per-unit RNG streams,
                        disjoint writes, no shared FP accumulation) and must
                        say why they are sound.
fp-accumulate-parallel  Compound assignment (+=, -=, *=, /=) or ++/-- on a
                        variable captured from outside the body of a lambda
                        handed to parallel_for/run_chunks/chunked_for/
                        submit, or run as a std::thread body (the raw
                        dispatch vector of the sharded serving tier: MPMC
                        dispatcher threads draining try_pop loops).  A
                        shared accumulator mutated from parallel bodies is
                        both a data race and a scheduling-dependent FP
                        reduction — MPMC pop order is scheduling-dependent
                        by construction.
rng-source              Nondeterministic randomness: std::random_device,
                        rand()/srand(), <random> engines, or time-derived
                        seeds outside util/rng (the one sanctioned RNG).
unordered-iteration     Iteration over a std::unordered_{map,set} variable.
                        Bucket order is implementation-defined; results fed
                        from such loops are not reproducible.  (Lookups are
                        fine; only iteration is flagged.)
atomic-fp               std::atomic<float/double/...>.  Atomic FP
                        read-modify-write makes the accumulation order equal
                        to the scheduling order.

Waivers
-------
A finding is suppressed by a justified waiver on the same line or the line
directly above:

    // DETLINT-ALLOW(<rule>): <reason>

The reason is mandatory; an empty reason or an unknown rule name is itself
an error.  Waivers that no longer suppress anything are reported as stale
(warning only, so heuristic tweaks do not break the build).

Usage
-----
    lint_determinism.py [--self-test] [paths...]   (default path: src)

Exit status 0 = clean, 1 = unsuppressed findings or malformed waivers,
2 = usage/self-test failure.
"""

from __future__ import annotations

import os
import re
import sys
from dataclasses import dataclass

RULES = {
    "raw-parallel-dispatch": "direct parallel_for outside the deterministic "
    "substrate; use util::chunked_reduce/chunked_for or justify the call",
    "fp-accumulate-parallel": "compound update of a captured variable inside "
    "a parallel body; use util::chunked_reduce / nn::ChunkedGradReducer",
    "rng-source": "nondeterministic randomness source; use util::Rng with a "
    "derived seed (util::derive_seed)",
    "unordered-iteration": "iteration over an unordered container feeds "
    "bucket order into results; iterate a sorted/fixed-order view instead",
    "atomic-fp": "atomic floating-point accumulates in scheduling order; "
    "use util::chunked_reduce",
}

# Files that implement the sanctioned machinery and may use the raw tools.
PARALLEL_SUBSTRATE = ("util/thread_pool.h", "util/thread_pool.cpp",
                      "nn/grad_reduce.h")
RNG_SUBSTRATE = ("util/rng.h", "util/rng.cpp")

CPP_SUFFIXES = (".cpp", ".h", ".hpp", ".cc", ".cxx")

ALLOW_RE = re.compile(r"DETLINT-ALLOW\(([^)]*)\)\s*(?::\s*(.*?))?\s*(?:\*/.*)?$")

# C++ keywords that the declaration heuristic must not mistake for types.
NON_TYPE_KEYWORDS = {
    "return", "if", "while", "for", "else", "case", "throw", "new", "delete",
    "goto", "break", "continue", "do", "switch", "sizeof", "typedef", "using",
    "co_return", "co_await", "co_yield", "not",
}


@dataclass
class Finding:
    path: str
    line: int  # 1-based
    rule: str
    detail: str


@dataclass
class Allow:
    line: int
    rule: str
    reason: str
    used: bool = False


def strip_comments_and_strings(text: str) -> str:
    """Blanks comments and string/char literals, preserving line structure."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            while i < n and text[i] != "\n":
                i += 1
        elif c == "/" and nxt == "*":
            i += 2
            while i + 1 < n and not (text[i] == "*" and text[i + 1] == "/"):
                if text[i] == "\n":
                    out.append("\n")
                i += 1
            i += 2
        elif c in "\"'":
            quote = c
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\":
                    i += 1
                i += 1
            i += 1
            out.append("%s%s" % (quote, quote))
        else:
            out.append(c)
            i += 1
    return "".join(out)


def collect_allows(lines: list[str]) -> tuple[dict[int, Allow], list[Finding]]:
    """Parses DETLINT-ALLOW waivers (before comment stripping)."""
    allows: dict[int, Allow] = {}
    errors: list[Finding] = []
    for lineno, line in enumerate(lines, start=1):
        if "DETLINT-ALLOW" not in line:
            continue
        match = ALLOW_RE.search(line)
        if not match:
            errors.append(Finding("", lineno, "malformed-allow",
                                  "DETLINT-ALLOW must look like "
                                  "// DETLINT-ALLOW(<rule>): <reason>"))
            continue
        rule, reason = match.group(1).strip(), (match.group(2) or "").strip()
        if rule not in RULES:
            errors.append(Finding("", lineno, "malformed-allow",
                                  f"unknown rule '{rule}' in DETLINT-ALLOW "
                                  f"(known: {', '.join(sorted(RULES))})"))
            continue
        if not reason:
            errors.append(Finding("", lineno, "malformed-allow",
                                  f"DETLINT-ALLOW({rule}) carries no reason; "
                                  "a justification is mandatory"))
            continue
        allows[lineno] = Allow(lineno, rule, reason)
    return allows, errors


def line_of(offsets: list[int], pos: int) -> int:
    """1-based line number of character offset `pos` (offsets sorted)."""
    lo, hi = 0, len(offsets) - 1
    while lo < hi:
        mid = (lo + hi + 1) // 2
        if offsets[mid] <= pos:
            lo = mid
        else:
            hi = mid - 1
    return lo + 1


def match_forward(text: str, start: int, open_ch: str, close_ch: str) -> int:
    """Index just past the matching close for the opener at text[start]."""
    depth = 0
    for i in range(start, len(text)):
        if text[i] == open_ch:
            depth += 1
        elif text[i] == close_ch:
            depth -= 1
            if depth == 0:
                return i + 1
    return len(text)


def declared_in(extent: str, name: str) -> bool:
    """Heuristic: `name` is declared (or is a parameter) inside `extent`."""
    pattern = re.compile(
        r"(?:^|[\s(,;{])((?:const\s+)?[A-Za-z_][\w:]*(?:<[^<>;]*>)?)"
        r"\s*[&*]?\s+[&*]?" + re.escape(name) + r"\s*[=;,)({:]")
    for match in pattern.finditer(extent):
        type_token = match.group(1).replace("const ", "").strip()
        if type_token.split("<")[0] not in NON_TYPE_KEYWORDS:
            return True
    return False


COMPOUND_RE = re.compile(
    r"(?<![<>+\-*/=!])"
    r"(?P<chain>[A-Za-z_]\w*(?:(?:\.|->)[A-Za-z_]\w*)*)\s*"
    r"(?P<op>\+=|-=|\*=|/=)(?!=)")
INCDEC_RE = re.compile(
    r"(?:(?:\+\+|--)\s*(?P<pre>[A-Za-z_]\w*)\b(?!\s*[\.\->\[]))|"
    r"(?:\b(?P<post>[A-Za-z_]\w*)\s*(?:\+\+|--))")


def scan_parallel_extents(path: str, text: str, offsets: list[int],
                          findings: list[Finding]) -> None:
    # A std::thread constructor is a parallel extent too: the sharded
    # serving tier's dispatcher threads drain lock-free MPMC queues in
    # hand-rolled loops, and anything they accumulate into captured state
    # folds in scheduling (pop) order.
    for call in re.finditer(r"(?:\b(?:parallel_for|run_chunks|chunked_for|"
                            r"submit)|std::thread(?:\s+[A-Za-z_]\w*)?)"
                            r"\s*\(", text):
        call_open = call.end() - 1
        call_close = match_forward(text, call_open, "(", ")")
        args = text[call_open:call_close]
        body_rel = args.find("{")
        if body_rel < 0:
            continue  # no lambda literal among the arguments
        body_start = call_open + body_rel
        body_end = match_forward(text, body_start, "{", "}")
        extent = text[body_start:body_end]
        for m in COMPOUND_RE.finditer(extent):
            chain = m.group("chain")
            base = re.split(r"\.|->", chain)[0]
            if declared_in(extent, base):
                continue
            findings.append(Finding(
                path, line_of(offsets, body_start + m.start()),
                "fp-accumulate-parallel",
                f"'{chain} {m.group('op')}' updates captured '{base}' from a "
                "parallel body"))
        for m in INCDEC_RE.finditer(extent):
            name = m.group("pre") or m.group("post")
            if declared_in(extent, name):
                continue
            findings.append(Finding(
                path, line_of(offsets, body_start + m.start()),
                "fp-accumulate-parallel",
                f"increment/decrement of captured '{name}' from a parallel "
                "body"))


def unordered_container_names(text: str) -> list[tuple[str, int]]:
    names = []
    for m in re.finditer(r"std::unordered_(?:map|set)\s*<", text):
        open_angle = m.end() - 1
        depth = 0
        i = open_angle
        while i < len(text):
            if text[i] == "<":
                depth += 1
            elif text[i] == ">":
                depth -= 1
                if depth == 0:
                    break
            i += 1
        tail = text[i + 1:i + 200]
        name_match = re.match(r"\s*[&*]?\s*([A-Za-z_]\w*)\s*(?:[;={(]|$)",
                              tail)
        if name_match:
            names.append((name_match.group(1), i + 1))
    return names


def scan_file(path: str, rel: str, raw: str) -> tuple[list[Finding], int]:
    lines = raw.splitlines()
    allows, allow_errors = collect_allows(lines)
    for err in allow_errors:
        err.path = path

    text = strip_comments_and_strings(raw)
    offsets = [0]
    for i, ch in enumerate(text):
        if ch == "\n":
            offsets.append(i + 1)

    findings: list[Finding] = []
    rel_posix = rel.replace(os.sep, "/")

    in_parallel_substrate = rel_posix.endswith(PARALLEL_SUBSTRATE)
    in_rng_substrate = rel_posix.endswith(RNG_SUBSTRATE)

    if not in_parallel_substrate:
        for m in re.finditer(r"(?:\.|->)\s*parallel_for\s*\(", text):
            findings.append(Finding(
                path, line_of(offsets, m.start()), "raw-parallel-dispatch",
                "direct ThreadPool::parallel_for call; determinism "
                "(per-unit RNG streams, disjoint writes) rests on this call "
                "site alone"))
        scan_parallel_extents(path, text, offsets, findings)

    if not in_rng_substrate:
        rng_patterns = [
            (r"std::random_device", "std::random_device"),
            (r"\bsrand\s*\(", "srand()"),
            (r"(?<![\w:])rand\s*\(\s*\)", "rand()"),
            (r"std::(?:mt19937(?:_64)?|minstd_rand0?|default_random_engine|"
             r"ranlux\w+|knuth_b)\b", "a <random> engine"),
            (r"\btime\s*\(\s*(?:nullptr|NULL|0)\s*\)", "time()-derived seed"),
        ]
        for pattern, label in rng_patterns:
            for m in re.finditer(pattern, text):
                findings.append(Finding(
                    path, line_of(offsets, m.start()), "rng-source",
                    f"{label} outside util/rng"))
        for m in re.finditer(r"(?:system_clock|steady_clock|"
                             r"high_resolution_clock)\b[^\n]*", text):
            line_text = text[offsets[line_of(offsets, m.start()) - 1]:
                             offsets[line_of(offsets, m.start()) - 1] +
                             len(lines[line_of(offsets, m.start()) - 1])]
            if re.search(r"seed|[Rr]ng|random", line_text):
                findings.append(Finding(
                    path, line_of(offsets, m.start()), "rng-source",
                    "clock-derived randomness seed"))

    for name, decl_pos in unordered_container_names(text):
        for m in re.finditer(
                r"for\s*\([^;()]*:\s*[&*]?(?:\w+(?:\.|->))*" +
                re.escape(name) + r"\b", text):
            findings.append(Finding(
                path, line_of(offsets, m.start()), "unordered-iteration",
                f"range-for over unordered container '{name}'"))
        for m in re.finditer(r"\b" + re.escape(name) +
                             r"\s*(?:\.|->)\s*(?:begin|cbegin)\s*\(", text):
            findings.append(Finding(
                path, line_of(offsets, m.start()), "unordered-iteration",
                f"iterator walk over unordered container '{name}'"))
        del decl_pos

    for m in re.finditer(r"std::atomic\s*<\s*(?:float|double|long\s+double)"
                         r"\s*>", text):
        findings.append(Finding(
            path, line_of(offsets, m.start()), "atomic-fp",
            "std::atomic over a floating-point type"))

    # Apply waivers: same line or the line directly above the finding.
    unsuppressed: list[Finding] = []
    for finding in findings:
        allow = allows.get(finding.line) or allows.get(finding.line - 1)
        if allow is not None and allow.rule == finding.rule:
            allow.used = True
            continue
        unsuppressed.append(finding)

    stale = 0
    for allow in allows.values():
        if not allow.used:
            print(f"{path}:{allow.line}: warning: stale "
                  f"DETLINT-ALLOW({allow.rule}) suppresses nothing",
                  file=sys.stderr)
            stale += 1

    return unsuppressed + allow_errors, stale


def lint_paths(paths: list[str]) -> int:
    findings: list[Finding] = []
    files = []
    for root_path in paths:
        if os.path.isfile(root_path):
            files.append((root_path, os.path.basename(root_path)))
            continue
        for dirpath, _, filenames in os.walk(root_path):
            for filename in sorted(filenames):
                if filename.endswith(CPP_SUFFIXES):
                    full = os.path.join(dirpath, filename)
                    files.append((full, os.path.relpath(full, root_path)))
    for full, rel in sorted(files):
        with open(full, encoding="utf-8", errors="replace") as handle:
            raw = handle.read()
        file_findings, _ = scan_file(full, rel, raw)
        findings.extend(file_findings)

    for finding in sorted(findings, key=lambda f: (f.path, f.line)):
        rule_help = RULES.get(finding.rule, "")
        print(f"{finding.path}:{finding.line}: [{finding.rule}] "
              f"{finding.detail}" + (f" — {rule_help}" if rule_help else ""))
    if findings:
        print(f"\nlint_determinism: {len(findings)} finding(s). Rewrite onto "
              "the deterministic helpers or add "
              "`// DETLINT-ALLOW(<rule>): <reason>`.")
        return 1
    print(f"lint_determinism: clean ({len(files)} files).")
    return 0


# --- self-test --------------------------------------------------------------

SELF_TEST_CASES = [
    # (name, source, expected rule names after waivers)
    ("raw parallel_for flagged",
     "void f(util::ThreadPool* p){ p->parallel_for(n, body); }",
     ["raw-parallel-dispatch"]),
    ("raw parallel_for waived",
     "void f(util::ThreadPool* p){\n"
     "  // DETLINT-ALLOW(raw-parallel-dispatch): per-job RNG streams\n"
     "  p->parallel_for(n, body);\n}",
     []),
    ("waiver without reason is an error",
     "// DETLINT-ALLOW(raw-parallel-dispatch)\np->parallel_for(n, b);\n",
     ["malformed-allow", "raw-parallel-dispatch"]),
    ("waiver with unknown rule is an error",
     "// DETLINT-ALLOW(no-such-rule): because\nint x;\n",
     ["malformed-allow"]),
    ("captured accumulator in parallel body",
     "double sum = 0;\n"
     "pool.parallel_for(n, [&](std::size_t i) {\n"
     "  sum += value(i);\n"
     "});\n",
     ["raw-parallel-dispatch", "fp-accumulate-parallel"]),
    ("extent-local accumulator is fine",
     "util::chunked_for(pool, n, grain, [&](std::size_t i) {\n"
     "  double local = 0;\n"
     "  local += value(i);\n"
     "  out[i] = local;\n"
     "});\n",
     []),
    ("captured counter increment in parallel body",
     "util::run_chunks(pool, chunks, [&](std::size_t c) {\n"
     "  ++hits;\n"
     "});\n",
     ["fp-accumulate-parallel"]),
    ("loop variable increments are fine",
     "util::run_chunks(pool, chunks, [&](std::size_t c) {\n"
     "  for (std::size_t i = lo; i < hi; ++i) out[i] = f(i);\n"
     "});\n",
     []),
    ("member chain accumulation is attributed to the base",
     "pool.submit([&] {\n"
     "  stats.total += 1.0;\n"
     "});\n",
     ["fp-accumulate-parallel"]),
    # MPMC raw-dispatch fixtures: a dispatcher thread draining a lock-free
    # shard queue is a parallel extent — pop order is scheduling-dependent,
    # so captured accumulation there is exactly the nondeterministic FP
    # fold the serving tier must not contain.
    ("mpmc dispatcher thread accumulating captured state",
     "std::thread dispatcher([&] {\n"
     "  Request request;\n"
     "  while (shard.queue.try_pop(request)) {\n"
     "    total_energy += request.energy;\n"
     "  }\n"
     "});\n",
     ["fp-accumulate-parallel"]),
    ("mpmc dispatcher draining into per-request slots is fine",
     "std::thread dispatcher([&] {\n"
     "  Request request;\n"
     "  while (shard.queue.try_pop(request)) {\n"
     "    double local = score(request);\n"
     "    local += request.bias;\n"
     "    out[request.slot] = local;\n"
     "  }\n"
     "});\n",
     []),
    ("mpmc dispatcher metric increment needs a justified waiver",
     "std::thread dispatcher([&] {\n"
     "  Request request;\n"
     "  while (shard.queue.try_pop(request)) {\n"
     "    // DETLINT-ALLOW(fp-accumulate-parallel): relaxed monotonic "
     "metric, never feeds a result\n"
     "    ++popped;\n"
     "  }\n"
     "});\n",
     []),
    ("random_device flagged",
     "std::random_device rd;\n",
     ["rng-source"]),
    ("mt19937 flagged",
     "std::mt19937 gen(42);\n",
     ["rng-source"]),
    ("time-seeded flagged",
     "auto seed = time(nullptr);\n",
     ["rng-source"]),
    ("steady_clock without rng context is fine",
     "auto t0 = std::chrono::steady_clock::now();\n",
     []),
    ("clock as seed flagged",
     "rng.seed(std::chrono::steady_clock::now().time_since_epoch()"
     ".count());\n",
     ["rng-source"]),
    ("unordered iteration flagged",
     "std::unordered_map<std::string, int> table;\n"
     "for (const auto& kv : table) use(kv);\n",
     ["unordered-iteration"]),
    ("unordered lookup is fine",
     "std::unordered_map<std::string, int> table;\n"
     "auto it = table.find(key);\n",
     []),
    ("atomic double flagged",
     "std::atomic<double> acc{0.0};\n",
     ["atomic-fp"]),
    ("atomic integer is fine",
     "std::atomic<std::uint64_t> count{0};\n",
     []),
    ("patterns inside comments and strings are ignored",
     "// std::random_device in a comment\n"
     "const char* s = \"std::atomic<double>\";\n",
     []),
]


def self_test() -> int:
    failures = 0
    for name, source, expected in SELF_TEST_CASES:
        found, _ = scan_file("<self-test>", "self_test.cpp", source)
        got = sorted(f.rule for f in found)
        if got != sorted(expected):
            print(f"self-test FAILED: {name}\n  expected {sorted(expected)}"
                  f"\n  got      {got}", file=sys.stderr)
            failures += 1
    if failures:
        return 2
    print(f"lint_determinism: self-test passed "
          f"({len(SELF_TEST_CASES)} cases).")
    return 0


def main(argv: list[str]) -> int:
    args = argv[1:]
    if "--list-rules" in args:
        for rule, help_text in sorted(RULES.items()):
            print(f"{rule}: {help_text}")
        return 0
    if "--self-test" in args:
        return self_test()
    paths = [a for a in args if not a.startswith("-")] or ["src"]
    return lint_paths(paths)


if __name__ == "__main__":
    sys.exit(main(sys.argv))
