// Unit tests for src/util: RNG quality/determinism, CSV, strings, paths.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>

#include "util/csv.h"
#include "util/paths.h"
#include "util/rng.h"
#include "util/string_util.h"

namespace cocktail {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  util::Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  util::Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next() == b.next());
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInRange) {
  util::Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-2.5, 3.5);
    EXPECT_GE(u, -2.5);
    EXPECT_LT(u, 3.5);
  }
}

TEST(Rng, UniformMeanAndVariance) {
  util::Rng rng(11);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double u = rng.uniform();
    sum += u;
    sum_sq += u * u;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.5, 5e-3);
  EXPECT_NEAR(var, 1.0 / 12.0, 5e-3);
}

TEST(Rng, NormalMoments) {
  util::Rng rng(13);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double z = rng.normal();
    sum += z;
    sum_sq += z * z;
  }
  EXPECT_NEAR(sum / n, 0.0, 1e-2);
  EXPECT_NEAR(sum_sq / n, 1.0, 2e-2);
}

TEST(Rng, NormalWithParams) {
  util::Rng rng(17);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.normal(3.0, 0.5);
  EXPECT_NEAR(sum / n, 3.0, 2e-2);
}

TEST(Rng, UniformIndexBounds) {
  util::Rng rng(19);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto k = rng.uniform_index(7);
    EXPECT_LT(k, 7u);
    seen.insert(k);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit.
}

TEST(Rng, UniformIntInclusive) {
  util::Rng rng(23);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, BernoulliFrequency) {
  util::Rng rng(29);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 1e-2);
}

TEST(Rng, PermutationIsBijective) {
  util::Rng rng(31);
  const auto perm = rng.permutation(100);
  std::set<std::size_t> values(perm.begin(), perm.end());
  EXPECT_EQ(values.size(), 100u);
  EXPECT_EQ(*values.begin(), 0u);
  EXPECT_EQ(*values.rbegin(), 99u);
}

TEST(Rng, SpawnIsIndependent) {
  util::Rng parent(5);
  util::Rng child1 = parent.spawn(1);
  util::Rng child2 = parent.spawn(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (child1.next() == child2.next());
  EXPECT_LT(same, 2);
}

TEST(Rng, DeriveSeedDecorrelatesAdjacentSeeds) {
  // Derived seeds of consecutive parents must not be consecutive.
  const auto a = util::derive_seed(1, 0);
  const auto b = util::derive_seed(2, 0);
  EXPECT_NE(a + 1, b);
  EXPECT_NE(a, b);
}

TEST(Csv, WritesHeaderAndRows) {
  const std::string path = "test_csv_out.csv";
  {
    util::CsvWriter csv(path, {"a", "b"});
    csv.row({1.0, 2.5});
    csv.row({-3.25, 1e-9});
    EXPECT_EQ(csv.rows_written(), 2u);
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "a,b");
  std::getline(in, line);
  EXPECT_EQ(line, "1,2.5");
  std::remove(path.c_str());
}

TEST(Csv, RejectsArityMismatch) {
  util::CsvWriter csv("test_csv_arity.csv", {"x"});
  EXPECT_THROW(csv.row({1.0, 2.0}), std::invalid_argument);
  std::remove("test_csv_arity.csv");
}

TEST(Csv, FormatNumberTrimsNoise) {
  EXPECT_EQ(util::format_number(0.25), "0.25");
  EXPECT_EQ(util::format_number(-3.0), "-3");
  EXPECT_EQ(util::format_number(std::nan("")), "nan");
}

TEST(StringUtil, SplitPreservesEmptyFields) {
  const auto parts = util::split("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
}

TEST(StringUtil, Trim) {
  EXPECT_EQ(util::trim("  x \t\n"), "x");
  EXPECT_EQ(util::trim("   "), "");
  EXPECT_EQ(util::trim("abc"), "abc");
}

TEST(StringUtil, Format) {
  EXPECT_EQ(util::format("%d-%s", 7, "x"), "7-x");
}

TEST(StringUtil, Pad) {
  EXPECT_EQ(util::pad("ab", 4), "ab  ");
  EXPECT_EQ(util::pad("abcdef", 4), "abcd");
}

TEST(Paths, EnsureDirCreates) {
  const std::string dir = "test_paths_dir/nested";
  util::ensure_dir(dir);
  EXPECT_TRUE(std::filesystem::is_directory(dir));
  std::filesystem::remove_all("test_paths_dir");
}

TEST(Paths, FileExists) {
  EXPECT_FALSE(util::file_exists("definitely_missing_file.xyz"));
  std::ofstream("test_exists.tmp") << "x";
  EXPECT_TRUE(util::file_exists("test_exists.tmp"));
  std::remove("test_exists.tmp");
}

}  // namespace
}  // namespace cocktail
