// Unit + property tests for src/la: vector ops, Matrix, the deterministic
// blocked/SIMD kernel schedule, solvers, DARE.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <tuple>
#include <vector>

#include "la/kernel_config.h"
#include "la/kernels.h"
#include "la/matrix.h"
#include "la/solve.h"
#include "la/vec.h"
#include "util/rng.h"

namespace cocktail {
namespace {

using la::Matrix;
using la::Vec;

TEST(Vec, AddSubScale) {
  const Vec a = {1.0, 2.0};
  const Vec b = {3.0, -1.0};
  EXPECT_EQ(la::add(a, b), (Vec{4.0, 1.0}));
  EXPECT_EQ(la::sub(a, b), (Vec{-2.0, 3.0}));
  EXPECT_EQ(la::scale(a, 2.0), (Vec{2.0, 4.0}));
}

TEST(Vec, DimensionMismatchThrows) {
  EXPECT_THROW(la::add({1.0}, {1.0, 2.0}), std::invalid_argument);
  EXPECT_THROW((void)la::dot({1.0}, {}), std::invalid_argument);
}

TEST(Vec, Norms) {
  const Vec v = {3.0, -4.0};
  EXPECT_DOUBLE_EQ(la::norm_l1(v), 7.0);
  EXPECT_DOUBLE_EQ(la::norm_l2(v), 5.0);
  EXPECT_DOUBLE_EQ(la::norm_linf(v), 4.0);
}

TEST(Vec, ClipScalarAndVector) {
  const Vec v = {-5.0, 0.5, 5.0};
  EXPECT_EQ(la::clip(v, -1.0, 1.0), (Vec{-1.0, 0.5, 1.0}));
  const Vec lo = {-2.0, 0.0, 0.0};
  const Vec hi = {0.0, 0.25, 10.0};
  EXPECT_EQ(la::clip(v, lo, hi), (Vec{-2.0, 0.25, 5.0}));
}

TEST(Vec, SignAndHadamard) {
  EXPECT_EQ(la::sign({-2.0, 0.0, 3.0}), (Vec{-1.0, 0.0, 1.0}));
  EXPECT_EQ(la::hadamard({2.0, 3.0}, {4.0, -1.0}), (Vec{8.0, -3.0}));
}

TEST(Vec, ConcatAndConstant) {
  EXPECT_EQ(la::concat({1.0}, {2.0, 3.0}), (Vec{1.0, 2.0, 3.0}));
  EXPECT_EQ(la::constant(3, 2.0), (Vec{2.0, 2.0, 2.0}));
  EXPECT_EQ(la::zeros(2), (Vec{0.0, 0.0}));
}

TEST(Vec, AllFinite) {
  EXPECT_TRUE(la::all_finite({1.0, -2.0}));
  EXPECT_FALSE(la::all_finite({1.0, std::nan("")}));
  EXPECT_FALSE(la::all_finite({INFINITY}));
}

TEST(Vec, Axpy) {
  Vec a = {1.0, 1.0};
  la::axpy(a, 2.0, {1.0, -1.0});
  EXPECT_EQ(a, (Vec{3.0, -1.0}));
}

TEST(MatrixTest, MatvecKnown) {
  Matrix m(2, 3, Vec{1, 2, 3, 4, 5, 6});
  EXPECT_EQ(m.matvec({1.0, 0.0, -1.0}), (Vec{-2.0, -2.0}));
}

TEST(MatrixTest, MatvecTransposeMatchesTranspose) {
  util::Rng rng(3);
  Matrix m(4, 3, rng.normal_vec(12));
  const Vec x = rng.normal_vec(4);
  const Vec direct = m.matvec_transpose(x);
  const Vec viaT = m.transpose().matvec(x);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_NEAR(direct[i], viaT[i], 1e-12);
}

TEST(MatrixTest, MatmulIdentity) {
  util::Rng rng(5);
  Matrix m(3, 3, rng.normal_vec(9));
  const Matrix mi = m.matmul(Matrix::identity(3));
  for (std::size_t i = 0; i < 9; ++i)
    EXPECT_DOUBLE_EQ(mi.data()[i], m.data()[i]);
}

TEST(MatrixTest, MatmulAssociativityOnVector) {
  util::Rng rng(7);
  Matrix a(3, 4, rng.normal_vec(12));
  Matrix b(4, 2, rng.normal_vec(8));
  const Vec x = rng.normal_vec(2);
  const Vec lhs = a.matmul(b).matvec(x);
  const Vec rhs = a.matvec(b.matvec(x));
  for (std::size_t i = 0; i < 3; ++i) EXPECT_NEAR(lhs[i], rhs[i], 1e-12);
}

TEST(MatrixTest, AddOuterMatchesManual) {
  Matrix m(2, 2);
  m.add_outer(2.0, {1.0, 3.0}, {4.0, 5.0});
  EXPECT_DOUBLE_EQ(m(0, 0), 8.0);
  EXPECT_DOUBLE_EQ(m(0, 1), 10.0);
  EXPECT_DOUBLE_EQ(m(1, 0), 24.0);
  EXPECT_DOUBLE_EQ(m(1, 1), 30.0);
}

TEST(MatrixTest, SpectralNormDiagonal) {
  const Matrix m = Matrix::diagonal({1.0, -3.0, 2.0});
  EXPECT_NEAR(m.spectral_norm(), 3.0, 1e-9);
}

TEST(MatrixTest, SpectralNormRotationIsOne) {
  const double c = std::cos(0.7), s = std::sin(0.7);
  Matrix rot(2, 2, Vec{c, -s, s, c});
  EXPECT_NEAR(rot.spectral_norm(), 1.0, 1e-9);
}

TEST(MatrixTest, SpectralNormDominatesOperatorAction) {
  // Property: ||Mx|| <= sigma * ||x|| for any x.
  util::Rng rng(11);
  for (int trial = 0; trial < 20; ++trial) {
    Matrix m(3, 5, rng.normal_vec(15));
    const double sigma = m.spectral_norm();
    for (int k = 0; k < 10; ++k) {
      const Vec x = rng.normal_vec(5);
      EXPECT_LE(la::norm_l2(m.matvec(x)), sigma * la::norm_l2(x) + 1e-9);
    }
  }
}

TEST(MatrixTest, InfNorm) {
  Matrix m(2, 2, Vec{1.0, -2.0, 0.5, 0.25});
  EXPECT_DOUBLE_EQ(m.inf_norm(), 3.0);
}

TEST(MatrixTest, SumSquaresAndFrobenius) {
  Matrix m(1, 2, Vec{3.0, 4.0});
  EXPECT_DOUBLE_EQ(m.sum_squares(), 25.0);
  EXPECT_DOUBLE_EQ(m.frobenius_norm(), 5.0);
}

TEST(MatrixTest, FromRowsStacksAndRejectsRagged) {
  const Matrix m = Matrix::from_rows({{1.0, 2.0}, {3.0, 4.0}, {5.0, 6.0}});
  ASSERT_EQ(m.rows(), 3u);
  ASSERT_EQ(m.cols(), 2u);
  EXPECT_DOUBLE_EQ(m(2, 1), 6.0);
  EXPECT_EQ(m.row(1), (Vec{3.0, 4.0}));
  EXPECT_THROW((void)Matrix::from_rows({{1.0, 2.0}, {3.0}}),
               std::invalid_argument);
  EXPECT_THROW((void)m.row(3), std::out_of_range);
}

TEST(MatrixTest, FromRowsEmptyListThrows) {
  // An empty stack has no first row to take the column count from; a silent
  // 0 x 0 answer would disagree with whatever shape the caller expected.
  // Batch assemblers guard the empty case themselves (NnController::
  // act_batch returns {} before calling from_rows).
  EXPECT_THROW((void)Matrix::from_rows({}), std::invalid_argument);
}

TEST(MatrixTest, MatmulNtRowsAreBitwiseMatvecs) {
  // The serving-runtime contract: row r of A * B^T must equal B.matvec(row
  // r of A) exactly — same scalar accumulation order, same bits.
  util::Rng rng(19);
  Matrix a(5, 7);
  Matrix b(4, 7);
  for (auto& v : a.data()) v = rng.uniform(-1.0, 1.0);
  for (auto& v : b.data()) v = rng.uniform(-1.0, 1.0);
  const Matrix c = a.matmul_nt(b);
  ASSERT_EQ(c.rows(), 5u);
  ASSERT_EQ(c.cols(), 4u);
  for (std::size_t r = 0; r < a.rows(); ++r) {
    const Vec expected = b.matvec(a.row(r));
    for (std::size_t j = 0; j < expected.size(); ++j)
      ASSERT_EQ(c(r, j), expected[j]) << "row " << r << " col " << j;
  }
  EXPECT_THROW((void)a.matmul_nt(Matrix(4, 6)), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Fixed-accumulation-schedule kernels (la/kernels.h).
//
// The vectorized kernels and the plain-loop references implement the SAME
// schedule (la/kernel_config.h), so their results must agree bit for bit —
// on every shape, including ones that are not multiples of any panel size.
// ---------------------------------------------------------------------------

/// Shapes deliberately chosen to miss every panel boundary: 1x1, primes,
/// tall/skinny, and inner dims straddling kDotBlockK.
std::vector<std::tuple<std::size_t, std::size_t, std::size_t>>
kernel_test_shapes() {
  const std::size_t bk = la::kernels::kDotBlockK;
  return {
      {1, 1, 1},        {2, 3, 5},         {7, 7, 7},
      {13, 17, 19},     {5, 4, 31},        {1, 3, bk + 1},
      {3, 1, bk - 1},   {2, 2, 2 * bk + 3}, {64, 64, 64},
      {33, 65, 127},
  };
}

Matrix random_matrix(std::size_t rows, std::size_t cols, std::uint64_t seed) {
  util::Rng rng(seed);
  Matrix m(rows, cols);
  for (auto& v : m.data()) v = rng.uniform(-1.0, 1.0);
  return m;
}

void expect_bitwise_rows(const Matrix& got, const Matrix& want) {
  ASSERT_EQ(got.rows(), want.rows());
  ASSERT_EQ(got.cols(), want.cols());
  for (std::size_t r = 0; r < got.rows(); ++r)
    for (std::size_t c = 0; c < got.cols(); ++c)
      ASSERT_EQ(got(r, c), want(r, c)) << "(" << r << ", " << c << ")";
}

TEST(KernelSchedule, DotMatchesReferenceAcrossLengths) {
  const std::size_t bk = la::kernels::kDotBlockK;
  for (std::size_t k : {std::size_t{1}, std::size_t{2}, std::size_t{7},
                        std::size_t{13}, std::size_t{31}, bk - 1, bk, bk + 1,
                        2 * bk + 3}) {
    const Matrix a = random_matrix(1, k, 100 + k);
    const Matrix b = random_matrix(1, k, 200 + k);
    const double fast = la::kernels::dot(a.data().data(), b.data().data(), k);
    const double ref =
        la::kernels::dot_ref(a.data().data(), b.data().data(), k);
    ASSERT_EQ(fast, ref) << "k = " << k;
  }
}

TEST(KernelSchedule, GemmNtBitwiseMatchesReference) {
  if (la::kernels::blas_enabled())
    GTEST_SKIP() << "COCKTAIL_BLAS waives the bitwise GEMM contract";
  for (const auto& [m, n, k] : kernel_test_shapes()) {
    const Matrix a = random_matrix(m, k, 31 * m + n);
    const Matrix b = random_matrix(n, k, 57 * n + k);
    const Matrix fast = a.matmul_nt(b);
    Matrix ref(m, n);
    la::kernels::gemm_nt_ref(m, n, k, a.data().data(), k, b.data().data(), k,
                             ref.data().data(), n);
    SCOPED_TRACE(::testing::Message()
                 << "shape " << m << " x " << n << " x " << k);
    expect_bitwise_rows(fast, ref);
  }
}

TEST(KernelSchedule, GemmNnBitwiseMatchesReference) {
  if (la::kernels::blas_enabled())
    GTEST_SKIP() << "COCKTAIL_BLAS waives the bitwise GEMM contract";
  for (const auto& [m, n, k] : kernel_test_shapes()) {
    const Matrix a = random_matrix(m, k, 71 * m + k);
    const Matrix b = random_matrix(k, n, 93 * n + m);
    const Matrix fast = a.matmul(b);
    Matrix ref(m, n);
    la::kernels::gemm_nn_ref(m, n, k, a.data().data(), k, b.data().data(), n,
                             ref.data().data(), n);
    SCOPED_TRACE(::testing::Message()
                 << "shape " << m << " x " << n << " x " << k);
    expect_bitwise_rows(fast, ref);
  }
}

TEST(KernelSchedule, MatvecBitwiseMatchesDotReference) {
  // matvec never routes to BLAS (it stays deterministic even under
  // COCKTAIL_BLAS), so this pin holds in every build configuration.
  for (const auto& [m, n, k] : kernel_test_shapes()) {
    (void)n;
    const Matrix a = random_matrix(m, k, 11 * m + k);
    const Matrix x = random_matrix(1, k, 13 * k + m);
    Vec xv(x.data().begin(), x.data().end());
    const Vec y = a.matvec(xv);
    ASSERT_EQ(y.size(), m);
    for (std::size_t r = 0; r < m; ++r) {
      const double ref = la::kernels::dot_ref(a.data().data() + r * k,
                                              x.data().data(), k);
      ASSERT_EQ(y[r], ref) << "row " << r << ", shape " << m << " x " << k;
    }
  }
}

TEST(KernelSchedule, MatvecTransposeBitwiseMatchesReference) {
  for (const auto& [m, n, k] : kernel_test_shapes()) {
    (void)n;
    const Matrix a = random_matrix(m, k, 17 * m + k);
    const Matrix x = random_matrix(1, m, 23 * m + k);
    Vec xv(x.data().begin(), x.data().end());
    const Vec y = a.matvec_transpose(xv);
    Vec ref(k, 0.0);
    la::kernels::matvec_t_ref(m, k, a.data().data(), k, xv.data(),
                              ref.data());
    ASSERT_EQ(y.size(), k);
    for (std::size_t c = 0; c < k; ++c)
      ASSERT_EQ(y[c], ref[c]) << "col " << c << ", shape " << m << " x " << k;
  }
}

// ---------------------------------------------------------------------------
// NaN/Inf propagation: the old kernels skipped zero operands as a fast path,
// which silently swallowed 0 * NaN and 0 * Inf (both NaN under IEEE 754).
// ---------------------------------------------------------------------------

TEST(MatrixTest, MatmulPropagatesNanThroughZeroRows) {
  // A is all zeros; the old `if (aik == 0.0) continue;` skip never touched
  // B, so a NaN in B vanished.  0 * NaN = NaN must reach the output.
  Matrix a(1, 2);  // zero-initialised
  Matrix b(2, 1);
  b(0, 0) = std::nan("");
  b(1, 0) = 1.0;
  EXPECT_TRUE(std::isnan(a.matmul(b)(0, 0)));
}

TEST(MatrixTest, MatmulPropagatesNanThroughZeroOperand) {
  // Mirror image: the NaN sits in A, the zero in B.
  Matrix a(1, 2);
  a(0, 0) = std::nan("");
  a(0, 1) = 1.0;
  Matrix b(2, 1);  // zero-initialised
  EXPECT_TRUE(std::isnan(a.matmul(b)(0, 0)));
  EXPECT_TRUE(std::isnan(a.matmul_nt(Matrix(1, 2))(0, 0)));
  EXPECT_TRUE(std::isnan(a.matvec(Vec{0.0, 0.0})[0]));
}

TEST(MatrixTest, MatmulPropagatesInfTimesZeroAsNan) {
  Matrix a(1, 1);  // zero
  Matrix b(1, 1);
  b(0, 0) = INFINITY;
  EXPECT_TRUE(std::isnan(a.matmul(b)(0, 0)));
}

TEST(MatrixTest, AddOuterPropagatesNan) {
  // The old kernel skipped columns where k * col[r] == 0.0, so a NaN (or
  // Inf) in `row` never contaminated those entries.
  Matrix m(1, 1);
  m.add_outer(1.0, Vec{0.0}, Vec{std::nan("")});
  EXPECT_TRUE(std::isnan(m(0, 0)));
  Matrix m2(1, 1);
  m2.add_outer(0.0, Vec{1.0}, Vec{INFINITY});
  EXPECT_TRUE(std::isnan(m2(0, 0)));
}

TEST(MatrixTest, SpectralNormRejectsNonPositiveIters) {
  // iters <= 0 used to fall through to `return 0.0` — an unsound Lipschitz
  // "bound" that flowed into SafetyMonitor::action_deviation_bound and
  // certified everything.
  const Matrix m = Matrix::diagonal({2.0, 5.0});
  EXPECT_THROW((void)m.spectral_norm(0), std::invalid_argument);
  EXPECT_THROW((void)m.spectral_norm(-3), std::invalid_argument);
  // The validation precedes the empty-matrix early-out.
  EXPECT_THROW((void)Matrix().spectral_norm(0), std::invalid_argument);
  EXPECT_NEAR(m.spectral_norm(50), 5.0, 1e-9);
}

TEST(MatrixTest, RowBroadcastOps) {
  Matrix m(2, 3, Vec{1.0, 2.0, 3.0, 4.0, 5.0, 6.0});
  m.add_row_broadcast({10.0, 20.0, 30.0});
  EXPECT_EQ(m.row(0), (Vec{11.0, 22.0, 33.0}));
  EXPECT_EQ(m.row(1), (Vec{14.0, 25.0, 36.0}));
  m.scale_columns({2.0, 0.5, -1.0});
  EXPECT_EQ(m.row(0), (Vec{22.0, 11.0, -33.0}));
  EXPECT_EQ(m.row(1), (Vec{28.0, 12.5, -36.0}));
  EXPECT_THROW(m.add_row_broadcast({1.0}), std::invalid_argument);
  EXPECT_THROW(m.scale_columns({1.0}), std::invalid_argument);
}

TEST(Solve, KnownSystem) {
  Matrix a(2, 2, Vec{2.0, 1.0, 1.0, 3.0});
  const Vec x = la::solve(a, Vec{5.0, 10.0});
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(Solve, SingularThrows) {
  Matrix a(2, 2, Vec{1.0, 2.0, 2.0, 4.0});
  EXPECT_THROW(la::solve(a, Vec{1.0, 1.0}), std::runtime_error);
}

class SolveRandom : public ::testing::TestWithParam<int> {};

TEST_P(SolveRandom, ResidualIsTiny) {
  util::Rng rng(100 + GetParam());
  const std::size_t n = 2 + GetParam() % 5;
  Matrix a(n, n, rng.normal_vec(n * n));
  // Diagonal dominance keeps the random systems well-conditioned.
  for (std::size_t i = 0; i < n; ++i) a(i, i) += 5.0;
  const Vec b = rng.normal_vec(n);
  const Vec x = la::solve(a, b);
  const Vec r = la::sub(a.matvec(x), b);
  EXPECT_LT(la::norm_l2(r), 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SolveRandom, ::testing::Range(0, 12));

// Property: A * solve(A, b) ≈ b on random well-conditioned systems, with
// the matrices and right-hand sides drawn from util::Rng streams.
class SolveRoundTrip : public ::testing::TestWithParam<int> {
 protected:
  /// Random diagonally-dominant n x n matrix (condition number stays small,
  /// so the round-trip tolerances below are dimension-robust).
  static Matrix well_conditioned(std::size_t n, util::Rng& rng) {
    Matrix a(n, n, rng.normal_vec(n * n));
    for (std::size_t i = 0; i < n; ++i)
      a(i, i) += static_cast<double>(n) + 3.0;
    return a;
  }
};

TEST_P(SolveRoundTrip, VectorRhs) {
  util::Rng rng(9000 + GetParam());
  const std::size_t n = 1 + GetParam() % 7;
  const Matrix a = well_conditioned(n, rng);
  const Vec b = rng.uniform_vec(n, -5.0, 5.0);
  const Vec reconstructed = a.matvec(la::solve(a, b));
  EXPECT_LT(la::norm_linf(la::sub(reconstructed, b)), 1e-9);
}

TEST_P(SolveRoundTrip, RecoversAKnownSolution) {
  // Forward direction: from a known x, b = A x; solve must recover x.
  util::Rng rng(7000 + GetParam());
  const std::size_t n = 2 + GetParam() % 6;
  const Matrix a = well_conditioned(n, rng);
  const Vec x_true = rng.normal_vec(n);
  const Vec x = la::solve(a, a.matvec(x_true));
  EXPECT_LT(la::norm_linf(la::sub(x, x_true)), 1e-9);
}

TEST_P(SolveRoundTrip, MatrixRhs) {
  // Column-by-column round trip: A * solve(A, B) ≈ B.
  util::Rng rng(5000 + GetParam());
  const std::size_t n = 2 + GetParam() % 5;
  const std::size_t cols = 1 + GetParam() % 4;
  const Matrix a = well_conditioned(n, rng);
  const Matrix b(n, cols, rng.normal_vec(n * cols));
  const Matrix reconstructed = a.matmul(la::solve(a, b));
  EXPECT_LT((reconstructed - b).frobenius_norm(), 1e-9);
}

TEST_P(SolveRoundTrip, InverseTimesMatrixIsIdentityBothSides) {
  util::Rng rng(3000 + GetParam());
  const std::size_t n = 2 + GetParam() % 5;
  const Matrix a = well_conditioned(n, rng);
  const Matrix inv = la::inverse(a);
  const Matrix eye = Matrix::identity(n);
  EXPECT_LT((a.matmul(inv) - eye).frobenius_norm(), 1e-9);
  EXPECT_LT((inv.matmul(a) - eye).frobenius_norm(), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SolveRoundTrip, ::testing::Range(0, 16));

TEST(Solve, InverseRoundTrip) {
  util::Rng rng(17);
  Matrix a(3, 3, rng.normal_vec(9));
  for (std::size_t i = 0; i < 3; ++i) a(i, i) += 4.0;
  const Matrix prod = a.matmul(la::inverse(a));
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 3; ++j)
      EXPECT_NEAR(prod(i, j), i == j ? 1.0 : 0.0, 1e-10);
}

TEST(Dare, DoubleIntegratorStabilizes) {
  // s = (pos, vel); A: integrator, B acts on velocity.
  const double tau = 0.1;
  Matrix a = Matrix::identity(2);
  a(0, 1) = tau;
  Matrix b(2, 1);
  b(1, 0) = tau;
  const auto result =
      la::solve_dare(a, b, Matrix::identity(2), Matrix::identity(1) * 0.1);
  // Closed-loop A - BK must contract: simulate and require decay.
  const Matrix a_cl = a - b.matmul(result.k);
  Vec s = {1.0, 1.0};
  for (int t = 0; t < 200; ++t) s = a_cl.matvec(s);
  EXPECT_LT(la::norm_l2(s), 1e-3);
}

TEST(Dare, RiccatiFixedPointHolds) {
  const double tau = 0.1;
  Matrix a = Matrix::identity(2);
  a(0, 1) = tau;
  Matrix b(2, 1);
  b(1, 0) = tau;
  const Matrix q = Matrix::identity(2);
  const Matrix r = Matrix::identity(1) * 0.5;
  const auto res = la::solve_dare(a, b, q, r);
  // Check P = A'P(A - BK) + Q at the fixed point.
  const Matrix rhs = a.transpose().matmul(
                         res.p.matmul(a - b.matmul(res.k))) + q;
  EXPECT_LT((rhs - res.p).frobenius_norm(), 1e-8);
}

}  // namespace
}  // namespace cocktail
