// Tests for reachable-set computation (Definition 2 / Fig 4): the verified
// flowpipe must contain simulated trajectories, detect safety, and fail
// cleanly on budget exhaustion.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "control/lqr_controller.h"
#include "control/nn_controller.h"
#include "control/polynomial_controller.h"
#include "core/distiller.h"
#include "sys/threed.h"
#include "sys/vanderpol.h"
#include "verify/reach.h"

namespace cocktail {
namespace {

using la::Vec;
using verify::IBox;
using verify::Interval;

/// Small LQR-based linear controller as a cheap certified subject.
std::shared_ptr<ctrl::PolynomialController> threed_linear_controller() {
  const sys::ThreeD system;
  const auto lqr = ctrl::LqrController::synthesize(system, 1.0, 8.0);
  return std::make_shared<ctrl::PolynomialController>(
      ctrl::PolynomialController::linear_feedback(lqr.gain(), "lin"));
}

TEST(Reach, FlowpipeContainsSimulatedTrajectories) {
  auto system = std::make_shared<sys::ThreeD>();
  const auto controller = threed_linear_controller();
  verify::ReachConfig config;
  config.steps = 10;
  config.abstraction.epsilon_target = 0.2;
  const verify::ReachabilityAnalyzer analyzer(system, *controller, config);
  const IBox initial =
      verify::make_box({-0.11, 0.205, 0.1}, {-0.105, 0.21, 0.11});
  const auto result = analyzer.analyze(initial);
  ASSERT_TRUE(result.completed) << result.failure;
  ASSERT_EQ(result.layers.size(), 11u);

  // Property: simulated trajectories from the initial box stay inside the
  // per-step union of reach boxes.
  util::Rng rng(1);
  for (int traj = 0; traj < 25; ++traj) {
    Vec s(3);
    for (std::size_t d = 0; d < 3; ++d)
      s[d] = rng.uniform(initial[d].lo(), initial[d].hi());
    for (int t = 1; t <= 10; ++t) {
      s = system->step(s, system->clip_control(controller->act(s)), {});
      bool covered = false;
      for (const IBox& box : result.layers[t])
        covered = covered || verify::box_contains(box, s);
      ASSERT_TRUE(covered) << "trajectory " << traj << " escaped at step "
                           << t;
    }
  }
}

TEST(Reach, ReportsSafeForStabilizingController) {
  auto system = std::make_shared<sys::ThreeD>();
  const auto controller = threed_linear_controller();
  verify::ReachConfig config;
  config.steps = 15;  // the paper's Fig 4 horizon.
  config.abstraction.epsilon_target = 0.2;
  const verify::ReachabilityAnalyzer analyzer(system, *controller, config);
  const IBox initial =
      verify::make_box({-0.11, 0.205, 0.1}, {-0.105, 0.21, 0.11});
  const auto result = analyzer.analyze(initial);
  ASSERT_TRUE(result.completed);
  EXPECT_TRUE(result.safe);
  EXPECT_GT(result.seconds, 0.0);
  EXPECT_GT(result.nn_evaluations, 0);
}

TEST(Reach, DetectsUnsafeWithRunawayController) {
  // A destabilizing (positive-feedback) controller must push the flowpipe
  // out of X within a few steps.
  auto system = std::make_shared<sys::ThreeD>();
  la::Matrix k(1, 3);
  k(0, 2) = -40.0;  // u = +40 z: runaway in z.
  const auto runaway = std::make_shared<ctrl::PolynomialController>(
      ctrl::PolynomialController::linear_feedback(k, "runaway"));
  verify::ReachConfig config;
  config.steps = 15;
  config.abstraction.epsilon_target = 0.5;
  const verify::ReachabilityAnalyzer analyzer(system, *runaway, config);
  const IBox initial = verify::make_box({0.3, 0.3, 0.3}, {0.32, 0.32, 0.32});
  const auto result = analyzer.analyze(initial);
  ASSERT_TRUE(result.completed);
  EXPECT_FALSE(result.safe);
}

TEST(Reach, BudgetExhaustionIsCleanFailure) {
  auto system = std::make_shared<sys::ThreeD>();
  nn::Mlp net = nn::Mlp::make(3, {16, 16}, 1, nn::Activation::kTanh,
                              nn::Activation::kIdentity, 5);
  const ctrl::NnController big(std::move(net), {30.0}, "bigL");
  verify::ReachConfig config;
  config.steps = 15;
  config.abstraction.epsilon_target = 0.05;
  config.abstraction.max_degree = 3;
  config.budget.max_nn_evaluations = 20'000;
  const verify::ReachabilityAnalyzer analyzer(system, big, config);
  const IBox initial =
      verify::make_box({-0.11, 0.205, 0.1}, {-0.105, 0.21, 0.11});
  const auto result = analyzer.analyze(initial);
  EXPECT_FALSE(result.completed);
  EXPECT_FALSE(result.safe);
  EXPECT_FALSE(result.failure.empty());
}

void expect_same_reach(const verify::ReachResult& a,
                       const verify::ReachResult& b, int workers) {
  EXPECT_EQ(a.completed, b.completed) << workers << " workers";
  EXPECT_EQ(a.safe, b.safe) << workers << " workers";
  EXPECT_EQ(a.failure, b.failure) << workers << " workers";
  // Budget counters must be exact, not approximate: per-box counters merge
  // in frontier order.
  EXPECT_EQ(a.nn_evaluations, b.nn_evaluations) << workers << " workers";
  EXPECT_EQ(a.partitions, b.partitions) << workers << " workers";
  ASSERT_EQ(a.layers.size(), b.layers.size()) << workers << " workers";
  for (std::size_t t = 0; t < a.layers.size(); ++t) {
    ASSERT_EQ(a.layers[t].size(), b.layers[t].size())
        << "layer " << t << ", " << workers << " workers";
    for (std::size_t k = 0; k < a.layers[t].size(); ++k)
      for (std::size_t d = 0; d < a.layers[t][k].size(); ++d) {
        ASSERT_EQ(a.layers[t][k][d].lo(), b.layers[t][k][d].lo())
            << "layer " << t << " box " << k << ", " << workers << " workers";
        ASSERT_EQ(a.layers[t][k][d].hi(), b.layers[t][k][d].hi())
            << "layer " << t << " box " << k << ", " << workers << " workers";
      }
  }
}

TEST(Reach, SerialAndParallelSweepsAgreeExactly) {
  // Multi-box frontiers (small max_box_width forces subdivision) computed
  // serially and in parallel must agree on everything: flowpipe, safety,
  // and the exact budget counters.
  auto system = std::make_shared<sys::ThreeD>();
  const auto controller = threed_linear_controller();
  verify::ReachConfig config;
  config.steps = 6;
  config.abstraction.epsilon_target = 0.15;
  config.max_box_width = 0.03;
  config.num_workers = 1;
  const verify::ReachabilityAnalyzer serial(system, *controller, config);
  const IBox initial =
      verify::make_box({-0.14, 0.18, 0.08}, {-0.08, 0.24, 0.14});
  const auto reference = serial.analyze(initial);
  ASSERT_TRUE(reference.completed) << reference.failure;
  ASSERT_GT(reference.layers.back().size(), 8u)
      << "workload too small to exercise the parallel sweep";
  for (const int workers : {0, 2, 8}) {
    config.num_workers = workers;
    const verify::ReachabilityAnalyzer parallel(system, *controller, config);
    expect_same_reach(parallel.analyze(initial), reference, workers);
  }
}

TEST(Reach, BudgetExhaustionAgreesAcrossWorkerCounts) {
  // Exhaustion must fail identically — same counters, same failure text —
  // no matter how many workers swept the frontier.
  auto system = std::make_shared<sys::ThreeD>();
  nn::Mlp net = nn::Mlp::make(3, {16, 16}, 1, nn::Activation::kTanh,
                              nn::Activation::kIdentity, 5);
  const ctrl::NnController big(std::move(net), {30.0}, "bigL");
  verify::ReachConfig config;
  config.steps = 15;
  config.abstraction.epsilon_target = 0.05;
  config.abstraction.max_degree = 3;
  config.budget.max_nn_evaluations = 20'000;
  config.num_workers = 1;
  const verify::ReachabilityAnalyzer serial(system, big, config);
  const IBox initial =
      verify::make_box({-0.11, 0.205, 0.1}, {-0.105, 0.21, 0.11});
  const auto reference = serial.analyze(initial);
  ASSERT_FALSE(reference.completed);
  for (const int workers : {0, 4}) {
    config.num_workers = workers;
    const verify::ReachabilityAnalyzer parallel(system, big, config);
    expect_same_reach(parallel.analyze(initial), reference, workers);
  }
}

TEST(PaveBoxes, CoversAllInputBoxes) {
  // Property: every input box is contained in the union of output cells.
  util::Rng rng(21);
  std::vector<IBox> boxes;
  for (int k = 0; k < 40; ++k) {
    const double x = rng.uniform(-1.0, 1.0);
    const double y = rng.uniform(-1.0, 1.0);
    boxes.push_back(verify::make_box({x, y},
                                     {x + rng.uniform(0.0, 0.2),
                                      y + rng.uniform(0.0, 0.2)}));
  }
  const auto cells = verify::pave_boxes(boxes, 0.1);
  EXPECT_FALSE(cells.empty());
  // Sample points inside input boxes; each must be inside some cell.
  for (const IBox& box : boxes) {
    for (int k = 0; k < 10; ++k) {
      const la::Vec p = {rng.uniform(box[0].lo(), box[0].hi()),
                         rng.uniform(box[1].lo(), box[1].hi())};
      bool covered = false;
      for (const IBox& cell : cells)
        covered = covered || verify::box_contains(cell, p);
      ASSERT_TRUE(covered);
    }
  }
}

TEST(PaveBoxes, RespectsCellCap) {
  std::vector<IBox> boxes = {
      verify::make_box({0.0, 0.0}, {10.0, 10.0})};
  const auto cells = verify::pave_boxes(boxes, 0.01, /*max_cells=*/100);
  EXPECT_LE(cells.size(), 100u);
  EXPECT_FALSE(cells.empty());
}

TEST(PaveBoxes, MergesDuplicates) {
  // Many identical boxes collapse onto few cells.
  std::vector<IBox> boxes(50, verify::make_box({0.0, 0.0}, {0.05, 0.05}));
  const auto cells = verify::pave_boxes(boxes, 0.1);
  EXPECT_LE(cells.size(), 4u);
}

TEST(PaveBoxes, ThrowsOnInvalidResolution) {
  const std::vector<IBox> boxes = {verify::make_box({0.0}, {1.0})};
  EXPECT_THROW((void)verify::pave_boxes(boxes, 0.0), std::invalid_argument);
  EXPECT_THROW((void)verify::pave_boxes(boxes, -1.0), std::invalid_argument);
  EXPECT_THROW(
      (void)verify::pave_boxes(boxes, std::numeric_limits<double>::quiet_NaN()),
      std::invalid_argument);
  EXPECT_THROW(
      (void)verify::pave_boxes(boxes, std::numeric_limits<double>::infinity()),
      std::invalid_argument);
}

TEST(PaveBoxes, ThrowsOnNonFiniteBoxes) {
  IBox bad(2);
  bad[0] = {0.0, std::numeric_limits<double>::quiet_NaN()};
  bad[1] = {0.0, 1.0};
  EXPECT_THROW((void)verify::pave_boxes({bad}, 0.1), std::invalid_argument);
  bad[0] = {0.0, std::numeric_limits<double>::infinity()};
  EXPECT_THROW((void)verify::pave_boxes({bad}, 0.1), std::invalid_argument);
}

TEST(PaveBoxes, ExtremeHullDoesNotWrapCellCount) {
  // Regression: a hull of 2^32 resolution-sized cells per dimension used to
  // wrap the size_t cell product to zero in 2-D (2^64 ≡ 0), "pass" the cap,
  // and write through a zero-sized coverage grid.  The sizing must coarsen
  // instead.
  const std::vector<IBox> boxes = {
      verify::make_box({0.0, 0.0}, {4294967296.0, 4294967296.0})};
  const auto cells = verify::pave_boxes(boxes, 1.0, /*max_cells=*/50000);
  ASSERT_FALSE(cells.empty());
  EXPECT_LE(cells.size(), 50000u);
  // The coarsened paving still covers the hull corners.
  bool lo_covered = false, hi_covered = false;
  for (const IBox& cell : cells) {
    lo_covered = lo_covered || verify::box_contains(cell, {0.0, 0.0});
    hi_covered = hi_covered ||
                 verify::box_contains(cell, {4294967296.0, 4294967296.0});
  }
  EXPECT_TRUE(lo_covered);
  EXPECT_TRUE(hi_covered);
}

TEST(Reach, NanInitialBoxIsNeverSafe) {
  // Regression for the NaN-blind inside_safe_region: its exclusion-direction
  // comparisons were all false for NaN, so a corrupted enclosure fell
  // through as "safe" — the serve-path analogue of the
  // SafetyMonitor::certified NaN hole.  Fail closed instead.
  auto system = std::make_shared<sys::VanDerPol>();
  const ctrl::ZeroController zero(2, 1);
  verify::ReachConfig config;
  config.steps = 0;  // the verdict reduces to inside_safe_region(initial).
  const verify::ReachabilityAnalyzer analyzer(system, zero, config);
  IBox initial = verify::make_box({0.1, 0.1}, {0.2, 0.2});
  initial[1] = {std::numeric_limits<double>::quiet_NaN(),
                std::numeric_limits<double>::quiet_NaN()};
  const auto result = analyzer.analyze(initial);
  EXPECT_TRUE(result.completed);
  EXPECT_FALSE(result.safe) << "NaN enclosure certified as safe";
}

TEST(Reach, SingleGiantBoxFanoutAgreesAcrossWorkerCounts) {
  // The single-box serialization hole: one giant frontier box fans its
  // sub-box enclosures out as independent work items, and the fanned
  // schedule must stay bitwise identical for any worker count.
  auto system = std::make_shared<sys::ThreeD>();
  const auto controller = threed_linear_controller();
  verify::ReachConfig config;
  config.steps = 2;
  config.abstraction.epsilon_target = 0.15;
  config.max_box_width = 0.06;  // 5^3 = 125 sub-boxes in the first wave.
  config.num_workers = 1;
  ASSERT_TRUE(config.subbox_fanout) << "fan-out should be the default";
  const verify::ReachabilityAnalyzer serial(system, *controller, config);
  const IBox initial =
      verify::make_box({-0.25, 0.05, -0.05}, {0.05, 0.35, 0.25});
  const auto reference = serial.analyze(initial);
  ASSERT_TRUE(reference.completed) << reference.failure;
  ASSERT_GT(reference.layers[1].size(), 100u)
      << "workload too small to exercise the fan-out";
  for (const int workers : {0, 2, 8}) {
    config.num_workers = workers;
    const verify::ReachabilityAnalyzer parallel(system, *controller, config);
    expect_same_reach(parallel.analyze(initial), reference, workers);
  }
}

TEST(Reach, FanoutMatchesPerBoxScheduleWhenCompleting) {
  // On completing runs the fanned-out schedule is defined to equal the
  // strictly per-box schedule: same layers, same counters, same verdict.
  auto system = std::make_shared<sys::ThreeD>();
  const auto controller = threed_linear_controller();
  verify::ReachConfig config;
  config.steps = 2;
  config.abstraction.epsilon_target = 0.15;
  config.max_box_width = 0.06;
  config.num_workers = 2;
  config.subbox_fanout = false;
  const verify::ReachabilityAnalyzer per_box(system, *controller, config);
  const IBox initial =
      verify::make_box({-0.25, 0.05, -0.05}, {0.05, 0.35, 0.25});
  const auto reference = per_box.analyze(initial);
  ASSERT_TRUE(reference.completed) << reference.failure;
  config.subbox_fanout = true;
  const verify::ReachabilityAnalyzer fanned(system, *controller, config);
  expect_same_reach(fanned.analyze(initial), reference, /*workers=*/2);
}

TEST(Reach, VanDerPolOneStepMatchesIntervalStep) {
  auto system = std::make_shared<sys::VanDerPol>();
  const ctrl::ZeroController zero(2, 1);
  verify::ReachConfig config;
  config.steps = 1;
  config.abstraction.epsilon_target = 1.0;
  config.max_box_width = 10.0;  // no subdivision.
  const verify::ReachabilityAnalyzer analyzer(system, zero, config);
  const IBox initial = verify::make_box({0.1, 0.1}, {0.2, 0.2});
  const auto result = analyzer.analyze(initial);
  ASSERT_TRUE(result.completed);
  ASSERT_EQ(result.layers[1].size(), 1u);
  // Zero controller => the image is the interval dynamics applied to the
  // initial box with u = 0 and full disturbance.
  const auto dynamics = verify::make_interval_dynamics(*system);
  const IBox expected = dynamics->step(initial, {Interval(0.0, 0.0)});
  const IBox& got = result.layers[1][0];
  for (std::size_t d = 0; d < 2; ++d) {
    EXPECT_NEAR(got[d].lo(), expected[d].lo(), 1e-6);
    EXPECT_NEAR(got[d].hi(), expected[d].hi(), 1e-6);
  }
}

}  // namespace
}  // namespace cocktail
