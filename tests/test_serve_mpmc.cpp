// Unit tests for the bounded Vyukov MPMC ring (serve/mpmc_queue.h):
// capacity rounding and the full/empty admission signals, FIFO order per
// producer under contention, move-only payloads, and drain-on-shutdown
// exactness (everything pushed before producers quiesce is popped, nothing
// is duplicated or lost).  The file is named test_serve_mpmc so the CMake
// label rules register it under the `serve` label, which the TSan CI entry
// runs.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <memory>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include "serve/mpmc_queue.h"

namespace cocktail {
namespace {

using serve::MpmcQueue;

TEST(MpmcQueue, CapacityRoundsUpToAPowerOfTwo) {
  EXPECT_EQ(MpmcQueue<int>(1).capacity(), 2u);
  EXPECT_EQ(MpmcQueue<int>(2).capacity(), 2u);
  EXPECT_EQ(MpmcQueue<int>(3).capacity(), 4u);
  EXPECT_EQ(MpmcQueue<int>(1000).capacity(), 1024u);
  EXPECT_EQ(MpmcQueue<int>(1024).capacity(), 1024u);
  EXPECT_THROW(MpmcQueue<int>(0), std::invalid_argument);
}

TEST(MpmcQueue, PushFailsExactlyAtCapacityAndPopFailsWhenEmpty) {
  MpmcQueue<int> queue(4);
  int out = 0;
  EXPECT_TRUE(queue.empty());
  EXPECT_FALSE(queue.try_pop(out));
  for (int k = 0; k < 4; ++k) EXPECT_TRUE(queue.try_push(k + 10));
  EXPECT_FALSE(queue.try_push(99));  // full: the load-shedding signal.
  EXPECT_EQ(queue.approx_size(), 4u);
  // FIFO drain; the freed slots accept new pushes (ring laps work).
  for (int k = 0; k < 4; ++k) {
    ASSERT_TRUE(queue.try_pop(out));
    EXPECT_EQ(out, k + 10);
  }
  EXPECT_FALSE(queue.try_pop(out));
  EXPECT_TRUE(queue.try_push(7));
  ASSERT_TRUE(queue.try_pop(out));
  EXPECT_EQ(out, 7);
  EXPECT_TRUE(queue.empty());
}

TEST(MpmcQueue, MoveOnlyPayloadsAreSupported) {
  MpmcQueue<std::unique_ptr<int>> queue(2);
  EXPECT_TRUE(queue.try_push(std::make_unique<int>(5)));
  auto blocked = std::make_unique<int>(6);
  EXPECT_TRUE(queue.try_push(std::move(blocked)));
  // A failed push must leave the value intact for the caller to reject.
  auto kept = std::make_unique<int>(7);
  EXPECT_FALSE(queue.try_push(std::move(kept)));
  ASSERT_NE(kept, nullptr);
  EXPECT_EQ(*kept, 7);
  std::unique_ptr<int> out;
  ASSERT_TRUE(queue.try_pop(out));
  EXPECT_EQ(*out, 5);
  ASSERT_TRUE(queue.try_pop(out));
  EXPECT_EQ(*out, 6);
}

// Four producers push tagged sequences while one consumer drains: every
// element arrives exactly once, and each producer's elements arrive in its
// program order (FIFO per producer — the ticket order of the Vyukov ring).
TEST(MpmcQueue, FifoPerProducerUnderContention) {
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 2000;
  MpmcQueue<int> queue(64);

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&queue, p] {
      for (int k = 0; k < kPerProducer; ++k) {
        int value = p * kPerProducer + k;
        // Bounded ring: spin until admitted (the server sheds instead, but
        // this test needs every element delivered).
        while (!queue.try_push(std::move(value))) std::this_thread::yield();
      }
    });
  }

  std::vector<int> next_expected(kProducers, 0);
  std::size_t received = 0;
  while (received <
         static_cast<std::size_t>(kProducers) * kPerProducer) {
    int value = -1;
    if (!queue.try_pop(value)) {
      std::this_thread::yield();
      continue;
    }
    ++received;
    const int p = value / kPerProducer;
    const int k = value % kPerProducer;
    ASSERT_GE(p, 0);
    ASSERT_LT(p, kProducers);
    // FIFO per producer: producer p's elements arrive in increasing k.
    ASSERT_EQ(k, next_expected[static_cast<std::size_t>(p)])
        << "producer " << p;
    next_expected[static_cast<std::size_t>(p)] = k + 1;
  }
  for (auto& thread : producers) thread.join();
  EXPECT_TRUE(queue.empty());
  for (const int n : next_expected) EXPECT_EQ(n, kPerProducer);
}

// Drain-on-shutdown: producers stop at an arbitrary point (some pushes
// sheded by the full ring), then a final single-threaded drain — exactly
// the accepted elements come out, none lost, none duplicated.  This is the
// quiesced-side exactness the ControllerServer shutdown handshake relies
// on (mpmc_queue.h's empty()/approx_size contract).
TEST(MpmcQueue, DrainAfterProducersQuiesceIsExact) {
  constexpr int kProducers = 4;
  constexpr int kAttemptsPerProducer = 5000;
  MpmcQueue<int> queue(32);
  std::atomic<int> accepted_by_producers{0};
  std::atomic<bool> consumer_on{true};
  std::atomic<int> consumed{0};

  // A background consumer keeps the ring churning so producers see both
  // full and free slots.
  std::thread consumer([&] {
    int value = 0;
    while (consumer_on.load()) {
      if (queue.try_pop(value))
        consumed.fetch_add(1);
      else
        std::this_thread::yield();
    }
  });

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&queue, &accepted_by_producers, p] {
      for (int k = 0; k < kAttemptsPerProducer; ++k) {
        int value = p * kAttemptsPerProducer + k;
        if (queue.try_push(std::move(value)))
          accepted_by_producers.fetch_add(1);
        // A failed push is a shed: the element is intentionally dropped.
      }
    });
  }
  for (auto& thread : producers) thread.join();
  consumer_on.store(false);
  consumer.join();

  // All producers and the concurrent consumer are quiesced: approx_size()
  // is now exact, and draining serially must yield precisely the accepted
  // elements that were not already consumed.
  const std::size_t remaining = queue.approx_size();
  int drained = 0;
  int value = 0;
  while (queue.try_pop(value)) ++drained;
  EXPECT_EQ(static_cast<std::size_t>(drained), remaining);
  EXPECT_EQ(consumed.load() + drained, accepted_by_producers.load());
  EXPECT_TRUE(queue.empty());
  EXPECT_FALSE(queue.try_pop(value));
}

}  // namespace
}  // namespace cocktail
