// Concurrency stress for the annotation contracts (sized to run under the
// TSan CI entry, which picks this suite up through the `serve` label).
//
// These tests assert almost nothing clever; their value is the interleaving
// pressure they put on the lock/counter/shutdown contracts that
// util/thread_pool.h, serve/mpmc_queue.h, and serve/controller_server.h
// annotate or document:
//   - many external submitters against one ThreadPool, mixed with
//     concurrent parallel_for batches and size() reads;
//   - many ControllerServer submitters against sharded MPMC queues and
//     multiple dispatcher threads, mixed with concurrent counters() stats
//     reads, drain() calls, registration under traffic, a stop() racing
//     live submitters (the Dekker shutdown gate), and genuine load shedding
//     under contention with exact accept/shed/reject accounting.
// Under -fsanitize=thread any access these paths make outside the
// documented discipline is a CI failure even when the assertions pass.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "control/controller.h"
#include "control/nn_controller.h"
#include "la/vec.h"
#include "nn/mlp.h"
#include "serve/controller_server.h"
#include "serve/safety_monitor.h"
#include "sys/system.h"
#include "util/thread_pool.h"

namespace cocktail {
namespace {

using la::Vec;

std::shared_ptr<const ctrl::NnController> make_student(std::uint64_t seed) {
  nn::Mlp net = nn::Mlp::make(2, {8}, 1, nn::Activation::kTanh,
                              nn::Activation::kIdentity, seed);
  return std::make_shared<const ctrl::NnController>(std::move(net), Vec{1.5},
                                                    "stress-student");
}

/// Fallback with a recognizable constant answer.
class MarkController final : public ctrl::Controller {
 public:
  static constexpr double kMark = -7.125;
  [[nodiscard]] Vec act(const Vec&) const override { return Vec{kMark}; }
  [[nodiscard]] std::size_t state_dim() const override { return 2; }
  [[nodiscard]] std::size_t control_dim() const override { return 1; }
  [[nodiscard]] std::string describe() const override { return "mark"; }
};

// --- ThreadPool ------------------------------------------------------------

TEST(ThreadPoolStress, ConcurrentSubmittersAndBatchesAndSizeReads) {
  constexpr int kSubmitters = 4;
  constexpr int kTasksPerSubmitter = 64;
  constexpr int kBatchDrivers = 2;
  constexpr std::size_t kBatch = 96;

  util::ThreadPool pool(3);
  std::atomic<bool> done{false};

  // A reader hammers the (const, post-construction-immutable) size()
  // accessor the whole time; TSan proves the read needs no lock.
  std::thread size_reader([&] {
    while (!done.load()) {
      EXPECT_EQ(pool.size(), 3u);
      std::this_thread::yield();
    }
  });

  // Drivers run parallel_for batches concurrently with the submitters; the
  // batch bodies only touch their own slot.
  std::vector<std::thread> drivers;
  std::vector<std::vector<int>> slots(kBatchDrivers,
                                      std::vector<int>(kBatch, 0));
  for (int d = 0; d < kBatchDrivers; ++d) {
    drivers.emplace_back([&, d] {
      for (int round = 0; round < 4; ++round)
        pool.parallel_for(kBatch,
                          [&, d](std::size_t i) { slots[d][i] += 1; });
    });
  }

  std::vector<std::thread> submitters;
  std::vector<long> sums(kSubmitters, 0);
  for (int t = 0; t < kSubmitters; ++t) {
    submitters.emplace_back([&, t] {
      std::vector<std::future<int>> futures;
      futures.reserve(kTasksPerSubmitter);
      for (int k = 0; k < kTasksPerSubmitter; ++k)
        futures.push_back(pool.submit([t, k] { return t * 1000 + k; }));
      for (int k = 0; k < kTasksPerSubmitter; ++k)
        sums[t] += futures[static_cast<std::size_t>(k)].get();
    });
  }

  for (auto& thread : submitters) thread.join();
  for (auto& thread : drivers) thread.join();
  done.store(true);
  size_reader.join();

  for (int t = 0; t < kSubmitters; ++t) {
    long expected = 0;
    for (int k = 0; k < kTasksPerSubmitter; ++k) expected += t * 1000 + k;
    EXPECT_EQ(sums[t], expected);
  }
  for (const auto& slot : slots)
    for (int value : slot) EXPECT_EQ(value, 4);
}

TEST(ThreadPoolStress, ExceptionsUnderConcurrentBatchesStayContained) {
  util::ThreadPool pool(2);
  for (int round = 0; round < 8; ++round) {
    EXPECT_THROW(
        pool.parallel_for(64,
                          [](std::size_t i) {
                            if (i == 13) throw std::runtime_error("boom");
                          }),
        std::runtime_error);
    // The pool must remain fully usable after a failed batch.
    std::atomic<int> ran{0};
    pool.parallel_for(16, [&](std::size_t) { ran.fetch_add(1); });
    EXPECT_EQ(ran.load(), 16);
  }
}

// --- ControllerServer ------------------------------------------------------

TEST(ControllerServerStress, SubmittersStatsReadersDrainAndShutdown) {
  constexpr int kSubmitters = 6;
  constexpr int kRequestsPerSubmitter = 150;

  serve::ServeConfig config;
  config.max_batch = 8;
  config.max_wait = std::chrono::microseconds(50);
  config.num_workers = 2;
  config.rows_per_chunk = 4;
  config.num_dispatchers = 2;
  config.num_shards = 2;  // rings far larger than total traffic: no sheds.
  serve::ControllerServer server(config);

  const auto student = make_student(11);
  // Half-open certificate: states with |x| <= 1 are certified, the rest go
  // to the fallback, so both execution paths run under contention.
  server.register_controller(
      "stress", student, std::make_shared<MarkController>(),
      serve::SafetyMonitor::inside_box(
          sys::Box{{-1.0, -1.0}, {1.0, 1.0}}));

  std::atomic<bool> done{false};
  std::atomic<long> answered{0};
  std::atomic<long> rejected{0};

  // Stats reader: counters() must be callable at any moment and only ever
  // observe monotonic values.
  std::thread stats_reader([&] {
    std::uint64_t last_answered = 0;
    while (!done.load()) {
      const auto counters = server.counters("stress");
      const std::uint64_t answered = counters.primary + counters.fallback;
      EXPECT_GE(answered, last_answered);
      last_answered = answered;
      std::this_thread::yield();
    }
  });

  // A drainer interleaves drain() with live traffic.
  std::thread drainer([&] {
    while (!done.load()) {
      server.drain();
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> submitters;
  for (int t = 0; t < kSubmitters; ++t) {
    submitters.emplace_back([&, t] {
      for (int k = 0; k < kRequestsPerSubmitter; ++k) {
        // Deterministic mixed workload: ~half certified, ~half fallback.
        const double x = (k % 2 == 0) ? 0.25 : 3.0;
        // submit() never throws for valid arguments — after stop() it
        // returns a rejected future (the pinned shutdown contract).
        auto future = server.submit("stress", Vec{x, 0.01 * t});
        try {
          const Vec action = future.get();
          answered.fetch_add(1);
          ASSERT_EQ(action.size(), 1u);
          if (k % 2 != 0) {
            ASSERT_EQ(action[0], MarkController::kMark);
          }
        } catch (const serve::RejectedError& error) {
          // stop() won the race.  The queues are sized far above the total
          // request count, so shutdown is the only legitimate rejection.
          ASSERT_EQ(error.reason(), serve::RejectReason::kShutdown);
          rejected.fetch_add(1);
        }
      }
    });
  }

  // Let traffic build, then stop the server while submitters are still
  // running: accepted requests must all have been answered (future.get()
  // above would otherwise hang), later submits must come back rejected.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  server.stop();

  for (auto& thread : submitters) thread.join();
  done.store(true);
  drainer.join();
  stats_reader.join();

  EXPECT_EQ(answered.load() + rejected.load(),
            static_cast<long>(kSubmitters) * kRequestsPerSubmitter);
  const auto counters = server.counters("stress");
  EXPECT_EQ(static_cast<long>(counters.primary + counters.fallback),
            answered.load());
  EXPECT_EQ(static_cast<long>(counters.accepted), answered.load());
  EXPECT_EQ(static_cast<long>(counters.rejected), rejected.load());
  EXPECT_EQ(counters.shed, 0u);
  auto post_stop = server.submit("stress", Vec{0.0, 0.0});
  EXPECT_THROW((void)post_stop.get(), serve::RejectedError);
}

// The sharded-dispatcher acceptance stress: multiple dispatchers over more
// shards, rings sized small enough that contention genuinely sheds, and the
// admission accounting must still be exact — every submission ends up in
// exactly one of {answered, shed}, the server-side counters agree with the
// client-side tallies, and the per-shard breakdown sums to the totals.
TEST(ControllerServerStress, ShardedDispatchersShedExactlyUnderContention) {
  constexpr int kSubmitters = 8;
  constexpr int kRequestsPerSubmitter = 200;

  serve::ServeConfig config;
  config.max_batch = 4;
  config.max_wait = std::chrono::microseconds(20);
  config.num_dispatchers = 2;
  config.num_shards = 4;
  config.shard_capacity = 8;  // tiny rings: floods genuinely shed.
  serve::ControllerServer server(config);
  server.register_controller(
      "sharded", make_student(23), std::make_shared<MarkController>(),
      serve::SafetyMonitor::inside_box(sys::Box{{-1.0, -1.0}, {1.0, 1.0}}));

  std::atomic<long> answered{0};
  std::atomic<long> shed{0};
  std::vector<std::thread> submitters;
  for (int t = 0; t < kSubmitters; ++t) {
    submitters.emplace_back([&, t] {
      for (int k = 0; k < kRequestsPerSubmitter; ++k) {
        const double x = (k % 2 == 0) ? 0.25 : 3.0;
        auto future = server.submit("sharded", Vec{x, 0.01 * t});
        try {
          const Vec action = future.get();
          answered.fetch_add(1);
          if (k % 2 != 0) ASSERT_EQ(action[0], MarkController::kMark);
        } catch (const serve::RejectedError& error) {
          ASSERT_EQ(error.reason(), serve::RejectReason::kQueueFull);
          shed.fetch_add(1);
        }
      }
    });
  }
  for (auto& thread : submitters) thread.join();
  server.drain();

  constexpr long kTotal = static_cast<long>(kSubmitters) *
                          kRequestsPerSubmitter;
  EXPECT_EQ(answered.load() + shed.load(), kTotal);
  const auto counters = server.counters("sharded");
  EXPECT_EQ(static_cast<long>(counters.accepted), answered.load());
  EXPECT_EQ(static_cast<long>(counters.shed), shed.load());
  EXPECT_EQ(counters.rejected, 0u);
  EXPECT_EQ(static_cast<long>(counters.accepted + counters.shed), kTotal);
  EXPECT_EQ(counters.primary + counters.fallback, counters.accepted);
  ASSERT_EQ(counters.shards.size(), 4u);
  std::uint64_t by_shard_accepted = 0, by_shard_shed = 0;
  for (const auto& shard : counters.shards) {
    by_shard_accepted += shard.accepted;
    by_shard_shed += shard.shed;
  }
  EXPECT_EQ(by_shard_accepted, counters.accepted);
  EXPECT_EQ(by_shard_shed, counters.shed);
}

TEST(ControllerServerStress, RegistrationUnderLiveTraffic) {
  serve::ServeConfig config;
  config.max_batch = 4;
  config.max_wait = std::chrono::microseconds(20);
  config.num_dispatchers = 2;
  config.num_shards = 2;
  serve::ControllerServer server(config);
  server.register_controller("base", make_student(1),
                             std::make_shared<MarkController>(),
                             serve::SafetyMonitor::trust_all());

  std::atomic<bool> done{false};
  std::thread traffic([&] {
    while (!done.load()) {
      auto future = server.submit("base", Vec{0.1, -0.1});
      (void)future.get();
    }
  });

  // Registering new controllers must never disturb in-flight requests on
  // existing ones (registry_mutex_ is independent of the queue).
  for (int k = 0; k < 32; ++k) {
    server.register_controller("ctl-" + std::to_string(k),
                               make_student(100 + k),
                               std::make_shared<MarkController>(),
                               serve::SafetyMonitor::trust_all());
    auto future = server.submit("ctl-" + std::to_string(k), Vec{0.2, 0.2});
    EXPECT_EQ(future.get().size(), 1u);
  }

  done.store(true);
  traffic.join();
  EXPECT_GT(server.counters("base").primary, 0u);
}

}  // namespace
}  // namespace cocktail
