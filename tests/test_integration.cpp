// Integration test: a miniature end-to-end Cocktail pipeline on the Van der
// Pol oscillator with reduced training budgets.  Verifies the pieces fit —
// experts train, mixing/switching learn, students distill, metrics and
// verification consume the artifacts — not the paper-scale numbers (the
// benches do that).
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "core/expert_trainer.h"
#include "core/metrics.h"
#include "core/mixing.h"
#include "core/pipeline.h"
#include "sys/registry.h"
#include "verify/invariant.h"

namespace cocktail {
namespace {

/// Shrinks every training budget so the test completes in seconds.
core::PipelineConfig tiny_pipeline_config() {
  core::PipelineConfig config = core::default_pipeline_config("vanderpol");
  config.seed = 777;
  config.use_cache = false;
  config.mixing.ppo.iterations = 4;
  config.mixing.ppo.steps_per_iteration = 400;
  config.mixing.ppo.update_epochs = 3;
  config.switching.ppo.iterations = 4;
  config.switching.ppo.steps_per_iteration = 400;
  config.switching.ppo.update_epochs = 3;
  config.distill.teacher_rollouts = 4;
  config.distill.uniform_samples = 500;
  config.distill.epochs = 30;
  config.distill.student_hidden = {16, 16};
  return config;
}

class PipelineIntegration : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    // Train tiny experts once for the whole suite.
    system_ = sys::make_system("vanderpol");
    auto specs = core::default_expert_specs("vanderpol", 777);
    for (auto& spec : specs) {
      spec.ddpg.episodes = 12;
      spec.ddpg.warmup_steps = 200;
      experts_.push_back(core::train_ddpg_expert(system_, spec));
    }
  }

  static sys::SystemPtr system_;
  static std::vector<ctrl::ControllerPtr> experts_;
};

sys::SystemPtr PipelineIntegration::system_;
std::vector<ctrl::ControllerPtr> PipelineIntegration::experts_;

TEST_F(PipelineIntegration, ExpertsAreUsableControllers) {
  ASSERT_EQ(experts_.size(), 2u);
  for (const auto& expert : experts_) {
    EXPECT_EQ(expert->state_dim(), 2u);
    EXPECT_EQ(expert->control_dim(), 1u);
    EXPECT_GT(expert->lipschitz_bound(), 0.0);
    // Output respects its action scaling (<= full control authority).
    EXPECT_LE(std::abs(expert->act({1.0, 1.0})[0]), 20.0);
  }
}

TEST_F(PipelineIntegration, MixingProducesBoundedWeights) {
  auto config = tiny_pipeline_config();
  const auto result =
      core::train_adaptive_mixing(system_, experts_, config.mixing);
  ASSERT_NE(result.controller, nullptr);
  util::Rng rng(1);
  for (int k = 0; k < 50; ++k) {
    const la::Vec s = system_->initial_set().sample(rng);
    const la::Vec weights = result.controller->weights(s);
    ASSERT_EQ(weights.size(), 2u);
    for (double w : weights)
      EXPECT_LE(std::abs(w), config.mixing.weight_bound + 1e-9);
    EXPECT_LE(std::abs(result.controller->act(s)[0]), 20.0);  // Eq.(4) clip.
  }
}

TEST_F(PipelineIntegration, ZeroIterationMixingKeepsInitialPolicy) {
  // iterations == 0 must not score an untrained net (the old chunk_sizes
  // yielded a single empty chunk); it returns the initial policy directly.
  auto config = tiny_pipeline_config();
  config.mixing.ppo.iterations = 0;
  const auto result =
      core::train_adaptive_mixing(system_, experts_, config.mixing);
  ASSERT_NE(result.controller, nullptr);
  EXPECT_TRUE(result.stats.iteration_mean_returns.empty());
  // The untrained mixer is still a usable, clipped controller.
  EXPECT_LE(std::abs(result.controller->act({0.5, 0.5})[0]), 20.0);
}

TEST_F(PipelineIntegration, SwitchingSelectsRealExperts) {
  auto config = tiny_pipeline_config();
  const auto result =
      core::train_switching(system_, experts_, config.switching);
  util::Rng rng(2);
  for (int k = 0; k < 20; ++k) {
    const la::Vec s = system_->initial_set().sample(rng);
    EXPECT_LT(result.controller->selected_expert(s), experts_.size());
  }
}

TEST_F(PipelineIntegration, EndToEndPipelineArtifacts) {
  auto config = tiny_pipeline_config();
  const auto artifacts = core::run_pipeline(system_, config);
  ASSERT_EQ(artifacts.experts.size(), 2u);
  ASSERT_NE(artifacts.mixed, nullptr);
  ASSERT_NE(artifacts.switching, nullptr);
  ASSERT_NE(artifacts.direct_student, nullptr);
  ASSERT_NE(artifacts.robust_student, nullptr);

  // Students are verifiable (certified L), teacher is not — as in Table I.
  EXPECT_GT(artifacts.robust_student->lipschitz_bound(), 0.0);
  EXPECT_GT(artifacts.direct_student->lipschitz_bound(), 0.0);
  EXPECT_LT(artifacts.mixed->lipschitz_bound(), 0.0);

  // Table row helper covers all six columns.
  const auto rows = artifacts.table_row_controllers();
  ASSERT_EQ(rows.size(), 6u);
  EXPECT_EQ(rows[0].first, "k1");
  EXPECT_EQ(rows[5].first, "k*");

  // Metrics run end to end on every artifact.
  core::EvalConfig eval;
  eval.num_initial_states = 30;
  eval.seed = 5;
  for (const auto& [label, controller] : rows) {
    const auto result = core::evaluate(*system_, *controller, eval);
    EXPECT_EQ(result.num_total, 30) << label;
    EXPECT_GE(result.safe_rate, 0.0);
    EXPECT_LE(result.safe_rate, 1.0);
  }
}

TEST_F(PipelineIntegration, PipelineCachingRoundTrips) {
  const std::string cache_dir = "test_cache_integration";
  setenv("COCKTAIL_MODEL_DIR", cache_dir.c_str(), 1);
  auto config = tiny_pipeline_config();
  config.use_cache = true;
  config.seed = 778;
  const auto first = core::run_pipeline(system_, config);
  const auto second = core::run_pipeline(system_, config);  // from cache.
  // Cached reload must reproduce identical student behaviour.
  const la::Vec probe = {0.4, -0.3};
  EXPECT_DOUBLE_EQ(first.robust_student->act(probe)[0],
                   second.robust_student->act(probe)[0]);
  EXPECT_DOUBLE_EQ(first.mixed->act(probe)[0], second.mixed->act(probe)[0]);
  unsetenv("COCKTAIL_MODEL_DIR");
  std::filesystem::remove_all(cache_dir);
}

TEST_F(PipelineIntegration, StudentsFeedVerification) {
  auto config = tiny_pipeline_config();
  config.seed = 779;
  const auto distilled = core::distill(
      *system_, *experts_[0], config.distill, "verify-subject");
  verify::InvariantConfig inv_config;
  inv_config.grid = {16, 16};
  inv_config.abstraction.epsilon_target = 1.5;
  inv_config.abstraction.max_degree = 4;
  const verify::InvariantSetComputer computer(system_, *distilled.student,
                                              inv_config);
  const auto result = computer.compute();
  // Whatever the volume, the computation must complete within budget for a
  // robust-distilled small student.
  EXPECT_TRUE(result.completed) << result.failure;
}

}  // namespace
}  // namespace cocktail
