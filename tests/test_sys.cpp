// Unit tests for src/sys: paper dynamics, safe/initial/control sets,
// linearizations (checked against finite differences), registry.
#include <gtest/gtest.h>

#include <cmath>

#include "sys/cartpole.h"
#include "sys/registry.h"
#include "sys/threed.h"
#include "sys/vanderpol.h"

namespace cocktail {
namespace {

using la::Vec;

TEST(Box, ContainsAndSample) {
  const sys::Box box({-1.0, 0.0}, {1.0, 2.0});
  EXPECT_TRUE(box.contains({0.0, 1.0}));
  EXPECT_FALSE(box.contains({1.5, 1.0}));
  EXPECT_FALSE(box.contains({0.0, -0.1}));
  util::Rng rng(1);
  for (int k = 0; k < 100; ++k) EXPECT_TRUE(box.contains(box.sample(rng)));
}

TEST(Box, CenterAndHalfWidths) {
  const sys::Box box({-1.0, 0.0}, {3.0, 2.0});
  EXPECT_EQ(box.center(), (Vec{1.0, 1.0}));
  EXPECT_EQ(box.half_widths(), (Vec{2.0, 1.0}));
}

TEST(Box, RejectsInvertedBounds) {
  EXPECT_THROW(sys::Box({1.0}, {0.0}), std::invalid_argument);
}

TEST(Box, UnboundedDetection) {
  const sys::Box bounded = sys::Box::symmetric(2, 1.0);
  EXPECT_TRUE(bounded.bounded());
  const sys::Box open({-sys::Box::kUnbounded}, {1.0});
  EXPECT_FALSE(open.bounded());
  util::Rng rng(2);
  EXPECT_THROW((void)open.sample(rng), std::logic_error);
}

TEST(VanDerPolTest, PaperConstants) {
  const sys::VanDerPol vdp;
  EXPECT_EQ(vdp.state_dim(), 2u);
  EXPECT_EQ(vdp.control_dim(), 1u);
  EXPECT_EQ(vdp.horizon(), 100);
  EXPECT_DOUBLE_EQ(vdp.dt(), 0.05);
  EXPECT_EQ(vdp.safe_region().lo, (Vec{-2.0, -2.0}));
  EXPECT_EQ(vdp.control_bounds().hi, (Vec{20.0}));
  EXPECT_EQ(vdp.disturbance_bounds().hi, (Vec{0.05}));
}

TEST(VanDerPolTest, StepMatchesHandComputation) {
  const sys::VanDerPol vdp;
  // s1' = s1 + tau*s2; s2' = s2 + tau*((1-s1^2)s2 - s1 + u) + w.
  const Vec next = vdp.step({1.0, 2.0}, {3.0}, {0.01});
  EXPECT_NEAR(next[0], 1.0 + 0.05 * 2.0, 1e-15);
  EXPECT_NEAR(next[1], 2.0 + 0.05 * ((1.0 - 1.0) * 2.0 - 1.0 + 3.0) + 0.01,
              1e-15);
}

TEST(VanDerPolTest, UncontrolledDivergesFromLargeAmplitude) {
  // The Van der Pol limit cycle exceeds |s1| = 2 near its extremes, so the
  // uncontrolled system can leave X — the safety problem is non-trivial.
  const sys::VanDerPol vdp;
  Vec s = {1.9, 1.2};
  bool left = false;
  for (int t = 0; t < 300 && !left; ++t) {
    s = vdp.step(s, {0.0}, {0.0});
    left = !vdp.is_safe(s);
  }
  EXPECT_TRUE(left);
}

TEST(VanDerPolTest, LinearizationMatchesFiniteDifference) {
  const sys::VanDerPol vdp;
  la::Matrix a, b;
  vdp.linearize(a, b);
  const double h = 1e-6;
  for (std::size_t j = 0; j < 2; ++j) {
    Vec sp = {0.0, 0.0}, sm = {0.0, 0.0};
    sp[j] += h;
    sm[j] -= h;
    const Vec fp = vdp.step(sp, {0.0}, {0.0});
    const Vec fm = vdp.step(sm, {0.0}, {0.0});
    for (std::size_t i = 0; i < 2; ++i)
      EXPECT_NEAR(a(i, j), (fp[i] - fm[i]) / (2.0 * h), 1e-6);
  }
  const Vec fp = vdp.step({0.0, 0.0}, {h}, {0.0});
  const Vec fm = vdp.step({0.0, 0.0}, {-h}, {0.0});
  for (std::size_t i = 0; i < 2; ++i)
    EXPECT_NEAR(b(i, 0), (fp[i] - fm[i]) / (2.0 * h), 1e-6);
}

TEST(ThreeDTest, PaperConstants) {
  const sys::ThreeD sys3;
  EXPECT_EQ(sys3.state_dim(), 3u);
  EXPECT_EQ(sys3.horizon(), 100);
  EXPECT_EQ(sys3.safe_region().hi, (Vec{0.5, 0.5, 0.5}));
  EXPECT_EQ(sys3.control_bounds().hi, (Vec{10.0}));
  EXPECT_EQ(sys3.disturbance_dim(), 0u);
}

TEST(ThreeDTest, StepMatchesHandComputation) {
  const sys::ThreeD sys3;
  // x' = x + tau*(y + 0.5 z^2); y' = y + tau*z; z' = z + tau*u.
  const Vec next = sys3.step({0.1, 0.2, 0.4}, {2.0}, {});
  EXPECT_NEAR(next[0], 0.1 + 0.05 * (0.2 + 0.5 * 0.16), 1e-15);
  EXPECT_NEAR(next[1], 0.2 + 0.05 * 0.4, 1e-15);
  EXPECT_NEAR(next[2], 0.4 + 0.05 * 2.0, 1e-15);
}

TEST(ThreeDTest, LinearizationIsTripleIntegrator) {
  const sys::ThreeD sys3;
  la::Matrix a, b;
  sys3.linearize(a, b);
  EXPECT_DOUBLE_EQ(a(0, 1), 0.05);
  EXPECT_DOUBLE_EQ(a(1, 2), 0.05);
  EXPECT_DOUBLE_EQ(a(0, 2), 0.0);  // z² term vanishes at origin.
  EXPECT_DOUBLE_EQ(b(2, 0), 0.05);
}

TEST(CartPoleTest, PaperConstants) {
  const sys::CartPole cp;
  EXPECT_EQ(cp.state_dim(), 4u);
  EXPECT_EQ(cp.horizon(), 200);
  EXPECT_DOUBLE_EQ(cp.dt(), 0.02);
  EXPECT_DOUBLE_EQ(cp.params().mass_total(), 1.1);
  const sys::Box x = cp.safe_region();
  EXPECT_DOUBLE_EQ(x.lo[0], -2.4);
  EXPECT_DOUBLE_EQ(x.hi[2], 0.209);
  EXPECT_FALSE(x.bounded());  // velocities unconstrained.
  EXPECT_TRUE(cp.sampling_region().bounded());
  EXPECT_EQ(cp.initial_set().hi, (Vec{0.2, 0.2, 0.2, 0.2}));
}

TEST(CartPoleTest, UprightIsEquilibrium) {
  const sys::CartPole cp;
  const Vec origin = {0.0, 0.0, 0.0, 0.0};
  const Vec next = cp.step(origin, {0.0}, {});
  for (double v : next) EXPECT_NEAR(v, 0.0, 1e-15);
}

TEST(CartPoleTest, PoleFallsWithoutControl) {
  const sys::CartPole cp;
  Vec s = {0.0, 0.0, 0.05, 0.0};
  bool fell = false;
  for (int t = 0; t < 400 && !fell; ++t) {
    s = cp.step(s, {0.0}, {});
    fell = !cp.is_safe(s);
  }
  EXPECT_TRUE(fell);
  EXPECT_GT(s[2], 0.0);  // falls toward the initial tilt.
}

TEST(CartPoleTest, PushAcceleratesCart) {
  const sys::CartPole cp;
  const Vec next = cp.step({0.0, 0.0, 0.0, 0.0}, {5.0}, {});
  EXPECT_GT(next[1], 0.0);  // positive force -> positive cart acceleration.
  EXPECT_LT(next[3], 0.0);  // ...and the pole tips backward.
}

TEST(CartPoleTest, LinearizationMatchesFiniteDifference) {
  const sys::CartPole cp;
  la::Matrix a, b;
  cp.linearize(a, b);
  const double h = 1e-6;
  const Vec origin = {0.0, 0.0, 0.0, 0.0};
  for (std::size_t j = 0; j < 4; ++j) {
    Vec sp = origin, sm = origin;
    sp[j] += h;
    sm[j] -= h;
    const Vec fp = cp.step(sp, {0.0}, {});
    const Vec fm = cp.step(sm, {0.0}, {});
    for (std::size_t i = 0; i < 4; ++i)
      EXPECT_NEAR(a(i, j), (fp[i] - fm[i]) / (2.0 * h), 1e-5)
          << "A(" << i << "," << j << ")";
  }
  const Vec fp = cp.step(origin, {h}, {});
  const Vec fm = cp.step(origin, {-h}, {});
  for (std::size_t i = 0; i < 4; ++i)
    EXPECT_NEAR(b(i, 0), (fp[i] - fm[i]) / (2.0 * h), 1e-5);
}

TEST(SystemBase, ClipControl) {
  const sys::VanDerPol vdp;
  EXPECT_EQ(vdp.clip_control({25.0}), (Vec{20.0}));
  EXPECT_EQ(vdp.clip_control({-25.0}), (Vec{-20.0}));
  EXPECT_EQ(vdp.clip_control({3.0}), (Vec{3.0}));
}

TEST(SystemBase, SampleInitialStateInsideX0) {
  util::Rng rng(3);
  for (const auto& name : sys::system_names()) {
    const auto system = sys::make_system(name);
    for (int k = 0; k < 50; ++k)
      EXPECT_TRUE(
          system->initial_set().contains(system->sample_initial_state(rng)));
  }
}

TEST(SystemBase, DisturbanceWithinBounds) {
  const sys::VanDerPol vdp;
  util::Rng rng(4);
  for (int k = 0; k < 200; ++k) {
    const Vec w = vdp.sample_disturbance(rng);
    ASSERT_EQ(w.size(), 1u);
    EXPECT_LE(std::abs(w[0]), 0.05);
  }
  const sys::ThreeD sys3;
  EXPECT_TRUE(sys3.sample_disturbance(rng).empty());
}

TEST(Registry, BuildsAllPaperSystems) {
  EXPECT_EQ(sys::system_names().size(), 3u);
  for (const auto& name : sys::system_names())
    EXPECT_EQ(sys::make_system(name)->name(), name);
  EXPECT_THROW(sys::make_system("pendulum"), std::invalid_argument);
}

TEST(TemplatedDynamics, DoubleInstantiationMatchesVirtualStep) {
  const sys::VanDerPol vdp;
  const auto direct =
      sys::vanderpol_step<double>({0.5, -0.25}, 2.0, 0.01, 0.05);
  const Vec via_virtual = vdp.step({0.5, -0.25}, {2.0}, {0.01});
  EXPECT_DOUBLE_EQ(direct[0], via_virtual[0]);
  EXPECT_DOUBLE_EQ(direct[1], via_virtual[1]);
}

}  // namespace
}  // namespace cocktail
