// Tests for util::ThreadPool: sizing, submit futures, parallel_for index
// coverage, exception propagation, and the shared pool.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "util/mutex.h"
#include "util/thread_pool.h"

namespace cocktail {
namespace {

TEST(ThreadPool, ExplicitSizeIsHonored) {
  util::ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
}

TEST(ThreadPool, DefaultSizeIsAtLeastOne) {
  util::ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, SubmitReturnsResults) {
  util::ThreadPool pool(2);
  auto doubled = pool.submit([] { return 21 * 2; });
  auto text = pool.submit([] { return std::string("ok"); });
  EXPECT_EQ(doubled.get(), 42);
  EXPECT_EQ(text.get(), "ok");
}

TEST(ThreadPool, SubmitPropagatesExceptions) {
  util::ThreadPool pool(1);
  auto failing = pool.submit(
      []() -> int { throw std::runtime_error("submit boom"); });
  EXPECT_THROW(failing.get(), std::runtime_error);
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  for (const int workers : {1, 2, 4}) {
    util::ThreadPool pool(workers);
    constexpr std::size_t kN = 1000;
    std::vector<std::atomic<int>> hits(kN);
    pool.parallel_for(kN, [&](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < kN; ++i)
      ASSERT_EQ(hits[i].load(), 1) << "index " << i << ", " << workers
                                   << " workers";
  }
}

TEST(ThreadPool, ParallelForHandlesEmptyAndSingletonBatches) {
  util::ThreadPool pool(2);
  int calls = 0;
  pool.parallel_for(0, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  pool.parallel_for(1, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPool, ParallelForHandlesBatchesSmallerThanPool) {
  util::ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(3);
  pool.parallel_for(3, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (auto& hit : hits) EXPECT_EQ(hit.load(), 1);
}

TEST(ThreadPool, ParallelForPropagatesTheFirstException) {
  util::ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(100,
                        [](std::size_t i) {
                          if (i == 37) throw std::runtime_error("loop boom");
                        }),
      std::runtime_error);
  // The pool stays usable afterwards.
  std::atomic<int> count{0};
  pool.parallel_for(10, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPool, ParallelForRunsConsecutiveBatches) {
  util::ThreadPool pool(2);
  std::atomic<long> sum{0};
  for (int round = 0; round < 5; ++round)
    pool.parallel_for(100, [&](std::size_t i) {
      sum.fetch_add(static_cast<long>(i));
    });
  EXPECT_EQ(sum.load(), 5 * (99 * 100 / 2));
}

TEST(ChunkedReduce, VisitsEveryIndexInOrder) {
  // The chunk structure and merge order are fixed, so the merged list of
  // visited indices must come out exactly ordered — for any pool.
  util::ThreadPool pool(4);
  for (const std::size_t grain : {1u, 3u, 8u, 100u}) {
    const auto visited = util::chunked_reduce(
        &pool, 37, grain, [] { return std::vector<std::size_t>(); },
        [](std::vector<std::size_t>& acc, std::size_t i) { acc.push_back(i); },
        [](std::vector<std::size_t>& into, std::vector<std::size_t>& from) {
          into.insert(into.end(), from.begin(), from.end());
        });
    ASSERT_EQ(visited.size(), 37u) << "grain " << grain;
    for (std::size_t i = 0; i < visited.size(); ++i)
      ASSERT_EQ(visited[i], i) << "grain " << grain;
  }
}

TEST(ChunkedReduce, FloatSumBitwiseIdenticalForAnyWorkerCount) {
  // The whole point of the fixed reduction tree: non-associative FP sums
  // still come out bitwise equal, serial or parallel, any pool size.
  const auto term = [](std::size_t i) {
    return 1.0 / (1.0 + static_cast<double>(i) * 0.7);
  };
  const auto sum_with = [&](util::ThreadPool* pool) {
    return util::chunked_reduce(
        pool, 1000, 16, [] { return 0.0; },
        [&](double& acc, std::size_t i) { acc += term(i); },
        [](double& into, const double& from) { into += from; });
  };
  const double serial = sum_with(nullptr);
  for (const int workers : {1, 2, 3, 8}) {
    util::ThreadPool pool(workers);
    EXPECT_EQ(sum_with(&pool), serial) << workers << " workers";
    EXPECT_EQ(pool.parallel_reduce(
                  1000, 16, [] { return 0.0; },
                  [&](double& acc, std::size_t i) { acc += term(i); },
                  [](double& into, const double& from) { into += from; }),
              serial)
        << workers << " workers (member)";
  }
}

TEST(ChunkedReduce, EmptyRangeReturnsTheIdentity) {
  util::ThreadPool pool(2);
  const double empty = util::chunked_reduce(
      &pool, 0, 8, [] { return -1.5; },
      [](double& acc, std::size_t) { acc += 1.0; },
      [](double& into, const double& from) { into += from; });
  EXPECT_EQ(empty, -1.5);
}

TEST(ChunkedReduce, ZeroGrainIsTreatedAsOne) {
  const auto count = util::chunked_reduce(
      nullptr, 5, 0, [] { return 0; },
      [](int& acc, std::size_t) { ++acc; },
      [](int& into, const int& from) { into += from; });
  EXPECT_EQ(count, 5);
}

TEST(WorkerScope, ResolvesTheSharedConvention) {
  const util::WorkerScope serial(1);
  EXPECT_EQ(serial.pool(), nullptr);
  const util::WorkerScope shared(0);
  EXPECT_EQ(shared.pool(), &util::ThreadPool::shared());
  const util::WorkerScope dedicated(3);
  ASSERT_NE(dedicated.pool(), nullptr);
  EXPECT_NE(dedicated.pool(), &util::ThreadPool::shared());
  EXPECT_EQ(dedicated.pool()->size(), 3u);
}

TEST(ThreadPool, SubmitFromOwnWorkerIsRejected) {
  // A worker enqueueing into its own pool and blocking on the result is the
  // nested-submission deadlock ROADMAP flags; the pool must refuse at the
  // source instead of hanging.
  util::ThreadPool pool(2);
  auto outer = pool.submit([&pool]() -> bool {
    EXPECT_TRUE(pool.inside_worker());
    try {
      (void)pool.submit([] { return 1; });
    } catch (const std::logic_error&) {
      return true;  // rejected, as required.
    }
    return false;
  });
  EXPECT_TRUE(outer.get());
  EXPECT_FALSE(pool.inside_worker());  // the test thread is not a worker.
}

TEST(ThreadPool, SubmitToADifferentPoolFromAWorkerIsAllowed) {
  util::ThreadPool pool(1);
  util::ThreadPool other(1);
  auto outer = pool.submit(
      [&other] { return other.submit([] { return 7; }).get(); });
  EXPECT_EQ(outer.get(), 7);
}

TEST(ThreadPool, NestedParallelForRunsInlineWithFullCoverage) {
  // parallel_for from inside a worker degrades to an inline loop: same
  // coverage, no queue interaction, no deadlock.
  util::ThreadPool pool(2);
  constexpr std::size_t kOuter = 8;
  constexpr std::size_t kInner = 50;
  std::vector<std::atomic<int>> hits(kOuter * kInner);
  pool.parallel_for(kOuter, [&](std::size_t i) {
    pool.parallel_for(kInner, [&](std::size_t j) {
      hits[i * kInner + j].fetch_add(1);
    });
  });
  for (std::size_t k = 0; k < hits.size(); ++k)
    ASSERT_EQ(hits[k].load(), 1) << "slot " << k;
}

TEST(ThreadPool, SharedPoolIsASingleton) {
  util::ThreadPool& a = util::ThreadPool::shared();
  util::ThreadPool& b = util::ThreadPool::shared();
  EXPECT_EQ(&a, &b);
  EXPECT_GE(a.size(), 1u);
}

// --- the annotated mutex/condvar wrappers (util/mutex.h) -------------------

TEST(Mutex, TryLockReportsContention) {
  util::Mutex mutex;
  {
    const util::MutexLock lock(mutex);
    std::thread outsider([&] { EXPECT_FALSE(mutex.try_lock()); });
    outsider.join();
  }
  // Released by the scope above; the same thread can now take it.
  ASSERT_TRUE(mutex.try_lock());
  mutex.unlock();
}

TEST(Mutex, MutexLockUnlockRelockWindowReleasesTheCapability) {
  // The Unlock()/Lock() window is what lets the serve dispatcher run a
  // batch without holding queue_mutex_; prove another thread can enter
  // the window and its writes are visible after relock.
  util::Mutex mutex;
  int guarded = 0;  // test-local; guarded by `mutex` by convention
  util::MutexLock lock(mutex);
  guarded = 1;
  lock.Unlock();
  std::thread visitor([&] {
    const util::MutexLock inner(mutex);
    EXPECT_EQ(guarded, 1);
    guarded = 2;
  });
  visitor.join();
  lock.Lock();
  EXPECT_EQ(guarded, 2);
}

TEST(CondVar, PredicateWaitSeesNotifiedState) {
  util::Mutex mutex;
  util::CondVar cv;
  bool ready = false;  // guarded by `mutex` by convention
  std::thread producer([&] {
    {
      const util::MutexLock lock(mutex);
      ready = true;
    }
    cv.notify_one();
  });
  {
    util::MutexLock lock(mutex);
    cv.wait(lock, [&] { return ready; });
    EXPECT_TRUE(ready);
  }
  producer.join();
}

TEST(CondVar, WaitForTimesOutWhenNothingNotifies) {
  util::Mutex mutex;
  util::CondVar cv;
  util::MutexLock lock(mutex);
  const bool satisfied = cv.wait_for(lock, std::chrono::milliseconds(5),
                                     [] { return false; });
  EXPECT_FALSE(satisfied);
}

}  // namespace
}  // namespace cocktail
