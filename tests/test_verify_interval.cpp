// Unit + property tests for interval arithmetic: every operation's result
// must contain the pointwise result for sampled members (inclusion
// property), plus box utilities and the interval-instantiated dynamics.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "sys/cartpole.h"
#include "sys/threed.h"
#include "sys/vanderpol.h"
#include "util/rng.h"
#include "verify/interval.h"
#include "verify/interval_dynamics.h"

namespace cocktail {
namespace {

using verify::IBox;
using verify::Interval;

TEST(IntervalOps, BasicArithmetic) {
  const Interval a(1.0, 2.0), b(-1.0, 3.0);
  EXPECT_LE((a + b).lo(), 0.0);
  EXPECT_GE((a + b).hi(), 5.0);
  EXPECT_LE((a - b).lo(), -2.0);
  EXPECT_GE((a - b).hi(), 3.0);
  EXPECT_LE((a * b).lo(), -2.0);
  EXPECT_GE((a * b).hi(), 6.0);
}

TEST(IntervalOps, SquareIsNonNegativeAndTight) {
  const Interval x(-2.0, 1.0);
  const Interval sq = x.square();
  EXPECT_GE(sq.lo(), -1e-9);
  EXPECT_GE(sq.hi(), 4.0);
  EXPECT_LE(sq.hi(), 4.0 + 1e-9);
  // Naive x*x is looser: [-2, 4]; square() must be tighter at the bottom.
  EXPECT_GT(sq.lo(), (x * x).lo() + 1.0);
}

TEST(IntervalOps, DivisionByIntervalContainingZeroThrows) {
  EXPECT_THROW((void)(Interval(1.0, 2.0) / Interval(-1.0, 1.0)),
               std::domain_error);
}

TEST(IntervalOps, ClampTo) {
  const Interval x(-3.0, 5.0);
  const Interval clamped = x.clamp_to({-1.0, 1.0});
  EXPECT_DOUBLE_EQ(clamped.lo(), -1.0);
  EXPECT_DOUBLE_EQ(clamped.hi(), 1.0);
  // Entirely-outside interval collapses onto the boundary.
  const Interval outside = Interval(5.0, 7.0).clamp_to({-1.0, 1.0});
  EXPECT_DOUBLE_EQ(outside.lo(), 1.0);
  EXPECT_DOUBLE_EQ(outside.hi(), 1.0);
}

class IntervalInclusion : public ::testing::TestWithParam<int> {};

TEST_P(IntervalInclusion, OperationsContainSampledResults) {
  util::Rng rng(1000 + GetParam());
  for (int trial = 0; trial < 50; ++trial) {
    const double a_lo = rng.uniform(-3.0, 3.0);
    const Interval a(a_lo, a_lo + rng.uniform(0.0, 2.0));
    const double b_lo = rng.uniform(-3.0, 3.0);
    const Interval b(b_lo, b_lo + rng.uniform(0.0, 2.0));
    const double x = rng.uniform(a.lo(), a.hi());
    const double y = rng.uniform(b.lo(), b.hi());
    EXPECT_TRUE((a + b).contains(x + y));
    EXPECT_TRUE((a - b).contains(x - y));
    EXPECT_TRUE((a * b).contains(x * y));
    EXPECT_TRUE(a.square().contains(x * x));
    EXPECT_TRUE((a * 2.5).contains(x * 2.5));
    EXPECT_TRUE((a * -1.5).contains(x * -1.5));
    EXPECT_TRUE(verify::sin(a).contains(std::sin(x)));
    EXPECT_TRUE(verify::cos(a).contains(std::cos(x)));
    if (!b.contains(0.0)) {
      EXPECT_TRUE((a / b).contains(x / y));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IntervalInclusion, ::testing::Range(0, 8));

// --- non-finite edge contract (see the class comment in interval.h) --------

TEST(IntervalEdgeContract, NanEndpointsFailClosed) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  for (const Interval& broken :
       {Interval(nan), Interval(nan, 1.0), Interval(-1.0, nan),
        Interval(nan, nan)}) {
    EXPECT_FALSE(broken.valid());
    // A broken interval certifies nothing: no member, no enclosure, no
    // intersection — in both argument positions.
    EXPECT_FALSE(broken.contains(0.0));
    EXPECT_FALSE(broken.contains(Interval(0.0)));
    EXPECT_FALSE(broken.intersects(Interval(-10.0, 10.0)));
    EXPECT_FALSE(Interval(-10.0, 10.0).contains(broken));
    EXPECT_FALSE(Interval(-10.0, 10.0).intersects(broken));
  }
  // A NaN query point is never a member of a healthy interval either.
  EXPECT_FALSE(Interval(-1.0, 1.0).contains(nan));
}

TEST(IntervalEdgeContract, InfiniteEndpointsAreMeaningful) {
  // Unbounded safe-region dimensions use ±inf endpoints; the predicates
  // must keep working there (this is why the accepting-direction
  // comparisons carry waivers instead of isfinite guards).
  const double inf = std::numeric_limits<double>::infinity();
  const Interval half_line(0.0, inf);
  EXPECT_TRUE(half_line.valid());
  EXPECT_TRUE(half_line.contains(1e300));
  EXPECT_TRUE(half_line.contains(Interval(5.0, 1e18)));
  EXPECT_FALSE(half_line.contains(-1.0));
  const Interval everything(-inf, inf);
  EXPECT_TRUE(everything.contains(half_line));
  EXPECT_TRUE(everything.intersects(Interval(-3.0, -2.0)));
}

TEST(IntervalEdgeContract, OperationsOnValidInputsNeverShrinkContainment) {
  // Property: for valid finite operands, each op's enclosure contains the
  // exact rational-arithmetic endpoints (spot-checked via the operand
  // endpoints themselves, which every op's image must cover).
  util::Rng rng(77);
  for (int trial = 0; trial < 200; ++trial) {
    const double a_lo = rng.uniform(-1e3, 1e3);
    const Interval a(a_lo, a_lo + rng.uniform(0.0, 10.0));
    const double b_lo = rng.uniform(-1e3, 1e3);
    const Interval b(b_lo, b_lo + rng.uniform(0.0, 10.0));
    EXPECT_TRUE((a + b).contains(a.lo() + b.lo()));
    EXPECT_TRUE((a + b).contains(a.hi() + b.hi()));
    EXPECT_TRUE((a - b).contains(a.lo() - b.hi()));
    EXPECT_TRUE((a * b).contains(a.lo() * b.lo()));
    EXPECT_TRUE((a * b).contains(a.hi() * b.hi()));
    EXPECT_TRUE(a.inflate(0.5).contains(a.lo() - 0.5));
    EXPECT_TRUE(a.inflate(0.5).contains(a.hi() + 0.5));
    EXPECT_TRUE(a.square().contains(a.lo() * a.lo()));
  }
}

TEST(IntervalEdgeContract, NanProducingOperationsFailClosed) {
  // 0 * inf and inf - inf are NaN; intervals built from them must report
  // !valid() and certify nothing — never collapse to a tight finite bound.
  const double inf = std::numeric_limits<double>::infinity();
  const Interval nan_product = Interval(0.0) * Interval(inf);
  EXPECT_FALSE(nan_product.valid());
  EXPECT_FALSE(nan_product.contains(0.0));
  const Interval nan_difference = Interval(inf) - Interval(inf);
  EXPECT_FALSE(nan_difference.valid());
  EXPECT_FALSE(nan_difference.contains(0.0));
  // An honestly unbounded result stays unbounded, not NaN: [0,inf] - [0,inf]
  // spans every real difference.
  const Interval unbounded(0.0, inf);
  const Interval spread = unbounded - unbounded;
  EXPECT_TRUE(spread.valid());
  EXPECT_TRUE(spread.contains(12345.6789));
  EXPECT_TRUE(spread.contains(-12345.6789));
}

TEST(IntervalTrig, SinCoversExtremaInsideWindow) {
  // [0, pi] contains the max of sin.
  const Interval s = verify::sin(Interval(0.0, 3.2));
  EXPECT_GE(s.hi(), 1.0);
  EXPECT_LE(s.lo(), 0.0 + 1e-9);
  // Wide interval -> [-1, 1].
  const Interval wide = verify::sin(Interval(-10.0, 10.0));
  EXPECT_DOUBLE_EQ(wide.lo(), -1.0);
  EXPECT_DOUBLE_EQ(wide.hi(), 1.0);
}

TEST(BoxUtils, MakeAndQuery) {
  const IBox box = verify::make_box({-1.0, 0.0}, {1.0, 2.0});
  EXPECT_TRUE(verify::box_contains(box, {0.0, 1.0}));
  EXPECT_FALSE(verify::box_contains(box, {0.0, 2.5}));
  EXPECT_DOUBLE_EQ(verify::box_max_width(box), 2.0);
  EXPECT_EQ(verify::box_mid(box), (la::Vec{0.0, 1.0}));
}

TEST(BoxUtils, BisectSplitsWidestDimension) {
  const IBox box = verify::make_box({0.0, 0.0}, {1.0, 4.0});
  const auto [left, right] = verify::box_bisect(box);
  EXPECT_DOUBLE_EQ(left[1].hi(), 2.0);
  EXPECT_DOUBLE_EQ(right[1].lo(), 2.0);
  EXPECT_DOUBLE_EQ(left[0].hi(), 1.0);  // dim 0 untouched.
}

TEST(BoxUtils, SubdivideTilesTheBox) {
  const IBox box = verify::make_box({0.0, 0.0}, {1.0, 1.0});
  const auto parts = verify::box_subdivide(box, {2, 3});
  EXPECT_EQ(parts.size(), 6u);
  // Property: every sampled point of the box lies in exactly one part.
  util::Rng rng(5);
  for (int k = 0; k < 200; ++k) {
    const la::Vec p = {rng.uniform(0.001, 0.999), rng.uniform(0.001, 0.999)};
    int hits = 0;
    for (const auto& part : parts) hits += verify::box_contains(part, p);
    EXPECT_GE(hits, 1);
    EXPECT_LE(hits, 2);  // boundary points may be shared.
  }
}

TEST(BoxUtils, SubdivideFacesPinParentEndpointsExactly) {
  // `lo + parts * w` can round strictly below `hi`, which used to leave an
  // uncovered sliver at the top face.  slice_face pins the extreme faces to
  // the exact parent endpoints and shares interior faces bitwise between
  // adjacent slices, so the union covers the parent with no gaps.
  const IBox box = verify::make_box({0.1}, {0.9});
  const auto parts = verify::box_subdivide(box, {7});
  ASSERT_EQ(parts.size(), 7u);
  EXPECT_EQ(parts.front()[0].lo(), 0.1);  // exact, not approximate.
  EXPECT_EQ(parts.back()[0].hi(), 0.9);
  for (std::size_t k = 0; k + 1 < parts.size(); ++k)
    EXPECT_EQ(parts[k][0].hi(), parts[k + 1][0].lo());  // shared bitwise.
}

TEST(BoxUtils, HullContainsBoth) {
  const IBox a = verify::make_box({0.0}, {1.0});
  const IBox b = verify::make_box({2.0}, {3.0});
  const IBox h = verify::box_hull(a, b);
  EXPECT_TRUE(verify::box_contains_box(h, a));
  EXPECT_TRUE(verify::box_contains_box(h, b));
}

/// Property shared by all three plants: the interval image of a box
/// contains the concrete image of sampled (state, control, disturbance).
template <typename SystemT>
void check_dynamics_inclusion(const SystemT& system, std::uint64_t seed) {
  const auto dynamics = verify::make_interval_dynamics(system);
  util::Rng rng(seed);
  const sys::Box region = system.sampling_region();
  for (int trial = 0; trial < 30; ++trial) {
    // Random sub-box of the sampling region.
    la::Vec lo(region.dim()), hi(region.dim());
    for (std::size_t d = 0; d < region.dim(); ++d) {
      const double a = rng.uniform(region.lo[d], region.hi[d]);
      const double b = rng.uniform(region.lo[d], region.hi[d]);
      lo[d] = std::min(a, b);
      hi[d] = std::max(a, b);
    }
    const IBox state_box = verify::make_box(lo, hi);
    const sys::Box u_bounds = system.control_bounds();
    const double u_lo = rng.uniform(u_bounds.lo[0], u_bounds.hi[0]);
    const double u_hi = rng.uniform(u_lo, u_bounds.hi[0]);
    const IBox image = dynamics->step(state_box, {Interval(u_lo, u_hi)});
    for (int k = 0; k < 20; ++k) {
      la::Vec s(region.dim());
      for (std::size_t d = 0; d < region.dim(); ++d)
        s[d] = rng.uniform(lo[d], hi[d]);
      const la::Vec u = {rng.uniform(u_lo, u_hi)};
      const la::Vec w = system.sample_disturbance(rng);
      const la::Vec next = system.step(s, u, w);
      EXPECT_TRUE(verify::box_contains(image, next))
          << system.name() << " trial " << trial;
    }
  }
}

TEST(IntervalDynamics, VanDerPolInclusion) {
  check_dynamics_inclusion(sys::VanDerPol(), 11);
}

TEST(IntervalDynamics, ThreeDInclusion) {
  check_dynamics_inclusion(sys::ThreeD(), 12);
}

TEST(IntervalDynamics, CartPoleInclusion) {
  check_dynamics_inclusion(sys::CartPole(), 13);
}

TEST(IntervalDynamics, PointBoxReproducesSimulatorStep) {
  const sys::ThreeD system;
  const auto dynamics = verify::make_interval_dynamics(system);
  const la::Vec s = {0.1, -0.2, 0.3};
  const la::Vec u = {1.5};
  const IBox image = dynamics->step(verify::point_box(s), {Interval(1.5)});
  const la::Vec next = system.step(s, u, {});
  for (std::size_t d = 0; d < 3; ++d) {
    EXPECT_LE(image[d].lo(), next[d]);
    EXPECT_GE(image[d].hi(), next[d]);
    EXPECT_LT(image[d].width(), 1e-9);  // essentially a point.
  }
}

}  // namespace
}  // namespace cocktail
