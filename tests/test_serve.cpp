// Tests for the serving runtime (src/serve): SafetyMonitor region
// semantics, sharded micro-batched dispatch bitwise-matching the synchronous
// reference path across dispatcher/shard/batch-size/worker/linger
// configurations, fallback routing and admission control with exact
// counters, the pinned submit-after-shutdown contract, the SLO metrics
// registry, and cached-artifact loading.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <future>
#include <limits>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "control/controller.h"
#include "control/nn_controller.h"
#include "la/kernels.h"
#include "nn/mlp.h"
#include "serve/controller_server.h"
#include "serve/registry.h"
#include "serve/safety_monitor.h"
#include "sys/registry.h"
#include "util/paths.h"
#include "util/rng.h"

namespace cocktail {
namespace {

using la::Vec;

/// Fallback whose output is unmistakable: u = {kMark}.  Lets tests verify a
/// request really was answered by the fallback, not by a near-zero network.
class MarkerController final : public ctrl::Controller {
 public:
  static constexpr double kMark = 42.25;

  MarkerController(std::size_t state_dim, std::size_t control_dim)
      : state_dim_(state_dim), control_dim_(control_dim) {}

  [[nodiscard]] Vec act(const Vec&) const override {
    return la::constant(control_dim_, kMark);
  }
  [[nodiscard]] std::size_t state_dim() const override { return state_dim_; }
  [[nodiscard]] std::size_t control_dim() const override {
    return control_dim_;
  }
  [[nodiscard]] std::string describe() const override { return "marker"; }

 private:
  std::size_t state_dim_;
  std::size_t control_dim_;
};

/// Fallback that always throws — exception-propagation coverage.
class ThrowingController final : public ctrl::Controller {
 public:
  [[nodiscard]] Vec act(const Vec&) const override {
    throw std::runtime_error("fallback boom");
  }
  [[nodiscard]] std::size_t state_dim() const override { return 2; }
  [[nodiscard]] std::size_t control_dim() const override { return 1; }
  [[nodiscard]] std::string describe() const override { return "throwing"; }
};

std::shared_ptr<const ctrl::NnController> make_student(std::uint64_t seed = 9) {
  nn::Mlp net = nn::Mlp::make(2, {16}, 1, nn::Activation::kTanh,
                              nn::Activation::kIdentity, seed);
  return std::make_shared<const ctrl::NnController>(std::move(net),
                                                    Vec{2.5}, "k*");
}

sys::Box unit_box() {
  return sys::Box{{-1.0, -1.0}, {1.0, 1.0}};
}

// --- SafetyMonitor ---------------------------------------------------------

TEST(SafetyMonitor, DefaultCertifiesNothing) {
  const serve::SafetyMonitor monitor;
  EXPECT_FALSE(monitor.certified({0.0, 0.0}));
}

TEST(SafetyMonitor, TrustAllCertifiesEverything) {
  const auto monitor = serve::SafetyMonitor::trust_all();
  EXPECT_TRUE(monitor.certified({1e9, -1e9}));
}

TEST(SafetyMonitor, BoxMembershipWithMargin) {
  const auto plain = serve::SafetyMonitor::inside_box(unit_box());
  EXPECT_TRUE(plain.certified({0.99, -0.99}));
  EXPECT_FALSE(plain.certified({1.01, 0.0}));

  const auto shrunk = serve::SafetyMonitor::inside_box(unit_box(), 0.1);
  EXPECT_TRUE(shrunk.certified({0.89, -0.89}));
  EXPECT_FALSE(shrunk.certified({0.95, 0.0}));  // inside box, outside margin.
}

TEST(SafetyMonitor, WrongDimensionIsNeverCertified) {
  const auto monitor = serve::SafetyMonitor::inside_box(unit_box());
  EXPECT_FALSE(monitor.certified({0.0}));
  EXPECT_FALSE(monitor.certified({0.0, 0.0, 0.0}));
}

TEST(SafetyMonitor, NegativeMarginThrows) {
  EXPECT_THROW((void)serve::SafetyMonitor::inside_box(unit_box(), -0.1),
               std::invalid_argument);
}

verify::InvariantResult checkerboard_invariant() {
  // 2x2 grid over [-1,1]^2; only the lower-left and upper-right cells are
  // invariant members (flattened dim-0-fastest: cells 0 and 3).
  verify::InvariantResult result;
  result.grid = {2, 2};
  result.member = {1, 0, 0, 1};
  result.completed = true;
  return result;
}

TEST(SafetyMonitor, InvariantMembershipFollowsTheGrid) {
  const auto monitor = serve::SafetyMonitor::inside_invariant(
      checkerboard_invariant(), unit_box());
  EXPECT_TRUE(monitor.certified({-0.5, -0.5}));   // cell 0: member.
  EXPECT_TRUE(monitor.certified({0.5, 0.5}));     // cell 3: member.
  EXPECT_FALSE(monitor.certified({0.5, -0.5}));   // cell 1: removed.
  EXPECT_FALSE(monitor.certified({-0.5, 0.5}));   // cell 2: removed.
  EXPECT_FALSE(monitor.certified({1.5, 0.5}));    // outside the domain.
}

// Regression for the NaN-certified hole: the box mode's exclusion-direction
// comparison chain (`s < lo || s > hi`) is false for NaN in both clauses, so
// a corrupted observation used to fall through as certified and get served
// by the primary network.  Non-finite states must fail certification in
// every mode — including trust_all, whose promise covers finite states only.
TEST(SafetyMonitor, NonFiniteStatesAreNeverCertified) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  const std::vector<serve::SafetyMonitor> monitors = {
      serve::SafetyMonitor::trust_all(),
      serve::SafetyMonitor::inside_box(unit_box()),
      serve::SafetyMonitor::inside_box(unit_box(), 0.1),
      serve::SafetyMonitor::inside_invariant(checkerboard_invariant(),
                                             unit_box()),
      serve::SafetyMonitor::inside_invariant(checkerboard_invariant(),
                                             unit_box(), 0.2),
  };
  for (std::size_t m = 0; m < monitors.size(); ++m) {
    for (const double bad : {nan, inf, -inf}) {
      EXPECT_FALSE(monitors[m].certified({bad, 0.0})) << "monitor " << m;
      EXPECT_FALSE(monitors[m].certified({0.0, bad})) << "monitor " << m;
      EXPECT_FALSE(monitors[m].certified({bad, bad})) << "monitor " << m;
    }
    // A finite in-regime point stays certified (lower-left member cell).
    EXPECT_TRUE(monitors[m].certified({-0.5, -0.5})) << "monitor " << m;
  }
}

TEST(SafetyMonitor, InvariantMarginChecksTheWholeUncertaintyBox) {
  const auto monitor = serve::SafetyMonitor::inside_invariant(
      checkerboard_invariant(), unit_box(), 0.2);
  // Deep inside the member cell: the whole +/-0.2 box stays in cell 0.
  EXPECT_TRUE(monitor.certified({-0.5, -0.5}));
  // Near the cell boundary: a corner of the uncertainty box crosses into
  // the removed cell 1, so the certificate no longer covers the request.
  EXPECT_FALSE(monitor.certified({-0.1, -0.5}));
}

TEST(SafetyMonitor, WideMarginCannotSkipInteriorCells) {
  // Soundness regression: a margin wider than half a cell straddles cells
  // no corner of the uncertainty box lands in.  3x3 grid over [-1.5,1.5]^2
  // with only the center cell removed; from (0,0) with margin 1.0 every
  // corner lies in a member cell, but the center cell itself is not one —
  // the certificate must NOT cover the request.
  verify::InvariantResult result;
  result.grid = {3, 3};
  result.member.assign(9, 1);
  result.member[4] = 0;  // center cell (k = (1,1), dim-0-fastest).
  result.completed = true;
  const sys::Box domain{{-1.5, -1.5}, {1.5, 1.5}};
  const auto wide =
      serve::SafetyMonitor::inside_invariant(result, domain, 1.0);
  EXPECT_FALSE(wide.certified({0.0, 0.0}));
  const auto narrow =
      serve::SafetyMonitor::inside_invariant(result, domain, 0.4);
  // A box fully inside member cells is still certified.
  EXPECT_TRUE(narrow.certified({-1.0, -1.0}));
  // An uncertainty box leaving the domain is never certified.
  EXPECT_FALSE(narrow.certified({-1.4, 0.9}));
}

TEST(SafetyMonitor, IncompleteInvariantIsRejected) {
  verify::InvariantResult incomplete = checkerboard_invariant();
  incomplete.completed = false;
  EXPECT_THROW((void)serve::SafetyMonitor::inside_invariant(incomplete,
                                                            unit_box()),
               std::invalid_argument);
}

/// Reference for the invariant margin check: the pre-tree flat odometer
/// over the member window, verbatim — the SFC-keyed CellSetTree path must
/// return bitwise-identical verdicts.
bool flat_margin_certified(const std::vector<int>& grid,
                           const std::vector<char>& member,
                           const sys::Box& domain, double margin,
                           const Vec& state) {
  for (std::size_t d = 0; d < state.size(); ++d)
    if (!std::isfinite(state[d])) return false;
  if (state.size() != domain.dim()) return false;
  std::vector<int> lo_k(state.size()), hi_k(state.size());
  for (std::size_t d = 0; d < state.size(); ++d) {
    const double lo = state[d] - margin;
    const double hi = state[d] + margin;
    if (lo < domain.lo[d] || hi > domain.hi[d]) return false;
    const double w =
        (domain.hi[d] - domain.lo[d]) / static_cast<double>(grid[d]);
    lo_k[d] = std::clamp(static_cast<int>(std::floor((lo - domain.lo[d]) / w)),
                         0, grid[d] - 1);
    hi_k[d] = std::clamp(static_cast<int>(std::floor((hi - domain.lo[d]) / w)),
                         0, grid[d] - 1);
  }
  std::vector<int> k = lo_k;
  for (;;) {
    std::size_t index = 0, stride = 1;
    for (std::size_t d = 0; d < k.size(); ++d) {
      index += static_cast<std::size_t>(k[d]) * stride;
      stride *= static_cast<std::size_t>(grid[d]);
    }
    if (member[index] == 0) return false;
    std::size_t d = 0;
    while (d < k.size() && ++k[d] > hi_k[d]) {
      k[d] = lo_k[d];
      ++d;
    }
    if (d == k.size()) break;
  }
  return true;
}

TEST(SafetyMonitor, SfcIndexMatchesFlatOdometerOnRandomizedInvariants) {
  // The Morton-keyed member index behind the margin path is an index, not a
  // semantics change: randomized grids, member sets, margins, and states
  // must certify bitwise-identically to the flat window walk it replaced.
  util::Rng rng(57);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t dim = 2 + static_cast<std::size_t>(trial % 2);
    std::vector<int> grid(dim);
    std::size_t total = 1;
    for (auto& g : grid) {
      g = 2 + static_cast<int>(rng.uniform(0.0, 7.0));
      total *= static_cast<std::size_t>(g);
    }
    verify::InvariantResult result;
    result.grid = grid;
    result.completed = true;
    result.member.resize(total);
    for (auto& m : result.member)
      m = rng.uniform(0.0, 1.0) < 0.6 ? 1 : 0;
    const sys::Box domain = sys::Box::symmetric(dim, 1.0);
    const double margin = rng.uniform(0.05, 0.5);
    const auto monitor =
        serve::SafetyMonitor::inside_invariant(result, domain, margin);
    for (int q = 0; q < 200; ++q) {
      Vec state(dim);
      for (auto& x : state) x = rng.uniform(-1.2, 1.2);
      ASSERT_EQ(monitor.certified(state),
                flat_margin_certified(grid, result.member, domain, margin,
                                      state))
          << "trial " << trial << " query " << q;
    }
  }
}

TEST(SafetyMonitor, OutsizedGridsFallBackToTheFlatWalk) {
  // A 9-dimensional grid cannot pack into a 64-bit Morton key
  // (dim > kMaxSfcDim), so the monitor keeps the flat odometer — same
  // verdicts, no tree.
  const std::size_t dim = 9;
  ASSERT_GT(dim, verify::kMaxSfcDim);
  verify::InvariantResult result;
  result.grid.assign(dim, 2);
  result.completed = true;
  result.member.assign(std::size_t{1} << dim, 1);
  result.member[0] = 0;  // the all-lo corner cell is not a member.
  const sys::Box domain = sys::Box::symmetric(dim, 1.0);
  const auto monitor =
      serve::SafetyMonitor::inside_invariant(result, domain, 0.1);
  Vec state(dim, 0.5);
  EXPECT_TRUE(monitor.certified(state));      // deep in member cells.
  Vec corner(dim, -0.5);
  EXPECT_FALSE(monitor.certified(corner));    // overlaps the removed cell.
  Vec straddle(dim, 0.5);
  straddle[0] = -0.5;  // still certifies: cell (0,1,...,1) is a member.
  EXPECT_TRUE(monitor.certified(straddle));
}

TEST(SafetyMonitor, ActionDeviationBoundUsesTheCertifiedLipschitz) {
  const auto student = make_student();
  const double lip = student->lipschitz_bound();
  ASSERT_GT(lip, 0.0);
  EXPECT_DOUBLE_EQ(
      serve::SafetyMonitor::action_deviation_bound(*student, 0.05),
      lip * std::sqrt(2.0) * 0.05);
  const MarkerController uncertified(2, 1);
  EXPECT_LT(serve::SafetyMonitor::action_deviation_bound(uncertified, 0.05),
            0.0);
}

// --- ControllerServer: synchronous mode ------------------------------------

serve::ServeConfig sync_config() {
  serve::ServeConfig config;
  config.synchronous = true;
  return config;
}

TEST(ControllerServer, SynchronousPrimaryAndFallbackRouting) {
  serve::ControllerServer server(sync_config());
  const auto student = make_student();
  server.register_controller(
      "vdp", student, std::make_shared<MarkerController>(2, 1),
      serve::SafetyMonitor::inside_box(unit_box()));

  const Vec inside = {0.3, -0.4};
  const Vec outside = {2.0, 0.0};
  auto in_future = server.submit("vdp", inside);
  auto out_future = server.submit("vdp", outside);
  ASSERT_EQ(in_future.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);

  // In-regime: exactly the network's action.  Out-of-regime: verifiably the
  // fallback's answer.
  EXPECT_EQ(in_future.get(), student->act(inside));
  EXPECT_EQ(out_future.get(), Vec{MarkerController::kMark});

  const auto counters = server.counters("vdp");
  EXPECT_EQ(counters.primary, 1u);
  EXPECT_EQ(counters.fallback, 1u);
  EXPECT_EQ(counters.batches, 1u);
  EXPECT_EQ(counters.max_batch_rows, 1u);
}

// The serving half of the NaN-certified regression: corrupted observations
// submitted through the server are answered by the trusted fallback (never
// the primary network) and show up in the fallback counter — even under
// trust_all, where every finite state is served by the primary.
TEST(ControllerServer, NonFiniteSubmitsAreAnsweredByTheFallback) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  const auto student = make_student();
  for (const auto& monitor :
       {serve::SafetyMonitor::trust_all(),
        serve::SafetyMonitor::inside_box(unit_box())}) {
    serve::ControllerServer server(sync_config());
    server.register_controller(
        "vdp", student, std::make_shared<MarkerController>(2, 1), monitor);
    const std::vector<Vec> bad_states = {
        {nan, 0.0}, {0.0, nan}, {inf, 0.0}, {0.0, -inf}, {nan, inf}};
    for (const Vec& s : bad_states)
      EXPECT_EQ(server.submit("vdp", s).get(), Vec{MarkerController::kMark});
    // A finite in-regime request still reaches the primary.
    EXPECT_EQ(server.submit("vdp", {0.3, -0.4}).get(),
              student->act({0.3, -0.4}));
    const auto counters = server.counters("vdp");
    EXPECT_EQ(counters.fallback, bad_states.size());
    EXPECT_EQ(counters.primary, 1u);
  }
}

TEST(ControllerServer, ReferencePathTakesNoCounters) {
  serve::ControllerServer server(sync_config());
  const auto student = make_student();
  server.register_controller(
      "vdp", student, std::make_shared<MarkerController>(2, 1),
      serve::SafetyMonitor::inside_box(unit_box()));
  EXPECT_EQ(server.act_reference("vdp", {0.3, -0.4}),
            student->act({0.3, -0.4}));
  EXPECT_EQ(server.act_reference("vdp", {2.0, 0.0}),
            Vec{MarkerController::kMark});
  EXPECT_EQ(server.counters("vdp").primary, 0u);
  EXPECT_EQ(server.counters("vdp").fallback, 0u);
}

TEST(ControllerServer, RegistrationAndSubmitValidation) {
  serve::ControllerServer server(sync_config());
  const auto student = make_student();
  const auto fallback = std::make_shared<MarkerController>(2, 1);
  server.register_controller("vdp", student, fallback,
                             serve::SafetyMonitor::trust_all());

  EXPECT_THROW((void)server.submit("nope", {0.0, 0.0}),
               std::invalid_argument);
  EXPECT_THROW((void)server.submit("vdp", {0.0}), std::invalid_argument);
  EXPECT_THROW((void)server.act_reference("vdp", {0.0}),
               std::invalid_argument);
  EXPECT_THROW(server.register_controller("vdp", student, fallback,
                                          serve::SafetyMonitor::trust_all()),
               std::invalid_argument);
  EXPECT_THROW(server.register_controller("null", nullptr, fallback,
                                          serve::SafetyMonitor::trust_all()),
               std::invalid_argument);
  EXPECT_THROW(server.register_controller("nofb", student, nullptr,
                                          serve::SafetyMonitor::trust_all()),
               std::invalid_argument);
  EXPECT_THROW(
      server.register_controller("dims", student,
                                 std::make_shared<MarkerController>(3, 1),
                                 serve::SafetyMonitor::trust_all()),
      std::invalid_argument);
}

TEST(ControllerServer, ControllerExceptionsTravelThroughTheFuture) {
  serve::ControllerServer server(sync_config());
  server.register_controller("vdp", make_student(),
                             std::make_shared<ThrowingController>(),
                             serve::SafetyMonitor());  // everything falls back.
  auto future = server.submit("vdp", {0.0, 0.0});
  EXPECT_THROW((void)future.get(), std::runtime_error);
}

// --- ControllerServer: asynchronous micro-batching -------------------------

/// The acceptance pin: N concurrent submissions across the full
/// {1,2,4} dispatchers × {1,2,8} shards grid — crossed with batch-size /
/// worker / linger settings — return exactly the actions the synchronous
/// path produces, out-of-invariant states are verifiably answered by the
/// fallback, and the admission counters are exact (everything accepted,
/// nothing shed or rejected, per-shard tallies summing to the totals).
TEST(ControllerServer, AsyncMatchesSynchronousForAnyConfiguration) {
  if (la::kernels::blas_enabled())
    GTEST_SKIP() << "COCKTAIL_BLAS waives the bitwise batching contract";
  // Reference answers from a synchronous server.
  serve::ControllerServer reference(sync_config());
  const auto student = make_student();
  const auto monitor = serve::SafetyMonitor::inside_box(unit_box());
  reference.register_controller(
      "vdp", student, std::make_shared<MarkerController>(2, 1), monitor);

  // Mixed workload: ~2/3 certified states, ~1/3 outside the box.
  util::Rng rng(2024);
  std::vector<Vec> states;
  std::size_t expected_fallback = 0;
  for (int k = 0; k < 96; ++k) {
    Vec s = {rng.uniform(-1.5, 1.5), rng.uniform(-1.5, 1.5)};
    if (!monitor.certified(s)) ++expected_fallback;
    states.push_back(std::move(s));
  }
  ASSERT_GT(expected_fallback, 0u);
  ASSERT_LT(expected_fallback, states.size());
  std::vector<Vec> expected;
  expected.reserve(states.size());
  for (const Vec& s : states) expected.push_back(reference.act_reference("vdp", s));

  struct BatchSweep {
    std::size_t max_batch;
    int num_workers;
    long linger_us;
  };
  const std::vector<BatchSweep> batch_sweeps = {
      {1, 1, 0}, {4, 2, 200}, {64, 8, 200}, {16, 0, 50}};
  const std::size_t dispatcher_sweep[] = {1, 2, 4};
  const std::size_t shard_sweep[] = {1, 2, 8};
  std::size_t combo = 0;
  for (const std::size_t dispatchers : dispatcher_sweep) {
    for (const std::size_t shards : shard_sweep) {
      // Cycle the batch settings through the dispatcher x shard grid so the
      // full cross stays cheap while every batch shape still meets every
      // sharding shape over the sweep.
      const BatchSweep& sweep = batch_sweeps[combo++ % batch_sweeps.size()];
      serve::ServeConfig config;
      config.max_batch = sweep.max_batch;
      config.num_workers = sweep.num_workers;
      config.max_wait = std::chrono::microseconds(sweep.linger_us);
      config.rows_per_chunk = 8;
      config.num_dispatchers = dispatchers;
      config.num_shards = shards;
      config.shard_capacity = 256;  // >> request count: nothing sheds.
      serve::ControllerServer server(config);
      server.register_controller(
          "vdp", student, std::make_shared<MarkerController>(2, 1), monitor);

      // Four submitter threads interleave their requests arbitrarily.
      std::vector<std::future<Vec>> futures(states.size());
      std::vector<std::thread> submitters;
      const std::size_t stripe = states.size() / 4;
      for (std::size_t t = 0; t < 4; ++t) {
        submitters.emplace_back([&, t] {
          const std::size_t lo = t * stripe;
          const std::size_t hi = (t == 3) ? states.size() : lo + stripe;
          for (std::size_t i = lo; i < hi; ++i)
            futures[i] = server.submit("vdp", states[i]);
        });
      }
      for (auto& thread : submitters) thread.join();

      for (std::size_t i = 0; i < states.size(); ++i) {
        const Vec action = futures[i].get();
        ASSERT_EQ(action.size(), expected[i].size());
        for (std::size_t c = 0; c < action.size(); ++c)
          ASSERT_EQ(action[c], expected[i][c])
              << "state " << i << ", max_batch " << sweep.max_batch << ", "
              << sweep.num_workers << " workers, " << dispatchers
              << " dispatchers, " << shards << " shards";
      }

      // Counters are exact for any batching/sharding: every request took
      // exactly one of the two paths, everything was admitted, and the
      // per-shard admission tallies sum to the totals.
      const auto counters = server.counters("vdp");
      EXPECT_EQ(counters.fallback, expected_fallback);
      EXPECT_EQ(counters.primary, states.size() - expected_fallback);
      EXPECT_GE(counters.batches, 1u);
      EXPECT_LE(counters.max_batch_rows, sweep.max_batch);
      EXPECT_EQ(counters.accepted, states.size());
      EXPECT_EQ(counters.shed, 0u);
      EXPECT_EQ(counters.rejected, 0u);
      EXPECT_EQ(counters.primary + counters.fallback, counters.accepted);
      ASSERT_EQ(counters.shards.size(), shards);
      std::uint64_t per_shard_accepted = 0;
      for (const auto& shard : counters.shards)
        per_shard_accepted += shard.accepted;
      EXPECT_EQ(per_shard_accepted, counters.accepted);
    }
  }
}

TEST(ControllerServer, DrainAnswersEverythingSubmitted) {
  serve::ServeConfig config;
  config.max_batch = 8;
  config.max_wait = std::chrono::microseconds(100);
  serve::ControllerServer server(config);
  const auto student = make_student();
  server.register_controller("vdp", student,
                             std::make_shared<MarkerController>(2, 1),
                             serve::SafetyMonitor::trust_all());
  std::vector<std::future<Vec>> futures;
  for (int k = 0; k < 40; ++k)
    futures.push_back(server.submit("vdp", {0.01 * k, -0.01 * k}));
  server.drain();
  for (auto& future : futures)
    EXPECT_EQ(future.wait_for(std::chrono::seconds(0)),
              std::future_status::ready);
  EXPECT_EQ(server.counters("vdp").primary, 40u);
}

TEST(ControllerServer, DrainWithNoTrafficReturnsImmediately) {
  serve::ControllerServer server;  // async defaults.
  server.register_controller("vdp", make_student(),
                             std::make_shared<MarkerController>(2, 1),
                             serve::SafetyMonitor::trust_all());
  server.drain();  // nothing queued, nothing in flight: must not block.
  EXPECT_EQ(server.counters("vdp").primary, 0u);
  EXPECT_EQ(server.counters("vdp").batches, 0u);
}

TEST(ControllerServer, AllFallbackSliceNeverBuildsAnEmptyBatch) {
  // Every request is uncertified (default monitor certifies nothing), so
  // the drained slices contain zero certified requests.  from_rows({})
  // throws (test_la pins this), so this sweep also proves the dispatcher
  // never assembles an empty GEMM batch when a slice has no certified rows.
  serve::ServeConfig config;
  config.max_batch = 16;
  config.max_wait = std::chrono::microseconds(100);
  serve::ControllerServer server(config);
  server.register_controller("vdp", make_student(),
                             std::make_shared<MarkerController>(2, 1),
                             serve::SafetyMonitor());
  std::vector<std::future<Vec>> futures;
  for (int k = 0; k < 12; ++k)
    futures.push_back(server.submit("vdp", {0.1 * k, -0.1 * k}));
  for (auto& future : futures)
    EXPECT_EQ(future.get(), Vec{MarkerController::kMark});
  const auto counters = server.counters("vdp");
  EXPECT_EQ(counters.fallback, 12u);
  EXPECT_EQ(counters.primary, 0u);
  EXPECT_EQ(counters.batches, 0u);  // the GEMM path never ran.
}

/// Extracts the RejectReason a rejected future carries, failing the test if
/// it resolves to anything but a RejectedError.
serve::RejectReason reject_reason(std::future<Vec> future) {
  try {
    (void)future.get();
  } catch (const serve::RejectedError& error) {
    return error.reason();
  }
  ADD_FAILURE() << "future did not carry a RejectedError";
  return serve::RejectReason::kShutdown;
}

// The pinned submit-after-shutdown contract: submit() on a stopped server
// does NOT throw — it returns a future whose get() throws
// RejectedError(kShutdown), and the rejection shows up in the admission
// counters.  Programmer errors (unknown name, wrong dimension) still throw
// std::invalid_argument synchronously, stopped or not.
TEST(ControllerServer, StopDrainsPendingAndRejectsNewWork) {
  serve::ControllerServer server;  // async defaults.
  server.register_controller("vdp", make_student(),
                             std::make_shared<MarkerController>(2, 1),
                             serve::SafetyMonitor::trust_all());
  auto pending = server.submit("vdp", {0.1, 0.2});
  server.stop();
  EXPECT_EQ(pending.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  EXPECT_EQ(pending.get(), server.act_reference("vdp", {0.1, 0.2}));

  auto rejected = server.submit("vdp", {0.1, 0.2});
  EXPECT_EQ(rejected.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  EXPECT_EQ(reject_reason(std::move(rejected)),
            serve::RejectReason::kShutdown);
  EXPECT_THROW((void)server.submit("vdp", {0.1}), std::invalid_argument);
  EXPECT_THROW((void)server.submit("nope", {0.1, 0.2}),
               std::invalid_argument);
  const auto counters = server.counters("vdp");
  EXPECT_EQ(counters.accepted, 1u);
  EXPECT_EQ(counters.rejected, 1u);
  EXPECT_EQ(counters.shed, 0u);
  server.stop();  // idempotent.
}

TEST(ControllerServer, SynchronousSubmitIsAlsoRejectedAfterStop) {
  serve::ControllerServer server(sync_config());
  server.register_controller("vdp", make_student(),
                             std::make_shared<MarkerController>(2, 1),
                             serve::SafetyMonitor::trust_all());
  server.stop();
  EXPECT_EQ(reject_reason(server.submit("vdp", {0.1, 0.2})),
            serve::RejectReason::kShutdown);
  EXPECT_EQ(server.counters("vdp").rejected, 1u);
}

TEST(ControllerServer, RegistrationAfterStopThrows) {
  serve::ControllerServer server;
  server.register_controller("a", make_student(),
                             std::make_shared<MarkerController>(2, 1),
                             serve::SafetyMonitor::trust_all());
  server.stop();
  EXPECT_THROW(
      server.register_controller("b", make_student(),
                                 std::make_shared<MarkerController>(2, 1),
                                 serve::SafetyMonitor::trust_all()),
      std::runtime_error);
}

// --- ControllerServer: admission control / load shedding --------------------

/// Fallback that reports when act() starts and then blocks until released —
/// lets the shed test wedge the dispatcher deterministically.
class GateController final : public ctrl::Controller {
 public:
  static constexpr double kGateMark = 7.5;

  GateController(std::shared_ptr<std::atomic<int>> started,
                 std::shared_future<void> release)
      : started_(std::move(started)), release_(std::move(release)) {}

  [[nodiscard]] Vec act(const Vec&) const override {
    started_->fetch_add(1);
    release_.wait();
    return la::constant(1, kGateMark);
  }
  [[nodiscard]] std::size_t state_dim() const override { return 2; }
  [[nodiscard]] std::size_t control_dim() const override { return 1; }
  [[nodiscard]] std::string describe() const override { return "gate"; }

 private:
  std::shared_ptr<std::atomic<int>> started_;
  std::shared_future<void> release_;
};

// Exact load-shedding: wedge the single dispatcher inside a blocking
// fallback, fill the one shard ring to its capacity, and verify that every
// further submission sheds with RejectedError(kQueueFull) — with accepted /
// shed counters exact and every accepted request still answered after the
// dispatcher is released.
TEST(ControllerServer, FullShardsShedWithExactCounters) {
  auto started = std::make_shared<std::atomic<int>>(0);
  std::promise<void> release;
  const std::shared_future<void> release_future =
      release.get_future().share();

  serve::ServeConfig config;
  config.max_batch = 1;  // the wedged slice holds exactly one request.
  config.max_wait = std::chrono::microseconds(0);
  config.num_dispatchers = 1;
  config.num_shards = 1;
  config.shard_capacity = 2;
  serve::ControllerServer server(config);
  server.register_controller(
      "vdp", make_student(),
      std::make_shared<GateController>(started, release_future),
      serve::SafetyMonitor());  // certifies nothing: everything falls back.

  // The first request is popped by the dispatcher and blocks in act();
  // waiting for started proves the ring is empty again.
  auto wedged = server.submit("vdp", {0.0, 0.0});
  while (started->load() == 0) std::this_thread::yield();

  // Fill the ring (capacity 2) while the dispatcher is wedged...
  auto queued_a = server.submit("vdp", {0.1, 0.1});
  auto queued_b = server.submit("vdp", {0.2, 0.2});
  // ...then overflow it: both submissions must shed immediately.
  auto shed_a = server.submit("vdp", {0.3, 0.3});
  auto shed_b = server.submit("vdp", {0.4, 0.4});
  EXPECT_EQ(reject_reason(std::move(shed_a)), serve::RejectReason::kQueueFull);
  EXPECT_EQ(reject_reason(std::move(shed_b)), serve::RejectReason::kQueueFull);

  release.set_value();
  const Vec gate_action = la::constant(1, GateController::kGateMark);
  EXPECT_EQ(wedged.get(), gate_action);
  EXPECT_EQ(queued_a.get(), gate_action);
  EXPECT_EQ(queued_b.get(), gate_action);
  server.drain();

  const auto counters = server.counters("vdp");
  EXPECT_EQ(counters.accepted, 3u);
  EXPECT_EQ(counters.shed, 2u);
  EXPECT_EQ(counters.rejected, 0u);
  EXPECT_EQ(counters.fallback, 3u);
  EXPECT_EQ(counters.primary, 0u);
}

// --- serve::MetricsRegistry --------------------------------------------------

TEST(ServeMetrics, HistogramQuantilesInterpolateWithinFixedBuckets) {
  serve::LatencyHistogram histogram;
  EXPECT_EQ(histogram.quantiles().count, 0u);
  for (int k = 0; k < 100; ++k) histogram.record_us(3.0);
  const auto q = histogram.quantiles();
  EXPECT_EQ(q.count, 100u);
  // Every sample lands in the (2, 5] bucket: all quantiles interpolate
  // inside it.
  EXPECT_GT(q.p50_us, 2.0);
  EXPECT_LE(q.p50_us, 5.0);
  EXPECT_GT(q.p999_us, 2.0);
  EXPECT_LE(q.p999_us, 5.0);
  EXPECT_LE(q.p50_us, q.p99_us);
  EXPECT_LE(q.p99_us, q.p999_us);
  EXPECT_EQ(q.max_bound_us, 5.0);

  // Corrupt samples clamp into the first bucket instead of vanishing.
  histogram.record_us(std::numeric_limits<double>::quiet_NaN());
  histogram.record_us(-1.0);
  EXPECT_EQ(histogram.count(), 102u);

  // A spread distribution keeps the quantiles ordered and in range.
  serve::LatencyHistogram spread;
  for (int k = 0; k < 990; ++k) spread.record_us(80.0);    // (50, 100]
  for (int k = 0; k < 10; ++k) spread.record_us(4000.0);   // (2e3, 5e3]
  const auto sq = spread.quantiles();
  EXPECT_GT(sq.p50_us, 50.0);
  EXPECT_LE(sq.p50_us, 100.0);
  EXPECT_GT(sq.p999_us, 2000.0);
  EXPECT_LE(sq.p999_us, 5000.0);
}

TEST(ServeMetrics, RegistryCountersAndSnapshotRates) {
  serve::MetricsRegistry registry;
  serve::Counter* counter = registry.counter("requests");
  ASSERT_NE(counter, nullptr);
  EXPECT_EQ(registry.counter("requests"), counter);  // stable identity.
  counter->add(5);
  counter->increment();
  EXPECT_EQ(counter->value(), 6u);
  registry.histogram("lat")->record_us(10.0);

  const auto snap = registry.snapshot();
  ASSERT_EQ(snap.counters.size(), 1u);
  EXPECT_EQ(snap.counters[0].name, "requests");
  EXPECT_EQ(snap.counters[0].value, 6u);
  EXPECT_GE(snap.counters[0].rate_per_s, 0.0);
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].name, "lat");
  EXPECT_EQ(snap.histograms[0].q.count, 1u);
  const std::string rendered = snap.format();
  EXPECT_NE(rendered.find("requests"), std::string::npos);
  EXPECT_NE(rendered.find("lat"), std::string::npos);

  // The rate window advances: a second snapshot sees only the delta.
  counter->add(4);
  const auto second = registry.snapshot();
  EXPECT_EQ(second.counters[0].value, 10u);
}

TEST(ServeMetrics, ServerPublishesLatencyRoutingAndAdmissionMetrics) {
  serve::ServeConfig config;
  config.max_batch = 8;
  config.num_shards = 2;
  serve::ControllerServer server(config);
  server.register_controller("vdp", make_student(),
                             std::make_shared<MarkerController>(2, 1),
                             serve::SafetyMonitor::trust_all());
  std::vector<std::future<Vec>> futures;
  for (int k = 0; k < 20; ++k)
    futures.push_back(server.submit("vdp", {0.01 * k, -0.01 * k}));
  for (auto& future : futures) (void)future.get();
  server.drain();

  const auto snap = server.metrics().snapshot();
  std::uint64_t latency_count = 0;
  for (const auto& h : snap.histograms)
    if (h.name == "serve.vdp.latency_us") latency_count = h.q.count;
  EXPECT_EQ(latency_count, 20u);
  std::uint64_t primary = 0, shard_accepted = 0;
  for (const auto& c : snap.counters) {
    if (c.name == "serve.vdp.primary") primary = c.value;
    if (c.name == "serve.vdp.shard0.accepted" ||
        c.name == "serve.vdp.shard1.accepted")
      shard_accepted += c.value;
  }
  EXPECT_EQ(primary, 20u);
  EXPECT_EQ(shard_accepted, 20u);
}

TEST(ControllerServer, ServesMultipleControllersFromOneQueue) {
  serve::ServeConfig config;
  config.max_batch = 64;
  config.max_wait = std::chrono::microseconds(200);
  serve::ControllerServer server(config);
  const auto a = make_student(1);
  const auto b = make_student(2);
  server.register_controller("a", a, std::make_shared<MarkerController>(2, 1),
                             serve::SafetyMonitor::trust_all());
  server.register_controller("b", b, std::make_shared<MarkerController>(2, 1),
                             serve::SafetyMonitor::trust_all());
  const Vec s = {0.2, -0.3};
  auto fa = server.submit("a", s);
  auto fb = server.submit("b", s);
  EXPECT_EQ(fa.get(), a->act(s));
  EXPECT_EQ(fb.get(), b->act(s));
  EXPECT_EQ(server.counters("a").primary, 1u);
  EXPECT_EQ(server.counters("b").primary, 1u);
}

// --- registry: cached-artifact loading -------------------------------------

TEST(ServeRegistry, LoadsTheCachedStudentBySystemKindSeed) {
  const auto student = make_student();
  ASSERT_FALSE(serve::cached_controller_exists("vanderpol", "studentR", 7));
  EXPECT_THROW(
      (void)serve::load_cached_controller("vanderpol", "studentR", 7, "k*"),
      std::runtime_error);

  const std::string path =
      util::model_cache_path("vanderpol", "studentR", 7, "nnctl");
  student->save_file(path);
  ASSERT_TRUE(serve::cached_controller_exists("vanderpol", "studentR", 7));
  const auto loaded =
      serve::load_cached_controller("vanderpol", "studentR", 7, "k*-served");
  EXPECT_EQ(loaded->describe(), "k*-served");
  util::Rng rng(3);
  for (int k = 0; k < 10; ++k) {
    const Vec s = rng.normal_vec(2);
    EXPECT_EQ(loaded->act(s), student->act(s));
  }
  std::remove(path.c_str());
}

TEST(ServeRegistry, CachePathsCarryTheFormatVersion) {
  const std::string path = util::model_cache_path("sys", "kind", 5, "nnctl");
  EXPECT_NE(path.find("_v" + std::to_string(util::kModelCacheVersion) +
                      "_seed5"),
            std::string::npos);
}

TEST(ServeRegistry, RegistersThePipelineStudentWithExpertFallback) {
  core::PipelineArtifacts artifacts;
  artifacts.system = sys::make_system("vanderpol");
  const auto student = make_student();
  artifacts.robust_student = student;
  artifacts.experts = {std::make_shared<MarkerController>(2, 1)};

  serve::ControllerServer server(sync_config());
  serve::register_pipeline_student(server, "vdp", artifacts,
                                   serve::SafetyMonitor::inside_box(unit_box()));
  EXPECT_EQ(server.submit("vdp", {0.1, 0.1}).get(), student->act({0.1, 0.1}));
  EXPECT_EQ(server.submit("vdp", {5.0, 5.0}).get(),
            Vec{MarkerController::kMark});

  core::PipelineArtifacts empty;
  EXPECT_THROW(serve::register_pipeline_student(server, "x", empty,
                                                serve::SafetyMonitor()),
               std::invalid_argument);
}

}  // namespace
}  // namespace cocktail
