// Unit tests for src/control: every controller type, Jacobians, Lipschitz
// reporting, the Eq.(4) clipping of the mixed design, switching behaviour.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>

#include "control/controller.h"
#include "control/lqr_controller.h"
#include "la/kernels.h"
#include "control/mixed_controller.h"
#include "control/mpc_controller.h"
#include "control/nn_controller.h"
#include "control/polynomial_controller.h"
#include "control/switched_controller.h"
#include "sys/registry.h"
#include "sys/threed.h"
#include "sys/vanderpol.h"

namespace cocktail {
namespace {

using la::Vec;

TEST(ZeroController, Basics) {
  const ctrl::ZeroController zero(3, 2);
  EXPECT_EQ(zero.act({1.0, 2.0, 3.0}), (Vec{0.0, 0.0}));
  EXPECT_EQ(zero.lipschitz_bound(), 0.0);
  EXPECT_TRUE(zero.differentiable());
}

TEST(NnControllerTest, ScalesOutput) {
  nn::Mlp net = nn::Mlp::make(2, {4}, 1, nn::Activation::kTanh,
                              nn::Activation::kTanh, 1);
  const ctrl::NnController scaled(net, {10.0}, "k");
  const ctrl::NnController raw(net, {1.0}, "k");
  const Vec s = {0.5, -0.5};
  EXPECT_NEAR(scaled.act(s)[0], 10.0 * raw.act(s)[0], 1e-14);
}

TEST(NnControllerTest, BroadcastsScalarScale) {
  nn::Mlp net = nn::Mlp::make(2, {4}, 3, nn::Activation::kTanh,
                              nn::Activation::kTanh, 2);
  const ctrl::NnController c(std::move(net), {2.0}, "k");
  EXPECT_EQ(c.control_dim(), 3u);
  EXPECT_EQ(c.out_scale(), (Vec{2.0, 2.0, 2.0}));
}

TEST(NnControllerTest, JacobianIncludesScale) {
  nn::Mlp net = nn::Mlp::make(2, {6}, 1, nn::Activation::kTanh,
                              nn::Activation::kIdentity, 3);
  const ctrl::NnController c(net, {4.0}, "k");
  const Vec s = {0.1, 0.2};
  const la::Matrix jc = c.input_jacobian(s);
  const la::Matrix jn = net.input_jacobian(s);
  EXPECT_NEAR(jc(0, 0), 4.0 * jn(0, 0), 1e-14);
  EXPECT_NEAR(jc(0, 1), 4.0 * jn(0, 1), 1e-14);
}

TEST(NnControllerTest, LipschitzScalesWithOutput) {
  nn::Mlp net = nn::Mlp::make(2, {4}, 1, nn::Activation::kTanh,
                              nn::Activation::kTanh, 4);
  const double base = net.lipschitz_upper_bound();
  const ctrl::NnController c(std::move(net), {5.0}, "k");
  EXPECT_NEAR(c.lipschitz_bound(), 5.0 * base, 1e-10);
}

TEST(NnControllerTest, SaveLoadRoundTrip) {
  nn::Mlp net = nn::Mlp::make(2, {5}, 1, nn::Activation::kRelu,
                              nn::Activation::kTanh, 5);
  const ctrl::NnController original(std::move(net), {7.5}, "k");
  const std::string path = "test_nnctl_roundtrip.nnctl";
  original.save_file(path);
  const ctrl::NnController loaded =
      ctrl::NnController::load_file(path, "k-loaded");
  util::Rng rng(6);
  for (int k = 0; k < 20; ++k) {
    const Vec s = rng.normal_vec(2);
    EXPECT_DOUBLE_EQ(original.act(s)[0], loaded.act(s)[0]);
  }
  EXPECT_EQ(loaded.describe(), "k-loaded");
  std::remove(path.c_str());
}

TEST(NnControllerTest, ActBatchIsBitwiseIdenticalToAct) {
  // The serving contract at the controller layer: batch answers equal the
  // per-sample path exactly, including the non-unit out_scale broadcast.
  nn::Mlp net = nn::Mlp::make(3, {12, 12}, 2, nn::Activation::kTanh,
                              nn::Activation::kIdentity, 21);
  const ctrl::NnController c(std::move(net), {2.5, -0.75}, "k");
  // The explicit empty-batch answer holds in every build configuration.
  EXPECT_TRUE(c.act_batch({}).empty());
  if (la::kernels::blas_enabled())
    GTEST_SKIP() << "COCKTAIL_BLAS waives the bitwise batching contract";
  util::Rng rng(8);
  std::vector<Vec> states;
  for (int k = 0; k < 33; ++k) states.push_back(rng.normal_vec(3));
  const std::vector<Vec> actions = c.act_batch(states);
  ASSERT_EQ(actions.size(), states.size());
  for (std::size_t i = 0; i < states.size(); ++i) {
    const Vec expected = c.act(states[i]);
    ASSERT_EQ(actions[i].size(), expected.size());
    for (std::size_t j = 0; j < expected.size(); ++j)
      ASSERT_EQ(actions[i][j], expected[j]) << "state " << i;
  }
}

TEST(NnControllerTest, SaveLoadRoundTripPreservesNonUnitOutScale) {
  nn::Mlp net = nn::Mlp::make(2, {6}, 2, nn::Activation::kTanh,
                              nn::Activation::kTanh, 13);
  const Vec scale = {7.5, -0.25};
  const ctrl::NnController original(std::move(net), scale, "k");
  const std::string path = "test_nnctl_scale_roundtrip.nnctl";
  original.save_file(path);
  const ctrl::NnController loaded =
      ctrl::NnController::load_file(path, "k-loaded");
  ASSERT_EQ(loaded.out_scale().size(), scale.size());
  for (std::size_t i = 0; i < scale.size(); ++i)
    EXPECT_DOUBLE_EQ(loaded.out_scale()[i], scale[i]);
  util::Rng rng(6);
  for (int k = 0; k < 10; ++k) {
    const Vec s = rng.normal_vec(2);
    EXPECT_EQ(loaded.act(s), original.act(s));
  }
  std::remove(path.c_str());
}

TEST(PolynomialControllerTest, EvaluatesMonomials) {
  // u = 2*s0^2*s1 - 3*s1.
  std::vector<std::vector<ctrl::Monomial>> terms(1);
  terms[0].push_back({2.0, {2, 1}});
  terms[0].push_back({-3.0, {0, 1}});
  const ctrl::PolynomialController poly(2, terms, "p");
  EXPECT_DOUBLE_EQ(poly.act({2.0, 3.0})[0], 2.0 * 4.0 * 3.0 - 9.0);
  EXPECT_EQ(poly.degree(), 3u);
}

TEST(PolynomialControllerTest, JacobianMatchesFiniteDifference) {
  std::vector<std::vector<ctrl::Monomial>> terms(1);
  terms[0].push_back({1.5, {2, 1}});
  terms[0].push_back({-0.5, {0, 3}});
  const ctrl::PolynomialController poly(2, terms, "p");
  const Vec s = {0.7, -0.4};
  const la::Matrix jac = poly.input_jacobian(s);
  const double h = 1e-6;
  for (std::size_t j = 0; j < 2; ++j) {
    Vec sp = s, sm = s;
    sp[j] += h;
    sm[j] -= h;
    EXPECT_NEAR(jac(0, j), (poly.act(sp)[0] - poly.act(sm)[0]) / (2.0 * h),
                1e-6);
  }
}

TEST(PolynomialControllerTest, LinearFeedbackActsAsMinusKs) {
  la::Matrix k(1, 3);
  k(0, 0) = 1.0;
  k(0, 1) = -2.0;
  k(0, 2) = 0.5;
  const auto poly = ctrl::PolynomialController::linear_feedback(k, "lin");
  const Vec s = {1.0, 1.0, 2.0};
  EXPECT_DOUBLE_EQ(poly.act(s)[0], -(1.0 - 2.0 + 1.0));
  EXPECT_EQ(poly.degree(), 1u);
  // Degree-1: exact Lipschitz bound = ||K||.
  EXPECT_NEAR(poly.lipschitz_bound(), k.spectral_norm(), 1e-9);
}

TEST(PolynomialControllerTest, HighDegreeLipschitzViaBox) {
  std::vector<std::vector<ctrl::Monomial>> terms(1);
  terms[0].push_back({1.0, {2}});  // u = s^2, slope 2|s| <= 2 on [-1,1].
  const ctrl::PolynomialController poly(1, terms, "sq");
  EXPECT_LT(poly.lipschitz_bound(), 0.0);  // no closed-form for degree 2.
  const double l = poly.lipschitz_over_box({-1.0}, {1.0}, 21);
  EXPECT_NEAR(l, 2.0, 1e-9);
}

TEST(LqrControllerTest, StabilizesVanDerPolLinearization) {
  const sys::VanDerPol vdp;
  const auto lqr = ctrl::LqrController::synthesize(vdp, 1.0, 0.1);
  // Simulate the true nonlinear system from a moderate state.
  Vec s = {0.8, -0.5};
  for (int t = 0; t < 300; ++t)
    s = vdp.step(s, vdp.clip_control(lqr.act(s)), {0.0});
  EXPECT_LT(la::norm_l2(s), 0.05);
}

TEST(LqrControllerTest, JacobianIsMinusGain) {
  const sys::ThreeD sys3;
  const auto lqr = ctrl::LqrController::synthesize(sys3, 1.0, 1.0);
  const la::Matrix jac = lqr.input_jacobian({0.1, 0.2, 0.3});
  for (std::size_t j = 0; j < 3; ++j)
    EXPECT_DOUBLE_EQ(jac(0, j), -lqr.gain()(0, j));
  EXPECT_NEAR(lqr.lipschitz_bound(), lqr.gain().spectral_norm(), 1e-12);
}

TEST(MixedControllerTest, WeightedSumWithClip) {
  // Two constant-ish experts via linear feedback; weight net fixed.
  la::Matrix k1(1, 2), k2(1, 2);
  k1(0, 0) = -6.0;  // act = +6 s0.
  k2(0, 1) = -2.0;  // act = +2 s1.
  auto e1 = std::make_shared<ctrl::PolynomialController>(
      ctrl::PolynomialController::linear_feedback(k1, "e1"));
  auto e2 = std::make_shared<ctrl::PolynomialController>(
      ctrl::PolynomialController::linear_feedback(k2, "e2"));
  nn::Mlp weight_net = nn::Mlp::make(2, {4}, 2, nn::Activation::kTanh,
                                     nn::Activation::kTanh, 7);
  const sys::Box u_bounds = sys::Box::symmetric(1, 5.0);
  const ctrl::MixedController mixed({e1, e2}, weight_net, 1.5, u_bounds);

  const Vec s = {1.0, 1.0};
  const Vec a = mixed.weights(s);
  ASSERT_EQ(a.size(), 2u);
  for (double w : a) EXPECT_LE(std::abs(w), 1.5);
  const double raw = a[0] * e1->act(s)[0] + a[1] * e2->act(s)[0];
  const double expected = std::clamp(raw, -5.0, 5.0);
  EXPECT_NEAR(mixed.act(s)[0], expected, 1e-12);
}

TEST(MixedControllerTest, ClipsToControlBounds) {
  la::Matrix k(1, 1);
  k(0, 0) = -100.0;  // enormous expert output.
  auto big = std::make_shared<ctrl::PolynomialController>(
      ctrl::PolynomialController::linear_feedback(k, "big"));
  nn::Mlp weight_net = nn::Mlp::make(1, {4}, 1, nn::Activation::kTanh,
                                     nn::Activation::kTanh, 8);
  const ctrl::MixedController mixed({big}, weight_net, 2.0,
                                    sys::Box::symmetric(1, 1.0));
  for (double s : {-1.0, -0.3, 0.4, 1.0})
    EXPECT_LE(std::abs(mixed.act({s})[0]), 1.0);
}

TEST(MixedControllerTest, RejectsWeightBoundBelowOne) {
  auto zero = std::make_shared<ctrl::ZeroController>(1, 1);
  nn::Mlp net = nn::Mlp::make(1, {2}, 1, nn::Activation::kTanh,
                              nn::Activation::kTanh, 9);
  EXPECT_THROW(ctrl::MixedController({zero}, net, 0.5,
                                     sys::Box::symmetric(1, 1.0)),
               std::invalid_argument);
}

TEST(MixedControllerTest, ReportsNoLipschitz) {
  auto zero = std::make_shared<ctrl::ZeroController>(1, 1);
  nn::Mlp net = nn::Mlp::make(1, {2}, 1, nn::Activation::kTanh,
                              nn::Activation::kTanh, 10);
  const ctrl::MixedController mixed({zero}, std::move(net), 1.5,
                                    sys::Box::symmetric(1, 1.0));
  EXPECT_LT(mixed.lipschitz_bound(), 0.0);  // Table I prints "-".
  EXPECT_FALSE(mixed.differentiable());
}

TEST(SwitchedControllerTest, PicksArgmaxExpert) {
  auto zero = std::make_shared<ctrl::ZeroController>(1, 1);
  la::Matrix k(1, 1);
  k(0, 0) = -1.0;
  auto lin = std::make_shared<ctrl::PolynomialController>(
      ctrl::PolynomialController::linear_feedback(k, "lin"));
  nn::Mlp selector = nn::Mlp::make(1, {4}, 2, nn::Activation::kTanh,
                                   nn::Activation::kIdentity, 11);
  const ctrl::SwitchedController switched({zero, lin}, selector, "AS");
  const Vec s = {0.8};
  const std::size_t chosen = switched.selected_expert(s);
  const Vec expected = chosen == 0 ? zero->act(s) : lin->act(s);
  EXPECT_EQ(switched.act(s), expected);
}

TEST(SwitchedControllerTest, OutputAlwaysMatchesSomeExpert) {
  // Property: for any state, AS's output equals one expert's output —
  // switching is a strict subset of the mixing action space.
  la::Matrix k1(1, 2), k2(1, 2);
  k1(0, 0) = -3.0;
  k2(0, 1) = -1.0;
  auto e1 = std::make_shared<ctrl::PolynomialController>(
      ctrl::PolynomialController::linear_feedback(k1, "e1"));
  auto e2 = std::make_shared<ctrl::PolynomialController>(
      ctrl::PolynomialController::linear_feedback(k2, "e2"));
  nn::Mlp selector = nn::Mlp::make(2, {6}, 2, nn::Activation::kTanh,
                                   nn::Activation::kIdentity, 12);
  const ctrl::SwitchedController switched({e1, e2}, std::move(selector));
  util::Rng rng(13);
  for (int trial = 0; trial < 50; ++trial) {
    const Vec s = rng.normal_vec(2);
    const double u = switched.act(s)[0];
    const bool matches =
        std::abs(u - e1->act(s)[0]) < 1e-12 ||
        std::abs(u - e2->act(s)[0]) < 1e-12;
    EXPECT_TRUE(matches);
  }
}

TEST(MpcControllerTest, StabilizesThreeDSystem) {
  auto system = std::make_shared<sys::ThreeD>();
  ctrl::MpcConfig config;
  config.planning_horizon = 10;
  config.samples = 64;
  config.elites = 8;
  config.iterations = 3;
  const ctrl::MpcController mpc(system, config);
  Vec s = {0.3, -0.2, 0.2};
  for (int t = 0; t < 80; ++t) {
    s = system->step(s, system->clip_control(mpc.act(s)), {});
    ASSERT_TRUE(system->is_safe(s)) << "left X at step " << t;
  }
  EXPECT_LT(la::norm_l2(s), 0.3);
}

TEST(MpcControllerTest, IsDeterministicPerState) {
  auto system = std::make_shared<sys::ThreeD>();
  ctrl::MpcConfig config;
  config.samples = 32;
  config.iterations = 2;
  const ctrl::MpcController mpc(system, config);
  const Vec s = {0.1, 0.0, -0.1};
  EXPECT_EQ(mpc.act(s), mpc.act(s));
}

TEST(ControllerBase, NonDifferentiableJacobianThrows) {
  auto system = std::make_shared<sys::ThreeD>();
  const ctrl::MpcController mpc(system);
  EXPECT_FALSE(mpc.differentiable());
  EXPECT_THROW((void)mpc.input_jacobian({0.0, 0.0, 0.0}), std::logic_error);
  EXPECT_LT(mpc.lipschitz_bound(), 0.0);
}

}  // namespace
}  // namespace cocktail
