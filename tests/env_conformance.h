// Universal rl::Env conformance suite.
//
// Every Env implementation in the tree — the adaptive-mixing MDP, the AS
// switching env, the finite-weighted middle rung, the per-expert DDPG task
// env, and the point-mass test envs — is run through the same parameterized
// gtest fixture, pinning the contract documented in rl/env.h:
//   * state/action dimensions and the horizon are positive and consistent
//     with what reset/step actually produce;
//   * reset and whole trajectories are deterministic functions of the
//     caller's RNG stream;
//   * clone() yields an independent replica: stepping a clone never
//     perturbs the original, and a mid-episode clone continues exactly as
//     the original would;
//   * terminal means terminal: the env never flags (or forbids) stepping at
//     the time limit — truncation belongs to the training loop — and
//     stepping a finished episode throws until the next reset.
//
// Register an env by appending an EnvConformanceCase to the list in
// test_env_conformance.cpp.  New Env implementations MUST be added there.
#pragma once

#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "rl/env.h"
#include "util/rng.h"

namespace cocktail::testutil {

struct EnvConformanceCase {
  /// Suite-instance name ([A-Za-z0-9_] only — gtest parameter naming).
  std::string name;
  /// Fresh, independently-constructed instance of the env under test.
  std::function<std::unique_ptr<rl::Env>()> make;
  /// A valid action for state `s` at episode step `t` that keeps the
  /// episode alive whenever possible (full-horizon episodes exercise the
  /// time-limit path).  Discrete envs return the choice index in [0].
  std::function<la::Vec(const la::Vec& s, int t)> benign_action;
  /// A valid action sequence that eventually drives the env to a terminal
  /// state; null when the env has no terminal states at all.
  std::function<la::Vec(const la::Vec& s, int t)> unsafe_action;
};

inline std::string env_case_name(
    const ::testing::TestParamInfo<EnvConformanceCase>& info) {
  return info.param.name;
}

class EnvConformance : public ::testing::TestWithParam<EnvConformanceCase> {
 protected:
  /// One recorded step of a probe trajectory (bitwise-comparable).
  struct Probe {
    la::Vec state;
    double reward = 0.0;
    bool terminal = false;
  };

  /// Runs up to `episodes` episodes of at most one horizon each with the
  /// case's benign action, all stochasticity from `rng`; returns the flat
  /// step record.  Resets on terminal so the trace always has full length.
  [[nodiscard]] std::vector<Probe> benign_trace(rl::Env& env, util::Rng& rng,
                                                int episodes) const {
    const auto& param = GetParam();
    std::vector<Probe> trace;
    for (int e = 0; e < episodes; ++e) {
      la::Vec s = env.reset(rng);
      for (int t = 0; t < env.max_episode_steps(); ++t) {
        const rl::StepResult result = env.step(param.benign_action(s, t), rng);
        trace.push_back({result.next_state, result.reward, result.terminal});
        if (result.terminal) break;
        s = result.next_state;
      }
    }
    return trace;
  }

  static void expect_same_trace(const std::vector<Probe>& a,
                                const std::vector<Probe>& b) {
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].state, b[i].state) << "step " << i;       // bitwise.
      EXPECT_EQ(a[i].reward, b[i].reward) << "step " << i;     // bitwise.
      EXPECT_EQ(a[i].terminal, b[i].terminal) << "step " << i;
    }
  }
};

TEST_P(EnvConformance, DimensionsAndHorizonAreConsistent) {
  const auto env = GetParam().make();
  ASSERT_NE(env, nullptr);
  EXPECT_GT(env->state_dim(), 0u);
  EXPECT_GT(env->action_dim(), 0u);
  EXPECT_GT(env->max_episode_steps(), 0);

  util::Rng rng(11);
  const la::Vec s0 = env->reset(rng);
  EXPECT_EQ(s0.size(), env->state_dim());
  const rl::StepResult result =
      env->step(GetParam().benign_action(s0, 0), rng);
  EXPECT_EQ(result.next_state.size(), env->state_dim());

  // The clone reports the identical interface.
  const auto copy = env->clone();
  ASSERT_NE(copy, nullptr);
  EXPECT_EQ(copy->state_dim(), env->state_dim());
  EXPECT_EQ(copy->action_dim(), env->action_dim());
  EXPECT_EQ(copy->max_episode_steps(), env->max_episode_steps());
}

TEST_P(EnvConformance, ResetIsDeterministicPerRngStream) {
  const auto a = GetParam().make();
  const auto b = GetParam().make();
  for (const std::uint64_t seed : {1ULL, 77ULL, 424242ULL}) {
    util::Rng rng_a(seed), rng_b(seed);
    EXPECT_EQ(a->reset(rng_a), b->reset(rng_b)) << "seed " << seed;
  }
  // Re-resetting the same instance with a fresh identical stream replays
  // the identical initial state (no hidden cross-episode state).
  util::Rng first(5), second(5);
  EXPECT_EQ(a->reset(first), a->reset(second));
}

TEST_P(EnvConformance, TrajectoriesAreDeterministicPerRngStream) {
  const auto a = GetParam().make();
  const auto b = GetParam().make();
  util::Rng rng_a(97), rng_b(97);
  expect_same_trace(benign_trace(*a, rng_a, 3), benign_trace(*b, rng_b, 3));
}

TEST_P(EnvConformance, CloneDoesNotPerturbTheOriginal) {
  // `original` and `control` are put in identical states; a clone of
  // `original` is then hammered.  If the clone shared any mutable state
  // with its source, the original's subsequent trajectory would diverge
  // from the control's.
  const auto& param = GetParam();
  const auto original = param.make();
  const auto control = param.make();
  {
    util::Rng rng_o(13), rng_c(13);
    ASSERT_EQ(original->reset(rng_o), control->reset(rng_c));
  }
  const auto clone = original->clone();
  util::Rng hammer(99);
  (void)benign_trace(*clone, hammer, 2);

  util::Rng rng_o(31), rng_c(31);
  expect_same_trace(benign_trace(*original, rng_o, 2),
                    benign_trace(*control, rng_c, 2));
}

TEST_P(EnvConformance, MidEpisodeCloneContinuesLikeTheOriginal) {
  const auto& param = GetParam();
  const auto env = param.make();
  util::Rng rng(7);
  la::Vec s = env->reset(rng);
  for (int t = 0; t < 3; ++t) {
    const rl::StepResult result = env->step(param.benign_action(s, t), rng);
    if (result.terminal) {
      s = env->reset(rng);
      continue;
    }
    s = result.next_state;
  }
  const auto clone = env->clone();
  // From here both instances must evolve identically under identical
  // streams and actions (the clone copied the full mid-episode state).
  util::Rng rng_env(55), rng_clone(55);
  la::Vec s_env = s, s_clone = s;
  for (int t = 0; t < 5; ++t) {
    const rl::StepResult r_env =
        env->step(param.benign_action(s_env, t), rng_env);
    const rl::StepResult r_clone =
        clone->step(param.benign_action(s_clone, t), rng_clone);
    EXPECT_EQ(r_env.next_state, r_clone.next_state) << "step " << t;
    EXPECT_EQ(r_env.reward, r_clone.reward) << "step " << t;
    EXPECT_EQ(r_env.terminal, r_clone.terminal) << "step " << t;
    if (r_env.terminal || r_clone.terminal) break;
    s_env = r_env.next_state;
    s_clone = r_clone.next_state;
  }
}

TEST_P(EnvConformance, TimeLimitIsTruncationNotTermination) {
  // The horizon belongs to the training loop: an episode that survives
  // max_episode_steps benign steps must have terminal == false throughout,
  // and the env must still accept a further step (no hidden step counter
  // conflating truncation with termination).
  const auto& param = GetParam();
  const auto env = param.make();
  util::Rng rng(17);
  bool completed_full_episode = false;
  for (int attempt = 0; attempt < 50 && !completed_full_episode; ++attempt) {
    la::Vec s = env->reset(rng);
    bool terminated = false;
    for (int t = 0; t < env->max_episode_steps(); ++t) {
      const rl::StepResult result = env->step(param.benign_action(s, t), rng);
      if (result.terminal) {
        terminated = true;
        break;
      }
      s = result.next_state;
    }
    if (terminated) continue;
    completed_full_episode = true;
    // One step past the horizon is legal and must not be flagged terminal
    // just because the time limit passed.
    EXPECT_NO_THROW({
      const rl::StepResult past = env->step(
          param.benign_action(s, env->max_episode_steps()), rng);
      (void)past;
    });
  }
  EXPECT_TRUE(completed_full_episode)
      << "benign action never survived a full horizon — either the action "
         "is not benign or the env terminates on the time limit";
}

TEST_P(EnvConformance, StepAfterTerminalThrowsUntilReset) {
  const auto& param = GetParam();
  if (!param.unsafe_action)
    GTEST_SKIP() << "env has no terminal states";
  const auto env = param.make();
  util::Rng rng(23);
  bool found_terminal = false;
  for (int episode = 0; episode < 300 && !found_terminal; ++episode) {
    la::Vec s = env->reset(rng);
    for (int t = 0; t < env->max_episode_steps(); ++t) {
      const rl::StepResult result = env->step(param.unsafe_action(s, t), rng);
      if (result.terminal) {
        found_terminal = true;
        break;
      }
      s = result.next_state;
    }
  }
  ASSERT_TRUE(found_terminal)
      << "unsafe action never reached a terminal state";
  // The episode is over: stepping again without reset is a contract
  // violation (previously silently undefined per-env behavior)...
  EXPECT_THROW((void)env->step(param.unsafe_action({0.0}, 0), rng),
               std::logic_error);
  // ...and reset rearms the env.
  la::Vec s = env->reset(rng);
  EXPECT_NO_THROW((void)env->step(param.benign_action(s, 0), rng));
}

}  // namespace cocktail::testutil
