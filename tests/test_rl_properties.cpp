// Property tests for the RL substrate primitives:
//   * rl::compute_gae — λ = 0 collapses to the one-step TD residual, λ = 1
//     to the discounted Monte-Carlo residual, terminal boundaries drop the
//     bootstrap while truncation keeps it, and the whole batch equals the
//     segment-wise reference implementation bitwise;
//   * rl::ReplayBuffer — ring wraparound keeps exactly the newest
//     `capacity` transitions, sampling stays within bounds, and draws are
//     deterministic per RNG stream.
// Randomized inputs come from seeded util::Rng streams so every property is
// exercised over many shapes yet stays exactly reproducible.
#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <set>
#include <vector>

#include "rl/gae.h"
#include "rl/replay_buffer.h"
#include "util/rng.h"

namespace cocktail {
namespace {

/// Random batch with episode boundaries: each step is terminal with
/// probability p_term, truncated with p_trunc (never both).
rl::RolloutBatch random_batch(std::size_t n, util::Rng& rng,
                              double p_term = 0.06, double p_trunc = 0.06) {
  rl::RolloutBatch batch;
  for (std::size_t i = 0; i < n; ++i) {
    batch.states.push_back({rng.uniform(-1.0, 1.0)});
    batch.actions.push_back({rng.uniform(-1.0, 1.0)});
    batch.rewards.push_back(rng.uniform(-2.0, 2.0));
    batch.values.push_back(rng.uniform(-1.0, 1.0));
    batch.next_values.push_back(rng.uniform(-1.0, 1.0));
    batch.log_probs.push_back(rng.uniform(-3.0, 0.0));
    const bool terminal = rng.bernoulli(p_term);
    batch.terminal.push_back(terminal);
    batch.truncated.push_back(!terminal && rng.bernoulli(p_trunc));
  }
  return batch;
}

/// δ_t = r_t + γ·V(s_{t+1})·(1 - terminal_t) − V(s_t), the common residual.
double td_delta(const rl::RolloutBatch& batch, std::size_t t, double gamma) {
  const double not_terminal = batch.terminal[t] ? 0.0 : 1.0;
  return batch.rewards[t] + gamma * batch.next_values[t] * not_terminal -
         batch.values[t];
}

TEST(GaeProperties, LambdaZeroIsOneStepTdResidual) {
  util::Rng rng(101);
  for (int trial = 0; trial < 10; ++trial) {
    const auto batch = random_batch(120, rng);
    const auto adv = rl::compute_gae(batch, 0.93, 0.0, /*normalize=*/false);
    for (std::size_t t = 0; t < batch.size(); ++t) {
      // λ = 0 kills the recursion term exactly (delta + γ·0·gae), so the
      // equality is bitwise, not approximate.
      EXPECT_EQ(adv.advantages[t], td_delta(batch, t, 0.93)) << "t=" << t;
      EXPECT_EQ(adv.returns[t], adv.advantages[t] + batch.values[t]);
    }
  }
}

TEST(GaeProperties, LambdaOneIsDiscountedMonteCarloResidual) {
  util::Rng rng(102);
  const double gamma = 0.9;
  for (int trial = 0; trial < 10; ++trial) {
    const auto batch = random_batch(100, rng);
    const auto adv = rl::compute_gae(batch, gamma, 1.0, /*normalize=*/false);
    for (std::size_t t = 0; t < batch.size(); ++t) {
      // Â_t = Σ_{k=t}^{b} γ^{k-t} δ_k up to the episode boundary b: the
      // full discounted return-to-go minus the value baseline.
      double expected = 0.0;
      double discount = 1.0;
      for (std::size_t k = t; k < batch.size(); ++k) {
        expected += discount * td_delta(batch, k, gamma);
        discount *= gamma;
        if (batch.terminal[k] || batch.truncated[k]) break;
      }
      EXPECT_NEAR(adv.advantages[t], expected, 1e-9) << "t=" << t;
    }
  }
}

TEST(GaeProperties, TerminalDropsBootstrapTruncationKeepsIt) {
  // Two single-step batches identical except for the boundary kind: the
  // terminal one must ignore next_value entirely, the truncated one must
  // bootstrap through it.
  rl::RolloutBatch batch;
  batch.states = {{0.0}};
  batch.actions = {{0.0}};
  batch.rewards = {1.5};
  batch.values = {0.25};
  batch.next_values = {4.0};
  batch.log_probs = {0.0};
  batch.terminal = {true};
  batch.truncated = {false};
  const auto terminal = rl::compute_gae(batch, 0.9, 0.95, false);
  EXPECT_DOUBLE_EQ(terminal.advantages[0], 1.5 - 0.25);

  batch.terminal = {false};
  batch.truncated = {true};
  const auto truncated = rl::compute_gae(batch, 0.9, 0.95, false);
  EXPECT_DOUBLE_EQ(truncated.advantages[0], 1.5 + 0.9 * 4.0 - 0.25);
}

TEST(GaeProperties, MatchesSegmentwiseReferenceBitwise) {
  // Splitting the batch at its episode boundaries and running the recursion
  // per segment performs the identical arithmetic in the identical order,
  // so the whole-batch result must match bitwise — the λ-chain can never
  // leak across a terminal or truncation boundary.
  util::Rng rng(103);
  for (int trial = 0; trial < 5; ++trial) {
    const auto batch = random_batch(90, rng, 0.1, 0.1);
    const double gamma = 0.97, lambda = 0.8;
    const auto adv = rl::compute_gae(batch, gamma, lambda, false);
    std::vector<double> reference(batch.size(), 0.0);
    std::size_t segment_end = batch.size();  // one past the segment.
    for (std::size_t t = batch.size(); t-- > 0;) {
      if (batch.terminal[t] || batch.truncated[t]) segment_end = t + 1;
      double gae = 0.0;
      for (std::size_t k = segment_end; k-- > t;) {
        const bool boundary = batch.terminal[k] || batch.truncated[k];
        gae = td_delta(batch, k, gamma) +
              (boundary ? 0.0 : gamma * lambda * gae);
      }
      reference[t] = gae;
    }
    for (std::size_t t = 0; t < batch.size(); ++t)
      EXPECT_EQ(adv.advantages[t], reference[t]) << "t=" << t;
  }
}

TEST(ReplayBufferProperties, WraparoundKeepsExactlyTheNewestCapacity) {
  // Overfill by 2.5x: only the newest `capacity` rewards may ever be
  // sampled, and all of them must be reachable.
  const std::size_t capacity = 8;
  rl::ReplayBuffer buffer(capacity);
  const int added = 20;
  for (int i = 0; i < added; ++i)
    buffer.add({{static_cast<double>(i)}, {0.0}, static_cast<double>(i),
                {0.0}, false});
  EXPECT_EQ(buffer.size(), capacity);
  EXPECT_EQ(buffer.capacity(), capacity);

  util::Rng rng(7);
  std::set<int> seen;
  for (int draw = 0; draw < 400; ++draw) {
    for (const auto* tr : buffer.sample(4, rng)) {
      const int reward = static_cast<int>(tr->reward);
      EXPECT_GE(reward, added - static_cast<int>(capacity));
      EXPECT_LT(reward, added);
      seen.insert(reward);
    }
  }
  EXPECT_EQ(seen.size(), capacity);  // every survivor reachable.
}

TEST(ReplayBufferProperties, SamplesStayWithinBounds) {
  rl::ReplayBuffer buffer(64);
  util::Rng fill(8);
  for (int i = 0; i < 11; ++i)  // partially filled: bound is size, not cap.
    buffer.add({{fill.uniform(-1.0, 1.0)}, {0.0}, static_cast<double>(i),
                {0.0}, false});
  util::Rng rng(9);
  for (int draw = 0; draw < 100; ++draw) {
    const auto batch = buffer.sample(5, rng);
    ASSERT_EQ(batch.size(), 5u);
    for (const auto* tr : batch) {
      ASSERT_NE(tr, nullptr);
      EXPECT_GE(tr->reward, 0.0);
      EXPECT_LT(tr->reward, 11.0);
    }
  }
}

TEST(ReplayBufferProperties, DrawsAreDeterministicPerRngStream) {
  rl::ReplayBuffer buffer(16);
  for (int i = 0; i < 16; ++i)
    buffer.add({{0.0}, {0.0}, static_cast<double>(i), {0.0}, false});

  const auto draw_rewards = [&](std::uint64_t seed) {
    util::Rng rng(seed);
    std::vector<double> rewards;
    for (int k = 0; k < 64; ++k)
      for (const auto* tr : buffer.sample(3, rng))
        rewards.push_back(tr->reward);
    return rewards;
  };
  EXPECT_EQ(draw_rewards(5), draw_rewards(5));    // same stream, same draws.
  EXPECT_NE(draw_rewards(5), draw_rewards(6));    // streams decorrelated.
}

}  // namespace
}  // namespace cocktail
