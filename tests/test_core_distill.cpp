// Tests for the robust distiller (Algorithm 1 lines 11-15): dataset
// construction, regression quality, and the paper's two key claims —
// L2 + FGSM training shrinks the student's Lipschitz constant, and the
// robust student deviates less under input perturbations.
#include <gtest/gtest.h>

#include <cmath>

#include "control/lqr_controller.h"
#include "core/distiller.h"
#include "rl_test_common.h"
#include "sys/vanderpol.h"

namespace cocktail {
namespace {

using la::Vec;
using testutil::expect_same_net;

core::DistillConfig tiny_config() {
  core::DistillConfig config;
  config.teacher_rollouts = 5;
  config.uniform_samples = 600;
  config.student_hidden = {16, 16};
  config.epochs = 60;
  config.seed = 42;
  return config;
}

TEST(DistillDataset, ContainsRolloutAndUniformSamples) {
  const sys::VanDerPol vdp;
  const auto lqr = ctrl::LqrController::synthesize(vdp, 1.0, 0.5);
  const auto config = tiny_config();
  const auto data = core::build_distill_dataset(vdp, lqr, config);
  EXPECT_GE(data.size(), static_cast<std::size_t>(config.uniform_samples));
  ASSERT_EQ(data.states.size(), data.controls.size());
  // Labels must be clipped teacher outputs.
  for (std::size_t i = 0; i < data.size(); i += 50) {
    const Vec expected = vdp.clip_control(lqr.act(data.states[i]));
    EXPECT_NEAR(data.controls[i][0], expected[0], 1e-9);
  }
}

TEST(DistillDataset, StatesInsideSamplingRegion) {
  const sys::VanDerPol vdp;
  const auto lqr = ctrl::LqrController::synthesize(vdp, 1.0, 0.5);
  const auto data = core::build_distill_dataset(vdp, lqr, tiny_config());
  const sys::Box region = vdp.sampling_region();
  std::size_t inside = 0;
  for (const auto& s : data.states) inside += region.contains(s);
  // Rollout states stay in X (teacher is stabilizing); uniform ones are in
  // the region by construction.
  EXPECT_EQ(inside, data.size());
}

TEST(Distill, StudentTracksTeacher) {
  const sys::VanDerPol vdp;
  const auto lqr = ctrl::LqrController::synthesize(vdp, 1.0, 0.5);
  const auto result = core::distill(vdp, lqr, tiny_config(), "student");
  EXPECT_LT(result.final_loss, 0.5);  // u ranges over [-20, 20]: MSE 0.5 is ~1% RMS.
  // Check pointwise agreement on fresh states.
  util::Rng rng(7);
  double max_err = 0.0;
  for (int k = 0; k < 200; ++k) {
    const Vec s = vdp.sampling_region().sample(rng);
    const double u_teacher = vdp.clip_control(lqr.act(s))[0];
    const double u_student = result.student->act(s)[0];
    max_err = std::max(max_err, std::abs(u_teacher - u_student));
  }
  EXPECT_LT(max_err, 4.0);  // 10% of the control range.
}

TEST(Distill, DirectConfigDisablesRobustness) {
  const auto config = tiny_config();
  const auto direct = config.direct();
  EXPECT_EQ(direct.adversarial_prob, 0.0);
  EXPECT_EQ(direct.lambda_l2, 0.0);
  EXPECT_EQ(direct.epochs, config.epochs);
}

TEST(Distill, RobustStudentHasSmallerLipschitz) {
  // The paper's central distillation claim (Table I: L(κ*) < L(κD)).
  const sys::VanDerPol vdp;
  const auto lqr = ctrl::LqrController::synthesize(vdp, 1.0, 0.5);
  auto config = tiny_config();
  config.lambda_l2 = 1e-3;
  config.adversarial_prob = 0.5;
  const auto robust = core::distill(vdp, lqr, config, "kstar");
  const auto direct = core::distill(vdp, lqr, config.direct(), "kD");
  EXPECT_LT(robust.lipschitz, direct.lipschitz);
}

TEST(Distill, RobustStudentDeviatesLessUnderPerturbation) {
  // Robustness claim behind Table II: same-size input perturbations change
  // κ*'s output less than κD's.
  const sys::VanDerPol vdp;
  const auto lqr = ctrl::LqrController::synthesize(vdp, 1.0, 0.5);
  auto config = tiny_config();
  config.lambda_l2 = 1e-3;
  const auto robust = core::distill(vdp, lqr, config, "kstar");
  const auto direct = core::distill(vdp, lqr, config.direct(), "kD");
  util::Rng rng(9);
  double dev_robust = 0.0, dev_direct = 0.0;
  for (int k = 0; k < 300; ++k) {
    const Vec s = vdp.sampling_region().sample(rng);
    Vec delta = {rng.uniform(-0.2, 0.2), rng.uniform(-0.2, 0.2)};
    const Vec sp = la::add(s, delta);
    dev_robust += std::abs(robust.student->act(sp)[0] -
                           robust.student->act(s)[0]);
    dev_direct += std::abs(direct.student->act(sp)[0] -
                           direct.student->act(s)[0]);
  }
  EXPECT_LT(dev_robust, dev_direct);
}

TEST(Distill, SpectralProjectionBoundsCertifiedL) {
  // Extension knob (Pauli et al. [19]): with a per-layer spectral cap c,
  // d layers, and output scaling |U| = 20, the certified Lipschitz product
  // is at most 20·c^d.
  const sys::VanDerPol vdp;
  const auto lqr = ctrl::LqrController::synthesize(vdp, 1.0, 0.5);
  auto config = tiny_config();
  config.lambda_l2 = 0.0;
  config.spectral_norm_cap = 3.0;
  const auto result = core::distill(vdp, lqr, config, "projected");
  // Student has 3 layers (2 hidden): L <= 20 * 3^3 (+ spectral-norm slack).
  EXPECT_LE(result.lipschitz, 20.0 * 27.0 * 1.05);
  // And it must still track the teacher reasonably (normalized loss).
  EXPECT_LT(result.final_loss, 0.05);
}

TEST(Distill, ProjectionTighterThanUnregularized) {
  const sys::VanDerPol vdp;
  const auto lqr = ctrl::LqrController::synthesize(vdp, 1.0, 0.5);
  auto config = tiny_config();
  config.lambda_l2 = 0.0;
  const auto plain = core::distill(vdp, lqr, config, "plain");
  // Pick a cap below the unregularized per-layer norms so it must bind.
  config.spectral_norm_cap = 1.0;
  const auto projected = core::distill(vdp, lqr, config, "projected");
  EXPECT_LT(projected.lipschitz, plain.lipschitz);
  EXPECT_LE(projected.lipschitz, 20.0 * std::pow(1.0, 3.0) * 1.05);
}

TEST(DistillDataset, BitwiseIdenticalForAnyWorkerCount) {
  const sys::VanDerPol vdp;
  const auto lqr = ctrl::LqrController::synthesize(vdp, 1.0, 0.5);
  auto config = tiny_config();
  config.num_workers = 1;
  const auto reference = core::build_distill_dataset(vdp, lqr, config);
  for (const int workers : {2, 8}) {
    config.num_workers = workers;
    const auto data = core::build_distill_dataset(vdp, lqr, config);
    ASSERT_EQ(data.size(), reference.size()) << workers << " workers";
    EXPECT_EQ(data.states, reference.states) << workers << " workers";
    EXPECT_EQ(data.controls, reference.controls) << workers << " workers";
  }
}

TEST(Distill, BitwiseIdenticalForAnyWorkerCount) {
  // The whole-pipeline determinism claim: per-rollout RNG streams for the
  // dataset plus the fixed-order gradient reduction make the trained
  // student bitwise identical for any worker count.
  const sys::VanDerPol vdp;
  const auto lqr = ctrl::LqrController::synthesize(vdp, 1.0, 0.5);
  auto config = tiny_config();
  config.epochs = 12;  // enough steps for any divergence to compound.
  config.num_workers = 1;
  const auto reference = core::distill(vdp, lqr, config, "serial");
  for (const int workers : {2, 8}) {
    config.num_workers = workers;
    const auto parallel = core::distill(vdp, lqr, config, "parallel");
    expect_same_net(parallel.student->net(), reference.student->net(),
                    workers);
    EXPECT_EQ(parallel.final_loss, reference.final_loss)
        << workers << " workers";
    EXPECT_EQ(parallel.lipschitz, reference.lipschitz)
        << workers << " workers";
  }
}

TEST(Distill, DeterministicForFixedSeed) {
  const sys::VanDerPol vdp;
  const auto lqr = ctrl::LqrController::synthesize(vdp, 1.0, 0.5);
  const auto a = core::distill(vdp, lqr, tiny_config(), "s1");
  const auto b = core::distill(vdp, lqr, tiny_config(), "s2");
  EXPECT_DOUBLE_EQ(a.student->act({0.3, -0.3})[0],
                   b.student->act({0.3, -0.3})[0]);
}

}  // namespace
}  // namespace cocktail
