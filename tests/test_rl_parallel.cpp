// Bitwise regression tests for the parallel PPO/DDPG training paths:
//   * minibatch gradients — the per-sample gradient work inside one update
//     fans across the pool with per-chunk buffers merged on the fixed
//     chunked-reduce tree, so a trained network must be bitwise identical
//     for any worker count (the same contract test_core_distill pins for
//     the distiller);
//   * sharded collection — PPO collect() and DDPG's warmup exploration
//     decompose into per-episode RNG slots merged in fixed slot order, so
//     training must also be bitwise identical for any num_env_shards
//     (1/2/8 sweeps below) and any worker count, including end-to-end
//     through adaptive mixing + distillation (the golden pipeline check).
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "control/polynomial_controller.h"
#include "core/distiller.h"
#include "core/mixing.h"
#include "nn/grad_reduce.h"
#include "nn/loss.h"
#include "nn/mlp.h"
#include "rl/ddpg.h"
#include "rl/env.h"
#include "rl/ppo.h"
#include "rl_test_common.h"
#include "sys/vanderpol.h"
#include "util/thread_pool.h"

namespace cocktail {
namespace {

using la::Vec;
using testutil::DiscretePointMassEnv;
using testutil::PointMassEnv;
using testutil::expect_same_net;

rl::PpoConfig tiny_ppo(std::uint64_t seed) {
  rl::PpoConfig config;
  config.policy_hidden = {12, 12};
  config.value_hidden = {16, 16};
  config.iterations = 4;  // enough updates for any divergence to compound.
  config.steps_per_iteration = 200;
  config.update_epochs = 3;
  config.minibatch = 48;  // not a multiple of the grain: ragged last chunk.
  config.entropy_coef = 0.01;
  config.seed = seed;
  return config;
}

TEST(PpoGaussianParallel, BitwiseIdenticalForAnyWorkerCount) {
  rl::PpoConfig config = tiny_ppo(21);
  config.num_workers = 1;
  PointMassEnv env_ref;
  rl::PpoGaussian reference(config);
  const rl::PpoStats ref_stats = reference.train(env_ref);
  for (const int workers : {2, 8}) {
    config.num_workers = workers;
    PointMassEnv env;
    rl::PpoGaussian parallel(config);
    const rl::PpoStats stats = parallel.train(env);
    expect_same_net(parallel.policy().mean_net(), reference.policy().mean_net(),
                    workers);
    expect_same_net(parallel.value_net(), reference.value_net(), workers);
    EXPECT_EQ(parallel.policy().log_std(), reference.policy().log_std())
        << workers << " workers";
    EXPECT_EQ(stats.iteration_mean_returns, ref_stats.iteration_mean_returns)
        << workers << " workers";
    EXPECT_EQ(stats.iteration_kls, ref_stats.iteration_kls)
        << workers << " workers";
  }
}

TEST(PpoGaussianParallel, ClipVariantBitwiseIdenticalToo) {
  // The clipped surrogate zeroes some per-sample coefficients — the chunk
  // tree must not care which.
  rl::PpoConfig config = tiny_ppo(22);
  config.use_clip = true;
  config.num_workers = 1;
  PointMassEnv env_ref;
  rl::PpoGaussian reference(config);
  (void)reference.train(env_ref);
  config.num_workers = 8;
  PointMassEnv env;
  rl::PpoGaussian parallel(config);
  (void)parallel.train(env);
  expect_same_net(parallel.policy().mean_net(), reference.policy().mean_net(),
                  8);
}

TEST(PpoCategoricalParallel, BitwiseIdenticalForAnyWorkerCount) {
  rl::PpoConfig config = tiny_ppo(23);
  config.num_workers = 1;
  DiscretePointMassEnv env_ref;
  rl::PpoCategorical reference(config);
  const rl::PpoStats ref_stats = reference.train(env_ref);
  for (const int workers : {2, 8}) {
    config.num_workers = workers;
    DiscretePointMassEnv env;
    rl::PpoCategorical parallel(config);
    const rl::PpoStats stats = parallel.train(env);
    expect_same_net(parallel.policy().logits_net(),
                    reference.policy().logits_net(), workers);
    EXPECT_EQ(stats.iteration_mean_returns, ref_stats.iteration_mean_returns)
        << workers << " workers";
    EXPECT_EQ(stats.iteration_kls, ref_stats.iteration_kls)
        << workers << " workers";
  }
}

TEST(DdpgParallel, BitwiseIdenticalForAnyWorkerCount) {
  rl::DdpgConfig config;
  config.actor_hidden = {12, 12};
  config.critic_hidden = {16, 16};
  config.episodes = 12;
  config.warmup_steps = 120;
  config.batch_size = 48;
  config.seed = 24;
  config.num_workers = 1;
  PointMassEnv env_ref;
  rl::Ddpg reference(config);
  const rl::DdpgStats ref_stats = reference.train(env_ref);
  for (const int workers : {2, 8}) {
    config.num_workers = workers;
    PointMassEnv env;
    rl::Ddpg parallel(config);
    const rl::DdpgStats stats = parallel.train(env);
    expect_same_net(parallel.actor(), reference.actor(), workers);
    expect_same_net(parallel.critic(), reference.critic(), workers);
    EXPECT_EQ(stats.episode_returns, ref_stats.episode_returns)
        << workers << " workers";
  }
}

// --- sharded collection golden-determinism sweeps --------------------------

TEST(PpoGaussianSharded, BitwiseIdenticalForAnyShardCount) {
  rl::PpoConfig config = tiny_ppo(31);
  config.num_workers = 1;
  config.num_env_shards = 1;
  PointMassEnv env_ref;
  rl::PpoGaussian reference(config);
  const rl::PpoStats ref_stats = reference.train(env_ref);
  // Shard and worker counts sweep together: the episode-slot decomposition
  // must shield the results from both.
  for (const auto& [shards, workers] : {std::pair{2, 2}, std::pair{8, 4}}) {
    config.num_env_shards = shards;
    config.num_workers = workers;
    PointMassEnv env;
    rl::PpoGaussian sharded(config);
    const rl::PpoStats stats = sharded.train(env);
    expect_same_net(sharded.policy().mean_net(), reference.policy().mean_net(),
                    shards);
    expect_same_net(sharded.value_net(), reference.value_net(), shards);
    EXPECT_EQ(sharded.policy().log_std(), reference.policy().log_std())
        << shards << " shards";
    EXPECT_EQ(stats.iteration_mean_returns, ref_stats.iteration_mean_returns)
        << shards << " shards";
    EXPECT_EQ(stats.iteration_kls, ref_stats.iteration_kls)
        << shards << " shards";
  }
}

TEST(PpoCategoricalSharded, BitwiseIdenticalForAnyShardCount) {
  rl::PpoConfig config = tiny_ppo(32);
  config.num_workers = 1;
  config.num_env_shards = 1;
  DiscretePointMassEnv env_ref;
  rl::PpoCategorical reference(config);
  const rl::PpoStats ref_stats = reference.train(env_ref);
  for (const auto& [shards, workers] : {std::pair{2, 2}, std::pair{8, 4}}) {
    config.num_env_shards = shards;
    config.num_workers = workers;
    DiscretePointMassEnv env;
    rl::PpoCategorical sharded(config);
    const rl::PpoStats stats = sharded.train(env);
    expect_same_net(sharded.policy().logits_net(),
                    reference.policy().logits_net(), shards);
    EXPECT_EQ(stats.iteration_mean_returns, ref_stats.iteration_mean_returns)
        << shards << " shards";
    EXPECT_EQ(stats.iteration_kls, ref_stats.iteration_kls)
        << shards << " shards";
  }
}

TEST(DdpgSharded, BitwiseIdenticalForAnyShardCount) {
  rl::DdpgConfig config;
  config.actor_hidden = {12, 12};
  config.critic_hidden = {16, 16};
  config.episodes = 12;
  config.warmup_steps = 150;  // ~5 warmup episodes: several waves at 2 shards.
  config.batch_size = 48;
  config.seed = 33;
  config.num_workers = 1;
  config.num_env_shards = 1;
  PointMassEnv env_ref;
  rl::Ddpg reference(config);
  const rl::DdpgStats ref_stats = reference.train(env_ref);
  for (const auto& [shards, workers] : {std::pair{2, 2}, std::pair{8, 4}}) {
    config.num_env_shards = shards;
    config.num_workers = workers;
    PointMassEnv env;
    rl::Ddpg sharded(config);
    const rl::DdpgStats stats = sharded.train(env);
    expect_same_net(sharded.actor(), reference.actor(), shards);
    expect_same_net(sharded.critic(), reference.critic(), shards);
    EXPECT_EQ(stats.episode_returns, ref_stats.episode_returns)
        << shards << " shards";
  }
}

TEST(DdpgSharded, WarmupSplitAcrossRunCallsMatchesMonolithic) {
  // The warmup slot cursor persists across run_episodes calls: consuming
  // the warmup in two chunks (the checkpointed-trainer pattern) must replay
  // the identical slot streams as one call.
  rl::DdpgConfig config;
  config.actor_hidden = {10};
  config.critic_hidden = {12};
  config.episodes = 10;
  config.warmup_steps = 150;
  config.batch_size = 32;
  config.seed = 34;
  config.num_env_shards = 4;
  PointMassEnv env_a, env_b;
  rl::Ddpg mono(config), chunked(config);
  (void)mono.train(env_a);
  chunked.initialize(env_b);
  (void)chunked.run_episodes(env_b, 3);  // splits mid-warmup.
  (void)chunked.run_episodes(env_b, 7);
  expect_same_net(mono.actor(), chunked.actor(), 4);
  expect_same_net(mono.critic(), chunked.critic(), 4);
}

TEST(ShardedPipelineGolden, MixingPlusDistillationIdenticalAcrossShardCounts) {
  // End-to-end golden check: adaptive mixing (sharded PPO collection on the
  // real MixingEnv) followed by robust distillation must produce bitwise
  // identical distilled students for any env-shard count and for repeated
  // same-seed runs.
  const auto make_experts = [] {
    la::Matrix stab(1, 2);
    stab(0, 0) = 3.0;
    stab(0, 1) = 4.0;
    return std::vector<ctrl::ControllerPtr>{
        std::make_shared<ctrl::PolynomialController>(
            ctrl::PolynomialController::linear_feedback(stab, "stab")),
        std::make_shared<ctrl::ZeroController>(2, 1)};
  };
  core::MixingConfig mixing;
  mixing.ppo.policy_hidden = {8, 8};
  mixing.ppo.value_hidden = {8, 8};
  mixing.ppo.iterations = 2;
  mixing.ppo.steps_per_iteration = 160;
  mixing.ppo.update_epochs = 2;
  mixing.ppo.minibatch = 32;
  mixing.ppo.seed = 35;
  mixing.snapshot.checkpoints = 1;
  mixing.snapshot.eval_states = 16;

  core::DistillConfig distill;
  distill.teacher_rollouts = 2;
  distill.uniform_samples = 120;
  distill.student_hidden = {8};
  distill.epochs = 3;
  distill.seed = 36;

  const auto run_once = [&](int shards) {
    auto system = std::make_shared<sys::VanDerPol>();
    core::MixingConfig config = mixing;
    config.ppo.num_env_shards = shards;
    const auto mixed =
        core::train_adaptive_mixing(system, make_experts(), config);
    const auto student =
        core::distill(*system, *mixed.controller, distill, "golden");
    return std::pair{mixed.controller, student.student};
  };

  const auto [teacher_1, student_1] = run_once(1);
  const auto [teacher_2, student_2] = run_once(2);
  const auto [teacher_2b, student_2b] = run_once(2);  // same-seed repeat.
  expect_same_net(teacher_1->weight_net(), teacher_2->weight_net(), 2);
  expect_same_net(student_1->net(), student_2->net(), 2);
  expect_same_net(student_2->net(), student_2b->net(), 2);
}

TEST(ChunkedGradReducer, MergeMatchesSerialChunkTree) {
  // The per-chunk nn::Gradients buffers must merge to exactly the same
  // bits on a pool as on the serial path: same chunking, same in-chunk
  // order, same chunk-merge order.
  const nn::Mlp net = nn::Mlp::make(3, {8, 8}, 2, nn::Activation::kTanh,
                                    nn::Activation::kIdentity, 5);
  util::Rng rng(17);
  const std::size_t n = 37;  // ragged: 37 = 4*8 + 5 under grain 8.
  std::vector<la::Vec> inputs(n), targets(n);
  for (std::size_t i = 0; i < n; ++i) {
    inputs[i] = rng.uniform_vec(3, -1.0, 1.0);
    targets[i] = rng.uniform_vec(2, -1.0, 1.0);
  }
  const auto body = [&](nn::Gradients& acc, std::size_t i) {
    nn::Mlp::Workspace ws;
    const la::Vec y = net.forward(inputs[i], ws);
    (void)net.backward(ws, nn::mse_gradient(y, targets[i]), acc);
  };
  nn::ChunkedGradReducer<nn::Gradients> serial_reducer(
      n, 8, [&] { return net.zero_gradients(); });
  const nn::Gradients serial = serial_reducer.reduce(nullptr, n, body);

  util::ThreadPool pool(4);
  nn::ChunkedGradReducer<nn::Gradients> parallel_reducer(
      n, 8, [&] { return net.zero_gradients(); });
  // Run twice: buffer reuse across reduce() calls must not leak state.
  (void)parallel_reducer.reduce(&pool, n, body);
  const nn::Gradients parallel = parallel_reducer.reduce(&pool, n, body);

  ASSERT_EQ(serial.w.size(), parallel.w.size());
  for (std::size_t l = 0; l < serial.w.size(); ++l) {
    EXPECT_EQ(serial.w[l].data(), parallel.w[l].data()) << "layer " << l;
    EXPECT_EQ(serial.b[l], parallel.b[l]) << "layer " << l;
  }
  // A count needing more chunks than the construction-time capacity is a
  // caller bug (the throw fires before any body runs).
  EXPECT_THROW((void)parallel_reducer.reduce(&pool, 48, body),
               std::invalid_argument);
}

TEST(ChunkedGradReducer, PartialCountUsesPrefixOfChunks) {
  const nn::Mlp net = nn::Mlp::make(2, {6}, 1, nn::Activation::kTanh,
                                    nn::Activation::kIdentity, 9);
  const auto body = [&](nn::Gradients& acc, std::size_t i) {
    nn::Mlp::Workspace ws;
    const la::Vec y = net.forward({0.1 * static_cast<double>(i), -0.2}, ws);
    (void)net.backward(ws, nn::mse_gradient(y, {0.5}), acc);
  };
  nn::ChunkedGradReducer<nn::Gradients> reducer(
      64, 8, [&] { return net.zero_gradients(); });
  // A full-batch reduce followed by a short ragged one (the last minibatch
  // of an epoch) must equal a fresh reducer's result for the short batch.
  (void)reducer.reduce(nullptr, 64, body);
  const nn::Gradients reused = reducer.reduce(nullptr, 11, body);
  nn::ChunkedGradReducer<nn::Gradients> fresh(
      64, 8, [&] { return net.zero_gradients(); });
  const nn::Gradients expected = fresh.reduce(nullptr, 11, body);
  for (std::size_t l = 0; l < expected.w.size(); ++l) {
    EXPECT_EQ(expected.w[l].data(), reused.w[l].data()) << "layer " << l;
    EXPECT_EQ(expected.b[l], reused.b[l]) << "layer " << l;
  }
}

}  // namespace
}  // namespace cocktail
