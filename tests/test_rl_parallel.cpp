// Bitwise regression tests for the parallel PPO/DDPG minibatch gradients:
// the per-sample gradient work inside one update fans across the pool with
// per-chunk buffers merged on the fixed chunked-reduce tree, so a trained
// network must be bitwise identical for any worker count (the same contract
// test_core_distill pins for the distiller).
#include <gtest/gtest.h>

#include <cmath>

#include "nn/grad_reduce.h"
#include "nn/loss.h"
#include "nn/mlp.h"
#include "rl/ddpg.h"
#include "rl/env.h"
#include "rl/ppo.h"
#include "rl_test_common.h"
#include "util/thread_pool.h"

namespace cocktail {
namespace {

using la::Vec;
using testutil::DiscretePointMassEnv;
using testutil::PointMassEnv;
using testutil::expect_same_net;

rl::PpoConfig tiny_ppo(std::uint64_t seed) {
  rl::PpoConfig config;
  config.policy_hidden = {12, 12};
  config.value_hidden = {16, 16};
  config.iterations = 4;  // enough updates for any divergence to compound.
  config.steps_per_iteration = 200;
  config.update_epochs = 3;
  config.minibatch = 48;  // not a multiple of the grain: ragged last chunk.
  config.entropy_coef = 0.01;
  config.seed = seed;
  return config;
}

TEST(PpoGaussianParallel, BitwiseIdenticalForAnyWorkerCount) {
  rl::PpoConfig config = tiny_ppo(21);
  config.num_workers = 1;
  PointMassEnv env_ref;
  rl::PpoGaussian reference(config);
  const rl::PpoStats ref_stats = reference.train(env_ref);
  for (const int workers : {2, 8}) {
    config.num_workers = workers;
    PointMassEnv env;
    rl::PpoGaussian parallel(config);
    const rl::PpoStats stats = parallel.train(env);
    expect_same_net(parallel.policy().mean_net(), reference.policy().mean_net(),
                    workers);
    expect_same_net(parallel.value_net(), reference.value_net(), workers);
    EXPECT_EQ(parallel.policy().log_std(), reference.policy().log_std())
        << workers << " workers";
    EXPECT_EQ(stats.iteration_mean_returns, ref_stats.iteration_mean_returns)
        << workers << " workers";
    EXPECT_EQ(stats.iteration_kls, ref_stats.iteration_kls)
        << workers << " workers";
  }
}

TEST(PpoGaussianParallel, ClipVariantBitwiseIdenticalToo) {
  // The clipped surrogate zeroes some per-sample coefficients — the chunk
  // tree must not care which.
  rl::PpoConfig config = tiny_ppo(22);
  config.use_clip = true;
  config.num_workers = 1;
  PointMassEnv env_ref;
  rl::PpoGaussian reference(config);
  (void)reference.train(env_ref);
  config.num_workers = 8;
  PointMassEnv env;
  rl::PpoGaussian parallel(config);
  (void)parallel.train(env);
  expect_same_net(parallel.policy().mean_net(), reference.policy().mean_net(),
                  8);
}

TEST(PpoCategoricalParallel, BitwiseIdenticalForAnyWorkerCount) {
  rl::PpoConfig config = tiny_ppo(23);
  config.num_workers = 1;
  DiscretePointMassEnv env_ref;
  rl::PpoCategorical reference(config);
  const rl::PpoStats ref_stats = reference.train(env_ref);
  for (const int workers : {2, 8}) {
    config.num_workers = workers;
    DiscretePointMassEnv env;
    rl::PpoCategorical parallel(config);
    const rl::PpoStats stats = parallel.train(env);
    expect_same_net(parallel.policy().logits_net(),
                    reference.policy().logits_net(), workers);
    EXPECT_EQ(stats.iteration_mean_returns, ref_stats.iteration_mean_returns)
        << workers << " workers";
    EXPECT_EQ(stats.iteration_kls, ref_stats.iteration_kls)
        << workers << " workers";
  }
}

TEST(DdpgParallel, BitwiseIdenticalForAnyWorkerCount) {
  rl::DdpgConfig config;
  config.actor_hidden = {12, 12};
  config.critic_hidden = {16, 16};
  config.episodes = 12;
  config.warmup_steps = 120;
  config.batch_size = 48;
  config.seed = 24;
  config.num_workers = 1;
  PointMassEnv env_ref;
  rl::Ddpg reference(config);
  const rl::DdpgStats ref_stats = reference.train(env_ref);
  for (const int workers : {2, 8}) {
    config.num_workers = workers;
    PointMassEnv env;
    rl::Ddpg parallel(config);
    const rl::DdpgStats stats = parallel.train(env);
    expect_same_net(parallel.actor(), reference.actor(), workers);
    expect_same_net(parallel.critic(), reference.critic(), workers);
    EXPECT_EQ(stats.episode_returns, ref_stats.episode_returns)
        << workers << " workers";
  }
}

TEST(ChunkedGradReducer, MergeMatchesSerialChunkTree) {
  // The per-chunk nn::Gradients buffers must merge to exactly the same
  // bits on a pool as on the serial path: same chunking, same in-chunk
  // order, same chunk-merge order.
  const nn::Mlp net = nn::Mlp::make(3, {8, 8}, 2, nn::Activation::kTanh,
                                    nn::Activation::kIdentity, 5);
  util::Rng rng(17);
  const std::size_t n = 37;  // ragged: 37 = 4*8 + 5 under grain 8.
  std::vector<la::Vec> inputs(n), targets(n);
  for (std::size_t i = 0; i < n; ++i) {
    inputs[i] = rng.uniform_vec(3, -1.0, 1.0);
    targets[i] = rng.uniform_vec(2, -1.0, 1.0);
  }
  const auto body = [&](nn::Gradients& acc, std::size_t i) {
    nn::Mlp::Workspace ws;
    const la::Vec y = net.forward(inputs[i], ws);
    (void)net.backward(ws, nn::mse_gradient(y, targets[i]), acc);
  };
  nn::ChunkedGradReducer<nn::Gradients> serial_reducer(
      n, 8, [&] { return net.zero_gradients(); });
  const nn::Gradients serial = serial_reducer.reduce(nullptr, n, body);

  util::ThreadPool pool(4);
  nn::ChunkedGradReducer<nn::Gradients> parallel_reducer(
      n, 8, [&] { return net.zero_gradients(); });
  // Run twice: buffer reuse across reduce() calls must not leak state.
  (void)parallel_reducer.reduce(&pool, n, body);
  const nn::Gradients parallel = parallel_reducer.reduce(&pool, n, body);

  ASSERT_EQ(serial.w.size(), parallel.w.size());
  for (std::size_t l = 0; l < serial.w.size(); ++l) {
    EXPECT_EQ(serial.w[l].data(), parallel.w[l].data()) << "layer " << l;
    EXPECT_EQ(serial.b[l], parallel.b[l]) << "layer " << l;
  }
  // A count needing more chunks than the construction-time capacity is a
  // caller bug (the throw fires before any body runs).
  EXPECT_THROW((void)parallel_reducer.reduce(&pool, 48, body),
               std::invalid_argument);
}

TEST(ChunkedGradReducer, PartialCountUsesPrefixOfChunks) {
  const nn::Mlp net = nn::Mlp::make(2, {6}, 1, nn::Activation::kTanh,
                                    nn::Activation::kIdentity, 9);
  const auto body = [&](nn::Gradients& acc, std::size_t i) {
    nn::Mlp::Workspace ws;
    const la::Vec y = net.forward({0.1 * static_cast<double>(i), -0.2}, ws);
    (void)net.backward(ws, nn::mse_gradient(y, {0.5}), acc);
  };
  nn::ChunkedGradReducer<nn::Gradients> reducer(
      64, 8, [&] { return net.zero_gradients(); });
  // A full-batch reduce followed by a short ragged one (the last minibatch
  // of an epoch) must equal a fresh reducer's result for the short batch.
  (void)reducer.reduce(nullptr, 64, body);
  const nn::Gradients reused = reducer.reduce(nullptr, 11, body);
  nn::ChunkedGradReducer<nn::Gradients> fresh(
      64, 8, [&] { return net.zero_gradients(); });
  const nn::Gradients expected = fresh.reduce(nullptr, 11, body);
  for (std::size_t l = 0; l < expected.w.size(); ++l) {
    EXPECT_EQ(expected.w[l].data(), reused.w[l].data()) << "layer " << l;
    EXPECT_EQ(expected.b[l], reused.b[l]) << "layer " << l;
  }
}

}  // namespace
}  // namespace cocktail
