// Tests for interval bound propagation and the hybrid abstraction engine.
#include <gtest/gtest.h>

#include <cmath>

#include "control/nn_controller.h"
#include "control/polynomial_controller.h"
#include "util/rng.h"
#include "verify/ibp.h"
#include "verify/nn_abstraction.h"

namespace cocktail {
namespace {

using la::Vec;
using verify::IBox;
using verify::Interval;

TEST(Ibp, ActivationIntervalsEncloseMonotoneImageTightly) {
  // The image of a monotone activation is [act(lo), act(hi)], outward-
  // rounded: libm-backed activations are only correct to ~1 ulp, so the
  // enclosure must contain the endpoint images without collapsing to them.
  const Interval z(-1.0, 2.0);
  const double kSlack = 1e-11;  // a few outward steps at |x| ~ 2.
  const Interval relu = verify::activate_interval(nn::Activation::kRelu, z);
  EXPECT_LE(relu.lo(), 0.0);
  EXPECT_GE(relu.hi(), 2.0);
  EXPECT_NEAR(relu.lo(), 0.0, kSlack);
  EXPECT_NEAR(relu.hi(), 2.0, kSlack);
  const Interval tanh = verify::activate_interval(nn::Activation::kTanh, z);
  EXPECT_LE(tanh.lo(), std::tanh(-1.0));
  EXPECT_GE(tanh.hi(), std::tanh(2.0));
  EXPECT_NEAR(tanh.lo(), std::tanh(-1.0), kSlack);
  EXPECT_NEAR(tanh.hi(), std::tanh(2.0), kSlack);
}

TEST(Ibp, PointBoxReproducesForwardPass) {
  const nn::Mlp net = nn::Mlp::make(2, {8, 8}, 1, nn::Activation::kTanh,
                                    nn::Activation::kIdentity, 1);
  const Vec x = {0.3, -0.7};
  const IBox out = verify::ibp_enclose(net, verify::point_box(x));
  const double y = net.forward(x)[0];
  EXPECT_LE(out[0].lo(), y);
  EXPECT_GE(out[0].hi(), y);
  EXPECT_LT(out[0].width(), 1e-8);
}

class IbpSoundness : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IbpSoundness, EnclosesSampledOutputs) {
  // Property: IBP output box contains net(x) for every sampled x in the
  // input box, across architectures and activations.
  const std::uint64_t seed = GetParam();
  for (const auto act :
       {nn::Activation::kRelu, nn::Activation::kTanh,
        nn::Activation::kSigmoid}) {
    const nn::Mlp net = nn::Mlp::make(3, {10, 10}, 2, act,
                                      nn::Activation::kIdentity, seed);
    const IBox box =
        verify::make_box({-0.5, -0.2, 0.0}, {0.5, 0.6, 0.4});
    const IBox out = verify::ibp_enclose(net, box);
    util::Rng rng(seed * 13 + 1);
    for (int k = 0; k < 200; ++k) {
      Vec x(3);
      for (std::size_t d = 0; d < 3; ++d)
        x[d] = rng.uniform(box[d].lo(), box[d].hi());
      const Vec y = net.forward(x);
      for (std::size_t d = 0; d < 2; ++d)
        EXPECT_TRUE(out[d].contains(y[d]))
            << "seed " << seed << " act " << nn::to_string(act);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IbpSoundness, ::testing::Values(1, 2, 3, 4));

TEST(Ibp, WidensWithBoxWidth) {
  const nn::Mlp net = nn::Mlp::make(2, {8}, 1, nn::Activation::kTanh,
                                    nn::Activation::kIdentity, 5);
  const IBox narrow = verify::make_box({-0.1, -0.1}, {0.1, 0.1});
  const IBox wide = verify::make_box({-1.0, -1.0}, {1.0, 1.0});
  EXPECT_LT(verify::ibp_enclose(net, narrow)[0].width(),
            verify::ibp_enclose(net, wide)[0].width());
}

TEST(HybridAbstraction, AtLeastAsTightAsBernstein) {
  // Hybrid and Bernstein share the same partitioning, so intersecting the
  // IBP box at every leaf can only shrink the result.  (No such relation
  // holds against pure-IBP, whose width-proxy partitions differ.)
  nn::Mlp net = nn::Mlp::make(2, {12}, 1, nn::Activation::kTanh,
                              nn::Activation::kIdentity, 7);
  const ctrl::NnController controller(std::move(net), {1.0}, "k");
  const IBox box = verify::make_box({-0.5, -0.5}, {0.5, 0.5});
  const IBox u_unbounded = {Interval(-1e18, 1e18)};

  auto enclose_with = [&](verify::AbstractionMethod method) {
    verify::AbstractionConfig config;
    config.method = method;
    config.epsilon_target = 0.5;
    verify::VerificationBudget budget;
    return verify::NnAbstraction(controller, config)
        .enclose(box, u_unbounded, budget);
  };
  const auto bernstein =
      enclose_with(verify::AbstractionMethod::kBernstein);
  const auto hybrid = enclose_with(verify::AbstractionMethod::kHybrid);
  EXPECT_LE(hybrid.u_range[0].width(), bernstein.u_range[0].width() + 1e-12);
}

TEST(HybridAbstraction, AllEnginesAreSound) {
  nn::Mlp net = nn::Mlp::make(2, {10, 10}, 1, nn::Activation::kTanh,
                              nn::Activation::kIdentity, 9);
  const ctrl::NnController controller(std::move(net), {2.0}, "k");
  const IBox box = verify::make_box({-0.3, -0.3}, {0.3, 0.3});
  const IBox u_unbounded = {Interval(-1e18, 1e18)};
  util::Rng rng(10);
  for (const auto method :
       {verify::AbstractionMethod::kBernstein,
        verify::AbstractionMethod::kIntervalPropagation,
        verify::AbstractionMethod::kHybrid}) {
    verify::AbstractionConfig config;
    config.method = method;
    config.epsilon_target = 0.4;
    verify::VerificationBudget budget;
    const auto enclosure = verify::NnAbstraction(controller, config)
                               .enclose(box, u_unbounded, budget);
    for (int k = 0; k < 200; ++k) {
      const Vec x = {rng.uniform(-0.3, 0.3), rng.uniform(-0.3, 0.3)};
      EXPECT_TRUE(enclosure.u_range[0].contains(controller.act(x)[0]));
    }
  }
}

TEST(HybridAbstraction, IbpFallsBackToBernsteinForNonNnControllers) {
  // A polynomial controller carries no network weights; requesting IBP
  // must silently degrade to the Bernstein engine rather than fail.
  la::Matrix k(1, 2);
  k(0, 0) = 1.0;
  const auto poly = ctrl::PolynomialController::linear_feedback(k, "lin");
  verify::AbstractionConfig config;
  config.method = verify::AbstractionMethod::kIntervalPropagation;
  const verify::NnAbstraction abstraction(poly, config);
  verify::VerificationBudget budget;
  const IBox box = verify::make_box({-1.0, -1.0}, {1.0, 1.0});
  const auto enclosure =
      abstraction.enclose(box, {Interval(-1e18, 1e18)}, budget);
  // u = -s0 over [-1,1]^2 -> range ~ [-1, 1].
  EXPECT_LE(enclosure.u_range[0].lo(), -0.9);
  EXPECT_GE(enclosure.u_range[0].hi(), 0.9);
}

}  // namespace
}  // namespace cocktail
