// Tests for the Bernstein approximation layer: exactness on low-degree
// polynomials, the range-enclosure property, and soundness of the
// Lipschitz error bound on real MLPs (the core of Section III-C).
#include <gtest/gtest.h>

#include <cmath>

#include "nn/mlp.h"
#include "util/rng.h"
#include "verify/bernstein.h"

namespace cocktail {
namespace {

using la::Vec;
using verify::BernsteinPoly;
using verify::IBox;
using verify::Interval;

TEST(Binomial, KnownValues) {
  EXPECT_DOUBLE_EQ(verify::binomial(4, 2), 6.0);
  EXPECT_DOUBLE_EQ(verify::binomial(5, 0), 1.0);
  EXPECT_DOUBLE_EQ(verify::binomial(5, 5), 1.0);
  EXPECT_DOUBLE_EQ(verify::binomial(3, 5), 0.0);
  EXPECT_DOUBLE_EQ(verify::binomial(10, 3), 120.0);
}

TEST(Bernstein, ReproducesLinearFunctionExactly) {
  // Degree-1 Bernstein of an affine function is the function itself.
  const IBox box = verify::make_box({-1.0, 2.0}, {3.0, 5.0});
  const auto f = [](const Vec& x) { return 2.0 * x[0] - x[1] + 0.5; };
  const auto poly = BernsteinPoly::fit(f, box, {1, 1});
  util::Rng rng(1);
  for (int k = 0; k < 50; ++k) {
    const Vec x = {rng.uniform(-1.0, 3.0), rng.uniform(2.0, 5.0)};
    EXPECT_NEAR(poly.eval(x), f(x), 1e-10);
  }
}

TEST(Bernstein, ConvergesToQuadratic) {
  const IBox box = verify::make_box({0.0}, {1.0});
  const auto f = [](const Vec& x) { return x[0] * x[0]; };
  // B_n(x^2) = x^2 + x(1-x)/n: error shrinks like 1/n.
  const auto p4 = BernsteinPoly::fit(f, box, {4});
  const auto p32 = BernsteinPoly::fit(f, box, {32});
  const Vec mid = {0.5};
  EXPECT_NEAR(p4.eval(mid), 0.25 + 0.25 / 4.0, 1e-10);
  EXPECT_NEAR(p32.eval(mid), 0.25 + 0.25 / 32.0, 1e-10);
}

TEST(Bernstein, RangeEnclosesFunctionValues) {
  // Property: hull of coefficients encloses B_d(x) for all x, and (since
  // coefficients are samples of f) the fit values stay within range().
  const IBox box = verify::make_box({-2.0, -2.0}, {2.0, 2.0});
  const auto f = [](const Vec& x) {
    return std::sin(x[0]) * x[1] + 0.3 * x[0];
  };
  const auto poly = BernsteinPoly::fit(f, box, {5, 5});
  const Interval range = poly.range();
  util::Rng rng(2);
  for (int k = 0; k < 300; ++k) {
    const Vec x = {rng.uniform(-2.0, 2.0), rng.uniform(-2.0, 2.0)};
    const double value = poly.eval(x);
    EXPECT_GE(value, range.lo() - 1e-9);
    EXPECT_LE(value, range.hi() + 1e-9);
  }
}

TEST(Bernstein, ErrorBoundFormula) {
  const IBox box = verify::make_box({0.0, 0.0}, {1.0, 2.0});
  // (L/2) * (w0/sqrt(d0) + w1/sqrt(d1)).
  const double bound = BernsteinPoly::error_bound(4.0, box, {4, 16});
  EXPECT_NEAR(bound, 2.0 * (1.0 / 2.0 + 2.0 / 4.0), 1e-12);
}

class BernsteinSoundness : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BernsteinSoundness, LipschitzBoundHoldsOnMlps) {
  // Property: |f(x) - B_d(f)(x)| <= error_bound(L, box, d) for real
  // networks, sampled densely.  This is the inequality every verification
  // result in this library leans on.
  const std::uint64_t seed = GetParam();
  const nn::Mlp net = nn::Mlp::make(2, {12, 12}, 1, nn::Activation::kTanh,
                                    nn::Activation::kIdentity, seed);
  const double lipschitz = net.lipschitz_upper_bound();
  const IBox box = verify::make_box({-0.5, -0.5}, {0.5, 0.5});
  for (const int degree : {2, 4}) {
    const auto poly = BernsteinPoly::fit(
        [&](const Vec& x) { return net.forward(x)[0]; }, box,
        {degree, degree});
    const double bound =
        BernsteinPoly::error_bound(lipschitz, box, {degree, degree});
    util::Rng rng(seed + 777);
    for (int k = 0; k < 200; ++k) {
      const Vec x = {rng.uniform(-0.5, 0.5), rng.uniform(-0.5, 0.5)};
      const double err = std::abs(net.forward(x)[0] - poly.eval(x));
      EXPECT_LE(err, bound + 1e-9) << "seed " << seed << " degree " << degree;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BernsteinSoundness,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

TEST(Bernstein, DegreesForHitsTarget) {
  const IBox box = verify::make_box({0.0, 0.0}, {1.0, 1.0});
  double achieved = 0.0;
  const auto degrees =
      BernsteinPoly::degrees_for(2.0, box, 0.5, /*max_degree=*/64, achieved);
  EXPECT_LE(achieved, 0.5 + 1e-12);
  for (int d : degrees) EXPECT_GE(d, 1);
}

TEST(Bernstein, DegreesForGrowsQuadraticallyWithLipschitz) {
  // The verifiability mechanism: doubling L quadruples the needed degree.
  const IBox box = verify::make_box({0.0}, {1.0});
  double achieved = 0.0;
  const auto d1 = BernsteinPoly::degrees_for(2.0, box, 0.25, 100000, achieved);
  const auto d2 = BernsteinPoly::degrees_for(4.0, box, 0.25, 100000, achieved);
  EXPECT_NEAR(static_cast<double>(d2[0]) / static_cast<double>(d1[0]), 4.0,
              0.3);
}

TEST(Bernstein, DegreeCapSignalsInsufficientPrecision) {
  const IBox box = verify::make_box({0.0}, {1.0});
  double achieved = 0.0;
  (void)BernsteinPoly::degrees_for(100.0, box, 0.01, /*max_degree=*/4,
                                   achieved);
  EXPECT_GT(achieved, 0.01);  // cap binds -> caller must partition.
}

TEST(Bernstein, SampleCountMatchesDegreeProduct) {
  const IBox box = verify::make_box({0.0, 0.0, 0.0}, {1.0, 1.0, 1.0});
  const auto poly = BernsteinPoly::fit(
      [](const Vec&) { return 1.0; }, box, {2, 3, 1});
  EXPECT_EQ(poly.sample_count(), 3u * 4u * 2u);
  EXPECT_DOUBLE_EQ(poly.range().lo(), 1.0);
  EXPECT_DOUBLE_EQ(poly.range().hi(), 1.0);
}

}  // namespace
}  // namespace cocktail
