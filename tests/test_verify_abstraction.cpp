// Tests for the NN-controller Bernstein abstraction: enclosure soundness,
// clipping, Lipschitz-driven cost growth, and the budget failure mode that
// reproduces the paper's κD blow-up.
#include <gtest/gtest.h>

#include <cmath>

#include "control/nn_controller.h"
#include "control/mixed_controller.h"
#include "util/rng.h"
#include "verify/nn_abstraction.h"

namespace cocktail {
namespace {

using la::Vec;
using verify::IBox;
using verify::Interval;

ctrl::NnController make_controller(std::uint64_t seed, double scale = 1.0) {
  nn::Mlp net = nn::Mlp::make(2, {12, 12}, 1, nn::Activation::kTanh,
                              nn::Activation::kIdentity, seed);
  return {std::move(net), {scale}, "k" + std::to_string(seed)};
}

IBox unbounded_u() {
  return {Interval(-1e18, 1e18)};
}

TEST(NnAbstraction, EnclosureContainsSampledOutputs) {
  // Soundness property over several networks and boxes.
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const auto controller = make_controller(seed);
    verify::AbstractionConfig config;
    config.epsilon_target = 0.3;
    const verify::NnAbstraction abstraction(controller, config);
    verify::VerificationBudget budget;
    const IBox box = verify::make_box({-0.4, -0.2}, {0.1, 0.5});
    const auto enclosure = abstraction.enclose(box, unbounded_u(), budget);
    util::Rng rng(seed * 91);
    for (int k = 0; k < 300; ++k) {
      const Vec x = {rng.uniform(-0.4, 0.1), rng.uniform(-0.2, 0.5)};
      const double u = controller.act(x)[0];
      EXPECT_TRUE(enclosure.u_range[0].contains(u))
          << "seed " << seed << ": " << u << " not in "
          << enclosure.u_range[0].to_string();
    }
    EXPECT_LE(enclosure.epsilon, config.epsilon_target + 1e-12);
  }
}

TEST(NnAbstraction, AppliesControlClip) {
  const auto controller = make_controller(3, /*scale=*/100.0);
  verify::AbstractionConfig config;
  config.epsilon_target = 5.0;
  const verify::NnAbstraction abstraction(controller, config);
  verify::VerificationBudget budget;
  const IBox box = verify::make_box({-1.0, -1.0}, {1.0, 1.0});
  const IBox u_bounds = {Interval(-20.0, 20.0)};
  const auto enclosure = abstraction.enclose(box, u_bounds, budget);
  EXPECT_GE(enclosure.u_range[0].lo(), -20.0);
  EXPECT_LE(enclosure.u_range[0].hi(), 20.0);
}

TEST(NnAbstraction, CostGrowsWithLipschitzConstant) {
  // Remark 2's mechanism: larger Lipschitz constant -> more partitions and
  // NN evaluations at the same epsilon.  Single linear layers give exactly
  // known constants L = 1 and L = 8.
  auto make_linear = [](double weight) {
    nn::Mlp net = nn::Mlp::make(2, {}, 1, nn::Activation::kTanh,
                                nn::Activation::kIdentity, 1);
    net.layers()[0].w(0, 0) = weight;
    net.layers()[0].w(0, 1) = 0.0;
    net.layers()[0].b[0] = 0.0;
    return ctrl::NnController(std::move(net), {1.0}, "lin");
  };
  const auto small = make_linear(1.0);
  const auto large = make_linear(8.0);
  ASSERT_NEAR(small.lipschitz_bound(), 1.0, 1e-9);
  ASSERT_NEAR(large.lipschitz_bound(), 8.0, 1e-9);
  verify::AbstractionConfig config;
  config.epsilon_target = 0.5;
  config.max_degree = 6;
  config.max_partition_depth = 16;
  const verify::NnAbstraction abs_small(small, config);
  const verify::NnAbstraction abs_large(large, config);
  verify::VerificationBudget budget_small, budget_large;
  const IBox box = verify::make_box({-1.0, -1.0}, {1.0, 1.0});
  (void)abs_small.enclose(box, unbounded_u(), budget_small);
  (void)abs_large.enclose(box, unbounded_u(), budget_large);
  EXPECT_GT(budget_large.nn_evaluations, budget_small.nn_evaluations);
  EXPECT_GT(budget_large.partitions, budget_small.partitions);
}

TEST(NnAbstraction, BudgetExhaustionThrows) {
  const auto controller = make_controller(9, 50.0);  // huge L.
  verify::AbstractionConfig config;
  config.epsilon_target = 0.05;
  config.max_degree = 3;
  config.max_partition_depth = 20;
  const verify::NnAbstraction abstraction(controller, config);
  verify::VerificationBudget budget;
  budget.max_nn_evaluations = 500;  // tiny budget.
  const IBox box = verify::make_box({-1.0, -1.0}, {1.0, 1.0});
  EXPECT_THROW((void)abstraction.enclose(box, unbounded_u(), budget),
               verify::BudgetExhausted);
}

TEST(NnAbstraction, RejectsUncertifiedControllers) {
  // The mixed design AW has no Lipschitz bound: abstraction must refuse it,
  // mirroring the paper ("the mixed controller cannot be verified").
  auto inner = std::make_shared<ctrl::NnController>(make_controller(11));
  nn::Mlp weight_net = nn::Mlp::make(2, {4}, 1, nn::Activation::kTanh,
                                     nn::Activation::kTanh, 12);
  const ctrl::MixedController mixed(
      {inner}, std::move(weight_net), 1.5,
      sys::Box::symmetric(1, 20.0));
  EXPECT_THROW(verify::NnAbstraction(mixed, {}), std::invalid_argument);
}

TEST(NnAbstraction, TighterEpsilonNeedsMoreWork) {
  const auto controller = make_controller(13, 2.0);
  const IBox box = verify::make_box({-1.0, -1.0}, {1.0, 1.0});
  verify::AbstractionConfig loose;
  loose.epsilon_target = 1.0;
  verify::AbstractionConfig tight;
  tight.epsilon_target = 0.1;
  verify::VerificationBudget b_loose, b_tight;
  (void)verify::NnAbstraction(controller, loose)
      .enclose(box, unbounded_u(), b_loose);
  (void)verify::NnAbstraction(controller, tight)
      .enclose(box, unbounded_u(), b_tight);
  EXPECT_GT(b_tight.nn_evaluations, b_loose.nn_evaluations);
}

}  // namespace
}  // namespace cocktail
