// Unit tests for src/attack: FGSM step, closed-loop attack model, uniform
// noise, perturbation bounds, black-box finite-difference fallback.
#include <gtest/gtest.h>

#include <cmath>

#include "attack/fgsm.h"
#include "attack/perturbation.h"
#include "attack/pgd.h"
#include "control/lqr_controller.h"
#include "control/mpc_controller.h"
#include "control/nn_controller.h"
#include "sys/cartpole.h"
#include "sys/registry.h"
#include "sys/threed.h"
#include "sys/vanderpol.h"

namespace cocktail {
namespace {

using la::Vec;

TEST(FgsmDelta, SignTimesBound) {
  const Vec delta = attack::fgsm_delta({0.5, -2.0, 0.0}, {0.1, 0.2, 0.3});
  EXPECT_EQ(delta, (Vec{0.1, -0.2, 0.0}));
}

TEST(FgsmDelta, DimensionMismatchThrows) {
  EXPECT_THROW(attack::fgsm_delta({1.0}, {0.1, 0.1}), std::invalid_argument);
}

TEST(PerturbationBound, FractionOfStateBound) {
  const sys::VanDerPol vdp;
  const Vec bound = attack::perturbation_bound(vdp, 0.1);
  EXPECT_NEAR(bound[0], 0.2, 1e-12);  // 10% of half-width 2.
  EXPECT_NEAR(bound[1], 0.2, 1e-12);
}

TEST(PerturbationBound, UnboundedDimensionsGetZeroForCartpole) {
  // Cartpole's X bounds only position and angle; the velocity dimensions
  // have no "state value bound" and must not be perturbed.
  const sys::CartPole cp;
  const Vec bound = attack::perturbation_bound(cp, 0.1);
  ASSERT_EQ(bound.size(), 4u);
  EXPECT_NEAR(bound[0], 0.24, 1e-12);    // 10% of 2.4.
  EXPECT_DOUBLE_EQ(bound[1], 0.0);       // unbounded velocity.
  EXPECT_NEAR(bound[2], 0.0209, 1e-12);  // 10% of 0.209.
  EXPECT_DOUBLE_EQ(bound[3], 0.0);
}

TEST(UniformNoise, StaysWithinBounds) {
  const attack::UniformNoise noise(Vec{0.1, 0.3});
  const ctrl::ZeroController zero(2, 1);
  util::Rng rng(1);
  for (int k = 0; k < 500; ++k) {
    const Vec d = noise.perturb({0.0, 0.0}, zero, rng);
    EXPECT_LE(std::abs(d[0]), 0.1);
    EXPECT_LE(std::abs(d[1]), 0.3);
  }
}

TEST(UniformNoise, CoversTheRange) {
  const attack::UniformNoise noise(Vec{1.0});
  const ctrl::ZeroController zero(1, 1);
  util::Rng rng(2);
  double lo = 1.0, hi = -1.0;
  for (int k = 0; k < 2000; ++k) {
    const double d = noise.perturb({0.0}, zero, rng)[0];
    lo = std::min(lo, d);
    hi = std::max(hi, d);
  }
  EXPECT_LT(lo, -0.9);
  EXPECT_GT(hi, 0.9);
}

TEST(NoPerturbation, ReturnsZeros) {
  const attack::NoPerturbation none(3);
  const ctrl::ZeroController zero(3, 1);
  util::Rng rng(3);
  EXPECT_EQ(none.perturb({1.0, 2.0, 3.0}, zero, rng), la::zeros(3));
}

TEST(FgsmAttack, RespectsBound) {
  nn::Mlp net = nn::Mlp::make(2, {8}, 1, nn::Activation::kTanh,
                              nn::Activation::kIdentity, 4);
  const ctrl::NnController controller(std::move(net), {1.0}, "k");
  const attack::FgsmAttack fgsm(Vec{0.2, 0.2});
  util::Rng rng(4);
  for (int k = 0; k < 100; ++k) {
    const Vec d = fgsm.perturb({0.3, -0.3}, controller, rng);
    EXPECT_LE(std::abs(d[0]), 0.2 + 1e-12);
    EXPECT_LE(std::abs(d[1]), 0.2 + 1e-12);
  }
}

TEST(FgsmAttack, DeviatesControlMoreThanRandomNoise) {
  // Property: the optimized attack must shift the control output at least
  // as much (on average) as random same-magnitude noise — otherwise it is
  // not "optimized".
  nn::Mlp net = nn::Mlp::make(2, {16, 16}, 1, nn::Activation::kTanh,
                              nn::Activation::kIdentity, 5);
  const ctrl::NnController controller(std::move(net), {1.0}, "k");
  const Vec bound = {0.2, 0.2};
  const attack::FgsmAttack fgsm(bound);
  const attack::UniformNoise noise(bound);
  util::Rng rng(5);
  double fgsm_dev = 0.0, noise_dev = 0.0;
  for (int k = 0; k < 200; ++k) {
    const Vec s = {rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)};
    const Vec u0 = controller.act(s);
    const Vec d_f = fgsm.perturb(s, controller, rng);
    const Vec d_n = noise.perturb(s, controller, rng);
    fgsm_dev += la::norm_l2(la::sub(controller.act(la::add(s, d_f)), u0));
    noise_dev += la::norm_l2(la::sub(controller.act(la::add(s, d_n)), u0));
  }
  EXPECT_GT(fgsm_dev, 1.3 * noise_dev);
}

TEST(FgsmAttack, GradientAndFiniteDifferenceAgreeOnSmoothController) {
  // An LQR controller is linear, so the white-box gradient sign and the
  // black-box finite-difference sign must produce the same perturbation.
  const sys::VanDerPol vdp;
  const auto lqr = ctrl::LqrController::synthesize(vdp, 1.0, 0.5);

  // Black-box wrapper hiding the Jacobian.
  class OpaqueController final : public ctrl::Controller {
   public:
    explicit OpaqueController(const ctrl::Controller& inner) : inner_(inner) {}
    [[nodiscard]] Vec act(const Vec& s) const override { return inner_.act(s); }
    [[nodiscard]] std::size_t state_dim() const override {
      return inner_.state_dim();
    }
    [[nodiscard]] std::size_t control_dim() const override {
      return inner_.control_dim();
    }
    [[nodiscard]] std::string describe() const override { return "opaque"; }

   private:
    const ctrl::Controller& inner_;
  };
  const OpaqueController opaque(lqr);

  const Vec bound = {0.2, 0.2};
  const attack::FgsmAttack fgsm(bound);
  util::Rng rng_a(7), rng_b(7);
  int agreements = 0;
  const int trials = 50;
  for (int k = 0; k < trials; ++k) {
    const Vec s = {rng_a.uniform(-1.0, 1.0), rng_a.uniform(-1.0, 1.0)};
    (void)rng_b.uniform(-1.0, 1.0);
    (void)rng_b.uniform(-1.0, 1.0);
    const Vec d_white = fgsm.perturb(s, lqr, rng_a);
    const Vec d_black = fgsm.perturb(s, opaque, rng_b);
    if (d_white == d_black) ++agreements;
  }
  EXPECT_GT(agreements, trials * 8 / 10);
}

TEST(PgdAttack, RespectsBound) {
  nn::Mlp net = nn::Mlp::make(2, {8}, 1, nn::Activation::kTanh,
                              nn::Activation::kIdentity, 14);
  const ctrl::NnController controller(std::move(net), {1.0}, "k");
  const attack::PgdAttack pgd(Vec{0.15, 0.25});
  util::Rng rng(14);
  for (int k = 0; k < 100; ++k) {
    const Vec d = pgd.perturb({0.2, -0.2}, controller, rng);
    EXPECT_LE(std::abs(d[0]), 0.15 + 1e-12);
    EXPECT_LE(std::abs(d[1]), 0.25 + 1e-12);
  }
}

TEST(PgdAttack, AtLeastAsStrongAsFgsm) {
  // Property: the multi-step attack's mean control deviation dominates the
  // single-step attack's on the same states (it refines the same
  // objective).
  nn::Mlp net = nn::Mlp::make(2, {16, 16}, 1, nn::Activation::kTanh,
                              nn::Activation::kIdentity, 15);
  const ctrl::NnController controller(std::move(net), {1.0}, "k");
  const Vec bound = {0.2, 0.2};
  const attack::FgsmAttack fgsm(bound);
  attack::PgdConfig pgd_config;
  pgd_config.steps = 8;
  const attack::PgdAttack pgd(bound, pgd_config);
  util::Rng rng(15);
  double dev_fgsm = 0.0, dev_pgd = 0.0;
  for (int k = 0; k < 200; ++k) {
    const Vec s = {rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)};
    const Vec u0 = controller.act(s);
    const Vec df = fgsm.perturb(s, controller, rng);
    const Vec dp = pgd.perturb(s, controller, rng);
    dev_fgsm += la::norm_l2(la::sub(controller.act(la::add(s, df)), u0));
    dev_pgd += la::norm_l2(la::sub(controller.act(la::add(s, dp)), u0));
  }
  EXPECT_GE(dev_pgd, 0.95 * dev_fgsm);  // allow sampling slack.
}

TEST(PgdAttack, WorksOnBlackBoxController) {
  const sys::VanDerPol vdp;
  const auto lqr = ctrl::LqrController::synthesize(vdp, 1.0, 0.5);
  class Opaque final : public ctrl::Controller {
   public:
    explicit Opaque(const ctrl::Controller& inner) : inner_(inner) {}
    [[nodiscard]] Vec act(const Vec& s) const override { return inner_.act(s); }
    [[nodiscard]] std::size_t state_dim() const override { return 2; }
    [[nodiscard]] std::size_t control_dim() const override { return 1; }
    [[nodiscard]] std::string describe() const override { return "opaque"; }

   private:
    const ctrl::Controller& inner_;
  } opaque(lqr);
  const attack::PgdAttack pgd(Vec{0.1, 0.1});
  util::Rng rng(16);
  const Vec d = pgd.perturb({0.5, 0.5}, opaque, rng);
  ASSERT_EQ(d.size(), 2u);
  for (double v : d) EXPECT_LE(std::abs(v), 0.1 + 1e-12);
}

TEST(PgdAttack, RejectsBadConfig) {
  attack::PgdConfig config;
  config.steps = 0;
  EXPECT_THROW(attack::PgdAttack(Vec{0.1}, config), std::invalid_argument);
  EXPECT_THROW(attack::PgdAttack(Vec{-0.1}), std::invalid_argument);
}

TEST(FgsmAttack, WorksOnNonDifferentiableController) {
  auto system = std::make_shared<sys::ThreeD>();
  ctrl::MpcConfig config;
  config.samples = 16;
  config.iterations = 1;
  config.planning_horizon = 4;
  const ctrl::MpcController mpc(system, config);
  const attack::FgsmAttack fgsm(Vec{0.05, 0.05, 0.05});
  util::Rng rng(8);
  const Vec d = fgsm.perturb({0.1, 0.1, 0.1}, mpc, rng);
  ASSERT_EQ(d.size(), 3u);
  for (double v : d) EXPECT_LE(std::abs(v), 0.05 + 1e-12);
}

}  // namespace
}  // namespace cocktail
