// Tests for the statistics module: Wilson intervals and paired evaluation.
#include <gtest/gtest.h>

#include <cmath>

#include "control/lqr_controller.h"
#include "control/polynomial_controller.h"
#include "core/stats.h"
#include "sys/vanderpol.h"

namespace cocktail {
namespace {

TEST(WilsonInterval, KnownValues) {
  // 50/100 at 95%: approximately [0.404, 0.596].
  const auto ci = core::wilson_interval(50, 100);
  EXPECT_NEAR(ci.lo, 0.404, 0.005);
  EXPECT_NEAR(ci.hi, 0.596, 0.005);
}

TEST(WilsonInterval, DegeneratesGracefully) {
  const auto empty = core::wilson_interval(0, 0);
  EXPECT_DOUBLE_EQ(empty.lo, 0.0);
  EXPECT_DOUBLE_EQ(empty.hi, 1.0);
  // All successes: upper end pinned at 1, lower end below 1.
  const auto all = core::wilson_interval(100, 100);
  EXPECT_LT(all.lo, 1.0);
  EXPECT_DOUBLE_EQ(all.hi, 1.0);
  EXPECT_GT(all.lo, 0.9);
}

TEST(WilsonInterval, ContainsTrueRateProperty) {
  // Property: across repeated binomial draws, the 95% interval covers the
  // true rate much more often than not (loose check: >= 85% of draws).
  util::Rng rng(7);
  const double p = 0.83;
  const int trials = 200, n = 150;
  int covered = 0;
  for (int t = 0; t < trials; ++t) {
    int successes = 0;
    for (int i = 0; i < n; ++i) successes += rng.bernoulli(p);
    const auto ci = core::wilson_interval(successes, n);
    covered += (ci.lo <= p && p <= ci.hi);
  }
  EXPECT_GE(covered, trials * 85 / 100);
}

TEST(WilsonInterval, ShrinksWithSampleSize) {
  const auto small = core::wilson_interval(80, 100);
  const auto large = core::wilson_interval(800, 1000);
  EXPECT_LT(large.hi - large.lo, small.hi - small.lo);
}

TEST(EvaluatePaired, IdenticalControllersAgreeEverywhere) {
  const sys::VanDerPol vdp;
  const auto lqr = ctrl::LqrController::synthesize(vdp, 1.0, 0.5);
  core::EvalConfig config;
  config.num_initial_states = 60;
  config.seed = 11;
  const auto outcome = core::evaluate_paired(vdp, lqr, lqr, config);
  EXPECT_EQ(outcome.only_a_safe, 0);
  EXPECT_EQ(outcome.only_b_safe, 0);
  EXPECT_EQ(outcome.total(), 60);
  EXPECT_DOUBLE_EQ(outcome.safe_rate_difference(), 0.0);
  EXPECT_DOUBLE_EQ(outcome.energy_a, outcome.energy_b);
}

TEST(EvaluatePaired, DetectsDominatingController) {
  const sys::VanDerPol vdp;
  const auto strong = ctrl::LqrController::synthesize(vdp, 1.0, 0.05);
  const ctrl::ZeroController weak(2, 1);
  core::EvalConfig config;
  config.num_initial_states = 100;
  config.seed = 12;
  const auto outcome = core::evaluate_paired(vdp, strong, weak, config);
  EXPECT_GT(outcome.safe_rate_difference(), 0.5);  // LQR >> uncontrolled.
  EXPECT_GT(outcome.only_a_safe, outcome.only_b_safe);
}

TEST(EvaluatePaired, EnergiesAreNanWithoutBothSafeTrajectories) {
  // Contract: energy_a/energy_b are NaN when both_safe == 0 — a paired
  // energy comparison does not exist, and 0.0 would read as "zero energy".
  const sys::VanDerPol vdp;
  const auto lqr = ctrl::LqrController::synthesize(vdp, 1.0, 0.5);
  core::EvalConfig config;
  config.num_initial_states = 0;
  const auto outcome = core::evaluate_paired(vdp, lqr, lqr, config);
  EXPECT_EQ(outcome.both_safe, 0);
  EXPECT_TRUE(std::isnan(outcome.energy_a));
  EXPECT_TRUE(std::isnan(outcome.energy_b));
  // And the default-constructed outcome carries the same contract.
  const core::PairedOutcome fresh;
  EXPECT_TRUE(std::isnan(fresh.energy_a));
  EXPECT_TRUE(std::isnan(fresh.energy_b));
}

TEST(EvaluatePaired, EnergiesAreFiniteWithBothSafeTrajectories) {
  const sys::VanDerPol vdp;
  const auto lqr = ctrl::LqrController::synthesize(vdp, 1.0, 0.5);
  core::EvalConfig config;
  config.num_initial_states = 60;
  config.seed = 11;
  const auto outcome = core::evaluate_paired(vdp, lqr, lqr, config);
  ASSERT_GT(outcome.both_safe, 0);
  EXPECT_TRUE(std::isfinite(outcome.energy_a));
  EXPECT_TRUE(std::isfinite(outcome.energy_b));
}

TEST(EvaluatePaired, ConsistentWithUnpairedEvaluate) {
  // The paired marginal for controller A must equal evaluate()'s count
  // (identical seeds and streams by construction).
  const sys::VanDerPol vdp;
  const auto lqr = ctrl::LqrController::synthesize(vdp, 1.0, 0.5);
  const ctrl::ZeroController zero(2, 1);
  core::EvalConfig config;
  config.num_initial_states = 80;
  config.seed = 13;
  const auto unpaired = core::evaluate(vdp, lqr, config);
  const auto paired = core::evaluate_paired(vdp, lqr, zero, config);
  EXPECT_EQ(paired.both_safe + paired.only_a_safe, unpaired.num_safe);
}

}  // namespace
}  // namespace cocktail
