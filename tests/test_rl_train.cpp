// End-to-end smoke tests for the RL trainers on a tiny 1-D point-mass task:
// both DDPG and PPO must reliably improve, and training must be
// deterministic for a fixed seed.
#include <gtest/gtest.h>

#include <cmath>

#include "rl/ddpg.h"
#include "rl/env.h"
#include "rl/ppo.h"
#include "rl_test_common.h"

namespace cocktail {
namespace {

using la::Vec;
using testutil::DiscretePointMassEnv;
using testutil::PointMassEnv;

rl::DdpgConfig small_ddpg(std::uint64_t seed) {
  rl::DdpgConfig config;
  config.actor_hidden = {16, 16};
  config.critic_hidden = {32, 32};
  config.episodes = 60;
  config.warmup_steps = 200;
  config.seed = seed;
  return config;
}

TEST(DdpgTrain, LearnsPointMass) {
  PointMassEnv env;
  rl::Ddpg ddpg(small_ddpg(1));
  const auto stats = ddpg.train(env);
  ASSERT_EQ(stats.episode_returns.size(), 60u);
  // Late performance must beat early performance and approach the cap (30).
  double early = 0.0;
  for (int i = 0; i < 10; ++i) early += stats.episode_returns[i];
  early /= 10.0;
  const double late = stats.final_return_mean(10);
  EXPECT_GT(late, early);
  EXPECT_GT(late, 24.0);
}

TEST(DdpgTrain, TrainedActorDrivesTowardOrigin) {
  PointMassEnv env;
  rl::Ddpg ddpg(small_ddpg(2));
  (void)ddpg.train(env);
  const nn::Mlp& actor = ddpg.actor();
  // From x = 1 the action must be strongly negative; from x = -1 positive.
  EXPECT_LT(actor.forward({1.0})[0], -0.2);
  EXPECT_GT(actor.forward({-1.0})[0], 0.2);
}

TEST(DdpgTrain, DeterministicForFixedSeed) {
  PointMassEnv env1, env2;
  rl::Ddpg a(small_ddpg(3)), b(small_ddpg(3));
  (void)a.train(env1);
  (void)b.train(env2);
  EXPECT_DOUBLE_EQ(a.actor().forward({0.37})[0], b.actor().forward({0.37})[0]);
}

rl::PpoConfig small_ppo(std::uint64_t seed) {
  rl::PpoConfig config;
  config.policy_hidden = {16, 16};
  config.value_hidden = {32, 32};
  config.iterations = 20;
  config.steps_per_iteration = 600;
  config.update_epochs = 6;
  config.minibatch = 64;
  config.initial_std = 0.4;
  config.seed = seed;
  return config;
}

TEST(PpoGaussianTrain, LearnsPointMass) {
  PointMassEnv env;
  rl::PpoGaussian ppo(small_ppo(4));
  const auto stats = ppo.train(env);
  ASSERT_EQ(stats.iteration_mean_returns.size(), 20u);
  EXPECT_GT(stats.final_return_mean(3), stats.iteration_mean_returns[0]);
  EXPECT_GT(stats.final_return_mean(3), 24.0);
  // Deterministic mean must push toward the origin.
  EXPECT_LT(ppo.policy().mean({1.0})[0], -0.2);
  EXPECT_GT(ppo.policy().mean({-1.0})[0], 0.2);
}

TEST(PpoGaussianTrain, KlStaysModerate) {
  // The adaptive-β KL penalty must keep per-iteration KL from exploding.
  PointMassEnv env;
  rl::PpoGaussian ppo(small_ppo(5));
  const auto stats = ppo.train(env);
  for (double kl : stats.iteration_kls) EXPECT_LT(kl, 2.0);
}

TEST(PpoGaussianTrain, ClipVariantAlsoLearns) {
  PointMassEnv env;
  rl::PpoConfig config = small_ppo(6);
  config.use_clip = true;
  rl::PpoGaussian ppo(config);
  const auto stats = ppo.train(env);
  EXPECT_GT(stats.final_return_mean(3), 22.0);
}

TEST(PpoCategoricalTrain, LearnsDiscretePointMass) {
  DiscretePointMassEnv env;
  rl::PpoCategorical ppo(small_ppo(7));
  const auto stats = ppo.train(env);
  EXPECT_GT(stats.final_return_mean(3), 26.0);
  // Greedy policy: right of origin -> move left (0); left -> right (2).
  EXPECT_EQ(ppo.policy().greedy({0.9}), 0u);
  EXPECT_EQ(ppo.policy().greedy({-0.9}), 2u);
}

TEST(PpoGaussianTrain, DeterministicForFixedSeed) {
  PointMassEnv env1, env2;
  rl::PpoGaussian a(small_ppo(8)), b(small_ppo(8));
  (void)a.train(env1);
  (void)b.train(env2);
  EXPECT_DOUBLE_EQ(a.policy().mean({0.21})[0], b.policy().mean({0.21})[0]);
}

TEST(PpoGaussianTrain, IncrementalMatchesMonolithic) {
  // initialize + chunked run_iterations must equal a single train() call:
  // checkpoint selection must not change what is learned.
  PointMassEnv env1, env2;
  rl::PpoGaussian mono(small_ppo(9));
  (void)mono.train(env1);
  rl::PpoGaussian chunked(small_ppo(9));
  chunked.initialize(env2);
  (void)chunked.run_iterations(env2, 7);
  (void)chunked.run_iterations(env2, 13);
  EXPECT_DOUBLE_EQ(mono.policy().mean({0.4})[0],
                   chunked.policy().mean({0.4})[0]);
}

TEST(PpoGaussianTrain, RunBeforeInitializeThrows) {
  PointMassEnv env;
  rl::PpoGaussian ppo(small_ppo(10));
  EXPECT_THROW((void)ppo.run_iterations(env, 1), std::logic_error);
}

TEST(DdpgTrain, IncrementalMatchesMonolithic) {
  PointMassEnv env1, env2;
  rl::Ddpg mono(small_ddpg(11));
  (void)mono.train(env1);
  rl::Ddpg chunked(small_ddpg(11));
  chunked.initialize(env2);
  (void)chunked.run_episodes(env2, 25);
  (void)chunked.run_episodes(env2, 35);
  EXPECT_DOUBLE_EQ(mono.actor().forward({0.5})[0],
                   chunked.actor().forward({0.5})[0]);
}

TEST(DdpgTrain, RunBeforeInitializeThrows) {
  PointMassEnv env;
  rl::Ddpg ddpg(small_ddpg(12));
  EXPECT_THROW((void)ddpg.run_episodes(env, 1), std::logic_error);
}

TEST(DdpgStats, FinalReturnMeanClampsZeroWindow) {
  rl::DdpgStats stats;
  EXPECT_DOUBLE_EQ(stats.final_return_mean(0), 0.0);  // empty: no NaN.
  stats.episode_returns = {1.0, 2.0, 4.0};
  // window == 0 must not divide by zero; it clamps to the last episode.
  EXPECT_DOUBLE_EQ(stats.final_return_mean(0), 4.0);
  EXPECT_DOUBLE_EQ(stats.final_return_mean(1), 4.0);
  EXPECT_DOUBLE_EQ(stats.final_return_mean(2), 3.0);
  EXPECT_DOUBLE_EQ(stats.final_return_mean(10), 7.0 / 3.0);
}

TEST(PpoStats, FinalReturnMeanClampsZeroWindow) {
  rl::PpoStats stats;
  EXPECT_DOUBLE_EQ(stats.final_return_mean(0), 0.0);  // empty: no NaN.
  stats.iteration_mean_returns = {1.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(stats.final_return_mean(0), 4.0);
  EXPECT_DOUBLE_EQ(stats.final_return_mean(1), 4.0);
  EXPECT_DOUBLE_EQ(stats.final_return_mean(2), 3.0);
  EXPECT_DOUBLE_EQ(stats.final_return_mean(10), 7.0 / 3.0);
}

TEST(PpoCategoricalTrain, IncrementalMatchesMonolithic) {
  DiscretePointMassEnv env1, env2;
  rl::PpoCategorical mono(small_ppo(13));
  (void)mono.train(env1);
  rl::PpoCategorical chunked(small_ppo(13));
  chunked.initialize(env2);
  (void)chunked.run_iterations(env2, 5);
  (void)chunked.run_iterations(env2, 15);
  const la::Vec p_mono = mono.policy().probabilities({0.3});
  const la::Vec p_chunk = chunked.policy().probabilities({0.3});
  for (std::size_t i = 0; i < p_mono.size(); ++i)
    EXPECT_DOUBLE_EQ(p_mono[i], p_chunk[i]);
}

}  // namespace
}  // namespace cocktail
