// Tests for the SFC key layer (verify/sfc.h) and the linearized spatial
// trees built on it (verify/box_tree.h).  The load-bearing property
// throughout: tree-backed verdicts are bitwise identical to the flat
// reference scans they replaced — randomized member sets, windows, boxes,
// and query points, including the fail-closed NaN/Inf cases.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "sys/system.h"
#include "util/rng.h"
#include "verify/box_tree.h"
#include "verify/interval.h"
#include "verify/reach.h"
#include "verify/sfc.h"

namespace cocktail {
namespace {

using la::Vec;
using verify::BoxTree;
using verify::CellSetTree;
using verify::IBox;
using verify::Interval;

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

int rand_int(util::Rng& rng, int lo, int hi) {  // inclusive range.
  return lo + static_cast<int>(rng.uniform(0.0, 1.0) *
                               static_cast<double>(hi - lo + 1)) %
                  (hi - lo + 1);
}

TEST(Sfc, KeyRoundTripAcrossDims) {
  util::Rng rng(7);
  for (std::size_t dim = 1; dim <= verify::kMaxSfcDim; ++dim) {
    const int bits = verify::sfc_max_bits(dim);
    ASSERT_TRUE(verify::sfc_fits(dim, bits));
    ASSERT_FALSE(verify::sfc_fits(dim, bits + 1));
    for (int trial = 0; trial < 200; ++trial) {
      std::vector<std::uint32_t> coords(dim);
      for (auto& c : coords)
        c = static_cast<std::uint32_t>(
            rng.uniform(0.0, std::ldexp(1.0, bits)));
      const std::uint64_t key = verify::sfc_encode(coords, bits);
      EXPECT_EQ(verify::sfc_decode(key, dim, bits), coords);
      // The parent-cell property the tree build relies on: halving every
      // coordinate is one right-shift of the whole key by dim.
      std::vector<std::uint32_t> parent(dim);
      for (std::size_t d = 0; d < dim; ++d) parent[d] = coords[d] >> 1;
      EXPECT_EQ(verify::sfc_encode(parent, bits - 1), key >> dim);
    }
  }
}

TEST(Sfc, GridLevelsAndValidation) {
  EXPECT_EQ(verify::sfc_grid_levels({1}), 0);
  EXPECT_EQ(verify::sfc_grid_levels({2, 2}), 1);
  EXPECT_EQ(verify::sfc_grid_levels({5, 3}), 3);  // covers 8x8.
  EXPECT_THROW((void)verify::sfc_grid_levels({}), std::invalid_argument);
  EXPECT_THROW((void)verify::sfc_grid_levels({4, 0}), std::invalid_argument);
}

TEST(Sfc, CellCoordFailsClosedOnNonFinite) {
  EXPECT_EQ(verify::sfc_cell_coord(kNan, 0.0, 1.0, 8), 0u);
  EXPECT_EQ(verify::sfc_cell_coord(0.5, kNan, 1.0, 8), 0u);
  EXPECT_EQ(verify::sfc_cell_coord(kInf, 0.0, 1.0, 8), 0u);
  EXPECT_EQ(verify::sfc_cell_coord(0.5, 1.0, 0.0, 8), 0u);  // hi <= lo.
  EXPECT_EQ(verify::sfc_cell_coord(-3.0, 0.0, 1.0, 8), 0u);   // clamp low.
  EXPECT_EQ(verify::sfc_cell_coord(99.0, 0.0, 1.0, 8), 7u);   // clamp high.
  EXPECT_EQ(verify::sfc_cell_coord(0.51, 0.0, 1.0, 8), 4u);
}

/// Reference for CellSetTree::all_members: the odometer window walk over
/// the flattened member array (dim 0 fastest) the tree replaced.
bool flat_all_members(const std::vector<int>& grid,
                      const std::vector<char>& member,
                      const std::vector<int>& lo_k,
                      const std::vector<int>& hi_k) {
  if (lo_k.size() != grid.size() || hi_k.size() != grid.size()) return false;
  for (std::size_t d = 0; d < grid.size(); ++d)
    if (lo_k[d] > hi_k[d]) return true;  // empty window: vacuous.
  for (std::size_t d = 0; d < grid.size(); ++d)
    if (lo_k[d] < 0 || hi_k[d] >= grid[d]) return false;
  std::vector<int> k = lo_k;
  for (;;) {
    std::size_t index = 0, stride = 1;
    for (std::size_t d = 0; d < k.size(); ++d) {
      index += static_cast<std::size_t>(k[d]) * stride;
      stride *= static_cast<std::size_t>(grid[d]);
    }
    if (member[index] == 0) return false;
    std::size_t d = 0;
    while (d < k.size() && ++k[d] > hi_k[d]) {
      k[d] = lo_k[d];
      ++d;
    }
    if (d == k.size()) break;
  }
  return true;
}

TEST(CellSetTree, MatchesFlatOdometerOnRandomizedSets) {
  util::Rng rng(11);
  const double densities[] = {0.0, 0.35, 0.8, 1.0};
  for (int trial = 0; trial < 60; ++trial) {
    const std::size_t dim = static_cast<std::size_t>(rand_int(rng, 1, 3));
    std::vector<int> grid(dim);
    std::size_t total = 1;
    for (auto& g : grid) {
      g = rand_int(rng, 1, 9);  // non-power-of-two sides included.
      total *= static_cast<std::size_t>(g);
    }
    const double density = densities[trial % 4];
    std::vector<char> member(total);
    for (auto& m : member) m = rng.uniform(0.0, 1.0) < density ? 1 : 0;

    ASSERT_TRUE(CellSetTree::supports(grid));
    const CellSetTree tree = CellSetTree::build(grid, member);
    EXPECT_EQ(tree.member_count(),
              static_cast<std::size_t>(
                  std::count(member.begin(), member.end(), 1)));

    for (int q = 0; q < 40; ++q) {
      std::vector<int> lo_k(dim), hi_k(dim);
      for (std::size_t d = 0; d < dim; ++d) {
        // Windows may be empty (lo > hi) or escape the grid.
        lo_k[d] = rand_int(rng, -1, grid[d]);
        hi_k[d] = rand_int(rng, -1, grid[d]);
      }
      EXPECT_EQ(tree.all_members(lo_k, hi_k),
                flat_all_members(grid, member, lo_k, hi_k))
          << "trial " << trial << " query " << q;
    }
    // Full-grid window == every cell a member.
    std::vector<int> zero(dim, 0), top(dim);
    for (std::size_t d = 0; d < dim; ++d) top[d] = grid[d] - 1;
    EXPECT_EQ(tree.all_members(zero, top), tree.member_count() == total);
  }
}

TEST(CellSetTree, FailsClosedOnBadInput) {
  const CellSetTree empty;  // default: certifies nothing.
  EXPECT_FALSE(empty.all_members({0}, {0}));
  const CellSetTree tree = CellSetTree::build({4, 4}, std::vector<char>(16, 1));
  EXPECT_FALSE(tree.all_members({0}, {0}));           // dim mismatch.
  EXPECT_FALSE(tree.all_members({0, 0}, {0, 4}));     // escapes grid.
  EXPECT_FALSE(tree.all_members({-1, 0}, {0, 0}));    // escapes grid.
  EXPECT_TRUE(tree.all_members({2, 2}, {1, 1}));      // empty: vacuous.
  EXPECT_THROW((void)CellSetTree::build({4, 4}, std::vector<char>(15, 1)),
               std::invalid_argument);
  EXPECT_FALSE(CellSetTree::supports(std::vector<int>(9, 2)));  // dim > 8.
  // 3 x 22 levels = 66 key bits: too wide for one 64-bit Morton key.
  EXPECT_FALSE(CellSetTree::supports({1 << 22, 1 << 22, 1 << 22}));
}

IBox random_box(util::Rng& rng, std::size_t dim, double span) {
  IBox box(dim);
  for (std::size_t d = 0; d < dim; ++d) {
    const double lo = rng.uniform(-span, span);
    box[d] = {lo, lo + rng.uniform(0.0, 0.4 * span)};
  }
  return box;
}

TEST(BoxTree, QueriesMatchFlatScans) {
  util::Rng rng(23);
  for (int trial = 0; trial < 25; ++trial) {
    const std::size_t dim = static_cast<std::size_t>(rand_int(rng, 1, 4));
    const std::size_t count = static_cast<std::size_t>(rand_int(rng, 0, 60));
    std::vector<IBox> boxes;
    boxes.reserve(count);
    for (std::size_t i = 0; i < count; ++i)
      boxes.push_back(random_box(rng, dim, 2.0));
    const BoxTree tree = BoxTree::build(boxes);
    ASSERT_EQ(tree.size(), count);

    for (int q = 0; q < 30; ++q) {
      Vec point(dim);
      for (auto& x : point) x = rng.uniform(-2.5, 2.5);
      bool flat = false;
      for (const IBox& box : boxes)
        flat = flat || verify::box_contains(box, point);
      EXPECT_EQ(tree.contains_point(point), flat);

      const IBox query = random_box(rng, dim, 2.0);
      std::vector<std::size_t> expect;
      for (std::size_t i = 0; i < count; ++i) {
        bool hit = true;
        for (std::size_t d = 0; d < dim; ++d)
          hit = hit && boxes[i][d].intersects(query[d]);
        if (hit) expect.push_back(i);
      }
      EXPECT_EQ(tree.intersecting(query), expect);
    }

    const sys::Box region = sys::Box::symmetric(dim, 2.2);
    bool flat_inside = true;
    for (const IBox& box : boxes)
      flat_inside = flat_inside && verify::box_inside_region(box, region);
    EXPECT_EQ(tree.all_inside(region), flat_inside);
    // Generous region: everything fits (vacuously true when empty).
    EXPECT_TRUE(tree.all_inside(sys::Box::symmetric(dim, 1e6)));
  }
}

TEST(BoxTree, NonFiniteBoxesAreTaintedNotPoisonous) {
  std::vector<IBox> boxes;
  boxes.push_back(verify::make_box({0.0, 0.0}, {1.0, 1.0}));
  IBox bad(2);
  bad[0] = {kNan, kNan};
  bad[1] = {0.0, kInf};
  boxes.push_back(bad);
  boxes.push_back(verify::make_box({-1.0, -1.0}, {-0.5, -0.5}));
  const BoxTree tree = BoxTree::build(boxes);

  // The corrupted box satisfies no query and never certifies safety...
  EXPECT_FALSE(tree.all_inside(sys::Box::symmetric(2, 100.0)));
  EXPECT_TRUE(tree.intersecting(bad).empty());
  // ...but valid siblings still answer exactly.
  EXPECT_TRUE(tree.contains_point({0.5, 0.5}));
  EXPECT_TRUE(tree.contains_point({-0.75, -0.75}));
  EXPECT_FALSE(tree.contains_point({3.0, 3.0}));
  EXPECT_FALSE(tree.contains_point({kNan, 0.5}));  // NaN point fails closed.
  const std::vector<std::size_t> hits =
      tree.intersecting(verify::make_box({0.4, 0.4}, {0.6, 0.6}));
  EXPECT_EQ(hits, (std::vector<std::size_t>{0}));

  // An unbounded-but-valid region dimension still passes valid boxes.
  sys::Box half(Vec{-2.0, -sys::Box::kUnbounded},
                Vec{2.0, sys::Box::kUnbounded});
  std::vector<IBox> fine;
  fine.push_back(verify::make_box({-1.0, -50.0}, {1.0, 50.0}));
  EXPECT_TRUE(BoxTree::build(fine).all_inside(half));

  EXPECT_THROW((void)BoxTree::build({verify::make_box({0.0}, {1.0}),
                                     verify::make_box({0.0, 0.0}, {1.0, 1.0})}),
               std::invalid_argument);
}

TEST(BoxTree, BuildIsPureFunctionOfSequence) {
  util::Rng rng(31);
  std::vector<IBox> boxes;
  for (int i = 0; i < 40; ++i) boxes.push_back(random_box(rng, 3, 1.5));
  const BoxTree a = BoxTree::build(boxes);
  const BoxTree b = BoxTree::build(boxes);
  // Bitwise-equal stored boxes and identical answers on shared queries.
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    for (std::size_t d = 0; d < 3; ++d) {
      EXPECT_EQ(a.boxes()[i][d].lo(), b.boxes()[i][d].lo());
      EXPECT_EQ(a.boxes()[i][d].hi(), b.boxes()[i][d].hi());
    }
  for (int q = 0; q < 50; ++q) {
    const IBox query = random_box(rng, 3, 1.5);
    EXPECT_EQ(a.intersecting(query), b.intersecting(query));
  }
}

TEST(PaveBoxes, OutputInvariantUnderInputPermutation) {
  util::Rng rng(41);
  std::vector<IBox> boxes;
  for (int i = 0; i < 30; ++i) boxes.push_back(random_box(rng, 2, 1.0));
  const std::vector<IBox> paved = verify::pave_boxes(boxes, 0.125, 4096);

  std::vector<IBox> reversed(boxes.rbegin(), boxes.rend());
  const std::vector<IBox> paved_rev = verify::pave_boxes(reversed, 0.125, 4096);
  ASSERT_EQ(paved.size(), paved_rev.size());
  for (std::size_t i = 0; i < paved.size(); ++i)
    for (std::size_t d = 0; d < 2; ++d) {
      EXPECT_EQ(paved[i][d].lo(), paved_rev[i][d].lo());
      EXPECT_EQ(paved[i][d].hi(), paved_rev[i][d].hi());
    }
  // And the cover is sound either way.
  for (const IBox& box : boxes) {
    for (std::size_t d = 0; d < 2; ++d) {
      Vec corner(2);
      corner[0] = d == 0 ? box[0].lo() : box[0].hi();
      corner[1] = box[1].mid();
      bool covered = false;
      for (const IBox& cell : paved)
        covered = covered || verify::box_contains(cell, corner);
      EXPECT_TRUE(covered);
    }
  }
}

}  // namespace
}  // namespace cocktail
