// Instantiates the universal Env-conformance suite (env_conformance.h) for
// every rl::Env implementation in the tree: the Section III-A adaptation
// MDPs (MixingEnv — clean and with observation noise —, SwitchingEnv,
// FiniteWeightedEnv), the per-expert DDPG task (ExpertTrainingEnv), and the
// point-mass envs the RL suites train on.
#include "env_conformance.h"

#include <algorithm>
#include <memory>
#include <vector>

#include "control/polynomial_controller.h"
#include "core/envs.h"
#include "point_mass_envs.h"
#include "sys/vanderpol.h"

namespace cocktail {
namespace {

using testutil::EnvConformanceCase;

/// Linear state feedback u = gain0*s0 + gain1*s1 (PolynomialController
/// negates the gain matrix).
ctrl::ControllerPtr feedback_expert(double gain0, double gain1,
                                    const char* label) {
  la::Matrix k(1, 2);
  k(0, 0) = -gain0;
  k(0, 1) = -gain1;
  return std::make_shared<ctrl::PolynomialController>(
      ctrl::PolynomialController::linear_feedback(k, label));
}

/// κ_stab = -(3 s0 + 4 s1): the stabilizing teacher of the pipeline tests.
ctrl::ControllerPtr stabilizer() { return feedback_expert(-3.0, -4.0, "stab"); }
/// κ_anti = +(6 s0 + 6 s1): positive feedback, exits X within an episode.
ctrl::ControllerPtr destabilizer() { return feedback_expert(6.0, 6.0, "anti"); }

std::vector<ctrl::ControllerPtr> expert_pair() {
  return {stabilizer(), destabilizer()};
}

core::SafetyRewardConfig clean_reward() {
  core::SafetyRewardConfig reward;
  reward.boundary_margin = 0.0;
  return reward;
}

std::vector<EnvConformanceCase> all_env_cases() {
  std::vector<EnvConformanceCase> cases;

  cases.push_back({
      "PointMass",
      [] { return std::make_unique<testutil::PointMassEnv>(); },
      [](const la::Vec& s, int) { return la::Vec{-s[0]}; },
      [](const la::Vec&, int) { return la::Vec{1.0}; },
  });

  cases.push_back({
      "DiscretePointMass",
      [] { return std::make_unique<testutil::DiscretePointMassEnv>(); },
      [](const la::Vec& s, int) { return la::Vec{s[0] > 0.0 ? 0.0 : 2.0}; },
      nullptr,  // never terminates: reward is dense, |x| unbounded but safe.
  });

  cases.push_back({
      "ExpertTraining",
      [] {
        return std::make_unique<core::ExpertTrainingEnv>(
            std::make_shared<sys::VanDerPol>(),
            core::ExpertTrainingEnv::Config{});
      },
      // u = -(3 s0 + 4 s1), expressed in the [-1,1] action scale (|u| <= 20).
      [](const la::Vec& s, int) {
        return la::Vec{std::clamp(-(3.0 * s[0] + 4.0 * s[1]) / 20.0, -1.0,
                                  1.0)};
      },
      // Saturated constant thrust drives the oscillator out of X.
      [](const la::Vec&, int) { return la::Vec{1.0}; },
  });

  cases.push_back({
      "Mixing",
      [] {
        return std::make_unique<core::MixingEnv>(
            std::make_shared<sys::VanDerPol>(), expert_pair(), 1.5,
            clean_reward());
      },
      // Weight 1.5 * 2/3 = 1 on the stabilizer, 0 on the destabilizer.
      [](const la::Vec&, int) { return la::Vec{2.0 / 3.0, 0.0}; },
      [](const la::Vec&, int) { return la::Vec{0.0, 2.0 / 3.0}; },
  });

  cases.push_back({
      "MixingNoisyObservations",
      [] {
        core::SafetyRewardConfig reward = clean_reward();
        reward.observation_noise = {0.03, 0.03};
        return std::make_unique<core::MixingEnv>(
            std::make_shared<sys::VanDerPol>(), expert_pair(), 1.5, reward);
      },
      [](const la::Vec&, int) { return la::Vec{2.0 / 3.0, 0.0}; },
      [](const la::Vec&, int) { return la::Vec{0.0, 2.0 / 3.0}; },
  });

  cases.push_back({
      "Switching",
      [] {
        return std::make_unique<core::SwitchingEnv>(
            std::make_shared<sys::VanDerPol>(), expert_pair(),
            clean_reward());
      },
      [](const la::Vec&, int) { return la::Vec{0.0}; },  // the stabilizer.
      [](const la::Vec&, int) { return la::Vec{1.0}; },  // the destabilizer.
  });

  cases.push_back({
      "FiniteWeighted",
      [] {
        return std::make_unique<core::FiniteWeightedEnv>(
            std::make_shared<sys::VanDerPol>(), expert_pair(),
            std::vector<la::Vec>{{1.0, 0.0}, {0.0, 1.0}, {0.5, 0.5}},
            clean_reward());
      },
      [](const la::Vec&, int) { return la::Vec{0.0}; },  // pure stabilizer.
      [](const la::Vec&, int) { return la::Vec{1.0}; },  // pure destabilizer.
  });

  return cases;
}

}  // namespace

// The fixture lives in cocktail::testutil (env_conformance.h); gtest's
// INSTANTIATE macro needs the unqualified fixture name in scope.
namespace testutil {

INSTANTIATE_TEST_SUITE_P(AllEnvs, EnvConformance,
                         ::testing::ValuesIn(all_env_cases()), env_case_name);

}  // namespace testutil
}  // namespace cocktail
