// The tiny 1-D point-mass tasks the RL test suites train on and the
// trainer-update micro-benchmarks measure.  gtest-free so bench_micro can
// share them (its CMake target adds tests/ to its include path); one copy
// so the suites and benchmarks can never silently drift onto different
// dynamics.
#pragma once

#include <cmath>
#include <cstddef>
#include <memory>

#include "rl/env.h"
#include "util/rng.h"

namespace cocktail::testutil {

/// 1-D point mass: x' = x + 0.2*a, reward 1 - x²; start x ~ U[-1, 1].
class PointMassEnv final : public rl::Env {
 public:
  [[nodiscard]] std::size_t state_dim() const override { return 1; }
  [[nodiscard]] std::size_t action_dim() const override { return 1; }
  [[nodiscard]] int max_episode_steps() const override { return 30; }

 protected:
  la::Vec do_reset(util::Rng& rng) override {
    x_ = rng.uniform(-1.0, 1.0);
    return {x_};
  }

  rl::StepResult do_step(const la::Vec& action, util::Rng&) override {
    x_ += 0.2 * action[0];
    rl::StepResult result;
    result.next_state = {x_};
    result.reward = 1.0 - x_ * x_;
    result.terminal = std::abs(x_) > 3.0;
    if (result.terminal) result.reward = -10.0;
    return result;
  }

  [[nodiscard]] std::unique_ptr<rl::Env> do_clone() const override {
    return std::make_unique<PointMassEnv>(*this);
  }

 private:
  double x_ = 0.0;
};

/// Discrete version: actions {left, stay, right} with step 0.15.
class DiscretePointMassEnv final : public rl::Env {
 public:
  [[nodiscard]] std::size_t state_dim() const override { return 1; }
  [[nodiscard]] std::size_t action_dim() const override { return 3; }
  [[nodiscard]] int max_episode_steps() const override { return 30; }

 protected:
  la::Vec do_reset(util::Rng& rng) override {
    x_ = rng.uniform(-1.0, 1.0);
    return {x_};
  }

  rl::StepResult do_step(const la::Vec& action, util::Rng&) override {
    const auto choice = static_cast<int>(action[0]);
    x_ += 0.15 * (choice - 1);
    rl::StepResult result;
    result.next_state = {x_};
    result.reward = 1.0 - x_ * x_;
    return result;
  }

  [[nodiscard]] std::unique_ptr<rl::Env> do_clone() const override {
    return std::make_unique<DiscretePointMassEnv>(*this);
  }

 private:
  double x_ = 0.0;
};

}  // namespace cocktail::testutil
