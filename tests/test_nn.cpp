// Unit + property tests for src/nn: backprop correctness (finite-difference
// checks over all activations), optimizers, losses, Lipschitz soundness,
// serialization.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <sstream>

#include "la/kernels.h"
#include "nn/activation.h"
#include "nn/loss.h"
#include "nn/mlp.h"
#include "nn/optimizer.h"
#include "util/rng.h"

namespace cocktail {
namespace {

using la::Vec;
using nn::Activation;
using nn::Mlp;

TEST(Activation, Values) {
  EXPECT_DOUBLE_EQ(nn::activate(Activation::kIdentity, -1.5), -1.5);
  EXPECT_DOUBLE_EQ(nn::activate(Activation::kRelu, -1.5), 0.0);
  EXPECT_DOUBLE_EQ(nn::activate(Activation::kRelu, 2.0), 2.0);
  EXPECT_NEAR(nn::activate(Activation::kTanh, 0.5), std::tanh(0.5), 1e-15);
  EXPECT_NEAR(nn::activate(Activation::kSigmoid, 0.0), 0.5, 1e-15);
}

TEST(Activation, DerivativesMatchFiniteDifference) {
  const double h = 1e-6;
  for (const auto act : {Activation::kIdentity, Activation::kRelu,
                         Activation::kTanh, Activation::kSigmoid}) {
    for (const double z : {-1.3, 0.4, 2.1}) {
      const double a = nn::activate(act, z);
      const double numeric =
          (nn::activate(act, z + h) - nn::activate(act, z - h)) / (2.0 * h);
      EXPECT_NEAR(nn::activate_grad(act, z, a), numeric, 1e-5)
          << nn::to_string(act) << " at " << z;
    }
  }
}

TEST(Activation, StringRoundTrip) {
  for (const auto act : {Activation::kIdentity, Activation::kRelu,
                         Activation::kTanh, Activation::kSigmoid})
    EXPECT_EQ(nn::activation_from_string(nn::to_string(act)), act);
  EXPECT_THROW((void)nn::activation_from_string("swish"),
               std::invalid_argument);
}

TEST(MlpTest, ShapesAndParameterCount) {
  const Mlp net = Mlp::make(3, {5, 4}, 2, Activation::kTanh,
                            Activation::kIdentity, 1);
  EXPECT_EQ(net.input_dim(), 3u);
  EXPECT_EQ(net.output_dim(), 2u);
  EXPECT_EQ(net.num_layers(), 3u);
  // (3*5+5) + (5*4+4) + (4*2+2) = 20 + 24 + 10.
  EXPECT_EQ(net.num_parameters(), 54u);
  EXPECT_EQ(net.forward({1.0, 2.0, 3.0}).size(), 2u);
}

TEST(MlpTest, ForwardMatchesManualSingleLayer) {
  util::Rng rng(2);
  std::vector<std::size_t> widths = {2, 1};
  std::vector<Activation> acts = {Activation::kIdentity};
  Mlp net(widths, acts, rng);
  auto& layer = net.layers()[0];
  layer.w(0, 0) = 2.0;
  layer.w(0, 1) = -1.0;
  layer.b[0] = 0.5;
  EXPECT_DOUBLE_EQ(net.forward({3.0, 4.0})[0], 2.5);
}

/// Finite-difference check of parameter and input gradients for one
/// architecture/activation combination.
void check_gradients(Activation hidden, Activation output,
                     std::uint64_t seed) {
  Mlp net = Mlp::make(3, {4, 4}, 2, hidden, output, seed);
  util::Rng rng(seed + 99);
  const Vec x = rng.normal_vec(3);
  const Vec target = rng.normal_vec(2);

  Mlp::Workspace ws;
  const Vec y = net.forward(x, ws);
  nn::Gradients grads = net.zero_gradients();
  const Vec dx = net.backward(ws, nn::mse_gradient(y, target), grads);

  const double h = 1e-6;
  // Input gradient check.
  for (std::size_t i = 0; i < x.size(); ++i) {
    Vec xp = x, xm = x;
    xp[i] += h;
    xm[i] -= h;
    const double numeric = (nn::mse(net.forward(xp), target) -
                            nn::mse(net.forward(xm), target)) /
                           (2.0 * h);
    EXPECT_NEAR(dx[i], numeric, 1e-4) << "input grad dim " << i;
  }
  // Spot-check parameter gradients (first/last layer, several entries).
  for (const std::size_t layer_idx : {std::size_t{0}, net.num_layers() - 1}) {
    auto& layer = net.layers()[layer_idx];
    for (std::size_t k = 0; k < std::min<std::size_t>(layer.w.size(), 6);
         ++k) {
      const double saved = layer.w.data()[k];
      layer.w.data()[k] = saved + h;
      const double up = nn::mse(net.forward(x), target);
      layer.w.data()[k] = saved - h;
      const double dn = nn::mse(net.forward(x), target);
      layer.w.data()[k] = saved;
      EXPECT_NEAR(grads.w[layer_idx].data()[k], (up - dn) / (2.0 * h), 1e-4)
          << "w grad layer " << layer_idx << " entry " << k;
    }
    const double saved_b = layer.b[0];
    layer.b[0] = saved_b + h;
    const double up = nn::mse(net.forward(x), target);
    layer.b[0] = saved_b - h;
    const double dn = nn::mse(net.forward(x), target);
    layer.b[0] = saved_b;
    EXPECT_NEAR(grads.b[layer_idx][0], (up - dn) / (2.0 * h), 1e-4);
  }
}

class MlpGradient
    : public ::testing::TestWithParam<std::tuple<Activation, Activation>> {};

TEST_P(MlpGradient, MatchesFiniteDifference) {
  const auto [hidden, output] = GetParam();
  check_gradients(hidden, output, 7);
  check_gradients(hidden, output, 8);
}

INSTANTIATE_TEST_SUITE_P(
    Activations, MlpGradient,
    ::testing::Combine(::testing::Values(Activation::kRelu, Activation::kTanh,
                                         Activation::kSigmoid),
                       ::testing::Values(Activation::kIdentity,
                                         Activation::kTanh)));

TEST(MlpTest, InputGradientMatchesBackward) {
  Mlp net = Mlp::make(2, {8}, 1, Activation::kTanh, Activation::kIdentity, 3);
  const Vec x = {0.3, -0.7};
  const Vec dy = {1.0};
  Mlp::Workspace ws;
  net.forward(x, ws);
  nn::Gradients grads = net.zero_gradients();
  const Vec via_backward = net.backward(ws, dy, grads);
  const Vec via_input = net.input_gradient(x, dy);
  for (std::size_t i = 0; i < 2; ++i)
    EXPECT_NEAR(via_backward[i], via_input[i], 1e-14);
}

TEST(MlpTest, JacobianMatchesFiniteDifference) {
  Mlp net = Mlp::make(3, {6, 6}, 2, Activation::kTanh, Activation::kTanh, 5);
  const Vec x = {0.2, -0.1, 0.4};
  const la::Matrix jac = net.input_jacobian(x);
  const double h = 1e-6;
  for (std::size_t c = 0; c < 3; ++c) {
    Vec xp = x, xm = x;
    xp[c] += h;
    xm[c] -= h;
    const Vec yp = net.forward(xp);
    const Vec ym = net.forward(xm);
    for (std::size_t r = 0; r < 2; ++r)
      EXPECT_NEAR(jac(r, c), (yp[r] - ym[r]) / (2.0 * h), 1e-5);
  }
}

TEST(MlpTest, L2GradientIsTwoLambdaQ) {
  Mlp net = Mlp::make(2, {3}, 1, Activation::kRelu, Activation::kIdentity, 9);
  nn::Gradients grads = net.zero_gradients();
  net.accumulate_l2_gradient(0.5, grads);
  EXPECT_NEAR(grads.w[0].data()[0], net.layers()[0].w.data()[0], 1e-15);
}

TEST(MlpTest, LipschitzBoundIsSound) {
  // Property: certified bound >= empirical slope, over several nets.
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const Mlp net = Mlp::make(2, {16, 16}, 1, Activation::kTanh,
                              Activation::kIdentity, seed);
    util::Rng rng(seed);
    const double certified = net.lipschitz_upper_bound();
    const double sampled =
        net.lipschitz_sampled({-1.0, -1.0}, {1.0, 1.0}, 2000, rng);
    EXPECT_GE(certified, sampled) << "seed " << seed;
    EXPECT_GT(sampled, 0.0);
  }
}

TEST(MlpTest, LipschitzSigmoidQuartersBound) {
  Mlp relu = Mlp::make(2, {4}, 1, Activation::kRelu, Activation::kIdentity, 4);
  Mlp sigm = relu;
  sigm.layers()[0].act = Activation::kSigmoid;
  EXPECT_NEAR(sigm.lipschitz_upper_bound(),
              0.25 * relu.lipschitz_upper_bound(), 1e-12);
}

TEST(MlpTest, SerializationRoundTrip) {
  const Mlp net = Mlp::make(3, {7, 5}, 2, Activation::kRelu,
                            Activation::kTanh, 11);
  std::stringstream buffer;
  net.save(buffer);
  const Mlp loaded = Mlp::load(buffer);
  util::Rng rng(1);
  for (int k = 0; k < 10; ++k) {
    const Vec x = rng.normal_vec(3);
    const Vec a = net.forward(x);
    const Vec b = loaded.forward(x);
    for (std::size_t i = 0; i < a.size(); ++i) EXPECT_DOUBLE_EQ(a[i], b[i]);
  }
}

TEST(MlpTest, LoadRejectsBadHeader) {
  std::stringstream buffer("not-a-model v9\n");
  EXPECT_THROW(Mlp::load(buffer), std::runtime_error);
}

TEST(MlpTest, LoadRejectsTruncatedStream) {
  const Mlp net = Mlp::make(3, {7, 5}, 2, Activation::kRelu,
                            Activation::kTanh, 11);
  std::stringstream buffer;
  net.save(buffer);
  const std::string full = buffer.str();
  // Cut the payload at several depths: mid-weights, mid-bias, after the
  // header only.  Every truncation must throw, never return a half-read net.
  for (const double fraction : {0.2, 0.5, 0.9}) {
    std::stringstream cut(
        full.substr(0, static_cast<std::size_t>(fraction * full.size())));
    EXPECT_THROW(Mlp::load(cut), std::runtime_error) << fraction;
  }
  std::stringstream header_only("cocktail-mlp v1\n");
  EXPECT_THROW(Mlp::load(header_only), std::runtime_error);
}

TEST(MlpTest, LoadRejectsLayerDimensionMismatch) {
  // Layer 0 produces 2 outputs; layer 1 claims 3 inputs.
  std::stringstream buffer(
      "cocktail-mlp v1\n"
      "2\n"
      "2 1 tanh\n"
      "0.5\n-0.5\n"
      "0.1 0.2\n"
      "1 3 identity\n"
      "0.1 0.2 0.3\n"
      "0.0\n");
  EXPECT_THROW(Mlp::load(buffer), std::runtime_error);
}

TEST(MlpTest, LoadRejectsNonFiniteWeights) {
  std::stringstream nan_weight(
      "cocktail-mlp v1\n"
      "1\n"
      "1 2 identity\n"
      "0.5 nan\n"
      "0.0\n");
  EXPECT_THROW(Mlp::load(nan_weight), std::runtime_error);
  std::stringstream inf_bias(
      "cocktail-mlp v1\n"
      "1\n"
      "1 2 identity\n"
      "0.5 0.25\n"
      "inf\n");
  EXPECT_THROW(Mlp::load(inf_bias), std::runtime_error);
}

TEST(MlpTest, ForwardBatchIsBitwiseIdenticalToScalarForward) {
  // The serving runtime's contract: batching must never change an answer.
  // Sweep shapes and activations; every row of every batch must match the
  // per-sample path exactly (EXPECT_EQ, not NEAR).
  struct Case {
    std::vector<std::size_t> hidden;
    Activation hidden_act;
    Activation out_act;
  };
  if (la::kernels::blas_enabled())
    GTEST_SKIP() << "COCKTAIL_BLAS waives the bitwise batching contract";
  const std::vector<Case> cases = {
      {{16}, Activation::kTanh, Activation::kIdentity},
      {{24, 24}, Activation::kRelu, Activation::kTanh},
      {{8, 8, 8}, Activation::kSigmoid, Activation::kIdentity},
  };
  util::Rng rng(31);
  for (const Case& c : cases) {
    const Mlp net = Mlp::make(4, c.hidden, 3, c.hidden_act, c.out_act, 77);
    for (const std::size_t batch : {1u, 2u, 17u}) {
      la::Matrix x(batch, 4);
      for (auto& v : x.data()) v = rng.uniform(-2.0, 2.0);
      const la::Matrix y = net.forward_batch(x);
      ASSERT_EQ(y.rows(), batch);
      ASSERT_EQ(y.cols(), 3u);
      for (std::size_t r = 0; r < batch; ++r) {
        const Vec row = net.forward(x.row(r));
        for (std::size_t i = 0; i < row.size(); ++i)
          ASSERT_EQ(y(r, i), row[i]) << "row " << r << " out " << i;
      }
    }
  }
}

TEST(MlpTest, ForwardBatchBitwiseOnPrimeWidthsAndBatches) {
  // Widths and batch sizes that are multiples of nothing: the blocked GEMM's
  // panel tails and the scalar matvec must still land on identical bits.
  if (la::kernels::blas_enabled())
    GTEST_SKIP() << "COCKTAIL_BLAS waives the bitwise batching contract";
  const Mlp net = Mlp::make(5, {31, 17}, 3, Activation::kTanh,
                            Activation::kIdentity, 123);
  util::Rng rng(41);
  for (const std::size_t batch :
       {std::size_t{1}, std::size_t{2}, std::size_t{7}, std::size_t{33}}) {
    la::Matrix x(batch, 5);
    for (auto& v : x.data()) v = rng.uniform(-2.0, 2.0);
    const la::Matrix y = net.forward_batch(x);
    ASSERT_EQ(y.rows(), batch);
    ASSERT_EQ(y.cols(), 3u);
    for (std::size_t r = 0; r < batch; ++r) {
      const Vec row = net.forward(x.row(r));
      for (std::size_t i = 0; i < row.size(); ++i)
        ASSERT_EQ(y(r, i), row[i]) << "batch " << batch << " row " << r
                                   << " out " << i;
    }
  }
}

TEST(MlpTest, BackwardPropagatesNanIntoWeightGradients) {
  // Regression for the add_outer zero-skip: with dLoss/dy = 0 the weight
  // gradient is 0 * input.  If the input activation is NaN that product is
  // NaN, and the old `kc == 0.0` skip silently dropped it.
  Mlp net = Mlp::make(1, {}, 1, Activation::kIdentity,
                      Activation::kIdentity, 1);
  Mlp::Workspace ws;
  const Vec y = net.forward({std::nan("")}, ws);
  ASSERT_TRUE(std::isnan(y[0]));
  nn::Gradients grads = net.zero_gradients();
  net.backward(ws, {0.0}, grads);
  EXPECT_TRUE(std::isnan(grads.w[0](0, 0)));
}

TEST(MlpTest, ForwardBatchRejectsWrongInputWidth) {
  const Mlp net = Mlp::make(3, {4}, 1, Activation::kTanh,
                            Activation::kIdentity, 5);
  EXPECT_THROW((void)net.forward_batch(la::Matrix(2, 4)),
               std::invalid_argument);
}

TEST(Optimizer, AdamMinimizesQuadratic) {
  // Fit y = net(x) to y* = 3x - 1 on fixed points; Adam must reach tiny loss.
  Mlp net = Mlp::make(1, {8}, 1, Activation::kTanh, Activation::kIdentity, 13);
  nn::Adam opt(0.02);
  util::Rng rng(13);
  double final_loss = 1e9;
  for (int epoch = 0; epoch < 400; ++epoch) {
    nn::Gradients grads = net.zero_gradients();
    double loss = 0.0;
    for (int k = 0; k < 16; ++k) {
      const double x = -1.0 + 2.0 * k / 15.0;
      const Vec target = {3.0 * x - 1.0};
      Mlp::Workspace ws;
      const Vec y = net.forward({x}, ws);
      loss += nn::mse(y, target);
      Vec dl = nn::mse_gradient(y, target);
      for (auto& g : dl) g /= 16.0;
      net.backward(ws, dl, grads);
    }
    final_loss = loss / 16.0;
    opt.step(net, grads);
  }
  // Targets span [-4, 2]; 5e-3 MSE is ~1% relative error.
  EXPECT_LT(final_loss, 5e-3);
}

TEST(Optimizer, SgdMomentumMovesDownhill) {
  Mlp net = Mlp::make(1, {4}, 1, Activation::kTanh, Activation::kIdentity, 17);
  nn::Sgd opt(0.05, 0.9);
  const Vec target = {2.0};
  double first_loss = 0.0, last_loss = 0.0;
  for (int step = 0; step < 200; ++step) {
    Mlp::Workspace ws;
    const Vec y = net.forward({0.5}, ws);
    const double loss = nn::mse(y, target);
    if (step == 0) first_loss = loss;
    last_loss = loss;
    nn::Gradients grads = net.zero_gradients();
    net.backward(ws, nn::mse_gradient(y, target), grads);
    opt.step(net, grads);
  }
  EXPECT_LT(last_loss, 0.1 * first_loss);
}

TEST(Optimizer, AdamVecConverges) {
  la::Vec params = {5.0, -3.0};
  nn::AdamVec opt(0.1);
  for (int step = 0; step < 500; ++step) {
    // d/dp of 0.5*||p - (1,2)||^2.
    const la::Vec grads = {params[0] - 1.0, params[1] - 2.0};
    opt.step(params, grads);
  }
  EXPECT_NEAR(params[0], 1.0, 1e-3);
  EXPECT_NEAR(params[1], 2.0, 1e-3);
}

TEST(Gradients, ClipNormScalesDown) {
  Mlp net = Mlp::make(2, {4}, 1, Activation::kRelu, Activation::kIdentity, 19);
  nn::Gradients grads = net.zero_gradients();
  grads.w[0].fill(10.0);
  const double before = grads.l2_norm();
  ASSERT_GT(before, 1.0);
  grads.clip_norm(1.0);
  EXPECT_NEAR(grads.l2_norm(), 1.0, 1e-12);
}

TEST(Loss, MseAndGradient) {
  EXPECT_DOUBLE_EQ(nn::mse({1.0, 3.0}, {0.0, 1.0}), 2.5);
  const Vec g = nn::mse_gradient({1.0, 3.0}, {0.0, 1.0});
  EXPECT_DOUBLE_EQ(g[0], 1.0);
  EXPECT_DOUBLE_EQ(g[1], 2.0);
}

TEST(Loss, HuberMatchesMseInQuadraticRegion) {
  EXPECT_NEAR(nn::huber({0.5}, {0.0}, 1.0), 0.5 * 0.25, 1e-15);
  // Linear region grows linearly.
  EXPECT_NEAR(nn::huber({10.0}, {0.0}, 1.0), 1.0 * (10.0 - 0.5), 1e-12);
}

TEST(Loss, HuberGradientIsClamped) {
  const Vec g = nn::huber_gradient({10.0, -10.0, 0.2}, {0.0, 0.0, 0.0}, 1.0);
  EXPECT_DOUBLE_EQ(g[0], 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(g[1], -1.0 / 3.0);
  EXPECT_NEAR(g[2], 0.2 / 3.0, 1e-15);
}

}  // namespace
}  // namespace cocktail
