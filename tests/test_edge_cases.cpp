// Edge-case and cross-module consistency tests that don't fit a single
// module suite: degenerate configurations, scalar-template equivalence,
// serialization corners, and defensive-error paths.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "attack/fgsm.h"
#include "control/nn_controller.h"
#include "core/distiller.h"
#include "core/rollout.h"
#include "la/matrix.h"
#include "nn/mlp.h"
#include "sys/cartpole.h"
#include "sys/threed.h"
#include "sys/vanderpol.h"
#include "util/csv.h"
#include "verify/interval.h"
#include "verify/nn_abstraction.h"

namespace cocktail {
namespace {

using la::Vec;

TEST(MatrixFactories, RowColDiagonal) {
  const la::Matrix row = la::Matrix::row_vector({1.0, 2.0, 3.0});
  EXPECT_EQ(row.rows(), 1u);
  EXPECT_EQ(row.cols(), 3u);
  const la::Matrix col = la::Matrix::col_vector({1.0, 2.0});
  EXPECT_EQ(col.rows(), 2u);
  EXPECT_EQ(col.cols(), 1u);
  const la::Matrix diag = la::Matrix::diagonal({2.0, 3.0});
  EXPECT_DOUBLE_EQ(diag(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(diag(1, 1), 3.0);
  EXPECT_DOUBLE_EQ(diag(0, 1), 0.0);
}

TEST(MatrixEdge, EmptyMatrixSpectralNormIsZero) {
  const la::Matrix empty;
  EXPECT_DOUBLE_EQ(empty.spectral_norm(), 0.0);
  EXPECT_TRUE(empty.empty());
}

TEST(MlpEdge, SingleLinearLayerNetwork) {
  // make() with no hidden layers produces one affine layer — used by the
  // verification tests to construct exactly-known Lipschitz subjects.
  nn::Mlp net = nn::Mlp::make(3, {}, 2, nn::Activation::kTanh,
                              nn::Activation::kIdentity, 1);
  EXPECT_EQ(net.num_layers(), 1u);
  net.layers()[0].w.fill(0.0);
  net.layers()[0].w(0, 0) = 2.0;
  net.layers()[0].b = {1.0, -1.0};
  const Vec y = net.forward({3.0, 0.0, 0.0});
  EXPECT_DOUBLE_EQ(y[0], 7.0);
  EXPECT_DOUBLE_EQ(y[1], -1.0);
  EXPECT_NEAR(net.lipschitz_upper_bound(), 2.0, 1e-9);
}

TEST(MlpEdge, EmptyNetworkThrowsOnUse) {
  const nn::Mlp net;
  EXPECT_TRUE(net.empty());
  EXPECT_THROW((void)net.input_dim(), std::logic_error);
  EXPECT_THROW((void)net.output_dim(), std::logic_error);
}

TEST(MlpEdge, TruncatedStreamRejected) {
  nn::Mlp net = nn::Mlp::make(2, {4}, 1, nn::Activation::kRelu,
                              nn::Activation::kIdentity, 2);
  std::stringstream buffer;
  net.save(buffer);
  std::string text = buffer.str();
  text.resize(text.size() / 2);  // cut the stream mid-weights.
  std::stringstream truncated(text);
  EXPECT_THROW((void)nn::Mlp::load(truncated), std::runtime_error);
}

TEST(TemplatedDynamics, CartpoleDoubleMatchesVirtual) {
  const sys::CartPole cp;
  const std::array<double, 4> s = {0.1, -0.2, 0.05, 0.3};
  const auto direct = sys::cartpole_step<double>(s, 2.5, cp.params());
  const Vec via_virtual = cp.step({s[0], s[1], s[2], s[3]}, {2.5}, {});
  for (std::size_t i = 0; i < 4; ++i)
    EXPECT_DOUBLE_EQ(direct[i], via_virtual[i]);
}

TEST(TemplatedDynamics, ThreeDDoubleMatchesVirtual) {
  const sys::ThreeD sys3;
  const auto direct =
      sys::threed_step<double>({0.2, -0.3, 0.1}, -1.5, sys3.params().tau);
  const Vec via_virtual = sys3.step({0.2, -0.3, 0.1}, {-1.5}, {});
  for (std::size_t i = 0; i < 3; ++i)
    EXPECT_DOUBLE_EQ(direct[i], via_virtual[i]);
}

TEST(CsvEdge, RowTextQuotesCommas) {
  const std::string path = "test_csv_quote.csv";
  {
    util::CsvWriter csv(path, {"a", "b"});
    csv.row_text({"plain", "has,comma"});
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);  // header.
  std::getline(in, line);
  EXPECT_EQ(line, "plain,\"has,comma\"");
  std::remove(path.c_str());
}

TEST(IntervalEdge, ToStringAndDegenerate) {
  const verify::Interval point(1.5);
  EXPECT_DOUBLE_EQ(point.lo(), point.hi());
  EXPECT_EQ(point.to_string(), "[1.5, 1.5]");
  EXPECT_DOUBLE_EQ(point.width(), 0.0);
  EXPECT_DOUBLE_EQ(point.mid(), 1.5);
}

TEST(IntervalEdge, InvalidIntersection) {
  const verify::Interval a(0.0, 1.0), b(2.0, 3.0);
  EXPECT_FALSE(a.intersects(b));
  EXPECT_FALSE(a.intersect(b).valid());
}

TEST(RolloutEdge, ZeroHorizonUsesSystemDefault) {
  const sys::VanDerPol vdp;
  const ctrl::ZeroController zero(2, 1);
  util::Rng rng(1);
  const auto result = core::rollout(vdp, zero, {0.1, 0.1}, nullptr, rng);
  // Runs the paper's T = 100 steps when the config horizon is unset.
  EXPECT_LE(result.steps_taken, 100);
}

TEST(RolloutEdge, AttackedRolloutRecordsClippedControls) {
  const sys::VanDerPol vdp;
  nn::Mlp net = nn::Mlp::make(2, {8}, 1, nn::Activation::kTanh,
                              nn::Activation::kIdentity, 3);
  const ctrl::NnController controller(std::move(net), {30.0}, "hot");
  const attack::FgsmAttack fgsm({0.2, 0.2});
  util::Rng rng(4);
  core::RolloutConfig config;
  config.horizon = 30;
  config.record_trajectory = true;
  const auto result =
      core::rollout(vdp, controller, {0.5, 0.5}, &fgsm, rng, config);
  for (const auto& u : result.controls)
    EXPECT_LE(std::abs(u[0]), 20.0 + 1e-12);  // Eq.(4) clip held under attack.
}

TEST(DistillEdge, UniformOnlyDataset) {
  // teacher_rollouts = 0 must still produce a valid dataset.
  const sys::VanDerPol vdp;
  const ctrl::ZeroController zero(2, 1);
  core::DistillConfig config;
  config.teacher_rollouts = 0;
  config.uniform_samples = 100;
  const auto data = core::build_distill_dataset(vdp, zero, config);
  EXPECT_EQ(data.size(), 100u);
}

TEST(AbstractionEdge, PointBoxNeedsOnePartition) {
  nn::Mlp net = nn::Mlp::make(2, {6}, 1, nn::Activation::kTanh,
                              nn::Activation::kIdentity, 5);
  const ctrl::NnController controller(std::move(net), {1.0}, "k");
  verify::AbstractionConfig config;
  config.epsilon_target = 0.5;
  const verify::NnAbstraction abstraction(controller, config);
  verify::VerificationBudget budget;
  const auto enclosure = abstraction.enclose(
      verify::point_box({0.2, -0.2}), {verify::Interval(-1e18, 1e18)},
      budget);
  EXPECT_EQ(enclosure.partitions, 1);
  const double exact = controller.act({0.2, -0.2})[0];
  EXPECT_TRUE(enclosure.u_range[0].contains(exact));
  EXPECT_LT(enclosure.u_range[0].width(), 1.0 + 1e-12);  // <= 2*eps.
}

TEST(SystemEdge, CartpoleOmegaIgnored) {
  // Cartpole declares no disturbance; passing an empty omega must work.
  const sys::CartPole cp;
  EXPECT_EQ(cp.disturbance_dim(), 0u);
  EXPECT_NO_THROW((void)cp.step({0.0, 0.0, 0.0, 0.0}, {1.0}, {}));
}

}  // namespace
}  // namespace cocktail
