// Unit tests for src/rl primitives: replay buffer, OU noise, GAE,
// Gaussian/categorical policies (log-probs, KL, analytic gradients checked
// against finite differences).
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "rl/categorical_policy.h"
#include "rl/gae.h"
#include "rl/gaussian_policy.h"
#include "rl/noise.h"
#include "rl/replay_buffer.h"

namespace cocktail {
namespace {

using la::Vec;

TEST(ReplayBuffer, EvictsOldestAtCapacity) {
  rl::ReplayBuffer buffer(3);
  for (double k = 0; k < 5; ++k)
    buffer.add({{k}, {0.0}, k, {k + 1}, false});
  EXPECT_EQ(buffer.size(), 3u);
  // Only rewards 2, 3, 4 can be sampled now.
  util::Rng rng(1);
  for (int i = 0; i < 50; ++i) {
    const auto batch = buffer.sample(4, rng);
    for (const auto* tr : batch) EXPECT_GE(tr->reward, 2.0);
  }
}

TEST(ReplayBuffer, SampleFromEmptyThrows) {
  rl::ReplayBuffer buffer(4);
  util::Rng rng(2);
  EXPECT_THROW((void)buffer.sample(1, rng), std::logic_error);
}

TEST(ReplayBuffer, ClearResets) {
  rl::ReplayBuffer buffer(4);
  buffer.add({{0.0}, {0.0}, 0.0, {0.0}, false});
  buffer.clear();
  EXPECT_TRUE(buffer.empty());
}

TEST(OuNoise, MeanRevertsToMu) {
  rl::OuNoise noise(1, 0.2, 0.0, 3.0);  // zero sigma: pure drift toward mu.
  noise.reset();
  util::Rng rng(3);
  Vec x;
  for (int t = 0; t < 200; ++t) x = noise.sample(rng);
  EXPECT_NEAR(x[0], 3.0, 1e-6);
}

TEST(OuNoise, IsTemporallyCorrelated) {
  rl::OuNoise noise(1, 0.05, 0.1);
  util::Rng rng(4);
  double corr_sum = 0.0;
  double prev = noise.sample(rng)[0];
  for (int t = 0; t < 5000; ++t) {
    const double cur = noise.sample(rng)[0];
    corr_sum += cur * prev;
    prev = cur;
  }
  EXPECT_GT(corr_sum / 5000.0, 0.0);  // positive lag-1 autocorrelation.
}

TEST(Gae, SingleStepIsTdError) {
  rl::RolloutBatch batch;
  batch.states = {{0.0}};
  batch.actions = {{0.0}};
  batch.rewards = {2.0};
  batch.values = {1.0};
  batch.next_values = {3.0};
  batch.log_probs = {0.0};
  batch.terminal = {false};
  batch.truncated = {true};
  const auto adv = rl::compute_gae(batch, 0.9, 0.95, /*normalize=*/false);
  EXPECT_NEAR(adv.advantages[0], 2.0 + 0.9 * 3.0 - 1.0, 1e-12);
  EXPECT_NEAR(adv.returns[0], adv.advantages[0] + 1.0, 1e-12);
}

TEST(Gae, TerminalCutsBootstrap) {
  rl::RolloutBatch batch;
  batch.states = {{0.0}, {0.0}};
  batch.actions = {{0.0}, {0.0}};
  batch.rewards = {1.0, -10.0};
  batch.values = {0.5, 0.25};
  batch.next_values = {0.25, 99.0};  // 99 must be ignored: terminal.
  batch.log_probs = {0.0, 0.0};
  batch.terminal = {false, true};
  batch.truncated = {false, false};
  const auto adv = rl::compute_gae(batch, 1.0, 1.0, false);
  const double delta1 = -10.0 - 0.25;             // no bootstrap at terminal.
  const double delta0 = 1.0 + 0.25 - 0.5;
  EXPECT_NEAR(adv.advantages[1], delta1, 1e-12);
  EXPECT_NEAR(adv.advantages[0], delta0 + delta1, 1e-12);  // lambda=1 chain.
}

TEST(Gae, TruncationStopsLambdaChainButKeepsBootstrap) {
  rl::RolloutBatch batch;
  batch.states = {{0.0}, {0.0}};
  batch.actions = {{0.0}, {0.0}};
  batch.rewards = {1.0, 1.0};
  batch.values = {0.0, 0.0};
  batch.next_values = {5.0, 5.0};
  batch.log_probs = {0.0, 0.0};
  batch.terminal = {false, false};
  batch.truncated = {true, true};  // two independent truncated episodes.
  const auto adv = rl::compute_gae(batch, 0.5, 0.9, false);
  // Each step: delta = 1 + 0.5*5 - 0 = 3.5, no chaining across truncation.
  EXPECT_NEAR(adv.advantages[0], 3.5, 1e-12);
  EXPECT_NEAR(adv.advantages[1], 3.5, 1e-12);
}

TEST(Gae, NormalizationZeroMeanUnitVar) {
  rl::RolloutBatch batch;
  const int n = 64;
  for (int i = 0; i < n; ++i) {
    batch.states.push_back({0.0});
    batch.actions.push_back({0.0});
    batch.rewards.push_back(static_cast<double>(i % 7));
    batch.values.push_back(0.0);
    batch.next_values.push_back(0.0);
    batch.log_probs.push_back(0.0);
    batch.terminal.push_back(false);
    batch.truncated.push_back((i % 8) == 7);
  }
  const auto adv = rl::compute_gae(batch, 0.99, 0.95, true);
  double mean = 0.0, var = 0.0;
  for (double a : adv.advantages) mean += a;
  mean /= n;
  for (double a : adv.advantages) var += (a - mean) * (a - mean);
  var /= n;
  EXPECT_NEAR(mean, 0.0, 1e-9);
  EXPECT_NEAR(var, 1.0, 1e-2);
}

TEST(GaussianPolicy, LogProbMatchesClosedForm) {
  rl::GaussianPolicy policy(2, {8}, 2, 0.5, 21);
  const Vec s = {0.3, -0.2};
  const Vec mu = policy.mean(s);
  const Vec a = {mu[0] + 0.1, mu[1] - 0.3};
  double expected = 0.0;
  for (std::size_t i = 0; i < 2; ++i) {
    const double z = (a[i] - mu[i]) / 0.5;
    expected += -0.5 * z * z - std::log(0.5) -
                0.5 * std::log(2.0 * std::numbers::pi);
  }
  EXPECT_NEAR(policy.log_prob(s, a), expected, 1e-10);
}

TEST(GaussianPolicy, SampleHasCorrectSpread) {
  rl::GaussianPolicy policy(1, {4}, 1, 0.3, 22);
  util::Rng rng(22);
  const Vec s = {0.1};
  const double mu = policy.mean(s)[0];
  double sum = 0.0, sum_sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double a = policy.sample(s, rng).action[0];
    sum += a;
    sum_sq += a * a;
  }
  const double mean = sum / n;
  EXPECT_NEAR(mean, mu, 1e-2);
  EXPECT_NEAR(sum_sq / n - mean * mean, 0.09, 5e-3);
}

TEST(GaussianPolicy, KlOfItselfIsZero) {
  rl::GaussianPolicy policy(2, {6}, 2, 0.4, 23);
  const Vec s = {0.5, 0.5};
  EXPECT_NEAR(policy.kl_from(policy.mean(s), policy.stddev(), s), 0.0, 1e-12);
}

TEST(GaussianPolicy, LogProbGradientMatchesFiniteDifference) {
  rl::GaussianPolicy policy(2, {6}, 1, 0.5, 24);
  const Vec s = {0.2, -0.4};
  util::Rng rng(24);
  const Vec a = {policy.mean(s)[0] + 0.37};

  nn::Gradients grads = policy.mean_net().zero_gradients();
  Vec log_std_grads = la::zeros(1);
  // coef = 1 accumulates d(-logpi); finite difference checks d(logpi).
  policy.accumulate_log_prob_gradient(s, a, 1.0, grads, log_std_grads);

  const double h = 1e-6;
  auto& w = policy.mean_net().layers()[0].w;
  const double saved = w(0, 0);
  const_cast<double&>(w(0, 0)) = saved + h;
  const double up = policy.log_prob(s, a);
  const_cast<double&>(w(0, 0)) = saved - h;
  const double dn = policy.log_prob(s, a);
  const_cast<double&>(w(0, 0)) = saved;
  EXPECT_NEAR(grads.w[0](0, 0), -(up - dn) / (2.0 * h), 1e-5);

  auto& ls = policy.log_std();
  const double saved_ls = ls[0];
  ls[0] = saved_ls + h;
  const double up_ls = policy.log_prob(s, a);
  ls[0] = saved_ls - h;
  const double dn_ls = policy.log_prob(s, a);
  ls[0] = saved_ls;
  EXPECT_NEAR(log_std_grads[0], -(up_ls - dn_ls) / (2.0 * h), 1e-5);
}

TEST(GaussianPolicy, KlGradientMatchesFiniteDifference) {
  rl::GaussianPolicy policy(2, {6}, 1, 0.5, 25);
  const Vec s = {0.1, 0.3};
  const Vec mu_old = {policy.mean(s)[0] + 0.2};
  const Vec std_old = {0.4};

  nn::Gradients grads = policy.mean_net().zero_gradients();
  Vec log_std_grads = la::zeros(1);
  policy.accumulate_kl_gradient(mu_old, std_old, s, 1.0, grads, log_std_grads);

  const double h = 1e-6;
  auto& w = policy.mean_net().layers()[0].w;
  const double saved = w(0, 0);
  const_cast<double&>(w(0, 0)) = saved + h;
  const double up = policy.kl_from(mu_old, std_old, s);
  const_cast<double&>(w(0, 0)) = saved - h;
  const double dn = policy.kl_from(mu_old, std_old, s);
  const_cast<double&>(w(0, 0)) = saved;
  EXPECT_NEAR(grads.w[0](0, 0), (up - dn) / (2.0 * h), 1e-5);

  auto& ls = policy.log_std();
  const double saved_ls = ls[0];
  ls[0] = saved_ls + h;
  const double up_ls = policy.kl_from(mu_old, std_old, s);
  ls[0] = saved_ls - h;
  const double dn_ls = policy.kl_from(mu_old, std_old, s);
  ls[0] = saved_ls;
  EXPECT_NEAR(log_std_grads[0], (up_ls - dn_ls) / (2.0 * h), 1e-5);
}

TEST(GaussianPolicy, EntropyClosedForm) {
  rl::GaussianPolicy policy(1, {4}, 2, 0.5, 26);
  const double expected =
      2.0 * (std::log(0.5) +
             0.5 * std::log(2.0 * std::numbers::pi * std::numbers::e));
  EXPECT_NEAR(policy.entropy(), expected, 1e-12);
}

TEST(Softmax, NormalizesAndOrders) {
  const Vec p = rl::softmax({1.0, 2.0, 3.0});
  EXPECT_NEAR(p[0] + p[1] + p[2], 1.0, 1e-12);
  EXPECT_LT(p[0], p[1]);
  EXPECT_LT(p[1], p[2]);
}

TEST(Softmax, StableForLargeLogits) {
  const Vec p = rl::softmax({1000.0, 1000.0});
  EXPECT_NEAR(p[0], 0.5, 1e-12);
}

TEST(CategoricalPolicy, SampleFrequenciesMatchProbabilities) {
  rl::CategoricalPolicy policy(1, {6}, 3, 27);
  const Vec s = {0.4};
  const Vec p = policy.probabilities(s);
  util::Rng rng(27);
  Vec counts(3, 0.0);
  const int n = 30000;
  for (int i = 0; i < n; ++i) counts[policy.sample(s, rng).action] += 1.0;
  for (std::size_t i = 0; i < 3; ++i)
    EXPECT_NEAR(counts[i] / n, p[i], 0.02);
}

TEST(CategoricalPolicy, LogProbGradientMatchesFiniteDifference) {
  rl::CategoricalPolicy policy(2, {5}, 3, 28);
  const Vec s = {0.3, -0.1};
  const std::size_t action = 1;
  nn::Gradients grads = policy.logits_net().zero_gradients();
  policy.accumulate_log_prob_gradient(s, action, 1.0, grads);
  const double h = 1e-6;
  auto& w = policy.logits_net().layers()[0].w;
  const double saved = w(0, 0);
  const_cast<double&>(w(0, 0)) = saved + h;
  const double up = policy.log_prob(s, action);
  const_cast<double&>(w(0, 0)) = saved - h;
  const double dn = policy.log_prob(s, action);
  const_cast<double&>(w(0, 0)) = saved;
  EXPECT_NEAR(grads.w[0](0, 0), -(up - dn) / (2.0 * h), 1e-5);
}

TEST(CategoricalPolicy, KlGradientMatchesFiniteDifference) {
  rl::CategoricalPolicy policy(2, {5}, 3, 29);
  const Vec s = {0.2, 0.2};
  const Vec probs_old = {0.2, 0.5, 0.3};
  nn::Gradients grads = policy.logits_net().zero_gradients();
  policy.accumulate_kl_gradient(probs_old, s, 1.0, grads);
  const double h = 1e-6;
  auto& w = policy.logits_net().layers()[0].w;
  const double saved = w(0, 0);
  const_cast<double&>(w(0, 0)) = saved + h;
  const double up = policy.kl_from(probs_old, s);
  const_cast<double&>(w(0, 0)) = saved - h;
  const double dn = policy.kl_from(probs_old, s);
  const_cast<double&>(w(0, 0)) = saved;
  EXPECT_NEAR(grads.w[0](0, 0), (up - dn) / (2.0 * h), 1e-5);
}

TEST(CategoricalPolicy, KlOfItselfIsZero) {
  rl::CategoricalPolicy policy(1, {4}, 4, 30);
  const Vec s = {0.7};
  EXPECT_NEAR(policy.kl_from(policy.probabilities(s), s), 0.0, 1e-12);
}

}  // namespace
}  // namespace cocktail
