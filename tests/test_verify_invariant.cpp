// Tests for the control-invariant-set computation (Definition 1 / Fig 3):
// the certified set must actually be invariant under simulation, shrink
// for weaker controllers, and respect the budget failure mode.
#include <gtest/gtest.h>

#include <cmath>

#include "control/lqr_controller.h"
#include "control/nn_controller.h"
#include "control/polynomial_controller.h"
#include "sys/registry.h"
#include "sys/vanderpol.h"
#include "verify/invariant.h"

namespace cocktail {
namespace {

using la::Vec;

std::shared_ptr<ctrl::PolynomialController> vdp_linear_controller(
    double control_weight) {
  const sys::VanDerPol system;
  const auto lqr = ctrl::LqrController::synthesize(system, 1.0, control_weight);
  return std::make_shared<ctrl::PolynomialController>(
      ctrl::PolynomialController::linear_feedback(lqr.gain(), "lin"));
}

verify::InvariantConfig small_config() {
  verify::InvariantConfig config;
  // 32x32 with eps=0.4 is the empirical sweet spot where an authoritative
  // LQR certifies ~80-90% of X but a weak one certifies nothing (the grid
  // cell width must be below the closed loop's one-step inward progress).
  config.grid = {32, 32};
  config.abstraction.epsilon_target = 0.4;
  return config;
}

TEST(Invariant, NonEmptyForStabilizingController) {
  auto system = std::make_shared<sys::VanDerPol>();
  const auto controller = vdp_linear_controller(0.05);
  const verify::InvariantSetComputer computer(system, *controller,
                                              small_config());
  const auto result = computer.compute();
  ASSERT_TRUE(result.completed) << result.failure;
  EXPECT_GT(result.volume_fraction, 0.1);
  EXPECT_LE(result.volume_fraction, 1.0);
  EXPECT_GT(result.iterations, 0);
  EXPECT_GT(result.seconds, 0.0);
}

TEST(Invariant, CertifiedSetIsActuallyInvariant) {
  // The defining property (Definition 1): simulate from inside XI under
  // worst-case-ish disturbances; trajectories must never leave X, ever.
  auto system = std::make_shared<sys::VanDerPol>();
  const auto controller = vdp_linear_controller(0.05);
  const verify::InvariantSetComputer computer(system, *controller,
                                              small_config());
  const auto result = computer.compute();
  ASSERT_TRUE(result.completed);
  ASSERT_GT(result.volume_fraction, 0.1);
  const sys::Box domain = system->safe_region();

  util::Rng rng(3);
  int tested = 0;
  for (int attempt = 0; attempt < 3000 && tested < 40; ++attempt) {
    const Vec s0 = domain.sample(rng);
    if (!result.contains(domain, s0)) continue;
    ++tested;
    Vec s = s0;
    for (int t = 0; t < 300; ++t) {
      const Vec u = system->clip_control(controller->act(s));
      s = system->step(s, u, system->sample_disturbance(rng));
      ASSERT_TRUE(system->is_safe(s))
          << "left X from certified cell, start (" << s0[0] << ", " << s0[1]
          << ") step " << t;
    }
  }
  EXPECT_GE(tested, 10);
}

TEST(Invariant, StrongerControllerYieldsLargerSet) {
  auto system = std::make_shared<sys::VanDerPol>();
  const auto strong = vdp_linear_controller(0.02);  // high authority.
  const auto weak = vdp_linear_controller(0.1);     // lower authority.
  const auto r_strong =
      verify::InvariantSetComputer(system, *strong, small_config()).compute();
  const auto r_weak =
      verify::InvariantSetComputer(system, *weak, small_config()).compute();
  ASSERT_TRUE(r_strong.completed);
  ASSERT_TRUE(r_weak.completed);
  EXPECT_GE(r_strong.volume_fraction, r_weak.volume_fraction);
}

TEST(Invariant, BudgetExhaustionReportedNotThrown) {
  auto system = std::make_shared<sys::VanDerPol>();
  nn::Mlp net = nn::Mlp::make(2, {16, 16}, 1, nn::Activation::kTanh,
                              nn::Activation::kIdentity, 4);
  const ctrl::NnController big(std::move(net), {40.0}, "bigL");
  verify::InvariantConfig config = small_config();
  config.abstraction.epsilon_target = 0.1;
  config.abstraction.max_degree = 3;
  config.budget.max_nn_evaluations = 5'000;
  const verify::InvariantSetComputer computer(system, big, config);
  const auto result = computer.compute();
  EXPECT_FALSE(result.completed);
  EXPECT_FALSE(result.failure.empty());
}

TEST(Invariant, RejectsUnboundedDomains) {
  auto cartpole = sys::make_system("cartpole");
  const ctrl::ZeroController zero(4, 1);
  EXPECT_THROW(
      verify::InvariantSetComputer(cartpole, zero, small_config()),
      std::invalid_argument);
}

TEST(Invariant, ContainsAgreesWithMembership) {
  auto system = std::make_shared<sys::VanDerPol>();
  const auto controller = vdp_linear_controller(0.05);
  const auto result =
      verify::InvariantSetComputer(system, *controller, small_config())
          .compute();
  ASSERT_TRUE(result.completed);
  const sys::Box domain = system->safe_region();
  // Points outside the domain are never members.
  EXPECT_FALSE(result.contains(domain, {5.0, 0.0}));
  // Cell centers agree with the member mask.
  for (std::size_t i = 0; i < result.cell_count(); i += 37) {
    const auto box = result.cell_box(domain, i);
    const la::Vec center = verify::box_mid(box);
    EXPECT_EQ(result.contains(domain, center), result.member[i] != 0);
  }
}

}  // namespace
}  // namespace cocktail
