// Shared helpers for the RL/distillation test suites: the tiny 1-D
// point-mass tasks (point_mass_envs.h, also used by bench_micro) and the
// bitwise network comparator the worker-count regression tests pin
// determinism with.  One copy here so the suites can never silently drift
// apart.
#pragma once

#include <gtest/gtest.h>

#include <cstddef>

#include "nn/mlp.h"
#include "point_mass_envs.h"

namespace cocktail::testutil {

/// Asserts two networks are bitwise identical (no tolerance) — the
/// contract every parallel trainer/distiller pins across worker counts.
inline void expect_same_net(const nn::Mlp& a, const nn::Mlp& b, int workers) {
  ASSERT_EQ(a.num_layers(), b.num_layers()) << workers << " workers";
  for (std::size_t l = 0; l < a.num_layers(); ++l) {
    const auto& la_ = a.layers()[l];
    const auto& lb = b.layers()[l];
    ASSERT_EQ(la_.w.rows(), lb.w.rows()) << workers << " workers";
    ASSERT_EQ(la_.w.cols(), lb.w.cols()) << workers << " workers";
    for (std::size_t r = 0; r < la_.w.rows(); ++r)
      for (std::size_t c = 0; c < la_.w.cols(); ++c)
        ASSERT_EQ(la_.w(r, c), lb.w(r, c))  // bitwise: no tolerance.
            << "layer " << l << " w(" << r << "," << c << "), " << workers
            << " workers";
    ASSERT_EQ(la_.b, lb.b) << "layer " << l << ", " << workers << " workers";
  }
}

}  // namespace cocktail::testutil
