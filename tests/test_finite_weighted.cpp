// Tests for the finite-size weighted adaptation baseline ([11]): simplex
// weight tables, the FiniteWeightedController, its env, and the action-
// space inclusion property behind Proposition 1.
#include <gtest/gtest.h>

#include <cmath>

#include "control/finite_weighted_controller.h"
#include "control/polynomial_controller.h"
#include "core/envs.h"
#include "core/mixing.h"
#include "sys/vanderpol.h"

namespace cocktail {
namespace {

using la::Vec;

ctrl::ControllerPtr gain_expert(double gain) {
  la::Matrix k(1, 2);
  k(0, 0) = -gain;
  return std::make_shared<ctrl::PolynomialController>(
      ctrl::PolynomialController::linear_feedback(k, "gain"));
}

TEST(SimplexTable, ResolutionOneIsVertices) {
  const auto table = ctrl::simplex_weight_table(3, 1);
  ASSERT_EQ(table.size(), 3u);  // the three one-hot vertices.
  for (const auto& w : table) {
    EXPECT_NEAR(la::norm_l1(w), 1.0, 1e-12);
    EXPECT_EQ(*std::max_element(w.begin(), w.end()), 1.0);
  }
}

TEST(SimplexTable, CountMatchesCombinatorics) {
  // C(n+k-1, k): n=2, k=4 -> 5 entries; n=3, k=2 -> 6 entries.
  EXPECT_EQ(ctrl::simplex_weight_table(2, 4).size(), 5u);
  EXPECT_EQ(ctrl::simplex_weight_table(3, 2).size(), 6u);
}

TEST(SimplexTable, AllEntriesAreConvexCombinations) {
  for (const auto& w : ctrl::simplex_weight_table(3, 4)) {
    double sum = 0.0;
    for (double v : w) {
      EXPECT_GE(v, 0.0);
      EXPECT_LE(v, 1.0);
      sum += v;
    }
    EXPECT_NEAR(sum, 1.0, 1e-12);
  }
}

TEST(FiniteWeightedControllerTest, AppliesSelectedWeights) {
  auto e1 = gain_expert(2.0);  // act = 2*s0.
  auto e2 = gain_expert(6.0);  // act = 6*s0.
  const auto table = ctrl::simplex_weight_table(2, 2);  // (1,0),(.5,.5),(0,1).
  nn::Mlp selector = nn::Mlp::make(2, {4}, table.size(),
                                   nn::Activation::kTanh,
                                   nn::Activation::kIdentity, 3);
  const ctrl::FiniteWeightedController fw({e1, e2}, table, selector,
                                          sys::Box::symmetric(1, 100.0));
  const Vec s = {0.5, 0.0};
  const std::size_t entry = fw.selected_entry(s);
  const Vec& w = fw.weight_table()[entry];
  const double expected = w[0] * e1->act(s)[0] + w[1] * e2->act(s)[0];
  EXPECT_NEAR(fw.act(s)[0], expected, 1e-12);
}

TEST(FiniteWeightedControllerTest, OutputInsideExpertHull) {
  // Property: a convex combination of expert outputs lies between the
  // expert extremes — the defining restriction vs Cocktail's signed box.
  auto e1 = gain_expert(1.0);
  auto e2 = gain_expert(5.0);
  const auto table = ctrl::simplex_weight_table(2, 4);
  nn::Mlp selector = nn::Mlp::make(2, {6}, table.size(),
                                   nn::Activation::kTanh,
                                   nn::Activation::kIdentity, 4);
  const ctrl::FiniteWeightedController fw({e1, e2}, table, std::move(selector),
                                          sys::Box::symmetric(1, 100.0));
  util::Rng rng(5);
  for (int k = 0; k < 100; ++k) {
    const Vec s = rng.normal_vec(2);
    const double u = fw.act(s)[0];
    const double lo = std::min(e1->act(s)[0], e2->act(s)[0]);
    const double hi = std::max(e1->act(s)[0], e2->act(s)[0]);
    EXPECT_GE(u, lo - 1e-9);
    EXPECT_LE(u, hi + 1e-9);
  }
}

TEST(FiniteWeightedControllerTest, RejectsBadTable) {
  auto e1 = gain_expert(1.0);
  nn::Mlp selector = nn::Mlp::make(2, {4}, 2, nn::Activation::kTanh,
                                   nn::Activation::kIdentity, 6);
  // Table arity (2 weights) != expert count (1).
  EXPECT_THROW(ctrl::FiniteWeightedController(
                   {e1}, {{0.5, 0.5}, {1.0, 0.0}}, selector,
                   sys::Box::symmetric(1, 1.0)),
               std::invalid_argument);
}

TEST(FiniteWeightedEnv, StepAppliesTableEntry) {
  auto system = std::make_shared<sys::VanDerPol>();
  std::vector<ctrl::ControllerPtr> experts = {
      std::make_shared<ctrl::ZeroController>(2, 1),
      std::make_shared<ctrl::ZeroController>(2, 1)};
  const auto table = ctrl::simplex_weight_table(2, 2);
  core::SafetyRewardConfig reward;
  reward.boundary_margin = 0.0;
  core::FiniteWeightedEnv env(system, experts, table, reward);
  EXPECT_EQ(env.action_dim(), table.size());
  util::Rng rng(7);
  (void)env.reset(rng);
  // Zero experts: u = 0 regardless of entry -> reward h(0) = 1 when safe.
  const auto result = env.step({1.0}, rng);
  if (!result.terminal) {
    EXPECT_NEAR(result.reward, 1.0, 1e-12);
  } else {
    (void)env.reset(rng);  // rearm: a terminal episode forbids stepping.
  }
  EXPECT_THROW((void)env.step({99.0}, rng), std::invalid_argument);
}

TEST(FiniteWeightedTrain, LearnsOnVanDerPol) {
  auto system = std::make_shared<sys::VanDerPol>();
  // Experts: a decent stabilizer (u = -4 s1 - 4 s2) and a useless zero
  // controller — the baseline must learn to favour the stabilizer.
  la::Matrix k(1, 2);
  k(0, 0) = 4.0;
  k(0, 1) = 4.0;
  std::vector<ctrl::ControllerPtr> experts = {
      std::make_shared<ctrl::PolynomialController>(
          ctrl::PolynomialController::linear_feedback(k, "stab")),
      std::make_shared<ctrl::ZeroController>(2, 1)};

  core::FiniteWeightedConfig config;
  config.resolution = 2;
  config.ppo.iterations = 6;
  config.ppo.steps_per_iteration = 600;
  config.ppo.update_epochs = 4;
  config.ppo.seed = 11;
  const auto result = core::train_finite_weighted(system, experts, config);
  ASSERT_NE(result.controller, nullptr);
  // The learned selector must mostly choose entries with weight on the
  // stabilizer in the interior of X.
  util::Rng rng(12);
  int stabilizer_weighted = 0;
  const int trials = 100;
  for (int t = 0; t < trials; ++t) {
    const Vec s = system->initial_set().sample(rng);
    const auto& w =
        result.controller->weight_table()[result.controller->selected_entry(s)];
    stabilizer_weighted += (w[0] > 0.0);
  }
  EXPECT_GT(stabilizer_weighted, trials / 2);
}

}  // namespace
}  // namespace cocktail
