// Unit tests for the MDP environments of Section III-A: reward shape
// (R_pun / h(||u||)), Eq.(4) weighted-sum-with-clip semantics, termination,
// observation noise, and the expert-training task.
#include <gtest/gtest.h>

#include <cmath>

#include "control/polynomial_controller.h"
#include "core/envs.h"
#include "sys/threed.h"
#include "sys/vanderpol.h"

namespace cocktail {
namespace {

using la::Vec;

ctrl::ControllerPtr constant_gain_expert(double gain) {
  la::Matrix k(1, 2);
  k(0, 0) = -gain;  // act = gain * s0.
  return std::make_shared<ctrl::PolynomialController>(
      ctrl::PolynomialController::linear_feedback(k, "gain"));
}

TEST(DefaultEnergyCoef, HalvesMaxEnergyReward) {
  const sys::VanDerPol vdp;
  // max ||u||_1 = 20, so coef = 1/40 and h(20) = 0.5.
  EXPECT_NEAR(core::default_energy_coef(vdp), 1.0 / 40.0, 1e-12);
}

TEST(Observe, NoNoiseMeansIdentity) {
  util::Rng rng(1);
  EXPECT_EQ(core::observe({1.0, 2.0}, {}, rng), (Vec{1.0, 2.0}));
}

TEST(Observe, BoundedNoise) {
  util::Rng rng(2);
  for (int k = 0; k < 200; ++k) {
    const Vec obs = core::observe({0.0, 0.0}, {0.1, 0.2}, rng);
    EXPECT_LE(std::abs(obs[0]), 0.1);
    EXPECT_LE(std::abs(obs[1]), 0.2);
  }
}

TEST(MixingEnv, RewardIsHOfControlNorm) {
  auto system = std::make_shared<sys::VanDerPol>();
  // Two zero experts: u = 0 regardless of weights -> reward = h(0) = 1
  // (margin shaping disabled for an exact check).
  std::vector<ctrl::ControllerPtr> experts = {
      std::make_shared<ctrl::ZeroController>(2, 1),
      std::make_shared<ctrl::ZeroController>(2, 1)};
  core::SafetyRewardConfig reward;
  reward.boundary_margin = 0.0;
  core::MixingEnv env(system, experts, 1.5, reward);
  util::Rng rng(3);
  (void)env.reset(rng);
  const auto result = env.step({1.0, -1.0}, rng);
  EXPECT_NEAR(result.reward, 1.0, 1e-12);
  EXPECT_FALSE(result.terminal);
}

TEST(MixingEnv, BoundaryMarginShapesReward) {
  auto system = std::make_shared<sys::VanDerPol>();
  core::SafetyRewardConfig shaped;
  shaped.boundary_margin = 0.2;
  shaped.margin_penalty = 3.0;
  // Deep interior state: no shaping; near-boundary state: penalized.
  bool violated = false;
  const double interior = core::safety_shaped_reward(
      *system, {0.0, 0.0}, {0.0}, shaped, 0.0, violated);
  EXPECT_FALSE(violated);
  EXPECT_NEAR(interior, 1.0, 1e-12);
  const double near_edge = core::safety_shaped_reward(
      *system, {1.95, 0.0}, {0.0}, shaped, 0.0, violated);
  EXPECT_FALSE(violated);
  EXPECT_LT(near_edge, interior);
  // Ramp is linear: at the very edge the full penalty applies.
  const double at_edge = core::safety_shaped_reward(
      *system, {2.0, 0.0}, {0.0}, shaped, 0.0, violated);
  EXPECT_NEAR(at_edge, 1.0 - 3.0, 1e-9);
  // Outside X: punishment, flagged violated.
  const double outside = core::safety_shaped_reward(
      *system, {2.1, 0.0}, {0.0}, shaped, 0.0, violated);
  EXPECT_TRUE(violated);
  EXPECT_NEAR(outside, shaped.unsafe_punishment, 1e-12);
}

TEST(MixingEnv, WeightedSumMatchesEquation4) {
  auto system = std::make_shared<sys::VanDerPol>();
  // Experts with known outputs: u1 = 2*s0, u2 = 4*s0.
  std::vector<ctrl::ControllerPtr> experts = {constant_gain_expert(2.0),
                                              constant_gain_expert(4.0)};
  core::SafetyRewardConfig reward;
  reward.boundary_margin = 0.0;
  core::MixingEnv env(system, experts, 1.5, reward);
  util::Rng rng(4);
  // Deterministic start via reset loop until |s0| sizable (no noise).
  Vec s = env.reset(rng);
  const double a1 = 0.5, a2 = -0.25;
  const auto result = env.step({a1, a2}, rng);
  // u = clip(1.5*a1*2*s0 + 1.5*a2*4*s0) = clip(1.5*s0*(1.0 - 1.0)) = 0.
  // With these weights the experts cancel: reward must be h(0) = 1 while
  // the state stays safe.
  if (!result.terminal) {
    EXPECT_NEAR(result.reward, 1.0, 1e-12);
  }
  (void)s;
}

TEST(MixingEnv, PunishesAndTerminatesOnViolation) {
  auto system = std::make_shared<sys::VanDerPol>();
  std::vector<ctrl::ControllerPtr> experts = {
      std::make_shared<ctrl::ZeroController>(2, 1)};
  core::SafetyRewardConfig reward;
  reward.unsafe_punishment = -77.0;
  core::MixingEnv env(system, experts, 1.5, reward);
  // Drive the env manually from a corner state: replay resets until the
  // internal state is near the corner is impractical, so instead step the
  // env many episodes and check that every terminal transition pays -77.
  util::Rng rng(5);
  int terminals = 0;
  for (int episode = 0; episode < 200 && terminals < 3; ++episode) {
    (void)env.reset(rng);
    for (int t = 0; t < system->horizon(); ++t) {
      const auto result = env.step({0.0}, rng);
      if (result.terminal) {
        EXPECT_DOUBLE_EQ(result.reward, -77.0);
        ++terminals;
        break;
      }
    }
  }
  EXPECT_GE(terminals, 1);  // the uncontrolled oscillator does exit X.
}

TEST(MixingEnv, RejectsWeightBoundBelowOne) {
  auto system = std::make_shared<sys::VanDerPol>();
  std::vector<ctrl::ControllerPtr> experts = {
      std::make_shared<ctrl::ZeroController>(2, 1)};
  EXPECT_THROW(core::MixingEnv(system, experts, 0.9, {}),
               std::invalid_argument);
}

TEST(SwitchingEnv, UsesExactlyOneExpert) {
  auto system = std::make_shared<sys::VanDerPol>();
  std::vector<ctrl::ControllerPtr> experts = {constant_gain_expert(0.0),
                                              constant_gain_expert(3.0)};
  core::SafetyRewardConfig reward;
  reward.boundary_margin = 0.0;
  core::SwitchingEnv env(system, experts, reward);
  util::Rng rng(6);
  (void)env.reset(rng);
  // Expert 0 outputs zero control -> reward exactly h(0) = 1 when safe.
  const auto result = env.step({0.0}, rng);
  if (!result.terminal) {
    EXPECT_NEAR(result.reward, 1.0, 1e-12);
  } else {
    (void)env.reset(rng);  // rearm: a terminal episode forbids stepping.
  }
  // Out-of-range index must throw.
  EXPECT_THROW((void)env.step({5.0}, rng), std::invalid_argument);
}

TEST(ExpertTrainingEnv, RewardDecreasesWithStateMagnitude) {
  auto system = std::make_shared<sys::VanDerPol>();
  core::ExpertTrainingEnv::Config config;
  core::ExpertTrainingEnv env(system, config);
  util::Rng rng(7);
  (void)env.reset(rng);
  // One zero-control step from wherever we are: reward = 1 - cost(state).
  const auto result = env.step({0.0}, rng);
  if (!result.terminal) {
    EXPECT_LE(result.reward, 1.0);
  }
}

TEST(ExpertTrainingEnv, ActionScaleLimitsAuthority) {
  auto system = std::make_shared<sys::VanDerPol>();
  core::ExpertTrainingEnv::Config narrow;
  narrow.action_scale = 0.25;
  core::ExpertTrainingEnv env(system, narrow);
  util::Rng rng_a(8);
  Vec s0 = env.reset(rng_a);
  const auto result = env.step({1.0}, rng_a);  // full positive action.
  // Compare against manually stepping with u = 0.25 * 20 = 5 and the same
  // disturbance draw.  We can't extract ω, but the state change must be
  // bounded by the dynamics under |u| <= 5 + drift; do a coarse check:
  // the s2 jump cannot exceed tau*(|...| + 5) + 0.05 given |s| <= 2.
  const double max_jump =
      0.05 * ((1 + 4.0) * 2.0 + 2.0 + 5.0) + 0.05 + 1e-9;
  EXPECT_LE(std::abs(result.next_state[1] - s0[1]), max_jump);
}

TEST(ExpertTrainingEnv, StateWeightArityChecked) {
  auto system = std::make_shared<sys::VanDerPol>();
  core::ExpertTrainingEnv::Config bad;
  bad.state_weights = {1.0, 1.0, 1.0};  // system is 2-D.
  EXPECT_THROW(core::ExpertTrainingEnv(system, bad), std::invalid_argument);
}

TEST(EnvDims, MatchSystemAndExperts) {
  auto system = std::make_shared<sys::ThreeD>();
  std::vector<ctrl::ControllerPtr> experts = {
      std::make_shared<ctrl::ZeroController>(3, 1),
      std::make_shared<ctrl::ZeroController>(3, 1),
      std::make_shared<ctrl::ZeroController>(3, 1)};
  core::MixingEnv mixing(system, experts, 1.5, {});
  EXPECT_EQ(mixing.state_dim(), 3u);
  EXPECT_EQ(mixing.action_dim(), 3u);
  EXPECT_EQ(mixing.max_episode_steps(), 100);
  core::SwitchingEnv switching(system, experts, {});
  EXPECT_EQ(switching.action_dim(), 3u);
}

}  // namespace
}  // namespace cocktail
