// Tests for the pipeline configuration layer and the remaining core
// surfaces: per-system defaults, expert specs, DDPG-mixing, and the
// interplay between rollout metrics and the PGD attack.
#include <gtest/gtest.h>

#include "attack/pgd.h"
#include "control/nn_controller.h"
#include "control/polynomial_controller.h"
#include "core/distiller.h"
#include "core/expert_trainer.h"
#include "core/metrics.h"
#include "core/mixing.h"
#include "core/pipeline.h"
#include "sys/registry.h"

namespace cocktail {
namespace {

TEST(PipelineConfig, DefaultsExistForAllPaperSystems) {
  for (const auto& name : sys::system_names()) {
    const auto config = core::default_pipeline_config(name);
    EXPECT_GT(config.mixing.ppo.iterations, 0) << name;
    EXPECT_GE(config.mixing.weight_bound, 1.0) << name;
    EXPECT_GT(config.distill.epochs, 0) << name;
    EXPECT_GT(config.distill.adversarial_prob, 0.0) << name;
    EXPECT_GT(config.distill.lambda_l2, 0.0) << name;
  }
  EXPECT_THROW(core::default_pipeline_config("segway"), std::invalid_argument);
}

TEST(PipelineConfig, DirectDistillIsDerivedNotSeparate) {
  const auto config = core::default_pipeline_config("vanderpol");
  const auto direct = config.distill.direct();
  EXPECT_EQ(direct.adversarial_prob, 0.0);
  EXPECT_EQ(direct.lambda_l2, 0.0);
  EXPECT_EQ(direct.student_hidden, config.distill.student_hidden);
  EXPECT_EQ(direct.seed, config.distill.seed);  // same data, same init.
}

TEST(ExpertSpecs, PaperStructurePerSystem) {
  // Two DDPG specs for oscillator/cartpole; one for the 3D system (its κ2
  // is the model-based polynomial controller).
  EXPECT_EQ(core::default_expert_specs("vanderpol", 1).size(), 2u);
  EXPECT_EQ(core::default_expert_specs("threed", 1).size(), 1u);
  EXPECT_EQ(core::default_expert_specs("cartpole", 1).size(), 2u);
  EXPECT_THROW(core::default_expert_specs("segway", 1),
                std::invalid_argument);
}

TEST(ExpertSpecs, HyperparametersDiffer) {
  // The paper's experts are "obtained by DDPG with different
  // hyper-parameters" — the specs must actually differ.
  for (const auto& name : {"vanderpol", "cartpole"}) {
    const auto specs = core::default_expert_specs(name, 7);
    ASSERT_EQ(specs.size(), 2u);
    const bool differ =
        specs[0].ddpg.actor_hidden != specs[1].ddpg.actor_hidden ||
        specs[0].env.action_scale != specs[1].env.action_scale ||
        specs[0].env.control_weight != specs[1].env.control_weight;
    EXPECT_TRUE(differ) << name;
    EXPECT_NE(specs[0].ddpg.seed, specs[1].ddpg.seed) << name;
  }
}

TEST(ThreeDPolynomialExpert, IsStabilizingWithSmallL) {
  const auto system = sys::make_system("threed");
  const auto expert = core::make_threed_polynomial_expert(*system);
  // Small Lipschitz constant — the paper reports L = 0.72 for this expert.
  EXPECT_GT(expert->lipschitz_bound(), 0.0);
  EXPECT_LT(expert->lipschitz_bound(), 5.0);
  // Stabilizes the nominal system from a central state.
  la::Vec s = {0.2, -0.1, 0.1};
  for (int t = 0; t < 200; ++t)
    s = system->step(s, system->clip_control(expert->act(s)), {});
  EXPECT_LT(la::norm_l2(s), 0.1);
}

TEST(DdpgMixing, ProducesBoundedMixedController) {
  // Remark 1 path: tiny-budget DDPG mixing must return a usable AW.
  auto system = sys::make_system("vanderpol");
  la::Matrix k(1, 2);
  k(0, 0) = 4.0;
  k(0, 1) = 4.0;
  std::vector<ctrl::ControllerPtr> experts = {
      std::make_shared<ctrl::PolynomialController>(
          ctrl::PolynomialController::linear_feedback(k, "stab")),
      std::make_shared<ctrl::ZeroController>(2, 1)};
  core::DdpgMixingConfig config;
  config.ddpg.episodes = 30;
  config.ddpg.warmup_steps = 300;
  config.ddpg.actor_hidden = {16, 16};
  config.ddpg.critic_hidden = {32, 32};
  config.snapshot.checkpoints = 2;
  config.snapshot.eval_states = 40;
  const auto result =
      core::train_adaptive_mixing_ddpg(system, experts, config);
  ASSERT_NE(result.controller, nullptr);
  util::Rng rng(3);
  for (int i = 0; i < 20; ++i) {
    const la::Vec s = system->initial_set().sample(rng);
    EXPECT_LE(std::abs(result.controller->act(s)[0]), 20.0);
    const la::Vec w = result.controller->weights(s);
    for (double v : w) EXPECT_LE(std::abs(v), 1.5 + 1e-9);
  }
}

TEST(PipelineDeterminism, SameSeedSameDistilledWeights) {
  // Determinism regression for the pipeline's training path: running the
  // distillation step twice with the same seed must reproduce the student
  // bitwise — even though the evaluation/rollout machinery underneath now
  // fans work across a thread pool.
  const auto system = sys::make_system("vanderpol");
  la::Matrix k(1, 2);
  k(0, 0) = 3.0;
  k(0, 1) = 4.0;
  const ctrl::PolynomialController teacher =
      ctrl::PolynomialController::linear_feedback(k, "teacher");

  core::DistillConfig config;
  config.teacher_rollouts = 3;
  config.uniform_samples = 150;
  config.student_hidden = {8};
  config.epochs = 4;
  config.seed = 97;

  const auto first = core::distill(*system, teacher, config, "kstar");
  const auto second = core::distill(*system, teacher, config, "kstar");
  ASSERT_NE(first.student, nullptr);
  ASSERT_NE(second.student, nullptr);

  const auto& net_a = first.student->net();
  const auto& net_b = second.student->net();
  ASSERT_EQ(net_a.num_layers(), net_b.num_layers());
  for (std::size_t l = 0; l < net_a.num_layers(); ++l) {
    // Bitwise: std::vector<double> equality, no tolerance.
    EXPECT_EQ(net_a.layers()[l].w.data(), net_b.layers()[l].w.data())
        << "layer " << l << " weights";
    EXPECT_EQ(net_a.layers()[l].b, net_b.layers()[l].b)
        << "layer " << l << " biases";
  }
  EXPECT_EQ(first.final_loss, second.final_loss);
  EXPECT_EQ(first.dataset_size, second.dataset_size);
}

TEST(PipelineDeterminism, EvaluateIsRepeatableUnderThePool) {
  const auto system = sys::make_system("vanderpol");
  la::Matrix k(1, 2);
  k(0, 0) = 3.0;
  k(0, 1) = 4.0;
  const auto controller = std::make_shared<ctrl::PolynomialController>(
      ctrl::PolynomialController::linear_feedback(k, "lin"));
  core::EvalConfig config;
  config.num_initial_states = 80;
  config.seed = 11;
  const auto first = core::evaluate(*system, *controller, config);
  const auto second = core::evaluate(*system, *controller, config);
  EXPECT_EQ(first.num_safe, second.num_safe);
  EXPECT_EQ(first.safe_rate, second.safe_rate);
  EXPECT_EQ(first.mean_energy, second.mean_energy);
}

TEST(EvaluateWithPgd, RunsEndToEnd) {
  const auto system = sys::make_system("vanderpol");
  la::Matrix k(1, 2);
  k(0, 0) = 3.0;
  k(0, 1) = 4.0;
  const auto controller = std::make_shared<ctrl::PolynomialController>(
      ctrl::PolynomialController::linear_feedback(k, "lin"));
  core::EvalConfig config;
  config.num_initial_states = 60;
  config.seed = 5;
  config.perturbation = std::make_shared<attack::PgdAttack>(
      attack::perturbation_bound(*system, 0.12));
  const auto result = core::evaluate(*system, *controller, config);
  EXPECT_EQ(result.num_total, 60);
  EXPECT_GE(result.safe_rate, 0.0);
  EXPECT_LE(result.safe_rate, 1.0);
}

}  // namespace
}  // namespace cocktail
